// Random-perturbation control.
//
// Adversarial robustness claims need a noise control: if a deployment's
// accuracy under PGD merely matched its accuracy under *random* l_inf
// noise of the same budget, the attack would not be doing anything
// gradient-specific. These helpers generate that control condition.
#pragma once

#include "common/rng.h"
#include "tensor/tensor.h"

namespace nvm::attack {

/// x + epsilon * random sign per pixel, clamped to [0, 1] — the strongest
/// isotropic random perturbation in the l_inf ball (corner noise).
Tensor random_sign_noise(const Tensor& x, float epsilon, Rng& rng);

/// x + Uniform(-epsilon, epsilon) per pixel, clamped to [0, 1].
Tensor random_uniform_noise(const Tensor& x, float epsilon, Rng& rng);

}  // namespace nvm::attack

// Ensemble Black-Box attack pipeline (paper §III-C1a, ref [34]).
//
// The attacker cannot see weights; they can query the victim and read
// logits. The pipeline:
//   1. query the victim on attacker-held images -> synthetic dataset of
//      (image, soft label) pairs;
//   2. distill several surrogate ResNets of different depths on it;
//   3. attack the "stack parallel" ensemble of surrogates with PGD and
//      transfer the images to the real target.
// Whether the victim queried in step 1 runs on accurate digital hardware
// or on the NVM crossbar decides non-adaptive vs adaptive (Table II).
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>

#include "attack/attack_model.h"

namespace nvm::attack {

/// Black-box query interface: image in, logits out.
using QueryFn = std::function<Tensor(const Tensor&)>;

struct EnsembleBbOptions {
  /// Surrogate depths as CIFAR-ResNet blocks-per-stage (1/2/3 ->
  /// ResNet-8/14/20 — the scaled analogue of the paper's ResNet-10/20/32).
  std::vector<std::int64_t> depths = {1, 2, 3};
  std::array<std::int64_t, 3> widths = {8, 16, 32};
  std::int64_t epochs = 10;
  std::int64_t batch = 32;
  float lr = 0.05f;
  float momentum = 0.9f;
  std::uint64_t seed = 21;
};

/// Trained surrogate set; owns the member networks.
class SurrogateEnsemble {
 public:
  /// Distills surrogates from victim queries. If `cache_key` is non-empty
  /// the trained members are cached on disk under that key (tag includes
  /// options and dataset size, so stale entries self-invalidate).
  static SurrogateEnsemble distill(const QueryFn& victim,
                                   std::span<const Tensor> images,
                                   std::int64_t num_classes,
                                   const EnsembleBbOptions& opt,
                                   const std::string& cache_key = "");

  /// Attack view over all members (stack-parallel ensemble).
  std::unique_ptr<EnsembleAttackModel> attack_model();

  std::size_t size() const { return members_.size(); }
  nn::Network& member(std::size_t i) { return *members_.at(i); }

 private:
  SurrogateEnsemble() = default;
  std::vector<std::unique_ptr<nn::Network>> members_;
};

}  // namespace nvm::attack

// Projected Gradient Descent attack (Madry et al., paper Eq. 4) under the
// l_inf norm, plus single-step FGSM.
#pragma once

#include "attack/attack_model.h"

namespace nvm::attack {

struct PgdOptions {
  float epsilon = 4.0f / 255.0f;  ///< l_inf ball radius
  std::int64_t iters = 30;
  /// Step size; <= 0 selects the standard 2.5 * epsilon / iters.
  float alpha = 0.0f;
  bool random_start = true;
  std::uint64_t seed = 5;

  float step() const {
    return alpha > 0 ? alpha : 2.5f * epsilon / static_cast<float>(iters);
  }
};

/// Returns the adversarial image: iterated ascent on the model's loss,
/// projected to the epsilon-ball around x intersected with [0, 1].
Tensor pgd_attack(AttackModel& model, const Tensor& x, std::int64_t label,
                  const PgdOptions& opt);

/// Fast Gradient Sign Method: x + epsilon * sign(grad).
Tensor fgsm_attack(AttackModel& model, const Tensor& x, std::int64_t label,
                   float epsilon);

struct MiFgsmOptions {
  float epsilon = 4.0f / 255.0f;
  std::int64_t iters = 10;
  /// Gradient momentum decay (Dong et al. 2018 use 1.0).
  float mu = 1.0f;
};

/// Momentum Iterative FGSM (MI-FGSM, Dong et al. 2018): accumulates an
/// l1-normalized gradient momentum before taking the sign step. Known to
/// transfer better across models than vanilla PGD — the natural stronger
/// attacker for the black-box transfer scenarios.
Tensor mi_fgsm_attack(AttackModel& model, const Tensor& x, std::int64_t label,
                      const MiFgsmOptions& opt);

}  // namespace nvm::attack

#include "attack/pgd.h"

#include <algorithm>

#include "common/check.h"
#include "common/metrics.h"

namespace nvm::attack {

namespace {

/// White-box gradient evaluations across pgd/mi-fgsm/fgsm — the cost
/// metric the paper's attack-strength comparisons are normalized by.
metrics::Counter& grad_steps() {
  static metrics::Counter& c = metrics::counter("attack/pgd/grad_steps");
  return c;
}

/// Projects `adv` onto the l_inf ball of radius eps around `x`, then onto
/// the valid pixel range [0, 1].
void project(Tensor& adv, const Tensor& x, float eps) {
  auto pa = adv.data();
  auto px = x.data();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    const float lo = std::max(px[i] - eps, 0.0f);
    const float hi = std::min(px[i] + eps, 1.0f);
    pa[i] = std::clamp(pa[i], lo, hi);
  }
}

}  // namespace

Tensor pgd_attack(AttackModel& model, const Tensor& x, std::int64_t label,
                  const PgdOptions& opt) {
  NVM_CHECK_GT(opt.epsilon, 0.0f);
  NVM_CHECK_GT(opt.iters, 0);
  Tensor adv = x;
  if (opt.random_start) {
    Rng rng(opt.seed);
    for (auto& v : adv.data())
      v += static_cast<float>(rng.uniform(-opt.epsilon, opt.epsilon));
    project(adv, x, opt.epsilon);
  }
  const float alpha = opt.step();
  for (std::int64_t it = 0; it < opt.iters; ++it) {
    Tensor grad = model.loss_input_grad(adv, label);
    auto pa = adv.data();
    auto pg = grad.data();
    for (std::size_t i = 0; i < pa.size(); ++i)
      pa[i] += alpha * (pg[i] > 0.0f ? 1.0f : (pg[i] < 0.0f ? -1.0f : 0.0f));
    project(adv, x, opt.epsilon);
  }
  grad_steps().add(static_cast<std::uint64_t>(opt.iters));
  return adv;
}

Tensor mi_fgsm_attack(AttackModel& model, const Tensor& x, std::int64_t label,
                      const MiFgsmOptions& opt) {
  NVM_CHECK_GT(opt.epsilon, 0.0f);
  NVM_CHECK_GT(opt.iters, 0);
  const float alpha = opt.epsilon / static_cast<float>(opt.iters);
  Tensor adv = x;
  Tensor momentum(x.shape());
  for (std::int64_t it = 0; it < opt.iters; ++it) {
    Tensor grad = model.loss_input_grad(adv, label);
    // l1-normalize the fresh gradient before accumulating.
    double l1 = 0.0;
    for (float g : grad.data()) l1 += std::abs(g);
    const float inv = l1 > 0 ? static_cast<float>(1.0 / l1) : 0.0f;
    auto pm = momentum.data();
    auto pg = grad.data();
    auto pa = adv.data();
    for (std::size_t i = 0; i < pm.size(); ++i) {
      pm[i] = opt.mu * pm[i] + pg[i] * inv;
      pa[i] += alpha * (pm[i] > 0.0f ? 1.0f : (pm[i] < 0.0f ? -1.0f : 0.0f));
    }
    project(adv, x, opt.epsilon);
  }
  grad_steps().add(static_cast<std::uint64_t>(opt.iters));
  return adv;
}

Tensor fgsm_attack(AttackModel& model, const Tensor& x, std::int64_t label,
                   float epsilon) {
  NVM_CHECK_GT(epsilon, 0.0f);
  Tensor grad = model.loss_input_grad(x, label);
  Tensor adv = x;
  auto pa = adv.data();
  auto pg = grad.data();
  for (std::size_t i = 0; i < pa.size(); ++i)
    pa[i] += epsilon * (pg[i] > 0.0f ? 1.0f : (pg[i] < 0.0f ? -1.0f : 0.0f));
  project(adv, x, epsilon);
  grad_steps().add();
  return adv;
}

}  // namespace nvm::attack

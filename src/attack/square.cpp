#include "attack/square.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/metrics.h"
#include "nn/loss.h"

namespace nvm::attack {

namespace {

/// Piecewise schedule of the pixel fraction p, following the reference
/// implementation's halving points, rescaled to the query budget.
float p_schedule(float p_init, std::int64_t it, std::int64_t n_iters) {
  const double frac = static_cast<double>(it) /
                      static_cast<double>(std::max<std::int64_t>(1, n_iters));
  // Halving breakpoints at 10/50/200/500/1000/2000/4000/6000/8000 out of
  // 10000 iterations in the reference; expressed here as fractions.
  static constexpr double kBreaks[] = {0.001, 0.005, 0.02, 0.05, 0.1,
                                       0.2,   0.4,   0.6,  0.8};
  float p = p_init;
  for (double b : kBreaks)
    if (frac > b) p /= 2.0f;
  return p;
}

float clamp01(float v) { return std::clamp(v, 0.0f, 1.0f); }

}  // namespace

SquareResult square_attack(AttackModel& model, const Tensor& x,
                           std::int64_t label, const SquareOptions& opt) {
  NVM_CHECK_EQ(x.rank(), 3u);
  NVM_CHECK_GT(opt.epsilon, 0.0f);
  const std::int64_t c = x.dim(0), h = x.dim(1), w = x.dim(2);
  Rng rng(opt.seed);
  const float eps = opt.epsilon;

  SquareResult res;
  res.adv = x;
  // Initialization: vertical stripes of +/- eps per channel and column.
  for (std::int64_t ch = 0; ch < c; ++ch)
    for (std::int64_t col = 0; col < w; ++col) {
      const float delta = static_cast<float>(rng.sign()) * eps;
      for (std::int64_t row = 0; row < h; ++row)
        res.adv.at(ch, row, col) = clamp01(x.at(ch, row, col) + delta);
    }

  static metrics::Counter& queries = metrics::counter("attack/square/queries");

  Tensor logits = model.logits(res.adv);
  ++res.queries_used;
  float best_margin = nn::margin(logits, label);
  if (best_margin < 0) {
    res.success = true;
    queries.add(static_cast<std::uint64_t>(res.queries_used));
    return res;
  }

  while (res.queries_used < opt.max_queries) {
    const float p = p_schedule(opt.p_init, res.queries_used, opt.max_queries);
    std::int64_t side = static_cast<std::int64_t>(
        std::lround(std::sqrt(p * static_cast<float>(h * w))));
    side = std::clamp<std::int64_t>(side, 1, std::min(h, w));
    const std::int64_t y0 =
        static_cast<std::int64_t>(rng.uniform_index(
            static_cast<std::uint64_t>(h - side + 1)));
    const std::int64_t x0 =
        static_cast<std::int64_t>(rng.uniform_index(
            static_cast<std::uint64_t>(w - side + 1)));

    // Candidate: overwrite the square with fresh +/- eps per channel.
    Tensor cand = res.adv;
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float delta = static_cast<float>(rng.sign()) * eps;
      for (std::int64_t yy = y0; yy < y0 + side; ++yy)
        for (std::int64_t xx = x0; xx < x0 + side; ++xx)
          cand.at(ch, yy, xx) = clamp01(x.at(ch, yy, xx) + delta);
    }

    Tensor cand_logits = model.logits(cand);
    ++res.queries_used;
    const float cand_margin = nn::margin(cand_logits, label);
    if (cand_margin < best_margin) {
      best_margin = cand_margin;
      res.adv = std::move(cand);
      if (best_margin < 0) {
        res.success = true;
        break;
      }
    }
  }
  queries.add(static_cast<std::uint64_t>(res.queries_used));
  return res;
}

}  // namespace nvm::attack

// Square Attack (Andriushchenko et al. 2020, paper ref [31]): a
// query-efficient, gradient-free black-box attack via random search.
//
// Each query proposes flipping a random square patch of the perturbation
// to per-channel +/- epsilon stripes and keeps the proposal iff it lowers
// the margin loss. Because it never touches gradients, its success against
// the crossbar hardware isolates the "modified inference" component of the
// intrinsic robustness (paper §IV-A-b).
#pragma once

#include "attack/attack_model.h"

namespace nvm::attack {

struct SquareOptions {
  float epsilon = 4.0f / 255.0f;
  std::int64_t max_queries = 1000;
  /// Initial fraction of pixels covered by the square (paper's p_init).
  float p_init = 0.8f;
  std::uint64_t seed = 9;
};

struct SquareResult {
  Tensor adv;
  std::int64_t queries_used = 0;
  bool success = false;  ///< misclassified at the end
};

/// Runs the l_inf Square Attack against `model`'s logits.
SquareResult square_attack(AttackModel& model, const Tensor& x,
                           std::int64_t label, const SquareOptions& opt);

}  // namespace nvm::attack

#include "attack/attack_model.h"

#include "common/check.h"
#include "nn/loss.h"

namespace nvm::attack {

Tensor NetworkAttackModel::logits(const Tensor& x) {
  return net_->forward(x, nn::Mode::Eval);
}

Tensor NetworkAttackModel::loss_input_grad(const Tensor& x,
                                           std::int64_t label,
                                           float* loss_out) {
  Tensor out = net_->forward(x, nn::Mode::Eval);
  nn::LossGrad lg = nn::cross_entropy(out, label);
  if (loss_out != nullptr) *loss_out = lg.loss;
  // Parameter grads accumulate too; attacks never step them, but clear to
  // keep the network reusable for training afterwards.
  Tensor gx = net_->backward(lg.grad_logits);
  net_->zero_grads();
  return gx;
}

EnsembleAttackModel::EnsembleAttackModel(std::vector<nn::Network*> members)
    : members_(std::move(members)) {
  NVM_CHECK(!members_.empty());
  for (auto* m : members_) NVM_CHECK(m != nullptr);
}

Tensor EnsembleAttackModel::logits(const Tensor& x) {
  Tensor sum = members_[0]->forward(x, nn::Mode::Eval);
  for (std::size_t i = 1; i < members_.size(); ++i)
    sum += members_[i]->forward(x, nn::Mode::Eval);
  sum *= 1.0f / static_cast<float>(members_.size());
  return sum;
}

Tensor EnsembleAttackModel::loss_input_grad(const Tensor& x,
                                            std::int64_t label,
                                            float* loss_out) {
  float total_loss = 0.0f;
  Tensor grad;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    Tensor out = members_[i]->forward(x, nn::Mode::Eval);
    nn::LossGrad lg = nn::cross_entropy(out, label);
    total_loss += lg.loss;
    Tensor gx = members_[i]->backward(lg.grad_logits);
    members_[i]->zero_grads();
    if (i == 0) {
      grad = std::move(gx);
    } else {
      grad += gx;
    }
  }
  if (loss_out != nullptr) *loss_out = total_loss;
  return grad;
}

}  // namespace nvm::attack

#include "attack/ensemble_bb.h"

#include <numeric>
#include <sstream>

#include "common/check.h"
#include "common/file_cache.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/resnet.h"

namespace nvm::attack {

namespace {

/// Distillation training: soft-label cross-entropy against the victim's
/// softmax outputs.
void train_distilled(nn::Network& net, std::span<const Tensor> images,
                     std::span<const Tensor> soft_targets,
                     const EnsembleBbOptions& opt, std::uint64_t seed) {
  NVM_CHECK_EQ(images.size(), soft_targets.size());
  Rng rng(seed);
  nn::SgdConfig sgd_cfg;
  sgd_cfg.lr = opt.lr;
  sgd_cfg.momentum = opt.momentum;
  nn::Sgd sgd(net.params(), sgd_cfg);

  const std::int64_t n = static_cast<std::int64_t>(images.size());
  std::vector<std::int64_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);

  const auto freeze_epoch =
      static_cast<std::int64_t>(0.6f * static_cast<float>(opt.epochs));
  for (std::int64_t epoch = 0; epoch < opt.epochs; ++epoch) {
    if (epoch == opt.epochs / 2 || epoch == (3 * opt.epochs) / 4)
      sgd.set_lr(sgd.lr() * 0.1f);
    if (epoch == freeze_epoch) net.freeze_batchnorm();
    rng.shuffle(order);
    std::int64_t in_batch = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      const auto idx = static_cast<std::size_t>(order[static_cast<std::size_t>(i)]);
      Tensor logits = net.forward(images[idx], nn::Mode::Train);
      nn::LossGrad lg = nn::cross_entropy_soft(logits, soft_targets[idx]);
      net.backward(lg.grad_logits);
      if (++in_batch == opt.batch || i == n - 1) {
        sgd.step(static_cast<float>(in_batch));
        in_batch = 0;
      }
    }
  }
}

std::string options_tag(const EnsembleBbOptions& opt, std::size_t n_images,
                        std::int64_t num_classes) {
  std::ostringstream os;
  os << "bb_n" << n_images << "_c" << num_classes << "_e" << opt.epochs
     << "_lr" << opt.lr << "_seed" << opt.seed << "_d";
  for (auto d : opt.depths) os << d << ".";
  os << "_w" << opt.widths[0] << "-" << opt.widths[1] << "-" << opt.widths[2];
  return os.str();
}

}  // namespace

SurrogateEnsemble SurrogateEnsemble::distill(const QueryFn& victim,
                                             std::span<const Tensor> images,
                                             std::int64_t num_classes,
                                             const EnsembleBbOptions& opt,
                                             const std::string& cache_key) {
  NVM_CHECK(!images.empty());
  NVM_CHECK(!opt.depths.empty());

  SurrogateEnsemble out;
  Rng init_rng(opt.seed);
  for (std::size_t d = 0; d < opt.depths.size(); ++d) {
    nn::ResnetCifarSpec spec;
    spec.blocks_per_stage = opt.depths[d];
    spec.widths = opt.widths;
    spec.num_classes = num_classes;
    out.members_.push_back(std::make_unique<nn::Network>(
        nn::make_resnet_cifar(spec, init_rng)));
  }

  const std::string tag = options_tag(opt, images.size(), num_classes);
  if (!cache_key.empty()) {
    bool loaded = cache_load(
        "surrogates_" + cache_key + ".bin", tag, [&](BinaryReader& r) {
          for (auto& m : out.members_) m->load(r);
        });
    if (loaded) {
      NVM_LOG(Info) << "surrogate ensemble '" << cache_key << "' from cache";
      return out;
    }
  }

  // Build the synthetic dataset: one victim query per image.
  NVM_TRACE_SPAN("attack/ensemble/distill");
  static metrics::Counter& victim_queries =
      metrics::counter("attack/ensemble/victim_queries");
  victim_queries.add(images.size());
  NVM_LOG(Info) << "querying victim for " << images.size()
                << " synthetic labels";
  std::vector<Tensor> soft_targets;
  soft_targets.reserve(images.size());
  for (const Tensor& img : images) {
    Tensor logits = victim(img);
    NVM_CHECK_EQ(logits.numel(), num_classes);
    soft_targets.push_back(nn::softmax(logits));
  }

  for (std::size_t d = 0; d < out.members_.size(); ++d) {
    NVM_LOG(Info) << "distilling surrogate " << (d + 1) << "/"
                  << out.members_.size() << " (" << out.members_[d]->arch()
                  << ")";
    train_distilled(*out.members_[d], images, soft_targets, opt,
                    opt.seed + 100 * (d + 1));
  }

  if (!cache_key.empty()) {
    cache_store("surrogates_" + cache_key + ".bin", tag,
                [&](BinaryWriter& w) {
                  for (auto& m : out.members_) m->save(w);
                });
  }
  return out;
}

std::unique_ptr<EnsembleAttackModel> SurrogateEnsemble::attack_model() {
  std::vector<nn::Network*> raw;
  raw.reserve(members_.size());
  for (auto& m : members_) raw.push_back(m.get());
  return std::make_unique<EnsembleAttackModel>(std::move(raw));
}

}  // namespace nvm::attack

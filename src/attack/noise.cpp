#include "attack/noise.h"

#include <algorithm>

#include "common/check.h"

namespace nvm::attack {

Tensor random_sign_noise(const Tensor& x, float epsilon, Rng& rng) {
  NVM_CHECK_GT(epsilon, 0.0f);
  Tensor out = x;
  for (auto& v : out.data())
    v = std::clamp(v + epsilon * static_cast<float>(rng.sign()), 0.0f, 1.0f);
  return out;
}

Tensor random_uniform_noise(const Tensor& x, float epsilon, Rng& rng) {
  NVM_CHECK_GT(epsilon, 0.0f);
  Tensor out = x;
  for (auto& v : out.data())
    v = std::clamp(
        v + static_cast<float>(rng.uniform(-epsilon, epsilon)), 0.0f, 1.0f);
  return out;
}

}  // namespace nvm::attack

// The attacker's view of a model.
//
// Attacks are written against this interface so the same PGD/Square code
// serves every threat scenario of Table II: what varies is which concrete
// AttackModel the attacker holds —
//   * NetworkAttackModel over an ideal-engine network  -> non-adaptive
//     white box ("accurate digital computation");
//   * NetworkAttackModel over a crossbar-deployed network -> adaptive
//     "Hardware-in-Loop" white box (non-ideal forward, ideal backward);
//   * EnsembleAttackModel over distilled surrogates -> black box.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/network.h"

namespace nvm::attack {

class AttackModel {
 public:
  virtual ~AttackModel() = default;

  /// Queries logits (the attacker-visible output).
  virtual Tensor logits(const Tensor& x) = 0;

  /// d(cross_entropy(logits(x), label))/dx. Optionally reports the loss.
  virtual Tensor loss_input_grad(const Tensor& x, std::int64_t label,
                                 float* loss_out = nullptr) = 0;

  std::int64_t predict(const Tensor& x) { return logits(x).argmax(); }
};

/// Attack view of a single network (with whatever MVM engines are
/// currently installed on it).
class NetworkAttackModel final : public AttackModel {
 public:
  explicit NetworkAttackModel(nn::Network& net) : net_(&net) {}

  Tensor logits(const Tensor& x) override;
  Tensor loss_input_grad(const Tensor& x, std::int64_t label,
                         float* loss_out = nullptr) override;

 private:
  nn::Network* net_;
};

/// Stack-parallel ensemble (paper ref [34]): the attack loss is the sum of
/// member cross-entropies, so the input gradient is the sum of member
/// gradients; queries return averaged logits.
class EnsembleAttackModel final : public AttackModel {
 public:
  explicit EnsembleAttackModel(std::vector<nn::Network*> members);

  Tensor logits(const Tensor& x) override;
  Tensor loss_input_grad(const Tensor& x, std::int64_t label,
                         float* loss_out = nullptr) override;

 private:
  std::vector<nn::Network*> members_;
};

}  // namespace nvm::attack

// Fixed-point quantization helpers for the PUMA-style mapping.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace nvm::puma {

/// Symmetric signed quantization of a weight tensor.
/// q = round(w / scale), q in [-qmax, qmax], scale = max|w| / qmax.
struct QuantizedWeights {
  Tensor q;          ///< integer values stored as float
  float scale = 1.0f;
  std::int64_t qmax = 0;
};

QuantizedWeights quantize_weights(const Tensor& w, std::int64_t bits);

/// Unsigned quantization of a non-negative activation tensor against a
/// fixed scale (the calibrated per-layer maximum): values are clipped to
/// [0, scale] and mapped to integers [0, 2^bits - 1].
Tensor quantize_activations(const Tensor& x, float scale, std::int64_t bits);

/// Int16 twin of quantize_activations for the bit-slice fast path
/// (DESIGN.md §13): identical codes, stored as int16 (requires
/// bits <= 15). Returned vector has x.numel() entries in x's row-major
/// order.
std::vector<std::int16_t> quantize_activations_i16(const Tensor& x,
                                                   float scale,
                                                   std::int64_t bits);

/// Uniform mid-tread quantizer for analog column currents (the ADC):
/// clamps to [0, full_scale] and rounds to 2^bits - 1 steps.
float adc_quantize(float current, float full_scale, std::int64_t bits);

}  // namespace nvm::puma

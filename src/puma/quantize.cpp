#include "puma/quantize.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/simd.h"

namespace nvm::puma {

QuantizedWeights quantize_weights(const Tensor& w, std::int64_t bits) {
  NVM_CHECK(bits >= 2 && bits <= 16, "weight bits=" << bits);
  QuantizedWeights out;
  out.qmax = (std::int64_t{1} << (bits - 1)) - 1;
  const float wmax = w.abs_max();
  out.scale = wmax > 0 ? wmax / static_cast<float>(out.qmax) : 1.0f;
  out.q = Tensor(w.shape());
  const float inv = 1.0f / out.scale;
  auto src = w.data();
  auto dst = out.q.data();
  for (std::size_t i = 0; i < src.size(); ++i)
    dst[i] = std::round(src[i] * inv);
  return out;
}

Tensor quantize_activations(const Tensor& x, float scale, std::int64_t bits) {
  NVM_CHECK(bits >= 1 && bits <= 16, "activation bits=" << bits);
  NVM_CHECK_GT(scale, 0.0f);
  const float qmax = static_cast<float>((std::int64_t{1} << bits) - 1);
  Tensor out(x.shape());
  simd::quantize_affine(out.raw(), x.raw(), static_cast<std::int64_t>(x.numel()),
                        scale, qmax);
  return out;
}

std::vector<std::int16_t> quantize_activations_i16(const Tensor& x,
                                                   float scale,
                                                   std::int64_t bits) {
  NVM_CHECK(bits >= 1 && bits <= 15, "activation bits=" << bits);
  NVM_CHECK_GT(scale, 0.0f);
  const float qmax = static_cast<float>((std::int64_t{1} << bits) - 1);
  std::vector<std::int16_t> out(x.numel());
  simd::quantize_to_i16(out.data(), x.raw(),
                        static_cast<std::int64_t>(x.numel()), scale, qmax);
  return out;
}

float adc_quantize(float current, float full_scale, std::int64_t bits) {
  NVM_CHECK(bits >= 2 && bits <= 16, "adc bits=" << bits);
  NVM_CHECK_GT(full_scale, 0.0f);
  const float steps = static_cast<float>((std::int64_t{1} << bits) - 1);
  const float clamped = std::clamp(current, 0.0f, full_scale);
  return std::round(clamped / full_scale * steps) * full_scale / steps;
}

}  // namespace nvm::puma

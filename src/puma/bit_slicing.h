// Bit-slicing of integer weights and inputs (paper §II-A).
//
// NVM devices hold few bits, so a b-bit weight magnitude is split into
// ceil(b / slice_bits) slices of slice_bits each (weight slices), and a
// b-bit input into ceil(b / stream_bits) chunks applied as successive DAC
// voltages (input streams). Results recombine digitally by shift-and-add.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace nvm::puma {

/// Number of slices needed to hold `value_bits` in chunks of `chunk_bits`.
std::int64_t slice_count(std::int64_t value_bits, std::int64_t chunk_bits);

/// Extracts chunk `index` (little-endian: index 0 = least significant)
/// of `chunk_bits` bits from every non-negative integer-valued element.
Tensor extract_chunk(const Tensor& values, std::int64_t index,
                     std::int64_t chunk_bits);

/// Allocation-free extract_chunk into caller scratch: dst must have
/// src.size() elements. Returns the maximum chunk value, so callers can
/// skip all-zero chunks without a second pass.
float extract_chunk_into(std::span<const float> src, std::int64_t index,
                         std::int64_t chunk_bits, std::span<float> dst);

/// Integer twin of extract_chunk_into for the bit-slice fast path
/// (DESIGN.md §13): src holds int16 codes, dst receives int8 chunk values
/// (requires chunk_bits <= 7 so chunks fit int8). Returns the maximum
/// chunk value. Chunk values are identical to what extract_chunk_into
/// yields on the float image of src.
int extract_chunk_i16_into(std::span<const std::int16_t> src,
                           std::int64_t index, std::int64_t chunk_bits,
                           std::span<std::int8_t> dst);

/// Weight of chunk `index` in the shift-add recombination: 2^(index*bits).
float chunk_weight(std::int64_t index, std::int64_t chunk_bits);

}  // namespace nvm::puma

#include "puma/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "tensor/ops.h"

namespace nvm::puma {

namespace {

/// Ideal engine that records every GEMM shape the network issues.
class ShapeProbeEngine final : public nn::MvmEngine {
 public:
  explicit ShapeProbeEngine(std::vector<GemmShape>& sink) : sink_(&sink) {}

  Tensor matmul(const Tensor& w, const Tensor& x) override {
    sink_->push_back({w.dim(0), w.dim(1), x.dim(1)});
    return nvm::matmul(w, x);
  }
  std::string name() const override { return "shape_probe"; }

 private:
  std::vector<GemmShape>* sink_;
};

LayerCost cost_of(const GemmShape& shape, const xbar::CrossbarConfig& cfg,
                  const HwConfig& hw, const CostParams& p) {
  LayerCost c;
  c.shape = shape;
  c.row_tiles = (shape.k + cfg.rows - 1) / cfg.rows;
  c.col_tiles = (shape.m + cfg.cols - 1) / cfg.cols;
  const std::int64_t per_tile_passes = 2 * hw.weight_slices() * hw.input_streams();
  c.passes = c.row_tiles * c.col_tiles * per_tile_passes;
  c.crossbar_reads = c.passes * shape.n;
  // Average used extents across the tile grid.
  const double rows_used =
      static_cast<double>(shape.k) / static_cast<double>(c.row_tiles);
  const double cols_used =
      static_cast<double>(shape.m) / static_cast<double>(c.col_tiles);
  c.dac_conversions = static_cast<std::int64_t>(
      static_cast<double>(c.crossbar_reads) * rows_used);
  c.adc_conversions = static_cast<std::int64_t>(
      static_cast<double>(c.crossbar_reads) * cols_used);
  c.utilization = (rows_used * cols_used) /
                  (static_cast<double>(cfg.rows) * static_cast<double>(cfg.cols));

  // Analog read energy: E = sum V_i^2 * G_ij * t over active cells.
  const double g_avg = 0.5 * (cfg.g_on() + cfg.g_off());
  const double v2_avg = p.input_activity * cfg.v_read * cfg.v_read;
  const double e_read_j = rows_used * static_cast<double>(cfg.cols) * v2_avg *
                          g_avg * (p.t_read_ns * 1e-9);
  c.analog_energy_nj =
      static_cast<double>(c.crossbar_reads) * e_read_j * 1e9;
  c.peripheral_energy_nj =
      (static_cast<double>(c.dac_conversions) * p.e_dac_pj +
       static_cast<double>(c.adc_conversions) * p.e_adc_pj +
       static_cast<double>(c.adc_conversions) * p.e_shift_add_pj) *
      1e-3;

  // Latency: tiles run in parallel across MVMUs (up to parallel_tiles);
  // polarities/slices/streams are sequential on each tile; ADC is muxed
  // over the used columns of a tile.
  const double tile_groups =
      std::ceil(static_cast<double>(c.row_tiles * c.col_tiles) /
                static_cast<double>(std::max<std::int64_t>(1, p.parallel_tiles)));
  const double pass_latency_ns = p.t_read_ns + cols_used * p.t_adc_ns;
  c.latency_us = tile_groups * static_cast<double>(per_tile_passes) *
                 static_cast<double>(shape.n) * pass_latency_ns * 1e-3;
  return c;
}

/// Runs one probe forward pass and returns every GEMM shape the network
/// issued, restoring the original engines afterwards.
std::vector<GemmShape> probe_shapes(nn::Network& net, const Tensor& sample) {
  std::vector<GemmShape> shapes;
  net.set_mvm_engines([&](nn::Layer&) {
    return std::make_shared<ShapeProbeEngine>(shapes);
  });
  (void)net.forward(sample, nn::Mode::Eval);
  net.reset_mvm_engines();
  return shapes;
}

}  // namespace

CostReport estimate_cost(nn::Network& net, const Tensor& sample,
                         const xbar::CrossbarConfig& cfg, const HwConfig& hw,
                         const CostParams& params) {
  const std::vector<GemmShape> shapes = probe_shapes(net, sample);

  CostReport report;
  double util_sum = 0.0;
  for (const GemmShape& shape : shapes) {
    LayerCost c = cost_of(shape, cfg, hw, params);
    report.total_energy_nj += c.analog_energy_nj + c.peripheral_energy_nj;
    report.total_latency_us += c.latency_us;
    report.total_crossbar_reads += c.crossbar_reads;
    report.total_adc_conversions += c.adc_conversions;
    util_sum += c.utilization;
    report.layers.push_back(std::move(c));
  }
  if (!report.layers.empty())
    report.mean_utilization = util_sum / static_cast<double>(report.layers.size());
  return report;
}

ReprogramCost estimate_reprogram_cost(nn::Network& net, const Tensor& sample,
                                      const xbar::CrossbarConfig& cfg,
                                      const HwConfig& hw,
                                      const CostParams& p) {
  const std::vector<GemmShape> shapes = probe_shapes(net, sample);

  ReprogramCost r;
  for (const GemmShape& shape : shapes) {
    const std::int64_t row_tiles = (shape.k + cfg.rows - 1) / cfg.rows;
    const std::int64_t col_tiles = (shape.m + cfg.cols - 1) / cfg.cols;
    // One physical array per (tile, polarity, weight slice); whole arrays
    // are written — zero padding is programmed to g_off, not skipped.
    const std::int64_t xbars =
        row_tiles * col_tiles * 2 * hw.weight_slices();
    const std::int64_t cells = xbars * cfg.rows * cfg.cols;
    r.crossbars += xbars;
    r.cells_written += cells;
    r.write_energy_nj +=
        static_cast<double>(cells) * p.writes_per_cell * p.e_write_pj * 1e-3;
    // Writes are row-parallel within an array; arrays are programmed in
    // groups of parallel_tiles, like reads.
    const double groups =
        std::ceil(static_cast<double>(xbars) /
                  static_cast<double>(std::max<std::int64_t>(1, p.parallel_tiles)));
    r.write_latency_us += groups * static_cast<double>(cfg.rows) *
                          p.writes_per_cell * p.t_write_ns * 1e-3;
  }
  return r;
}

}  // namespace nvm::puma

// Fused execution plans over the lazy IR (DESIGN.md §17).
//
// Two plan layers sit between capture and the crossbar:
//
//   * MvmPlan — per-TiledMatrix. Compiled once (lazily, on first matmul),
//     it linearizes the tile-slot schedule (slot decode, activity, ADC
//     shift factors precomputed per stream) and fuses the
//     quantize→DAC→tile-MVM-stream→ADC-shift-add chain: for chunk-capable
//     models each programmed tile gets a compiled FusedChunkKernel
//     (input-independent per-cell tables, see xbar/fast_noise.cpp) so the
//     per-call inner loop degenerates to a code gather. Scratch comes
//     from the shared WorkspacePool (per-plan workspace planning) instead
//     of ad-hoc thread_local buffers. Execution is bit-identical to the
//     interpreter in TiledMatrix::matmul — same phase structure, same
//     accumulation orders — which stays available as the reference
//     (NVM_PLAN=0).
//
//   * NetworkPlan — per-Network. Captures the layer walk through
//     nn::ir::capture and replays the linearized steps in Eval mode,
//     recording the shape cache on first execution. Networks that the IR
//     cannot represent fall back to the eager interpreter.
//
// Plan descriptors are cached by graph hash in the CRC32-checksummed file
// cache ("plan/<hex>"); a descriptor that does not match the live
// structure (stale cache, collision) is discarded and recompiled.
#pragma once

#include <memory>

#include "nn/ir.h"
#include "puma/tiled_mvm.h"

namespace nvm::nn {
class Network;
}

namespace nvm::puma {

/// True when plan-based execution is enabled: NVM_PLAN env (default 1),
/// overridable per-scope in tests. With plans disabled every forward runs
/// the op-by-op interpreter.
bool plan_enabled();

/// Test-only: forces the plan gate while alive (restores on destruction).
class ScopedPlanForTests {
 public:
  explicit ScopedPlanForTests(bool enabled);
  ~ScopedPlanForTests();
  ScopedPlanForTests(const ScopedPlanForTests&) = delete;
  ScopedPlanForTests& operator=(const ScopedPlanForTests&) = delete;

 private:
  int prev_;
};

/// Compiled execution plan for one TiledMatrix. Immutable after compile;
/// execute() is safe to call concurrently (the serve scheduler and
/// cluster shards share one plan per resident model).
class MvmPlan {
 public:
  /// Compiles the plan for `tm` (slot schedule + fused kernels +
  /// file-cache round trip). Never fails: a model with no fused form
  /// still gets the linearized schedule.
  static std::unique_ptr<MvmPlan> compile(const TiledMatrix& tm);

  ~MvmPlan();

  /// Bit-identical replacement for the interpreter body of
  /// TiledMatrix::matmul.
  Tensor execute(const TiledMatrix& tm, const Tensor& x,
                 float input_scale) const;

  std::uint64_t graph_hash() const { return hash_; }
  std::int64_t fused_slots() const { return fused_count_; }

 private:
  MvmPlan() = default;

  /// One schedule entry per PROGRAMMED tile slot, with everything the
  /// interpreter re-derives per call (slot decode, tile activity bounds,
  /// per-stream ADC shift factors) precomputed.
  struct SlotStep {
    std::int64_t slot = 0;
    std::int64_t ti = 0, tj = 0, s = 0;
    int pol = 0;
    std::int64_t k_used = 0, m_used = 0;
    std::vector<float> shifts;  ///< per stream t: sign*2^(t*sb)*slice_w/du
    const xbar::FusedChunkKernel* kernel = nullptr;  ///< null: stream path
  };

  std::vector<SlotStep> steps_;
  std::vector<std::unique_ptr<xbar::FusedChunkKernel>> kernels_;
  std::uint64_t hash_ = 0;
  std::int64_t fused_count_ = 0;
};

/// Captured whole-network execution plan: the linearized Eval-mode layer
/// walk plus its IR graph and shape cache. Create through capture();
/// returns nullptr when the network is not graph-representable.
class NetworkPlan {
 public:
  static std::shared_ptr<NetworkPlan> capture(nn::Network& net);

  /// Replays the plan (Eval mode). Bit-identical to
  /// net.forward(x, Mode::Eval) by construction: the same layer objects
  /// run in the same order, so engine swaps on the layers are honored.
  Tensor forward(const Tensor& x);

  std::uint64_t graph_hash() const { return hash_; }
  const nn::ir::Graph& graph() const { return cap_.graph; }

 private:
  explicit NetworkPlan(nn::ir::Capture cap, std::uint64_t hash,
                       std::int64_t num_classes)
      : cap_(std::move(cap)), hash_(hash), num_classes_(num_classes) {}

  nn::ir::Capture cap_;
  std::uint64_t hash_ = 0;
  std::int64_t num_classes_ = 0;
  bool shapes_recorded_ = false;
};

}  // namespace nvm::puma

// Bridges the crossbar simulator into the nn:: layer stack.
#pragma once

#include <memory>

#include "nn/mvm_engine.h"
#include "puma/tiled_mvm.h"

namespace nvm::puma {

/// MvmEngine that evaluates a layer's GEMM on crossbar tiles. The weight
/// matrix is programmed lazily on first use and reused afterwards; weights
/// must not change after deployment (inference accelerator semantics — the
/// paper's NVM hardware does not support training).
class CrossbarMvmEngine final : public nn::MvmEngine {
 public:
  /// `input_scale` is the calibrated activation range for this layer;
  /// pass <= 0 for dynamic per-call scaling.
  CrossbarMvmEngine(std::shared_ptr<const xbar::MvmModel> model, HwConfig hw,
                    float input_scale);

  Tensor matmul(const Tensor& w, const Tensor& x) override;
  std::string name() const override;

  float input_scale() const { return input_scale_; }
  /// Programmed tile count (0 before the first matmul).
  std::int64_t programmed_tiles() const;

  /// Gain calibration: systematic current loss (the NF mean) would act as
  /// a fixed per-layer gain error, which any real deployment trims
  /// digitally (the compensation literature the paper cites: refs [16],
  /// [17], [36]). While calibrating, matmul() additionally computes the
  /// ideal result and accumulates a least-squares gain fit; after
  /// finish_gain_calibration() the fitted scalar multiplies every output.
  /// The *data-dependent* deviation — the source of intrinsic robustness —
  /// is untouched.
  void begin_gain_calibration();
  void finish_gain_calibration();
  float output_gain() const { return output_gain_; }

 private:
  std::shared_ptr<const xbar::MvmModel> model_;
  HwConfig hw_;
  float input_scale_;
  std::unique_ptr<TiledMatrix> tiled_;
  const void* programmed_weights_ = nullptr;
  float programmed_checksum_ = 0.0f;
  bool calibrating_ = false;
  double calib_num_ = 0.0, calib_den_ = 0.0;
  float output_gain_ = 1.0f;
};

/// Ideal engine that records the maximum input activation it sees — used
/// to calibrate per-layer DAC ranges before crossbar deployment.
class RecordingMvmEngine final : public nn::MvmEngine {
 public:
  Tensor matmul(const Tensor& w, const Tensor& x) override;
  std::string name() const override { return "recording"; }
  float max_input() const { return max_input_; }

 private:
  float max_input_ = 0.0f;
};

}  // namespace nvm::puma

#include "puma/engine.h"

#include <algorithm>

#include "common/check.h"
#include "tensor/ops.h"

namespace nvm::puma {

CrossbarMvmEngine::CrossbarMvmEngine(
    std::shared_ptr<const xbar::MvmModel> model, HwConfig hw,
    float input_scale)
    : model_(std::move(model)), hw_(hw), input_scale_(input_scale) {
  NVM_CHECK(model_ != nullptr);
}

Tensor CrossbarMvmEngine::matmul(const Tensor& w, const Tensor& x) {
  // Program on first use; detect accidental weight mutation afterwards.
  const float checksum = w.sum();
  if (tiled_ == nullptr || programmed_weights_ != w.raw()) {
    tiled_ = std::make_unique<TiledMatrix>(w, model_, hw_);
    programmed_weights_ = w.raw();
    programmed_checksum_ = checksum;
  } else {
    NVM_CHECK(checksum == programmed_checksum_,
              "weights changed after crossbar programming");
  }
  Tensor y = tiled_->matmul(x, input_scale_);
  if (calibrating_) {
    const Tensor ideal = nvm::matmul(w, x);
    auto py = y.data();
    auto pi = ideal.data();
    for (std::size_t i = 0; i < py.size(); ++i) {
      calib_num_ += static_cast<double>(pi[i]) * py[i];
      calib_den_ += static_cast<double>(py[i]) * py[i];
    }
  } else if (output_gain_ != 1.0f) {
    y *= output_gain_;
  }
  return y;
}

void CrossbarMvmEngine::begin_gain_calibration() {
  calibrating_ = true;
  calib_num_ = calib_den_ = 0.0;
  output_gain_ = 1.0f;
}

void CrossbarMvmEngine::finish_gain_calibration() {
  calibrating_ = false;
  if (calib_den_ > 0.0) {
    const double gain = calib_num_ / calib_den_;
    output_gain_ = static_cast<float>(std::clamp(gain, 0.5, 2.0));
  }
}

std::string CrossbarMvmEngine::name() const {
  return "crossbar[" + model_->config().name + "/" + model_->name() + "]";
}

std::int64_t CrossbarMvmEngine::programmed_tiles() const {
  return tiled_ != nullptr ? tiled_->programmed_tiles() : 0;
}

Tensor RecordingMvmEngine::matmul(const Tensor& w, const Tensor& x) {
  max_input_ = std::max(max_input_, x.max());
  return nvm::matmul(w, x);
}

}  // namespace nvm::puma

// Whole-network crossbar deployment (the PUMA functional-simulator entry
// point used by all experiments).
//
// HwDeployment maps every Conv2d/Linear GEMM of a trained network onto
// crossbar tiles of the given MvmModel:
//   1. DAC calibration: the network runs a few images with recording
//      engines to fix each layer's activation range;
//   2. every MVM layer gets a CrossbarMvmEngine (tiles program lazily on
//      the layer's next forward pass);
//   3. optionally (HwConfig::bn_reestimate, default on) BatchNorm running
//      statistics are re-estimated on the non-ideal hardware — the
//      standard deployment-time BN recalibration that recovers most clean
//      accuracy while leaving the input-dependent deviation intact;
//   4. optionally (HwConfig::gain_trim, default off) a per-layer scalar
//      output gain is least-squares fitted to trim the systematic current
//      loss (compensation in the style of the paper's refs [16][17][36]).
//
// The deployed network computes non-ideal forward passes; backward passes
// remain the ideal derivative evaluated at the recorded (non-ideal)
// activations — exactly the paper's "Hardware-in-Loop" gradient (§III-C2).
//
// Destroying the HwDeployment restores the network exactly: ideal engines
// and the pre-deployment BatchNorm statistics.
#pragma once

#include <span>

#include "common/health.h"
#include "nn/network.h"
#include "puma/engine.h"

namespace nvm::puma {

struct DeployStats {
  std::int64_t mvm_layers = 0;
  /// Per-layer calibrated input scales, in layer visit order.
  std::vector<float> input_scales;
  /// Per-layer fitted digital output gains (only when HwConfig::gain_trim).
  std::vector<float> output_gains;
  /// Failure-handling activity during deployment itself (calibration, BN
  /// re-estimation, gain trim): nonzero means the hardware model already
  /// degraded before the first real inference — worth knowing before
  /// trusting accuracy numbers measured on this deployment.
  HealthSnapshot health;
};

class HwDeployment {
 public:
  /// Deploys `net` onto `model` crossbars. `calib_images` (a handful of
  /// training images) drives DAC calibration and BN re-estimation; pass an
  /// empty span to skip both (dynamic input scaling, stale BN statistics).
  HwDeployment(nn::Network& net, std::shared_ptr<const xbar::MvmModel> model,
               std::span<const Tensor> calib_images, const HwConfig& hw = {});

  /// Restores ideal engines and the original BatchNorm statistics.
  ~HwDeployment();

  HwDeployment(const HwDeployment&) = delete;
  HwDeployment& operator=(const HwDeployment&) = delete;

  const DeployStats& stats() const { return stats_; }

 private:
  nn::Network& net_;
  DeployStats stats_;
  // Saved (running_mean, running_var) per BatchNorm2d in visit order.
  std::vector<std::pair<Tensor, Tensor>> saved_bn_;
};

}  // namespace nvm::puma

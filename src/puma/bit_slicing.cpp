#include "puma/bit_slicing.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace nvm::puma {

std::int64_t slice_count(std::int64_t value_bits, std::int64_t chunk_bits) {
  NVM_CHECK(value_bits >= 1 && chunk_bits >= 1);
  return (value_bits + chunk_bits - 1) / chunk_bits;
}

Tensor extract_chunk(const Tensor& values, std::int64_t index,
                     std::int64_t chunk_bits) {
  Tensor out(values.shape());
  extract_chunk_into(values.data(), index, chunk_bits, out.data());
  return out;
}

float extract_chunk_into(std::span<const float> src, std::int64_t index,
                         std::int64_t chunk_bits, std::span<float> dst) {
  NVM_CHECK(index >= 0 && chunk_bits >= 1 && chunk_bits < 31);
  NVM_CHECK_EQ(src.size(), dst.size());
  const std::int64_t shift = index * chunk_bits;
  const std::int64_t mask = (std::int64_t{1} << chunk_bits) - 1;
  float max_val = 0.0f;
  for (std::size_t i = 0; i < src.size(); ++i) {
    NVM_CHECK(src[i] >= 0.0f, "negative value in bit slicing: " << src[i]);
    const auto v = static_cast<std::int64_t>(std::llround(src[i]));
    const float c = static_cast<float>((v >> shift) & mask);
    dst[i] = c;
    max_val = std::max(max_val, c);
  }
  return max_val;
}

int extract_chunk_i16_into(std::span<const std::int16_t> src,
                           std::int64_t index, std::int64_t chunk_bits,
                           std::span<std::int8_t> dst) {
  NVM_CHECK(index >= 0 && chunk_bits >= 1 && chunk_bits <= 7);
  NVM_CHECK_EQ(src.size(), dst.size());
  const int shift = static_cast<int>(index * chunk_bits);
  const int mask = (1 << chunk_bits) - 1;
  int max_val = 0;
  for (std::size_t i = 0; i < src.size(); ++i) {
    NVM_CHECK(src[i] >= 0, "negative value in bit slicing: " << src[i]);
    const int c = (src[i] >> shift) & mask;
    dst[i] = static_cast<std::int8_t>(c);
    max_val = std::max(max_val, c);
  }
  return max_val;
}

float chunk_weight(std::int64_t index, std::int64_t chunk_bits) {
  return static_cast<float>(std::int64_t{1} << (index * chunk_bits));
}

}  // namespace nvm::puma

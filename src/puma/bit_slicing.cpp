#include "puma/bit_slicing.h"

#include <cmath>

#include "common/check.h"

namespace nvm::puma {

std::int64_t slice_count(std::int64_t value_bits, std::int64_t chunk_bits) {
  NVM_CHECK(value_bits >= 1 && chunk_bits >= 1);
  return (value_bits + chunk_bits - 1) / chunk_bits;
}

Tensor extract_chunk(const Tensor& values, std::int64_t index,
                     std::int64_t chunk_bits) {
  NVM_CHECK(index >= 0 && chunk_bits >= 1 && chunk_bits < 31);
  const std::int64_t shift = index * chunk_bits;
  const std::int64_t mask = (std::int64_t{1} << chunk_bits) - 1;
  Tensor out(values.shape());
  auto src = values.data();
  auto dst = out.data();
  for (std::size_t i = 0; i < src.size(); ++i) {
    NVM_CHECK(src[i] >= 0.0f, "negative value in bit slicing: " << src[i]);
    const auto v = static_cast<std::int64_t>(std::llround(src[i]));
    dst[i] = static_cast<float>((v >> shift) & mask);
  }
  return out;
}

float chunk_weight(std::int64_t index, std::int64_t chunk_bits) {
  return static_cast<float>(std::int64_t{1} << (index * chunk_bits));
}

}  // namespace nvm::puma

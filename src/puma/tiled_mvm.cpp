#include "puma/tiled_mvm.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <span>
#include <sstream>
#include <vector>

#include "common/check.h"
#include "common/env.h"
#include "common/metrics.h"
#include "common/simd.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "puma/bit_slicing.h"
#include "puma/plan.h"
#include "puma/quantize.h"

namespace nvm::puma {

namespace {

/// -1 = no test override; 0/1 force the gate.
std::atomic<int>& int_path_override() {
  static std::atomic<int> v{-1};
  return v;
}

}  // namespace

bool int_path_enabled() {
  const int o = int_path_override().load(std::memory_order_relaxed);
  if (o >= 0) return o != 0;
  static const bool enabled = env_int("NVM_INT_PATH", 1) != 0;
  return enabled;
}

ScopedIntPathForTests::ScopedIntPathForTests(bool enabled)
    : prev_(int_path_override().exchange(enabled ? 1 : 0)) {}

ScopedIntPathForTests::~ScopedIntPathForTests() {
  int_path_override().store(prev_);
}

std::int64_t HwConfig::weight_slices() const {
  return slice_count(weight_bits - 1, slice_bits);
}

std::int64_t HwConfig::input_streams() const {
  return slice_count(input_bits, stream_bits);
}

std::string HwConfig::tag() const {
  std::ostringstream os;
  os << "w" << weight_bits << "s" << slice_bits << "i" << input_bits << "t"
     << stream_bits << "a" << adc_bits << (skip_zero_tiles ? "" : "_noskip")
     << (gain_trim ? "_trim" : "") << (bn_reestimate ? "" : "_nobn");
  return os.str();
}

TiledMatrix::TiledMatrix(const Tensor& w,
                         std::shared_ptr<const xbar::MvmModel> model,
                         HwConfig hw)
    : hw_(hw), model_(std::move(model)) {
  NVM_CHECK(model_ != nullptr);
  NVM_CHECK_EQ(w.rank(), 2u);
  const auto& cfg = model_->config();
  NVM_CHECK((std::int64_t{1} << hw_.slice_bits) <= cfg.levels,
            "slice bits exceed device levels");
  m_ = w.dim(0);
  k_ = w.dim(1);
  row_tiles_ = (k_ + cfg.rows - 1) / cfg.rows;
  col_tiles_ = (m_ + cfg.cols - 1) / cfg.cols;
  const std::int64_t slices = hw_.weight_slices();

  QuantizedWeights qw = quantize_weights(w, hw_.weight_bits);
  weight_scale_ = qw.scale;

  const float g_off = static_cast<float>(cfg.g_off());
  const float g_unit = static_cast<float>(
      (cfg.g_on() - cfg.g_off()) /
      static_cast<double>((std::int64_t{1} << hw_.slice_bits) - 1));

  // Integer bit-slice path eligibility (DESIGN.md §13): chunk values must
  // fit int8 (weight slices and DAC codes), activation codes must fit
  // int16, and every per-tile integer dot product must stay below 2^24 so
  // its float image is exact (that bound is what makes the int kernels
  // bit-identical twins of the float ones).
  {
    const std::int64_t smax = (std::int64_t{1} << hw_.slice_bits) - 1;
    const std::int64_t tmax = (std::int64_t{1} << hw_.stream_bits) - 1;
    int_gates_ok_ = hw_.slice_bits <= 7 && hw_.stream_bits <= 7 &&
                    hw_.input_bits <= 15 &&
                    cfg.rows * smax * tmax < (std::int64_t{1} << 24);
  }

  tiles_.resize(
      static_cast<std::size_t>(row_tiles_ * col_tiles_ * 2 * slices));
  if (int_gates_ok_ && model_->is_ideal()) wchunks_.resize(tiles_.size());
  for (std::int64_t ti = 0; ti < row_tiles_; ++ti) {
    const std::int64_t k0 = ti * cfg.rows;
    const std::int64_t k1 = std::min(k_, k0 + cfg.rows);
    for (std::int64_t tj = 0; tj < col_tiles_; ++tj) {
      const std::int64_t m0 = tj * cfg.cols;
      const std::int64_t m1 = std::min(m_, m0 + cfg.cols);
      for (int pol = 0; pol < 2; ++pol) {
        // Polarity 0 = positive weights, 1 = negative magnitudes.
        Tensor mag({k1 - k0, m1 - m0});
        bool any = false;
        for (std::int64_t kk = k0; kk < k1; ++kk) {
          for (std::int64_t mm = m0; mm < m1; ++mm) {
            const float q = qw.q.at(mm, kk);
            const float v = (pol == 0) ? std::max(q, 0.0f) : std::max(-q, 0.0f);
            mag.at(kk - k0, mm - m0) = v;
            any = any || v != 0.0f;
          }
        }
        for (std::int64_t s = 0; s < slices; ++s) {
          const std::size_t slot = static_cast<std::size_t>(
              ((ti * col_tiles_ + tj) * 2 + pol) * slices + s);
          if (hw_.skip_zero_tiles && !any) continue;  // whole polarity empty
          Tensor chunk = extract_chunk(mag, s, hw_.slice_bits);
          if (hw_.skip_zero_tiles && chunk.abs_max() == 0.0f) continue;
          // Map to conductances on a full (rows x cols) crossbar; unused
          // cells stay at g_off and are cancelled by baseline subtraction
          // (their inputs are zero-padded anyway).
          Tensor g = Tensor::full({cfg.rows, cfg.cols}, g_off);
          for (std::int64_t kk = 0; kk < k1 - k0; ++kk)
            for (std::int64_t mm = 0; mm < m1 - m0; ++mm)
              g.at(kk, mm) = g_off + g_unit * chunk.at(kk, mm);
          tiles_[slot] = model_->program(g);
          ++programmed_count_;
          if (!wchunks_.empty()) {
            // Same chunk values as the programmed conductances, kept as
            // int8 for the fully-digital int path.
            std::vector<std::int8_t>& w8 = wchunks_[slot];
            w8.resize(static_cast<std::size_t>((k1 - k0) * (m1 - m0)));
            for (std::int64_t kk = 0; kk < k1 - k0; ++kk)
              for (std::int64_t mm = 0; mm < m1 - m0; ++mm)
                w8[static_cast<std::size_t>(kk * (m1 - m0) + mm)] =
                    static_cast<std::int8_t>(chunk.at(kk, mm));
          }
        }
      }
    }
  }
  static metrics::Counter& programmed =
      metrics::counter("puma/tiled/tiles_programmed");
  programmed.add(static_cast<std::uint64_t>(programmed_count_));
}

TiledMatrix::~TiledMatrix() = default;

std::int64_t TiledMatrix::total_tile_slots() const {
  return row_tiles_ * col_tiles_ * 2 * hw_.weight_slices();
}

const MvmPlan* TiledMatrix::plan() const {
  std::call_once(plan_once_, [&] { plan_ = MvmPlan::compile(*this); });
  return plan_.get();
}

Tensor TiledMatrix::matmul(const Tensor& x, float input_scale) const {
  // Plan route (DESIGN.md §17): compile once, then run the fused schedule.
  // NVM_PLAN=0 restores the interpreter below, the bit-identity reference.
  if (plan_enabled()) {
    if (const MvmPlan* p = plan(); p != nullptr)
      return p->execute(*this, x, input_scale);
  }
  NVM_TRACE_SPAN("puma/tiled/matmul");
  static metrics::Counter& m_matmuls = metrics::counter("puma/tiled/matmuls");
  m_matmuls.add();
  NVM_CHECK_EQ(x.rank(), 2u);
  NVM_CHECK_EQ(x.dim(0), k_);
  const std::int64_t n = x.dim(1);
  NVM_CHECK(x.min() >= -1e-4f, "crossbar inputs must be non-negative, got "
                                   << x.min());

  float s_x = input_scale;
  if (s_x <= 0.0f) s_x = x.max();
  Tensor result({m_, n});
  if (s_x <= 0.0f) return result;  // all-zero input

  const auto& cfg = model_->config();

  // Route through the integer bit-slice pipeline when eligible
  // (DESIGN.md §13): kIntDigital computes the whole evaluation with int8
  // GEMMs (ideal models only — their analog step IS the exact dot
  // product); kIntChunks keeps the analog model but hands it integer DAC
  // codes instead of materialized voltages (bit-identical by the
  // mvm_chunks_active contract). kLegacy is the original float pipeline
  // (NVM_INT_PATH=0 escape hatch).
  enum class Path { kLegacy, kIntDigital, kIntChunks };
  Path path = Path::kLegacy;
  if (int_gates_ok_ && int_path_enabled()) {
    if (!wchunks_.empty())
      path = Path::kIntDigital;
    else if (model_->supports_chunk_mvm())
      path = Path::kIntChunks;
  }
  static metrics::Counter& m_int_digital =
      metrics::counter("puma/tiled/matmuls_int_digital");
  static metrics::Counter& m_int_chunks =
      metrics::counter("puma/tiled/matmuls_int_chunks");
  if (path == Path::kIntDigital) m_int_digital.add();
  if (path == Path::kIntChunks) m_int_chunks.add();

  Tensor xq;                       // legacy float activation codes
  std::vector<std::int16_t> xq16;  // int-path activation codes
  if (path == Path::kLegacy)
    xq = quantize_activations(x, s_x, hw_.input_bits);
  else
    xq16 = quantize_activations_i16(x, s_x, hw_.input_bits);

  const std::int64_t slices = hw_.weight_slices();
  const std::int64_t streams = hw_.input_streams();
  const float v_unit = static_cast<float>(
      cfg.v_read / static_cast<double>((std::int64_t{1} << hw_.stream_bits) - 1));
  const float g_unit = static_cast<float>(
      (cfg.g_on() - cfg.g_off()) /
      static_cast<double>((std::int64_t{1} << hw_.slice_bits) - 1));
  const float g_off = static_cast<float>(cfg.g_off());
  const float i_scale = static_cast<float>(cfg.i_scale());
  const float dot_unit = v_unit * g_unit;  // amps per integer dot count
  // adc_quantize's precondition, hoisted out of the fused per-row kernel.
  NVM_CHECK(hw_.adc_bits >= 2 && hw_.adc_bits <= 16,
            "adc_bits out of range: " << hw_.adc_bits);
  NVM_CHECK_GT(i_scale, 0.0f);
  const float adc_steps =
      static_cast<float>((std::int64_t{1} << hw_.adc_bits) - 1);

  // The GEMM runs in three phases on the thread pool. Results are
  // bit-identical for any NVM_THREADS because every parallel unit owns
  // disjoint output and the cross-slot reduction happens in a fixed order.
  //
  // Phase 1 — DAC: per (row tile, stream) voltage blocks and g_off
  // baselines, independent across row tiles.
  struct StreamBlock {
    Tensor volts;                      // legacy path: (cfg.rows, n) volts
    std::vector<std::int8_t> chunk;    // int paths: (cfg.rows, n) DAC codes
    std::vector<std::int8_t> row_max;  // int paths: per-row max code
    std::vector<float> baseline;       // per input vector, g_off*v_unit*Σc
    bool active = false;               // false: chunk all-zero, skippable
  };
  std::vector<StreamBlock> dac(
      static_cast<std::size_t>(row_tiles_ * streams));
  parallel_for(row_tiles_, [&](std::int64_t ti) {
    const std::int64_t k0 = ti * cfg.rows;
    const std::int64_t k1 = std::min(k_, k0 + cfg.rows);
    const std::int64_t k_used = k1 - k0;

    // Zero-padded integer input block and chunk scratch live in reused
    // per-thread workspace; only buffers that outlive this phase
    // (sb.volts / sb.chunk) are allocated.
    thread_local simd::Workspace ws;
    const std::size_t cells = static_cast<std::size_t>(cfg.rows * n);

    if (path == Path::kLegacy) {
      std::span<float> xblock = ws.floats(0, cells);
      std::span<float> chunk = ws.floats(1, cells);
      for (std::int64_t kk = 0; kk < k_used; ++kk) {
        const float* src = xq.raw() + (k0 + kk) * n;
        std::copy(src, src + n, xblock.data() + kk * n);
      }
      std::fill(xblock.begin() + static_cast<std::ptrdiff_t>(k_used * n),
                xblock.end(), 0.0f);

      for (std::int64_t t = 0; t < streams; ++t) {
        const float cmax =
            extract_chunk_into(xblock, t, hw_.stream_bits, chunk);
        if (hw_.skip_zero_tiles && cmax == 0.0f) continue;
        StreamBlock& sb = dac[static_cast<std::size_t>(ti * streams + t)];
        sb.active = true;
        sb.baseline.assign(static_cast<std::size_t>(n), 0.0f);
        for (std::int64_t kk = 0; kk < k_used; ++kk) {
          const float* src = chunk.data() + kk * n;
          for (std::int64_t nn = 0; nn < n; ++nn)
            sb.baseline[static_cast<std::size_t>(nn)] += src[nn];
        }
        for (std::int64_t nn = 0; nn < n; ++nn)
          sb.baseline[static_cast<std::size_t>(nn)] *= g_off * v_unit;
        sb.volts = Tensor({cfg.rows, n});  // integer chunk -> DAC voltages
        simd::scale(sb.volts.raw(), chunk.data(), v_unit,
                    static_cast<std::int64_t>(cells));
      }
      return;
    }

    // Int paths: codes stay integer end-to-end. The float baseline is
    // bit-identical to the legacy one — a float sum of small non-negative
    // integers is exact, so it equals float(integer column sum).
    std::span<std::int16_t> xblock = ws.i16s(0, cells);
    std::copy(xq16.begin() + static_cast<std::ptrdiff_t>(k0 * n),
              xq16.begin() + static_cast<std::ptrdiff_t>(k1 * n),
              xblock.begin());
    std::fill(xblock.begin() + static_cast<std::ptrdiff_t>(k_used * n),
              xblock.end(), std::int16_t{0});
    std::span<std::int32_t> colsum = ws.i32s(0, static_cast<std::size_t>(n));

    for (std::int64_t t = 0; t < streams; ++t) {
      StreamBlock& sb = dac[static_cast<std::size_t>(ti * streams + t)];
      sb.chunk.resize(cells);
      const int cmax = extract_chunk_i16_into(xblock, t, hw_.stream_bits,
                                              sb.chunk);
      if (hw_.skip_zero_tiles && cmax == 0) {
        sb.chunk.clear();
        sb.chunk.shrink_to_fit();
        continue;
      }
      sb.active = true;
      sb.row_max.assign(static_cast<std::size_t>(cfg.rows), 0);
      std::fill(colsum.begin(), colsum.end(), 0);
      for (std::int64_t kk = 0; kk < k_used; ++kk) {
        const std::int8_t* src = sb.chunk.data() + kk * n;
        std::int8_t rm = 0;
        for (std::int64_t nn = 0; nn < n; ++nn) {
          colsum[static_cast<std::size_t>(nn)] += src[nn];
          rm = std::max(rm, src[nn]);
        }
        sb.row_max[static_cast<std::size_t>(kk)] = rm;
      }
      sb.baseline.assign(static_cast<std::size_t>(n), 0.0f);
      for (std::int64_t nn = 0; nn < n; ++nn)
        sb.baseline[static_cast<std::size_t>(nn)] =
            static_cast<float>(colsum[static_cast<std::size_t>(nn)]) *
            (g_off * v_unit);
    }
  });

  // Phase 2 — crossbar passes: every programmed tile slot
  // (row tile, col tile, polarity, slice) is an independent task that
  // streams its input chunks, ADC-quantizes, and shift-adds into a
  // slot-local partial sum.
  const std::int64_t slots = total_tile_slots();
  std::vector<Tensor> partial(static_cast<std::size_t>(slots));
  static metrics::Counter& m_tile_mvms =
      metrics::counter("puma/tiled/tile_mvms");
  parallel_for(slots, [&](std::int64_t slot) {
    xbar::ProgrammedXbar* tile = tiles_[static_cast<std::size_t>(slot)].get();
    if (tile == nullptr) return;
    const std::int64_t s = slot % slices;
    const std::int64_t q = slot / slices;
    const int pol = static_cast<int>(q % 2);
    const std::int64_t tj = (q / 2) % col_tiles_;
    const std::int64_t ti = (q / 2) / col_tiles_;
    const std::int64_t k_used = std::min(k_, (ti + 1) * cfg.rows) - ti * cfg.rows;
    const std::int64_t m_used = std::min(m_, (tj + 1) * cfg.cols) - tj * cfg.cols;
    const float sign = (pol == 0) ? 1.0f : -1.0f;
    const float slice_w = chunk_weight(s, hw_.slice_bits);

    Tensor acc;
    std::uint64_t passes = 0;

    if (path == Path::kIntDigital) {
      // Fully digital: the ideal tile's analog output IS the dot product,
      // so compute it in int8/int32 and feed the integer ADC epilogue. The
      // model tiles are not consulted (NVM_INT_PATH=0 restores them).
      const std::vector<std::int8_t>& w8 =
          wchunks_[static_cast<std::size_t>(slot)];
      thread_local simd::Workspace ws;
      std::span<std::int32_t> dot =
          ws.i32s(1, static_cast<std::size_t>(m_used * n));
      for (std::int64_t t = 0; t < streams; ++t) {
        const StreamBlock& sb =
            dac[static_cast<std::size_t>(ti * streams + t)];
        if (!sb.active) continue;
        ++passes;
        std::fill(dot.begin(), dot.end(), 0);
        simd::gemm_at_i8_i32acc(dot.data(), w8.data(), sb.chunk.data(),
                                m_used, n, k_used, m_used, n, n);
        const float shift =
            sign * chunk_weight(t, hw_.stream_bits) * slice_w / dot_unit;
        if (acc.numel() == 0) acc = Tensor({m_used, n});
        for (std::int64_t mm = 0; mm < m_used; ++mm)
          simd::adc_shift_add_i32(acc.raw() + mm * n, dot.data() + mm * n,
                                  sb.baseline.data(), n, dot_unit, i_scale,
                                  adc_steps, shift);
      }
    } else {
      // One stream per tile visit: chunk t+1 reuses state chunk t left
      // behind (e.g. the circuit solver's converged node voltages as a
      // warm start).
      std::unique_ptr<xbar::XbarStream> stream = tile->open_stream();
      for (std::int64_t t = 0; t < streams; ++t) {
        const StreamBlock& sb =
            dac[static_cast<std::size_t>(ti * streams + t)];
        if (!sb.active) continue;
        ++passes;
        Tensor currents;  // (cols, n)
        if (path == Path::kIntChunks) {
          xbar::ChunkBlock cb;
          cb.chunk = sb.chunk.data();
          cb.row_max = sb.row_max.data();
          cb.rows = cfg.rows;
          cb.n = n;
          cb.v_unit = v_unit;
          currents = stream->mvm_chunks_active(cb, k_used, m_used);
        } else {
          currents = stream->mvm_multi_active(sb.volts, k_used, m_used);
        }
        const float shift =
            sign * chunk_weight(t, hw_.stream_bits) * slice_w / dot_unit;
        if (acc.numel() == 0) acc = Tensor({m_used, n});
        for (std::int64_t mm = 0; mm < m_used; ++mm)
          simd::adc_shift_add(acc.raw() + mm * n, currents.raw() + mm * n,
                              sb.baseline.data(), n, i_scale, adc_steps,
                              shift);
      }
    }
    if (passes != 0) m_tile_mvms.add(passes);
    partial[static_cast<std::size_t>(slot)] = std::move(acc);
  });

  // Phase 3 — reduction: each output col tile owns disjoint result rows
  // and folds its slots in a fixed (row tile, polarity, slice) order.
  parallel_for(col_tiles_, [&](std::int64_t tj) {
    const std::int64_t m0 = tj * cfg.cols;
    const std::int64_t m_used = std::min(m_, m0 + cfg.cols) - m0;
    for (std::int64_t ti = 0; ti < row_tiles_; ++ti)
      for (int pol = 0; pol < 2; ++pol)
        for (std::int64_t s = 0; s < slices; ++s) {
          const std::size_t slot = static_cast<std::size_t>(
              ((ti * col_tiles_ + tj) * 2 + pol) * slices + s);
          const Tensor& acc = partial[slot];
          if (acc.numel() == 0) continue;
          for (std::int64_t mm = 0; mm < m_used; ++mm) {
            const float* src = acc.raw() + mm * n;
            float* res = result.raw() + (m0 + mm) * n;
            for (std::int64_t nn = 0; nn < n; ++nn) res[nn] += src[nn];
          }
        }
  });

  // Undo integer scaling: W ~ weight_scale * Wq, X ~ s_x * Xq / (2^ib - 1).
  const float x_unit =
      s_x / static_cast<float>((std::int64_t{1} << hw_.input_bits) - 1);
  result *= weight_scale_ * x_unit;
  return result;
}

}  // namespace nvm::puma

// First-order energy / latency / utilization model of a crossbar
// deployment (ISAAC / PUMA style accounting).
//
// The paper's motivation for NVM crossbars is efficiency; this model makes
// the repo's deployments comparable on that axis. It is a *static*
// analyzer: a probe forward pass records every GEMM the network issues,
// and the mapping arithmetic of TiledMatrix (tiling, polarities, slices,
// streams) converts each GEMM into counts of crossbar reads, DAC and ADC
// conversions, and digital shift-add operations.
//
// Energy constants are first-order per-op values in the range published
// for ISAAC/PUMA-class designs; the analog crossbar read energy is
// derived from the configured physics (V^2 * G * t integrated over the
// array at a configurable input activity). Absolute joules are
// indicative; *ratios* between configurations are the useful output.
#pragma once

#include <vector>

#include "nn/network.h"
#include "puma/tiled_mvm.h"

namespace nvm::puma {

struct CostParams {
  double t_read_ns = 100.0;   ///< crossbar integration time per read
  double t_adc_ns = 1.0;      ///< per conversion (1 GS/s ADC, muxed)
  double e_adc_pj = 2.0;      ///< per conversion (~8-10 bit)
  double e_dac_pj = 0.1;      ///< per row-driver conversion
  double e_shift_add_pj = 0.05;  ///< digital accumulate per output element
  /// Average input activity: fraction of full-scale voltage squared, used
  /// for the analog read energy estimate (post-ReLU activations are
  /// sparse and small).
  double input_activity = 0.15;
  /// Crossbar tiles operating in parallel (PUMA packs many MVMUs).
  std::int64_t parallel_tiles = 8;

  // -- Write (programming) cost, used by estimate_reprogram_cost --
  double e_write_pj = 50.0;    ///< energy per cell write pulse (SET/RESET)
  double t_write_ns = 100.0;   ///< duration of one write pulse
  /// Average program-and-verify iterations per cell; multi-level NVM
  /// needs several pulses to land inside a conductance window.
  double writes_per_cell = 4.0;
};

struct GemmShape {
  std::int64_t m = 0, k = 0, n = 0;
};

struct LayerCost {
  GemmShape shape;
  std::int64_t row_tiles = 0, col_tiles = 0;
  /// Crossbar passes per input vector (tiles x polarities x slices x
  /// streams); zero-tile skipping is not assumed (upper bound).
  std::int64_t passes = 0;
  std::int64_t crossbar_reads = 0;   ///< passes x n
  std::int64_t dac_conversions = 0;  ///< reads x rows_used
  std::int64_t adc_conversions = 0;  ///< reads x cols_used
  double analog_energy_nj = 0.0;
  double peripheral_energy_nj = 0.0;
  double latency_us = 0.0;
  /// Fraction of programmed crossbar cells holding real weights.
  double utilization = 0.0;
};

struct CostReport {
  std::vector<LayerCost> layers;
  double total_energy_nj = 0.0;
  double total_latency_us = 0.0;
  std::int64_t total_crossbar_reads = 0;
  std::int64_t total_adc_conversions = 0;
  double mean_utilization = 0.0;
};

/// Estimates the per-inference cost of deploying `net` on crossbars of
/// `cfg` with mapping `hw`. Runs one probe forward pass on `sample` to
/// discover the GEMM shapes; the network is left untouched (engines are
/// restored).
CostReport estimate_cost(nn::Network& net, const Tensor& sample,
                         const xbar::CrossbarConfig& cfg, const HwConfig& hw,
                         const CostParams& params = {});

/// Cost of (re)programming every crossbar a deployment of `net` occupies:
/// the maintenance-side counterpart of the per-inference read cost above.
/// The fleet recalibration scheduler prices its actions with this.
struct ReprogramCost {
  std::int64_t crossbars = 0;      ///< tile instances (tiles x pol x slices)
  std::int64_t cells_written = 0;  ///< crossbars x rows x cols (full arrays)
  double write_energy_nj = 0.0;
  double write_latency_us = 0.0;   ///< row-parallel writes, tiles grouped
};

/// Estimates the one-shot cost of re-programming `net`'s full tile set on
/// crossbars of `cfg` with mapping `hw`. Same probe-forward discovery as
/// estimate_cost; the network is left untouched.
ReprogramCost estimate_reprogram_cost(nn::Network& net, const Tensor& sample,
                                      const xbar::CrossbarConfig& cfg,
                                      const HwConfig& hw,
                                      const CostParams& params = {});

}  // namespace nvm::puma

#include "puma/plan.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <sstream>
#include <string>

#include "common/check.h"
#include "common/env.h"
#include "common/file_cache.h"
#include "common/metrics.h"
#include "common/simd.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "nn/network.h"
#include "puma/bit_slicing.h"
#include "puma/quantize.h"

namespace nvm::puma {

namespace {

/// -1 = no test override; 0/1 force the gate.
std::atomic<int>& plan_override() {
  static std::atomic<int> v{-1};
  return v;
}

constexpr std::uint32_t kPlanDescVersion = 1;

std::string hex64(std::uint64_t v) {
  std::ostringstream os;
  os << std::hex << v;
  return os.str();
}

}  // namespace

bool plan_enabled() {
  const int o = plan_override().load(std::memory_order_relaxed);
  if (o >= 0) return o != 0;
  static const bool enabled = env_int("NVM_PLAN", 1) != 0;
  return enabled;
}

ScopedPlanForTests::ScopedPlanForTests(bool enabled)
    : prev_(plan_override().exchange(enabled ? 1 : 0)) {}

ScopedPlanForTests::~ScopedPlanForTests() { plan_override().store(prev_); }

MvmPlan::~MvmPlan() = default;

std::unique_ptr<MvmPlan> MvmPlan::compile(const TiledMatrix& tm) {
  NVM_TRACE_SPAN("puma/plan/compile");
  static metrics::Counter& m_builds = metrics::counter("plan/builds");
  static metrics::Counter& m_fused = metrics::counter("plan/fused_slots");
  static metrics::Counter& m_hits = metrics::counter("plan/cache_hits");
  static metrics::Counter& m_misses = metrics::counter("plan/cache_misses");
  m_builds.add();

  const auto& cfg = tm.model_->config();
  const std::int64_t slices = tm.hw_.weight_slices();
  const std::int64_t streams = tm.hw_.input_streams();
  const float v_unit = static_cast<float>(
      cfg.v_read /
      static_cast<double>((std::int64_t{1} << tm.hw_.stream_bits) - 1));
  const float g_unit = static_cast<float>(
      (cfg.g_on() - cfg.g_off()) /
      static_cast<double>((std::int64_t{1} << tm.hw_.slice_bits) - 1));
  const float dot_unit = v_unit * g_unit;

  std::unique_ptr<MvmPlan> plan(new MvmPlan());

  // Lower the pipeline into the shared IR: the graph is both the plan's
  // identity (graph_hash keys the descriptor cache) and a diagnostic
  // artifact. Hash-consing collapses structurally identical tile slots.
  nn::ir::Graph graph;
  const std::int64_t in =
      graph.intern(nn::ir::Op::kInput, {}, {tm.k_}, "x");
  const std::int64_t q = graph.intern(
      nn::ir::Op::kQuantize, {in}, {tm.hw_.input_bits}, "quantize");
  const std::int64_t dac = graph.intern(
      nn::ir::Op::kDac, {q}, {tm.hw_.stream_bits, tm.row_tiles_, streams},
      "dac");
  std::vector<std::int64_t> slot_nodes;

  const std::int64_t slots = tm.total_tile_slots();
  for (std::int64_t slot = 0; slot < slots; ++slot) {
    if (tm.tiles_[static_cast<std::size_t>(slot)] == nullptr) continue;
    SlotStep step;
    step.slot = slot;
    step.s = slot % slices;
    const std::int64_t qd = slot / slices;
    step.pol = static_cast<int>(qd % 2);
    step.tj = (qd / 2) % tm.col_tiles_;
    step.ti = (qd / 2) / tm.col_tiles_;
    step.k_used =
        std::min(tm.k_, (step.ti + 1) * cfg.rows) - step.ti * cfg.rows;
    step.m_used =
        std::min(tm.m_, (step.tj + 1) * cfg.cols) - step.tj * cfg.cols;
    const float sign = (step.pol == 0) ? 1.0f : -1.0f;
    const float slice_w = chunk_weight(step.s, tm.hw_.slice_bits);
    step.shifts.resize(static_cast<std::size_t>(streams));
    for (std::int64_t t = 0; t < streams; ++t)
      // Exactly the interpreter's expression (left-associated), hoisted
      // out of the per-call slot loop.
      step.shifts[static_cast<std::size_t>(t)] =
          sign * chunk_weight(t, tm.hw_.stream_bits) * slice_w / dot_unit;
    plan->steps_.push_back(std::move(step));
    slot_nodes.push_back(graph.intern(
        nn::ir::Op::kTileMvm, {dac},
        {slot, plan->steps_.back().k_used, plan->steps_.back().m_used},
        "tile_mvm/" + std::to_string(slot)));
  }
  std::vector<std::int64_t> adc_inputs = std::move(slot_nodes);
  const std::int64_t adc = graph.intern(
      nn::ir::Op::kAdcShiftAdd, std::move(adc_inputs), {tm.hw_.adc_bits},
      "adc_shift_add");
  graph.intern(nn::ir::Op::kOutput, {adc}, {tm.m_}, "y");

  // Seed the graph hash with everything structural that the node attrs do
  // not carry: hw tag, model identity, crossbar geometry.
  std::uint64_t seed = 0x4d766d506c616eull;  // "MvmPlan"
  const std::string id = tm.hw_.tag() + "|" + tm.model_->name() + "|" +
                         std::to_string(cfg.rows) + "x" +
                         std::to_string(cfg.cols);
  seed = crc32(id.data(), id.size(), static_cast<std::uint32_t>(seed));
  plan->hash_ = graph.graph_hash(seed);

  // Descriptor cache round trip. The descriptor is the linearized
  // schedule (slot ids + precomputed ADC shifts); the fused kernels below
  // are rebuilt from live programmed state every time — their tables ARE
  // runtime memory, not a serializable artifact. A hit must match the
  // live slot list exactly (a stale or colliding entry is discarded and
  // overwritten); either way the schedule used is validated.
  const std::string cache_name = "plan_mvm_" + hex64(plan->hash_);
  const std::string cache_tag =
      "v" + std::to_string(kPlanDescVersion) + ":" + hex64(plan->hash_);
  bool cache_ok = false;
  cache_load(cache_name, cache_tag, [&](BinaryReader& r) {
    if (r.read_u32() != kPlanDescVersion) return;
    if (r.read_u64() != plan->hash_) return;
    const std::int64_t n_steps = r.read_i64();
    if (n_steps != static_cast<std::int64_t>(plan->steps_.size())) return;
    std::vector<std::vector<float>> shifts;
    shifts.reserve(static_cast<std::size_t>(n_steps));
    for (std::int64_t i = 0; i < n_steps; ++i) {
      if (r.read_i64() != plan->steps_[static_cast<std::size_t>(i)].slot)
        return;
      shifts.push_back(r.read_f32_vec());
      if (static_cast<std::int64_t>(shifts.back().size()) != streams) return;
    }
    // Adopt the cached shifts (identical to the recomputed ones when the
    // entry is genuine; the checks above reject structural drift).
    for (std::int64_t i = 0; i < n_steps; ++i)
      plan->steps_[static_cast<std::size_t>(i)].shifts =
          std::move(shifts[static_cast<std::size_t>(i)]);
    cache_ok = true;
  });
  if (cache_ok) {
    m_hits.add();
  } else {
    m_misses.add();
    cache_store(cache_name, cache_tag, [&](BinaryWriter& w) {
      w.write_u32(kPlanDescVersion);
      w.write_u64(plan->hash_);
      w.write_i64(static_cast<std::int64_t>(plan->steps_.size()));
      for (const SlotStep& step : plan->steps_) {
        w.write_i64(step.slot);
        w.write_f32_vec(step.shifts);
      }
    });
  }

  // Fuse: compile per-tile chunk kernels where the model offers them and
  // the integer chunk path is even reachable (bit-width gates; the ideal
  // digital path outranks chunks and never consults the tiles).
  if (tm.int_gates_ok_ && tm.wchunks_.empty() &&
      tm.model_->supports_chunk_mvm()) {
    const int max_code =
        static_cast<int>((std::int64_t{1} << tm.hw_.stream_bits) - 1);
    for (SlotStep& step : plan->steps_) {
      std::unique_ptr<xbar::FusedChunkKernel> kernel =
          tm.tiles_[static_cast<std::size_t>(step.slot)]
              ->compile_chunk_kernel(v_unit, max_code);
      if (kernel == nullptr) continue;
      step.kernel = kernel.get();
      plan->kernels_.push_back(std::move(kernel));
      ++plan->fused_count_;
    }
  }
  if (plan->fused_count_ > 0)
    m_fused.add(static_cast<std::uint64_t>(plan->fused_count_));
  return plan;
}

Tensor MvmPlan::execute(const TiledMatrix& tm, const Tensor& x,
                        float input_scale) const {
  // Same span name as the interpreter (tooling keyed on puma/tiled/matmul
  // sees both paths), with the plan span nested inside it.
  NVM_TRACE_SPAN("puma/tiled/matmul");
  NVM_TRACE_SPAN("puma/plan/execute");
  static metrics::Counter& m_matmuls = metrics::counter("puma/tiled/matmuls");
  static metrics::Counter& m_executes = metrics::counter("plan/executes");
  static metrics::Counter& m_fused_runs = metrics::counter("plan/fused_runs");
  m_matmuls.add();
  m_executes.add();
  NVM_CHECK_EQ(x.rank(), 2u);
  NVM_CHECK_EQ(x.dim(0), tm.k_);
  const std::int64_t n = x.dim(1);
  NVM_CHECK(x.min() >= -1e-4f, "crossbar inputs must be non-negative, got "
                                   << x.min());

  float s_x = input_scale;
  if (s_x <= 0.0f) s_x = x.max();
  Tensor result({tm.m_, n});
  if (s_x <= 0.0f) return result;  // all-zero input

  const auto& cfg = tm.model_->config();

  // Path selection matches the interpreter call-for-call (the int-path
  // gate is re-read per execution so ScopedIntPathForTests behaves
  // identically under plans).
  enum class Path { kLegacy, kIntDigital, kIntChunks };
  Path path = Path::kLegacy;
  if (tm.int_gates_ok_ && int_path_enabled()) {
    if (!tm.wchunks_.empty())
      path = Path::kIntDigital;
    else if (tm.model_->supports_chunk_mvm())
      path = Path::kIntChunks;
  }
  static metrics::Counter& m_int_digital =
      metrics::counter("puma/tiled/matmuls_int_digital");
  static metrics::Counter& m_int_chunks =
      metrics::counter("puma/tiled/matmuls_int_chunks");
  if (path == Path::kIntDigital) m_int_digital.add();
  if (path == Path::kIntChunks) m_int_chunks.add();

  Tensor xq;
  std::vector<std::int16_t> xq16;
  if (path == Path::kLegacy)
    xq = quantize_activations(x, s_x, tm.hw_.input_bits);
  else
    xq16 = quantize_activations_i16(x, s_x, tm.hw_.input_bits);

  const std::int64_t streams = tm.hw_.input_streams();
  const float v_unit = static_cast<float>(
      cfg.v_read /
      static_cast<double>((std::int64_t{1} << tm.hw_.stream_bits) - 1));
  const float g_unit = static_cast<float>(
      (cfg.g_on() - cfg.g_off()) /
      static_cast<double>((std::int64_t{1} << tm.hw_.slice_bits) - 1));
  const float g_off = static_cast<float>(cfg.g_off());
  const float i_scale = static_cast<float>(cfg.i_scale());
  const float dot_unit = v_unit * g_unit;
  NVM_CHECK(tm.hw_.adc_bits >= 2 && tm.hw_.adc_bits <= 16,
            "adc_bits out of range: " << tm.hw_.adc_bits);
  NVM_CHECK_GT(i_scale, 0.0f);
  const float adc_steps =
      static_cast<float>((std::int64_t{1} << tm.hw_.adc_bits) - 1);

  // Phase 1 — DAC (identical math to the interpreter; scratch comes from
  // the shared workspace pool instead of thread_local buffers).
  struct StreamBlock {
    Tensor volts;
    std::vector<std::int8_t> chunk;
    std::vector<std::int8_t> row_max;
    std::vector<float> baseline;
    bool active = false;
  };
  std::vector<StreamBlock> dacb(
      static_cast<std::size_t>(tm.row_tiles_ * streams));
  parallel_for(tm.row_tiles_, [&](std::int64_t ti) {
    const std::int64_t k0 = ti * cfg.rows;
    const std::int64_t k1 = std::min(tm.k_, k0 + cfg.rows);
    const std::int64_t k_used = k1 - k0;
    simd::WorkspacePool::Lease lease = simd::shared_workspace_pool().acquire();
    simd::Workspace& ws = lease.get();
    const std::size_t cells = static_cast<std::size_t>(cfg.rows * n);

    if (path == Path::kLegacy) {
      std::span<float> xblock = ws.floats(0, cells);
      std::span<float> chunk = ws.floats(1, cells);
      for (std::int64_t kk = 0; kk < k_used; ++kk) {
        const float* src = xq.raw() + (k0 + kk) * n;
        std::copy(src, src + n, xblock.data() + kk * n);
      }
      std::fill(xblock.begin() + static_cast<std::ptrdiff_t>(k_used * n),
                xblock.end(), 0.0f);
      for (std::int64_t t = 0; t < streams; ++t) {
        const float cmax =
            extract_chunk_into(xblock, t, tm.hw_.stream_bits, chunk);
        if (tm.hw_.skip_zero_tiles && cmax == 0.0f) continue;
        StreamBlock& sb = dacb[static_cast<std::size_t>(ti * streams + t)];
        sb.active = true;
        sb.baseline.assign(static_cast<std::size_t>(n), 0.0f);
        for (std::int64_t kk = 0; kk < k_used; ++kk) {
          const float* src = chunk.data() + kk * n;
          for (std::int64_t nn = 0; nn < n; ++nn)
            sb.baseline[static_cast<std::size_t>(nn)] += src[nn];
        }
        for (std::int64_t nn = 0; nn < n; ++nn)
          sb.baseline[static_cast<std::size_t>(nn)] *= g_off * v_unit;
        sb.volts = Tensor({cfg.rows, n});
        simd::scale(sb.volts.raw(), chunk.data(), v_unit,
                    static_cast<std::int64_t>(cells));
      }
      return;
    }

    std::span<std::int16_t> xblock = ws.i16s(0, cells);
    std::copy(xq16.begin() + static_cast<std::ptrdiff_t>(k0 * n),
              xq16.begin() + static_cast<std::ptrdiff_t>(k1 * n),
              xblock.begin());
    std::fill(xblock.begin() + static_cast<std::ptrdiff_t>(k_used * n),
              xblock.end(), std::int16_t{0});
    std::span<std::int32_t> colsum = ws.i32s(0, static_cast<std::size_t>(n));
    for (std::int64_t t = 0; t < streams; ++t) {
      StreamBlock& sb = dacb[static_cast<std::size_t>(ti * streams + t)];
      sb.chunk.resize(cells);
      const int cmax =
          extract_chunk_i16_into(xblock, t, tm.hw_.stream_bits, sb.chunk);
      if (tm.hw_.skip_zero_tiles && cmax == 0) {
        sb.chunk.clear();
        sb.chunk.shrink_to_fit();
        continue;
      }
      sb.active = true;
      sb.row_max.assign(static_cast<std::size_t>(cfg.rows), 0);
      std::fill(colsum.begin(), colsum.end(), 0);
      for (std::int64_t kk = 0; kk < k_used; ++kk) {
        const std::int8_t* src = sb.chunk.data() + kk * n;
        std::int8_t rm = 0;
        for (std::int64_t nn = 0; nn < n; ++nn) {
          colsum[static_cast<std::size_t>(nn)] += src[nn];
          rm = std::max(rm, src[nn]);
        }
        sb.row_max[static_cast<std::size_t>(kk)] = rm;
      }
      sb.baseline.assign(static_cast<std::size_t>(n), 0.0f);
      for (std::int64_t nn = 0; nn < n; ++nn)
        sb.baseline[static_cast<std::size_t>(nn)] =
            static_cast<float>(colsum[static_cast<std::size_t>(nn)]) *
            (g_off * v_unit);
    }
  });

  // Phase 2 — crossbar passes over the precompiled slot schedule. Slots
  // with a fused kernel skip stream/tensor setup entirely: the kernel
  // gathers currents straight into pooled scratch.
  const std::int64_t slots = tm.total_tile_slots();
  std::vector<Tensor> partial(static_cast<std::size_t>(slots));
  static metrics::Counter& m_tile_mvms =
      metrics::counter("puma/tiled/tile_mvms");
  parallel_for(static_cast<std::int64_t>(steps_.size()),
               [&](std::int64_t si) {
    const SlotStep& step = steps_[static_cast<std::size_t>(si)];
    xbar::ProgrammedXbar* tile =
        tm.tiles_[static_cast<std::size_t>(step.slot)].get();
    const std::int64_t k_used = step.k_used, m_used = step.m_used;
    Tensor acc;
    std::uint64_t passes = 0;
    simd::WorkspacePool::Lease lease = simd::shared_workspace_pool().acquire();
    simd::Workspace& ws = lease.get();

    if (path == Path::kIntDigital) {
      const std::vector<std::int8_t>& w8 =
          tm.wchunks_[static_cast<std::size_t>(step.slot)];
      std::span<std::int32_t> dot =
          ws.i32s(1, static_cast<std::size_t>(m_used * n));
      for (std::int64_t t = 0; t < streams; ++t) {
        const StreamBlock& sb =
            dacb[static_cast<std::size_t>(step.ti * streams + t)];
        if (!sb.active) continue;
        ++passes;
        std::fill(dot.begin(), dot.end(), 0);
        simd::gemm_at_i8_i32acc(dot.data(), w8.data(), sb.chunk.data(),
                                m_used, n, k_used, m_used, n, n);
        const float shift = step.shifts[static_cast<std::size_t>(t)];
        if (acc.numel() == 0) acc = Tensor({m_used, n});
        for (std::int64_t mm = 0; mm < m_used; ++mm)
          simd::adc_shift_add_i32(acc.raw() + mm * n, dot.data() + mm * n,
                                  sb.baseline.data(), n, dot_unit, i_scale,
                                  adc_steps, shift);
      }
    } else if (path == Path::kIntChunks && step.kernel != nullptr) {
      // Fused path: compiled per-cell tables replace the per-call table
      // build; currents land in pooled scratch (no per-pass Tensor).
      m_fused_runs.add();
      std::span<float> cur = ws.floats(3, static_cast<std::size_t>(m_used * n));
      for (std::int64_t t = 0; t < streams; ++t) {
        const StreamBlock& sb =
            dacb[static_cast<std::size_t>(step.ti * streams + t)];
        if (!sb.active) continue;
        ++passes;
        xbar::ChunkBlock cb;
        cb.chunk = sb.chunk.data();
        cb.row_max = sb.row_max.data();
        cb.rows = cfg.rows;
        cb.n = n;
        cb.v_unit = v_unit;
        step.kernel->run(cb, k_used, m_used, cur.data(), ws);
        const float shift = step.shifts[static_cast<std::size_t>(t)];
        if (acc.numel() == 0) acc = Tensor({m_used, n});
        for (std::int64_t mm = 0; mm < m_used; ++mm)
          simd::adc_shift_add(acc.raw() + mm * n, cur.data() + mm * n,
                              sb.baseline.data(), n, i_scale, adc_steps,
                              shift);
      }
    } else {
      std::unique_ptr<xbar::XbarStream> stream = tile->open_stream();
      for (std::int64_t t = 0; t < streams; ++t) {
        const StreamBlock& sb =
            dacb[static_cast<std::size_t>(step.ti * streams + t)];
        if (!sb.active) continue;
        ++passes;
        Tensor currents;
        if (path == Path::kIntChunks) {
          xbar::ChunkBlock cb;
          cb.chunk = sb.chunk.data();
          cb.row_max = sb.row_max.data();
          cb.rows = cfg.rows;
          cb.n = n;
          cb.v_unit = v_unit;
          currents = stream->mvm_chunks_active(cb, k_used, m_used);
        } else {
          currents = stream->mvm_multi_active(sb.volts, k_used, m_used);
        }
        const float shift = step.shifts[static_cast<std::size_t>(t)];
        if (acc.numel() == 0) acc = Tensor({m_used, n});
        for (std::int64_t mm = 0; mm < m_used; ++mm)
          simd::adc_shift_add(acc.raw() + mm * n, currents.raw() + mm * n,
                              sb.baseline.data(), n, i_scale, adc_steps,
                              shift);
      }
    }
    if (passes != 0) m_tile_mvms.add(passes);
    partial[static_cast<std::size_t>(step.slot)] = std::move(acc);
  });

  // Phase 3 — reduction in the interpreter's fixed (ti, pol, s) order.
  const std::int64_t slices = tm.hw_.weight_slices();
  parallel_for(tm.col_tiles_, [&](std::int64_t tj) {
    const std::int64_t m0 = tj * cfg.cols;
    const std::int64_t m_used = std::min(tm.m_, m0 + cfg.cols) - m0;
    for (std::int64_t ti = 0; ti < tm.row_tiles_; ++ti)
      for (int pol = 0; pol < 2; ++pol)
        for (std::int64_t s = 0; s < slices; ++s) {
          const std::size_t slot = static_cast<std::size_t>(
              ((ti * tm.col_tiles_ + tj) * 2 + pol) * slices + s);
          const Tensor& acc = partial[slot];
          if (acc.numel() == 0) continue;
          for (std::int64_t mm = 0; mm < m_used; ++mm) {
            const float* src = acc.raw() + mm * n;
            float* res = result.raw() + (m0 + mm) * n;
            for (std::int64_t nn = 0; nn < n; ++nn) res[nn] += src[nn];
          }
        }
  });

  const float x_unit =
      s_x / static_cast<float>((std::int64_t{1} << tm.hw_.input_bits) - 1);
  result *= tm.weight_scale_ * x_unit;
  return result;
}

std::shared_ptr<NetworkPlan> NetworkPlan::capture(nn::Network& net) {
  static metrics::Counter& m_caps = metrics::counter("plan/net_captures");
  static metrics::Counter& m_hits = metrics::counter("plan/cache_hits");
  static metrics::Counter& m_misses = metrics::counter("plan/cache_misses");
  nn::ir::Capture cap = nn::ir::capture(net);
  if (!cap.ok) return nullptr;
  std::uint64_t seed = 0x4e6574506c616eull;  // "NetPlan"
  seed = crc32(net.arch().data(), net.arch().size(),
               static_cast<std::uint32_t>(seed));
  const std::uint64_t hash = cap.graph.graph_hash(seed);
  m_caps.add();

  // Descriptor cache: the op/scope list keyed by graph hash. Validated
  // node-for-node on load; layer pointers are runtime state and never
  // serialized, so a hit only confirms the architecture was seen before.
  const std::string cache_name = "plan_net_" + hex64(hash);
  const std::string cache_tag =
      "v" + std::to_string(kPlanDescVersion) + ":" + hex64(hash);
  bool cache_ok = false;
  cache_load(cache_name, cache_tag, [&](BinaryReader& r) {
    if (r.read_u32() != kPlanDescVersion) return;
    if (r.read_u64() != hash) return;
    if (r.read_i64() != cap.graph.size()) return;
    for (std::int64_t id = 0; id < cap.graph.size(); ++id) {
      if (r.read_string() != nn::ir::op_name(cap.graph.node(id).op)) return;
      if (r.read_string() != cap.graph.node(id).scope) return;
    }
    cache_ok = true;
  });
  if (cache_ok) {
    m_hits.add();
  } else {
    m_misses.add();
    cache_store(cache_name, cache_tag, [&](BinaryWriter& w) {
      w.write_u32(kPlanDescVersion);
      w.write_u64(hash);
      w.write_i64(cap.graph.size());
      for (std::int64_t id = 0; id < cap.graph.size(); ++id) {
        w.write_string(nn::ir::op_name(cap.graph.node(id).op));
        w.write_string(cap.graph.node(id).scope);
      }
    });
  }
  return std::shared_ptr<NetworkPlan>(
      new NetworkPlan(std::move(cap), hash, net.num_classes()));
}

Tensor NetworkPlan::forward(const Tensor& x) {
  NVM_TRACE_SPAN("puma/plan/net_forward");
  static metrics::Counter& m_execs = metrics::counter("plan/net_executes");
  m_execs.add();
  Tensor y = x;
  const bool record = !shapes_recorded_;
  if (record) cap_.graph.set_shape(cap_.input_node, y.shape());
  for (std::size_t i = 0; i < cap_.steps.size(); ++i) {
    y = cap_.steps[i]->forward(y, nn::Mode::Eval);
    if (record) cap_.graph.set_shape(cap_.step_nodes[i], y.shape());
  }
  if (record) {
    cap_.graph.set_shape(cap_.output_node, y.shape());
    shapes_recorded_ = true;
  }
  NVM_CHECK_EQ(y.numel(), num_classes_);
  return y;
}

}  // namespace nvm::puma

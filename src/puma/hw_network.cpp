#include "puma/hw_network.h"

#include <map>

#include "common/check.h"
#include "common/logging.h"

namespace nvm::puma {

namespace {

/// Collects the BatchNorm layers of a network in visit order.
std::vector<nn::BatchNorm2d*> batchnorms(nn::Network& net) {
  std::vector<nn::BatchNorm2d*> out;
  nn::visit_layers(net.root(), [&](nn::Layer& l) {
    if (auto* bn = dynamic_cast<nn::BatchNorm2d*>(&l)) out.push_back(bn);
  });
  return out;
}

}  // namespace

HwDeployment::HwDeployment(nn::Network& net,
                           std::shared_ptr<const xbar::MvmModel> model,
                           std::span<const Tensor> calib_images,
                           const HwConfig& hw)
    : net_(net) {
  NVM_CHECK(model != nullptr);
  const HealthSnapshot deploy_start = health_snapshot();

  for (nn::BatchNorm2d* bn : batchnorms(net_))
    saved_bn_.emplace_back(bn->running_mean(), bn->running_var());

  // Pass 1: record per-layer activation ranges on ideal engines.
  std::map<nn::Layer*, std::shared_ptr<RecordingMvmEngine>> recorders;
  if (!calib_images.empty()) {
    net_.set_mvm_engines([&](nn::Layer& l) {
      auto rec = std::make_shared<RecordingMvmEngine>();
      recorders[&l] = rec;
      return rec;
    });
    for (const Tensor& img : calib_images)
      (void)net_.forward(img, nn::Mode::Eval);
  }

  // Pass 2: install crossbar engines with the calibrated DAC ranges.
  std::vector<std::shared_ptr<CrossbarMvmEngine>> engines;
  net_.set_mvm_engines([&](nn::Layer& l) -> std::shared_ptr<nn::MvmEngine> {
    float scale = 0.0f;  // dynamic fallback
    if (auto it = recorders.find(&l); it != recorders.end())
      scale = it->second->max_input();
    ++stats_.mvm_layers;
    stats_.input_scales.push_back(scale);
    auto engine = std::make_shared<CrossbarMvmEngine>(model, hw, scale);
    engines.push_back(engine);
    return engine;
  });

  // Pass 3: precise-BN re-estimation against the non-ideal activations.
  // Eval-mode forwards accumulate each BN's input statistics; two rounds
  // let later layers see the effect of earlier layers' updated statistics.
  if (hw.bn_reestimate && !calib_images.empty()) {
    auto bns = batchnorms(net_);
    for (int round = 0; round < 2; ++round) {
      for (nn::BatchNorm2d* bn : bns) bn->begin_stat_collection();
      for (const Tensor& img : calib_images)
        (void)net_.forward(img, nn::Mode::Eval);
      for (nn::BatchNorm2d* bn : bns) bn->finish_stat_collection();
    }
  }

  // Pass 4: optional per-layer systematic-gain trim.
  if (hw.gain_trim && !calib_images.empty()) {
    for (auto& e : engines) e->begin_gain_calibration();
    for (const Tensor& img : calib_images)
      (void)net_.forward(img, nn::Mode::Eval);
    for (auto& e : engines) {
      e->finish_gain_calibration();
      stats_.output_gains.push_back(e->output_gain());
    }
  }

  stats_.health = health_snapshot().delta_since(deploy_start);
  NVM_LOG(Info) << "deployed " << net_.arch() << " on " << model->config().name
                << "/" << model->name() << " (" << stats_.mvm_layers
                << " MVM layers)";
  if (!stats_.health.all_zero())
    NVM_LOG(Warn) << "deployment degraded during calibration: "
                  << stats_.health.summary();
}

HwDeployment::~HwDeployment() {
  net_.reset_mvm_engines();
  auto bns = batchnorms(net_);
  NVM_CHECK_EQ(bns.size(), saved_bn_.size());
  for (std::size_t i = 0; i < bns.size(); ++i) {
    bns[i]->running_mean() = saved_bn_[i].first;
    bns[i]->running_var() = saved_bn_[i].second;
    bns[i]->set_frozen(true);
  }
}

}  // namespace nvm::puma


// Tiled, bit-sliced crossbar GEMM — the PUMA functional-simulator core.
//
// A float weight matrix W (M x K) is deployed once:
//   1. symmetric signed quantization to `weight_bits`;
//   2. differential split into non-negative (W+, W-) magnitude matrices;
//   3. bit-slicing of each magnitude into `slice_bits` chunks;
//   4. tiling over K (crossbar rows) and M (crossbar columns);
//   5. linear mapping of each slice value onto [g_off, g_on] conductances,
//      programmed through the configured crossbar MvmModel.
//
// Every subsequent matmul(X) quantizes the (non-negative) activations to
// `input_bits`, streams them `stream_bits` at a time as DAC voltages,
// evaluates all programmed tiles, ADC-quantizes the analog column
// currents, subtracts the g_off baseline digitally, and shift-adds
// everything back into a float result approximating W * X.
//
// All crossbar evaluations flow through the injected MvmModel, so the same
// code path runs ideal, GENIEx, fast-noise, or circuit-solver crossbars.
//
// matmul() fans the programmed tile slots across nvm::ThreadPool (DAC
// precompute per row tile, one task per tile slot, fixed-order reduction
// per output col tile), so results are bit-identical for any NVM_THREADS.
// This relies on the ProgrammedXbar concurrency contract (xbar/mvm_model.h).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "xbar/mvm_model.h"

namespace nvm::puma {

class MvmPlan;

/// True when the integer bit-slice fast path (DESIGN.md §13) is enabled:
/// NVM_INT_PATH env (default 1), overridable per-scope in tests. Even when
/// enabled, a TiledMatrix only takes it when its bit widths fit the
/// integer kernels (slice_bits <= 7, stream_bits <= 7, input_bits <= 15,
/// per-tile dot counts < 2^24) and its model is ideal (full digital
/// evaluation) or supports chunk MVM (fast_noise); everything else uses
/// the legacy float pipeline.
bool int_path_enabled();

/// Test-only: forces the int-path gate while alive (restores on
/// destruction).
class ScopedIntPathForTests {
 public:
  explicit ScopedIntPathForTests(bool enabled);
  ~ScopedIntPathForTests();
  ScopedIntPathForTests(const ScopedIntPathForTests&) = delete;
  ScopedIntPathForTests& operator=(const ScopedIntPathForTests&) = delete;

 private:
  int prev_;
};

struct HwConfig {
  std::int64_t weight_bits = 7;  ///< signed; magnitude = weight_bits - 1
  std::int64_t slice_bits = 3;   ///< bits per device (<= log2(cfg.levels))
  std::int64_t input_bits = 6;   ///< activation quantization
  std::int64_t stream_bits = 3;  ///< bits per DAC step
  std::int64_t adc_bits = 10;
  /// Skip crossbar passes whose programmed slice is entirely zero or whose
  /// input stream chunk is entirely zero (the PUMA compiler would not map
  /// such tiles; their ideal contribution is exactly zero).
  bool skip_zero_tiles = true;
  /// Fit a per-layer digital output gain during deployment calibration to
  /// trim the systematic component of the non-ideality (compensation in
  /// the style of the paper's refs [16], [17], [36]). The paper's own
  /// stack runs WITHOUT compensation — the uncompensated, input-dependent
  /// current loss is precisely what provides the intrinsic robustness — so
  /// this defaults to off; the ablation bench flips it.
  bool gain_trim = false;
  /// Re-estimate BatchNorm running statistics on the deployed hardware
  /// (standard deployment-time recalibration). Recovers most of the clean
  /// accuracy lost to the systematic current shift while preserving the
  /// input-dependent deviation that blunts transferred attacks.
  bool bn_reestimate = false;

  std::int64_t weight_slices() const;
  std::int64_t input_streams() const;
  /// Stable identifier for cache keys / logs.
  std::string tag() const;
};

/// A weight matrix resident on crossbar tiles.
class TiledMatrix {
 public:
  /// Programs `w` (M x K) onto tiles of `model`'s crossbar geometry.
  TiledMatrix(const Tensor& w, std::shared_ptr<const xbar::MvmModel> model,
              HwConfig hw);
  ~TiledMatrix();

  /// Approximates W * X. `x` is (K, N), elementwise >= 0. `input_scale`
  /// fixes the activation quantization range; pass <= 0 for dynamic
  /// (per-call max) scaling. Tile evaluations run on the current
  /// nvm::ThreadPool; safe to call concurrently (tiles are immutable).
  /// With NVM_PLAN enabled (the default) the call runs through a lazily
  /// compiled, fused MvmPlan — bit-identical to the interpreter body,
  /// which NVM_PLAN=0 restores.
  Tensor matmul(const Tensor& x, float input_scale = 0.0f) const;

  /// The compiled plan, building it on first use (test/bench hook; matmul
  /// calls this internally when the plan gate is on).
  const MvmPlan* plan() const;

  std::int64_t rows() const { return m_; }
  std::int64_t cols() const { return k_; }
  /// Number of crossbar tiles actually programmed (zero tiles skipped).
  std::int64_t programmed_tiles() const { return programmed_count_; }
  /// Total tile slots (row tiles x col tiles x 2 polarities x slices).
  std::int64_t total_tile_slots() const;

 private:
  std::int64_t m_ = 0, k_ = 0;
  std::int64_t row_tiles_ = 0, col_tiles_ = 0;
  float weight_scale_ = 1.0f;
  HwConfig hw_;
  std::shared_ptr<const xbar::MvmModel> model_;
  // tiles_[((ti * col_tiles + tj) * 2 + pol) * slices + s]; null = skipped.
  std::vector<std::unique_ptr<xbar::ProgrammedXbar>> tiles_;
  std::int64_t programmed_count_ = 0;
  /// Bit widths fit the integer kernels (see int_path_enabled()).
  bool int_gates_ok_ = false;
  /// Per-slot int8 weight chunks, stored only for ideal models with
  /// int_gates_ok_ (the fully-digital int path); same indexing and skip
  /// pattern as tiles_.
  std::vector<std::vector<std::int8_t>> wchunks_;
  /// Lazily compiled execution plan (immutable once built; call_once
  /// keeps concurrent matmuls race-free).
  friend class MvmPlan;
  mutable std::once_flag plan_once_;
  mutable std::unique_ptr<MvmPlan> plan_;
};

}  // namespace nvm::puma

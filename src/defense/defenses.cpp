#include "defense/defenses.h"

#include <cmath>

#include "common/check.h"
#include "tensor/ops.h"

namespace nvm::defense {

Tensor reduce_bit_width(const Tensor& image, std::int64_t bits) {
  NVM_CHECK(bits >= 1 && bits <= 8, "bits=" << bits);
  const float levels = static_cast<float>((std::int64_t{1} << bits) - 1);
  Tensor out(image.shape());
  auto src = image.data();
  auto dst = out.data();
  for (std::size_t i = 0; i < src.size(); ++i) {
    const float clamped = std::clamp(src[i], 0.0f, 1.0f);
    dst[i] = std::round(clamped * levels) / levels;
  }
  return out;
}

Tensor sap_prune(const Tensor& activations, float sample_ratio, Rng& rng) {
  NVM_CHECK_GT(sample_ratio, 0.0f);
  const std::int64_t n = activations.numel();
  // Probability of each activation per draw, proportional to |a|.
  double total = 0.0;
  for (float v : activations.data()) total += std::abs(v);
  if (total <= 0.0) return activations;

  const auto k = static_cast<double>(
      std::llround(sample_ratio * static_cast<float>(n)));
  Tensor out(activations.shape());
  auto src = activations.data();
  auto dst = out.data();
  for (std::int64_t i = 0; i < n; ++i) {
    const double p = std::abs(src[i]) / total;
    // Probability the activation is picked at least once in k draws.
    const double keep_p = 1.0 - std::pow(1.0 - p, k);
    if (keep_p > 0.0 && rng.bernoulli(keep_p)) {
      // Inverse propensity rescaling keeps the layer output unbiased.
      dst[i] = src[i] / static_cast<float>(keep_p);
    } else {
      dst[i] = 0.0f;
    }
  }
  return out;
}

std::shared_ptr<Rng> attach_sap(nn::Network& net, const SapOptions& opt) {
  auto rng = std::make_shared<Rng>(opt.seed);
  const float ratio = opt.sample_ratio;
  net.set_conv_eval_hooks([rng, ratio](const Tensor& y) {
    return sap_prune(y, ratio, *rng);
  });
  return rng;
}

Tensor random_resize_pad(const Tensor& image, const RandomPadOptions& opt,
                         Rng& rng) {
  NVM_CHECK_EQ(image.rank(), 3u);
  NVM_CHECK(opt.resize_lo <= opt.resize_hi && opt.resize_hi <= opt.canvas,
            "invalid resize/canvas configuration");
  const std::int64_t target =
      rng.uniform_int(opt.resize_lo, opt.resize_hi);
  Tensor resized = resize_nearest(image, target, target);
  const std::int64_t slack = opt.canvas - target;
  const std::int64_t top = slack > 0 ? rng.uniform_int(0, slack) : 0;
  const std::int64_t left = slack > 0 ? rng.uniform_int(0, slack) : 0;
  return pad_image(resized, top, left, opt.canvas, opt.canvas);
}

}  // namespace nvm::defense

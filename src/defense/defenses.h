// The three comparison defenses from the paper (§III-C3), all applicable
// to a pretrained network without retraining:
//   * Input Bit-Width Reduction [35] — quantize the input image to 4 bits;
//   * Stochastic Activation Pruning (SAP) [20] — at inference, after every
//     convolution, sample activations with probability proportional to
//     their magnitude and rescale the survivors (an adaptive dropout);
//   * Random Resize + Pad [25] — rescale the image to a random size with
//     nearest-neighbour interpolation, then randomly zero-pad to a fixed
//     canvas.
// In the non-adaptive threat model these transformations are invisible to
// the attacker: attacks are crafted against the undefended network and
// evaluated against the defended one.
#pragma once

#include <functional>
#include <memory>

#include "common/rng.h"
#include "nn/network.h"

namespace nvm::defense {

/// Quantizes image pixels to 2^bits uniform levels in [0, 1].
Tensor reduce_bit_width(const Tensor& image, std::int64_t bits = 4);

struct SapOptions {
  /// Number of with-replacement samples as a multiple of the activation
  /// count (the paper's defense strength knob; 1.0 keeps roughly the
  /// top-weighted 63% of mass).
  float sample_ratio = 3.0f;
  std::uint64_t seed = 13;
};

/// Attaches SAP as an Eval-mode hook after every convolution of `net`.
/// The returned handle owns the sampler state; keep it alive while the
/// defense is active. Call net.set_conv_eval_hooks(nullptr) to detach.
std::shared_ptr<Rng> attach_sap(nn::Network& net, const SapOptions& opt);

/// Applies SAP to a single activation tensor (exposed for tests).
Tensor sap_prune(const Tensor& activations, float sample_ratio, Rng& rng);

struct RandomPadOptions {
  std::int64_t resize_lo = 25;  ///< inclusive random resize range
  std::int64_t resize_hi = 29;
  std::int64_t canvas = 30;     ///< final padded size
  std::uint64_t seed = 17;
};

/// Random resize + random pad preprocessing; returns the transformed image
/// (3, canvas, canvas). Requires a network tolerant to input size (the
/// ResNets here end in global average pooling, as in the paper).
Tensor random_resize_pad(const Tensor& image, const RandomPadOptions& opt,
                         Rng& rng);

}  // namespace nvm::defense

#include "common/logging.h"

#include <cstdlib>
#include <cstring>
#include <iostream>

namespace nvm {

namespace {

LogLevel g_level = [] {
  const char* env = std::getenv("NVMROBUST_LOG");
  if (env == nullptr) return LogLevel::Warn;
  if (std::strcmp(env, "error") == 0) return LogLevel::Error;
  if (std::strcmp(env, "warn") == 0) return LogLevel::Warn;
  if (std::strcmp(env, "info") == 0) return LogLevel::Info;
  if (std::strcmp(env, "debug") == 0) return LogLevel::Debug;
  return LogLevel::Warn;
}();

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Error: return "E";
    case LogLevel::Warn: return "W";
    case LogLevel::Info: return "I";
    case LogLevel::Debug: return "D";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

namespace detail {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level <= g_level) {
  if (enabled_) {
    const char* base = std::strrchr(file, '/');
    stream_ << "[" << level_name(level) << " "
            << (base != nullptr ? base + 1 : file) << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) std::cerr << stream_.str() << "\n";
}

}  // namespace detail
}  // namespace nvm

#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <iostream>

namespace nvm {

namespace {

LogLevel g_level = [] {
  const char* env = std::getenv("NVMROBUST_LOG");
  if (env == nullptr) return LogLevel::Warn;
  if (std::strcmp(env, "error") == 0) return LogLevel::Error;
  if (std::strcmp(env, "warn") == 0) return LogLevel::Warn;
  if (std::strcmp(env, "info") == 0) return LogLevel::Info;
  if (std::strcmp(env, "debug") == 0) return LogLevel::Debug;
  return LogLevel::Warn;
}();

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Error: return "E";
    case LogLevel::Warn: return "W";
    case LogLevel::Info: return "I";
    case LogLevel::Debug: return "D";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

int log_thread_id() {
  static std::atomic<int> next{0};
  thread_local int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::string log_prefix(LogLevel level, const char* file, int line) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  localtime_r(&secs, &tm);
  char stamp[32];
  std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%S", &tm);

  const char* base = std::strrchr(file, '/');
  char prefix[192];
  std::snprintf(prefix, sizeof prefix, "[%s %s.%03d t%d %s:%d] ",
                level_name(level), stamp, static_cast<int>(ms),
                log_thread_id(), base != nullptr ? base + 1 : file, line);
  return prefix;
}

namespace detail {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level <= g_level) {
  if (enabled_) stream_ << log_prefix(level, file, line);
}

LogMessage::~LogMessage() {
  if (enabled_) std::cerr << stream_.str() << "\n";
}

}  // namespace detail
}  // namespace nvm

// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms.
//
// The registry is the machine-readable counterpart of NVM_LOG: every
// paper-meaningful quantity that used to evaporate into stdout text
// (circuit solves, Gauss-Seidel sweeps, surrogate predictions, black-box
// attack queries, cache hits) is tallied here and exported into the JSON
// run manifest (core/report.h), so runs can be compared across configs,
// attacks, and PRs.
//
// Naming scheme: "layer/component/name", lowercase, '/'-separated — e.g.
// "solver/sweeps", "attack/square/queries", "xbar/geniex/fallbacks". See
// DESIGN.md §10 for the full table.
//
// Concurrency: all mutation paths are relaxed atomics — cheap enough for
// hot paths and exact under the thread pool (monotonic tallies need no
// ordering). Registration (find-or-create by name) takes a mutex, so call
// sites cache the returned reference in a function-local static:
//
//   static metrics::Counter& solves = metrics::counter("solver/solves");
//   solves.add();
//
// Returned references stay valid for the process lifetime (the registry is
// intentionally leaked so worker threads draining at exit never touch a
// destroyed metric).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace nvm::metrics {

/// Monotonic event tally.
class Counter {
 public:
  /// Increments by `n`; returns the post-increment value (for throttles).
  std::uint64_t add(std::uint64_t n = 1) {
    return v_.fetch_add(n, std::memory_order_relaxed) + n;
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  /// Tests only; experiments should diff snapshots instead.
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins scalar (fit quality, configured sizes, wall times).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  /// Relaxed atomic increment (negative deltas decrement): lets several
  /// writers maintain one gauge additively — e.g. the per-shard queue
  /// depth summed across every per-model server resident on the shard —
  /// where racing set(value()+d) calls would lose updates.
  void add(double delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts observations <= bounds[i]; one
/// implicit overflow bucket counts the rest. Also tracks count and sum.
/// Bucket counts and (count, sum) are individually exact but not updated
/// atomically as a group; snapshots taken while observers run may be
/// momentarily inconsistent by one in-flight observation.
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; size() == bounds().size() + 1.
  std::vector<std::uint64_t> bucket_counts() const;
  /// Tests only.
  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default histogram bounds: nanosecond-scale durations, decade spaced
/// (1us .. 10s).
std::vector<double> duration_ns_bounds();

/// Find-or-create by name. The returned reference is valid for the process
/// lifetime. Requesting an existing name as a different metric kind (or a
/// histogram with different bounds) throws CheckError.
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
/// Empty `bounds` selects duration_ns_bounds().
Histogram& histogram(const std::string& name, std::vector<double> bounds = {});

enum class Kind { Counter, Gauge, Histogram };

/// Folds arbitrary text (model names, tenant ids) into a legal metric name
/// component: uppercase is lowered, every other character outside
/// [a-z0-9_.] becomes '_' ('/' included — a component must not introduce
/// hierarchy), and an empty input becomes "_". "SCIFAR10-v2" -> "scifar10_v2".
std::string sanitize_name_component(const std::string& text);

/// Prefix-scoped view of the registry for families of series that share a
/// hierarchy level ("serve/shard3", "fleet/cohort/west"). Two jobs:
///   * name construction happens once per series, not per event — each
///     counter()/gauge()/histogram() call memoizes the resolved reference
///     in a per-scope cache, so hot paths never re-format "prefix/name";
///   * duplicate registration is harmless by construction — two scopes
///     with the same prefix (two shards loading the same model, a restart
///     re-registering its series) resolve to the SAME process-wide
///     metrics, and re-requesting a name through any path aliases instead
///     of throwing (kind/bounds mismatches still throw, as for the free
///     functions).
/// Cache lookups take a per-scope mutex; callers on hot paths should hoist
/// the returned reference out of their loops (it lives forever, like every
/// registry reference).
class Scope {
 public:
  /// `prefix` must itself be a valid metric name (checked on first use).
  explicit Scope(std::string prefix);

  const std::string& prefix() const { return prefix_; }
  /// "prefix/leaf" — the registry-visible name (e.g. for telemetry::track).
  std::string full_name(const std::string& leaf) const;

  Counter& counter(const std::string& leaf);
  Gauge& gauge(const std::string& leaf);
  /// Empty `bounds` selects duration_ns_bounds(). Bounds only matter on
  /// the process-wide first registration of the full name.
  Histogram& histogram(const std::string& leaf,
                       std::vector<double> bounds = {});

 private:
  struct Cache;
  std::string prefix_;
  std::shared_ptr<Cache> cache_;  // shared_ptr: scopes stay copyable
};

/// One exported metric value (see snapshot()).
struct MetricValue {
  std::string name;
  Kind kind = Kind::Counter;
  double value = 0.0;        ///< counter total (as double) or gauge value
  std::uint64_t count = 0;   ///< histogram observation count
  double sum = 0.0;          ///< histogram observation sum
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;
};

/// Estimated q-quantile (q in [0, 1]) of a histogram MetricValue: linear
/// interpolation inside the bucket that holds the target rank, with bucket
/// i spanning (bounds[i-1], bounds[i]] and the first bucket anchored at 0.
/// Observations landing in the overflow bucket clamp to the last finite
/// bucket bound (Prometheus histogram_quantile semantics) — the histogram
/// cannot see past its last edge, so it never extrapolates. Returns NaN
/// for empty histograms and non-histogram values (exported as JSON null).
double quantile(const MetricValue& m, double q);

/// Point-in-time copy of every registered metric, sorted by name.
std::vector<MetricValue> snapshot();

/// Per-metric difference of `now` against `base`: counters and histograms
/// subtract (monotonic fields), gauges pass through `now`'s value. Metrics
/// absent from `base` (registered later) keep their full value.
std::vector<MetricValue> delta(const std::vector<MetricValue>& now,
                               const std::vector<MetricValue>& base);

/// Resets every registered metric to zero (tests only).
void reset_all_for_tests();

}  // namespace nvm::metrics

// AVX-512 kernel variants. This is the only translation unit built with
// -mavx512f -mavx512bw -mavx512dq -mavx512vl (per-file flags from
// src/common/CMakeLists.txt, applied only when NVM_ENABLE_AVX512 is on —
// otherwise the stubs at the bottom are compiled and the runtime
// dispatcher never routes here).
//
// Parity rules mirrored from simd.h: [exact] kernels use the same
// unfused mul/add sequence per element as the scalar reference in
// simd.cpp (elementwise IEEE ops are width-independent, so running them
// 16 wide changes nothing); [~ulp] kernels (dot, axpy, gemm, gemm_at,
// gemm_bt) use FMA in the vector body, and dot folds its 16 lanes
// pairwise onto the documented 8-lane tree. gemm_f64acc stays [exact]:
// float*float products are exact in double, so fmadd_pd rounds like the
// reference's mul-then-add. Scalar tail loops in this TU are unfused like
// the reference (the whole build carries -ffp-contract=off; FMA only
// appears via intrinsics).
#include "common/simd_kernels.h"

#ifdef NVM_SIMD_AVX512_TU

#include <immintrin.h>

#include <algorithm>
#include <cmath>

#include "common/simd.h"

namespace nvm::simd::detail {

bool avx512_tu_compiled() { return true; }

namespace {

/// Reduction of the 8 strided lanes in the documented fixed tree.
inline float reduce_lanes(const float lanes[8]) {
  return ((lanes[0] + lanes[4]) + (lanes[2] + lanes[6])) +
         ((lanes[1] + lanes[5]) + (lanes[3] + lanes[7]));
}

/// round-half-away-from-zero for non-negative t: floor(t) + (frac >= 0.5).
/// frac = t - floor(t) is exact (Sterbenz), so this matches std::round on
/// the whole non-negative domain including ties.
inline __m512 round_nonneg(__m512 t) {
  const __m512 fl =
      _mm512_roundscale_ps(t, _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC);
  const __m512 frac = _mm512_sub_ps(t, fl);
  const __mmask16 ge =
      _mm512_cmp_ps_mask(frac, _mm512_set1_ps(0.5f), _CMP_GE_OQ);
  return _mm512_mask_add_ps(fl, ge, fl, _mm512_set1_ps(1.0f));
}

}  // namespace

float dot_avx512(const float* a, const float* b, std::int64_t n) {
  const std::int64_t n16 = n & ~std::int64_t{15};
  __m512 acc = _mm512_setzero_ps();
  for (std::int64_t i = 0; i < n16; i += 16)
    acc = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                          acc);
  alignas(64) float l16[16];
  _mm512_store_ps(l16, acc);
  float lanes[8];
  for (int l = 0; l < 8; ++l) lanes[l] = l16[l] + l16[l + 8];
  for (std::int64_t i = n16; i < n; ++i) lanes[i & 7] += a[i] * b[i];
  return reduce_lanes(lanes);
}

void axpy_avx512(float* y, const float* x, float alpha, std::int64_t n) {
  const __m512 va = _mm512_set1_ps(alpha);
  const std::int64_t n16 = n & ~std::int64_t{15};
  for (std::int64_t i = 0; i < n16; i += 16)
    _mm512_storeu_ps(
        y + i, _mm512_fmadd_ps(va, _mm512_loadu_ps(x + i),
                               _mm512_loadu_ps(y + i)));
  for (std::int64_t i = n16; i < n; ++i) y[i] += alpha * x[i];
}

void madd_avx512(float* y, const float* x, float alpha, std::int64_t n) {
  const __m512 va = _mm512_set1_ps(alpha);
  const std::int64_t n16 = n & ~std::int64_t{15};
  for (std::int64_t i = 0; i < n16; i += 16) {
    const __m512 t = _mm512_mul_ps(va, _mm512_loadu_ps(x + i));
    _mm512_storeu_ps(y + i, _mm512_add_ps(_mm512_loadu_ps(y + i), t));
  }
  for (std::int64_t i = n16; i < n; ++i) {
    const float t = alpha * x[i];
    y[i] = y[i] + t;
  }
}

void scale_avx512(float* y, const float* x, float alpha, std::int64_t n) {
  const __m512 va = _mm512_set1_ps(alpha);
  const std::int64_t n16 = n & ~std::int64_t{15};
  for (std::int64_t i = 0; i < n16; i += 16)
    _mm512_storeu_ps(y + i, _mm512_mul_ps(va, _mm512_loadu_ps(x + i)));
  for (std::int64_t i = n16; i < n; ++i) y[i] = alpha * x[i];
}

void tanh_block_avx512(float* x, std::int64_t n) {
  // Same polynomial op sequence as tanh_fast; saturation applied by mask.
  const __m512 hi = _mm512_set1_ps(4.97f);
  const __m512 lo = _mm512_set1_ps(-4.97f);
  const __m512 one = _mm512_set1_ps(1.0f);
  const __m512 neg_one = _mm512_set1_ps(-1.0f);
  const __m512 c0 = _mm512_set1_ps(135135.0f);
  const __m512 c1 = _mm512_set1_ps(17325.0f);
  const __m512 c2 = _mm512_set1_ps(378.0f);
  const __m512 d1 = _mm512_set1_ps(62370.0f);
  const __m512 d2 = _mm512_set1_ps(3150.0f);
  const __m512 d3 = _mm512_set1_ps(28.0f);
  const std::int64_t n16 = n & ~std::int64_t{15};
  for (std::int64_t i = 0; i < n16; i += 16) {
    const __m512 v = _mm512_loadu_ps(x + i);
    const __m512 x2 = _mm512_mul_ps(v, v);
    __m512 p = _mm512_add_ps(c2, x2);
    p = _mm512_add_ps(c1, _mm512_mul_ps(x2, p));
    p = _mm512_add_ps(c0, _mm512_mul_ps(x2, p));
    p = _mm512_mul_ps(v, p);
    __m512 q = _mm512_add_ps(d2, _mm512_mul_ps(x2, d3));
    q = _mm512_add_ps(d1, _mm512_mul_ps(x2, q));
    q = _mm512_add_ps(c0, _mm512_mul_ps(x2, q));
    __m512 r = _mm512_div_ps(p, q);
    r = _mm512_mask_mov_ps(r, _mm512_cmp_ps_mask(v, hi, _CMP_GT_OQ), one);
    r = _mm512_mask_mov_ps(r, _mm512_cmp_ps_mask(v, lo, _CMP_LT_OQ),
                           neg_one);
    _mm512_storeu_ps(x + i, r);
  }
  for (std::int64_t i = n16; i < n; ++i) x[i] = tanh_fast(x[i]);
}

namespace {

/// One output row of C += A*B style accumulation: crow[j] accumulates
/// coef(kk) * b[kk*ldb + j] sequentially over kk, FMA in the vector body.
template <typename Coef>
inline void gemm_row_fma(float* crow, const float* b, std::int64_t n,
                         std::int64_t k, std::int64_t ldb, Coef coef) {
  const std::int64_t n16 = n & ~std::int64_t{15};
  for (std::int64_t j0 = 0; j0 < n16; j0 += 16) {
    __m512 acc = _mm512_loadu_ps(crow + j0);
    for (std::int64_t kk = 0; kk < k; ++kk)
      acc = _mm512_fmadd_ps(_mm512_set1_ps(coef(kk)),
                            _mm512_loadu_ps(b + kk * ldb + j0), acc);
    _mm512_storeu_ps(crow + j0, acc);
  }
  for (std::int64_t j = n16; j < n; ++j) {
    float acc = crow[j];
    for (std::int64_t kk = 0; kk < k; ++kk) acc += coef(kk) * b[kk * ldb + j];
    crow[j] = acc;
  }
}

/// 4x16 microtile: four independent FMA chains over k for ILP. `coef(r,kk)`
/// yields the A element for microtile row r at reduction index kk.
template <typename Coef>
inline void gemm_tile4_fma(float* c, const float* b, std::int64_t n,
                           std::int64_t k, std::int64_t ldb, std::int64_t ldc,
                           Coef coef) {
  const std::int64_t n16 = n & ~std::int64_t{15};
  for (std::int64_t j0 = 0; j0 < n16; j0 += 16) {
    __m512 acc0 = _mm512_loadu_ps(c + 0 * ldc + j0);
    __m512 acc1 = _mm512_loadu_ps(c + 1 * ldc + j0);
    __m512 acc2 = _mm512_loadu_ps(c + 2 * ldc + j0);
    __m512 acc3 = _mm512_loadu_ps(c + 3 * ldc + j0);
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const __m512 bv = _mm512_loadu_ps(b + kk * ldb + j0);
      acc0 = _mm512_fmadd_ps(_mm512_set1_ps(coef(0, kk)), bv, acc0);
      acc1 = _mm512_fmadd_ps(_mm512_set1_ps(coef(1, kk)), bv, acc1);
      acc2 = _mm512_fmadd_ps(_mm512_set1_ps(coef(2, kk)), bv, acc2);
      acc3 = _mm512_fmadd_ps(_mm512_set1_ps(coef(3, kk)), bv, acc3);
    }
    _mm512_storeu_ps(c + 0 * ldc + j0, acc0);
    _mm512_storeu_ps(c + 1 * ldc + j0, acc1);
    _mm512_storeu_ps(c + 2 * ldc + j0, acc2);
    _mm512_storeu_ps(c + 3 * ldc + j0, acc3);
  }
  for (std::int64_t j = n16; j < n; ++j) {
    for (int r = 0; r < 4; ++r) {
      float acc = c[r * ldc + j];
      for (std::int64_t kk = 0; kk < k; ++kk)
        acc += coef(r, kk) * b[kk * ldb + j];
      c[r * ldc + j] = acc;
    }
  }
}

}  // namespace

void gemm_avx512(float* c, const float* a, const float* b, std::int64_t m,
                 std::int64_t n, std::int64_t k, std::int64_t lda,
                 std::int64_t ldb, std::int64_t ldc) {
  const std::int64_t m4 = m & ~std::int64_t{3};
  for (std::int64_t i0 = 0; i0 < m4; i0 += 4)
    gemm_tile4_fma(c + i0 * ldc, b, n, k, ldb, ldc,
                   [&](int r, std::int64_t kk) {
                     return a[(i0 + r) * lda + kk];
                   });
  for (std::int64_t i = m4; i < m; ++i)
    gemm_row_fma(c + i * ldc, b, n, k, ldb,
                 [&](std::int64_t kk) { return a[i * lda + kk]; });
}

void gemm_at_avx512(float* c, const float* a, const float* b, std::int64_t m,
                    std::int64_t n, std::int64_t k, std::int64_t lda,
                    std::int64_t ldb, std::int64_t ldc) {
  const std::int64_t m4 = m & ~std::int64_t{3};
  for (std::int64_t i0 = 0; i0 < m4; i0 += 4)
    gemm_tile4_fma(c + i0 * ldc, b, n, k, ldb, ldc,
                   [&](int r, std::int64_t kk) {
                     return a[kk * lda + i0 + r];
                   });
  for (std::int64_t i = m4; i < m; ++i)
    gemm_row_fma(c + i * ldc, b, n, k, ldb,
                 [&](std::int64_t kk) { return a[kk * lda + i]; });
}

void gemm_bt_avx512(float* c, const float* a, const float* b, std::int64_t m,
                    std::int64_t n, std::int64_t k, std::int64_t lda,
                    std::int64_t ldb, std::int64_t ldc) {
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * lda;
    float* crow = c + i * ldc;
    for (std::int64_t j = 0; j < n; ++j)
      crow[j] += dot_avx512(arow, b + j * ldb, k);
  }
}

void gemm_f64acc_avx512(float* out, const float* a, const float* v,
                        std::int64_t m, std::int64_t n, std::int64_t k,
                        std::int64_t lda, std::int64_t ldv, std::int64_t ldo) {
  // double(a)*double(v) is exact (24+24 significand bits fit in 53), so
  // fmadd_pd rounds exactly like the scalar reference's mul-then-add —
  // this kernel is bit-identical to gemm_f64acc_scalar.
  const std::int64_t n8 = n & ~std::int64_t{7};
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * lda;
    for (std::int64_t j0 = 0; j0 < n8; j0 += 8) {
      __m512d acc = _mm512_setzero_pd();
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const __m512d av = _mm512_set1_pd(static_cast<double>(arow[kk]));
        const __m512d vv =
            _mm512_cvtps_pd(_mm256_loadu_ps(v + kk * ldv + j0));
        acc = _mm512_fmadd_pd(av, vv, acc);
      }
      _mm256_storeu_ps(out + i * ldo + j0, _mm512_cvtpd_ps(acc));
    }
    for (std::int64_t j = n8; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk)
        acc += static_cast<double>(arow[kk]) *
               static_cast<double>(v[kk * ldv + j]);
      out[i * ldo + j] = static_cast<float>(acc);
    }
  }
}

void quantize_affine_avx512(float* out, const float* x, std::int64_t n,
                            float scale, float qmax) {
  const __m512 zero = _mm512_setzero_ps();
  const __m512 vs = _mm512_set1_ps(scale);
  const __m512 vq = _mm512_set1_ps(qmax);
  const std::int64_t n16 = n & ~std::int64_t{15};
  for (std::int64_t i = 0; i < n16; i += 16) {
    const __m512 clipped =
        _mm512_min_ps(_mm512_max_ps(_mm512_loadu_ps(x + i), zero), vs);
    const __m512 t = _mm512_mul_ps(_mm512_div_ps(clipped, vs), vq);
    _mm512_storeu_ps(out + i, round_nonneg(t));
  }
  for (std::int64_t i = n16; i < n; ++i) {
    const float clipped = std::clamp(x[i], 0.0f, scale);
    out[i] = std::round(clipped / scale * qmax);
  }
}

void adc_shift_add_avx512(float* acc, const float* cur, const float* baseline,
                          std::int64_t n, float full_scale, float steps,
                          float shift) {
  const __m512 zero = _mm512_setzero_ps();
  const __m512 vfs = _mm512_set1_ps(full_scale);
  const __m512 vsteps = _mm512_set1_ps(steps);
  const __m512 vshift = _mm512_set1_ps(shift);
  const std::int64_t n16 = n & ~std::int64_t{15};
  for (std::int64_t i = 0; i < n16; i += 16) {
    const __m512 clamped =
        _mm512_min_ps(_mm512_max_ps(_mm512_loadu_ps(cur + i), zero), vfs);
    const __m512 r =
        round_nonneg(_mm512_mul_ps(_mm512_div_ps(clamped, vfs), vsteps));
    const __m512 q = _mm512_div_ps(_mm512_mul_ps(r, vfs), vsteps);
    const __m512 d = _mm512_sub_ps(q, _mm512_loadu_ps(baseline + i));
    // Unfused mul+add to match the scalar reference bit-for-bit.
    _mm512_storeu_ps(acc + i, _mm512_add_ps(_mm512_loadu_ps(acc + i),
                                            _mm512_mul_ps(vshift, d)));
  }
  for (std::int64_t i = n16; i < n; ++i) {
    const float clamped = std::clamp(cur[i], 0.0f, full_scale);
    const float q = std::round(clamped / full_scale * steps) * full_scale /
                    steps;
    acc[i] += shift * (q - baseline[i]);
  }
}

namespace {

/// Rounded quantization codes for 16 floats, as i32 (codes are integral,
/// so cvtps_epi32's round-to-nearest-even cannot move them).
inline __m512i quantize_codes16(const float* x, __m512 vs, __m512 vq) {
  const __m512 clipped = _mm512_min_ps(
      _mm512_max_ps(_mm512_loadu_ps(x), _mm512_setzero_ps()), vs);
  const __m512 t = _mm512_mul_ps(_mm512_div_ps(clipped, vs), vq);
  return _mm512_cvtps_epi32(round_nonneg(t));
}

}  // namespace

void quantize_to_i8_avx512(std::int8_t* out, const float* x, std::int64_t n,
                           float scale, float qmax) {
  const __m512 vs = _mm512_set1_ps(scale);
  const __m512 vq = _mm512_set1_ps(qmax);
  const std::int64_t n16 = n & ~std::int64_t{15};
  for (std::int64_t i = 0; i < n16; i += 16)
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm512_cvtepi32_epi8(quantize_codes16(x + i, vs, vq)));
  for (std::int64_t i = n16; i < n; ++i) {
    const float clipped = std::clamp(x[i], 0.0f, scale);
    out[i] = static_cast<std::int8_t>(std::round(clipped / scale * qmax));
  }
}

void quantize_to_i16_avx512(std::int16_t* out, const float* x, std::int64_t n,
                            float scale, float qmax) {
  const __m512 vs = _mm512_set1_ps(scale);
  const __m512 vq = _mm512_set1_ps(qmax);
  const std::int64_t n16 = n & ~std::int64_t{15};
  for (std::int64_t i = 0; i < n16; i += 16)
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + i),
        _mm512_cvtepi32_epi16(quantize_codes16(x + i, vs, vq)));
  for (std::int64_t i = n16; i < n; ++i) {
    const float clipped = std::clamp(x[i], 0.0f, scale);
    out[i] = static_cast<std::int16_t>(std::round(clipped / scale * qmax));
  }
}

void gemm_at_i8_i32acc_avx512(std::int32_t* c, const std::int8_t* a,
                              const std::int8_t* b, std::int64_t m,
                              std::int64_t n, std::int64_t k,
                              std::int64_t lda, std::int64_t ldb,
                              std::int64_t ldc) {
  // 4x16 microtiles: per k-step the 16 int8 B values widen to one i32
  // vector once, then feed four broadcast multiply-accumulate chains.
  // Integer arithmetic is exact, so blocking cannot change the result.
  const std::int64_t n16 = n & ~std::int64_t{15};
  const std::int64_t m4 = m & ~std::int64_t{3};
  for (std::int64_t j0 = 0; j0 < n16; j0 += 16) {
    for (std::int64_t i0 = 0; i0 < m; i0 += 4) {
      const std::int64_t in = (i0 < m4) ? 4 : m - i0;
      __m512i acc[4];
      for (std::int64_t r = 0; r < in; ++r)
        acc[r] = _mm512_loadu_si512(c + (i0 + r) * ldc + j0);
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const __m512i bv = _mm512_cvtepi8_epi32(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(b + kk * ldb + j0)));
        const std::int8_t* arow = a + kk * lda + i0;
        for (std::int64_t r = 0; r < in; ++r) {
          const std::int32_t aki = arow[r];
          if (aki == 0) continue;
          acc[r] = _mm512_add_epi32(
              acc[r], _mm512_mullo_epi32(_mm512_set1_epi32(aki), bv));
        }
      }
      for (std::int64_t r = 0; r < in; ++r)
        _mm512_storeu_si512(c + (i0 + r) * ldc + j0, acc[r]);
    }
  }
  if (n16 < n) {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const std::int8_t* arow = a + kk * lda;
      const std::int8_t* brow = b + kk * ldb;
      for (std::int64_t i = 0; i < m; ++i) {
        const std::int32_t aki = arow[i];
        if (aki == 0) continue;
        std::int32_t* crow = c + i * ldc;
        for (std::int64_t j = n16; j < n; ++j) crow[j] += aki * brow[j];
      }
    }
  }
}

void adc_shift_add_i32_avx512(float* acc, const std::int32_t* dot,
                              const float* baseline, std::int64_t n,
                              float dot_unit, float full_scale, float steps,
                              float shift) {
  const __m512 zero = _mm512_setzero_ps();
  const __m512 vdu = _mm512_set1_ps(dot_unit);
  const __m512 vfs = _mm512_set1_ps(full_scale);
  const __m512 vsteps = _mm512_set1_ps(steps);
  const __m512 vshift = _mm512_set1_ps(shift);
  const std::int64_t n16 = n & ~std::int64_t{15};
  for (std::int64_t i = 0; i < n16; i += 16) {
    const __m512 vd = _mm512_cvtepi32_ps(_mm512_loadu_si512(dot + i));
    const __m512 vb = _mm512_loadu_ps(baseline + i);
    // Unfused mul+add to match the scalar reference bit-for-bit.
    const __m512 cur = _mm512_add_ps(vb, _mm512_mul_ps(vdu, vd));
    const __m512 clamped = _mm512_min_ps(_mm512_max_ps(cur, zero), vfs);
    const __m512 r =
        round_nonneg(_mm512_mul_ps(_mm512_div_ps(clamped, vfs), vsteps));
    const __m512 q = _mm512_div_ps(_mm512_mul_ps(r, vfs), vsteps);
    const __m512 d = _mm512_sub_ps(q, vb);
    _mm512_storeu_ps(acc + i, _mm512_add_ps(_mm512_loadu_ps(acc + i),
                                            _mm512_mul_ps(vshift, d)));
  }
  for (std::int64_t i = n16; i < n; ++i) {
    const float cur = baseline[i] + dot_unit * static_cast<float>(dot[i]);
    const float clamped = std::clamp(cur, 0.0f, full_scale);
    const float q = std::round(clamped / full_scale * steps) * full_scale /
                    steps;
    acc[i] += shift * (q - baseline[i]);
  }
}

}  // namespace nvm::simd::detail

#else  // !NVM_SIMD_AVX512_TU — linker stubs, unreachable behind dispatch.

#include "common/check.h"

namespace nvm::simd::detail {

bool avx512_tu_compiled() { return false; }

namespace {
[[noreturn]] void stub_fail() {
  throw nvm::CheckError(
      "nvm::simd AVX-512 kernel called but NVM_ENABLE_AVX512 was off");
}
}  // namespace

float dot_avx512(const float*, const float*, std::int64_t) { stub_fail(); }
void axpy_avx512(float*, const float*, float, std::int64_t) { stub_fail(); }
void madd_avx512(float*, const float*, float, std::int64_t) { stub_fail(); }
void scale_avx512(float*, const float*, float, std::int64_t) { stub_fail(); }
void tanh_block_avx512(float*, std::int64_t) { stub_fail(); }
void gemm_avx512(float*, const float*, const float*, std::int64_t,
                 std::int64_t, std::int64_t, std::int64_t, std::int64_t,
                 std::int64_t) {
  stub_fail();
}
void gemm_at_avx512(float*, const float*, const float*, std::int64_t,
                    std::int64_t, std::int64_t, std::int64_t, std::int64_t,
                    std::int64_t) {
  stub_fail();
}
void gemm_bt_avx512(float*, const float*, const float*, std::int64_t,
                    std::int64_t, std::int64_t, std::int64_t, std::int64_t,
                    std::int64_t) {
  stub_fail();
}
void gemm_f64acc_avx512(float*, const float*, const float*, std::int64_t,
                        std::int64_t, std::int64_t, std::int64_t,
                        std::int64_t, std::int64_t) {
  stub_fail();
}
void quantize_affine_avx512(float*, const float*, std::int64_t, float,
                            float) {
  stub_fail();
}
void adc_shift_add_avx512(float*, const float*, const float*, std::int64_t,
                          float, float, float) {
  stub_fail();
}
void quantize_to_i8_avx512(std::int8_t*, const float*, std::int64_t, float,
                           float) {
  stub_fail();
}
void quantize_to_i16_avx512(std::int16_t*, const float*, std::int64_t, float,
                            float) {
  stub_fail();
}
void gemm_at_i8_i32acc_avx512(std::int32_t*, const std::int8_t*,
                              const std::int8_t*, std::int64_t, std::int64_t,
                              std::int64_t, std::int64_t, std::int64_t,
                              std::int64_t) {
  stub_fail();
}
void adc_shift_add_i32_avx512(float*, const std::int32_t*, const float*,
                              std::int64_t, float, float, float, float) {
  stub_fail();
}

}  // namespace nvm::simd::detail

#endif  // NVM_SIMD_AVX512_TU

#include "common/health.h"

#include <array>
#include <atomic>
#include <sstream>

namespace nvm {

namespace {

std::array<std::atomic<std::uint64_t>, kHealthCounterCount>& counters() {
  static std::array<std::atomic<std::uint64_t>, kHealthCounterCount> c{};
  return c;
}

}  // namespace

std::uint64_t bump(HealthCounter c, std::uint64_t n) {
  return counters()[static_cast<int>(c)].fetch_add(
             n, std::memory_order_relaxed) +
         n;
}

std::uint64_t health_value(HealthCounter c) {
  return counters()[static_cast<int>(c)].load(std::memory_order_relaxed);
}

HealthSnapshot health_snapshot() {
  HealthSnapshot s;
  s.solver_nonconverged = health_value(HealthCounter::SolverNonConverged);
  s.nonfinite_outputs = health_value(HealthCounter::NonFiniteOutput);
  s.surrogate_fallbacks = health_value(HealthCounter::SurrogateFallback);
  s.cache_corrupt = health_value(HealthCounter::CacheCorrupt);
  return s;
}

HealthSnapshot HealthSnapshot::delta_since(const HealthSnapshot& since) const {
  HealthSnapshot d;
  d.solver_nonconverged = solver_nonconverged - since.solver_nonconverged;
  d.nonfinite_outputs = nonfinite_outputs - since.nonfinite_outputs;
  d.surrogate_fallbacks = surrogate_fallbacks - since.surrogate_fallbacks;
  d.cache_corrupt = cache_corrupt - since.cache_corrupt;
  return d;
}

bool HealthSnapshot::all_zero() const {
  return solver_nonconverged == 0 && nonfinite_outputs == 0 &&
         surrogate_fallbacks == 0 && cache_corrupt == 0;
}

std::string HealthSnapshot::summary() const {
  std::ostringstream os;
  os << "solver_nc=" << solver_nonconverged
     << " nonfinite=" << nonfinite_outputs
     << " fallback=" << surrogate_fallbacks << " cache=" << cache_corrupt;
  return os.str();
}

void reset_health_counters() {
  for (auto& c : counters()) c.store(0, std::memory_order_relaxed);
}

}  // namespace nvm

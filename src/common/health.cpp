#include "common/health.h"

#include <array>
#include <sstream>

#include "common/metrics.h"

namespace nvm {

namespace {

constexpr std::array<const char*, kHealthCounterCount> kMetricNames = {
    "solver/nonconverged",
    "xbar/nonfinite_outputs",
    "xbar/geniex/fallbacks",
    "cache/file/corrupt",
};

// The four counters live in the process-wide metrics registry; this array
// just caches the registered references so bump() stays a single relaxed
// fetch_add on the hot path.
std::array<metrics::Counter*, kHealthCounterCount>& counters() {
  static std::array<metrics::Counter*, kHealthCounterCount> c = [] {
    std::array<metrics::Counter*, kHealthCounterCount> a{};
    for (int i = 0; i < kHealthCounterCount; ++i)
      a[static_cast<std::size_t>(i)] = &metrics::counter(kMetricNames[static_cast<std::size_t>(i)]);
    return a;
  }();
  return c;
}

}  // namespace

const char* health_metric_name(HealthCounter c) {
  return kMetricNames[static_cast<std::size_t>(c)];
}

std::uint64_t bump(HealthCounter c, std::uint64_t n) {
  return counters()[static_cast<std::size_t>(c)]->add(n);
}

std::uint64_t health_value(HealthCounter c) {
  return counters()[static_cast<std::size_t>(c)]->value();
}

HealthSnapshot health_snapshot() {
  HealthSnapshot s;
  s.solver_nonconverged = health_value(HealthCounter::SolverNonConverged);
  s.nonfinite_outputs = health_value(HealthCounter::NonFiniteOutput);
  s.surrogate_fallbacks = health_value(HealthCounter::SurrogateFallback);
  s.cache_corrupt = health_value(HealthCounter::CacheCorrupt);
  return s;
}

HealthSnapshot HealthSnapshot::delta_since(const HealthSnapshot& since) const {
  HealthSnapshot d;
  d.solver_nonconverged = solver_nonconverged - since.solver_nonconverged;
  d.nonfinite_outputs = nonfinite_outputs - since.nonfinite_outputs;
  d.surrogate_fallbacks = surrogate_fallbacks - since.surrogate_fallbacks;
  d.cache_corrupt = cache_corrupt - since.cache_corrupt;
  return d;
}

bool HealthSnapshot::all_zero() const {
  return solver_nonconverged == 0 && nonfinite_outputs == 0 &&
         surrogate_fallbacks == 0 && cache_corrupt == 0;
}

std::string HealthSnapshot::summary() const {
  std::ostringstream os;
  os << "solver_nc=" << solver_nonconverged
     << " nonfinite=" << nonfinite_outputs
     << " fallback=" << surrogate_fallbacks << " cache=" << cache_corrupt;
  return os.str();
}

void reset_health_counters() {
  for (metrics::Counter* c : counters()) c->reset();
}

}  // namespace nvm

#include "common/simd.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/check.h"
#include "common/env.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/simd_kernels.h"

namespace nvm::simd {

// ISA resolution ----------------------------------------------------------

bool avx2_compiled() { return detail::avx2_tu_compiled(); }

bool avx2_supported() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

const char* isa_name(Isa isa) {
  return isa == Isa::Avx2 ? "avx2" : "scalar";
}

namespace {

std::atomic<int> g_isa{-1};  // -1 = unresolved

int resolve_isa() {
  const std::string req = env_str("NVM_SIMD", "");
  const bool usable = avx2_compiled() && avx2_supported();
  if (req == "scalar") return 0;
  if (req == "avx2") {
    if (usable) return 1;
    NVM_LOG(Warn) << "NVM_SIMD=avx2 requested but "
                  << (avx2_compiled() ? "this CPU lacks AVX2/FMA"
                                      : "AVX2 kernels are not compiled in")
                  << "; falling back to scalar";
    return 0;
  }
  if (!req.empty())
    NVM_LOG(Warn) << "unknown NVM_SIMD='" << req
                  << "' (want avx2|scalar); auto-detecting";
  return usable ? 1 : 0;
}

void publish_isa(int isa) {
  metrics::gauge("simd/isa").set(static_cast<double>(isa));
}

}  // namespace

Isa active_isa() {
  int v = g_isa.load(std::memory_order_relaxed);
  if (v < 0) {
    // resolve_isa() is pure, so a lost race just recomputes the same value.
    const int resolved = resolve_isa();
    int expected = -1;
    g_isa.compare_exchange_strong(expected, resolved,
                                  std::memory_order_relaxed);
    v = g_isa.load(std::memory_order_relaxed);
    publish_isa(v);
  }
  return static_cast<Isa>(v);
}

ScopedIsaForTests::ScopedIsaForTests(Isa isa) {
  NVM_CHECK(isa != Isa::Avx2 || (avx2_compiled() && avx2_supported()),
            "cannot force avx2: "
                << (avx2_compiled() ? "CPU lacks AVX2/FMA" : "not compiled in"));
  prev_ = g_isa.exchange(static_cast<int>(isa), std::memory_order_relaxed);
  publish_isa(static_cast<int>(isa));
}

ScopedIsaForTests::~ScopedIsaForTests() {
  g_isa.store(prev_, std::memory_order_relaxed);
  if (prev_ >= 0) publish_isa(prev_);
}

// Scalar kernels ----------------------------------------------------------
// These define the reference semantics; the AVX2 TU mirrors them. Plain
// mul+add throughout (the build uses -ffp-contract=off, so the compiler
// cannot fuse these into FMAs behind our back).

namespace detail {

float dot_scalar(const float* a, const float* b, std::int64_t n) {
  float lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (std::int64_t i = 0; i < n; ++i) lanes[i & 7] += a[i] * b[i];
  return ((lanes[0] + lanes[4]) + (lanes[2] + lanes[6])) +
         ((lanes[1] + lanes[5]) + (lanes[3] + lanes[7]));
}

void axpy_scalar(float* y, const float* x, float alpha, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void madd_scalar(float* y, const float* x, float alpha, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    const float t = alpha * x[i];
    y[i] = y[i] + t;
  }
}

void scale_scalar(float* y, const float* x, float alpha, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) y[i] = alpha * x[i];
}

void tanh_block_scalar(float* x, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) x[i] = tanh_fast(x[i]);
}

void gemm_scalar(float* c, const float* a, const float* b, std::int64_t m,
                 std::int64_t n, std::int64_t k, std::int64_t lda,
                 std::int64_t ldb, std::int64_t ldc) {
  for (std::int64_t i = 0; i < m; ++i) {
    float* crow = c + i * ldc;
    const float* arow = a + i * lda;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float aik = arow[kk];
      if (aik == 0.0f) continue;  // bit-sliced operands are mostly zero
      const float* brow = b + kk * ldb;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

void gemm_at_scalar(float* c, const float* a, const float* b, std::int64_t m,
                    std::int64_t n, std::int64_t k, std::int64_t lda,
                    std::int64_t ldb, std::int64_t ldc) {
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float* arow = a + kk * lda;
    const float* brow = b + kk * ldb;
    for (std::int64_t i = 0; i < m; ++i) {
      const float aki = arow[i];
      if (aki == 0.0f) continue;
      float* crow = c + i * ldc;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += aki * brow[j];
    }
  }
}

void gemm_bt_scalar(float* c, const float* a, const float* b, std::int64_t m,
                    std::int64_t n, std::int64_t k, std::int64_t lda,
                    std::int64_t ldb, std::int64_t ldc) {
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * lda;
    float* crow = c + i * ldc;
    for (std::int64_t j = 0; j < n; ++j)
      crow[j] += dot_scalar(arow, b + j * ldb, k);
  }
}

void gemm_f64acc_scalar(float* out, const float* a, const float* v,
                        std::int64_t m, std::int64_t n, std::int64_t k,
                        std::int64_t lda, std::int64_t ldv, std::int64_t ldo) {
  // Column blocks of 8 keep the V accesses contiguous per k-step; each
  // output element still accumulates sequentially over k in double, so the
  // result is independent of the blocking.
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * lda;
    for (std::int64_t j0 = 0; j0 < n; j0 += 8) {
      const std::int64_t jn = std::min<std::int64_t>(8, n - j0);
      double acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const double av = static_cast<double>(arow[kk]);
        const float* vrow = v + kk * ldv + j0;
        for (std::int64_t j = 0; j < jn; ++j)
          acc[j] += av * static_cast<double>(vrow[j]);
      }
      float* orow = out + i * ldo + j0;
      for (std::int64_t j = 0; j < jn; ++j)
        orow[j] = static_cast<float>(acc[j]);
    }
  }
}

void quantize_affine_scalar(float* out, const float* x, std::int64_t n,
                            float scale, float qmax) {
  for (std::int64_t i = 0; i < n; ++i) {
    const float clipped = std::clamp(x[i], 0.0f, scale);
    out[i] = std::round(clipped / scale * qmax);
  }
}

void adc_shift_add_scalar(float* acc, const float* cur, const float* baseline,
                          std::int64_t n, float full_scale, float steps,
                          float shift) {
  for (std::int64_t i = 0; i < n; ++i) {
    const float clamped = std::clamp(cur[i], 0.0f, full_scale);
    const float q = std::round(clamped / full_scale * steps) * full_scale /
                    steps;
    acc[i] += shift * (q - baseline[i]);
  }
}

}  // namespace detail

float tanh_fast(float x) {
  if (x > 4.97f) return 1.0f;
  if (x < -4.97f) return -1.0f;
  const float x2 = x * x;
  const float p = x * (135135.0f + x2 * (17325.0f + x2 * (378.0f + x2)));
  const float q = 135135.0f + x2 * (62370.0f + x2 * (3150.0f + x2 * 28.0f));
  return p / q;
}

// Public dispatch ---------------------------------------------------------

namespace {

/// One call + flop tally; call-site counters are cached by the wrappers.
inline void tally(metrics::Counter& calls, std::uint64_t flops) {
  static metrics::Counter& f = metrics::counter("simd/flops");
  calls.add();
  f.add(flops);
}

inline std::uint64_t u64(std::int64_t v) {
  return static_cast<std::uint64_t>(v);
}

}  // namespace

float dot(const float* a, const float* b, std::int64_t n) {
  static metrics::Counter& c = metrics::counter("simd/kernel/dot");
  tally(c, 2 * u64(n));
  return active_isa() == Isa::Avx2 ? detail::dot_avx2(a, b, n)
                                   : detail::dot_scalar(a, b, n);
}

void axpy(float* y, const float* x, float alpha, std::int64_t n) {
  static metrics::Counter& c = metrics::counter("simd/kernel/axpy");
  tally(c, 2 * u64(n));
  if (active_isa() == Isa::Avx2)
    detail::axpy_avx2(y, x, alpha, n);
  else
    detail::axpy_scalar(y, x, alpha, n);
}

void madd(float* y, const float* x, float alpha, std::int64_t n) {
  static metrics::Counter& c = metrics::counter("simd/kernel/madd");
  tally(c, 2 * u64(n));
  if (active_isa() == Isa::Avx2)
    detail::madd_avx2(y, x, alpha, n);
  else
    detail::madd_scalar(y, x, alpha, n);
}

void scale(float* y, const float* x, float alpha, std::int64_t n) {
  static metrics::Counter& c = metrics::counter("simd/kernel/scale");
  tally(c, u64(n));
  if (active_isa() == Isa::Avx2)
    detail::scale_avx2(y, x, alpha, n);
  else
    detail::scale_scalar(y, x, alpha, n);
}

void tanh_block(float* x, std::int64_t n) {
  static metrics::Counter& c = metrics::counter("simd/kernel/tanh_block");
  tally(c, 12 * u64(n));  // ~12 arithmetic ops per rational tanh
  if (active_isa() == Isa::Avx2)
    detail::tanh_block_avx2(x, n);
  else
    detail::tanh_block_scalar(x, n);
}

void gemm_accum(float* c, const float* a, const float* b, std::int64_t m,
                std::int64_t n, std::int64_t k, std::int64_t lda,
                std::int64_t ldb, std::int64_t ldc) {
  static metrics::Counter& calls = metrics::counter("simd/kernel/gemm");
  tally(calls, 2 * u64(m) * u64(n) * u64(k));
  if (active_isa() == Isa::Avx2)
    detail::gemm_avx2(c, a, b, m, n, k, lda, ldb, ldc);
  else
    detail::gemm_scalar(c, a, b, m, n, k, lda, ldb, ldc);
}

void gemm_at_accum(float* c, const float* a, const float* b, std::int64_t m,
                   std::int64_t n, std::int64_t k, std::int64_t lda,
                   std::int64_t ldb, std::int64_t ldc) {
  static metrics::Counter& calls = metrics::counter("simd/kernel/gemm_at");
  tally(calls, 2 * u64(m) * u64(n) * u64(k));
  if (active_isa() == Isa::Avx2)
    detail::gemm_at_avx2(c, a, b, m, n, k, lda, ldb, ldc);
  else
    detail::gemm_at_scalar(c, a, b, m, n, k, lda, ldb, ldc);
}

void gemm_bt_accum(float* c, const float* a, const float* b, std::int64_t m,
                   std::int64_t n, std::int64_t k, std::int64_t lda,
                   std::int64_t ldb, std::int64_t ldc) {
  static metrics::Counter& calls = metrics::counter("simd/kernel/gemm_bt");
  tally(calls, 2 * u64(m) * u64(n) * u64(k));
  if (active_isa() == Isa::Avx2)
    detail::gemm_bt_avx2(c, a, b, m, n, k, lda, ldb, ldc);
  else
    detail::gemm_bt_scalar(c, a, b, m, n, k, lda, ldb, ldc);
}

void gemm_f64acc(float* out, const float* a, const float* v, std::int64_t m,
                 std::int64_t n, std::int64_t k, std::int64_t lda,
                 std::int64_t ldv, std::int64_t ldo) {
  static metrics::Counter& calls = metrics::counter("simd/kernel/gemm_f64acc");
  tally(calls, 2 * u64(m) * u64(n) * u64(k));
  if (active_isa() == Isa::Avx2)
    detail::gemm_f64acc_avx2(out, a, v, m, n, k, lda, ldv, ldo);
  else
    detail::gemm_f64acc_scalar(out, a, v, m, n, k, lda, ldv, ldo);
}

void quantize_affine(float* out, const float* x, std::int64_t n, float scale,
                     float qmax) {
  static metrics::Counter& c = metrics::counter("simd/kernel/quantize");
  tally(c, 4 * u64(n));
  if (active_isa() == Isa::Avx2)
    detail::quantize_affine_avx2(out, x, n, scale, qmax);
  else
    detail::quantize_affine_scalar(out, x, n, scale, qmax);
}

void adc_shift_add(float* acc, const float* cur, const float* baseline,
                   std::int64_t n, float full_scale, float steps,
                   float shift) {
  static metrics::Counter& c = metrics::counter("simd/kernel/adc_shift_add");
  tally(c, 8 * u64(n));
  if (active_isa() == Isa::Avx2)
    detail::adc_shift_add_avx2(acc, cur, baseline, n, full_scale, steps,
                               shift);
  else
    detail::adc_shift_add_scalar(acc, cur, baseline, n, full_scale, steps,
                                 shift);
}

// Workspace ---------------------------------------------------------------

namespace {

template <typename T>
std::span<T> acquire(std::vector<T>& buf, std::size_t n) {
  static metrics::Counter& reuses = metrics::counter("simd/workspace/reuses");
  if (buf.size() >= n)
    reuses.add();
  else
    buf.resize(n);
  return {buf.data(), n};
}

}  // namespace

std::span<float> Workspace::floats(int slot, std::size_t n) {
  NVM_CHECK(slot >= 0 && slot < kSlots, "workspace slot=" << slot);
  return acquire(f_[slot], n);
}

std::span<double> Workspace::doubles(int slot, std::size_t n) {
  NVM_CHECK(slot >= 0 && slot < kSlots, "workspace slot=" << slot);
  return acquire(d_[slot], n);
}

}  // namespace nvm::simd

#include "common/simd.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/check.h"
#include "common/env.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/simd_kernels.h"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace nvm::simd {

// ISA resolution ----------------------------------------------------------
//
// A tier is usable only when (a) its TU was compiled with real kernels,
// (b) cpuid reports the instructions, and (c) the OS has enabled the
// register state via XSAVE — read from XCR0 with xgetbv. (b) without (c)
// happens under hypervisors/kernels that mask extended state: executing a
// VEX/EVEX instruction there faults with SIGILL, so cpuid bits alone are
// not a safe gate.

namespace {

#if defined(__x86_64__) || defined(__i386__)
std::uint64_t read_xcr0() {
  unsigned int eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return 0;
  if ((ecx & (1u << 27)) == 0) return 0;  // no OSXSAVE: xgetbv would fault
  unsigned int lo = 0, hi = 0;
  __asm__ volatile("xgetbv" : "=a"(lo), "=d"(hi) : "c"(0));
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

bool avx2_cpu_flags() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

bool avx512_cpu_flags() {
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512bw") &&
         __builtin_cpu_supports("avx512dq") &&
         __builtin_cpu_supports("avx512vl");
}

// XCR0: SSE|AVX (bits 1,2) for YMM; plus opmask|ZMM_Hi256|Hi16_ZMM
// (bits 5,6,7) for AVX-512.
bool avx_os_state() { return (read_xcr0() & 0x6) == 0x6; }
bool avx512_os_state() { return (read_xcr0() & 0xe6) == 0xe6; }
#endif

}  // namespace

bool avx2_compiled() { return detail::avx2_tu_compiled(); }
bool avx512_compiled() { return detail::avx512_tu_compiled(); }
bool neon_compiled() { return detail::neon_tu_compiled(); }

bool avx2_supported() {
#if defined(__x86_64__) || defined(__i386__)
  return avx2_cpu_flags() && avx_os_state();
#else
  return false;
#endif
}

bool avx512_supported() {
#if defined(__x86_64__) || defined(__i386__)
  return avx512_cpu_flags() && avx512_os_state();
#else
  return false;
#endif
}

bool neon_supported() {
#if defined(__aarch64__)
  return true;  // Advanced SIMD is architecturally baseline on AArch64
#else
  return false;
#endif
}

bool isa_usable(Isa isa) {
  switch (isa) {
    case Isa::Scalar:
      return true;
    case Isa::Avx2:
      return avx2_compiled() && avx2_supported();
    case Isa::Avx512:
      return avx512_compiled() && avx512_supported();
    case Isa::Neon:
      return neon_compiled() && neon_supported();
  }
  return false;
}

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::Avx2:
      return "avx2";
    case Isa::Avx512:
      return "avx512";
    case Isa::Neon:
      return "neon";
    case Isa::Scalar:
      break;
  }
  return "scalar";
}

namespace {

std::atomic<int> g_isa{-1};  // -1 = unresolved

/// Widest tier that is compiled in AND safe to execute here.
Isa best_usable_isa() {
  if (isa_usable(Isa::Neon)) return Isa::Neon;
  if (isa_usable(Isa::Avx512)) return Isa::Avx512;
  if (isa_usable(Isa::Avx2)) return Isa::Avx2;
  return Isa::Scalar;
}

/// One-line reason a tier cannot be selected, for the fallback warning.
const char* unusable_reason(Isa isa) {
  switch (isa) {
    case Isa::Avx2:
      if (!avx2_compiled()) return "AVX2 kernels are not compiled in";
#if defined(__x86_64__) || defined(__i386__)
      if (avx2_cpu_flags() && !avx_os_state())
        return "CPU reports AVX2 but the OS has not enabled YMM state "
               "(XCR0)";
#endif
      return "this CPU lacks AVX2/FMA";
    case Isa::Avx512:
      if (!avx512_compiled()) return "AVX-512 kernels are not compiled in";
#if defined(__x86_64__) || defined(__i386__)
      if (avx512_cpu_flags() && !avx512_os_state())
        return "CPU reports AVX-512 but the OS has not enabled ZMM/opmask "
               "state (XCR0)";
#endif
      return "this CPU lacks AVX-512 F/BW/DQ/VL";
    case Isa::Neon:
      if (!neon_compiled()) return "NEON kernels are not compiled in";
      return "not an AArch64 machine";
    case Isa::Scalar:
      break;
  }
  return "";
}

int resolve_isa() {
  const std::string req = env_str("NVM_SIMD", "");
  if (req == "scalar") return static_cast<int>(Isa::Scalar);
  const Isa best = best_usable_isa();
  if (!req.empty()) {
    Isa want = Isa::Scalar;
    bool known = true;
    if (req == "avx2") {
      want = Isa::Avx2;
    } else if (req == "avx512") {
      want = Isa::Avx512;
    } else if (req == "neon") {
      want = Isa::Neon;
    } else {
      known = false;
      NVM_LOG(Warn) << "unknown NVM_SIMD='" << req
                    << "' (want scalar|avx2|avx512|neon); auto-detecting";
    }
    if (known) {
      if (isa_usable(want)) return static_cast<int>(want);
      NVM_LOG(Warn) << "NVM_SIMD=" << req << " requested but "
                    << unusable_reason(want) << "; falling back to "
                    << isa_name(best);
    }
  }
#if defined(__x86_64__) || defined(__i386__)
  // cpuid advertises instructions the OS never enabled: warn once so a
  // silently-degraded tier is visible in logs.
  if (best != Isa::Avx512 && avx512_compiled() && avx512_cpu_flags() &&
      !avx512_os_state())
    NVM_LOG(Warn) << unusable_reason(Isa::Avx512) << "; using "
                  << isa_name(best);
  if (best == Isa::Scalar && avx2_compiled() && avx2_cpu_flags() &&
      !avx_os_state())
    NVM_LOG(Warn) << unusable_reason(Isa::Avx2) << "; using scalar";
#endif
  return static_cast<int>(best);
}

void publish_isa(int isa) {
  metrics::gauge("simd/isa").set(static_cast<double>(isa));
}

}  // namespace

Isa active_isa() {
  int v = g_isa.load(std::memory_order_relaxed);
  if (v < 0) {
    // resolve_isa() is pure, so a lost race just recomputes the same value.
    const int resolved = resolve_isa();
    int expected = -1;
    g_isa.compare_exchange_strong(expected, resolved,
                                  std::memory_order_relaxed);
    v = g_isa.load(std::memory_order_relaxed);
    publish_isa(v);
  }
  return static_cast<Isa>(v);
}

ScopedIsaForTests::ScopedIsaForTests(Isa isa) {
  NVM_CHECK(isa_usable(isa), "cannot force " << isa_name(isa) << ": "
                                             << unusable_reason(isa));
  prev_ = g_isa.exchange(static_cast<int>(isa), std::memory_order_relaxed);
  publish_isa(static_cast<int>(isa));
}

ScopedIsaForTests::~ScopedIsaForTests() {
  g_isa.store(prev_, std::memory_order_relaxed);
  if (prev_ >= 0) publish_isa(prev_);
}

// Scalar kernels ----------------------------------------------------------
// These define the reference semantics; the vector TUs mirror them. Plain
// mul+add throughout (the build uses -ffp-contract=off, so the compiler
// cannot fuse these into FMAs behind our back).

namespace detail {

float dot_scalar(const float* a, const float* b, std::int64_t n) {
  float lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (std::int64_t i = 0; i < n; ++i) lanes[i & 7] += a[i] * b[i];
  return ((lanes[0] + lanes[4]) + (lanes[2] + lanes[6])) +
         ((lanes[1] + lanes[5]) + (lanes[3] + lanes[7]));
}

void axpy_scalar(float* y, const float* x, float alpha, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void madd_scalar(float* y, const float* x, float alpha, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    const float t = alpha * x[i];
    y[i] = y[i] + t;
  }
}

void scale_scalar(float* y, const float* x, float alpha, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) y[i] = alpha * x[i];
}

void tanh_block_scalar(float* x, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) x[i] = tanh_fast(x[i]);
}

void gemm_scalar(float* c, const float* a, const float* b, std::int64_t m,
                 std::int64_t n, std::int64_t k, std::int64_t lda,
                 std::int64_t ldb, std::int64_t ldc) {
  for (std::int64_t i = 0; i < m; ++i) {
    float* crow = c + i * ldc;
    const float* arow = a + i * lda;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float aik = arow[kk];
      if (aik == 0.0f) continue;  // bit-sliced operands are mostly zero
      const float* brow = b + kk * ldb;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

void gemm_at_scalar(float* c, const float* a, const float* b, std::int64_t m,
                    std::int64_t n, std::int64_t k, std::int64_t lda,
                    std::int64_t ldb, std::int64_t ldc) {
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float* arow = a + kk * lda;
    const float* brow = b + kk * ldb;
    for (std::int64_t i = 0; i < m; ++i) {
      const float aki = arow[i];
      if (aki == 0.0f) continue;
      float* crow = c + i * ldc;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += aki * brow[j];
    }
  }
}

void gemm_bt_scalar(float* c, const float* a, const float* b, std::int64_t m,
                    std::int64_t n, std::int64_t k, std::int64_t lda,
                    std::int64_t ldb, std::int64_t ldc) {
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * lda;
    float* crow = c + i * ldc;
    for (std::int64_t j = 0; j < n; ++j)
      crow[j] += dot_scalar(arow, b + j * ldb, k);
  }
}

void gemm_f64acc_scalar(float* out, const float* a, const float* v,
                        std::int64_t m, std::int64_t n, std::int64_t k,
                        std::int64_t lda, std::int64_t ldv, std::int64_t ldo) {
  // Column blocks of 8 keep the V accesses contiguous per k-step; each
  // output element still accumulates sequentially over k in double, so the
  // result is independent of the blocking.
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * lda;
    for (std::int64_t j0 = 0; j0 < n; j0 += 8) {
      const std::int64_t jn = std::min<std::int64_t>(8, n - j0);
      double acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const double av = static_cast<double>(arow[kk]);
        const float* vrow = v + kk * ldv + j0;
        for (std::int64_t j = 0; j < jn; ++j)
          acc[j] += av * static_cast<double>(vrow[j]);
      }
      float* orow = out + i * ldo + j0;
      for (std::int64_t j = 0; j < jn; ++j)
        orow[j] = static_cast<float>(acc[j]);
    }
  }
}

void quantize_affine_scalar(float* out, const float* x, std::int64_t n,
                            float scale, float qmax) {
  for (std::int64_t i = 0; i < n; ++i) {
    const float clipped = std::clamp(x[i], 0.0f, scale);
    out[i] = std::round(clipped / scale * qmax);
  }
}

void adc_shift_add_scalar(float* acc, const float* cur, const float* baseline,
                          std::int64_t n, float full_scale, float steps,
                          float shift) {
  for (std::int64_t i = 0; i < n; ++i) {
    const float clamped = std::clamp(cur[i], 0.0f, full_scale);
    const float q = std::round(clamped / full_scale * steps) * full_scale /
                    steps;
    acc[i] += shift * (q - baseline[i]);
  }
}

void quantize_to_i8_scalar(std::int8_t* out, const float* x, std::int64_t n,
                           float scale, float qmax) {
  for (std::int64_t i = 0; i < n; ++i) {
    const float clipped = std::clamp(x[i], 0.0f, scale);
    out[i] = static_cast<std::int8_t>(std::round(clipped / scale * qmax));
  }
}

void quantize_to_i16_scalar(std::int16_t* out, const float* x, std::int64_t n,
                            float scale, float qmax) {
  for (std::int64_t i = 0; i < n; ++i) {
    const float clipped = std::clamp(x[i], 0.0f, scale);
    out[i] = static_cast<std::int16_t>(std::round(clipped / scale * qmax));
  }
}

void gemm_at_i8_i32acc_scalar(std::int32_t* c, const std::int8_t* a,
                              const std::int8_t* b, std::int64_t m,
                              std::int64_t n, std::int64_t k, std::int64_t lda,
                              std::int64_t ldb, std::int64_t ldc) {
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const std::int8_t* arow = a + kk * lda;
    const std::int8_t* brow = b + kk * ldb;
    for (std::int64_t i = 0; i < m; ++i) {
      const std::int32_t aki = arow[i];
      if (aki == 0) continue;  // bit-sliced operands are mostly zero
      std::int32_t* crow = c + i * ldc;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += aki * brow[j];
    }
  }
}

void adc_shift_add_i32_scalar(float* acc, const std::int32_t* dot,
                              const float* baseline, std::int64_t n,
                              float dot_unit, float full_scale, float steps,
                              float shift) {
  for (std::int64_t i = 0; i < n; ++i) {
    const float cur = baseline[i] + dot_unit * static_cast<float>(dot[i]);
    const float clamped = std::clamp(cur, 0.0f, full_scale);
    const float q = std::round(clamped / full_scale * steps) * full_scale /
                    steps;
    acc[i] += shift * (q - baseline[i]);
  }
}

}  // namespace detail

float tanh_fast(float x) {
  if (x > 4.97f) return 1.0f;
  if (x < -4.97f) return -1.0f;
  const float x2 = x * x;
  const float p = x * (135135.0f + x2 * (17325.0f + x2 * (378.0f + x2)));
  const float q = 135135.0f + x2 * (62370.0f + x2 * (3150.0f + x2 * 28.0f));
  return p / q;
}

// Public dispatch ---------------------------------------------------------

namespace {

/// One call + flop tally; call-site counters are cached by the wrappers.
inline void tally(metrics::Counter& calls, std::uint64_t flops) {
  static metrics::Counter& f = metrics::counter("simd/flops");
  calls.add();
  f.add(flops);
}

inline std::uint64_t u64(std::int64_t v) {
  return static_cast<std::uint64_t>(v);
}

}  // namespace

// Four-way tier switch; works for void and value-returning kernels alike.
#define NVM_SIMD_DISPATCH(fn, ...)                      \
  switch (active_isa()) {                               \
    case Isa::Avx512:                                   \
      return detail::fn##_avx512(__VA_ARGS__);          \
    case Isa::Avx2:                                     \
      return detail::fn##_avx2(__VA_ARGS__);            \
    case Isa::Neon:                                     \
      return detail::fn##_neon(__VA_ARGS__);            \
    case Isa::Scalar:                                   \
      break;                                            \
  }                                                     \
  return detail::fn##_scalar(__VA_ARGS__)

float dot(const float* a, const float* b, std::int64_t n) {
  static metrics::Counter& c = metrics::counter("simd/kernel/dot");
  tally(c, 2 * u64(n));
  NVM_SIMD_DISPATCH(dot, a, b, n);
}

void axpy(float* y, const float* x, float alpha, std::int64_t n) {
  static metrics::Counter& c = metrics::counter("simd/kernel/axpy");
  tally(c, 2 * u64(n));
  NVM_SIMD_DISPATCH(axpy, y, x, alpha, n);
}

void madd(float* y, const float* x, float alpha, std::int64_t n) {
  static metrics::Counter& c = metrics::counter("simd/kernel/madd");
  tally(c, 2 * u64(n));
  NVM_SIMD_DISPATCH(madd, y, x, alpha, n);
}

void scale(float* y, const float* x, float alpha, std::int64_t n) {
  static metrics::Counter& c = metrics::counter("simd/kernel/scale");
  tally(c, u64(n));
  NVM_SIMD_DISPATCH(scale, y, x, alpha, n);
}

void tanh_block(float* x, std::int64_t n) {
  static metrics::Counter& c = metrics::counter("simd/kernel/tanh_block");
  tally(c, 12 * u64(n));  // ~12 arithmetic ops per rational tanh
  NVM_SIMD_DISPATCH(tanh_block, x, n);
}

void gemm_accum(float* c, const float* a, const float* b, std::int64_t m,
                std::int64_t n, std::int64_t k, std::int64_t lda,
                std::int64_t ldb, std::int64_t ldc) {
  static metrics::Counter& calls = metrics::counter("simd/kernel/gemm");
  tally(calls, 2 * u64(m) * u64(n) * u64(k));
  NVM_SIMD_DISPATCH(gemm, c, a, b, m, n, k, lda, ldb, ldc);
}

void gemm_at_accum(float* c, const float* a, const float* b, std::int64_t m,
                   std::int64_t n, std::int64_t k, std::int64_t lda,
                   std::int64_t ldb, std::int64_t ldc) {
  static metrics::Counter& calls = metrics::counter("simd/kernel/gemm_at");
  tally(calls, 2 * u64(m) * u64(n) * u64(k));
  NVM_SIMD_DISPATCH(gemm_at, c, a, b, m, n, k, lda, ldb, ldc);
}

void gemm_bt_accum(float* c, const float* a, const float* b, std::int64_t m,
                   std::int64_t n, std::int64_t k, std::int64_t lda,
                   std::int64_t ldb, std::int64_t ldc) {
  static metrics::Counter& calls = metrics::counter("simd/kernel/gemm_bt");
  tally(calls, 2 * u64(m) * u64(n) * u64(k));
  NVM_SIMD_DISPATCH(gemm_bt, c, a, b, m, n, k, lda, ldb, ldc);
}

void gemm_f64acc(float* out, const float* a, const float* v, std::int64_t m,
                 std::int64_t n, std::int64_t k, std::int64_t lda,
                 std::int64_t ldv, std::int64_t ldo) {
  static metrics::Counter& calls = metrics::counter("simd/kernel/gemm_f64acc");
  tally(calls, 2 * u64(m) * u64(n) * u64(k));
  NVM_SIMD_DISPATCH(gemm_f64acc, out, a, v, m, n, k, lda, ldv, ldo);
}

void quantize_affine(float* out, const float* x, std::int64_t n, float scale,
                     float qmax) {
  static metrics::Counter& c = metrics::counter("simd/kernel/quantize");
  tally(c, 4 * u64(n));
  NVM_SIMD_DISPATCH(quantize_affine, out, x, n, scale, qmax);
}

void adc_shift_add(float* acc, const float* cur, const float* baseline,
                   std::int64_t n, float full_scale, float steps,
                   float shift) {
  static metrics::Counter& c = metrics::counter("simd/kernel/adc_shift_add");
  tally(c, 8 * u64(n));
  NVM_SIMD_DISPATCH(adc_shift_add, acc, cur, baseline, n, full_scale, steps,
                    shift);
}

void quantize_to_i8(std::int8_t* out, const float* x, std::int64_t n,
                    float scale, float qmax) {
  NVM_CHECK(qmax > 0.0f && qmax <= 127.0f, "i8 qmax=" << qmax);
  static metrics::Counter& c = metrics::counter("simd/kernel/quantize_i8");
  tally(c, 4 * u64(n));
  NVM_SIMD_DISPATCH(quantize_to_i8, out, x, n, scale, qmax);
}

void quantize_to_i16(std::int16_t* out, const float* x, std::int64_t n,
                     float scale, float qmax) {
  NVM_CHECK(qmax > 0.0f && qmax <= 32767.0f, "i16 qmax=" << qmax);
  static metrics::Counter& c = metrics::counter("simd/kernel/quantize_i16");
  tally(c, 4 * u64(n));
  NVM_SIMD_DISPATCH(quantize_to_i16, out, x, n, scale, qmax);
}

void gemm_at_i8_i32acc(std::int32_t* c, const std::int8_t* a,
                       const std::int8_t* b, std::int64_t m, std::int64_t n,
                       std::int64_t k, std::int64_t lda, std::int64_t ldb,
                       std::int64_t ldc) {
  static metrics::Counter& calls =
      metrics::counter("simd/kernel/gemm_i32acc");
  tally(calls, 2 * u64(m) * u64(n) * u64(k));
  NVM_SIMD_DISPATCH(gemm_at_i8_i32acc, c, a, b, m, n, k, lda, ldb, ldc);
}

void adc_shift_add_i32(float* acc, const std::int32_t* dot,
                       const float* baseline, std::int64_t n, float dot_unit,
                       float full_scale, float steps, float shift) {
  static metrics::Counter& c =
      metrics::counter("simd/kernel/adc_shift_add_i32");
  tally(c, 10 * u64(n));
  NVM_SIMD_DISPATCH(adc_shift_add_i32, acc, dot, baseline, n, dot_unit,
                    full_scale, steps, shift);
}

#undef NVM_SIMD_DISPATCH

// Workspace ---------------------------------------------------------------

namespace {

template <typename T>
std::span<T> acquire(std::vector<T>& buf, std::size_t n) {
  static metrics::Counter& reuses = metrics::counter("simd/workspace/reuses");
  if (buf.size() >= n)
    reuses.add();
  else
    buf.resize(n);
  return {buf.data(), n};
}

}  // namespace

std::span<float> Workspace::floats(int slot, std::size_t n) {
  NVM_CHECK(slot >= 0 && slot < kSlots, "workspace slot=" << slot);
  return acquire(f_[slot], n);
}

std::span<double> Workspace::doubles(int slot, std::size_t n) {
  NVM_CHECK(slot >= 0 && slot < kSlots, "workspace slot=" << slot);
  return acquire(d_[slot], n);
}

std::span<std::int8_t> Workspace::i8s(int slot, std::size_t n) {
  NVM_CHECK(slot >= 0 && slot < kSlots, "workspace slot=" << slot);
  return acquire(i8_[slot], n);
}

std::span<std::int16_t> Workspace::i16s(int slot, std::size_t n) {
  NVM_CHECK(slot >= 0 && slot < kSlots, "workspace slot=" << slot);
  return acquire(i16_[slot], n);
}

std::span<std::int32_t> Workspace::i32s(int slot, std::size_t n) {
  NVM_CHECK(slot >= 0 && slot < kSlots, "workspace slot=" << slot);
  return acquire(i32_[slot], n);
}

WorkspacePool::Lease::~Lease() {
  if (pool_ != nullptr && ws_ != nullptr) pool_->release(std::move(ws_));
}

WorkspacePool::Lease WorkspacePool::acquire() {
  static metrics::Counter& leases =
      metrics::counter("simd/workspace/pool_leases");
  static metrics::Counter& grows =
      metrics::counter("simd/workspace/pool_grows");
  leases.add();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_.empty()) {
      std::unique_ptr<Workspace> ws = std::move(free_.back());
      free_.pop_back();
      return {this, std::move(ws)};
    }
  }
  grows.add();
  return {this, std::make_unique<Workspace>()};
}

void WorkspacePool::release(std::unique_ptr<Workspace> ws) {
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(std::move(ws));
}

WorkspacePool& shared_workspace_pool() {
  static WorkspacePool* pool = new WorkspacePool();  // never destructed
  return *pool;
}

}  // namespace nvm::simd

// Deterministic, splittable pseudo-random number generator.
//
// Every stochastic component in the library (dataset synthesis, weight
// init, attacks, defenses, device variation) takes an explicit Rng so that
// experiments are reproducible run-to-run and across machines.
//
// The core generator is xoshiro256++ (Blackman & Vigna), seeded through
// splitmix64 so that small integer seeds produce well-mixed states.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace nvm {

/// Stateless splittable seed derivation: the seed of stream `stream` under
/// `base`. Batch paths (per-sample attack crafting, GENIEx sample
/// generation) seed each unit of work with derive_seed(base, index) so the
/// result is a pure function of (base, index) — identical whether the
/// batch runs serially or fanned out across the thread pool, and
/// regardless of how work is chunked. Rng(derive_seed(b, i)) is exactly
/// Rng(b).split(i).
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream);

/// xoshiro256++ PRNG with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the state via splitmix64; any 64-bit seed is acceptable.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// UniformRandomBitGenerator interface (usable with <random> adaptors).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() { return next(); }

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached pair).
  double normal();

  /// Normal with given mean / stddev.
  double normal(double mean, double stddev);

  /// Bernoulli trial.
  bool bernoulli(double p);

  /// Random sign: +1 or -1 with equal probability.
  double sign();

  /// Derives an independent child generator; stream `i` of the same parent
  /// is stable across runs. Used to give each image / layer / trial its own
  /// stream without coupling consumption order.
  Rng split(std::uint64_t stream) const;

  /// Fisher-Yates shuffle of an index vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_index(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> state_{};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
  std::uint64_t seed_ = 0;  // retained for split()
};

}  // namespace nvm

// Lightweight runtime-check macros used across the library.
//
// All checks throw nvm::CheckError (derived from std::logic_error) rather
// than aborting, so tests can assert on violation and callers can recover.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace nvm {

/// Error thrown when an NVM_CHECK-style precondition fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace nvm

/// Always-on invariant check. `NVM_CHECK(cond)` or
/// `NVM_CHECK(cond, "context " << value)`.
#define NVM_CHECK(cond, ...)                                               \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream nvm_check_os_;                                    \
      (void)(nvm_check_os_ __VA_OPT__(<< __VA_ARGS__));                    \
      ::nvm::detail::check_failed(#cond, __FILE__, __LINE__,               \
                                  nvm_check_os_.str());                    \
    }                                                                      \
  } while (false)

/// Check for indexing: `NVM_CHECK_LT(i, n)`.
#define NVM_CHECK_LT(a, b) NVM_CHECK((a) < (b), #a "=" << (a) << " " #b "=" << (b))
#define NVM_CHECK_LE(a, b) NVM_CHECK((a) <= (b), #a "=" << (a) << " " #b "=" << (b))
#define NVM_CHECK_EQ(a, b) NVM_CHECK((a) == (b), #a "=" << (a) << " " #b "=" << (b))
#define NVM_CHECK_GT(a, b) NVM_CHECK((a) > (b), #a "=" << (a) << " " #b "=" << (b))
#define NVM_CHECK_GE(a, b) NVM_CHECK((a) >= (b), #a "=" << (a) << " " #b "=" << (b))

// Environment-driven experiment scaling.
//
// The benchmark harnesses default to reduced sample counts so the full
// suite completes on a single core; setting REPRO_FULL=1 restores
// paper-scale counts.
#pragma once

#include <cstdint>
#include <string>

namespace nvm {

/// True when REPRO_FULL=1 (paper-scale experiment sizes).
bool full_scale();

/// Returns `quick` normally, `full` when REPRO_FULL=1.
std::int64_t scaled(std::int64_t quick, std::int64_t full);

/// Reads an integer env override, falling back to `fallback` when the
/// variable is unset, empty, or malformed. The whole value must parse
/// (modulo surrounding whitespace): trailing garbage ("8abc") and
/// out-of-range magnitudes are rejected with one Warn log rather than
/// silently truncated or clamped.
std::int64_t env_int(const std::string& name, std::int64_t fallback);

/// Strict double parse shared by env_double and the CLI flag parsers: the
/// whole value must parse (modulo surrounding whitespace), ERANGE
/// overflow/underflow is rejected, and NaN/Inf spellings are accepted only
/// because strtod defines them — malformed input returns false and leaves
/// *out untouched.
bool parse_double(const char* text, double* out);

/// Reads a floating-point env override with the same strict-parse contract
/// as env_int: unset/empty/malformed values fall back with one Warn log,
/// never a silent half-parse.
double env_double(const std::string& name, double fallback);

/// Reads a string env override, falling back to `fallback` when the
/// variable is unset or empty.
std::string env_str(const std::string& name, const std::string& fallback);

}  // namespace nvm

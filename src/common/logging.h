// Minimal leveled logger writing to stderr.
//
// Usage: NVM_LOG(Info) << "trained " << n << " epochs";
// The global threshold is controlled by set_log_level() or the
// NVMROBUST_LOG env var (error|warn|info|debug).
#pragma once

#include <sstream>
#include <string>

namespace nvm {

enum class LogLevel { Error = 0, Warn = 1, Info = 2, Debug = 3 };

/// Sets the global log threshold; messages above it are dropped.
void set_log_level(LogLevel level);

/// Current global threshold (initialized from NVMROBUST_LOG on first use).
LogLevel log_level();

namespace detail {

/// Accumulates one log line and flushes it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace nvm

#define NVM_LOG(severity)                                            \
  ::nvm::detail::LogMessage(::nvm::LogLevel::severity, __FILE__, __LINE__)

// Minimal leveled logger writing to stderr.
//
// Usage: NVM_LOG(Info) << "trained " << n << " epochs";
// The global threshold is controlled by set_log_level() or the
// NVMROBUST_LOG env var (error|warn|info|debug).
//
// Line format (stable — tests grep it; see log_prefix()):
//   [<LEVEL> <ISO-8601 local time with ms> t<thread> <file>:<line>] <msg>
//   [W 2026-08-05T14:03:21.042 t0 circuit_solver.cpp:153] crossbar solve ...
// The level letter stays the first token inside the bracket, so filters
// like `grep '^\[W '` keep working across format extensions.
#pragma once

#include <sstream>
#include <string>

namespace nvm {

enum class LogLevel { Error = 0, Warn = 1, Info = 2, Debug = 3 };

/// Sets the global log threshold; messages above it are dropped.
void set_log_level(LogLevel level);

/// Current global threshold (initialized from NVMROBUST_LOG on first use).
LogLevel log_level();

/// Small sequential id of the calling thread (0 = first thread to log).
int log_thread_id();

/// The bracketed line prefix for a message logged here and now, e.g.
/// "[I 2026-08-05T14:03:21.042 t0 tasks.cpp:141] " (exposed for tests).
std::string log_prefix(LogLevel level, const char* file, int line);

namespace detail {

/// Accumulates one log line and flushes it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  /// True when the message passes the level threshold (exposed for tests).
  bool enabled() const { return enabled_; }
  ~LogMessage();
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace nvm

#define NVM_LOG(severity)                                            \
  ::nvm::detail::LogMessage(::nvm::LogLevel::severity, __FILE__, __LINE__)

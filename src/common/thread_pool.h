// Fixed-size thread pool with a blocking parallel_for primitive.
//
// This is the single parallel-execution substrate for the whole library:
// tiled crossbar GEMMs, per-column batched MVMs, GENIEx training-sample
// generation, and per-sample evaluation / attack crafting all fan out
// through it. Design constraints, in order:
//
//   * Determinism. parallel_for / parallel_chunks decompose work
//     independently of the pool size, and callers only submit index-wise
//     independent work (or reduce partials in a fixed order), so results
//     are bit-identical for any NVM_THREADS value, including 1.
//   * No work stealing, no task futures. One blocking fork-join primitive
//     keeps the concurrency surface small enough to reason about (and to
//     run cleanly under -fsanitize=thread).
//   * Nested calls never deadlock: a parallel_for issued from inside a
//     pool task runs inline (serially) on the current thread.
//
// The pool size is NVM_THREADS when set (via env_int), otherwise
// std::thread::hardware_concurrency(). Size 1 spawns no worker threads
// and executes everything inline on the caller — the serial baseline.
//
// A pool of size S runs S-1 dedicated workers; the submitting thread
// executes the first chunk itself, so S chunks make progress at once.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nvm {

class ThreadPool {
 public:
  /// fn(chunk_index, begin, end): process indices [begin, end).
  using ChunkFn =
      std::function<void(std::int64_t, std::int64_t, std::int64_t)>;

  /// `threads` == 0 selects the NVM_THREADS / hardware default.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return size_; }

  /// Runs fn(i) for every i in [0, n), blocking until all complete. The
  /// first exception thrown by any invocation is rethrown here after every
  /// chunk has finished; the throwing chunk abandons its remaining indices
  /// while other chunks run to completion. Indices are processed in
  /// contiguous blocks; fn must be safe to call concurrently for distinct i.
  void parallel_for(std::int64_t n,
                    const std::function<void(std::int64_t)>& fn);

  /// Splits [0, n) into exactly min(max_chunks, n) contiguous chunks and
  /// runs fn(chunk, begin, end) for each, blocking until all complete.
  /// The decomposition depends only on (n, max_chunks) — never on the pool
  /// size — so chunk-indexed state (e.g. per-worker model replicas) sees
  /// the same partition under any NVM_THREADS. At most one invocation per
  /// chunk index runs at a time.
  void parallel_chunks(std::int64_t n, std::int64_t max_chunks,
                       const ChunkFn& fn);

  /// Process-wide pool, sized by NVM_THREADS (default
  /// hardware_concurrency). Constructed on first use.
  static ThreadPool& global();

  /// The pool free nvm::parallel_for routes through: the innermost active
  /// ScopedUse override on this thread, else global().
  static ThreadPool& current();

  /// True while the calling thread is executing inside a parallel region
  /// (pool worker or submitter running its own chunk). Nested parallel
  /// calls in this state run inline.
  static bool in_parallel_region();

  /// Routes nvm::parallel_for / parallel_chunks on this thread through
  /// `pool` for the scope's lifetime (tests and benchmarks comparing
  /// thread counts; normal code uses the global pool).
  class ScopedUse {
   public:
    explicit ScopedUse(ThreadPool& pool);
    ~ScopedUse();
    ScopedUse(const ScopedUse&) = delete;
    ScopedUse& operator=(const ScopedUse&) = delete;

   private:
    ThreadPool* prev_;
  };

 private:
  void worker_loop();

  std::size_t size_ = 1;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Convenience wrappers over ThreadPool::current().
void parallel_for(std::int64_t n, const std::function<void(std::int64_t)>& fn);
void parallel_chunks(std::int64_t n, std::int64_t max_chunks,
                     const ThreadPool::ChunkFn& fn);

}  // namespace nvm

// AVX2/FMA kernel variants. This is the only translation unit built with
// -mavx2 -mfma (per-file flags from src/common/CMakeLists.txt, applied
// only when NVM_ENABLE_AVX2 is on — otherwise the stubs at the bottom are
// compiled and the runtime dispatcher never routes here).
//
// Parity rules mirrored from simd.h: [exact] kernels use the same
// unfused mul/add sequence as the scalar reference in simd.cpp; [~ulp]
// kernels (dot, axpy, gemm, gemm_at, gemm_bt) use FMA in the vector body.
// Scalar tail loops in this TU are unfused like the reference (the whole
// build carries -ffp-contract=off; FMA only appears via intrinsics).
#include "common/simd_kernels.h"

#ifdef NVM_SIMD_AVX2_TU

#include <immintrin.h>

#include <algorithm>
#include <cmath>

#include "common/simd.h"

namespace nvm::simd::detail {

bool avx2_tu_compiled() { return true; }

namespace {

/// Reduction of the 8 strided lanes in the documented fixed tree.
inline float reduce_lanes(const float lanes[8]) {
  return ((lanes[0] + lanes[4]) + (lanes[2] + lanes[6])) +
         ((lanes[1] + lanes[5]) + (lanes[3] + lanes[7]));
}

/// round-half-away-from-zero for non-negative t: floor(t) + (frac >= 0.5).
/// frac = t - floor(t) is exact (Sterbenz), so this matches std::round on
/// the whole non-negative domain including ties.
inline __m256 round_nonneg(__m256 t) {
  const __m256 fl = _mm256_floor_ps(t);
  const __m256 frac = _mm256_sub_ps(t, fl);
  const __m256 ge =
      _mm256_cmp_ps(frac, _mm256_set1_ps(0.5f), _CMP_GE_OQ);
  return _mm256_add_ps(fl, _mm256_and_ps(ge, _mm256_set1_ps(1.0f)));
}

}  // namespace

float dot_avx2(const float* a, const float* b, std::int64_t n) {
  const std::int64_t n8 = n & ~std::int64_t{7};
  __m256 acc = _mm256_setzero_ps();
  for (std::int64_t i = 0; i < n8; i += 8)
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                          acc);
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, acc);
  for (std::int64_t i = n8; i < n; ++i) lanes[i & 7] += a[i] * b[i];
  return reduce_lanes(lanes);
}

void axpy_avx2(float* y, const float* x, float alpha, std::int64_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  const std::int64_t n8 = n & ~std::int64_t{7};
  for (std::int64_t i = 0; i < n8; i += 8)
    _mm256_storeu_ps(
        y + i, _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i),
                               _mm256_loadu_ps(y + i)));
  for (std::int64_t i = n8; i < n; ++i) y[i] += alpha * x[i];
}

void madd_avx2(float* y, const float* x, float alpha, std::int64_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  const std::int64_t n8 = n & ~std::int64_t{7};
  for (std::int64_t i = 0; i < n8; i += 8) {
    const __m256 t = _mm256_mul_ps(va, _mm256_loadu_ps(x + i));
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), t));
  }
  for (std::int64_t i = n8; i < n; ++i) {
    const float t = alpha * x[i];
    y[i] = y[i] + t;
  }
}

void scale_avx2(float* y, const float* x, float alpha, std::int64_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  const std::int64_t n8 = n & ~std::int64_t{7};
  for (std::int64_t i = 0; i < n8; i += 8)
    _mm256_storeu_ps(y + i, _mm256_mul_ps(va, _mm256_loadu_ps(x + i)));
  for (std::int64_t i = n8; i < n; ++i) y[i] = alpha * x[i];
}

void tanh_block_avx2(float* x, std::int64_t n) {
  // Same polynomial op sequence as tanh_fast; saturation applied by blend.
  const __m256 hi = _mm256_set1_ps(4.97f);
  const __m256 lo = _mm256_set1_ps(-4.97f);
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 neg_one = _mm256_set1_ps(-1.0f);
  const __m256 c0 = _mm256_set1_ps(135135.0f);
  const __m256 c1 = _mm256_set1_ps(17325.0f);
  const __m256 c2 = _mm256_set1_ps(378.0f);
  const __m256 d1 = _mm256_set1_ps(62370.0f);
  const __m256 d2 = _mm256_set1_ps(3150.0f);
  const __m256 d3 = _mm256_set1_ps(28.0f);
  const std::int64_t n8 = n & ~std::int64_t{7};
  for (std::int64_t i = 0; i < n8; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    const __m256 x2 = _mm256_mul_ps(v, v);
    __m256 p = _mm256_add_ps(c2, x2);
    p = _mm256_add_ps(c1, _mm256_mul_ps(x2, p));
    p = _mm256_add_ps(c0, _mm256_mul_ps(x2, p));
    p = _mm256_mul_ps(v, p);
    __m256 q = _mm256_add_ps(d2, _mm256_mul_ps(x2, d3));
    q = _mm256_add_ps(d1, _mm256_mul_ps(x2, q));
    q = _mm256_add_ps(c0, _mm256_mul_ps(x2, q));
    __m256 r = _mm256_div_ps(p, q);
    r = _mm256_blendv_ps(r, one, _mm256_cmp_ps(v, hi, _CMP_GT_OQ));
    r = _mm256_blendv_ps(r, neg_one, _mm256_cmp_ps(v, lo, _CMP_LT_OQ));
    _mm256_storeu_ps(x + i, r);
  }
  for (std::int64_t i = n8; i < n; ++i) x[i] = tanh_fast(x[i]);
}

namespace {

/// One output row of C += A*B style accumulation: crow[j] accumulates
/// coef(kk) * b[kk*ldb + j] sequentially over kk, FMA in the vector body.
template <typename Coef>
inline void gemm_row_fma(float* crow, const float* b, std::int64_t n,
                         std::int64_t k, std::int64_t ldb, Coef coef) {
  const std::int64_t n8 = n & ~std::int64_t{7};
  for (std::int64_t j0 = 0; j0 < n8; j0 += 8) {
    __m256 acc = _mm256_loadu_ps(crow + j0);
    for (std::int64_t kk = 0; kk < k; ++kk)
      acc = _mm256_fmadd_ps(_mm256_set1_ps(coef(kk)),
                            _mm256_loadu_ps(b + kk * ldb + j0), acc);
    _mm256_storeu_ps(crow + j0, acc);
  }
  for (std::int64_t j = n8; j < n; ++j) {
    float acc = crow[j];
    for (std::int64_t kk = 0; kk < k; ++kk) acc += coef(kk) * b[kk * ldb + j];
    crow[j] = acc;
  }
}

/// 4x8 microtile: four independent FMA chains over k for ILP. `coef(r,kk)`
/// yields the A element for microtile row r at reduction index kk.
template <typename Coef>
inline void gemm_tile4_fma(float* c, const float* b, std::int64_t n,
                           std::int64_t k, std::int64_t ldb, std::int64_t ldc,
                           Coef coef) {
  const std::int64_t n8 = n & ~std::int64_t{7};
  for (std::int64_t j0 = 0; j0 < n8; j0 += 8) {
    __m256 acc0 = _mm256_loadu_ps(c + 0 * ldc + j0);
    __m256 acc1 = _mm256_loadu_ps(c + 1 * ldc + j0);
    __m256 acc2 = _mm256_loadu_ps(c + 2 * ldc + j0);
    __m256 acc3 = _mm256_loadu_ps(c + 3 * ldc + j0);
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const __m256 bv = _mm256_loadu_ps(b + kk * ldb + j0);
      acc0 = _mm256_fmadd_ps(_mm256_set1_ps(coef(0, kk)), bv, acc0);
      acc1 = _mm256_fmadd_ps(_mm256_set1_ps(coef(1, kk)), bv, acc1);
      acc2 = _mm256_fmadd_ps(_mm256_set1_ps(coef(2, kk)), bv, acc2);
      acc3 = _mm256_fmadd_ps(_mm256_set1_ps(coef(3, kk)), bv, acc3);
    }
    _mm256_storeu_ps(c + 0 * ldc + j0, acc0);
    _mm256_storeu_ps(c + 1 * ldc + j0, acc1);
    _mm256_storeu_ps(c + 2 * ldc + j0, acc2);
    _mm256_storeu_ps(c + 3 * ldc + j0, acc3);
  }
  for (std::int64_t j = n8; j < n; ++j) {
    for (int r = 0; r < 4; ++r) {
      float acc = c[r * ldc + j];
      for (std::int64_t kk = 0; kk < k; ++kk)
        acc += coef(r, kk) * b[kk * ldb + j];
      c[r * ldc + j] = acc;
    }
  }
}

}  // namespace

void gemm_avx2(float* c, const float* a, const float* b, std::int64_t m,
               std::int64_t n, std::int64_t k, std::int64_t lda,
               std::int64_t ldb, std::int64_t ldc) {
  const std::int64_t m4 = m & ~std::int64_t{3};
  for (std::int64_t i0 = 0; i0 < m4; i0 += 4)
    gemm_tile4_fma(c + i0 * ldc, b, n, k, ldb, ldc,
                   [&](int r, std::int64_t kk) {
                     return a[(i0 + r) * lda + kk];
                   });
  for (std::int64_t i = m4; i < m; ++i)
    gemm_row_fma(c + i * ldc, b, n, k, ldb,
                 [&](std::int64_t kk) { return a[i * lda + kk]; });
}

void gemm_at_avx2(float* c, const float* a, const float* b, std::int64_t m,
                  std::int64_t n, std::int64_t k, std::int64_t lda,
                  std::int64_t ldb, std::int64_t ldc) {
  const std::int64_t m4 = m & ~std::int64_t{3};
  for (std::int64_t i0 = 0; i0 < m4; i0 += 4)
    gemm_tile4_fma(c + i0 * ldc, b, n, k, ldb, ldc,
                   [&](int r, std::int64_t kk) {
                     return a[kk * lda + i0 + r];
                   });
  for (std::int64_t i = m4; i < m; ++i)
    gemm_row_fma(c + i * ldc, b, n, k, ldb,
                 [&](std::int64_t kk) { return a[kk * lda + i]; });
}

void gemm_bt_avx2(float* c, const float* a, const float* b, std::int64_t m,
                  std::int64_t n, std::int64_t k, std::int64_t lda,
                  std::int64_t ldb, std::int64_t ldc) {
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * lda;
    float* crow = c + i * ldc;
    for (std::int64_t j = 0; j < n; ++j)
      crow[j] += dot_avx2(arow, b + j * ldb, k);
  }
}

void gemm_f64acc_avx2(float* out, const float* a, const float* v,
                      std::int64_t m, std::int64_t n, std::int64_t k,
                      std::int64_t lda, std::int64_t ldv, std::int64_t ldo) {
  // double(a)*double(v) is exact (24+24 significand bits fit in 53), so
  // fmadd_pd rounds exactly like the scalar reference's mul-then-add —
  // this kernel is bit-identical to gemm_f64acc_scalar.
  const std::int64_t n8 = n & ~std::int64_t{7};
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * lda;
    for (std::int64_t j0 = 0; j0 < n8; j0 += 8) {
      __m256d acc_lo = _mm256_setzero_pd();
      __m256d acc_hi = _mm256_setzero_pd();
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const __m256d av = _mm256_set1_pd(static_cast<double>(arow[kk]));
        const __m256 vf = _mm256_loadu_ps(v + kk * ldv + j0);
        acc_lo = _mm256_fmadd_pd(
            av, _mm256_cvtps_pd(_mm256_castps256_ps128(vf)), acc_lo);
        acc_hi = _mm256_fmadd_pd(
            av, _mm256_cvtps_pd(_mm256_extractf128_ps(vf, 1)), acc_hi);
      }
      const __m128 f_lo = _mm256_cvtpd_ps(acc_lo);
      const __m128 f_hi = _mm256_cvtpd_ps(acc_hi);
      _mm256_storeu_ps(out + i * ldo + j0,
                       _mm256_set_m128(f_hi, f_lo));
    }
    for (std::int64_t j = n8; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk)
        acc += static_cast<double>(arow[kk]) *
               static_cast<double>(v[kk * ldv + j]);
      out[i * ldo + j] = static_cast<float>(acc);
    }
  }
}

void quantize_affine_avx2(float* out, const float* x, std::int64_t n,
                          float scale, float qmax) {
  const __m256 zero = _mm256_setzero_ps();
  const __m256 vs = _mm256_set1_ps(scale);
  const __m256 vq = _mm256_set1_ps(qmax);
  const std::int64_t n8 = n & ~std::int64_t{7};
  for (std::int64_t i = 0; i < n8; i += 8) {
    const __m256 clipped =
        _mm256_min_ps(_mm256_max_ps(_mm256_loadu_ps(x + i), zero), vs);
    const __m256 t = _mm256_mul_ps(_mm256_div_ps(clipped, vs), vq);
    _mm256_storeu_ps(out + i, round_nonneg(t));
  }
  for (std::int64_t i = n8; i < n; ++i) {
    const float clipped = std::clamp(x[i], 0.0f, scale);
    out[i] = std::round(clipped / scale * qmax);
  }
}

void adc_shift_add_avx2(float* acc, const float* cur, const float* baseline,
                        std::int64_t n, float full_scale, float steps,
                        float shift) {
  const __m256 zero = _mm256_setzero_ps();
  const __m256 vfs = _mm256_set1_ps(full_scale);
  const __m256 vsteps = _mm256_set1_ps(steps);
  const __m256 vshift = _mm256_set1_ps(shift);
  const std::int64_t n8 = n & ~std::int64_t{7};
  for (std::int64_t i = 0; i < n8; i += 8) {
    const __m256 clamped =
        _mm256_min_ps(_mm256_max_ps(_mm256_loadu_ps(cur + i), zero), vfs);
    const __m256 r =
        round_nonneg(_mm256_mul_ps(_mm256_div_ps(clamped, vfs), vsteps));
    const __m256 q = _mm256_div_ps(_mm256_mul_ps(r, vfs), vsteps);
    const __m256 d = _mm256_sub_ps(q, _mm256_loadu_ps(baseline + i));
    // Unfused mul+add to match the scalar reference bit-for-bit.
    _mm256_storeu_ps(acc + i, _mm256_add_ps(_mm256_loadu_ps(acc + i),
                                            _mm256_mul_ps(vshift, d)));
  }
  for (std::int64_t i = n8; i < n; ++i) {
    const float clamped = std::clamp(cur[i], 0.0f, full_scale);
    const float q = std::round(clamped / full_scale * steps) * full_scale /
                    steps;
    acc[i] += shift * (q - baseline[i]);
  }
}

namespace {

/// Rounded quantization codes for 8 floats, as i32 (codes are integral, so
/// cvtps_epi32's round-to-nearest-even cannot move them).
inline __m256i quantize_codes8(const float* x, __m256 vs, __m256 vq) {
  const __m256 clipped =
      _mm256_min_ps(_mm256_max_ps(_mm256_loadu_ps(x), _mm256_setzero_ps()),
                    vs);
  const __m256 t = _mm256_mul_ps(_mm256_div_ps(clipped, vs), vq);
  return _mm256_cvtps_epi32(round_nonneg(t));
}

}  // namespace

void quantize_to_i8_avx2(std::int8_t* out, const float* x, std::int64_t n,
                         float scale, float qmax) {
  const __m256 vs = _mm256_set1_ps(scale);
  const __m256 vq = _mm256_set1_ps(qmax);
  const std::int64_t n8 = n & ~std::int64_t{7};
  alignas(32) std::int32_t tmp[8];
  for (std::int64_t i = 0; i < n8; i += 8) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp),
                       quantize_codes8(x + i, vs, vq));
    for (int l = 0; l < 8; ++l)
      out[i + l] = static_cast<std::int8_t>(tmp[l]);
  }
  for (std::int64_t i = n8; i < n; ++i) {
    const float clipped = std::clamp(x[i], 0.0f, scale);
    out[i] = static_cast<std::int8_t>(std::round(clipped / scale * qmax));
  }
}

void quantize_to_i16_avx2(std::int16_t* out, const float* x, std::int64_t n,
                          float scale, float qmax) {
  const __m256 vs = _mm256_set1_ps(scale);
  const __m256 vq = _mm256_set1_ps(qmax);
  const std::int64_t n8 = n & ~std::int64_t{7};
  alignas(32) std::int32_t tmp[8];
  for (std::int64_t i = 0; i < n8; i += 8) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp),
                       quantize_codes8(x + i, vs, vq));
    for (int l = 0; l < 8; ++l)
      out[i + l] = static_cast<std::int16_t>(tmp[l]);
  }
  for (std::int64_t i = n8; i < n; ++i) {
    const float clipped = std::clamp(x[i], 0.0f, scale);
    out[i] = static_cast<std::int16_t>(std::round(clipped / scale * qmax));
  }
}

void gemm_at_i8_i32acc_avx2(std::int32_t* c, const std::int8_t* a,
                            const std::int8_t* b, std::int64_t m,
                            std::int64_t n, std::int64_t k, std::int64_t lda,
                            std::int64_t ldb, std::int64_t ldc) {
  // 4x16 microtiles: per k-step the 16 int8 B values widen to two i32
  // vectors once, then feed four broadcast multiply-accumulate chains.
  // Integer arithmetic is exact, so blocking cannot change the result.
  const std::int64_t n16 = n & ~std::int64_t{15};
  const std::int64_t m4 = m & ~std::int64_t{3};
  for (std::int64_t j0 = 0; j0 < n16; j0 += 16) {
    for (std::int64_t i0 = 0; i0 < m; i0 += 4) {
      const std::int64_t in = (i0 < m4) ? 4 : m - i0;
      __m256i acc[4][2];
      for (std::int64_t r = 0; r < in; ++r) {
        acc[r][0] = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(c + (i0 + r) * ldc + j0));
        acc[r][1] = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(c + (i0 + r) * ldc + j0 + 8));
      }
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const __m128i bv = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(b + kk * ldb + j0));
        const __m256i b_lo = _mm256_cvtepi8_epi32(bv);
        const __m256i b_hi = _mm256_cvtepi8_epi32(_mm_srli_si128(bv, 8));
        const std::int8_t* arow = a + kk * lda + i0;
        for (std::int64_t r = 0; r < in; ++r) {
          const std::int32_t aki = arow[r];
          if (aki == 0) continue;
          const __m256i va = _mm256_set1_epi32(aki);
          acc[r][0] =
              _mm256_add_epi32(acc[r][0], _mm256_mullo_epi32(va, b_lo));
          acc[r][1] =
              _mm256_add_epi32(acc[r][1], _mm256_mullo_epi32(va, b_hi));
        }
      }
      for (std::int64_t r = 0; r < in; ++r) {
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(c + (i0 + r) * ldc + j0), acc[r][0]);
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(c + (i0 + r) * ldc + j0 + 8),
            acc[r][1]);
      }
    }
  }
  if (n16 < n) {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const std::int8_t* arow = a + kk * lda;
      const std::int8_t* brow = b + kk * ldb;
      for (std::int64_t i = 0; i < m; ++i) {
        const std::int32_t aki = arow[i];
        if (aki == 0) continue;
        std::int32_t* crow = c + i * ldc;
        for (std::int64_t j = n16; j < n; ++j) crow[j] += aki * brow[j];
      }
    }
  }
}

void adc_shift_add_i32_avx2(float* acc, const std::int32_t* dot,
                            const float* baseline, std::int64_t n,
                            float dot_unit, float full_scale, float steps,
                            float shift) {
  const __m256 zero = _mm256_setzero_ps();
  const __m256 vdu = _mm256_set1_ps(dot_unit);
  const __m256 vfs = _mm256_set1_ps(full_scale);
  const __m256 vsteps = _mm256_set1_ps(steps);
  const __m256 vshift = _mm256_set1_ps(shift);
  const std::int64_t n8 = n & ~std::int64_t{7};
  for (std::int64_t i = 0; i < n8; i += 8) {
    const __m256 vd = _mm256_cvtepi32_ps(_mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(dot + i)));
    const __m256 vb = _mm256_loadu_ps(baseline + i);
    // Unfused mul+add to match the scalar reference bit-for-bit.
    const __m256 cur = _mm256_add_ps(vb, _mm256_mul_ps(vdu, vd));
    const __m256 clamped = _mm256_min_ps(_mm256_max_ps(cur, zero), vfs);
    const __m256 r =
        round_nonneg(_mm256_mul_ps(_mm256_div_ps(clamped, vfs), vsteps));
    const __m256 q = _mm256_div_ps(_mm256_mul_ps(r, vfs), vsteps);
    const __m256 d = _mm256_sub_ps(q, vb);
    _mm256_storeu_ps(acc + i, _mm256_add_ps(_mm256_loadu_ps(acc + i),
                                            _mm256_mul_ps(vshift, d)));
  }
  for (std::int64_t i = n8; i < n; ++i) {
    const float cur = baseline[i] + dot_unit * static_cast<float>(dot[i]);
    const float clamped = std::clamp(cur, 0.0f, full_scale);
    const float q = std::round(clamped / full_scale * steps) * full_scale /
                    steps;
    acc[i] += shift * (q - baseline[i]);
  }
}

}  // namespace nvm::simd::detail

#else  // !NVM_SIMD_AVX2_TU — linker stubs, unreachable behind the dispatch.

#include "common/check.h"

namespace nvm::simd::detail {

bool avx2_tu_compiled() { return false; }

namespace {
[[noreturn]] void stub_fail() {
  throw nvm::CheckError(
      "nvm::simd AVX2 kernel called but NVM_ENABLE_AVX2 was off");
}
}  // namespace

float dot_avx2(const float*, const float*, std::int64_t) { stub_fail(); }
void axpy_avx2(float*, const float*, float, std::int64_t) { stub_fail(); }
void madd_avx2(float*, const float*, float, std::int64_t) { stub_fail(); }
void scale_avx2(float*, const float*, float, std::int64_t) { stub_fail(); }
void tanh_block_avx2(float*, std::int64_t) { stub_fail(); }
void gemm_avx2(float*, const float*, const float*, std::int64_t, std::int64_t,
               std::int64_t, std::int64_t, std::int64_t, std::int64_t) {
  stub_fail();
}
void gemm_at_avx2(float*, const float*, const float*, std::int64_t,
                  std::int64_t, std::int64_t, std::int64_t, std::int64_t,
                  std::int64_t) {
  stub_fail();
}
void gemm_bt_avx2(float*, const float*, const float*, std::int64_t,
                  std::int64_t, std::int64_t, std::int64_t, std::int64_t,
                  std::int64_t) {
  stub_fail();
}
void gemm_f64acc_avx2(float*, const float*, const float*, std::int64_t,
                      std::int64_t, std::int64_t, std::int64_t, std::int64_t,
                      std::int64_t) {
  stub_fail();
}
void quantize_affine_avx2(float*, const float*, std::int64_t, float, float) {
  stub_fail();
}
void adc_shift_add_avx2(float*, const float*, const float*, std::int64_t,
                        float, float, float) {
  stub_fail();
}
void quantize_to_i8_avx2(std::int8_t*, const float*, std::int64_t, float,
                         float) {
  stub_fail();
}
void quantize_to_i16_avx2(std::int16_t*, const float*, std::int64_t, float,
                          float) {
  stub_fail();
}
void gemm_at_i8_i32acc_avx2(std::int32_t*, const std::int8_t*,
                            const std::int8_t*, std::int64_t, std::int64_t,
                            std::int64_t, std::int64_t, std::int64_t,
                            std::int64_t) {
  stub_fail();
}
void adc_shift_add_i32_avx2(float*, const std::int32_t*, const float*,
                            std::int64_t, float, float, float, float) {
  stub_fail();
}

}  // namespace nvm::simd::detail

#endif  // NVM_SIMD_AVX2_TU

#include "common/serialize.h"

#include <array>

#include "common/check.h"

namespace nvm {

namespace {

/// Largest plausible element count for a length-prefixed field. Cache
/// payloads are at most a few hundred MB; anything above this is a
/// corrupted length, not data.
constexpr std::uint64_t kMaxSerializedCount = 1ull << 32;

const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed) {
  const auto& table = crc32_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void BinaryWriter::write_u32(std::uint32_t v) {
  os_.write(reinterpret_cast<const char*>(&v), sizeof v);
}
void BinaryWriter::write_u64(std::uint64_t v) {
  os_.write(reinterpret_cast<const char*>(&v), sizeof v);
}
void BinaryWriter::write_i64(std::int64_t v) {
  os_.write(reinterpret_cast<const char*>(&v), sizeof v);
}
void BinaryWriter::write_f32(float v) {
  os_.write(reinterpret_cast<const char*>(&v), sizeof v);
}
void BinaryWriter::write_f64(double v) {
  os_.write(reinterpret_cast<const char*>(&v), sizeof v);
}
void BinaryWriter::write_string(const std::string& s) {
  write_u64(s.size());
  os_.write(s.data(), static_cast<std::streamsize>(s.size()));
}
void BinaryWriter::write_f32_vec(const std::vector<float>& v) {
  write_u64(v.size());
  os_.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(float)));
}
void BinaryWriter::write_i64_vec(const std::vector<std::int64_t>& v) {
  write_u64(v.size());
  os_.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(std::int64_t)));
}

void BinaryReader::read_raw(void* dst, std::size_t n) {
  is_.read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
  NVM_CHECK(static_cast<std::size_t>(is_.gcount()) == n,
            "truncated binary stream");
}

std::uint32_t BinaryReader::read_u32() {
  std::uint32_t v;
  read_raw(&v, sizeof v);
  return v;
}
std::uint64_t BinaryReader::read_u64() {
  std::uint64_t v;
  read_raw(&v, sizeof v);
  return v;
}
std::int64_t BinaryReader::read_i64() {
  std::int64_t v;
  read_raw(&v, sizeof v);
  return v;
}
float BinaryReader::read_f32() {
  float v;
  read_raw(&v, sizeof v);
  return v;
}
double BinaryReader::read_f64() {
  double v;
  read_raw(&v, sizeof v);
  return v;
}
std::string BinaryReader::read_string() {
  const auto n = read_u64();
  NVM_CHECK(n < kMaxSerializedCount, "implausible string length " << n);
  std::string s(n, '\0');
  if (n > 0) read_raw(s.data(), n);
  return s;
}
std::vector<float> BinaryReader::read_f32_vec() {
  const auto n = read_u64();
  NVM_CHECK(n < kMaxSerializedCount, "implausible vector length " << n);
  std::vector<float> v(n);
  if (n > 0) read_raw(v.data(), n * sizeof(float));
  return v;
}
std::vector<std::int64_t> BinaryReader::read_i64_vec() {
  const auto n = read_u64();
  NVM_CHECK(n < kMaxSerializedCount, "implausible vector length " << n);
  std::vector<std::int64_t> v(n);
  if (n > 0) read_raw(v.data(), n * sizeof(std::int64_t));
  return v;
}

}  // namespace nvm

// Internal: per-ISA kernel variants behind nvm::simd's public dispatch.
//
// The _scalar variants live in simd.cpp (baseline compile flags); the
// _avx2 / _avx512 / _neon variants live in simd_avx2.cpp /
// simd_avx512.cpp / simd_neon.cpp — the only TUs built with arch flags,
// and only when the matching NVM_ENABLE_* option is on (otherwise those
// TUs provide throwing stubs that the dispatcher never reaches). Do not
// call these directly outside simd.cpp: the public wrappers own metrics
// and ISA selection.
#pragma once

#include <cstdint>

namespace nvm::simd::detail {

/// True when the corresponding TU was built with real vector kernels.
bool avx2_tu_compiled();
bool avx512_tu_compiled();
bool neon_tu_compiled();

// One full kernel family per ISA suffix; the suffixed declarations are
// stamped out below for scalar, avx2, avx512, and neon.
#define NVM_SIMD_DECLARE_KERNELS(SUF)                                        \
  float dot_##SUF(const float* a, const float* b, std::int64_t n);           \
  void axpy_##SUF(float* y, const float* x, float alpha, std::int64_t n);    \
  void madd_##SUF(float* y, const float* x, float alpha, std::int64_t n);    \
  void scale_##SUF(float* y, const float* x, float alpha, std::int64_t n);   \
  void tanh_block_##SUF(float* x, std::int64_t n);                           \
  void gemm_##SUF(float* c, const float* a, const float* b, std::int64_t m,  \
                  std::int64_t n, std::int64_t k, std::int64_t lda,          \
                  std::int64_t ldb, std::int64_t ldc);                       \
  void gemm_at_##SUF(float* c, const float* a, const float* b,               \
                     std::int64_t m, std::int64_t n, std::int64_t k,         \
                     std::int64_t lda, std::int64_t ldb, std::int64_t ldc);  \
  void gemm_bt_##SUF(float* c, const float* a, const float* b,               \
                     std::int64_t m, std::int64_t n, std::int64_t k,         \
                     std::int64_t lda, std::int64_t ldb, std::int64_t ldc);  \
  void gemm_f64acc_##SUF(float* out, const float* a, const float* v,         \
                         std::int64_t m, std::int64_t n, std::int64_t k,     \
                         std::int64_t lda, std::int64_t ldv,                 \
                         std::int64_t ldo);                                  \
  void quantize_affine_##SUF(float* out, const float* x, std::int64_t n,     \
                             float scale, float qmax);                       \
  void adc_shift_add_##SUF(float* acc, const float* cur,                     \
                           const float* baseline, std::int64_t n,            \
                           float full_scale, float steps, float shift);      \
  void quantize_to_i8_##SUF(std::int8_t* out, const float* x,                \
                            std::int64_t n, float scale, float qmax);        \
  void quantize_to_i16_##SUF(std::int16_t* out, const float* x,              \
                             std::int64_t n, float scale, float qmax);       \
  void gemm_at_i8_i32acc_##SUF(std::int32_t* c, const std::int8_t* a,        \
                               const std::int8_t* b, std::int64_t m,         \
                               std::int64_t n, std::int64_t k,               \
                               std::int64_t lda, std::int64_t ldb,           \
                               std::int64_t ldc);                            \
  void adc_shift_add_i32_##SUF(float* acc, const std::int32_t* dot,          \
                               const float* baseline, std::int64_t n,        \
                               float dot_unit, float full_scale,             \
                               float steps, float shift)

NVM_SIMD_DECLARE_KERNELS(scalar);
NVM_SIMD_DECLARE_KERNELS(avx2);
NVM_SIMD_DECLARE_KERNELS(avx512);
NVM_SIMD_DECLARE_KERNELS(neon);

#undef NVM_SIMD_DECLARE_KERNELS

}  // namespace nvm::simd::detail

// Internal: per-ISA kernel variants behind nvm::simd's public dispatch.
//
// The _scalar variants live in simd.cpp (baseline compile flags); the
// _avx2 variants live in simd_avx2.cpp, the only TU built with
// -mavx2 -mfma (and only when NVM_ENABLE_AVX2 is on — otherwise that TU
// provides throwing stubs that the dispatcher never reaches). Do not call
// these directly outside simd.cpp: the public wrappers own metrics and
// ISA selection.
#pragma once

#include <cstdint>

namespace nvm::simd::detail {

/// True when simd_avx2.cpp was built with real AVX2 kernels.
bool avx2_tu_compiled();

float dot_scalar(const float* a, const float* b, std::int64_t n);
float dot_avx2(const float* a, const float* b, std::int64_t n);

void axpy_scalar(float* y, const float* x, float alpha, std::int64_t n);
void axpy_avx2(float* y, const float* x, float alpha, std::int64_t n);

void madd_scalar(float* y, const float* x, float alpha, std::int64_t n);
void madd_avx2(float* y, const float* x, float alpha, std::int64_t n);

void scale_scalar(float* y, const float* x, float alpha, std::int64_t n);
void scale_avx2(float* y, const float* x, float alpha, std::int64_t n);

void tanh_block_scalar(float* x, std::int64_t n);
void tanh_block_avx2(float* x, std::int64_t n);

void gemm_scalar(float* c, const float* a, const float* b, std::int64_t m,
                 std::int64_t n, std::int64_t k, std::int64_t lda,
                 std::int64_t ldb, std::int64_t ldc);
void gemm_avx2(float* c, const float* a, const float* b, std::int64_t m,
               std::int64_t n, std::int64_t k, std::int64_t lda,
               std::int64_t ldb, std::int64_t ldc);

void gemm_at_scalar(float* c, const float* a, const float* b, std::int64_t m,
                    std::int64_t n, std::int64_t k, std::int64_t lda,
                    std::int64_t ldb, std::int64_t ldc);
void gemm_at_avx2(float* c, const float* a, const float* b, std::int64_t m,
                  std::int64_t n, std::int64_t k, std::int64_t lda,
                  std::int64_t ldb, std::int64_t ldc);

void gemm_bt_scalar(float* c, const float* a, const float* b, std::int64_t m,
                    std::int64_t n, std::int64_t k, std::int64_t lda,
                    std::int64_t ldb, std::int64_t ldc);
void gemm_bt_avx2(float* c, const float* a, const float* b, std::int64_t m,
                  std::int64_t n, std::int64_t k, std::int64_t lda,
                  std::int64_t ldb, std::int64_t ldc);

void gemm_f64acc_scalar(float* out, const float* a, const float* v,
                        std::int64_t m, std::int64_t n, std::int64_t k,
                        std::int64_t lda, std::int64_t ldv, std::int64_t ldo);
void gemm_f64acc_avx2(float* out, const float* a, const float* v,
                      std::int64_t m, std::int64_t n, std::int64_t k,
                      std::int64_t lda, std::int64_t ldv, std::int64_t ldo);

void quantize_affine_scalar(float* out, const float* x, std::int64_t n,
                            float scale, float qmax);
void quantize_affine_avx2(float* out, const float* x, std::int64_t n,
                          float scale, float qmax);

void adc_shift_add_scalar(float* acc, const float* cur, const float* baseline,
                          std::int64_t n, float full_scale, float steps,
                          float shift);
void adc_shift_add_avx2(float* acc, const float* cur, const float* baseline,
                        std::int64_t n, float full_scale, float steps,
                        float shift);

}  // namespace nvm::simd::detail

// On-disk cache for expensive artifacts (trained networks, GENIEx surrogate
// weights). Entries live under a cache directory (default ./repro_cache,
// overridable via the NVMROBUST_CACHE_DIR env var) and are keyed by a
// caller-chosen name plus a content tag; a tag mismatch invalidates the
// entry so stale caches never poison an experiment.
//
// Every payload carries a CRC32 content checksum. An entry that is
// truncated, bit-flipped, or otherwise unparseable is never handed to the
// caller: it is quarantined on disk as <name>.corrupt, counted under
// HealthCounter::CacheCorrupt, and reported as a miss so the artifact is
// recomputed — corruption costs one recompute, never a wrong experiment.
//
// A key that keeps failing (bad disk, a writer that keeps losing the
// store) would otherwise pay that recompute on EVERY lookup. cache_load
// therefore keeps an in-memory quarantine memo: once a key corrupts, the
// next cache_store of that key is memoized, subsequent lookups are served
// from the memo (counted under cache/file/memo_hits), and disk re-probes
// back off exponentially (bounded). The memo is keyed by tag too, so a
// legitimate tag change still recomputes. One warning per key, not per
// lookup.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "common/serialize.h"

namespace nvm {

/// Resolves the cache directory, creating it if needed.
std::string cache_dir();

/// Crash-safe file publish: writes `parts` (concatenated) to `path` via
/// the write-tmp -> fsync -> rename pattern, so a reader never observes a
/// truncated file and a crash mid-write never clobbers a good one. Every
/// failure path removes the .tmp and logs one warning. Returns true once
/// the rename has landed. Shared by the artifact cache, run manifests,
/// and the trace-event exporter.
bool atomic_write_file(const std::string& path,
                       std::span<const std::string_view> parts);
inline bool atomic_write_file(const std::string& path, std::string_view data) {
  const std::string_view parts[] = {data};
  return atomic_write_file(path, parts);
}

/// Loads cache entry `name` if present and its stored tag equals `tag`.
/// `load` reads the payload; returns false if the entry is missing/stale.
bool cache_load(const std::string& name, const std::string& tag,
                const std::function<void(BinaryReader&)>& load);

/// Stores cache entry `name` with `tag`; `save` writes the payload.
void cache_store(const std::string& name, const std::string& tag,
                 const std::function<void(BinaryWriter&)>& save);

/// Testing hook: drops the in-memory quarantine memo so corruption
/// scenarios can be replayed from a clean slate.
void reset_file_cache_memo_for_tests();

/// Convenience: load-or-compute. `compute` runs only on cache miss and its
/// result is persisted via `save`.
template <typename T>
T cache_get_or_compute(const std::string& name, const std::string& tag,
                       const std::function<T(BinaryReader&)>& load,
                       const std::function<T()>& compute,
                       const std::function<void(BinaryWriter&, const T&)>& save) {
  std::optional<T> out;
  cache_load(name, tag, [&](BinaryReader& r) { out = load(r); });
  if (out.has_value()) return std::move(*out);
  T value = compute();
  cache_store(name, tag, [&](BinaryWriter& w) { save(w, value); });
  return value;
}

}  // namespace nvm

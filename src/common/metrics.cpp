#include "common/metrics.h"

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <mutex>

#include "common/check.h"

namespace nvm::metrics {

namespace {

struct Entry {
  Kind kind;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Entry> entries;
};

// Leaked on purpose: metrics may be bumped by pool workers draining after
// main() returns, so the registry must outlive every static destructor.
Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

void check_name(const std::string& name) {
  NVM_CHECK(!name.empty(), "metric name must not be empty");
  for (char c : name)
    NVM_CHECK((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '/' ||
                  c == '_' || c == '.',
              "metric name '" << name
                              << "' must be lowercase layer/component/name");
}

Entry& find_or_create(const std::string& name, Kind kind,
                      std::vector<double> bounds) {
  check_name(name);
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.entries.find(name);
  if (it == reg.entries.end()) {
    Entry e;
    e.kind = kind;
    switch (kind) {
      case Kind::Counter: e.counter = std::make_unique<Counter>(); break;
      case Kind::Gauge: e.gauge = std::make_unique<Gauge>(); break;
      case Kind::Histogram:
        e.histogram = std::make_unique<Histogram>(std::move(bounds));
        break;
    }
    it = reg.entries.emplace(name, std::move(e)).first;
  }
  NVM_CHECK(it->second.kind == kind,
            "metric '" << name << "' already registered as a different kind");
  if (kind == Kind::Histogram && !bounds.empty())
    NVM_CHECK(it->second.histogram->bounds() == bounds,
              "histogram '" << name << "' re-registered with other bounds");
  return it->second;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(bounds_.size() + 1) {
  NVM_CHECK(!bounds_.empty(), "histogram needs at least one bucket bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    NVM_CHECK(bounds_[i - 1] < bounds_[i],
              "histogram bounds must be strictly increasing");
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> duration_ns_bounds() {
  return {1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10};
}

Counter& counter(const std::string& name) {
  return *find_or_create(name, Kind::Counter, {}).counter;
}

Gauge& gauge(const std::string& name) {
  return *find_or_create(name, Kind::Gauge, {}).gauge;
}

Histogram& histogram(const std::string& name, std::vector<double> bounds) {
  if (bounds.empty()) bounds = duration_ns_bounds();
  return *find_or_create(name, Kind::Histogram, std::move(bounds)).histogram;
}

std::string sanitize_name_component(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    const bool legal = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                       c == '_' || c == '.';
    out.push_back(legal ? c : '_');
  }
  if (out.empty()) out = "_";
  return out;
}

struct Scope::Cache {
  std::mutex mu;
  std::map<std::string, Counter*> counters;
  std::map<std::string, Gauge*> gauges;
  std::map<std::string, Histogram*> histograms;
};

Scope::Scope(std::string prefix)
    : prefix_(std::move(prefix)), cache_(std::make_shared<Cache>()) {
  check_name(prefix_);
}

std::string Scope::full_name(const std::string& leaf) const {
  return prefix_ + "/" + leaf;
}

Counter& Scope::counter(const std::string& leaf) {
  std::lock_guard<std::mutex> lock(cache_->mu);
  Counter*& c = cache_->counters[leaf];
  if (c == nullptr) c = &metrics::counter(full_name(leaf));
  return *c;
}

Gauge& Scope::gauge(const std::string& leaf) {
  std::lock_guard<std::mutex> lock(cache_->mu);
  Gauge*& g = cache_->gauges[leaf];
  if (g == nullptr) g = &metrics::gauge(full_name(leaf));
  return *g;
}

Histogram& Scope::histogram(const std::string& leaf,
                            std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(cache_->mu);
  Histogram*& h = cache_->histograms[leaf];
  if (h == nullptr) h = &metrics::histogram(full_name(leaf), std::move(bounds));
  return *h;
}

double quantile(const MetricValue& m, double q) {
  // An empty histogram (or a non-histogram) has no quantiles: NaN, not a
  // fabricated 0, so consumers can tell "no observations" from "all
  // observations were instant" (JSON export turns NaN into null).
  if (m.kind != Kind::Histogram || m.count == 0 || m.bounds.empty())
    return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(m.count);
  double cum = 0.0;
  for (std::size_t i = 0; i < m.buckets.size(); ++i) {
    const double c = static_cast<double>(m.buckets[i]);
    if (c > 0.0 && cum + c >= rank) {
      if (i == m.bounds.size()) return m.bounds.back();  // overflow bucket
      const double lo = (i == 0) ? 0.0 : m.bounds[i - 1];
      return lo + (m.bounds[i] - lo) * ((rank - cum) / c);
    }
    cum += c;
  }
  return m.bounds.back();
}

std::vector<MetricValue> snapshot() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<MetricValue> out;
  out.reserve(reg.entries.size());
  for (const auto& [name, e] : reg.entries) {
    MetricValue v;
    v.name = name;
    v.kind = e.kind;
    switch (e.kind) {
      case Kind::Counter:
        v.value = static_cast<double>(e.counter->value());
        break;
      case Kind::Gauge:
        v.value = e.gauge->value();
        break;
      case Kind::Histogram:
        v.count = e.histogram->count();
        v.sum = e.histogram->sum();
        v.bounds = e.histogram->bounds();
        v.buckets = e.histogram->bucket_counts();
        break;
    }
    out.push_back(std::move(v));
  }
  return out;  // std::map iteration is already name-sorted
}

std::vector<MetricValue> delta(const std::vector<MetricValue>& now,
                               const std::vector<MetricValue>& base) {
  std::map<std::string, const MetricValue*> by_name;
  for (const MetricValue& b : base) by_name[b.name] = &b;
  std::vector<MetricValue> out;
  out.reserve(now.size());
  for (const MetricValue& n : now) {
    MetricValue d = n;
    auto it = by_name.find(n.name);
    if (it != by_name.end() && it->second->kind == n.kind) {
      const MetricValue& b = *it->second;
      switch (n.kind) {
        case Kind::Counter:
          d.value = n.value - b.value;
          break;
        case Kind::Gauge:
          break;  // last-write-wins: report the current value
        case Kind::Histogram:
          d.count = n.count - b.count;
          d.sum = n.sum - b.sum;
          if (b.buckets.size() == n.buckets.size())
            for (std::size_t i = 0; i < d.buckets.size(); ++i)
              d.buckets[i] = n.buckets[i] - b.buckets[i];
          break;
      }
    }
    out.push_back(std::move(d));
  }
  return out;
}

void reset_all_for_tests() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (auto& [name, e] : reg.entries) {
    switch (e.kind) {
      case Kind::Counter: e.counter->reset(); break;
      case Kind::Gauge: e.gauge->reset(); break;
      case Kind::Histogram: e.histogram->reset(); break;
    }
  }
}

}  // namespace nvm::metrics

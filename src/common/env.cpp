#include "common/env.h"

#include <cstdlib>

namespace nvm {

bool full_scale() {
  const char* env = std::getenv("REPRO_FULL");
  return env != nullptr && env[0] == '1';
}

std::int64_t scaled(std::int64_t quick, std::int64_t full) {
  return full_scale() ? full : quick;
}

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  const char* env = std::getenv(name.c_str());
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(env, &end, 10);
  if (end == env) return fallback;
  return static_cast<std::int64_t>(v);
}

std::string env_str(const std::string& name, const std::string& fallback) {
  const char* env = std::getenv(name.c_str());
  if (env == nullptr || *env == '\0') return fallback;
  return env;
}

}  // namespace nvm

#include "common/env.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "common/logging.h"

namespace nvm {

bool full_scale() {
  const char* env = std::getenv("REPRO_FULL");
  return env != nullptr && env[0] == '1';
}

std::int64_t scaled(std::int64_t quick, std::int64_t full) {
  return full_scale() ? full : quick;
}

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  const char* env = std::getenv(name.c_str());
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(env, &end, 10);
  // Reject, rather than half-accept: ERANGE (strtoll silently clamps to
  // LLONG_MIN/MAX) and trailing non-whitespace ("8abc" is a typo, not 8).
  bool malformed = end == env || errno == ERANGE;
  if (!malformed) {
    while (std::isspace(static_cast<unsigned char>(*end))) ++end;
    malformed = *end != '\0';
  }
  if (malformed) {
    NVM_LOG(Warn) << name << "='" << env
                  << "' is not a valid integer; using default " << fallback;
    return fallback;
  }
  return static_cast<std::int64_t>(v);
}

bool parse_double(const char* text, double* out) {
  if (text == nullptr || *text == '\0') return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(text, &end);
  // Same reject-don't-half-accept policy as env_int: ERANGE (overflow to
  // +-HUGE_VAL or underflow toward 0) and trailing non-whitespace ("0.1x")
  // are malformed, not approximately right.
  if (end == text || errno == ERANGE) return false;
  while (std::isspace(static_cast<unsigned char>(*end))) ++end;
  if (*end != '\0') return false;
  *out = v;
  return true;
}

double env_double(const std::string& name, double fallback) {
  const char* env = std::getenv(name.c_str());
  if (env == nullptr || *env == '\0') return fallback;
  double v = 0.0;
  if (!parse_double(env, &v)) {
    NVM_LOG(Warn) << name << "='" << env
                  << "' is not a valid number; using default " << fallback;
    return fallback;
  }
  return v;
}

std::string env_str(const std::string& name, const std::string& fallback) {
  const char* env = std::getenv(name.c_str());
  if (env == nullptr || *env == '\0') return fallback;
  return env;
}

}  // namespace nvm

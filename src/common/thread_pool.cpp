#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>

#include "common/check.h"
#include "common/env.h"
#include "common/metrics.h"

namespace nvm {

namespace {

thread_local int t_parallel_depth = 0;
thread_local ThreadPool* t_override_pool = nullptr;

/// Chunks executed through parallel_chunks (inline, submitter, or worker).
metrics::Counter& pool_chunks_run() {
  static metrics::Counter& c = metrics::counter("pool/chunks_run");
  return c;
}

/// Enqueue -> start latency of queued chunks (ns); the submitter's own
/// chunk and inline/serial execution never wait and are not observed.
metrics::Histogram& pool_queue_wait() {
  static metrics::Histogram& h = metrics::histogram("pool/queue_wait_ns");
  return h;
}

/// Marks the current thread as executing inside a parallel region for the
/// guard's lifetime, so nested parallel calls degrade to inline loops.
struct RegionGuard {
  RegionGuard() { ++t_parallel_depth; }
  ~RegionGuard() { --t_parallel_depth; }
};

std::size_t default_size() {
  const std::int64_t hw =
      std::max(1u, std::thread::hardware_concurrency());
  const std::int64_t n = env_int("NVM_THREADS", hw);
  return static_cast<std::size_t>(std::max<std::int64_t>(1, n));
}

/// Shared fork-join state for one parallel_chunks call. Lives on the
/// submitter's stack; the submitter blocks until `remaining` drains, so
/// worker references into it never dangle.
struct JoinContext {
  explicit JoinContext(std::int64_t chunks) : remaining(chunks) {}

  std::atomic<std::int64_t> remaining;
  std::mutex mu;
  std::condition_variable done;
  std::exception_ptr error;  // first exception wins; guarded by mu

  void run(const ThreadPool::ChunkFn& fn, std::int64_t chunk,
           std::int64_t begin, std::int64_t end) {
    {
      RegionGuard guard;
      try {
        fn(chunk, begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!error) error = std::current_exception();
      }
    }
    if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mu);
      done.notify_all();
    }
  }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t threads)
    : size_(threads == 0 ? default_size() : threads) {
  // The submitter executes one chunk itself, so size_ - 1 workers suffice
  // for size_ concurrent chunks; size 1 is fully inline and thread-free.
  workers_.reserve(size_ - 1);
  for (std::size_t i = 0; i + 1 < size_; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_chunks(std::int64_t n, std::int64_t max_chunks,
                                 const ChunkFn& fn) {
  if (n <= 0) return;
  NVM_CHECK_GT(max_chunks, 0);
  const std::int64_t chunks = std::min(max_chunks, n);
  const auto chunk_begin = [n, chunks](std::int64_t c) {
    // floor(c * n / chunks), widened so the product can't overflow int64
    // for huge n (c <= chunks <= n <= 2^63-1). Boundaries are unchanged
    // for every input the narrow formula handled.
    return static_cast<std::int64_t>(static_cast<__int128>(c) * n / chunks);
  };

  if (chunks == 1 || size_ == 1 || in_parallel_region()) {
    // Serial path — same decomposition, same order, zero threading.
    for (std::int64_t c = 0; c < chunks; ++c)
      fn(c, chunk_begin(c), chunk_begin(c + 1));
    pool_chunks_run().add(static_cast<std::uint64_t>(chunks));
    return;
  }

  JoinContext ctx(chunks);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::int64_t c = 1; c < chunks; ++c)
      queue_.emplace_back([&ctx, &fn, c, b = chunk_begin(c),
                           e = chunk_begin(c + 1),
                           queued = std::chrono::steady_clock::now()] {
        pool_queue_wait().observe(static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - queued)
                .count()));
        ctx.run(fn, c, b, e);
      });
  }
  cv_.notify_all();
  pool_chunks_run().add(static_cast<std::uint64_t>(chunks));

  // The submitter is one of the size_ execution contexts: run chunk 0 here.
  ctx.run(fn, 0, chunk_begin(0), chunk_begin(1));

  std::unique_lock<std::mutex> lock(ctx.mu);
  ctx.done.wait(lock, [&ctx] {
    return ctx.remaining.load(std::memory_order_acquire) == 0;
  });
  if (ctx.error) std::rethrow_exception(ctx.error);
}

void ThreadPool::parallel_for(std::int64_t n,
                              const std::function<void(std::int64_t)>& fn) {
  parallel_chunks(n, static_cast<std::int64_t>(size_),
                  [&fn](std::int64_t, std::int64_t begin, std::int64_t end) {
                    for (std::int64_t i = begin; i < end; ++i) fn(i);
                  });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(default_size());
  return pool;
}

ThreadPool& ThreadPool::current() {
  return t_override_pool != nullptr ? *t_override_pool : global();
}

bool ThreadPool::in_parallel_region() { return t_parallel_depth > 0; }

ThreadPool::ScopedUse::ScopedUse(ThreadPool& pool) : prev_(t_override_pool) {
  t_override_pool = &pool;
}

ThreadPool::ScopedUse::~ScopedUse() { t_override_pool = prev_; }

void parallel_for(std::int64_t n, const std::function<void(std::int64_t)>& fn) {
  ThreadPool::current().parallel_for(n, fn);
}

void parallel_chunks(std::int64_t n, std::int64_t max_chunks,
                     const ThreadPool::ChunkFn& fn) {
  ThreadPool::current().parallel_chunks(n, max_chunks, fn);
}

}  // namespace nvm

// Process-wide health counters for the failure-handling layer.
//
// The analog stack is allowed to degrade but never to lie silently: a
// circuit solve that fails to converge, a NaN scrubbed from a crossbar
// output, a surrogate prediction replaced by its fallback model, or a
// corrupted cache entry each increments a counter here (and emits a
// throttled warning). Experiments snapshot the counters around a run and
// report the deltas next to accuracy numbers, so "the result came back"
// and "the result is trustworthy" stay distinguishable.
//
// Each health counter IS a metrics::Counter registered under a canonical
// name (see health_metric_name), so health_snapshot() and the run-manifest
// exporter report from one source of truth: bump() is the single increment
// path, and both views read the same relaxed atomic.
#pragma once

#include <cstdint>
#include <string>

namespace nvm {

enum class HealthCounter : int {
  SolverNonConverged = 0,  ///< nodal solve hit max_sweeps or diverged
  NonFiniteOutput = 1,     ///< NaN/Inf scrubbed from a crossbar output
  SurrogateFallback = 2,   ///< GENIEx prediction replaced by fallback model
  CacheCorrupt = 3,        ///< cache entry failed its checksum / truncated
};
inline constexpr int kHealthCounterCount = 4;

/// Canonical metric name backing counter `c` (e.g. "solver/nonconverged").
const char* health_metric_name(HealthCounter c);

/// Increments `c` by `n`; returns the post-increment value.
std::uint64_t bump(HealthCounter c, std::uint64_t n = 1);

/// Current value of one counter.
std::uint64_t health_value(HealthCounter c);

/// Point-in-time copy of every counter.
struct HealthSnapshot {
  std::uint64_t solver_nonconverged = 0;
  std::uint64_t nonfinite_outputs = 0;
  std::uint64_t surrogate_fallbacks = 0;
  std::uint64_t cache_corrupt = 0;

  /// Per-field difference (this - since); fields are monotonic.
  HealthSnapshot delta_since(const HealthSnapshot& since) const;
  bool all_zero() const;
  /// "solver_nc=2 nonfinite=0 fallback=5 cache=0" for report lines.
  std::string summary() const;
};

HealthSnapshot health_snapshot();

/// Resets every counter to zero (tests only; experiments should use
/// snapshot deltas so concurrent runs don't clobber each other).
void reset_health_counters();

/// Event-log throttle: warn on the first few occurrences of a failure
/// class, then once per 1024 so a pathological run cannot flood stderr.
/// `n` is the post-increment counter value from bump().
inline bool health_should_log(std::uint64_t n) {
  return n <= 5 || (n & 1023) == 0;
}

}  // namespace nvm

// Streaming telemetry: time-series sampling of the metrics registry.
//
// The run manifest (core/report.h) captures *end-of-run* deltas; this
// layer captures the trajectory in between. A call site registers the
// metrics it wants sampled (telemetry::track), and a driving loop pulses
// telemetry::sample_all(tick) at its natural cadence — the fleet
// simulator per epoch, the serve scheduler per micro-batch, bench
// harnesses per iteration block. Each pulse appends (tick, value) to a
// fixed-capacity ring buffer per tracked metric (drop-oldest, with a
// dropped count), and RunManifest::write() merges the rings into the
// manifest under "telemetry".
//
// Determinism: there is no wall clock anywhere in this layer — the tick
// is whatever the driving loop passes (epoch number, batch count,
// iteration index), so sampled series from a deterministic run are
// themselves deterministic. Ticks are source-local labels: they are
// stored verbatim and need not be globally monotone when several loops
// pulse the same process.
//
// Cost: sample_all takes one metrics::snapshot() (a mutex + O(metrics)
// copy) per pulse and nothing per metric mutation, so the hot paths that
// *feed* the metrics are untouched; pulses are meant to be per-epoch /
// per-batch, not per-sample. With no tracked series a pulse is one
// relaxed atomic load. NVM_TELEMETRY_CAP sets the per-series ring
// capacity (default 512; 0 disables sampling entirely), and the
// NVM_TELEMETRY env var ("name1,name2,...") tracks extra metrics without
// touching code.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nvm::telemetry {

/// One sampled series: parallel (ticks, values) in capture order, oldest
/// first, plus how many older samples the ring dropped to stay bounded.
struct Series {
  std::string metric;   ///< registry name ("fleet/chips_alive", ...)
  std::vector<std::uint64_t> ticks;
  std::vector<double> values;  ///< counter total / gauge value / histogram count
  std::uint64_t dropped = 0;
};

/// Per-series ring capacity (NVM_TELEMETRY_CAP, default 512). 0 disables
/// sampling: track() and sample_all() become no-ops.
std::size_t capacity();

/// Registers `metric_name` for sampling (idempotent). The metric does not
/// need to exist yet: pulses before its registration record nothing.
void track(const std::string& metric_name);

/// Appends one sample to every tracked series, labelled `tick`. Thread-
/// safe; concurrent pulses serialize on the sampler mutex.
void sample_all(std::uint64_t tick);

/// Copies every tracked series (oldest sample first), sorted by metric
/// name. Series that never matched a registered metric export empty.
std::vector<Series> snapshot();

/// Tests only: overrides capacity (0 restores the env/default value).
void set_capacity_for_tests(std::size_t cap);
/// Tests only: drops every tracked series and its samples.
void reset_for_tests();

}  // namespace nvm::telemetry

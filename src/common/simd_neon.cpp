// NEON (AArch64 Advanced SIMD) kernel variants. Built with real kernels
// only when NVM_ENABLE_NEON is on AND the target is AArch64; everywhere
// else this TU provides throwing stubs the dispatcher never reaches.
//
// Parity rules mirrored from simd.h: [exact] kernels repeat the scalar
// reference's unfused per-element op sequence 4 lanes at a time (NEON
// float ops are IEEE-754 compliant on AArch64); [~ulp] kernels use vfmaq
// in the vector body; dot uses two float32x4 accumulators so its lane
// layout matches the documented 8-strided-lane tree exactly. vrndaq_f32
// rounds half away from zero, which is std::round's semantics, so the
// quantize/ADC kernels need no floor+frac trick here. gemm_f64acc uses
// vfmaq_f64 on exact float*float products — bit-identical to the scalar
// reference (24+24 significand bits fit in 53).
#include "common/simd_kernels.h"

#if defined(NVM_SIMD_NEON_TU) && defined(__aarch64__)

#include <arm_neon.h>

#include <algorithm>
#include <cmath>

#include "common/simd.h"

namespace nvm::simd::detail {

bool neon_tu_compiled() { return true; }

namespace {

/// Reduction of the 8 strided lanes in the documented fixed tree.
inline float reduce_lanes(const float lanes[8]) {
  return ((lanes[0] + lanes[4]) + (lanes[2] + lanes[6])) +
         ((lanes[1] + lanes[5]) + (lanes[3] + lanes[7]));
}

}  // namespace

float dot_neon(const float* a, const float* b, std::int64_t n) {
  // acc0 holds lanes 0..3, acc1 lanes 4..7 of the 8-lane tree.
  const std::int64_t n8 = n & ~std::int64_t{7};
  float32x4_t acc0 = vdupq_n_f32(0.0f);
  float32x4_t acc1 = vdupq_n_f32(0.0f);
  for (std::int64_t i = 0; i < n8; i += 8) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
    acc1 = vfmaq_f32(acc1, vld1q_f32(a + i + 4), vld1q_f32(b + i + 4));
  }
  float lanes[8];
  vst1q_f32(lanes, acc0);
  vst1q_f32(lanes + 4, acc1);
  for (std::int64_t i = n8; i < n; ++i) lanes[i & 7] += a[i] * b[i];
  return reduce_lanes(lanes);
}

void axpy_neon(float* y, const float* x, float alpha, std::int64_t n) {
  const float32x4_t va = vdupq_n_f32(alpha);
  const std::int64_t n4 = n & ~std::int64_t{3};
  for (std::int64_t i = 0; i < n4; i += 4)
    vst1q_f32(y + i, vfmaq_f32(vld1q_f32(y + i), va, vld1q_f32(x + i)));
  for (std::int64_t i = n4; i < n; ++i) y[i] += alpha * x[i];
}

void madd_neon(float* y, const float* x, float alpha, std::int64_t n) {
  const float32x4_t va = vdupq_n_f32(alpha);
  const std::int64_t n4 = n & ~std::int64_t{3};
  for (std::int64_t i = 0; i < n4; i += 4) {
    const float32x4_t t = vmulq_f32(va, vld1q_f32(x + i));
    vst1q_f32(y + i, vaddq_f32(vld1q_f32(y + i), t));
  }
  for (std::int64_t i = n4; i < n; ++i) {
    const float t = alpha * x[i];
    y[i] = y[i] + t;
  }
}

void scale_neon(float* y, const float* x, float alpha, std::int64_t n) {
  const float32x4_t va = vdupq_n_f32(alpha);
  const std::int64_t n4 = n & ~std::int64_t{3};
  for (std::int64_t i = 0; i < n4; i += 4)
    vst1q_f32(y + i, vmulq_f32(va, vld1q_f32(x + i)));
  for (std::int64_t i = n4; i < n; ++i) y[i] = alpha * x[i];
}

void tanh_block_neon(float* x, std::int64_t n) {
  // Same polynomial op sequence as tanh_fast; saturation applied by bsl.
  const float32x4_t hi = vdupq_n_f32(4.97f);
  const float32x4_t lo = vdupq_n_f32(-4.97f);
  const float32x4_t one = vdupq_n_f32(1.0f);
  const float32x4_t neg_one = vdupq_n_f32(-1.0f);
  const float32x4_t c0 = vdupq_n_f32(135135.0f);
  const float32x4_t c1 = vdupq_n_f32(17325.0f);
  const float32x4_t c2 = vdupq_n_f32(378.0f);
  const float32x4_t d1 = vdupq_n_f32(62370.0f);
  const float32x4_t d2 = vdupq_n_f32(3150.0f);
  const float32x4_t d3 = vdupq_n_f32(28.0f);
  const std::int64_t n4 = n & ~std::int64_t{3};
  for (std::int64_t i = 0; i < n4; i += 4) {
    const float32x4_t v = vld1q_f32(x + i);
    const float32x4_t x2 = vmulq_f32(v, v);
    float32x4_t p = vaddq_f32(c2, x2);
    p = vaddq_f32(c1, vmulq_f32(x2, p));
    p = vaddq_f32(c0, vmulq_f32(x2, p));
    p = vmulq_f32(v, p);
    float32x4_t q = vaddq_f32(d2, vmulq_f32(x2, d3));
    q = vaddq_f32(d1, vmulq_f32(x2, q));
    q = vaddq_f32(c0, vmulq_f32(x2, q));
    float32x4_t r = vdivq_f32(p, q);
    r = vbslq_f32(vcgtq_f32(v, hi), one, r);
    r = vbslq_f32(vcltq_f32(v, lo), neg_one, r);
    vst1q_f32(x + i, r);
  }
  for (std::int64_t i = n4; i < n; ++i) x[i] = tanh_fast(x[i]);
}

namespace {

/// One output row of C += A*B style accumulation: crow[j] accumulates
/// coef(kk) * b[kk*ldb + j] sequentially over kk, FMA in the vector body.
template <typename Coef>
inline void gemm_row_fma(float* crow, const float* b, std::int64_t n,
                         std::int64_t k, std::int64_t ldb, Coef coef) {
  const std::int64_t n4 = n & ~std::int64_t{3};
  for (std::int64_t j0 = 0; j0 < n4; j0 += 4) {
    float32x4_t acc = vld1q_f32(crow + j0);
    for (std::int64_t kk = 0; kk < k; ++kk)
      acc = vfmaq_f32(acc, vdupq_n_f32(coef(kk)),
                      vld1q_f32(b + kk * ldb + j0));
    vst1q_f32(crow + j0, acc);
  }
  for (std::int64_t j = n4; j < n; ++j) {
    float acc = crow[j];
    for (std::int64_t kk = 0; kk < k; ++kk) acc += coef(kk) * b[kk * ldb + j];
    crow[j] = acc;
  }
}

/// 4x8 microtile: four rows, two vectors per row, independent FMA chains.
template <typename Coef>
inline void gemm_tile4_fma(float* c, const float* b, std::int64_t n,
                           std::int64_t k, std::int64_t ldb, std::int64_t ldc,
                           Coef coef) {
  const std::int64_t n8 = n & ~std::int64_t{7};
  for (std::int64_t j0 = 0; j0 < n8; j0 += 8) {
    float32x4_t a00 = vld1q_f32(c + 0 * ldc + j0);
    float32x4_t a01 = vld1q_f32(c + 0 * ldc + j0 + 4);
    float32x4_t a10 = vld1q_f32(c + 1 * ldc + j0);
    float32x4_t a11 = vld1q_f32(c + 1 * ldc + j0 + 4);
    float32x4_t a20 = vld1q_f32(c + 2 * ldc + j0);
    float32x4_t a21 = vld1q_f32(c + 2 * ldc + j0 + 4);
    float32x4_t a30 = vld1q_f32(c + 3 * ldc + j0);
    float32x4_t a31 = vld1q_f32(c + 3 * ldc + j0 + 4);
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float32x4_t b0 = vld1q_f32(b + kk * ldb + j0);
      const float32x4_t b1 = vld1q_f32(b + kk * ldb + j0 + 4);
      const float32x4_t w0 = vdupq_n_f32(coef(0, kk));
      const float32x4_t w1 = vdupq_n_f32(coef(1, kk));
      const float32x4_t w2 = vdupq_n_f32(coef(2, kk));
      const float32x4_t w3 = vdupq_n_f32(coef(3, kk));
      a00 = vfmaq_f32(a00, w0, b0);
      a01 = vfmaq_f32(a01, w0, b1);
      a10 = vfmaq_f32(a10, w1, b0);
      a11 = vfmaq_f32(a11, w1, b1);
      a20 = vfmaq_f32(a20, w2, b0);
      a21 = vfmaq_f32(a21, w2, b1);
      a30 = vfmaq_f32(a30, w3, b0);
      a31 = vfmaq_f32(a31, w3, b1);
    }
    vst1q_f32(c + 0 * ldc + j0, a00);
    vst1q_f32(c + 0 * ldc + j0 + 4, a01);
    vst1q_f32(c + 1 * ldc + j0, a10);
    vst1q_f32(c + 1 * ldc + j0 + 4, a11);
    vst1q_f32(c + 2 * ldc + j0, a20);
    vst1q_f32(c + 2 * ldc + j0 + 4, a21);
    vst1q_f32(c + 3 * ldc + j0, a30);
    vst1q_f32(c + 3 * ldc + j0 + 4, a31);
  }
  for (std::int64_t j = n8; j < n; ++j) {
    for (int r = 0; r < 4; ++r) {
      float acc = c[r * ldc + j];
      for (std::int64_t kk = 0; kk < k; ++kk)
        acc += coef(r, kk) * b[kk * ldb + j];
      c[r * ldc + j] = acc;
    }
  }
}

}  // namespace

void gemm_neon(float* c, const float* a, const float* b, std::int64_t m,
               std::int64_t n, std::int64_t k, std::int64_t lda,
               std::int64_t ldb, std::int64_t ldc) {
  const std::int64_t m4 = m & ~std::int64_t{3};
  for (std::int64_t i0 = 0; i0 < m4; i0 += 4)
    gemm_tile4_fma(c + i0 * ldc, b, n, k, ldb, ldc,
                   [&](int r, std::int64_t kk) {
                     return a[(i0 + r) * lda + kk];
                   });
  for (std::int64_t i = m4; i < m; ++i)
    gemm_row_fma(c + i * ldc, b, n, k, ldb,
                 [&](std::int64_t kk) { return a[i * lda + kk]; });
}

void gemm_at_neon(float* c, const float* a, const float* b, std::int64_t m,
                  std::int64_t n, std::int64_t k, std::int64_t lda,
                  std::int64_t ldb, std::int64_t ldc) {
  const std::int64_t m4 = m & ~std::int64_t{3};
  for (std::int64_t i0 = 0; i0 < m4; i0 += 4)
    gemm_tile4_fma(c + i0 * ldc, b, n, k, ldb, ldc,
                   [&](int r, std::int64_t kk) {
                     return a[kk * lda + i0 + r];
                   });
  for (std::int64_t i = m4; i < m; ++i)
    gemm_row_fma(c + i * ldc, b, n, k, ldb,
                 [&](std::int64_t kk) { return a[kk * lda + i]; });
}

void gemm_bt_neon(float* c, const float* a, const float* b, std::int64_t m,
                  std::int64_t n, std::int64_t k, std::int64_t lda,
                  std::int64_t ldb, std::int64_t ldc) {
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * lda;
    float* crow = c + i * ldc;
    for (std::int64_t j = 0; j < n; ++j)
      crow[j] += dot_neon(arow, b + j * ldb, k);
  }
}

void gemm_f64acc_neon(float* out, const float* a, const float* v,
                      std::int64_t m, std::int64_t n, std::int64_t k,
                      std::int64_t lda, std::int64_t ldv, std::int64_t ldo) {
  // double(a)*double(v) is exact (24+24 significand bits fit in 53), so
  // vfmaq_f64 rounds exactly like the scalar reference's mul-then-add —
  // this kernel is bit-identical to gemm_f64acc_scalar.
  const std::int64_t n4 = n & ~std::int64_t{3};
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * lda;
    for (std::int64_t j0 = 0; j0 < n4; j0 += 4) {
      float64x2_t acc0 = vdupq_n_f64(0.0);
      float64x2_t acc1 = vdupq_n_f64(0.0);
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float64x2_t av = vdupq_n_f64(static_cast<double>(arow[kk]));
        const float32x4_t vf = vld1q_f32(v + kk * ldv + j0);
        acc0 = vfmaq_f64(acc0, av, vcvt_f64_f32(vget_low_f32(vf)));
        acc1 = vfmaq_f64(acc1, av, vcvt_high_f64_f32(vf));
      }
      const float32x2_t lo = vcvt_f32_f64(acc0);
      vst1q_f32(out + i * ldo + j0, vcvt_high_f32_f64(lo, acc1));
    }
    for (std::int64_t j = n4; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk)
        acc += static_cast<double>(arow[kk]) *
               static_cast<double>(v[kk * ldv + j]);
      out[i * ldo + j] = static_cast<float>(acc);
    }
  }
}

void quantize_affine_neon(float* out, const float* x, std::int64_t n,
                          float scale, float qmax) {
  const float32x4_t zero = vdupq_n_f32(0.0f);
  const float32x4_t vs = vdupq_n_f32(scale);
  const float32x4_t vq = vdupq_n_f32(qmax);
  const std::int64_t n4 = n & ~std::int64_t{3};
  for (std::int64_t i = 0; i < n4; i += 4) {
    const float32x4_t clipped =
        vminq_f32(vmaxq_f32(vld1q_f32(x + i), zero), vs);
    const float32x4_t t = vmulq_f32(vdivq_f32(clipped, vs), vq);
    // vrndaq = round half away from zero == std::round.
    vst1q_f32(out + i, vrndaq_f32(t));
  }
  for (std::int64_t i = n4; i < n; ++i) {
    const float clipped = std::clamp(x[i], 0.0f, scale);
    out[i] = std::round(clipped / scale * qmax);
  }
}

void adc_shift_add_neon(float* acc, const float* cur, const float* baseline,
                        std::int64_t n, float full_scale, float steps,
                        float shift) {
  const float32x4_t zero = vdupq_n_f32(0.0f);
  const float32x4_t vfs = vdupq_n_f32(full_scale);
  const float32x4_t vsteps = vdupq_n_f32(steps);
  const float32x4_t vshift = vdupq_n_f32(shift);
  const std::int64_t n4 = n & ~std::int64_t{3};
  for (std::int64_t i = 0; i < n4; i += 4) {
    const float32x4_t clamped =
        vminq_f32(vmaxq_f32(vld1q_f32(cur + i), zero), vfs);
    const float32x4_t r =
        vrndaq_f32(vmulq_f32(vdivq_f32(clamped, vfs), vsteps));
    const float32x4_t q = vdivq_f32(vmulq_f32(r, vfs), vsteps);
    const float32x4_t d = vsubq_f32(q, vld1q_f32(baseline + i));
    // Unfused mul+add to match the scalar reference bit-for-bit.
    vst1q_f32(acc + i, vaddq_f32(vld1q_f32(acc + i), vmulq_f32(vshift, d)));
  }
  for (std::int64_t i = n4; i < n; ++i) {
    const float clamped = std::clamp(cur[i], 0.0f, full_scale);
    const float q = std::round(clamped / full_scale * steps) * full_scale /
                    steps;
    acc[i] += shift * (q - baseline[i]);
  }
}

namespace {

/// Rounded quantization codes for 4 floats, as i32.
inline int32x4_t quantize_codes4(const float* x, float32x4_t vs,
                                 float32x4_t vq) {
  const float32x4_t clipped =
      vminq_f32(vmaxq_f32(vld1q_f32(x), vdupq_n_f32(0.0f)), vs);
  const float32x4_t t = vmulq_f32(vdivq_f32(clipped, vs), vq);
  return vcvtq_s32_f32(vrndaq_f32(t));
}

}  // namespace

void quantize_to_i8_neon(std::int8_t* out, const float* x, std::int64_t n,
                         float scale, float qmax) {
  const float32x4_t vs = vdupq_n_f32(scale);
  const float32x4_t vq = vdupq_n_f32(qmax);
  const std::int64_t n8 = n & ~std::int64_t{7};
  for (std::int64_t i = 0; i < n8; i += 8) {
    const int16x4_t lo = vmovn_s32(quantize_codes4(x + i, vs, vq));
    const int16x4_t hi = vmovn_s32(quantize_codes4(x + i + 4, vs, vq));
    vst1_s8(out + i, vmovn_s16(vcombine_s16(lo, hi)));
  }
  for (std::int64_t i = n8; i < n; ++i) {
    const float clipped = std::clamp(x[i], 0.0f, scale);
    out[i] = static_cast<std::int8_t>(std::round(clipped / scale * qmax));
  }
}

void quantize_to_i16_neon(std::int16_t* out, const float* x, std::int64_t n,
                          float scale, float qmax) {
  const float32x4_t vs = vdupq_n_f32(scale);
  const float32x4_t vq = vdupq_n_f32(qmax);
  const std::int64_t n8 = n & ~std::int64_t{7};
  for (std::int64_t i = 0; i < n8; i += 8) {
    const int16x4_t lo = vmovn_s32(quantize_codes4(x + i, vs, vq));
    const int16x4_t hi = vmovn_s32(quantize_codes4(x + i + 4, vs, vq));
    vst1q_s16(out + i, vcombine_s16(lo, hi));
  }
  for (std::int64_t i = n8; i < n; ++i) {
    const float clipped = std::clamp(x[i], 0.0f, scale);
    out[i] = static_cast<std::int16_t>(std::round(clipped / scale * qmax));
  }
}

void gemm_at_i8_i32acc_neon(std::int32_t* c, const std::int8_t* a,
                            const std::int8_t* b, std::int64_t m,
                            std::int64_t n, std::int64_t k, std::int64_t lda,
                            std::int64_t ldb, std::int64_t ldc) {
  // Per k-step the 16 int8 B values widen once to four i32x4 registers,
  // then feed broadcast multiply-accumulate per output row. Integer
  // arithmetic is exact, so blocking cannot change the result.
  const std::int64_t n16 = n & ~std::int64_t{15};
  for (std::int64_t j0 = 0; j0 < n16; j0 += 16) {
    for (std::int64_t i = 0; i < m; ++i) {
      std::int32_t* crow = c + i * ldc + j0;
      int32x4_t acc0 = vld1q_s32(crow);
      int32x4_t acc1 = vld1q_s32(crow + 4);
      int32x4_t acc2 = vld1q_s32(crow + 8);
      int32x4_t acc3 = vld1q_s32(crow + 12);
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const std::int32_t aki = a[kk * lda + i];
        if (aki == 0) continue;
        const int8x16_t bv = vld1q_s8(b + kk * ldb + j0);
        const int16x8_t blo = vmovl_s8(vget_low_s8(bv));
        const int16x8_t bhi = vmovl_s8(vget_high_s8(bv));
        const int32x4_t av = vdupq_n_s32(aki);
        acc0 = vmlaq_s32(acc0, av, vmovl_s16(vget_low_s16(blo)));
        acc1 = vmlaq_s32(acc1, av, vmovl_s16(vget_high_s16(blo)));
        acc2 = vmlaq_s32(acc2, av, vmovl_s16(vget_low_s16(bhi)));
        acc3 = vmlaq_s32(acc3, av, vmovl_s16(vget_high_s16(bhi)));
      }
      vst1q_s32(crow, acc0);
      vst1q_s32(crow + 4, acc1);
      vst1q_s32(crow + 8, acc2);
      vst1q_s32(crow + 12, acc3);
    }
  }
  if (n16 < n) {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const std::int8_t* arow = a + kk * lda;
      const std::int8_t* brow = b + kk * ldb;
      for (std::int64_t i = 0; i < m; ++i) {
        const std::int32_t aki = arow[i];
        if (aki == 0) continue;
        std::int32_t* crow = c + i * ldc;
        for (std::int64_t j = n16; j < n; ++j) crow[j] += aki * brow[j];
      }
    }
  }
}

void adc_shift_add_i32_neon(float* acc, const std::int32_t* dot,
                            const float* baseline, std::int64_t n,
                            float dot_unit, float full_scale, float steps,
                            float shift) {
  const float32x4_t zero = vdupq_n_f32(0.0f);
  const float32x4_t vdu = vdupq_n_f32(dot_unit);
  const float32x4_t vfs = vdupq_n_f32(full_scale);
  const float32x4_t vsteps = vdupq_n_f32(steps);
  const float32x4_t vshift = vdupq_n_f32(shift);
  const std::int64_t n4 = n & ~std::int64_t{3};
  for (std::int64_t i = 0; i < n4; i += 4) {
    const float32x4_t vd = vcvtq_f32_s32(vld1q_s32(dot + i));
    const float32x4_t vb = vld1q_f32(baseline + i);
    // Unfused mul+add to match the scalar reference bit-for-bit.
    const float32x4_t cur = vaddq_f32(vb, vmulq_f32(vdu, vd));
    const float32x4_t clamped = vminq_f32(vmaxq_f32(cur, zero), vfs);
    const float32x4_t r =
        vrndaq_f32(vmulq_f32(vdivq_f32(clamped, vfs), vsteps));
    const float32x4_t q = vdivq_f32(vmulq_f32(r, vfs), vsteps);
    const float32x4_t d = vsubq_f32(q, vb);
    vst1q_f32(acc + i, vaddq_f32(vld1q_f32(acc + i), vmulq_f32(vshift, d)));
  }
  for (std::int64_t i = n4; i < n; ++i) {
    const float cur = baseline[i] + dot_unit * static_cast<float>(dot[i]);
    const float clamped = std::clamp(cur, 0.0f, full_scale);
    const float q = std::round(clamped / full_scale * steps) * full_scale /
                    steps;
    acc[i] += shift * (q - baseline[i]);
  }
}

}  // namespace nvm::simd::detail

#else  // !NVM_SIMD_NEON_TU or not AArch64 — stubs, unreachable via dispatch.

#include "common/check.h"

namespace nvm::simd::detail {

bool neon_tu_compiled() { return false; }

namespace {
[[noreturn]] void stub_fail() {
  throw nvm::CheckError(
      "nvm::simd NEON kernel called but NVM_ENABLE_NEON was off or the "
      "target is not AArch64");
}
}  // namespace

float dot_neon(const float*, const float*, std::int64_t) { stub_fail(); }
void axpy_neon(float*, const float*, float, std::int64_t) { stub_fail(); }
void madd_neon(float*, const float*, float, std::int64_t) { stub_fail(); }
void scale_neon(float*, const float*, float, std::int64_t) { stub_fail(); }
void tanh_block_neon(float*, std::int64_t) { stub_fail(); }
void gemm_neon(float*, const float*, const float*, std::int64_t, std::int64_t,
               std::int64_t, std::int64_t, std::int64_t, std::int64_t) {
  stub_fail();
}
void gemm_at_neon(float*, const float*, const float*, std::int64_t,
                  std::int64_t, std::int64_t, std::int64_t, std::int64_t,
                  std::int64_t) {
  stub_fail();
}
void gemm_bt_neon(float*, const float*, const float*, std::int64_t,
                  std::int64_t, std::int64_t, std::int64_t, std::int64_t,
                  std::int64_t) {
  stub_fail();
}
void gemm_f64acc_neon(float*, const float*, const float*, std::int64_t,
                      std::int64_t, std::int64_t, std::int64_t, std::int64_t,
                      std::int64_t) {
  stub_fail();
}
void quantize_affine_neon(float*, const float*, std::int64_t, float, float) {
  stub_fail();
}
void adc_shift_add_neon(float*, const float*, const float*, std::int64_t,
                        float, float, float) {
  stub_fail();
}
void quantize_to_i8_neon(std::int8_t*, const float*, std::int64_t, float,
                         float) {
  stub_fail();
}
void quantize_to_i16_neon(std::int16_t*, const float*, std::int64_t, float,
                          float) {
  stub_fail();
}
void gemm_at_i8_i32acc_neon(std::int32_t*, const std::int8_t*,
                            const std::int8_t*, std::int64_t, std::int64_t,
                            std::int64_t, std::int64_t, std::int64_t,
                            std::int64_t) {
  stub_fail();
}
void adc_shift_add_i32_neon(float*, const std::int32_t*, const float*,
                            std::int64_t, float, float, float, float) {
  stub_fail();
}

}  // namespace nvm::simd::detail

#endif  // NVM_SIMD_NEON_TU && __aarch64__

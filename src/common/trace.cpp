#include "common/trace.h"

#include <atomic>
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "common/file_cache.h"
#include "common/logging.h"
#include "common/metrics.h"

namespace nvm::trace {

namespace {

std::atomic<bool> g_enabled{true};

/// Per-thread accumulator for one span name. Only the owning thread
/// writes; snapshot() reads the relaxed atomics from other threads.
struct SpanSlot {
  explicit SpanSlot(const char* n) : name(n) {}
  std::string name;
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> total{0};
  std::atomic<std::uint64_t> min{std::numeric_limits<std::uint64_t>::max()};
  std::atomic<std::uint64_t> max{0};
};

/// One thread's span table. The mutex guards the map structure and the
/// event ring (rare owner insertions / appends vs. iteration by
/// snapshot); slot stat updates themselves are lock-free.
struct ThreadTable {
  std::mutex mu;
  std::uint64_t tid = 0;
  std::unordered_map<const void*, std::unique_ptr<SpanSlot>> slots;

  // Bounded begin/end event ring (drop-oldest). Storage is allocated on
  // the first event, so threads in non-capturing runs pay nothing.
  std::vector<Event> ring;
  std::size_t ring_start = 0;  ///< index of the oldest event
  std::size_t ring_size = 0;
  std::uint64_t dropped = 0;
};

struct TraceRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadTable>> tables;
};

// Leaked on purpose (see metrics.cpp): keeps tables — including those of
// exited threads — alive and mergeable for the process lifetime.
TraceRegistry& registry() {
  static TraceRegistry* r = new TraceRegistry;
  return *r;
}

ThreadTable& tls_table() {
  thread_local std::shared_ptr<ThreadTable> table = [] {
    auto t = std::make_shared<ThreadTable>();
    TraceRegistry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    t->tid = static_cast<std::uint64_t>(reg.tables.size()) + 1;
    reg.tables.push_back(t);
    return t;
  }();
  return *table;
}

// --- event capture state -----------------------------------------------

std::atomic<bool> g_events_on{false};
std::atomic<std::size_t> g_ring_cap{65536};

std::int64_t steady_ns(std::chrono::steady_clock::time_point t) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             t.time_since_epoch())
      .count();
}

/// Capture epoch as a raw steady-clock nanosecond count, so the per-event
/// path reads it with one relaxed load instead of a mutex.
std::atomic<std::int64_t> g_epoch_ns{0};

struct EventConfig {
  std::mutex mu;
  std::string path;
  bool atexit_registered = false;
};

EventConfig& event_config() {
  static EventConfig* c = new EventConfig;
  return *c;
}

metrics::Counter& dropped_counter() {
  static metrics::Counter& c = metrics::counter("trace/events_dropped");
  return c;
}

void flush_at_exit() { flush_events(); }

/// NVM_TRACE_EVENTS=<path> turns capture on for the whole process; read
/// once, on the first span/event-API touch.
void init_events_from_env_once() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* p = std::getenv("NVM_TRACE_EVENTS");
    if (p != nullptr && *p != '\0') enable_events(p);
  });
}

struct EventsEnvInit {
  EventsEnvInit() { init_events_from_env_once(); }
} g_events_env_init;

/// Minimal JSON string escaping for span-name literals (which follow the
/// metric naming scheme, but stay safe for arbitrary input).
std::string escape_json(const char* s) {
  std::string out;
  for (const char* p = s; *p != '\0'; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

void SpanStats::merge(const SpanStats& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  count += other.count;
  total_ns += other.total_ns;
  min_ns = std::min(min_ns, other.min_ns);
  max_ns = std::max(max_ns, other.max_ns);
}

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }
bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

namespace detail {

bool events_on() { return g_events_on.load(std::memory_order_relaxed); }

void event(const char* name, char ph,
           std::chrono::steady_clock::time_point t) {
  const std::int64_t rel =
      steady_ns(t) - g_epoch_ns.load(std::memory_order_relaxed);
  Event e;
  e.name = name;
  e.ph = ph;
  e.ts_ns = rel <= 0 ? 0 : static_cast<std::uint64_t>(rel);
  ThreadTable& table = tls_table();
  const std::size_t cap = g_ring_cap.load(std::memory_order_relaxed);
  if (cap == 0) return;
  std::lock_guard<std::mutex> lock(table.mu);
  if (table.ring.size() != cap) {
    table.ring.assign(cap, Event{});
    table.ring_start = table.ring_size = 0;
  }
  const std::size_t pos = (table.ring_start + table.ring_size) % cap;
  table.ring[pos] = e;
  if (table.ring_size < cap) {
    ++table.ring_size;
  } else {
    table.ring_start = (table.ring_start + 1) % cap;
    ++table.dropped;
    dropped_counter().add();
  }
}

void record(const char* name, std::uint64_t ns) {
  ThreadTable& table = tls_table();
  SpanSlot* slot;
  {
    std::lock_guard<std::mutex> lock(table.mu);
    auto& entry = table.slots[static_cast<const void*>(name)];
    if (!entry) entry = std::make_unique<SpanSlot>(name);
    slot = entry.get();
  }
  // Owner-thread-only writes: plain load/store keeps min/max CAS-free.
  slot->count.fetch_add(1, std::memory_order_relaxed);
  slot->total.fetch_add(ns, std::memory_order_relaxed);
  if (ns < slot->min.load(std::memory_order_relaxed))
    slot->min.store(ns, std::memory_order_relaxed);
  if (ns > slot->max.load(std::memory_order_relaxed))
    slot->max.store(ns, std::memory_order_relaxed);
}

}  // namespace detail

std::vector<std::pair<std::string, SpanStats>> snapshot() {
  std::map<std::string, SpanStats> merged;
  TraceRegistry& reg = registry();
  std::vector<std::shared_ptr<ThreadTable>> tables;
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    tables = reg.tables;
  }
  for (const auto& table : tables) {
    std::lock_guard<std::mutex> lock(table->mu);
    for (const auto& [key, slot] : table->slots) {
      SpanStats s;
      s.count = slot->count.load(std::memory_order_relaxed);
      if (s.count == 0) continue;
      s.total_ns = slot->total.load(std::memory_order_relaxed);
      s.min_ns = slot->min.load(std::memory_order_relaxed);
      s.max_ns = slot->max.load(std::memory_order_relaxed);
      merged[slot->name].merge(s);
    }
  }
  return {merged.begin(), merged.end()};
}

SpanStats span_stats(const std::string& name) {
  for (const auto& [n, stats] : snapshot())
    if (n == name) return stats;
  return SpanStats{};
}

void reset_for_tests() {
  TraceRegistry& reg = registry();
  std::vector<std::shared_ptr<ThreadTable>> tables;
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    tables = reg.tables;
  }
  for (const auto& table : tables) {
    std::lock_guard<std::mutex> lock(table->mu);
    for (auto& [key, slot] : table->slots) {
      slot->count.store(0, std::memory_order_relaxed);
      slot->total.store(0, std::memory_order_relaxed);
      slot->min.store(std::numeric_limits<std::uint64_t>::max(),
                      std::memory_order_relaxed);
      slot->max.store(0, std::memory_order_relaxed);
    }
  }
}

// ---------------------------------------------------------------------------
// Timeline events

void enable_events(const std::string& path, std::size_t ring_capacity) {
  EventConfig& cfg = event_config();
  {
    std::lock_guard<std::mutex> lock(cfg.mu);
    cfg.path = path;
    if (!path.empty() && !cfg.atexit_registered) {
      std::atexit(flush_at_exit);
      cfg.atexit_registered = true;
    }
  }
  g_ring_cap.store(std::max<std::size_t>(1, ring_capacity),
                   std::memory_order_relaxed);
  g_epoch_ns.store(steady_ns(std::chrono::steady_clock::now()),
                   std::memory_order_relaxed);
  g_events_on.store(true, std::memory_order_relaxed);
}

void disable_events() {
  g_events_on.store(false, std::memory_order_relaxed);
}

bool events_enabled() { return detail::events_on(); }

std::vector<ThreadEvents> events_snapshot() {
  TraceRegistry& reg = registry();
  std::vector<std::shared_ptr<ThreadTable>> tables;
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    tables = reg.tables;
  }
  std::vector<ThreadEvents> out;
  for (const auto& table : tables) {
    ThreadEvents te;
    std::vector<Event> ordered;
    {
      std::lock_guard<std::mutex> lock(table->mu);
      te.tid = table->tid;
      te.dropped = table->dropped;
      ordered.reserve(table->ring_size);
      for (std::size_t i = 0; i < table->ring_size; ++i)
        ordered.push_back(
            table->ring[(table->ring_start + i) % table->ring.size()]);
    }
    if (ordered.empty() && te.dropped == 0) continue;

    // Balance the stream: an 'E' whose 'B' was overwritten by the ring is
    // dropped (and counted); a trailing 'B' whose span is still open is
    // elided (its closed children stay, re-parented to the grandparent —
    // still well-nested). The kept subsequence preserves capture order,
    // so per-thread timestamps stay monotone.
    std::vector<char> keep(ordered.size(), 1);
    std::vector<std::size_t> open;
    for (std::size_t i = 0; i < ordered.size(); ++i) {
      if (ordered[i].ph == 'B') {
        open.push_back(i);
      } else if (open.empty()) {
        keep[i] = 0;
        ++te.dropped;
      } else {
        open.pop_back();
      }
    }
    for (const std::size_t i : open) keep[i] = 0;
    te.events.reserve(ordered.size());
    for (std::size_t i = 0; i < ordered.size(); ++i)
      if (keep[i]) te.events.push_back(ordered[i]);
    if (!te.events.empty() || te.dropped > 0) out.push_back(std::move(te));
  }
  return out;
}

bool flush_events(const std::string& path) {
  const std::vector<ThreadEvents> threads = events_snapshot();
  std::uint64_t dropped_total = 0;

  // chrome://tracing JSON Array Format: one B/E pair per span, ts in
  // microseconds (fractional, ns precision). Hand-rolled here because the
  // JsonWriter lives a layer above (core depends on common, not vice
  // versa).
  std::ostringstream os;
  os << "{\n  \"traceEvents\": [";
  bool first = true;
  for (const ThreadEvents& te : threads) {
    dropped_total += te.dropped;
    for (const Event& e : te.events) {
      os << (first ? "\n" : ",\n");
      first = false;
      char ts[40];
      std::snprintf(ts, sizeof ts, "%.3f",
                    static_cast<double>(e.ts_ns) / 1e3);
      os << "    {\"name\": \"" << escape_json(e.name)
         << "\", \"cat\": \"nvm\", \"ph\": \"" << e.ph
         << "\", \"pid\": 1, \"tid\": " << te.tid << ", \"ts\": " << ts
         << "}";
    }
  }
  os << "\n  ],\n  \"displayTimeUnit\": \"ms\",\n  \"otherData\": "
        "{\"dropped_events\": "
     << dropped_total << "}\n}\n";

  const bool ok = atomic_write_file(path, os.str());
  if (ok)
    NVM_LOG(Info) << "trace events written to " << path;
  return ok;
}

void flush_events() {
  EventConfig& cfg = event_config();
  std::string path;
  {
    std::lock_guard<std::mutex> lock(cfg.mu);
    path = cfg.path;
  }
  if (!path.empty()) (void)flush_events(path);
}

void reset_events_for_tests() {
  disable_events();
  TraceRegistry& reg = registry();
  std::vector<std::shared_ptr<ThreadTable>> tables;
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    tables = reg.tables;
  }
  for (const auto& table : tables) {
    std::lock_guard<std::mutex> lock(table->mu);
    table->ring.clear();
    table->ring_start = table->ring_size = 0;
    table->dropped = 0;
  }
}

}  // namespace nvm::trace

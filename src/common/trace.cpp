#include "common/trace.h"

#include <atomic>
#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace nvm::trace {

namespace {

std::atomic<bool> g_enabled{true};

/// Per-thread accumulator for one span name. Only the owning thread
/// writes; snapshot() reads the relaxed atomics from other threads.
struct SpanSlot {
  explicit SpanSlot(const char* n) : name(n) {}
  std::string name;
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> total{0};
  std::atomic<std::uint64_t> min{std::numeric_limits<std::uint64_t>::max()};
  std::atomic<std::uint64_t> max{0};
};

/// One thread's span table. The mutex guards the map structure (rare
/// insertions by the owner vs. iteration by snapshot); slot updates
/// themselves are lock-free.
struct ThreadTable {
  std::mutex mu;
  std::unordered_map<const void*, std::unique_ptr<SpanSlot>> slots;
};

struct TraceRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadTable>> tables;
};

// Leaked on purpose (see metrics.cpp): keeps tables — including those of
// exited threads — alive and mergeable for the process lifetime.
TraceRegistry& registry() {
  static TraceRegistry* r = new TraceRegistry;
  return *r;
}

ThreadTable& tls_table() {
  thread_local std::shared_ptr<ThreadTable> table = [] {
    auto t = std::make_shared<ThreadTable>();
    TraceRegistry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.tables.push_back(t);
    return t;
  }();
  return *table;
}

}  // namespace

void SpanStats::merge(const SpanStats& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  count += other.count;
  total_ns += other.total_ns;
  min_ns = std::min(min_ns, other.min_ns);
  max_ns = std::max(max_ns, other.max_ns);
}

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }
bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

namespace detail {

void record(const char* name, std::uint64_t ns) {
  ThreadTable& table = tls_table();
  SpanSlot* slot;
  {
    std::lock_guard<std::mutex> lock(table.mu);
    auto& entry = table.slots[static_cast<const void*>(name)];
    if (!entry) entry = std::make_unique<SpanSlot>(name);
    slot = entry.get();
  }
  // Owner-thread-only writes: plain load/store keeps min/max CAS-free.
  slot->count.fetch_add(1, std::memory_order_relaxed);
  slot->total.fetch_add(ns, std::memory_order_relaxed);
  if (ns < slot->min.load(std::memory_order_relaxed))
    slot->min.store(ns, std::memory_order_relaxed);
  if (ns > slot->max.load(std::memory_order_relaxed))
    slot->max.store(ns, std::memory_order_relaxed);
}

}  // namespace detail

std::vector<std::pair<std::string, SpanStats>> snapshot() {
  std::map<std::string, SpanStats> merged;
  TraceRegistry& reg = registry();
  std::vector<std::shared_ptr<ThreadTable>> tables;
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    tables = reg.tables;
  }
  for (const auto& table : tables) {
    std::lock_guard<std::mutex> lock(table->mu);
    for (const auto& [key, slot] : table->slots) {
      SpanStats s;
      s.count = slot->count.load(std::memory_order_relaxed);
      if (s.count == 0) continue;
      s.total_ns = slot->total.load(std::memory_order_relaxed);
      s.min_ns = slot->min.load(std::memory_order_relaxed);
      s.max_ns = slot->max.load(std::memory_order_relaxed);
      merged[slot->name].merge(s);
    }
  }
  return {merged.begin(), merged.end()};
}

SpanStats span_stats(const std::string& name) {
  for (const auto& [n, stats] : snapshot())
    if (n == name) return stats;
  return SpanStats{};
}

void reset_for_tests() {
  TraceRegistry& reg = registry();
  std::vector<std::shared_ptr<ThreadTable>> tables;
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    tables = reg.tables;
  }
  for (const auto& table : tables) {
    std::lock_guard<std::mutex> lock(table->mu);
    for (auto& [key, slot] : table->slots) {
      slot->count.store(0, std::memory_order_relaxed);
      slot->total.store(0, std::memory_order_relaxed);
      slot->min.store(std::numeric_limits<std::uint64_t>::max(),
                      std::memory_order_relaxed);
      slot->max.store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace nvm::trace

// RAII scoped-span profiler with per-thread aggregation.
//
//   void solve(...) {
//     NVM_TRACE_SPAN("xbar/solver/solve");
//     ...
//   }
//
// Each span records one (count, total/min/max ns) sample into a table
// owned by the *current thread*, so the hot path is two steady_clock reads
// plus a handful of relaxed stores — no cross-thread contention, safe
// under the thread pool. trace::snapshot() merges the per-thread tables by
// span name at export time (run manifests, end-of-bench reports).
//
// Span names follow the metric naming scheme ("layer/component/name") and
// should be string literals: the per-thread fast path keys on the pointer.
//
// Tracing is enabled by default and can be toggled with set_enabled();
// disabling makes spans record nothing (Span::seconds() still works, so
// spans double as progress stopwatches). Instrumented code must be
// bit-identical with tracing on or off — spans only observe time.
//
// Consistency note: a thread's stat fields are written individually
// (relaxed); a snapshot taken while spans are closing may be momentarily
// inconsistent by one in-flight span. Export at run boundaries.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace nvm::trace {

/// Aggregated statistics for one span name.
struct SpanStats {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = 0;  ///< 0 when count == 0
  std::uint64_t max_ns = 0;

  void merge(const SpanStats& other);
};

/// Globally enables/disables span recording (default: enabled).
void set_enabled(bool on);
bool enabled();

namespace detail {
/// Records one closed span of `ns` nanoseconds under `name` (keyed by the
/// literal's pointer on the fast path, merged by content at snapshot).
void record(const char* name, std::uint64_t ns);
}  // namespace detail

/// RAII span: measures construction -> destruction.
class Span {
 public:
  explicit Span(const char* name)
      : name_(name), start_(std::chrono::steady_clock::now()) {}
  ~Span() {
    if (enabled())
      detail::record(
          name_,
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start_)
                  .count()));
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Seconds since construction — progress reporting, independent of
  /// enabled() (this is the Stopwatch replacement for timed log lines).
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  const char* name_;
  std::chrono::steady_clock::time_point start_;
};

/// All span stats, merged across every thread that ever recorded one,
/// sorted by name. Stats survive thread exit.
std::vector<std::pair<std::string, SpanStats>> snapshot();

/// Stats for one span name (zero stats if never recorded).
SpanStats span_stats(const std::string& name);

/// Zeroes every span table (tests only).
void reset_for_tests();

}  // namespace nvm::trace

#define NVM_TRACE_CONCAT2(a, b) a##b
#define NVM_TRACE_CONCAT(a, b) NVM_TRACE_CONCAT2(a, b)
/// Opens a scoped span named `name` (a string literal) until end of scope.
#define NVM_TRACE_SPAN(name) \
  ::nvm::trace::Span NVM_TRACE_CONCAT(nvm_trace_span_, __LINE__)(name)

// RAII scoped-span profiler with per-thread aggregation.
//
//   void solve(...) {
//     NVM_TRACE_SPAN("xbar/solver/solve");
//     ...
//   }
//
// Each span records one (count, total/min/max ns) sample into a table
// owned by the *current thread*, so the hot path is two steady_clock reads
// plus a handful of relaxed stores — no cross-thread contention, safe
// under the thread pool. trace::snapshot() merges the per-thread tables by
// span name at export time (run manifests, end-of-bench reports).
//
// Span names follow the metric naming scheme ("layer/component/name") and
// should be string literals: the per-thread fast path keys on the pointer.
//
// Tracing is enabled by default and can be toggled with set_enabled();
// disabling makes spans record nothing (Span::seconds() still works, so
// spans double as progress stopwatches). Instrumented code must be
// bit-identical with tracing on or off — spans only observe time.
//
// Timeline events (NVM_TRACE_EVENTS=<path>): besides the aggregated
// stats, every span can additionally record begin/end events into a
// bounded per-thread ring buffer (drop-oldest, dropped tally under the
// trace/events_dropped counter), flushed as chrome://tracing /
// Perfetto-loadable JSON at process exit or on demand (flush_events).
// Event capture is off unless the env var is set or enable_events() is
// called, and costs one relaxed load per span when off — span-observing
// code stays bit-identical either way.
//
// Consistency note: a thread's stat fields are written individually
// (relaxed); a snapshot taken while spans are closing may be momentarily
// inconsistent by one in-flight span. Export at run boundaries.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace nvm::trace {

/// Aggregated statistics for one span name.
struct SpanStats {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = 0;  ///< 0 when count == 0
  std::uint64_t max_ns = 0;

  void merge(const SpanStats& other);
};

/// Globally enables/disables span recording (default: enabled).
void set_enabled(bool on);
bool enabled();

namespace detail {
/// Records one closed span of `ns` nanoseconds under `name` (keyed by the
/// literal's pointer on the fast path, merged by content at snapshot).
void record(const char* name, std::uint64_t ns);
/// True when begin/end event capture is on (one relaxed load).
bool events_on();
/// Appends one 'B'/'E' event at steady-clock time `t` to the calling
/// thread's event ring.
void event(const char* name, char ph, std::chrono::steady_clock::time_point t);
}  // namespace detail

/// RAII span: measures construction -> destruction.
class Span {
 public:
  explicit Span(const char* name)
      : name_(name), start_(std::chrono::steady_clock::now()) {
    if (detail::events_on()) detail::event(name_, 'B', start_);
  }
  ~Span() {
    const auto end = std::chrono::steady_clock::now();
    if (enabled())
      detail::record(
          name_,
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(end -
                                                                   start_)
                  .count()));
    if (detail::events_on()) detail::event(name_, 'E', end);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Seconds since construction — progress reporting, independent of
  /// enabled() (this is the Stopwatch replacement for timed log lines).
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  const char* name_;
  std::chrono::steady_clock::time_point start_;
};

// ---------------------------------------------------------------------------
// Timeline events (chrome://tracing export)

/// One begin/end event. `ts_ns` is nanoseconds since the capture epoch
/// (the enable_events call), strictly from the thread's own steady-clock
/// reads, so per-thread sequences are monotone by construction.
struct Event {
  const char* name = nullptr;
  std::uint64_t ts_ns = 0;
  char ph = 'B';  ///< 'B' (span open) or 'E' (span close)
};

/// One thread's balanced event stream (see events_snapshot()).
struct ThreadEvents {
  std::uint64_t tid = 0;
  std::vector<Event> events;
  /// Ring overwrites plus flush-time unmatched ends whose begins were
  /// overwritten (the exported stream is always balanced).
  std::uint64_t dropped = 0;
};

/// Turns on begin/end event capture. `path` is where flush_events() (and
/// the at-exit flush) writes the chrome-trace JSON; empty captures
/// without an at-exit flush (tests flush explicitly). `ring_capacity` is
/// per-thread events retained (drop-oldest beyond it).
void enable_events(const std::string& path, std::size_t ring_capacity = 65536);
/// Stops event capture (already-captured events stay flushable).
void disable_events();
bool events_enabled();

/// Per-thread event streams, post-balanced: unmatched 'E' events (begin
/// overwritten by the ring) are dropped and counted, unmatched trailing
/// 'B' events (spans still open) are elided, so every stream is a
/// well-nested B/E sequence with monotone timestamps.
std::vector<ThreadEvents> events_snapshot();

/// Writes the chrome://tracing JSON ("traceEvents" array of B/E events,
/// ts in microseconds) to `path` crash-safely (tmp + fsync + rename).
/// Returns false on I/O failure. Safe to call at any time; capture
/// continues afterwards.
bool flush_events(const std::string& path);
/// Flushes to the path given to enable_events (no-op when none is set).
void flush_events();

/// Tests only: clears every event ring and disables capture.
void reset_events_for_tests();

/// All span stats, merged across every thread that ever recorded one,
/// sorted by name. Stats survive thread exit.
std::vector<std::pair<std::string, SpanStats>> snapshot();

/// Stats for one span name (zero stats if never recorded).
SpanStats span_stats(const std::string& name);

/// Zeroes every span table (tests only).
void reset_for_tests();

}  // namespace nvm::trace

#define NVM_TRACE_CONCAT2(a, b) a##b
#define NVM_TRACE_CONCAT(a, b) NVM_TRACE_CONCAT2(a, b)
/// Opens a scoped span named `name` (a string literal) until end of scope.
#define NVM_TRACE_SPAN(name) \
  ::nvm::trace::Span NVM_TRACE_CONCAT(nvm_trace_span_, __LINE__)(name)

// Portable SIMD micro-kernel layer.
//
// Every hot inner loop of the analog stack — tiled-GEMM shift-add, ideal
// and fast-noise column evaluation, the GENIEx MLP forward, activation /
// ADC quantization — runs over the fixed set of kernels below. Two
// implementations exist per kernel: a hand-written AVX2/FMA one (compiled
// in its own translation unit with per-file arch flags, see
// NVM_ENABLE_AVX2) and a scalar fallback. The active one is chosen once
// per process at first use: cpuid decides, and NVM_SIMD=avx2|scalar
// overrides.
//
// Determinism contract (DESIGN.md §11):
//   * Each kernel uses ONE deterministic accumulation tree. Results are
//     bit-identical across NVM_THREADS, across repeated runs of the same
//     build, and across calls with different blocking of the same data.
//   * Kernels marked [exact] below produce bit-identical results under
//     NVM_SIMD=scalar and =avx2: every lane performs the same float ops in
//     the same order as the scalar code (the whole build uses
//     -ffp-contract=off so the compiler cannot fuse the scalar side).
//   * Kernels marked [~ulp] use FMA on AVX2 but plain mul+add in the
//     scalar fallback; per element they differ by at most a few ULP of the
//     running magnitude (tests/test_simd.cpp asserts the bound).
//
// Reduction trees:
//   * dot: 8 strided lanes (lane l accumulates elements l, l+8, ...)
//     reduced as ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)).
//   * gemm*: per output element, sequential accumulation over k (the
//     microtile blocks rows/columns, never the reduction).
//   * gemm_f64acc: sequential double accumulation over the inner index —
//     bit-identical to nvm::matvec's scalar loop per output element.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace nvm::simd {

enum class Isa { Scalar = 0, Avx2 = 1 };

/// The instruction set all kernels dispatch to. Resolved once: NVM_SIMD
/// env override if set (an unusable request logs a warning and falls
/// back), else AVX2 when both compiled in and supported by this CPU.
Isa active_isa();
const char* isa_name(Isa isa);

/// True when the AVX2 kernel TU was compiled in (NVM_ENABLE_AVX2).
bool avx2_compiled();
/// True when this CPU supports AVX2+FMA.
bool avx2_supported();

/// Test-only: forces the dispatch while alive (restores on destruction).
/// Requesting Avx2 on a scalar-only build/CPU throws CheckError.
class ScopedIsaForTests {
 public:
  explicit ScopedIsaForTests(Isa isa);
  ~ScopedIsaForTests();
  ScopedIsaForTests(const ScopedIsaForTests&) = delete;
  ScopedIsaForTests& operator=(const ScopedIsaForTests&) = delete;

 private:
  int prev_;
};

// Vector kernels ----------------------------------------------------------

/// [~ulp] Dot product with the fixed 8-lane reduction tree.
float dot(const float* a, const float* b, std::int64_t n);

/// [~ulp] y[i] += alpha * x[i] (fused on AVX2).
void axpy(float* y, const float* x, float alpha, std::int64_t n);

/// [exact] y[i] += alpha * x[i] with an UNfused multiply-add — matches
/// legacy scalar accumulation loops bit-for-bit (GENIEx MLP forward).
void madd(float* y, const float* x, float alpha, std::int64_t n);

/// [exact] y[i] = alpha * x[i].
void scale(float* y, const float* x, float alpha, std::int64_t n);

/// [exact] In-place rational fast-tanh (same polynomial as
/// xbar::fast_tanh, which forwards to tanh_fast below).
void tanh_block(float* x, std::int64_t n);
/// Scalar fast-tanh; max abs error vs std::tanh ~2e-3.
float tanh_fast(float x);

// GEMM micro-kernels ------------------------------------------------------
// All operate on row-major storage with explicit leading dimensions and
// ACCUMULATE into C (callers zero C for a plain product). The AVX2
// implementation blocks into 4x8 microtiles of broadcast-FMA.

/// [~ulp] C(m x n, ldc) += A(m x k, lda) * B(k x n, ldb).
void gemm_accum(float* c, const float* a, const float* b, std::int64_t m,
                std::int64_t n, std::int64_t k, std::int64_t lda,
                std::int64_t ldb, std::int64_t ldc);

/// [~ulp] C(m x n, ldc) += A^T * B where A is (k x m, lda).
void gemm_at_accum(float* c, const float* a, const float* b, std::int64_t m,
                   std::int64_t n, std::int64_t k, std::int64_t lda,
                   std::int64_t ldb, std::int64_t ldc);

/// [~ulp] C(m x n, ldc) += A * B^T where B is (n x k, ldb); each element
/// is one dot() reduction tree.
void gemm_bt_accum(float* c, const float* a, const float* b, std::int64_t m,
                   std::int64_t n, std::int64_t k, std::int64_t lda,
                   std::int64_t ldb, std::int64_t ldc);

/// [exact] out(m x n, ldo) = A(m x k, lda) * V(k x n, ldv) accumulated in
/// double per output element, sequential over k — bit-identical to the
/// scalar loop `for k: acc += double(a) * v;` and therefore to
/// nvm::matvec per column. The analog models use this so crossbar outputs
/// do not depend on NVM_SIMD.
void gemm_f64acc(float* out, const float* a, const float* v, std::int64_t m,
                 std::int64_t n, std::int64_t k, std::int64_t lda,
                 std::int64_t ldv, std::int64_t ldo);

// Quantize / clamp kernels ------------------------------------------------

/// [exact] out[i] = round(clamp(x[i], 0, scale) / scale * qmax), with
/// round-half-away-from-zero semantics identical to std::round for the
/// non-negative domain (puma::quantize_activations).
void quantize_affine(float* out, const float* x, std::int64_t n, float scale,
                     float qmax);

/// [exact] acc[i] += shift * (adc(cur[i]) - baseline[i]) where adc() is
/// the mid-tread ADC quantizer round(clamp(c,0,fs)/fs*steps)*fs/steps —
/// the fused ADC + baseline-subtract + shift-add of the tiled GEMM.
void adc_shift_add(float* acc, const float* cur, const float* baseline,
                   std::int64_t n, float full_scale, float steps, float shift);

// Workspace ---------------------------------------------------------------

/// Reusable per-thread scratch for hot paths that would otherwise heap-
/// allocate per call. Each slot is an independent buffer with a stable
/// address across other slots' acquisitions; re-acquiring a slot
/// invalidates its previous span. An acquisition served without growing
/// the buffer counts one `simd/workspace/reuses` (a saved allocation).
/// Not thread-safe: declare instances as function-local thread_local.
class Workspace {
 public:
  static constexpr int kSlots = 12;

  /// Returns a span of `n` floats backed by slot `slot`. Contents are
  /// unspecified (callers fully overwrite before reading).
  std::span<float> floats(int slot, std::size_t n);
  /// Same, for doubles (slots are independent of the float slots).
  std::span<double> doubles(int slot, std::size_t n);

 private:
  std::vector<float> f_[kSlots];
  std::vector<double> d_[kSlots];
};

}  // namespace nvm::simd

// Portable SIMD micro-kernel layer.
//
// Every hot inner loop of the analog stack — tiled-GEMM shift-add, ideal
// and fast-noise column evaluation, the GENIEx MLP forward, activation /
// ADC quantization — runs over the fixed set of kernels below. Up to four
// implementations exist per kernel: hand-written AVX2/FMA, AVX-512 and
// NEON tiers (each compiled in its own translation unit with per-file
// arch flags, see NVM_ENABLE_AVX2 / NVM_ENABLE_AVX512 / NVM_ENABLE_NEON)
// plus a scalar fallback. The active tier is chosen once per process at
// first use: cpuid + OS state (xgetbv) decide, and
// NVM_SIMD=scalar|avx2|avx512|neon overrides.
//
// Determinism contract (DESIGN.md §11, §13):
//   * Each kernel uses ONE deterministic accumulation tree. Results are
//     bit-identical across NVM_THREADS, across repeated runs of the same
//     build, and across calls with different blocking of the same data.
//   * Kernels marked [exact] below produce bit-identical results under
//     every NVM_SIMD tier: every lane performs the same float ops in the
//     same order as the scalar code (the whole build uses
//     -ffp-contract=off so the compiler cannot fuse the scalar side).
//   * Kernels marked [~ulp] use FMA in the vector bodies but plain
//     mul+add in the scalar fallback; per element they differ by at most
//     a few ULP of the running magnitude (tests/test_simd.cpp asserts the
//     bound pairwise across all usable tiers).
//   * Integer kernels (quantize_to_i8/i16, gemm_at_i8_i32acc,
//     adc_shift_add_i32) are [exact]: integer arithmetic has no rounding,
//     and their float epilogues mirror the scalar op sequence.
//
// Reduction trees:
//   * dot: 8 strided lanes (lane l accumulates elements l, l+8, ...)
//     reduced as ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)). Wider tiers fold
//     their extra lanes pairwise onto the 8-lane tree (still [~ulp]).
//   * gemm*: per output element, sequential accumulation over k (the
//     microtile blocks rows/columns, never the reduction).
//   * gemm_f64acc: sequential double accumulation over the inner index —
//     bit-identical to nvm::matvec's scalar loop per output element.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

namespace nvm::simd {

enum class Isa { Scalar = 0, Avx2 = 1, Avx512 = 2, Neon = 3 };

/// The instruction set all kernels dispatch to. Resolved once: NVM_SIMD
/// env override if set (an unusable request logs a warning and falls
/// back to the best safe tier), else the widest tier that is compiled in,
/// reported by cpuid, AND enabled by the OS (XCR0 via xgetbv — feature
/// bits alone do not prove the kernel saves ZMM/YMM state).
Isa active_isa();
const char* isa_name(Isa isa);

/// True when the AVX2 kernel TU was compiled in (NVM_ENABLE_AVX2).
bool avx2_compiled();
/// True when this CPU supports AVX2+FMA and the OS enables YMM state.
bool avx2_supported();
/// True when the AVX-512 kernel TU was compiled in (NVM_ENABLE_AVX512).
bool avx512_compiled();
/// True when this CPU supports AVX-512 F/BW/DQ/VL and the OS enables
/// ZMM + opmask state (XCR0 bits 1,2,5,6,7).
bool avx512_supported();
/// True when the NEON kernel TU was compiled in (NVM_ENABLE_NEON).
bool neon_compiled();
/// True on AArch64 (Advanced SIMD is baseline there).
bool neon_supported();
/// True when `isa` is both compiled in and usable on this machine.
bool isa_usable(Isa isa);

/// Test-only: forces the dispatch while alive (restores on destruction).
/// Requesting a tier that is not usable on this build/CPU throws
/// CheckError.
class ScopedIsaForTests {
 public:
  explicit ScopedIsaForTests(Isa isa);
  ~ScopedIsaForTests();
  ScopedIsaForTests(const ScopedIsaForTests&) = delete;
  ScopedIsaForTests& operator=(const ScopedIsaForTests&) = delete;

 private:
  int prev_;
};

// Vector kernels ----------------------------------------------------------

/// [~ulp] Dot product with the fixed 8-lane reduction tree.
float dot(const float* a, const float* b, std::int64_t n);

/// [~ulp] y[i] += alpha * x[i] (fused in the vector tiers).
void axpy(float* y, const float* x, float alpha, std::int64_t n);

/// [exact] y[i] += alpha * x[i] with an UNfused multiply-add — matches
/// legacy scalar accumulation loops bit-for-bit (GENIEx MLP forward).
void madd(float* y, const float* x, float alpha, std::int64_t n);

/// [exact] y[i] = alpha * x[i].
void scale(float* y, const float* x, float alpha, std::int64_t n);

/// [exact] In-place rational fast-tanh (same polynomial as
/// xbar::fast_tanh, which forwards to tanh_fast below).
void tanh_block(float* x, std::int64_t n);
/// Scalar fast-tanh; max abs error vs std::tanh ~2e-3.
float tanh_fast(float x);

// GEMM micro-kernels ------------------------------------------------------
// All operate on row-major storage with explicit leading dimensions and
// ACCUMULATE into C (callers zero C for a plain product). The vector
// implementations block into 4xW microtiles of broadcast-FMA (W = the
// tier's float lane count).

/// [~ulp] C(m x n, ldc) += A(m x k, lda) * B(k x n, ldb).
void gemm_accum(float* c, const float* a, const float* b, std::int64_t m,
                std::int64_t n, std::int64_t k, std::int64_t lda,
                std::int64_t ldb, std::int64_t ldc);

/// [~ulp] C(m x n, ldc) += A^T * B where A is (k x m, lda).
void gemm_at_accum(float* c, const float* a, const float* b, std::int64_t m,
                   std::int64_t n, std::int64_t k, std::int64_t lda,
                   std::int64_t ldb, std::int64_t ldc);

/// [~ulp] C(m x n, ldc) += A * B^T where B is (n x k, ldb); each element
/// is one dot() reduction tree.
void gemm_bt_accum(float* c, const float* a, const float* b, std::int64_t m,
                   std::int64_t n, std::int64_t k, std::int64_t lda,
                   std::int64_t ldb, std::int64_t ldc);

/// [exact] out(m x n, ldo) = A(m x k, lda) * V(k x n, ldv) accumulated in
/// double per output element, sequential over k — bit-identical to the
/// scalar loop `for k: acc += double(a) * v;` and therefore to
/// nvm::matvec per column (double FMA of exact float*float products
/// rounds identically to mul-then-add). The analog models use this so
/// crossbar outputs do not depend on NVM_SIMD.
void gemm_f64acc(float* out, const float* a, const float* v, std::int64_t m,
                 std::int64_t n, std::int64_t k, std::int64_t lda,
                 std::int64_t ldv, std::int64_t ldo);

// Quantize / clamp kernels ------------------------------------------------

/// [exact] out[i] = round(clamp(x[i], 0, scale) / scale * qmax), with
/// round-half-away-from-zero semantics identical to std::round for the
/// non-negative domain (puma::quantize_activations).
void quantize_affine(float* out, const float* x, std::int64_t n, float scale,
                     float qmax);

/// [exact] acc[i] += shift * (adc(cur[i]) - baseline[i]) where adc() is
/// the mid-tread ADC quantizer round(clamp(c,0,fs)/fs*steps)*fs/steps —
/// the fused ADC + baseline-subtract + shift-add of the tiled GEMM.
void adc_shift_add(float* acc, const float* cur, const float* baseline,
                   std::int64_t n, float full_scale, float steps, float shift);

// Integer bit-slice kernels (DESIGN.md §13) -------------------------------
// The tiled GEMM's operands are small non-negative integers (weight
// slices <= 2^slice_bits-1, DAC chunks <= 2^stream_bits-1), so the
// digital path can run them through narrow integer arithmetic. The float
// twins of these kernels are bit-identical on the same integer-valued
// inputs as long as every dot product stays below 2^24 (float adds of
// integers are exact there) — tests/test_simd.cpp pins that equivalence.

/// [exact] out[i] = int8(round(clamp(x[i], 0, scale) / scale * qmax)) —
/// the i8 twin of quantize_affine. Requires 0 < qmax <= 127.
void quantize_to_i8(std::int8_t* out, const float* x, std::int64_t n,
                    float scale, float qmax);

/// [exact] out[i] = int16(round(clamp(x[i], 0, scale) / scale * qmax)) —
/// the i16 twin of quantize_affine. Requires 0 < qmax <= 32767.
void quantize_to_i16(std::int16_t* out, const float* x, std::int64_t n,
                     float scale, float qmax);

/// [exact] C(m x n, ldc) += A^T * B in int32, where A is (k x m, lda) and
/// B is (k x n, ldb), both int8. Accumulation is exact integer
/// arithmetic, so the result is independent of tier and blocking. Callers
/// must keep |a|*|b|*k below INT32_MAX (the bit-slice path guarantees
/// <= 127*127*k).
void gemm_at_i8_i32acc(std::int32_t* c, const std::int8_t* a,
                       const std::int8_t* b, std::int64_t m, std::int64_t n,
                       std::int64_t k, std::int64_t lda, std::int64_t ldb,
                       std::int64_t ldc);

/// [exact] Fused integer ADC shift-add:
///   cur    = baseline[i] + dot_unit * float(dot[i])   (unfused mul+add)
///   acc[i] += shift * (adc(cur) - baseline[i])
/// with adc() the same mid-tread quantizer as adc_shift_add. This is the
/// digital epilogue of the int8 bit-slice pipeline; bit-identical to
/// composing the float ops on float(dot[i]).
void adc_shift_add_i32(float* acc, const std::int32_t* dot,
                       const float* baseline, std::int64_t n, float dot_unit,
                       float full_scale, float steps, float shift);

// Workspace ---------------------------------------------------------------

/// Reusable per-thread scratch for hot paths that would otherwise heap-
/// allocate per call. Each slot is an independent buffer with a stable
/// address across other slots' acquisitions; re-acquiring a slot
/// invalidates its previous span. An acquisition served without growing
/// the buffer counts one `simd/workspace/reuses` (a saved allocation).
/// Not thread-safe: declare instances as function-local thread_local.
class Workspace {
 public:
  static constexpr int kSlots = 12;

  /// Returns a span of `n` floats backed by slot `slot`. Contents are
  /// unspecified (callers fully overwrite before reading).
  std::span<float> floats(int slot, std::size_t n);
  /// Same, for doubles (slots are independent of the float slots).
  std::span<double> doubles(int slot, std::size_t n);
  /// Same, for the integer widths the bit-slice path stages data in.
  std::span<std::int8_t> i8s(int slot, std::size_t n);
  std::span<std::int16_t> i16s(int slot, std::size_t n);
  std::span<std::int32_t> i32s(int slot, std::size_t n);

 private:
  std::vector<float> f_[kSlots];
  std::vector<double> d_[kSlots];
  std::vector<std::int8_t> i8_[kSlots];
  std::vector<std::int16_t> i16_[kSlots];
  std::vector<std::int32_t> i32_[kSlots];
};

/// Thread-safe pool of Workspaces for planned execution. Where the
/// thread_local idiom pins one workspace per (thread, call site) forever,
/// a pool bounds scratch to the number of CONCURRENT users and lets
/// warmed buffers migrate between call sites (an execution-plan task and
/// the GENIEx MLP forward reuse the same allocations). acquire() hands
/// out a warm workspace when one is free and grows the pool otherwise;
/// the lease returns it on destruction.
class WorkspacePool {
 public:
  class Lease {
   public:
    Lease(WorkspacePool* pool, std::unique_ptr<Workspace> ws)
        : pool_(pool), ws_(std::move(ws)) {}
    ~Lease();
    Lease(Lease&&) = default;
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    Workspace& get() { return *ws_; }

   private:
    WorkspacePool* pool_;
    std::unique_ptr<Workspace> ws_;
  };

  Lease acquire();

 private:
  friend class Lease;
  void release(std::unique_ptr<Workspace> ws);

  std::mutex mu_;
  std::vector<std::unique_ptr<Workspace>> free_;
};

/// Process-wide pool shared by the puma execution plans and the blocked
/// model forwards (MlpRegressor::predict_block).
WorkspacePool& shared_workspace_pool();

}  // namespace nvm::simd

// Wall-clock stopwatch for experiment progress reporting.
#pragma once

#include <chrono>

namespace nvm {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace nvm

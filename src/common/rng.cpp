#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace nvm {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream) {
  // Mix base with the stream id through splitmix; streams of the same base
  // are decorrelated regardless of how much any parent Rng was used.
  std::uint64_t s = base ^ (0xd1342543de82ef95ULL * (stream + 1));
  return splitmix64(s);
}

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  NVM_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t x = next();
  while (x >= limit) x = next();
  return x % n;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  NVM_CHECK_LE(lo, hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to keep log finite.
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::sign() { return (next() & 1u) ? 1.0 : -1.0; }

Rng Rng::split(std::uint64_t stream) const {
  return Rng(derive_seed(seed_, stream));
}

}  // namespace nvm

#include "common/file_cache.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include "common/check.h"
#include "common/health.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace nvm {

namespace {

// Every cache_load resolves to exactly one of hit/miss; corruption is
// additionally tallied (as a miss plus "cache/file/corrupt" via the
// health bump in quarantine()).
metrics::Counter& hits() {
  static metrics::Counter& c = metrics::counter("cache/file/hits");
  return c;
}
metrics::Counter& misses() {
  static metrics::Counter& c = metrics::counter("cache/file/misses");
  return c;
}

// "NVMD": checksummed format — magic, tag, payload CRC32, payload size,
// payload bytes. The previous "NVMC" magic (no checksum) is treated as
// stale, so old caches recompute once rather than load unverified.
constexpr std::uint32_t kMagic = 0x4e564d44;

/// Moves a failed entry aside as <path>.corrupt (best-effort, replaces any
/// previous quarantine) so the bad bytes survive for inspection while the
/// slot frees up for recompute.
void quarantine(const std::string& path, const char* why) {
  const std::uint64_t n = bump(HealthCounter::CacheCorrupt);
  if (health_should_log(n))
    NVM_LOG(Warn) << "cache entry " << path << " " << why
                  << "; quarantined + recomputing (corrupt total " << n << ")";
  std::error_code ec;
  std::filesystem::rename(path, path + ".corrupt", ec);
  if (ec) std::filesystem::remove(path, ec);
}

/// What one disk probe found. Corruption is distinguished from a plain
/// miss because it drives the quarantine memo's backoff.
enum class LoadOutcome { kHit, kMiss, kCorrupt };

/// cache_load body; the public wrapper adds hit/miss accounting and the
/// quarantine memo.
LoadOutcome load_entry(const std::string& name, const std::string& tag,
                       const std::function<void(BinaryReader&)>& load);

/// In-memory record of a key that failed verification at least once. The
/// next cache_store of the key parks its payload here; lookups during the
/// backoff window are served from this copy instead of re-probing the
/// evidently unreliable disk slot (and re-paying the recompute).
struct QuarantineMemo {
  int corrupt_count = 0;
  int backoff_remaining = 0;  ///< disk probes to skip before retrying
  bool warned = false;        ///< one warning per key, not per lookup
  bool has_payload = false;
  std::string tag;
  std::string payload;
};

constexpr int kMaxBackoff = 64;

std::mutex& memo_mutex() {
  static std::mutex m;
  return m;
}

std::unordered_map<std::string, QuarantineMemo>& memo_map() {
  // Leaked: cache_load may run during static destruction of other TUs.
  static auto* m = new std::unordered_map<std::string, QuarantineMemo>();
  return *m;
}

/// Replays the memoized payload through `load`. False if the memo holds
/// nothing for this tag (or the payload does not parse).
bool serve_from_memo(const QuarantineMemo& q, const std::string& tag,
                     const std::function<void(BinaryReader&)>& load) {
  if (!q.has_payload || q.tag != tag) return false;
  try {
    std::istringstream ps(q.payload);
    BinaryReader r(ps);
    load(r);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

std::string cache_dir() {
  const char* env = std::getenv("NVMROBUST_CACHE_DIR");
  std::string dir = (env != nullptr && *env != '\0') ? env : "repro_cache";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

bool cache_load(const std::string& name, const std::string& tag,
                const std::function<void(BinaryReader&)>& load) {
  NVM_TRACE_SPAN("cache/file/load");
  static metrics::Counter& memo_hits =
      metrics::counter("cache/file/memo_hits");
  // Backoff fast path: a key that recently failed verification skips the
  // disk probe entirely and serves the memoized payload.
  {
    std::lock_guard<std::mutex> lock(memo_mutex());
    auto it = memo_map().find(name);
    if (it != memo_map().end() && it->second.backoff_remaining > 0) {
      --it->second.backoff_remaining;
      if (serve_from_memo(it->second, tag, load)) {
        memo_hits.add();
        hits().add();
        return true;
      }
    }
  }
  const LoadOutcome out = load_entry(name, tag, load);
  if (out == LoadOutcome::kHit) {
    std::lock_guard<std::mutex> lock(memo_mutex());
    memo_map().erase(name);  // the slot verified again; stand down
    hits().add();
    return true;
  }
  bool served = false;
  {
    std::lock_guard<std::mutex> lock(memo_mutex());
    if (out == LoadOutcome::kCorrupt) {
      QuarantineMemo& q = memo_map()[name];
      ++q.corrupt_count;
      q.backoff_remaining =
          std::min(kMaxBackoff, 1 << std::min(q.corrupt_count, 6));
      if (!q.warned) {
        q.warned = true;
        NVM_LOG(Warn) << "cache entry " << name
                      << " keeps failing verification; memoizing its next "
                         "store and backing off "
                      << q.backoff_remaining
                      << " lookup(s) before re-probing disk";
      }
      served = serve_from_memo(q, tag, load);
    } else {
      // Plain miss. If the key corrupted earlier and we hold its fresh
      // recompute, serve that — the quarantine already emptied the slot
      // once, and a store may be failing to stick.
      auto it = memo_map().find(name);
      if (it != memo_map().end())
        served = serve_from_memo(it->second, tag, load);
    }
  }
  if (served) memo_hits.add();
  (served ? hits() : misses()).add();
  return served;
}

void reset_file_cache_memo_for_tests() {
  std::lock_guard<std::mutex> lock(memo_mutex());
  memo_map().clear();
}

namespace {

LoadOutcome load_entry(const std::string& name, const std::string& tag,
                       const std::function<void(BinaryReader&)>& load) {
  const std::string path = cache_dir() + "/" + name;
  std::ifstream is(path, std::ios::binary);
  if (!is) return LoadOutcome::kMiss;
  std::string payload;
  try {
    BinaryReader header(is);
    if (header.read_u32() != kMagic) {
      NVM_LOG(Info) << "cache entry " << name
                    << " has unknown/legacy format; recomputing";
      return LoadOutcome::kMiss;
    }
    if (header.read_string() != tag) {
      NVM_LOG(Info) << "cache entry " << name << " stale (tag mismatch)";
      return LoadOutcome::kMiss;
    }
    const std::uint32_t want_crc = header.read_u32();
    const std::uint64_t size = header.read_u64();
    NVM_CHECK(size < (1ull << 33), "implausible payload size " << size);
    payload.resize(size);
    is.read(payload.data(), static_cast<std::streamsize>(size));
    if (static_cast<std::uint64_t>(is.gcount()) != size) {
      quarantine(path, "is truncated");
      return LoadOutcome::kCorrupt;
    }
    if (crc32(payload.data(), payload.size()) != want_crc) {
      quarantine(path, "failed its checksum");
      return LoadOutcome::kCorrupt;
    }
  } catch (const std::exception&) {
    // Garbage header: truncated fields or an absurd length prefix.
    quarantine(path, "has a corrupt header");
    return LoadOutcome::kCorrupt;
  }
  try {
    std::istringstream ps(payload);
    BinaryReader r(ps);
    load(r);
    return LoadOutcome::kHit;
  } catch (const std::exception&) {
    // Checksum passed but the payload doesn't parse — a schema change the
    // tag failed to capture, or a bug in the loader. Same recovery path.
    quarantine(path, "parsed inconsistently");
    return LoadOutcome::kCorrupt;
  }
}

/// Writes all `n` bytes to `fd`, riding out short writes and EINTR.
bool write_all(int fd, const char* data, std::size_t n);

}  // namespace

bool atomic_write_file(const std::string& path,
                       std::span<const std::string_view> parts) {
  // Publish via write-tmp / fsync / rename: the fsync barrier keeps a
  // crash around the rename from replacing a good file with a torn one,
  // and every failure path removes the .tmp so aborted writes never leave
  // orphans behind (a leftover .tmp from a crashed process is reclaimed
  // by O_TRUNC on the next write of the same path).
  const std::string tmp = path + ".tmp";
  bool ok = false;
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd >= 0) {
    ok = true;
    for (const std::string_view part : parts)
      ok = ok && write_all(fd, part.data(), part.size());
    ok = ok && ::fsync(fd) == 0;
    ok = (::close(fd) == 0) && ok;
  }
  std::error_code ec;
  if (ok) {
    std::filesystem::rename(tmp, path, ec);
    if (!ec) {
      // Best-effort directory sync so the rename itself is durable too.
      const std::filesystem::path parent =
          std::filesystem::path(path).parent_path();
      const std::string dir = parent.empty() ? "." : parent.string();
      const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
      if (dfd >= 0) {
        (void)::fsync(dfd);
        ::close(dfd);
      }
      return true;
    }
    NVM_LOG(Warn) << "atomic rename failed for " << tmp << ": "
                  << ec.message();
  } else {
    NVM_LOG(Warn) << "atomic write failed for " << tmp;
  }
  std::filesystem::remove(tmp, ec);
  return false;
}

namespace {

bool write_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ::ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

void cache_store(const std::string& name, const std::string& tag,
                 const std::function<void(BinaryWriter&)>& save) {
  NVM_TRACE_SPAN("cache/file/store");
  static metrics::Counter& stores = metrics::counter("cache/file/stores");
  stores.add();
  // Serialize to memory first: the checksum needs the whole payload, and
  // a save() that throws must not leave a half-written file behind.
  std::ostringstream buf;
  {
    BinaryWriter w(buf);
    save(w);
    NVM_CHECK(w.ok(), "cache payload serialization failed for " << name);
  }
  const std::string payload = buf.str();

  // A key under corruption quarantine parks its freshly computed payload
  // in the memo: if the disk slot stays bad (or the store below fails to
  // stick), later lookups serve this copy instead of recomputing again.
  {
    std::lock_guard<std::mutex> lock(memo_mutex());
    auto it = memo_map().find(name);
    if (it != memo_map().end()) {
      it->second.tag = tag;
      it->second.payload = payload;
      it->second.has_payload = true;
    }
  }

  std::ostringstream hbuf;
  {
    BinaryWriter w(hbuf);
    w.write_u32(kMagic);
    w.write_string(tag);
    w.write_u32(crc32(payload.data(), payload.size()));
    w.write_u64(payload.size());
    NVM_CHECK(w.ok(), "cache header serialization failed for " << name);
  }
  const std::string header = hbuf.str();

  // Crash-safe publish through the shared tmp/fsync/rename primitive. I/O
  // failures only warn (inside atomic_write_file): the cache is an
  // accelerator, losing a store is recoverable.
  const std::string path = cache_dir() + "/" + name;
  const std::string_view parts[] = {header, payload};
  (void)atomic_write_file(path, parts);
}

}  // namespace nvm

#include "common/file_cache.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common/check.h"
#include "common/logging.h"

namespace nvm {

namespace {
constexpr std::uint32_t kMagic = 0x4e564d43;  // "NVMC"
}

std::string cache_dir() {
  const char* env = std::getenv("NVMROBUST_CACHE_DIR");
  std::string dir = (env != nullptr && *env != '\0') ? env : "repro_cache";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

bool cache_load(const std::string& name, const std::string& tag,
                const std::function<void(BinaryReader&)>& load) {
  const std::string path = cache_dir() + "/" + name;
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  try {
    BinaryReader r(is);
    if (r.read_u32() != kMagic) return false;
    if (r.read_string() != tag) {
      NVM_LOG(Info) << "cache entry " << name << " stale (tag mismatch)";
      return false;
    }
    load(r);
    return true;
  } catch (const CheckError&) {
    NVM_LOG(Warn) << "cache entry " << name << " corrupt; recomputing";
    return false;
  }
}

void cache_store(const std::string& name, const std::string& tag,
                 const std::function<void(BinaryWriter&)>& save) {
  const std::string path = cache_dir() + "/" + name;
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    NVM_CHECK(static_cast<bool>(os), "cannot open cache file " << tmp);
    BinaryWriter w(os);
    w.write_u32(kMagic);
    w.write_string(tag);
    save(w);
    NVM_CHECK(w.ok(), "cache write failed for " << tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) NVM_LOG(Warn) << "cache rename failed: " << ec.message();
}

}  // namespace nvm

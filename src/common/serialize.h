// Tiny binary serialization helpers for caching trained models and
// surrogate weights. Little-endian, no versioning beyond a caller-supplied
// magic tag — these files are local caches, not an interchange format.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

namespace nvm {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of a byte range,
/// optionally chained via `seed` (pass a previous result to continue).
/// Used by the file cache to detect truncated or bit-flipped payloads.
std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed = 0);

/// Streaming binary writer.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& os) : os_(os) {}

  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i64(std::int64_t v);
  void write_f32(float v);
  void write_f64(double v);
  void write_string(const std::string& s);
  void write_f32_vec(const std::vector<float>& v);
  void write_i64_vec(const std::vector<std::int64_t>& v);

  bool ok() const { return static_cast<bool>(os_); }

 private:
  std::ostream& os_;
};

/// Streaming binary reader; throws nvm::CheckError on truncated input.
class BinaryReader {
 public:
  explicit BinaryReader(std::istream& is) : is_(is) {}

  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int64_t read_i64();
  float read_f32();
  double read_f64();
  /// Length-prefixed reads reject implausible sizes (> 2^32 elements)
  /// before allocating, so a corrupted length field throws CheckError
  /// instead of dying in the allocator.
  std::string read_string();
  std::vector<float> read_f32_vec();
  std::vector<std::int64_t> read_i64_vec();

 private:
  void read_raw(void* dst, std::size_t n);
  std::istream& is_;
};

}  // namespace nvm

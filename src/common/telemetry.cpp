#include "common/telemetry.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <sstream>

#include "common/env.h"
#include "common/metrics.h"

namespace nvm::telemetry {

namespace {

/// Fixed-capacity (tick, value) ring, drop-oldest. Storage is allocated
/// lazily on the first sample so merely tracking a metric costs nothing.
struct Ring {
  std::vector<std::uint64_t> ticks;
  std::vector<double> values;
  std::size_t start = 0;  ///< index of the oldest sample
  std::size_t size = 0;
  std::uint64_t dropped = 0;

  void push(std::uint64_t tick, double value, std::size_t cap) {
    if (ticks.size() != cap) {
      // Capacity changed (tests) or first sample: restart the ring.
      ticks.assign(cap, 0);
      values.assign(cap, 0.0);
      start = size = 0;
    }
    const std::size_t pos = (start + size) % cap;
    ticks[pos] = tick;
    values[pos] = value;
    if (size < cap) {
      ++size;
    } else {
      start = (start + 1) % cap;
      ++dropped;
    }
  }
};

struct Sampler {
  std::mutex mu;
  std::map<std::string, Ring> series;
};

// Leaked on purpose (see metrics.cpp): pulses may arrive from pool
// workers draining after main() returns.
Sampler& sampler() {
  static Sampler* s = new Sampler;
  return *s;
}

/// Cheap empty-check so sample_all costs one relaxed load when nothing is
/// tracked (the common case for unit tests and non-telemetry runs).
std::atomic<std::size_t> g_tracked{0};

std::atomic<std::size_t> g_cap_override{0};
bool g_cap_override_set = false;

std::size_t env_capacity() {
  static const std::size_t cap = [] {
    const std::int64_t v = env_int("NVM_TELEMETRY_CAP", 512);
    return static_cast<std::size_t>(std::max<std::int64_t>(0, v));
  }();
  return cap;
}

/// NVM_TELEMETRY="a,b,c" tracks extra metrics without code changes;
/// parsed once, on the first track()/sample_all().
void track_env_list_once() {
  static std::once_flag once;
  std::call_once(once, [] {
    const std::string list = env_str("NVM_TELEMETRY", "");
    std::istringstream is(list);
    std::string name;
    while (std::getline(is, name, ',')) {
      // Trim surrounding whitespace; skip empty segments.
      const auto b = name.find_first_not_of(" \t");
      if (b == std::string::npos) continue;
      const auto e = name.find_last_not_of(" \t");
      const std::string trimmed = name.substr(b, e - b + 1);
      Sampler& s = sampler();
      std::lock_guard<std::mutex> lock(s.mu);
      if (s.series.try_emplace(trimmed).second)
        g_tracked.fetch_add(1, std::memory_order_relaxed);
    }
  });
}

}  // namespace

std::size_t capacity() {
  if (g_cap_override_set)
    return g_cap_override.load(std::memory_order_relaxed);
  return env_capacity();
}

void set_capacity_for_tests(std::size_t cap) {
  g_cap_override_set = cap != 0;
  g_cap_override.store(cap, std::memory_order_relaxed);
}

void track(const std::string& metric_name) {
  if (capacity() == 0) return;
  track_env_list_once();
  Sampler& s = sampler();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.series.try_emplace(metric_name).second)
    g_tracked.fetch_add(1, std::memory_order_relaxed);
}

void sample_all(std::uint64_t tick) {
  if (g_tracked.load(std::memory_order_relaxed) == 0) return;
  const std::size_t cap = capacity();
  if (cap == 0) return;
  track_env_list_once();

  // One registry snapshot per pulse; name-sorted, so each tracked series
  // resolves with a binary search.
  const std::vector<metrics::MetricValue> all = metrics::snapshot();
  Sampler& s = sampler();
  std::lock_guard<std::mutex> lock(s.mu);
  for (auto& [name, ring] : s.series) {
    const auto it = std::lower_bound(
        all.begin(), all.end(), name,
        [](const metrics::MetricValue& m, const std::string& n) {
          return m.name < n;
        });
    if (it == all.end() || it->name != name) continue;  // not registered yet
    const double v = it->kind == metrics::Kind::Histogram
                         ? static_cast<double>(it->count)
                         : it->value;
    ring.push(tick, v, cap);
  }
}

std::vector<Series> snapshot() {
  Sampler& s = sampler();
  std::lock_guard<std::mutex> lock(s.mu);
  std::vector<Series> out;
  out.reserve(s.series.size());
  for (const auto& [name, ring] : s.series) {
    Series series;
    series.metric = name;
    series.dropped = ring.dropped;
    series.ticks.reserve(ring.size);
    series.values.reserve(ring.size);
    for (std::size_t i = 0; i < ring.size; ++i) {
      const std::size_t pos = (ring.start + i) % ring.ticks.size();
      series.ticks.push_back(ring.ticks[pos]);
      series.values.push_back(ring.values[pos]);
    }
    out.push_back(std::move(series));
  }
  return out;  // std::map iteration is already name-sorted
}

void reset_for_tests() {
  Sampler& s = sampler();
  std::lock_guard<std::mutex> lock(s.mu);
  s.series.clear();
  g_tracked.store(0, std::memory_order_relaxed);
}

}  // namespace nvm::telemetry

#include "data/cifar_loader.h"

#include <fstream>

#include "common/check.h"

namespace nvm::data {

namespace {
constexpr std::int64_t kImageBytes = 3 * 32 * 32;
}

CifarBatch load_cifar(std::istream& in, CifarFormat format,
                      std::int64_t max_records) {
  CifarBatch batch;
  const int label_bytes = (format == CifarFormat::kCifar10) ? 1 : 2;
  std::vector<unsigned char> record(
      static_cast<std::size_t>(label_bytes + kImageBytes));

  while (max_records < 0 ||
         static_cast<std::int64_t>(batch.images.size()) < max_records) {
    in.read(reinterpret_cast<char*>(record.data()),
            static_cast<std::streamsize>(record.size()));
    if (in.gcount() == 0 && in.eof()) break;  // clean end of file
    NVM_CHECK(static_cast<std::size_t>(in.gcount()) == record.size(),
              "truncated CIFAR record at index " << batch.images.size());

    std::int64_t label;
    switch (format) {
      case CifarFormat::kCifar10:
        label = record[0];
        break;
      case CifarFormat::kCifar100Coarse:
        label = record[0];
        break;
      default:  // kCifar100Fine
        label = record[1];
        break;
    }
    const std::int64_t max_label =
        format == CifarFormat::kCifar100Fine
            ? 99
            : (format == CifarFormat::kCifar100Coarse ? 19 : 9);
    NVM_CHECK(label <= max_label, "CIFAR label out of range: " << label);

    Tensor img({3, 32, 32});
    float* dst = img.raw();
    const unsigned char* src = record.data() + label_bytes;
    for (std::int64_t i = 0; i < kImageBytes; ++i)
      dst[i] = static_cast<float>(src[i]) / 255.0f;
    batch.images.push_back(std::move(img));
    batch.labels.push_back(label);
  }
  return batch;
}

CifarBatch load_cifar_file(const std::string& path, CifarFormat format,
                           std::int64_t max_records) {
  std::ifstream in(path, std::ios::binary);
  NVM_CHECK(static_cast<bool>(in), "cannot open CIFAR file " << path);
  return load_cifar(in, format, max_records);
}

}  // namespace nvm::data

// Procedural class-conditional image datasets.
//
// Stand-ins for CIFAR-10 / CIFAR-100 / ImageNet (no dataset files are
// available offline): each class is a deterministic "texture recipe" —
// two oriented sinusoidal gratings, a colored blob, and a background
// gradient, all with class-specific parameters — and each instance draws
// per-image jitters (phase, blob position, amplitudes, brightness) plus
// pixel noise. The resulting tasks sit in the regime the paper needs:
// small ResNets reach high clean accuracy, yet the decision boundary is
// close enough for l_inf-bounded adversarial perturbations to flip
// predictions, and gradients transfer between independently trained
// models (prerequisite for black-box attacks).
//
// Pixels are RGB in [0, 1], shape (3, H, W).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace nvm::data {

struct DatasetSpec {
  std::string name = "synth";
  std::int64_t classes = 10;
  std::int64_t image_size = 12;
  std::int64_t train_count = 800;
  std::int64_t test_count = 256;
  std::uint64_t seed = 100;
  /// Pixel noise stddev; higher makes the task harder.
  float noise = 0.10f;
};

struct Dataset {
  DatasetSpec spec;
  std::vector<Tensor> train_images;
  std::vector<std::int64_t> train_labels;
  std::vector<Tensor> test_images;
  std::vector<std::int64_t> test_labels;
};

/// Generates the full dataset deterministically from spec.seed.
Dataset make_synth_vision(const DatasetSpec& spec);

/// Generates a single image of class `label` with instance stream `index`
/// (index disjoint from the train/test streams yields fresh data, e.g. for
/// black-box surrogate queries).
Tensor synth_image(const DatasetSpec& spec, std::int64_t label,
                   std::uint64_t index);

}  // namespace nvm::data

#include "data/synth_vision.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace nvm::data {

namespace {

/// Deterministic per-class texture recipe.
struct ClassRecipe {
  // Two gratings: frequency (cycles per image), orientation, color mix.
  double freq[2], theta[2];
  float grating_rgb[2][3];
  // Blob: nominal center (fraction of image), radius fraction, color.
  double blob_cx, blob_cy, blob_r;
  float blob_rgb[3];
  // Background gradient direction and colors.
  double bg_theta;
  float bg_lo[3], bg_hi[3];

  ClassRecipe(const DatasetSpec& spec, std::int64_t label) {
    Rng rng = Rng(spec.seed).split(0xC1A55000u + static_cast<std::uint64_t>(label));
    // Stratify the primary grating by class id so recipes are guaranteed
    // distinct even for close random draws: class k gets a dedicated
    // orientation sector and a frequency band.
    const double sector =
        static_cast<double>(label) / static_cast<double>(spec.classes);
    freq[0] = 1.0 + 2.5 * ((label % 4) / 3.0) + rng.uniform(-0.15, 0.15);
    theta[0] = M_PI * sector + rng.uniform(-0.08, 0.08);
    freq[1] = rng.uniform(1.0, 3.5);
    theta[1] = rng.uniform(0.0, M_PI);
    for (int g = 0; g < 2; ++g)
      for (auto& c : grating_rgb[g])
        c = static_cast<float>(rng.uniform(0.1, 0.9));
    blob_cx = rng.uniform(0.25, 0.75);
    blob_cy = rng.uniform(0.25, 0.75);
    blob_r = rng.uniform(0.15, 0.3);
    // Class-dominant hue: one channel is strong, the others weak.
    const int hue = static_cast<int>(label % 3);
    for (int c = 0; c < 3; ++c)
      blob_rgb[c] = static_cast<float>(c == hue ? rng.uniform(0.8, 1.0)
                                                : rng.uniform(0.1, 0.4));
    bg_theta = rng.uniform(0.0, M_PI);
    for (auto& c : bg_lo) c = static_cast<float>(rng.uniform(0.0, 0.4));
    for (auto& c : bg_hi) c = static_cast<float>(rng.uniform(0.3, 0.8));
  }
};

}  // namespace

Tensor synth_image(const DatasetSpec& spec, std::int64_t label,
                   std::uint64_t index) {
  NVM_CHECK(label >= 0 && label < spec.classes, "label=" << label);
  const ClassRecipe recipe(spec, label);
  // Instance jitter stream: unique per (label, index).
  Rng rng = Rng(spec.seed).split(
      0x11157A7CEu ^ (static_cast<std::uint64_t>(label) << 32) ^ index);

  const double phase[2] = {rng.uniform(0.0, 2 * M_PI),
                           rng.uniform(0.0, 2 * M_PI)};
  const double amp[2] = {rng.uniform(0.5, 1.0), rng.uniform(0.4, 1.0)};
  const double dtheta[2] = {rng.uniform(-0.22, 0.22), rng.uniform(-0.22, 0.22)};
  const double bx = recipe.blob_cx + rng.uniform(-0.18, 0.18);
  const double by = recipe.blob_cy + rng.uniform(-0.18, 0.18);
  const double br = recipe.blob_r * rng.uniform(0.7, 1.35);
  const double blob_amp = rng.uniform(0.55, 1.0);
  const float brightness = static_cast<float>(rng.uniform(0.75, 1.25));

  // Distractor: half the images carry a faint overlay of another class's
  // primary grating, the intra-class-variability analogue that keeps the
  // decision boundary close (CIFAR images contain confusing context too).
  const bool has_distractor = rng.bernoulli(0.5);
  const std::int64_t other =
      (label + 1 + static_cast<std::int64_t>(
                       rng.uniform_index(static_cast<std::uint64_t>(
                           spec.classes - 1)))) % spec.classes;
  const ClassRecipe distractor(spec, other);
  const double d_phase = rng.uniform(0.0, 2 * M_PI);
  const double d_amp = has_distractor ? rng.uniform(0.35, 0.6) : 0.0;

  const std::int64_t hw = spec.image_size;
  Tensor img({3, hw, hw});
  for (std::int64_t y = 0; y < hw; ++y) {
    for (std::int64_t x = 0; x < hw; ++x) {
      const double u = static_cast<double>(x) / (hw - 1);
      const double v = static_cast<double>(y) / (hw - 1);
      // Background gradient.
      const double t = 0.5 + 0.5 * ((u - 0.5) * std::cos(recipe.bg_theta) +
                                    (v - 0.5) * std::sin(recipe.bg_theta));
      float rgb[3];
      for (int c = 0; c < 3; ++c)
        rgb[c] = recipe.bg_lo[c] +
                 static_cast<float>(t) * (recipe.bg_hi[c] - recipe.bg_lo[c]);
      // Gratings.
      for (int g = 0; g < 2; ++g) {
        const double th = recipe.theta[g] + dtheta[g];
        const double s = std::sin(2 * M_PI * recipe.freq[g] *
                                      (u * std::cos(th) + v * std::sin(th)) +
                                  phase[g]);
        const float val = static_cast<float>(0.5 * amp[g] * s);
        for (int c = 0; c < 3; ++c) rgb[c] += val * recipe.grating_rgb[g][c];
      }
      if (d_amp > 0.0) {
        const double s = std::sin(
            2 * M_PI * distractor.freq[0] *
                (u * std::cos(distractor.theta[0]) +
                 v * std::sin(distractor.theta[0])) +
            d_phase);
        const float val = static_cast<float>(0.5 * d_amp * s);
        for (int c = 0; c < 3; ++c) rgb[c] += val * distractor.grating_rgb[0][c];
      }
      // Blob (smooth bump).
      const double d2 = (u - bx) * (u - bx) + (v - by) * (v - by);
      const double bump = blob_amp * std::exp(-d2 / (2 * br * br));
      for (int c = 0; c < 3; ++c)
        rgb[c] += static_cast<float>(bump) * recipe.blob_rgb[c];
      // Noise, brightness, clamp.
      for (int c = 0; c < 3; ++c) {
        float val = rgb[c] * 0.5f * brightness +
                    static_cast<float>(rng.normal(0.0, spec.noise));
        img.at(c, y, x) = std::clamp(val, 0.0f, 1.0f);
      }
    }
  }
  return img;
}

Dataset make_synth_vision(const DatasetSpec& spec) {
  NVM_CHECK(spec.classes > 1 && spec.image_size >= 8);
  Dataset ds;
  ds.spec = spec;
  // Balanced classes, interleaved; instance indices partition train/test.
  for (std::int64_t i = 0; i < spec.train_count; ++i) {
    const std::int64_t label = i % spec.classes;
    ds.train_images.push_back(
        synth_image(spec, label, static_cast<std::uint64_t>(i)));
    ds.train_labels.push_back(label);
  }
  for (std::int64_t i = 0; i < spec.test_count; ++i) {
    const std::int64_t label = i % spec.classes;
    ds.test_images.push_back(synth_image(
        spec, label, 0x7E570000ULL + static_cast<std::uint64_t>(i)));
    ds.test_labels.push_back(label);
  }
  return ds;
}

}  // namespace nvm::data

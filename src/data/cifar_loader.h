// Loader for the standard CIFAR-10 / CIFAR-100 binary format.
//
// The experiments in this repo run on synthetic stand-ins (no dataset
// files ship offline), but the pipeline is dataset-agnostic: anyone with
// the real `cifar-10-batches-bin` / `cifar-100-binary` files can load them
// here and pass the images straight to the trainer, the crossbar
// deployment, and the attacks.
//
// Format (per record, no headers):
//   CIFAR-10 : 1 label byte + 3072 pixel bytes (R plane, G plane, B plane)
//   CIFAR-100: 1 coarse label byte + 1 fine label byte + 3072 pixel bytes
// Pixels are row-major 32x32 per channel; bytes map to floats in [0, 1].
#pragma once

#include <cstdint>
#include <istream>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace nvm::data {

struct CifarBatch {
  std::vector<Tensor> images;  ///< (3, 32, 32) floats in [0, 1]
  std::vector<std::int64_t> labels;
};

enum class CifarFormat {
  kCifar10,        ///< 1 label byte per record
  kCifar100Fine,   ///< 2 label bytes; keep the fine (100-class) label
  kCifar100Coarse  ///< 2 label bytes; keep the coarse (20-class) label
};

/// Parses CIFAR binary records from a stream until EOF (or `max_records`).
/// Throws nvm::CheckError on a truncated record.
CifarBatch load_cifar(std::istream& in, CifarFormat format,
                      std::int64_t max_records = -1);

/// Convenience: loads a file by path. Throws on open failure.
CifarBatch load_cifar_file(const std::string& path, CifarFormat format,
                           std::int64_t max_records = -1);

}  // namespace nvm::data

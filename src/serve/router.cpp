#include "serve/router.h"

#include <algorithm>

#include "common/check.h"

namespace nvm::serve {

const char* to_string(DispatchPolicy p) {
  switch (p) {
    case DispatchPolicy::RoundRobin: return "round_robin";
    case DispatchPolicy::ConsistentHash: return "consistent_hash";
    case DispatchPolicy::LeastLoaded: return "least_loaded";
  }
  return "unknown";
}

bool try_parse_policy(const std::string& text, DispatchPolicy* out) {
  if (text == "round_robin") *out = DispatchPolicy::RoundRobin;
  else if (text == "consistent_hash") *out = DispatchPolicy::ConsistentHash;
  else if (text == "least_loaded") *out = DispatchPolicy::LeastLoaded;
  else return false;
  return true;
}

std::uint64_t mix64(std::uint64_t x) {
  // splitmix64 finalizer: full-avalanche, bijective, no state.
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

HashRing::HashRing(const std::vector<std::int64_t>& shard_ids, int vnodes) {
  NVM_CHECK(!shard_ids.empty(), "hash ring needs at least one shard");
  NVM_CHECK_GT(vnodes, 0);
  ring_.reserve(shard_ids.size() * static_cast<std::size_t>(vnodes));
  for (std::int64_t shard : shard_ids) {
    NVM_CHECK_GE(shard, 0);
    for (int r = 0; r < vnodes; ++r) {
      // Point hash depends only on (shard, replica) — adding or removing
      // a shard never moves the survivors' points.
      const std::uint64_t h =
          mix64(mix64(static_cast<std::uint64_t>(shard)) +
                static_cast<std::uint64_t>(r));
      ring_.push_back({h, shard});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    // Shard id breaks (astronomically unlikely) hash ties so the order is
    // fully determined by the inputs.
    return a.hash != b.hash ? a.hash < b.hash : a.shard < b.shard;
  });
}

std::int64_t HashRing::owner(std::uint64_t key) const {
  const std::uint64_t h = mix64(key);
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const Point& p, std::uint64_t v) { return p.hash < v; });
  return it == ring_.end() ? ring_.front().shard : it->shard;  // wrap
}

Router::Router(std::int64_t n_shards, DispatchPolicy policy, int vnodes)
    : n_(n_shards),
      policy_(policy),
      ring_([n_shards] {
        std::vector<std::int64_t> ids(static_cast<std::size_t>(n_shards));
        for (std::size_t i = 0; i < ids.size(); ++i)
          ids[i] = static_cast<std::int64_t>(i);
        return ids;
      }(), vnodes) {
  NVM_CHECK_GT(n_, 0);
}

std::int64_t Router::route(std::uint64_t key,
                           const std::vector<std::int64_t>& loads) {
  switch (policy_) {
    case DispatchPolicy::RoundRobin:
      return static_cast<std::int64_t>(
          rr_.fetch_add(1, std::memory_order_relaxed) %
          static_cast<std::uint64_t>(n_));
    case DispatchPolicy::ConsistentHash:
      return ring_.owner(key);
    case DispatchPolicy::LeastLoaded: {
      NVM_CHECK_EQ(static_cast<std::int64_t>(loads.size()), n_);
      // Lowest queue depth wins; ties break to the lowest shard index so
      // the choice is a pure function of the load vector.
      std::int64_t best = 0;
      for (std::int64_t i = 1; i < n_; ++i)
        if (loads[static_cast<std::size_t>(i)] <
            loads[static_cast<std::size_t>(best)])
          best = i;
      return best;
    }
  }
  return 0;
}

}  // namespace nvm::serve

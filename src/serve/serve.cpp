#include "serve/serve.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>

#include "common/check.h"
#include "common/env.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/telemetry.h"
#include "common/trace.h"

namespace nvm::serve {

namespace {

using Clock = std::chrono::steady_clock;

// One server's metric family, resolved once per server from its
// ServeOptions::metric_scope (standalone servers keep the historical
// "serve/..." names; cluster shards get "serve/shard<k>/..."). Servers
// constructed with the same scope alias the same process-wide metrics —
// the registry's find-or-create makes re-registration a no-op, so a
// shard's per-model servers tally into one family additively. Every
// submitted request resolves to exactly one terminal counter: served,
// shed, timeouts, cancelled, errors, or rejected_shutdown.
struct ServeMetrics {
  metrics::Counter& requests;
  metrics::Counter& served;
  metrics::Counter& batches;
  metrics::Counter& shed;
  metrics::Counter& timeouts;
  metrics::Counter& cancelled;
  metrics::Counter& errors;
  metrics::Counter& rejected_shutdown;
  /// Admitted-but-undispatched requests. Maintained with Gauge::add (not
  /// set) so several servers sharing the scope aggregate instead of
  /// clobbering each other — the signal the least-loaded router reads.
  metrics::Gauge& queue_depth;
  metrics::Histogram& batch_size;
  metrics::Histogram& queue_latency;
  // Per-request stage histograms (see StageBreakdown in serve.h).
  // Observed once per request; batch-level stages repeat for every rider
  // so the histogram mass reflects what requests experienced, not what
  // the scheduler did.
  metrics::Histogram& stage_batch_form;
  metrics::Histogram& stage_matmul;
  metrics::Histogram& stage_epilogue;

  explicit ServeMetrics(metrics::Scope& s)
      : requests(s.counter("requests")),
        served(s.counter("served")),
        batches(s.counter("batches")),
        shed(s.counter("shed")),
        timeouts(s.counter("timeouts")),
        cancelled(s.counter("cancelled")),
        errors(s.counter("errors")),
        rejected_shutdown(s.counter("rejected_shutdown")),
        queue_depth(s.gauge("queue_depth")),
        batch_size(s.histogram("batch_size",
                               {1, 2, 4, 8, 16, 32, 64, 128, 256})),
        queue_latency(s.histogram("queue_latency_ns")),
        stage_batch_form(s.histogram("stage/batch_form_ns")),
        stage_matmul(s.histogram("stage/matmul_ns")),
        stage_epilogue(s.histogram("stage/epilogue_ns")) {}
};

double ns_between(Clock::time_point a, Clock::time_point b) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

}  // namespace

namespace detail {

/// One in-flight request; shared by the submitter's Ticket and the queue.
struct Request {
  Tensor x;  // flat (feature_dim)
  Clock::time_point enqueued;
  std::int64_t shard = -1;  // serving shard (from ServeOptions::shard)
  std::atomic<bool> cancel_requested{false};

  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Reply reply;

  /// Terminal transition: records the reply (stamping total_ns and the
  /// shard identity) and wakes the ticket holder. Called exactly once per
  /// request.
  void fulfill(Reply&& r) {
    r.total_ns = ns_between(enqueued, Clock::now());
    r.shard = shard;
    {
      std::lock_guard<std::mutex> lock(mu);
      reply = std::move(r);
      done = true;
    }
    cv.notify_all();
  }
};

}  // namespace detail

const char* to_string(ReplyStatus s) {
  switch (s) {
    case ReplyStatus::Ok: return "ok";
    case ReplyStatus::Shed: return "shed";
    case ReplyStatus::Timeout: return "timeout";
    case ReplyStatus::Cancelled: return "cancelled";
    case ReplyStatus::Error: return "error";
    case ReplyStatus::Shutdown: return "shutdown";
  }
  return "unknown";
}

TiledLinearBackend::TiledLinearBackend(
    const Tensor& w, std::shared_ptr<const xbar::MvmModel> model,
    puma::HwConfig hw, float input_scale)
    : tiled_(w, std::move(model), hw), input_scale_(input_scale) {
  // Dynamic (per-call max) scaling would quantize a request differently
  // depending on its batch mates, breaking the determinism contract.
  NVM_CHECK(input_scale_ > 0.0f,
            "TiledLinearBackend needs a fixed positive input_scale, got "
                << input_scale_);
}

Tensor TiledLinearBackend::logits_block(const Tensor& x_block) {
  return tiled_.matmul(x_block, input_scale_);
}

ServeOptions ServeOptions::from_env() {
  ServeOptions o;
  o.max_batch =
      std::max<std::int64_t>(1, env_int("NVM_SERVE_MAX_BATCH", o.max_batch));
  o.flush_us =
      std::max<std::int64_t>(0, env_int("NVM_SERVE_FLUSH_US", o.flush_us));
  o.queue_capacity = std::max<std::int64_t>(
      1, env_int("NVM_SERVE_QUEUE_CAP", o.queue_capacity));
  o.timeout_us =
      std::max<std::int64_t>(0, env_int("NVM_SERVE_TIMEOUT_US", o.timeout_us));
  return o;
}

struct Server::Impl {
  BatchClassifier& backend;
  ServeOptions opt;
  metrics::Scope scope;
  ServeMetrics m;

  std::mutex mu;
  std::condition_variable work;
  std::deque<std::shared_ptr<detail::Request>> queue;
  bool draining = false;

  std::thread scheduler;

  Impl(BatchClassifier& b, ServeOptions o)
      : backend(b), opt(std::move(o)), scope(opt.metric_scope), m(scope) {}

  void scheduler_loop();
  void process_batch(std::vector<std::shared_ptr<detail::Request>>& batch);
};

void Server::Impl::scheduler_loop() {
  // Route the backend's nvm::parallel_for fan-out through the configured
  // pool for the lifetime of this (scheduler) thread.
  std::optional<ThreadPool::ScopedUse> use;
  if (opt.pool != nullptr) use.emplace(*opt.pool);

  for (;;) {
    std::vector<std::shared_ptr<detail::Request>> batch;
    {
      std::unique_lock<std::mutex> lock(mu);
      work.wait(lock, [this] { return draining || !queue.empty(); });
      if (queue.empty()) return;  // draining and fully drained

      // Micro-batch aggregation: take up to max_batch requests, but never
      // hold the head request past its flush deadline. Draining skips the
      // wait entirely — shutdown serves what is queued, promptly.
      const Clock::time_point deadline =
          queue.front()->enqueued + std::chrono::microseconds(opt.flush_us);
      while (static_cast<std::int64_t>(queue.size()) < opt.max_batch &&
             !draining) {
        if (work.wait_until(lock, deadline) == std::cv_status::timeout) break;
      }
      const std::size_t take = std::min<std::size_t>(
          queue.size(), static_cast<std::size_t>(opt.max_batch));
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue.front()));
        queue.pop_front();
      }
      m.queue_depth.add(-static_cast<double>(take));
    }
    process_batch(batch);
  }
}

void Server::Impl::process_batch(
    std::vector<std::shared_ptr<detail::Request>>& batch) {
  NVM_TRACE_SPAN("serve/batch");
  const Clock::time_point assembled = Clock::now();

  // Cancelled and expired requests release their batch slot here, before
  // any analog work is spent on them.
  std::vector<std::shared_ptr<detail::Request>> live;
  live.reserve(batch.size());
  for (auto& req : batch) {
    if (req->cancel_requested.load(std::memory_order_relaxed)) {
      m.cancelled.add();
      Reply r;
      r.status = ReplyStatus::Cancelled;
      req->fulfill(std::move(r));
    } else if (opt.timeout_us > 0 &&
               assembled - req->enqueued >
                   std::chrono::microseconds(opt.timeout_us)) {
      m.timeouts.add();
      Reply r;
      r.status = ReplyStatus::Timeout;
      req->fulfill(std::move(r));
    } else {
      live.push_back(std::move(req));
    }
  }
  if (live.empty()) return;

  const std::int64_t n = static_cast<std::int64_t>(live.size());
  const std::int64_t feat = backend.feature_dim();
  const std::int64_t classes = backend.classes();

  // One request per column, matching the (rows, n) multi-RHS convention
  // of the tiled analog path.
  Tensor x_block({feat, n});
  std::vector<double> queue_ns(static_cast<std::size_t>(n));
  {
    NVM_TRACE_SPAN("serve/stage/batch_form");
    for (std::int64_t k = 0; k < n; ++k) {
      const detail::Request& req = *live[static_cast<std::size_t>(k)];
      const float* src = req.x.raw();
      float* dst = x_block.raw();
      for (std::int64_t i = 0; i < feat; ++i) dst[i * n + k] = src[i];
      queue_ns[static_cast<std::size_t>(k)] =
          ns_between(req.enqueued, assembled);
      m.queue_latency.observe(queue_ns[static_cast<std::size_t>(k)]);
    }
  }
  const Clock::time_point formed = Clock::now();
  const double batch_form_ns = ns_between(assembled, formed);

  Tensor logits;
  try {
    NVM_TRACE_SPAN("serve/stage/matmul");
    logits = backend.logits_block(x_block);
    NVM_CHECK_EQ(logits.dim(0), classes);
    NVM_CHECK_EQ(logits.dim(1), n);
  } catch (const std::exception& e) {
    m.errors.add(static_cast<std::uint64_t>(n));
    NVM_LOG(Error) << "serve backend failed on a batch of " << n << ": "
                   << e.what();
    for (auto& req : live) {
      Reply r;
      r.status = ReplyStatus::Error;
      r.batch_size = n;
      req->fulfill(std::move(r));
    }
    return;
  }
  const Clock::time_point matmul_done = Clock::now();
  const double matmul_ns = ns_between(formed, matmul_done);

  m.batches.add();
  m.batch_size.observe(static_cast<double>(n));
  m.served.add(static_cast<std::uint64_t>(n));
  {
    NVM_TRACE_SPAN("serve/stage/epilogue");
    for (std::int64_t k = 0; k < n; ++k) {
      Reply r;
      r.status = ReplyStatus::Ok;
      r.logits = Tensor({classes});
      for (std::int64_t j = 0; j < classes; ++j)
        r.logits[j] = logits.at(j, k);
      r.label = r.logits.argmax();
      r.batch_size = n;
      r.queue_ns = queue_ns[static_cast<std::size_t>(k)];
      r.stages.queue_wait_ns = r.queue_ns;
      r.stages.batch_form_ns = batch_form_ns;
      r.stages.matmul_ns = matmul_ns;
      // Epilogue up to *this* reply: scatter/argmax work ahead of it in
      // the batch is time the request really waited post-matmul.
      r.stages.epilogue_ns = ns_between(matmul_done, Clock::now());
      m.stage_batch_form.observe(batch_form_ns);
      m.stage_matmul.observe(matmul_ns);
      m.stage_epilogue.observe(r.stages.epilogue_ns);
      live[static_cast<std::size_t>(k)]->fulfill(std::move(r));
    }
  }

  // Streaming-telemetry pulse, one per micro-batch, ticked by the batch
  // counter (no wall clock): tracked serve/* series get their trajectory
  // sampled at the scheduler's natural cadence.
  telemetry::sample_all(m.batches.value());
}

Server::Server(BatchClassifier& backend, ServeOptions opt) : opt_(opt) {
  NVM_CHECK_GT(opt_.max_batch, 0);
  NVM_CHECK_GT(opt_.queue_capacity, 0);
  NVM_CHECK_GE(opt_.flush_us, 0);
  NVM_CHECK_GE(opt_.timeout_us, 0);
  NVM_CHECK_GT(backend.feature_dim(), 0);
  NVM_CHECK_GT(backend.classes(), 0);
  impl_ = std::make_unique<Impl>(backend, opt_);
  // Default streaming-telemetry coverage for this server's scope: the
  // batch counter's trajectory, the queue-depth gauge, and the queue/stage
  // histograms (sampled as cumulative observation counts), pulsed once per
  // micro-batch by this server's scheduler. track() is idempotent, so
  // scope-sharing servers do not double-register.
  telemetry::track(impl_->scope.full_name("batches"));
  telemetry::track(impl_->scope.full_name("served"));
  telemetry::track(impl_->scope.full_name("queue_depth"));
  telemetry::track(impl_->scope.full_name("queue_latency_ns"));
  telemetry::track(impl_->scope.full_name("stage/matmul_ns"));
  impl_->scheduler = std::thread([this] { impl_->scheduler_loop(); });
}

Server::~Server() { drain(); }

Server::Ticket Server::submit(Tensor features) {
  impl_->m.requests.add();
  NVM_CHECK_EQ(features.numel(), impl_->backend.feature_dim());
  auto req = std::make_shared<detail::Request>();
  features.reshape({features.numel()});
  req->x = std::move(features);
  req->enqueued = Clock::now();
  req->shard = opt_.shard;

  bool admitted = false;
  ReplyStatus rejection = ReplyStatus::Shutdown;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (impl_->draining) {
      rejection = ReplyStatus::Shutdown;
    } else if (static_cast<std::int64_t>(impl_->queue.size()) >=
               opt_.queue_capacity) {
      rejection = ReplyStatus::Shed;
    } else {
      impl_->queue.push_back(req);
      admitted = true;
    }
  }
  if (admitted) {
    impl_->m.queue_depth.add(1.0);
    impl_->work.notify_one();
  } else {
    (rejection == ReplyStatus::Shed ? impl_->m.shed
                                    : impl_->m.rejected_shutdown)
        .add();
    Reply r;
    r.status = rejection;
    req->fulfill(std::move(r));
  }
  return Ticket(req);
}

Server::Ticket Server::resolved(ReplyStatus status) {
  auto req = std::make_shared<detail::Request>();
  req->enqueued = Clock::now();
  Reply r;
  r.status = status;
  req->fulfill(std::move(r));
  return Ticket(std::move(req));
}

std::int64_t Server::queue_depth() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return static_cast<std::int64_t>(impl_->queue.size());
}

Reply Server::classify(Tensor features) {
  return submit(std::move(features)).get();
}

void Server::drain() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->draining = true;
  }
  impl_->work.notify_all();
  if (impl_->scheduler.joinable()) impl_->scheduler.join();
}

Reply Server::Ticket::get() {
  if (req_ == nullptr) {
    Reply r;
    r.status = ReplyStatus::Shutdown;
    return r;
  }
  std::unique_lock<std::mutex> lock(req_->mu);
  req_->cv.wait(lock, [this] { return req_->done; });
  return req_->reply;
}

void Server::Ticket::cancel() {
  if (req_ != nullptr)
    req_->cancel_requested.store(true, std::memory_order_relaxed);
}

std::vector<double> poisson_arrivals_us(std::int64_t n, double rate_rps,
                                        std::uint64_t seed) {
  NVM_CHECK_GE(n, 0);
  std::vector<double> out(static_cast<std::size_t>(n), 0.0);
  if (rate_rps <= 0.0) return out;
  double t_us = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    // Gap i is a pure function of (seed, i): inverse-CDF of Exp(rate) on
    // one uniform draw from the request's own derived stream.
    Rng rng(derive_seed(seed, static_cast<std::uint64_t>(i)));
    t_us += -std::log1p(-rng.uniform()) / rate_rps * 1e6;
    out[static_cast<std::size_t>(i)] = t_us;
  }
  return out;
}

double percentile_ms(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(v.size() - 1),
                       q * static_cast<double>(v.size() - 1) + 0.5));
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(idx),
                   v.end());
  return v[idx] / 1e6;
}

TrafficReport run_open_loop(Server& server, std::span<const Tensor> requests,
                            const TrafficOptions& opt) {
  const std::int64_t n = static_cast<std::int64_t>(requests.size());
  const std::vector<double> offsets =
      poisson_arrivals_us(n, opt.rate_rps, opt.seed);

  std::vector<Server::Ticket> tickets(static_cast<std::size_t>(n));
  const Clock::time_point start = Clock::now();
  for (std::int64_t i = 0; i < n; ++i) {
    if (opt.rate_rps > 0.0)
      std::this_thread::sleep_until(
          start + std::chrono::microseconds(static_cast<std::int64_t>(
                      offsets[static_cast<std::size_t>(i)])));
    tickets[static_cast<std::size_t>(i)] =
        server.submit(requests[static_cast<std::size_t>(i)]);
  }

  TrafficReport rep;
  rep.labels.assign(static_cast<std::size_t>(n), -1);
  std::vector<double> total_ns, queue_ns;
  double batch_sum = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    Reply r = tickets[static_cast<std::size_t>(i)].get();
    switch (r.status) {
      case ReplyStatus::Ok:
        ++rep.ok;
        rep.labels[static_cast<std::size_t>(i)] = r.label;
        total_ns.push_back(r.total_ns);
        queue_ns.push_back(r.queue_ns);
        batch_sum += static_cast<double>(r.batch_size);
        break;
      case ReplyStatus::Shed: ++rep.shed; break;
      case ReplyStatus::Timeout: ++rep.timed_out; break;
      case ReplyStatus::Cancelled: ++rep.cancelled; break;
      case ReplyStatus::Error: ++rep.errors; break;
      case ReplyStatus::Shutdown: ++rep.rejected_shutdown; break;
    }
  }
  rep.seconds = ns_between(start, Clock::now()) / 1e9;
  if (rep.ok > 0 && rep.seconds > 0.0)
    rep.throughput_rps = static_cast<double>(rep.ok) / rep.seconds;
  rep.p50_ms = percentile_ms(total_ns, 0.5);
  rep.p99_ms = percentile_ms(total_ns, 0.99);
  rep.queue_p50_ms = percentile_ms(queue_ns, 0.5);
  rep.queue_p99_ms = percentile_ms(queue_ns, 0.99);
  if (rep.ok > 0) rep.mean_batch = batch_sum / static_cast<double>(rep.ok);
  return rep;
}

}  // namespace nvm::serve

// Dispatch layer of the serving cluster: picks the worker shard for each
// request. Three pluggable policies (DESIGN.md §16):
//
//   * RoundRobin      — baseline fairness; shard = counter++ % n.
//   * ConsistentHash  — stable key -> shard affinity over a hash ring with
//                       virtual nodes, so a request key keeps hitting the
//                       same shard (warm solver streams, future per-key
//                       caches) and removing a shard only remaps the keys
//                       it owned (~1/n of the space), never shuffling the
//                       survivors' keys among themselves.
//   * LeastLoaded     — shard with the smallest published queue depth at
//                       submit time (ties break to the lowest index); the
//                       depths come from the per-shard queue_depth gauges
//                       every Server maintains.
//
// Routing is pure dispatch: policies never change WHAT a shard computes,
// only WHERE a request runs, so the cluster's bit-identity contract holds
// under every policy (tests/test_serve_cluster.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace nvm::serve {

enum class DispatchPolicy {
  RoundRobin,
  ConsistentHash,
  LeastLoaded,
};

const char* to_string(DispatchPolicy p);
/// Parses "round_robin" / "consistent_hash" / "least_loaded"; returns
/// false (leaving `out` untouched) on anything else.
bool try_parse_policy(const std::string& text, DispatchPolicy* out);

/// Consistent-hash ring: each shard contributes `vnodes` virtual points at
/// hash(shard, replica); a key is owned by the first point clockwise from
/// hash(key). Deterministic — pure splitmix64 mixing, no process state —
/// so the same (shards, vnodes, key) always maps identically across
/// processes and runs.
class HashRing {
 public:
  /// `shard_ids` need not be contiguous (a drained shard leaves a hole).
  HashRing(const std::vector<std::int64_t>& shard_ids, int vnodes);

  std::int64_t owner(std::uint64_t key) const;
  std::int64_t points() const {
    return static_cast<std::int64_t>(ring_.size());
  }

 private:
  struct Point {
    std::uint64_t hash;
    std::int64_t shard;
  };
  std::vector<Point> ring_;  // sorted by hash
};

/// Splitmix64 finalizer — the ring's hash primitive, exposed for tests.
std::uint64_t mix64(std::uint64_t x);

/// Policy dispatcher over `n` shards. Stateless except for the round-robin
/// cursor; safe for concurrent route() calls.
class Router {
 public:
  Router(std::int64_t n_shards, DispatchPolicy policy, int vnodes);

  DispatchPolicy policy() const { return policy_; }

  /// Shard for `key` given the current per-shard queue depths (`loads`
  /// must have n_shards entries; only LeastLoaded reads it).
  std::int64_t route(std::uint64_t key,
                     const std::vector<std::int64_t>& loads);

 private:
  std::int64_t n_;
  DispatchPolicy policy_;
  HashRing ring_;
  std::atomic<std::uint64_t> rr_{0};
};

}  // namespace nvm::serve

// Sharded multi-model serving cluster: the horizontal-scale tier above
// nvm::serve::Server (DESIGN.md §16).
//
//   submit(model, key, x) ──> Router (round_robin | consistent_hash |
//                │             least_loaded over published queue-depth
//                │             gauges)
//                └──> shard k ──> per-model Server (bounded queue, micro-
//                                 batching scheduler thread, shed/drain)
//
// Each of the N worker shards owns its own thread pool and its own
// independently programmed copy of every resident model's tile groups
// (multi-tenant: several model × crossbar configs resident at once;
// cold-start programming of the same config hits the same deterministic
// programming path — and, for fitted surrogates, the same file-cache
// entries — on every shard). A (shard, model) pair is one Server, so
// admission control, queue bounds, overload shed, and micro-batch
// deadlines are all per-model per-shard: one tenant saturating its queue
// never sheds another tenant's traffic.
//
// Determinism contract (the PR 5 spine, extended): crossbar programming
// has no RNG and every backend is batch-invariant, so shard k's copy of a
// model answers exactly like shard j's — routed results are bit-identical
// to serial classify across shard counts, dispatch policies, and
// NVM_THREADS (tests/test_serve_cluster.cpp pins the full matrix).
// Routing changes only latency, never logits.
//
// Shutdown: drain() stops admission on every (shard, model) server, lets
// each scheduler serve what it admitted, and joins them all. No admitted
// request is lost; late submits resolve to Shutdown tickets.
//
// Metrics: every shard publishes its own "serve/shard<k>/..." family
// (pulsed by that shard's scheduler tick); the router publishes
// "serve/cluster/..." totals.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "serve/router.h"
#include "serve/serve.h"

namespace nvm::serve {

/// One resident model (tenant). `make_backend(shard)` is invoked once per
/// shard at add_model() time — each shard programs and owns its own
/// backend instance, so shards never contend on backend state and a
/// future drift-aware cluster can degrade shards independently.
struct ModelSpec {
  std::string name;  ///< tenant id; sanitized into metric names as needed
  std::function<std::unique_ptr<BatchClassifier>(std::int64_t shard)>
      make_backend;
  /// Per-model admission/batching overrides; negative fields inherit the
  /// cluster-wide ServeOptions defaults.
  std::int64_t max_batch = -1;
  std::int64_t flush_us = -1;
  std::int64_t queue_capacity = -1;
  std::int64_t timeout_us = -1;
};

/// Convenience spec for the standard tiled linear classifier: every shard
/// programs its own TiledMatrix from the same (w, model, hw) — bit-
/// identical copies, since programming is deterministic.
ModelSpec tiled_linear_spec(std::string name, Tensor w,
                            std::shared_ptr<const xbar::MvmModel> model,
                            puma::HwConfig hw, float input_scale);

struct ClusterOptions {
  /// Worker shard count (NVM_CLUSTER_SHARDS).
  std::int64_t shards = 2;
  /// Dispatch policy (NVM_CLUSTER_POLICY: round_robin | consistent_hash |
  /// least_loaded).
  DispatchPolicy policy = DispatchPolicy::LeastLoaded;
  /// Virtual nodes per shard on the consistent-hash ring
  /// (NVM_CLUSTER_VNODES).
  int vnodes = 64;
  /// Threads in each shard's private pool (NVM_CLUSTER_SHARD_THREADS;
  /// 0 selects the NVM_THREADS / hardware default per shard).
  std::int64_t threads_per_shard = 1;
  /// Per-(shard, model) serving defaults; ModelSpec fields override, and
  /// the cluster always overrides pool/metric_scope/shard per shard.
  ServeOptions serve;

  /// Defaults above, overridden by NVM_CLUSTER_* (serve defaults come
  /// from ServeOptions::from_env, i.e. NVM_SERVE_*).
  static ClusterOptions from_env();
};

/// Aggregate + per-shard view of one open-loop traffic run.
struct ClusterTrafficReport {
  TrafficReport total;  ///< labels[i] aligned with requests[i]
  struct ShardLoad {
    std::int64_t ok = 0;             ///< replies served by this shard
    double p50_ms = 0.0, p99_ms = 0.0;  ///< exact, over this shard's Ok
  };
  std::vector<ShardLoad> shards;  ///< indexed by shard
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions opt = ClusterOptions::from_env());
  /// Drains before destruction.
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Programs `spec` on every shard (cold start happens here, not on the
  /// request path) and opens admission for it. Duplicate names throw.
  void add_model(ModelSpec spec);

  bool has_model(const std::string& model) const;
  std::vector<std::string> models() const;

  /// Routes one request for `model` to a shard by (key, policy) and
  /// enqueues it there. `key` is the caller's affinity handle (user id,
  /// request id): consistent_hash pins equal keys to equal shards; the
  /// other policies ignore it. Unknown models resolve immediately to an
  /// Error ticket (counted as serve/cluster/unknown_model).
  Server::Ticket submit(const std::string& model, std::uint64_t key,
                        Tensor features);

  /// Synchronous convenience: submit() + get().
  Reply classify(const std::string& model, std::uint64_t key,
                 Tensor features);

  /// Cluster-wide graceful drain (idempotent; destructor calls it): every
  /// (shard, model) server serves what it admitted, then joins.
  void drain();

  const ClusterOptions& options() const;
  std::int64_t shards() const;
  /// Queued-but-undispatched requests on shard k, summed over its models
  /// (reads the published serve/shard<k>/queue_depth gauge — the same
  /// signal the least-loaded policy routes on).
  std::int64_t shard_queue_depth(std::int64_t shard) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Open-loop Poisson traffic against a cluster: request i targets
/// models[i % models.size()] with key i, submitted at its arrival time
/// (same deterministic arrival model as run_open_loop). Blocks until all
/// replies collect; per-shard latency comes from exact per-reply
/// measurements (Reply::shard), not histogram estimates.
ClusterTrafficReport run_cluster_open_loop(
    Cluster& cluster, std::span<const std::string> models,
    std::span<const Tensor> requests, const TrafficOptions& opt);

}  // namespace nvm::serve

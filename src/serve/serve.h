// Micro-batching inference service: the request path of the repo.
//
// Every earlier entry point is a batch experiment; this layer is the
// deployment story — an always-on analog accelerator answering single
// classification queries (and the interface a query-budgeted black-box
// attacker would actually face). Architecture:
//
//   submit() ──> bounded request queue ──> scheduler thread ──> replies
//                 (admission control:       aggregates up to
//                  Shed when full)          NVM_SERVE_MAX_BATCH requests,
//                                           flushes after NVM_SERVE_FLUSH_US,
//                                           one batched logits_block() per
//                                           micro-batch
//
// The scheduler packs queued single-sample requests into one (features, n)
// block and evaluates it through the batched analog path (TiledMatrix::
// matmul -> per-tile ProgrammedXbar::open_stream() -> mvm_multi_active),
// so serving throughput inherits the PR 4 multi-RHS speedup.
//
// Determinism contract: a reply depends only on the request's features,
// never on what it was batched with — guaranteed when the backend is
// batch-invariant (column k of logits_block(X) is a pure function of
// column k of X). TiledLinearBackend satisfies this with a FIXED input
// scale (per-call dynamic scaling would couple quantization across a
// batch) over models whose streams are stateless (ideal / fast_noise /
// geniex; a warm-starting circuit-solver stream trades this for speed).
// Batch composition, NVM_SERVE_MAX_BATCH, NVM_SERVE_FLUSH_US, and
// NVM_THREADS therefore never change logits or labels — see
// tests/test_serve.cpp and DESIGN.md §12.
//
// Shutdown: drain() (or the destructor) stops admission, serves everything
// already queued (flush deadlines are ignored while draining), fulfills
// every outstanding ticket, and joins the scheduler. No request is lost.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/thread_pool.h"
#include "puma/tiled_mvm.h"
#include "tensor/tensor.h"

namespace nvm::serve {

/// Batched classification backend: features -> logits over a whole
/// micro-batch. Implementations must be batch-invariant (see file
/// comment) for the serving determinism contract to hold, and are only
/// ever called from the server's scheduler thread (no reentrancy needed).
class BatchClassifier {
 public:
  virtual ~BatchClassifier() = default;

  virtual std::int64_t feature_dim() const = 0;
  virtual std::int64_t classes() const = 0;

  /// x_block is (feature_dim, n), one request per column, entries in
  /// [0, input range]; returns (classes, n) logits.
  virtual Tensor logits_block(const Tensor& x_block) = 0;
};

/// Linear classifier resident on crossbar tiles: logits = W x through the
/// tiled, bit-sliced analog GEMM. `input_scale` must be positive — it
/// fixes activation quantization per element so batching cannot change a
/// request's DAC voltages (the batch-invariance requirement).
class TiledLinearBackend final : public BatchClassifier {
 public:
  TiledLinearBackend(const Tensor& w,
                     std::shared_ptr<const xbar::MvmModel> model,
                     puma::HwConfig hw, float input_scale);

  std::int64_t feature_dim() const override { return tiled_.cols(); }
  std::int64_t classes() const override { return tiled_.rows(); }
  Tensor logits_block(const Tensor& x_block) override;

  const puma::TiledMatrix& tiled() const { return tiled_; }

 private:
  puma::TiledMatrix tiled_;
  float input_scale_;
};

/// Terminal state of one request.
enum class ReplyStatus {
  Ok,         ///< served; logits/label are valid
  Shed,       ///< rejected at admission: queue full (backpressure)
  Timeout,    ///< expired in the queue before its batch was assembled
  Cancelled,  ///< cancelled via Ticket::cancel() before dispatch
  Error,      ///< the backend threw while evaluating its batch
  Shutdown,   ///< rejected at admission: server already draining
};
const char* to_string(ReplyStatus s);

/// Per-request serve-path stage breakdown (nanoseconds). The stages tile
/// the request's server-side lifetime: queue_wait (admission -> its batch
/// starts assembling), batch_form (gathering the micro-batch into one RHS
/// block), matmul (the batched analog logits_block call), epilogue
/// (per-column logits scatter + argmax until this reply is fulfilled).
/// batch_form and matmul are properties of the whole micro-batch, shared
/// by every request that rode in it. Exported as serve/stage/* histograms
/// (manifest adds p50/p99) and as trace spans/events.
struct StageBreakdown {
  double queue_wait_ns = 0.0;
  double batch_form_ns = 0.0;
  double matmul_ns = 0.0;
  double epilogue_ns = 0.0;
};

struct Reply {
  ReplyStatus status = ReplyStatus::Shutdown;
  Tensor logits;                ///< (classes), Ok only
  std::int64_t label = -1;      ///< argmax of logits, Ok only
  std::int64_t batch_size = 0;  ///< size of the micro-batch it rode in
  std::int64_t shard = -1;      ///< serving shard (ServeOptions::shard)
  double queue_ns = 0.0;        ///< admission -> batch assembly
  double total_ns = 0.0;        ///< admission -> reply fulfilled
  StageBreakdown stages;        ///< serve-path stage timing, Ok only
};

struct ServeOptions {
  /// Largest micro-batch the scheduler assembles (NVM_SERVE_MAX_BATCH).
  std::int64_t max_batch = 32;
  /// Oldest-request deadline: a partial batch is flushed once its head
  /// request has waited this long (NVM_SERVE_FLUSH_US). 0 flushes
  /// immediately (batches only form while the backend is busy).
  std::int64_t flush_us = 200;
  /// Admission bound: submits beyond this many queued requests are Shed
  /// (NVM_SERVE_QUEUE_CAP).
  std::int64_t queue_capacity = 1024;
  /// Per-request queue timeout; expired requests get a Timeout reply
  /// instead of occupying a batch slot. 0 disables (NVM_SERVE_TIMEOUT_US).
  std::int64_t timeout_us = 0;
  /// Pool the scheduler routes the backend's parallel work through
  /// (nullptr: the NVM_THREADS-sized global pool).
  ThreadPool* pool = nullptr;
  /// Metric/telemetry prefix for this server's series ("serve" ->
  /// serve/requests, serve/batch_size, ...). The cluster sets
  /// "serve/shard<k>" so each shard publishes its own family; servers
  /// sharing a prefix alias the same metrics and tally additively (the
  /// queue-depth gauge aggregates across a shard's per-model servers).
  /// Must be a valid metrics name (lowercase path components).
  std::string metric_scope = "serve";
  /// Shard identity stamped into every Reply (-1: standalone server).
  std::int64_t shard = -1;

  /// Defaults above, overridden by the NVM_SERVE_* environment variables.
  static ServeOptions from_env();
};

namespace detail {
struct Request;
}

/// Asynchronous micro-batching classification server over one backend.
/// submit() is thread-safe; the backend runs on a dedicated scheduler
/// thread owned by the server.
class Server {
 public:
  explicit Server(BatchClassifier& backend,
                  ServeOptions opt = ServeOptions::from_env());
  /// Drains (serves everything admitted) before destruction.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Handle to one in-flight request. get() blocks until the terminal
  /// reply and may be called repeatedly (the reply is retained).
  class Ticket {
   public:
    Ticket() = default;
    /// Blocks until the request reaches a terminal state.
    Reply get();
    /// Requests cancellation; takes effect only if the scheduler has not
    /// yet dispatched the request into a batch (best effort, never blocks).
    void cancel();
    bool valid() const { return req_ != nullptr; }

   private:
    friend class Server;
    explicit Ticket(std::shared_ptr<detail::Request> req)
        : req_(std::move(req)) {}
    std::shared_ptr<detail::Request> req_;
  };

  /// Enqueues one classification request; `features` must hold exactly
  /// feature_dim() values (any shape). Shed/Shutdown rejections resolve
  /// the ticket immediately.
  Ticket submit(Tensor features);

  /// Ticket already resolved to a terminal `status` without touching any
  /// server — for layers above (the cluster router) that reject a request
  /// before it reaches a shard but still owe the caller a uniform handle.
  static Ticket resolved(ReplyStatus status);

  /// Requests admitted but not yet taken into a micro-batch (the value
  /// behind the <scope>/queue_depth gauge the least-loaded router reads).
  std::int64_t queue_depth() const;

  /// Synchronous convenience: submit() + get().
  Reply classify(Tensor features);

  /// Stops admission, serves every queued request, joins the scheduler.
  /// Idempotent; called by the destructor.
  void drain();

  const ServeOptions& options() const { return opt_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  ServeOptions opt_;
};

/// Deterministic open-loop Poisson arrival model: arrival i is offset
/// offsets_us[i] microseconds after the stream epoch, the running sum of
/// i.i.d. Exp(rate) gaps where gap i is drawn from Rng(derive_seed(seed,
/// i)) — a pure function of (n, rate_rps, seed), no wall clock anywhere.
/// rate_rps <= 0 degenerates to all-zero offsets (saturation: every
/// request is due immediately).
std::vector<double> poisson_arrivals_us(std::int64_t n, double rate_rps,
                                        std::uint64_t seed);

/// Open-loop traffic run: submits `requests[i]` at its Poisson arrival
/// time (client clock), then collects every reply.
struct TrafficOptions {
  double rate_rps = 2000.0;  ///< offered load; <= 0 submits back-to-back
  std::uint64_t seed = 1;    ///< arrival-model seed (poisson_arrivals_us)
};

struct TrafficReport {
  std::int64_t ok = 0, shed = 0, timed_out = 0, cancelled = 0, errors = 0,
               rejected_shutdown = 0;
  double seconds = 0.0;         ///< first submit -> last reply collected
  double throughput_rps = 0.0;  ///< ok / seconds
  /// Server-side latency percentiles over Ok replies (exact, computed
  /// from per-request measurements, not histogram estimates).
  double p50_ms = 0.0, p99_ms = 0.0;              ///< admission -> reply
  double queue_p50_ms = 0.0, queue_p99_ms = 0.0;  ///< admission -> batch
  double mean_batch = 0.0;  ///< mean micro-batch size over Ok replies
  /// Per-request labels (-1 where not Ok), for determinism checks.
  std::vector<std::int64_t> labels;
};

/// Drives `server` with one open-loop run. Blocks until every submitted
/// request has a terminal reply (the flush deadline guarantees progress
/// without draining the server).
TrafficReport run_open_loop(Server& server, std::span<const Tensor> requests,
                            const TrafficOptions& opt);

/// Nearest-rank q-percentile in milliseconds over nanosecond samples
/// (exact, the estimator behind TrafficReport percentiles; 0 when empty).
double percentile_ms(std::vector<double> samples_ns, double q);

}  // namespace nvm::serve

#include "serve/cluster.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/env.h"
#include "common/logging.h"
#include "common/metrics.h"

namespace nvm::serve {

ModelSpec tiled_linear_spec(std::string name, Tensor w,
                            std::shared_ptr<const xbar::MvmModel> model,
                            puma::HwConfig hw, float input_scale) {
  ModelSpec spec;
  spec.name = std::move(name);
  // The factory captures by value: every shard programs its own tiles
  // from the same immutable inputs (deterministic, so the copies agree
  // bit-for-bit).
  spec.make_backend = [w = std::move(w), model = std::move(model), hw,
                       input_scale](std::int64_t) {
    return std::make_unique<TiledLinearBackend>(w, model, hw, input_scale);
  };
  return spec;
}

ClusterOptions ClusterOptions::from_env() {
  ClusterOptions o;
  o.shards =
      std::max<std::int64_t>(1, env_int("NVM_CLUSTER_SHARDS", o.shards));
  const std::string policy =
      env_str("NVM_CLUSTER_POLICY", to_string(o.policy));
  if (!try_parse_policy(policy, &o.policy))
    NVM_LOG(Warn) << "NVM_CLUSTER_POLICY '" << policy
                  << "' is not round_robin|consistent_hash|least_loaded; "
                  << "using " << to_string(o.policy);
  o.vnodes = static_cast<int>(std::max<std::int64_t>(
      1, env_int("NVM_CLUSTER_VNODES", o.vnodes)));
  o.threads_per_shard = std::max<std::int64_t>(
      0, env_int("NVM_CLUSTER_SHARD_THREADS", o.threads_per_shard));
  o.serve = ServeOptions::from_env();
  return o;
}

namespace {

/// Router-level metric family ("serve/cluster/...").
struct ClusterMetrics {
  metrics::Counter& requests;       ///< every submit(), routed or not
  metrics::Counter& unknown_model;  ///< rejected before routing
  metrics::Gauge& shards;
  metrics::Gauge& models;

  explicit ClusterMetrics(metrics::Scope& s)
      : requests(s.counter("requests")),
        unknown_model(s.counter("unknown_model")),
        shards(s.gauge("shards")),
        models(s.gauge("models")) {}
};

}  // namespace

struct Cluster::Impl {
  ClusterOptions opt;
  Router router;
  metrics::Scope scope{"serve/cluster"};
  ClusterMetrics m{scope};

  /// One worker shard: a private pool plus this shard's instance of every
  /// resident model. Servers reference their backend, so `backends` must
  /// outlive (declare before) `servers`.
  struct Shard {
    std::unique_ptr<ThreadPool> pool;
    std::map<std::string, std::unique_ptr<BatchClassifier>> backends;
    std::map<std::string, std::unique_ptr<Server>> servers;
    metrics::Gauge* queue_depth = nullptr;  ///< serve/shard<k>/queue_depth
  };
  std::vector<Shard> shards;

  /// Guards the tenant maps (add_model/drain exclusive, submit shared).
  mutable std::shared_mutex tenants_mu;
  bool drained = false;

  explicit Impl(ClusterOptions o)
      : opt(std::move(o)),
        router(opt.shards, opt.policy, opt.vnodes),
        shards(static_cast<std::size_t>(opt.shards)) {
    for (std::size_t k = 0; k < shards.size(); ++k) {
      shards[k].pool = std::make_unique<ThreadPool>(
          static_cast<std::size_t>(opt.threads_per_shard));
      shards[k].queue_depth = &metrics::gauge(
          shard_scope(static_cast<std::int64_t>(k)) + "/queue_depth");
    }
    m.shards.set(static_cast<double>(opt.shards));
  }

  static std::string shard_scope(std::int64_t k) {
    return "serve/shard" + std::to_string(k);
  }

  std::int64_t depth(std::int64_t k) const {
    // The gauge is add-maintained by every server on the shard, so one
    // atomic load sees the whole shard's backlog.
    return static_cast<std::int64_t>(
        shards[static_cast<std::size_t>(k)].queue_depth->value());
  }
};

Cluster::Cluster(ClusterOptions opt) : impl_(std::make_unique<Impl>(opt)) {}

Cluster::~Cluster() { drain(); }

void Cluster::add_model(ModelSpec spec) {
  NVM_CHECK(!spec.name.empty(), "ModelSpec needs a name");
  NVM_CHECK(spec.make_backend != nullptr,
            "ModelSpec '" << spec.name << "' needs a make_backend factory");
  std::unique_lock<std::shared_mutex> lock(impl_->tenants_mu);
  NVM_CHECK(!impl_->drained,
            "cluster is drained; cannot add model '" << spec.name << "'");
  NVM_CHECK(impl_->shards[0].servers.find(spec.name) ==
                impl_->shards[0].servers.end(),
            "model '" << spec.name << "' is already resident");

  // Per-model admission/batching: spec overrides on the cluster defaults.
  ServeOptions base = impl_->opt.serve;
  if (spec.max_batch >= 0) base.max_batch = spec.max_batch;
  if (spec.flush_us >= 0) base.flush_us = spec.flush_us;
  if (spec.queue_capacity >= 0) base.queue_capacity = spec.queue_capacity;
  if (spec.timeout_us >= 0) base.timeout_us = spec.timeout_us;

  // Cold start: program every shard's copy up front, on the caller's
  // thread — the request path never pays for programming.
  std::int64_t feat = -1, classes = -1;
  for (std::int64_t k = 0; k < impl_->opt.shards; ++k) {
    Impl::Shard& shard = impl_->shards[static_cast<std::size_t>(k)];
    auto backend = spec.make_backend(k);
    NVM_CHECK(backend != nullptr,
              "make_backend for '" << spec.name << "' returned null");
    if (k == 0) {
      feat = backend->feature_dim();
      classes = backend->classes();
    } else {
      // Shard copies must present one model: a factory that varied shapes
      // per shard would break routing transparency.
      NVM_CHECK_EQ(backend->feature_dim(), feat);
      NVM_CHECK_EQ(backend->classes(), classes);
    }
    ServeOptions so = base;
    so.pool = shard.pool.get();
    so.metric_scope = Impl::shard_scope(k);
    so.shard = k;
    auto server = std::make_unique<Server>(*backend, so);
    shard.backends.emplace(spec.name, std::move(backend));
    shard.servers.emplace(spec.name, std::move(server));
  }
  impl_->m.models.set(
      static_cast<double>(impl_->shards[0].servers.size()));
}

bool Cluster::has_model(const std::string& model) const {
  std::shared_lock<std::shared_mutex> lock(impl_->tenants_mu);
  return impl_->shards[0].servers.find(model) !=
         impl_->shards[0].servers.end();
}

std::vector<std::string> Cluster::models() const {
  std::shared_lock<std::shared_mutex> lock(impl_->tenants_mu);
  std::vector<std::string> out;
  out.reserve(impl_->shards[0].servers.size());
  for (const auto& [name, server] : impl_->shards[0].servers)
    out.push_back(name);
  return out;
}

Server::Ticket Cluster::submit(const std::string& model, std::uint64_t key,
                               Tensor features) {
  impl_->m.requests.add();
  std::shared_lock<std::shared_mutex> lock(impl_->tenants_mu);

  const auto it = impl_->shards[0].servers.find(model);
  if (it == impl_->shards[0].servers.end()) {
    impl_->m.unknown_model.add();
    return Server::resolved(ReplyStatus::Error);
  }

  std::int64_t shard;
  if (impl_->router.policy() == DispatchPolicy::LeastLoaded) {
    std::vector<std::int64_t> loads(
        static_cast<std::size_t>(impl_->opt.shards));
    for (std::int64_t k = 0; k < impl_->opt.shards; ++k)
      loads[static_cast<std::size_t>(k)] = impl_->depth(k);
    shard = impl_->router.route(key, loads);
  } else {
    shard = impl_->router.route(key, {});
  }
  // The per-(shard, model) server applies admission control (Shed /
  // Shutdown tickets resolve immediately) — routing never blocks.
  return impl_->shards[static_cast<std::size_t>(shard)]
      .servers.at(model)
      ->submit(std::move(features));
}

Reply Cluster::classify(const std::string& model, std::uint64_t key,
                        Tensor features) {
  return submit(model, key, std::move(features)).get();
}

void Cluster::drain() {
  std::unique_lock<std::shared_mutex> lock(impl_->tenants_mu);
  impl_->drained = true;
  // Stop admission everywhere first, then let every scheduler finish:
  // Server::drain() serves what was admitted before joining, so no
  // admitted request is lost anywhere in the cluster.
  for (Impl::Shard& shard : impl_->shards)
    for (auto& [name, server] : shard.servers) server->drain();
}

const ClusterOptions& Cluster::options() const { return impl_->opt; }

std::int64_t Cluster::shards() const { return impl_->opt.shards; }

std::int64_t Cluster::shard_queue_depth(std::int64_t shard) const {
  NVM_CHECK(shard >= 0 && shard < impl_->opt.shards,
            "shard " << shard << " out of range");
  return impl_->depth(shard);
}

ClusterTrafficReport run_cluster_open_loop(
    Cluster& cluster, std::span<const std::string> models,
    std::span<const Tensor> requests, const TrafficOptions& opt) {
  NVM_CHECK(!models.empty(), "run_cluster_open_loop needs >= 1 model");
  using Clock = std::chrono::steady_clock;
  const std::int64_t n = static_cast<std::int64_t>(requests.size());
  const std::vector<double> offsets =
      poisson_arrivals_us(n, opt.rate_rps, opt.seed);

  std::vector<Server::Ticket> tickets(static_cast<std::size_t>(n));
  const Clock::time_point start = Clock::now();
  for (std::int64_t i = 0; i < n; ++i) {
    if (opt.rate_rps > 0.0)
      std::this_thread::sleep_until(
          start + std::chrono::microseconds(static_cast<std::int64_t>(
                      offsets[static_cast<std::size_t>(i)])));
    tickets[static_cast<std::size_t>(i)] = cluster.submit(
        models[static_cast<std::size_t>(i) % models.size()],
        static_cast<std::uint64_t>(i),
        requests[static_cast<std::size_t>(i)]);
  }

  ClusterTrafficReport rep;
  rep.shards.resize(static_cast<std::size_t>(cluster.shards()));
  rep.total.labels.assign(static_cast<std::size_t>(n), -1);
  std::vector<double> total_ns, queue_ns;
  std::vector<std::vector<double>> shard_ns(rep.shards.size());
  double batch_sum = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    Reply r = tickets[static_cast<std::size_t>(i)].get();
    switch (r.status) {
      case ReplyStatus::Ok: {
        ++rep.total.ok;
        rep.total.labels[static_cast<std::size_t>(i)] = r.label;
        total_ns.push_back(r.total_ns);
        queue_ns.push_back(r.queue_ns);
        batch_sum += static_cast<double>(r.batch_size);
        if (r.shard >= 0 &&
            r.shard < static_cast<std::int64_t>(rep.shards.size())) {
          ++rep.shards[static_cast<std::size_t>(r.shard)].ok;
          shard_ns[static_cast<std::size_t>(r.shard)].push_back(r.total_ns);
        }
        break;
      }
      case ReplyStatus::Shed: ++rep.total.shed; break;
      case ReplyStatus::Timeout: ++rep.total.timed_out; break;
      case ReplyStatus::Cancelled: ++rep.total.cancelled; break;
      case ReplyStatus::Error: ++rep.total.errors; break;
      case ReplyStatus::Shutdown: ++rep.total.rejected_shutdown; break;
    }
  }
  rep.total.seconds =
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count() /
      1e9;
  if (rep.total.ok > 0 && rep.total.seconds > 0.0)
    rep.total.throughput_rps =
        static_cast<double>(rep.total.ok) / rep.total.seconds;
  rep.total.p50_ms = percentile_ms(total_ns, 0.5);
  rep.total.p99_ms = percentile_ms(total_ns, 0.99);
  rep.total.queue_p50_ms = percentile_ms(queue_ns, 0.5);
  rep.total.queue_p99_ms = percentile_ms(queue_ns, 0.99);
  if (rep.total.ok > 0)
    rep.total.mean_batch = batch_sum / static_cast<double>(rep.total.ok);
  for (std::size_t k = 0; k < rep.shards.size(); ++k) {
    rep.shards[k].p50_ms = percentile_ms(shard_ns[k], 0.5);
    rep.shards[k].p99_ms = percentile_ms(shard_ns[k], 0.99);
  }
  return rep;
}

}  // namespace nvm::serve

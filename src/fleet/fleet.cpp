#include "fleet/fleet.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace nvm::fleet {

namespace {
/// Stream tag separating chip manufacture from every other consumer of
/// the fleet seed (epoch sampling uses its own tag in the simulator).
constexpr std::uint64_t kChipStream = 0xC41B5EEDULL;
}  // namespace

double ChipInstance::predicted_decay(double fleet_time_s) const {
  if (drift_nu <= 0.0) return 1.0;
  return std::pow(1.0 + age_s(fleet_time_s) / drift_t0, -drift_nu);
}

ChipInstance make_chip(const FleetOptions& opt, std::int64_t id) {
  NVM_CHECK(id >= 0 && id < opt.n_chips,
            "chip id " << id << " outside fleet of " << opt.n_chips);
  Rng c(derive_seed(derive_seed(opt.seed, kChipStream),
                    static_cast<std::uint64_t>(id)));
  ChipInstance chip;
  chip.id = id;
  chip.seed = c.next();
  // One quality factor across all fault modes: a badly-formed die is bad
  // at everything. Rates stay sub-unit partitions under any draw.
  const double f = std::exp(opt.rate_log_sigma * c.normal());
  chip.stuck_on_rate = std::min(0.25, opt.stuck_on_rate * f);
  chip.stuck_off_rate = std::min(0.25, opt.stuck_off_rate * f);
  chip.dead_row_rate = std::min(0.5, opt.dead_row_rate * f);
  chip.dead_col_rate = std::min(0.5, opt.dead_col_rate * f);
  chip.drift_nu = c.uniform(opt.drift_nu_lo, opt.drift_nu_hi);
  chip.drift_t0 = opt.drift_t0;
  chip.programmed_at_s = -c.uniform(0.0, opt.initial_age_spread_s);
  return chip;
}

}  // namespace nvm::fleet

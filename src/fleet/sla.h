// SLA monitoring for the chip fleet.
//
// The operator's contract is not "the mean chip is fine": it is per-
// cohort floors on measured accuracy plus a fleet availability floor.
// SlaMonitor turns each epoch's sampled measurements into a pass/fail
// report against configurable SLOs:
//
//   * availability — alive / (alive + retired), read back from the
//     nvm::metrics registry gauges (fleet/chips_alive, fleet/chips_
//     retired) that the simulator publishes each epoch, so any external
//     scraper sees exactly what the monitor judged;
//   * per-cohort accuracy — sampled chips are bucketed by drift age
//     (cohort_age_s-wide buckets; width 0 = one fleet-wide cohort) and
//     each cohort's mean clean / adversarial accuracy is held against
//     its floor. Cohorts with fewer than min_cohort_samples sampled
//     chips are reported but not judged (the estimator is too noisy).
//
// Every violation bumps the fleet/sla_violations counter; the monitor
// also keeps a running total for end-of-run reporting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/fleet.h"

namespace nvm::fleet {

struct SlaConfig {
  double min_clean_acc = 30.0;    ///< % floor on cohort mean clean accuracy
  /// % floor on cohort mean PGD accuracy; <= 0 disables the check (and it
  /// never fires when PGD was not measured).
  double min_adv_acc = 0.0;
  double min_availability = 0.9;  ///< floor on alive fraction
  /// Age-bucket width for cohorts (seconds); 0 = single fleet cohort.
  double cohort_age_s = 0.0;
  std::int64_t min_cohort_samples = 2;
};

struct CohortStatus {
  std::string name;            ///< "age[0,2s)" or "fleet"
  std::int64_t samples = 0;
  float clean = -1.0f;         ///< cohort mean; -1 = not measured
  float pgd = -1.0f;
  bool judged = false;         ///< enough samples to hold against the SLO
  bool violated = false;
};

struct SlaReport {
  double availability = 1.0;
  bool availability_ok = true;
  std::vector<CohortStatus> cohorts;  ///< ascending age order
  std::int64_t violations = 0;        ///< this epoch
};

class SlaMonitor {
 public:
  explicit SlaMonitor(SlaConfig cfg);

  /// Judges one epoch: availability from the fleet gauges, cohort
  /// accuracy from this epoch's sampled evaluations. Bumps
  /// fleet/sla_violations once per violated SLO.
  SlaReport observe(const std::vector<ChipEval>& sampled);

  std::int64_t total_violations() const { return total_violations_; }
  const SlaConfig& config() const { return cfg_; }

 private:
  SlaConfig cfg_;
  std::int64_t total_violations_ = 0;
};

}  // namespace nvm::fleet

// Fleet-lifetime simulation: population-scale chip handles.
//
// The paper (and PR 2's FaultModel) characterizes ONE die. A deployed
// accelerator product is a *fleet*: thousands-to-millions of dies, each
// with its own silicon lottery (stuck-at / line-open rates, write noise)
// and its own drift clock, all aging while they serve traffic. This
// header defines the population layer:
//
//   * ChipInstance — a cheap handle, a few doubles plus a splittable
//     seed. Holding a million of these costs ~100 MB and creating one is
//     a handful of RNG draws; the expensive FaultModel map and crossbar
//     programming happen only when a chip is *sampled* for evaluation
//     (lazy materialization, see FleetSimulator::materialize).
//   * make_chip — the pure function (fleet seed, chip id) -> handle, via
//     derive_seed, so any subset of the fleet can be reconstructed
//     deterministically on any machine from the manifest seed alone.
//   * ChipEval — one sampled measurement of one chip at one fleet age.
//
// Aging is O(1) per epoch regardless of fleet size: a chip stores the
// fleet time at which it was last programmed, and its drift age is just
// fleet_time - programmed_at. Re-programming (the scheduler's main
// action) moves that stamp forward — the power-law drift law
// G(t) = G_off + (G - G_off)(1 + t/t0)^-nu then sees a young chip again.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "puma/tiled_mvm.h"

namespace nvm::fleet {

/// One physical die. Everything here is derivable from (fleet seed, id);
/// the mutable tail (programmed_at_s, refit, retired, action counts) is
/// the chip's maintenance history.
struct ChipInstance {
  std::int64_t id = 0;
  /// Seed of this die's silicon lottery: feeds FaultModel and
  /// VariationModel chip_seed when materialized.
  std::uint64_t seed = 1;

  // Per-chip fault rates (the "spec sheet" this die drew at manufacture).
  double stuck_on_rate = 0.0;
  double stuck_off_rate = 0.0;
  double dead_row_rate = 0.0;
  double dead_col_rate = 0.0;

  // Per-chip retention: drift exponent varies die-to-die.
  double drift_nu = 0.05;
  double drift_t0 = 1.0;

  /// Fleet time (s) of the last programming. Negative values model field
  /// age already accumulated when the simulation starts.
  double programmed_at_s = 0.0;
  /// True while a surrogate refit subscription is active this epoch:
  /// deployments run with a per-layer output gain fitted on the aged
  /// silicon (digital-side compensation, analog arrays untouched). The
  /// scheduler re-issues — and re-charges — the flag each epoch, since
  /// the fitted gain goes stale as drift continues.
  bool refit = false;
  bool retired = false;

  std::int64_t reprograms = 0;
  std::int64_t refits = 0;  ///< refit subscription epochs paid

  /// Seconds since last programming, as seen at fleet time `t`.
  double age_s(double fleet_time_s) const {
    const double a = fleet_time_s - programmed_at_s;
    return a > 0.0 ? a : 0.0;
  }

  /// The drift law's conductance retention factor (1 + age/t0)^-nu in
  /// (0, 1]; 1 means fresh. This is the scheduler's cheap per-chip aging
  /// feature — O(1), no materialization.
  double predicted_decay(double fleet_time_s) const;

  /// Expected fraction of devices lost to stuck-ats and line opens — the
  /// spec-sheet defect score the scheduler's retirement rule uses. (The
  /// realized fraction of a materialized die is in ChipEval.)
  double expected_defect_fraction() const {
    return stuck_on_rate + stuck_off_rate + dead_row_rate + dead_col_rate;
  }
};

/// Fleet-level population + simulation parameters.
struct FleetOptions {
  std::int64_t n_chips = 64;
  std::int64_t epochs = 6;
  /// Chips evaluated per epoch (the sampling estimator of fleet health);
  /// clamped to the alive population. 0 samples every alive chip.
  std::int64_t sample_per_epoch = 8;
  double dt_s = 2.0;                  ///< epoch duration (drift seconds)
  double initial_age_spread_s = 0.0;  ///< field age at t=0: uniform [0, spread]
  std::uint64_t seed = 7;

  // Population distributions. Each die draws one lognormal quality factor
  // f = exp(rate_log_sigma * N(0,1)) applied to all four fault rates
  // (defective dies are defective across failure modes), and a uniform
  // drift exponent in [drift_nu_lo, drift_nu_hi].
  double stuck_on_rate = 0.0005;
  double stuck_off_rate = 0.002;
  double dead_row_rate = 0.0;
  double dead_col_rate = 0.0;
  double rate_log_sigma = 0.5;
  double drift_nu_lo = 0.03;
  double drift_nu_hi = 0.08;
  double drift_t0 = 1.0;
  double write_sigma = 0.05;
  double process_sigma = 0.03;

  // Evaluation settings (mirrors FaultSweepOptions).
  std::int64_t n_eval = 32;
  bool run_pgd = false;
  bool run_square = false;
  float pgd_eps_255 = 8.0f;
  int pgd_iters = 10;
  int square_queries = 300;
  /// Evaluation replicas; 0 = thread-pool size. Results are identical for
  /// any value (replica-per-chunk fan-out).
  std::int64_t replicas = 0;
  /// Deployment config for non-refit chips (factory calibration). Refit
  /// chips additionally get gain_trim (BN re-estimation is deliberately
  /// excluded — see FleetSimulator).
  puma::HwConfig hw;
};

/// Deterministically manufactures chip `id` of the fleet identified by
/// `opt.seed`. Pure: same (seed, id) -> same die on any machine, any
/// thread count, regardless of which other chips exist.
ChipInstance make_chip(const FleetOptions& opt, std::int64_t id);

/// One sampled measurement of one chip.
struct ChipEval {
  std::int64_t chip_id = 0;
  double age_s = 0.0;
  double decay = 1.0;             ///< predicted retention at eval time
  double defect_fraction = 0.0;   ///< realized (stuck + dead) cell fraction
  bool refit = false;
  float clean = -1.0f;
  float pgd = -1.0f;              ///< -1 = not measured
  float square = -1.0f;           ///< -1 = not measured
};

}  // namespace nvm::fleet

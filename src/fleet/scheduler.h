// Recalibration scheduling: when is maintenance worth its energy?
//
// Drift degrades every chip monotonically; re-programming resets the
// drift clock but costs real write energy (puma::estimate_reprogram_cost
// prices it), a surrogate refit recovers most of the drift loss digitally
// for ~a tenth of that — per epoch, since the fitted gain goes stale as
// the silicon keeps drifting — and a die whose stuck-at population is
// hopeless should stop burning maintenance budget at all. The scheduler owns that
// three-way trade per chip, per epoch, over the whole population —
// using only O(1) handle features (predicted decay, spec-sheet defect
// fraction), never materialization, so it scales to millions of chips.
//
// Policies:
//   * Never          — the do-nothing baseline: fleet accuracy decays.
//   * Always         — re-program every alive chip every epoch: maximum
//                      accuracy, maximum (absurd) energy bill.
//   * Threshold      — act when a chip's predicted retention crosses
//                      configured thresholds (refit early, reprogram
//                      late, retire hopeless silicon).
//   * BudgetedGreedy — Threshold's rules under a per-epoch action cap,
//                      worst chips first (maintenance crews are finite).
//
// bench_fleet_lifetime shows Threshold/BudgetedGreedy strictly beating
// both degenerate baselines on accuracy per unit recalibration energy.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/fleet.h"

namespace nvm::fleet {

/// Per-chip maintenance decision.
enum class Action { None = 0, Refit = 1, Reprogram = 2, Retire = 3 };

enum class PolicyKind { Never, Always, Threshold, BudgetedGreedy };

struct SchedulerConfig {
  PolicyKind policy = PolicyKind::Threshold;
  /// Predicted retention below which the analog arrays are re-programmed.
  /// Kept low by default: re-programming is the expensive last resort once
  /// the digital refit can no longer carry a deeply-drifted chip.
  double reprogram_decay_threshold = 0.60;
  /// Predicted retention below which the chip runs under a surrogate
  /// refit: a per-layer output gain fitted on the aged silicon at
  /// deployment. A refit lasts ONE epoch (the gain goes stale as drift
  /// continues), so the policy re-issues — and re-pays — it every epoch
  /// the chip stays past this threshold.
  double refit_decay_threshold = 0.92;
  /// Spec-sheet defect fraction above which a die is retired outright.
  double retire_defect_fraction = 0.05;
  /// Refit energy as a fraction of a full tile re-programming.
  double refit_cost_fraction = 0.1;
  /// BudgetedGreedy: refits + reprograms allowed per epoch (retirement is
  /// free — it *stops* spending).
  std::int64_t budget_actions_per_epoch = 4;
};

/// What one scheduler epoch did to the population.
struct ActionSummary {
  std::int64_t reprograms = 0;
  std::int64_t refits = 0;
  std::int64_t retirements = 0;
  double energy_nj = 0.0;
};

class RecalibrationScheduler {
 public:
  /// `unit_reprogram_energy_nj` prices one full re-programming of the
  /// deployed network's tile set (puma::estimate_reprogram_cost).
  RecalibrationScheduler(SchedulerConfig cfg, double unit_reprogram_energy_nj);

  /// The per-chip decision rule (Threshold semantics; exposed for tests).
  /// Never/Always short-circuit it in run_epoch.
  Action decide(const ChipInstance& chip, double fleet_time_s) const;

  /// Applies the policy across the population at fleet time `t`, mutating
  /// maintenance state (drift stamps, refit flags, retirement) in place.
  /// Bumps fleet/recalibrations, fleet/refits, fleet/retirements.
  ActionSummary run_epoch(std::vector<ChipInstance>& chips,
                          double fleet_time_s);

  const SchedulerConfig& config() const { return cfg_; }
  double unit_energy_nj() const { return unit_energy_nj_; }
  /// Total energy spent across all run_epoch calls so far.
  double total_energy_nj() const { return total_energy_nj_; }

  static PolicyKind parse_policy(const std::string& name);
  static const char* policy_name(PolicyKind kind);

 private:
  void apply(ChipInstance& chip, Action a, double fleet_time_s,
             ActionSummary& summary);

  SchedulerConfig cfg_;
  double unit_energy_nj_ = 0.0;
  double total_energy_nj_ = 0.0;
};

}  // namespace nvm::fleet

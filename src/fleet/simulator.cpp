#include "fleet/simulator.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <sstream>
#include <utility>

#include "attack/attack_model.h"
#include "common/check.h"
#include "common/metrics.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/evaluator.h"
#include "puma/cost_model.h"
#include "puma/hw_network.h"
#include "xbar/variation.h"

namespace nvm::fleet {

namespace {

/// Stream tag for per-epoch sampling draws (chip manufacture has its own
/// tag in fleet.cpp; the two never collide).
constexpr std::uint64_t kEpochStream = 0x5A3F1EE7ULL;

/// One evaluation replica: a network copy plus (while a chip is being
/// measured) its crossbar deployment. Replica r serves worker chunk r.
struct Replica {
  explicit Replica(const core::PreparedTask& prepared)
      : net(prepared.clone_network()) {}
  nn::Network net;
  std::unique_ptr<puma::HwDeployment> deployment;
};

metrics::Gauge& alive_gauge() {
  static metrics::Gauge& g = metrics::gauge("fleet/chips_alive");
  return g;
}
metrics::Gauge& retired_gauge() {
  static metrics::Gauge& g = metrics::gauge("fleet/chips_retired");
  return g;
}
metrics::Counter& sampled_counter() {
  static metrics::Counter& c = metrics::counter("fleet/chips_sampled");
  return c;
}

/// Deterministic partial Fisher-Yates draw of `want` alive chip ids for
/// epoch `epoch`; depends only on (seed, epoch, alive set).
std::vector<std::int64_t> sample_alive(const std::vector<ChipInstance>& chips,
                                       const FleetOptions& opt,
                                       std::int64_t epoch) {
  std::vector<std::int64_t> alive;
  alive.reserve(chips.size());
  for (const ChipInstance& c : chips)
    if (!c.retired) alive.push_back(c.id);
  const auto n = static_cast<std::int64_t>(alive.size());
  const std::int64_t want =
      opt.sample_per_epoch <= 0 ? n : std::min(opt.sample_per_epoch, n);
  Rng er(derive_seed(derive_seed(opt.seed, kEpochStream),
                     static_cast<std::uint64_t>(epoch)));
  for (std::int64_t i = 0; i < want; ++i) {
    const std::int64_t j =
        i + static_cast<std::int64_t>(
                er.uniform_index(static_cast<std::uint64_t>(n - i)));
    std::swap(alive[static_cast<std::size_t>(i)],
              alive[static_cast<std::size_t>(j)]);
  }
  alive.resize(static_cast<std::size_t>(want));
  std::sort(alive.begin(), alive.end());
  return alive;
}

float mean_or_missing(double sum, std::int64_t n) {
  return n > 0 ? static_cast<float>(sum / static_cast<double>(n)) : -1.0f;
}

std::string fmt_missing(float v) {
  return v < 0.0f ? std::string("-") : core::fmt(v);
}

}  // namespace

FleetSimulator::FleetSimulator(
    core::PreparedTask& prepared,
    std::shared_ptr<const xbar::MvmModel> base_model, FleetOptions opt)
    : prepared_(prepared), base_(std::move(base_model)), opt_(opt) {
  NVM_CHECK(base_ != nullptr, "fleet simulation needs a base model");
  NVM_CHECK(opt_.n_chips >= 1 && opt_.epochs >= 1);
  NVM_CHECK(opt_.dt_s > 0.0, "epoch duration must be positive");
  NVM_CHECK(opt_.n_eval >= 1);
  NVM_CHECK(opt_.drift_nu_lo >= 0.0 && opt_.drift_nu_hi >= opt_.drift_nu_lo);
}

MaterializedChip FleetSimulator::materialize(const ChipInstance& chip,
                                             double fleet_time_s) const {
  xbar::FaultOptions fo;
  fo.stuck_on_rate = chip.stuck_on_rate;
  fo.stuck_off_rate = chip.stuck_off_rate;
  fo.dead_row_rate = chip.dead_row_rate;
  fo.dead_col_rate = chip.dead_col_rate;
  fo.drift_time = chip.age_s(fleet_time_s);
  fo.drift_nu = chip.drift_nu;
  fo.drift_t0 = chip.drift_t0;
  fo.chip_seed = chip.seed;
  auto faults = std::make_shared<xbar::FaultModel>(base_, fo);

  xbar::VariationOptions vo;
  vo.write_sigma = opt_.write_sigma;
  vo.process_sigma = opt_.process_sigma;
  vo.chip_seed = chip.seed;
  // Variation over fault keeps stuck cells stuck: the fault rewrite runs
  // last in the program() chain.
  MaterializedChip m;
  m.faults = faults;
  m.model = std::make_shared<xbar::VariationModel>(faults, vo);
  return m;
}

FleetResult FleetSimulator::run(const SchedulerConfig& sched_cfg,
                                const SlaConfig& sla_cfg) {
  NVM_TRACE_SPAN("fleet/run");

  FleetResult result;
  result.opt = opt_;
  result.scheduler = sched_cfg;
  result.sla = sla_cfg;

  // Manufacture the fleet. Pure per-id derivation: any chip could also be
  // reconstructed on demand without the vector; the handle vector is the
  // only O(n_chips) state in the whole simulation.
  std::vector<ChipInstance> chips;
  chips.reserve(static_cast<std::size_t>(opt_.n_chips));
  for (std::int64_t id = 0; id < opt_.n_chips; ++id)
    chips.push_back(make_chip(opt_, id));

  const std::size_t n_rep =
      opt_.replicas > 0 ? static_cast<std::size_t>(opt_.replicas)
                        : ThreadPool::current().size();
  const auto images = prepared_.eval_images(opt_.n_eval);
  const auto labels = prepared_.eval_labels(opt_.n_eval);
  const std::vector<Tensor> calib = prepared_.calibration_images();
  NVM_CHECK(!images.empty(), "no evaluation images");

  std::vector<std::unique_ptr<Replica>> reps;
  reps.reserve(n_rep);
  for (std::size_t i = 0; i < n_rep; ++i)
    reps.push_back(std::make_unique<Replica>(prepared_));
  std::vector<core::ForwardFn> fns;
  fns.reserve(n_rep);
  for (auto& rep : reps) fns.push_back(core::plain_forward(rep->net));

  // The scheduler's price list: one full re-programming of this network's
  // tile set on this crossbar geometry.
  const puma::ReprogramCost unit = puma::estimate_reprogram_cost(
      reps[0]->net, images[0], base_->config(), opt_.hw);
  result.unit_reprogram_energy_nj = unit.write_energy_nj;

  // Digital baselines + transfer adversarial sets, crafted once.
  result.digital_clean = core::accuracy(fns, images, labels);
  std::vector<Tensor> adv_pgd, adv_square;
  if (opt_.run_pgd || opt_.run_square) {
    std::vector<attack::NetworkAttackModel> attackers;
    attackers.reserve(n_rep);
    for (auto& rep : reps) attackers.emplace_back(rep->net);
    std::vector<attack::AttackModel*> ptrs;
    ptrs.reserve(n_rep);
    for (auto& a : attackers) ptrs.push_back(&a);
    if (opt_.run_pgd) {
      attack::PgdOptions pgd;
      pgd.epsilon = prepared_.task.scaled_eps(opt_.pgd_eps_255);
      pgd.iters = opt_.pgd_iters;
      adv_pgd = core::craft_pgd(ptrs, images, labels, pgd);
      result.digital_pgd = core::accuracy(
          fns, std::span<const Tensor>(adv_pgd), labels);
    }
    if (opt_.run_square) {
      attack::SquareOptions sq;
      sq.epsilon = prepared_.task.scaled_eps(opt_.pgd_eps_255);
      sq.max_queries = opt_.square_queries;
      adv_square = core::craft_square(ptrs, images, labels, sq);
      result.digital_square = core::accuracy(
          fns, std::span<const Tensor>(adv_square), labels);
    }
  }

  RecalibrationScheduler scheduler(sched_cfg, unit.write_energy_nj);
  SlaMonitor sla(sla_cfg);

  // Streaming telemetry over the fleet lifetime: the epoch index is the
  // tick, so the exported series reads as an aging trajectory.
  telemetry::track("fleet/chips_alive");
  telemetry::track("fleet/chips_retired");
  telemetry::track("fleet/chips_sampled");

  double fleet_time_s = 0.0;
  for (std::int64_t epoch = 0; epoch < opt_.epochs; ++epoch) {
    NVM_TRACE_SPAN("fleet/epoch");
    fleet_time_s += opt_.dt_s;

    EpochSummary summary;
    summary.epoch = epoch;
    summary.fleet_time_s = fleet_time_s;
    double age_sum = 0.0;
    for (const ChipInstance& c : chips) {
      if (c.retired) {
        ++summary.retired;
      } else {
        ++summary.alive;
        age_sum += c.age_s(fleet_time_s);
      }
    }
    summary.availability =
        static_cast<double>(summary.alive) /
        static_cast<double>(opt_.n_chips);
    summary.mean_age_s =
        summary.alive > 0 ? age_sum / static_cast<double>(summary.alive)
                          : 0.0;
    alive_gauge().set(static_cast<double>(summary.alive));
    retired_gauge().set(static_cast<double>(summary.retired));

    // Measure a deterministic sample of the alive population. Chip i's
    // evaluation is a pure function of (chip, fleet_time, eval set), so
    // the chunk decomposition — which depends only on (n_sampled,
    // n_rep) — cannot change results, only which replica serves them.
    const std::vector<std::int64_t> sampled =
        sample_alive(chips, opt_, epoch);
    summary.chips.resize(sampled.size());
    parallel_chunks(
        static_cast<std::int64_t>(sampled.size()),
        static_cast<std::int64_t>(n_rep),
        [&](std::int64_t chunk, std::int64_t begin, std::int64_t end) {
          Replica& rep = *reps[static_cast<std::size_t>(chunk)];
          const core::ForwardFn fn = core::plain_forward(rep.net);
          for (std::int64_t i = begin; i < end; ++i) {
            const ChipInstance& chip =
                chips[static_cast<std::size_t>(
                    sampled[static_cast<std::size_t>(i)])];
            const MaterializedChip m = materialize(chip, fleet_time_s);
            puma::HwConfig hw = opt_.hw;
            if (chip.refit) {
              // The surrogate refit: a per-layer output gain least-squares
              // fitted on the aged silicon. Power-law drift is close to a
              // uniform conductance shrink, so this digital-side scalar
              // recovers most of it (BN re-estimation is deliberately NOT
              // part of the refit: re-estimated statistics from the small
              // calibration set are noisy enough to hurt).
              hw.gain_trim = true;
            }
            rep.deployment = std::make_unique<puma::HwDeployment>(
                rep.net, m.model, std::span<const Tensor>(calib), hw);
            ChipEval eval;
            eval.chip_id = chip.id;
            eval.age_s = chip.age_s(fleet_time_s);
            eval.decay = chip.predicted_decay(fleet_time_s);
            eval.refit = chip.refit;
            const auto& map = m.faults->map();
            const auto& cfg = base_->config();
            eval.defect_fraction =
                static_cast<double>(map.stuck_on_cells +
                                    map.stuck_off_cells) /
                static_cast<double>(cfg.rows * cfg.cols);
            eval.clean = core::accuracy(fn, images, labels);
            if (opt_.run_pgd)
              eval.pgd = core::accuracy(
                  fn, std::span<const Tensor>(adv_pgd), labels);
            if (opt_.run_square)
              eval.square = core::accuracy(
                  fn, std::span<const Tensor>(adv_square), labels);
            rep.deployment.reset();
            summary.chips[static_cast<std::size_t>(i)] = std::move(eval);
          }
        });
    sampled_counter().add(sampled.size());

    double clean_sum = 0.0, pgd_sum = 0.0, square_sum = 0.0;
    std::int64_t pgd_n = 0, square_n = 0;
    for (const ChipEval& e : summary.chips) {
      clean_sum += e.clean;
      if (e.pgd >= 0.0f) {
        pgd_sum += e.pgd;
        ++pgd_n;
      }
      if (e.square >= 0.0f) {
        square_sum += e.square;
        ++square_n;
      }
    }
    summary.mean_clean = mean_or_missing(
        clean_sum, static_cast<std::int64_t>(summary.chips.size()));
    summary.mean_pgd = mean_or_missing(pgd_sum, pgd_n);
    summary.mean_square = mean_or_missing(square_sum, square_n);

    // Judge, then maintain: this epoch's numbers describe the fleet the
    // users saw, before the maintenance crew touched anything.
    const SlaReport sla_report = sla.observe(summary.chips);
    summary.sla_violations = sla_report.violations;

    const ActionSummary actions = scheduler.run_epoch(chips, fleet_time_s);
    summary.reprograms = actions.reprograms;
    summary.refits = actions.refits;
    summary.retirements = actions.retirements;
    summary.recal_energy_nj = actions.energy_nj;

    result.total_reprograms += actions.reprograms;
    result.total_refits += actions.refits;
    result.total_retirements += actions.retirements;
    result.total_sla_violations += sla_report.violations;
    result.epochs.push_back(std::move(summary));
    telemetry::sample_all(static_cast<std::uint64_t>(epoch));
  }

  // Lifetime aggregates + the accuracy-per-cost score the bench compares
  // policies on.
  double clean_sum = 0.0, pgd_sum = 0.0;
  std::int64_t clean_n = 0, pgd_n = 0;
  for (const EpochSummary& e : result.epochs) {
    if (e.mean_clean >= 0.0f) {
      clean_sum += e.mean_clean;
      ++clean_n;
    }
    if (e.mean_pgd >= 0.0f) {
      pgd_sum += e.mean_pgd;
      ++pgd_n;
    }
  }
  result.mean_clean = mean_or_missing(clean_sum, clean_n);
  result.mean_pgd = mean_or_missing(pgd_sum, pgd_n);
  result.total_recal_energy_nj = scheduler.total_energy_nj();
  const double fleet_unit = result.unit_reprogram_energy_nj *
                            static_cast<double>(opt_.n_chips);
  result.normalized_recal_cost =
      fleet_unit > 0.0 ? result.total_recal_energy_nj / fleet_unit : 0.0;
  result.maintenance_intensity =
      result.normalized_recal_cost / static_cast<double>(opt_.epochs);
  const double quality =
      result.mean_pgd >= 0.0f
          ? 0.5 * (static_cast<double>(result.mean_clean) +
                   static_cast<double>(result.mean_pgd))
          : static_cast<double>(result.mean_clean);
  result.score = quality / (1.0 + result.maintenance_intensity);
  return result;
}

void print_fleet_result(const core::Task& task, const std::string& model_name,
                        const FleetResult& result) {
  core::TablePrinter table({"epoch", "t(s)", "alive", "avail", "age(s)",
                            "clean %", "PGD %", "Square %", "viol", "reprog",
                            "refit", "retire"});
  for (const EpochSummary& e : result.epochs) {
    std::ostringstream age;
    age.precision(3);
    age << e.mean_age_s;
    std::ostringstream t;
    t.precision(4);
    t << e.fleet_time_s;
    table.add_row({std::to_string(e.epoch), t.str(), std::to_string(e.alive),
                   core::fmt(static_cast<float>(100.0 * e.availability)),
                   age.str(), fmt_missing(e.mean_clean),
                   fmt_missing(e.mean_pgd), fmt_missing(e.mean_square),
                   std::to_string(e.sla_violations),
                   std::to_string(e.reprograms), std::to_string(e.refits),
                   std::to_string(e.retirements)});
  }
  table.print(
      "Fleet lifetime: " + task.name + " on " + model_name + " (" +
      std::to_string(result.opt.n_chips) + " chips, policy=" +
      RecalibrationScheduler::policy_name(result.scheduler.policy) +
      ", seed=" + std::to_string(result.opt.seed) + ")");
  std::printf(
      "digital clean=%.2f%%%s | fleet mean clean=%.2f%%%s | "
      "recal energy=%.3g nJ (%.3g fleet units) | score=%.4f | "
      "SLA violations=%lld\n",
      result.digital_clean,
      result.digital_pgd >= 0.0f
          ? (" pgd=" + core::fmt(result.digital_pgd) + "%").c_str()
          : "",
      result.mean_clean,
      result.mean_pgd >= 0.0f
          ? (" pgd=" + core::fmt(result.mean_pgd) + "%").c_str()
          : "",
      result.total_recal_energy_nj, result.normalized_recal_cost,
      result.score,
      static_cast<long long>(result.total_sla_violations));
}

void emit_fleet_manifest(const FleetResult& result, core::RunManifest& man) {
  std::vector<double> clean, pgd, square, avail, age, viol, energy;
  for (const EpochSummary& e : result.epochs) {
    clean.push_back(e.mean_clean);
    pgd.push_back(e.mean_pgd);
    square.push_back(e.mean_square);
    avail.push_back(e.availability);
    age.push_back(e.mean_age_s);
    viol.push_back(static_cast<double>(e.sla_violations));
    energy.push_back(e.recal_energy_nj);
  }
  man.add_series("fleet/clean_acc", std::move(clean));
  if (result.mean_pgd >= 0.0f) man.add_series("fleet/pgd_acc", std::move(pgd));
  if (!result.epochs.empty() && result.epochs.front().mean_square >= 0.0f)
    man.add_series("fleet/square_acc", std::move(square));
  man.add_series("fleet/availability", std::move(avail));
  man.add_series("fleet/mean_age_s", std::move(age));
  man.add_series("fleet/sla_violations", std::move(viol));
  man.add_series("fleet/recal_energy_nj", std::move(energy));

  man.add_result("fleet/digital_clean", result.digital_clean);
  if (result.digital_pgd >= 0.0f)
    man.add_result("fleet/digital_pgd", result.digital_pgd);
  man.add_result("fleet/mean_clean", result.mean_clean);
  if (result.mean_pgd >= 0.0f)
    man.add_result("fleet/mean_pgd", result.mean_pgd);
  man.add_result("fleet/score", result.score);
  man.add_result("fleet/unit_reprogram_energy_nj",
                 result.unit_reprogram_energy_nj);
  man.add_result("fleet/total_recal_energy_nj", result.total_recal_energy_nj);
  man.add_result("fleet/normalized_recal_cost", result.normalized_recal_cost);
  man.add_result("fleet/maintenance_intensity", result.maintenance_intensity);
  man.add_result("fleet/total_reprograms",
                 static_cast<double>(result.total_reprograms));
  man.add_result("fleet/total_refits",
                 static_cast<double>(result.total_refits));
  man.add_result("fleet/total_retirements",
                 static_cast<double>(result.total_retirements));
  man.add_result("fleet/total_sla_violations",
                 static_cast<double>(result.total_sla_violations));
  // Everything needed to reconstruct this exact run.
  man.add_result("fleet/seed", static_cast<double>(result.opt.seed));
  man.add_result("fleet/n_chips", static_cast<double>(result.opt.n_chips));
  man.add_result("fleet/epochs", static_cast<double>(result.opt.epochs));
  man.add_result("fleet/dt_s", result.opt.dt_s);
  man.add_result("fleet/sample_per_epoch",
                 static_cast<double>(result.opt.sample_per_epoch));
  man.set_note("fleet/policy", RecalibrationScheduler::policy_name(
                                   result.scheduler.policy));
}

}  // namespace nvm::fleet

#include "fleet/sla.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "common/check.h"
#include "common/health.h"
#include "common/logging.h"
#include "common/metrics.h"

namespace nvm::fleet {

namespace {

metrics::Counter& violation_counter() {
  static metrics::Counter& c = metrics::counter("fleet/sla_violations");
  return c;
}

std::string cohort_label(std::int64_t bucket, double width_s) {
  if (width_s <= 0.0) return "fleet";
  std::ostringstream os;
  os << "age[" << static_cast<double>(bucket) * width_s << ","
     << static_cast<double>(bucket + 1) * width_s << "s)";
  return os.str();
}

}  // namespace

SlaMonitor::SlaMonitor(SlaConfig cfg) : cfg_(cfg) {
  NVM_CHECK(cfg_.min_availability >= 0.0 && cfg_.min_availability <= 1.0);
  NVM_CHECK(cfg_.cohort_age_s >= 0.0);
  NVM_CHECK(cfg_.min_cohort_samples >= 1);
}

SlaReport SlaMonitor::observe(const std::vector<ChipEval>& sampled) {
  SlaReport report;

  // Availability comes from the published gauges, not a private channel:
  // the monitor judges the same numbers any metrics scraper sees.
  const double alive = metrics::gauge("fleet/chips_alive").value();
  const double retired = metrics::gauge("fleet/chips_retired").value();
  const double population = alive + retired;
  report.availability = population > 0.0 ? alive / population : 1.0;
  report.availability_ok = report.availability >= cfg_.min_availability;
  if (!report.availability_ok) ++report.violations;

  // Bucket sampled chips by drift age; std::map keeps ascending order.
  std::map<std::int64_t, std::vector<const ChipEval*>> buckets;
  for (const ChipEval& e : sampled) {
    const std::int64_t b =
        cfg_.cohort_age_s > 0.0
            ? static_cast<std::int64_t>(std::floor(e.age_s / cfg_.cohort_age_s))
            : 0;
    buckets[b].push_back(&e);
  }

  for (const auto& [bucket, evals] : buckets) {
    CohortStatus status;
    status.name = cohort_label(bucket, cfg_.cohort_age_s);
    status.samples = static_cast<std::int64_t>(evals.size());
    double clean_sum = 0.0, pgd_sum = 0.0;
    std::int64_t pgd_n = 0;
    for (const ChipEval* e : evals) {
      clean_sum += e->clean;
      if (e->pgd >= 0.0f) {
        pgd_sum += e->pgd;
        ++pgd_n;
      }
    }
    status.clean = static_cast<float>(clean_sum /
                                      static_cast<double>(evals.size()));
    if (pgd_n > 0)
      status.pgd = static_cast<float>(pgd_sum / static_cast<double>(pgd_n));
    status.judged = status.samples >= cfg_.min_cohort_samples;
    if (status.judged) {
      if (status.clean < cfg_.min_clean_acc) status.violated = true;
      if (cfg_.min_adv_acc > 0.0 && status.pgd >= 0.0f &&
          status.pgd < cfg_.min_adv_acc)
        status.violated = true;
    }
    if (status.violated) ++report.violations;
    report.cohorts.push_back(std::move(status));
  }

  if (report.violations > 0) {
    const auto total = violation_counter().add(
        static_cast<std::uint64_t>(report.violations));
    if (health_should_log(total))
      NVM_LOG(Warn) << "fleet SLA: " << report.violations
                    << " violation(s) this epoch (availability="
                    << report.availability << ")";
  }
  total_violations_ += report.violations;
  return report;
}

}  // namespace nvm::fleet

#include "fleet/scheduler.h"

#include <algorithm>

#include "common/check.h"
#include "common/metrics.h"

namespace nvm::fleet {

namespace {

metrics::Counter& reprogram_counter() {
  static metrics::Counter& c = metrics::counter("fleet/recalibrations");
  return c;
}
metrics::Counter& refit_counter() {
  static metrics::Counter& c = metrics::counter("fleet/refits");
  return c;
}
metrics::Counter& retire_counter() {
  static metrics::Counter& c = metrics::counter("fleet/retirements");
  return c;
}

}  // namespace

RecalibrationScheduler::RecalibrationScheduler(SchedulerConfig cfg,
                                               double unit_reprogram_energy_nj)
    : cfg_(cfg), unit_energy_nj_(unit_reprogram_energy_nj) {
  NVM_CHECK(unit_energy_nj_ >= 0.0);
  NVM_CHECK(cfg_.refit_decay_threshold >= cfg_.reprogram_decay_threshold,
            "refit threshold must not be below the reprogram threshold "
            "(refit is the earlier, cheaper intervention): refit="
                << cfg_.refit_decay_threshold
                << " reprogram=" << cfg_.reprogram_decay_threshold);
}

Action RecalibrationScheduler::decide(const ChipInstance& chip,
                                      double fleet_time_s) const {
  if (chip.retired) return Action::None;
  if (chip.expected_defect_fraction() >= cfg_.retire_defect_fraction)
    return Action::Retire;
  const double decay = chip.predicted_decay(fleet_time_s);
  if (decay < cfg_.reprogram_decay_threshold) return Action::Reprogram;
  if (decay < cfg_.refit_decay_threshold) return Action::Refit;
  return Action::None;
}

void RecalibrationScheduler::apply(ChipInstance& chip, Action a,
                                   double fleet_time_s,
                                   ActionSummary& summary) {
  switch (a) {
    case Action::None:
      break;
    case Action::Refit:
      chip.refit = true;
      ++chip.refits;
      ++summary.refits;
      summary.energy_nj += cfg_.refit_cost_fraction * unit_energy_nj_;
      refit_counter().add();
      break;
    case Action::Reprogram:
      // Freshly-written arrays have not decayed and are freshly
      // calibrated: the drift clock resets and any refit compensation is
      // superseded.
      chip.programmed_at_s = fleet_time_s;
      chip.refit = false;
      ++chip.reprograms;
      ++summary.reprograms;
      summary.energy_nj += unit_energy_nj_;
      reprogram_counter().add();
      break;
    case Action::Retire:
      chip.retired = true;
      ++summary.retirements;
      retire_counter().add();
      break;
  }
}

ActionSummary RecalibrationScheduler::run_epoch(
    std::vector<ChipInstance>& chips, double fleet_time_s) {
  ActionSummary summary;
  // The refit is a subscription, not a grant: the surrogate gain must be
  // re-fitted as the silicon keeps drifting, so the flag (and its charge)
  // lasts one epoch unless the policy re-issues it below.
  for (ChipInstance& chip : chips)
    if (!chip.retired) chip.refit = false;
  switch (cfg_.policy) {
    case PolicyKind::Never:
      break;
    case PolicyKind::Always:
      for (ChipInstance& chip : chips)
        if (!chip.retired)
          apply(chip, Action::Reprogram, fleet_time_s, summary);
      break;
    case PolicyKind::Threshold:
      for (ChipInstance& chip : chips)
        apply(chip, decide(chip, fleet_time_s), fleet_time_s, summary);
      break;
    case PolicyKind::BudgetedGreedy: {
      // Worst predicted retention first; retirement is outside the budget
      // (it reduces future spend rather than consuming any).
      std::vector<ChipInstance*> order;
      order.reserve(chips.size());
      for (ChipInstance& chip : chips)
        if (!chip.retired) order.push_back(&chip);
      std::sort(order.begin(), order.end(),
                [fleet_time_s](const ChipInstance* a, const ChipInstance* b) {
                  const double da = a->predicted_decay(fleet_time_s);
                  const double db = b->predicted_decay(fleet_time_s);
                  if (da != db) return da < db;
                  return a->id < b->id;  // deterministic tie-break
                });
      std::int64_t budget = cfg_.budget_actions_per_epoch;
      for (ChipInstance* chip : order) {
        const Action a = decide(*chip, fleet_time_s);
        if (a == Action::None) continue;
        if (a == Action::Retire) {
          apply(*chip, a, fleet_time_s, summary);
          continue;
        }
        if (budget <= 0) continue;
        apply(*chip, a, fleet_time_s, summary);
        --budget;
      }
      break;
    }
  }
  total_energy_nj_ += summary.energy_nj;
  return summary;
}

PolicyKind RecalibrationScheduler::parse_policy(const std::string& name) {
  if (name == "never") return PolicyKind::Never;
  if (name == "always") return PolicyKind::Always;
  if (name == "threshold") return PolicyKind::Threshold;
  if (name == "budgeted" || name == "budgeted_greedy")
    return PolicyKind::BudgetedGreedy;
  NVM_CHECK(false, "unknown recalibration policy '"
                       << name
                       << "' (want never|always|threshold|budgeted)");
  return PolicyKind::Never;
}

const char* RecalibrationScheduler::policy_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::Never: return "never";
    case PolicyKind::Always: return "always";
    case PolicyKind::Threshold: return "threshold";
    case PolicyKind::BudgetedGreedy: return "budgeted";
  }
  return "?";
}

}  // namespace nvm::fleet

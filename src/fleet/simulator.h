// Time-stepped fleet simulation over the crossbar evaluation stack.
//
// Each epoch the simulator (1) advances the fleet clock by dt, (2) draws
// a deterministic sample of alive chips, (3) lazily materializes each
// sampled chip as a VariationModel(FaultModel(base)) stack at its current
// drift age and measures clean / PGD / Square accuracy through the
// existing evaluator (adversarial sets are crafted once against the
// digital network — the paper's non-adaptive transfer setting), (4) lets
// the SlaMonitor judge the measurements, and (5) lets the
// RecalibrationScheduler act on the *whole* population (O(1) handle
// features, no materialization).
//
// Determinism: chip manufacture and epoch sampling derive from the fleet
// seed via derive_seed; evaluation fans sampled chips across thread-pool
// replica chunks whose decomposition depends only on (n_sampled,
// replicas) — never the pool size — so the full FleetResult is
// bit-identical under any NVM_THREADS and reproducible from the manifest
// seed alone.
#pragma once

#include <memory>
#include <vector>

#include "core/report.h"
#include "core/tasks.h"
#include "fleet/fleet.h"
#include "fleet/scheduler.h"
#include "fleet/sla.h"
#include "xbar/fault.h"

namespace nvm::fleet {

/// Fleet-level view of one epoch.
struct EpochSummary {
  std::int64_t epoch = 0;
  double fleet_time_s = 0.0;
  std::int64_t alive = 0;
  std::int64_t retired = 0;
  double availability = 1.0;
  double mean_age_s = 0.0;        ///< over alive chips
  /// Sample means over this epoch's measured chips; -1 = no samples.
  float mean_clean = -1.0f;
  float mean_pgd = -1.0f;
  float mean_square = -1.0f;
  std::int64_t sla_violations = 0;
  /// Maintenance performed at the END of this epoch (after measurement).
  std::int64_t reprograms = 0;
  std::int64_t refits = 0;
  std::int64_t retirements = 0;
  double recal_energy_nj = 0.0;
  std::vector<ChipEval> chips;    ///< the sampled measurements
};

struct FleetResult {
  FleetOptions opt;
  SchedulerConfig scheduler;
  SlaConfig sla;
  float digital_clean = -1.0f;
  float digital_pgd = -1.0f;
  float digital_square = -1.0f;
  /// Energy of one full tile-set re-programming (the scheduler's unit).
  double unit_reprogram_energy_nj = 0.0;
  std::vector<EpochSummary> epochs;

  // Lifetime aggregates.
  float mean_clean = -1.0f;          ///< mean of epoch means
  float mean_pgd = -1.0f;
  double total_recal_energy_nj = 0.0;
  /// total energy / (n_chips x unit): 1.0 = re-programming the whole
  /// fleet once.
  double normalized_recal_cost = 0.0;
  /// Maintenance intensity: normalized_recal_cost / epochs, i.e. the
  /// fraction of "re-program the entire fleet every epoch" (the Always
  /// policy's spend rate, which scores exactly 1.0 here).
  double maintenance_intensity = 0.0;
  /// Accuracy per unit recalibration cost: quality / (1 + maintenance
  /// intensity), where quality is mean clean (averaged with mean PGD when
  /// PGD runs). The +1 prices the factory programming every policy
  /// already paid, so never-recalibrate does not divide by zero; Always
  /// halves its quality.
  double score = 0.0;
  std::int64_t total_reprograms = 0;
  std::int64_t total_refits = 0;
  std::int64_t total_retirements = 0;
  std::int64_t total_sla_violations = 0;
};

/// A sampled chip materialized for evaluation. `faults` is the inner
/// decorator (kept for FaultMap access); `model` is what gets deployed.
struct MaterializedChip {
  std::shared_ptr<const xbar::MvmModel> model;
  std::shared_ptr<const xbar::FaultModel> faults;
};

class FleetSimulator {
 public:
  FleetSimulator(core::PreparedTask& prepared,
                 std::shared_ptr<const xbar::MvmModel> base_model,
                 FleetOptions opt);

  /// Runs the full simulation under one scheduler policy + SLA contract.
  /// Repeatable: each call re-manufactures the fleet from the seed.
  FleetResult run(const SchedulerConfig& sched_cfg, const SlaConfig& sla_cfg);

  /// Wraps `base` as this chip's silicon at fleet time `t` (exposed for
  /// tests; run() uses it per sampled chip).
  MaterializedChip materialize(const ChipInstance& chip,
                               double fleet_time_s) const;

  const FleetOptions& options() const { return opt_; }

 private:
  core::PreparedTask& prepared_;
  std::shared_ptr<const xbar::MvmModel> base_;
  FleetOptions opt_;
};

/// Prints the per-epoch fleet table + policy scorecard.
void print_fleet_result(const core::Task& task, const std::string& model_name,
                        const FleetResult& result);

/// Emits the fleet curves (one series per measure) and scalar aggregates
/// into a run manifest, prefixed "fleet/".
void emit_fleet_manifest(const FleetResult& result, core::RunManifest& man);

}  // namespace nvm::fleet

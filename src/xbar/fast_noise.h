// Closed-form analytical non-ideality model.
//
// A cheaper alternative to the GENIEx surrogate that approximates the two
// dominant parasitic effects directly:
//   1. row-side IR drop: each input voltage divides between the source
//      resistance plus accumulated row wire and the row's device load, so
//      the voltage reaching column j of row i is attenuated by
//      1 / (1 + (R_source + j*R_wire) * Growsum_i);
//   2. column-side drop: the summed column current develops a voltage
//      across the sink resistance plus average column wire, reducing the
//      effective device drops by 1 / (1 + (R_sink + rows/2*R_wire) * Gsum_j).
// Device nonlinearity is applied per cell via the sinh secant term.
//
// In the experiments this model doubles as the "different NVM technology"
// the adaptive attacker may hold (paper §IV-B): it tracks the same physics
// but deviates in detail from the solver/GENIEx stack.
#pragma once

#include "xbar/mvm_model.h"

namespace nvm::xbar {

class FastNoiseModel final : public MvmModel {
 public:
  explicit FastNoiseModel(CrossbarConfig cfg) : cfg_(std::move(cfg)) {}

  std::unique_ptr<ProgrammedXbar> program(const Tensor& g) const override;
  const CrossbarConfig& config() const override { return cfg_; }
  std::string name() const override { return "fast_noise"; }
  bool supports_chunk_mvm() const override { return true; }

 private:
  CrossbarConfig cfg_;
};

}  // namespace nvm::xbar

// Named crossbar model construction.
//
// The experiments refer to crossbars by their Table I names. This helper
// owns the cached GENIEx fits for the three presets so every bench and
// example shares one construction path.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "xbar/geniex.h"

namespace nvm::xbar {

/// The Table I model names in paper order.
const std::vector<std::string>& paper_model_names();

/// Builds (training or cache-loading the GENIEx surrogate for) a named
/// model. Accepts the Table I names.
std::shared_ptr<GeniexModel> make_geniex(const std::string& name);

/// Builds the circuit-solver ground-truth model for a named preset.
std::shared_ptr<CircuitSolverModel> make_solver(const std::string& name);

}  // namespace nvm::xbar

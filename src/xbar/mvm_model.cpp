#include "xbar/mvm_model.h"

#include <cmath>

#include "common/check.h"
#include "common/health.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/simd.h"
#include "common/thread_pool.h"
#include "tensor/ops.h"

namespace nvm::xbar {

Tensor ProgrammedXbar::mvm_batch_active(const Tensor& v_batch,
                                        std::int64_t rows_used,
                                        std::int64_t cols_used) {
  (void)rows_used;
  (void)cols_used;
  return mvm_batch(v_batch);
}

void count_mvm_multi_columns(std::int64_t n) {
  static metrics::Counter& columns =
      metrics::counter("xbar/mvm_multi_columns");
  columns.add(static_cast<std::uint64_t>(n));
}

Tensor ProgrammedXbar::mvm_multi(const Tensor& v_block) {
  NVM_CHECK_EQ(v_block.rank(), 2u);
  const std::int64_t rows = v_block.dim(0), n = v_block.dim(1);
  if (n == 0) return Tensor();
  count_mvm_multi_columns(n);
  Tensor v({rows});
  Tensor out;
  for (std::int64_t k = 0; k < n; ++k) {
    for (std::int64_t i = 0; i < rows; ++i) v[i] = v_block.at(i, k);
    Tensor y = mvm(v);
    if (k == 0) out = Tensor({y.numel(), n});
    for (std::int64_t j = 0; j < y.numel(); ++j) out.at(j, k) = y[j];
  }
  return out;
}

Tensor ProgrammedXbar::mvm_multi_active(const Tensor& v_block,
                                        std::int64_t rows_used,
                                        std::int64_t cols_used) {
  (void)rows_used;
  (void)cols_used;
  return mvm_multi(v_block);
}

namespace {

/// Materializes the float voltage block a ChunkBlock stands for, with the
/// exact op the DAC phase uses (one float multiply per code, as
/// simd::scale performs it) so chunk-driven and voltage-driven paths stay
/// bit-identical.
Tensor materialize_chunk_volts(const ChunkBlock& cb) {
  Tensor volts({cb.rows, cb.n});
  float* pv = volts.raw();
  const std::int64_t cells = cb.rows * cb.n;
  for (std::int64_t i = 0; i < cells; ++i)
    pv[i] = cb.v_unit * static_cast<float>(cb.chunk[i]);
  return volts;
}

/// Default stream: stateless forwarding, identical to cold evaluation.
class PassthroughStream final : public XbarStream {
 public:
  explicit PassthroughStream(ProgrammedXbar* xbar) : xbar_(xbar) {}

  Tensor mvm_multi_active(const Tensor& v_block, std::int64_t rows_used,
                          std::int64_t cols_used) override {
    return xbar_->mvm_multi_active(v_block, rows_used, cols_used);
  }

  Tensor mvm_chunks_active(const ChunkBlock& cb, std::int64_t rows_used,
                           std::int64_t cols_used) override {
    return xbar_->mvm_chunks_active(cb, rows_used, cols_used);
  }

 private:
  ProgrammedXbar* xbar_;
};

}  // namespace

Tensor ProgrammedXbar::mvm_chunks_active(const ChunkBlock& cb,
                                         std::int64_t rows_used,
                                         std::int64_t cols_used) {
  return mvm_multi_active(materialize_chunk_volts(cb), rows_used, cols_used);
}

Tensor XbarStream::mvm_chunks_active(const ChunkBlock& cb,
                                     std::int64_t rows_used,
                                     std::int64_t cols_used) {
  return mvm_multi_active(materialize_chunk_volts(cb), rows_used, cols_used);
}

std::unique_ptr<XbarStream> ProgrammedXbar::open_stream() {
  return std::make_unique<PassthroughStream>(this);
}

std::unique_ptr<FusedChunkKernel> ProgrammedXbar::compile_chunk_kernel(
    float v_unit, int max_code) const {
  (void)v_unit;
  (void)max_code;
  return nullptr;  // no fused form; callers use the stream path
}

Tensor ProgrammedXbar::mvm_batch(const Tensor& v_batch) {
  NVM_CHECK_EQ(v_batch.rank(), 2u);
  const std::int64_t rows = v_batch.dim(0), n = v_batch.dim(1);
  if (n == 0) return Tensor();
  static metrics::Counter& columns = metrics::counter("xbar/mvm_columns");
  columns.add(static_cast<std::uint64_t>(n));
  const auto eval_column = [&](std::int64_t k, Tensor& out) {
    Tensor v({rows});
    for (std::int64_t i = 0; i < rows; ++i) v[i] = v_batch.at(i, k);
    Tensor y = mvm(v);
    for (std::int64_t j = 0; j < y.numel(); ++j) out.at(j, k) = y[j];
  };
  // Column 0 runs inline to size the output; the remaining independent
  // columns fan out across the pool (each writes a disjoint column, so
  // results are bit-identical for any thread count).
  Tensor v0({rows});
  for (std::int64_t i = 0; i < rows; ++i) v0[i] = v_batch.at(i, 0);
  Tensor y0 = mvm(v0);
  Tensor out({y0.numel(), n});
  for (std::int64_t j = 0; j < y0.numel(); ++j) out.at(j, 0) = y0[j];
  parallel_for(n - 1, [&](std::int64_t k) { eval_column(k + 1, out); });
  return out;
}

void validate_conductances(const Tensor& g, const CrossbarConfig& cfg) {
  NVM_CHECK_EQ(g.rank(), 2u);
  NVM_CHECK_EQ(g.dim(0), cfg.rows);
  NVM_CHECK_EQ(g.dim(1), cfg.cols);
  const float lo = static_cast<float>(cfg.g_off() * (1 - 1e-6));
  const float hi = static_cast<float>(cfg.g_on() * (1 + 1e-6));
  NVM_CHECK(g.min() >= lo && g.max() <= hi,
            "conductance out of [g_off, g_on]: [" << g.min() << ", " << g.max()
                                                  << "]");
}

std::int64_t guard_output_finite(Tensor& out, const char* who) {
  return guard_output_finite(out.raw(), out.numel(), who);
}

std::int64_t guard_output_finite(float* p, std::int64_t n, const char* who) {
  std::int64_t scrubbed = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    if (!std::isfinite(p[i])) {
      p[i] = 0.0f;
      ++scrubbed;
    }
  }
  if (scrubbed > 0) {
    const std::uint64_t total = bump(HealthCounter::NonFiniteOutput,
                                     static_cast<std::uint64_t>(scrubbed));
    if (health_should_log(total))
      NVM_LOG(Warn) << who << ": scrubbed " << scrubbed
                    << " non-finite output value(s) (total " << total << ")";
  }
  return scrubbed;
}

namespace {

class IdealProgrammed final : public ProgrammedXbar {
 public:
  explicit IdealProgrammed(Tensor g) : gt_(transpose2d(g)) {}

  Tensor mvm(const Tensor& v) override { return matvec(gt_, v); }
  Tensor mvm_batch(const Tensor& v_batch) override {
    return matmul(gt_, v_batch);
  }
  Tensor mvm_multi(const Tensor& v_block) override {
    NVM_CHECK_EQ(v_block.rank(), 2u);
    NVM_CHECK_EQ(v_block.dim(0), gt_.dim(1));
    const std::int64_t n = v_block.dim(1);
    if (n == 0) return Tensor();
    count_mvm_multi_columns(n);
    Tensor out({gt_.dim(0), n});
    // Same sequential-over-rows double accumulation as matvec per column,
    // so this is bit-identical to looping mvm().
    simd::gemm_f64acc(out.raw(), gt_.raw(), v_block.raw(), gt_.dim(0), n,
                      gt_.dim(1), gt_.dim(1), n, n);
    return out;
  }
  Tensor mvm_multi_active(const Tensor& v_block, std::int64_t rows_used,
                          std::int64_t cols_used) override {
    NVM_CHECK_EQ(v_block.rank(), 2u);
    NVM_CHECK_EQ(v_block.dim(0), gt_.dim(1));
    const std::int64_t n = v_block.dim(1);
    if (n == 0) return Tensor();
    count_mvm_multi_columns(n);
    Tensor out({gt_.dim(0), n});
    // Rows beyond rows_used carry exactly zero volts, so truncating the
    // reduction adds only +0.0 terms and the result stays bit-identical.
    simd::gemm_f64acc(out.raw(), gt_.raw(), v_block.raw(), cols_used, n,
                      rows_used, gt_.dim(1), n, n);
    return out;
  }
  Tensor mvm_batch_active(const Tensor& v_batch, std::int64_t rows_used,
                          std::int64_t cols_used) override {
    NVM_CHECK_EQ(v_batch.dim(0), gt_.dim(1));
    const std::int64_t rows = gt_.dim(1), n = v_batch.dim(1);
    Tensor out({gt_.dim(0), n});
    const float* pg = gt_.raw();
    const float* pv = v_batch.raw();
    for (std::int64_t j = 0; j < cols_used; ++j) {
      float* oj = out.raw() + j * n;
      const float* grow = pg + j * rows;
      for (std::int64_t i = 0; i < rows_used; ++i) {
        const float g = grow[i];
        if (g == 0.0f) continue;
        const float* vi = pv + i * n;
        for (std::int64_t k = 0; k < n; ++k) oj[k] += g * vi[k];
      }
    }
    return out;
  }

 private:
  Tensor gt_;  // (cols, rows)
};

}  // namespace

std::unique_ptr<ProgrammedXbar> IdealXbarModel::program(const Tensor& g) const {
  validate_conductances(g, cfg_);
  return std::make_unique<IdealProgrammed>(g);
}

Tensor ideal_mvm(const Tensor& g, const Tensor& v) {
  return matvec(transpose2d(g), v);
}

Tensor ideal_mvm_batch(const Tensor& g, const Tensor& v_batch) {
  return matmul(transpose2d(g), v_batch);
}

}  // namespace nvm::xbar

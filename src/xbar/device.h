// RRAM device I-V model.
//
// Follows the Guan et al. compact-model form used by the paper's device
// reference [26]: the device current is superlinear in voltage,
//   I(V) = G * sinh(b*V) / b,
// so the small-signal slope at V=0 equals the programmed conductance G and
// b controls the nonlinearity. This V-dependence is what makes the
// effective conductance matrix G(V) input-dependent (paper Eq. 2).
#pragma once

namespace nvm::xbar {

/// sinh(x)/x with a cheap, accurate polynomial for |x| < 1.5 (the operating
/// range: b*v_read <= ~0.6), falling back to the exact form outside it.
double sinhc(double x);

/// Device current at voltage drop `v` for programmed conductance `g`.
double device_current(double g, double v, double b);

/// Effective (secant) conductance I(v)/v, used by the circuit solver's
/// per-iteration linearization. Returns g at v == 0.
double device_secant_conductance(double g, double v, double b);

}  // namespace nvm::xbar

// RRAM device I-V model.
//
// Follows the Guan et al. compact-model form used by the paper's device
// reference [26]: the device current is superlinear in voltage,
//   I(V) = G * sinh(b*V) / b,
// so the small-signal slope at V=0 equals the programmed conductance G and
// b controls the nonlinearity. This V-dependence is what makes the
// effective conductance matrix G(V) input-dependent (paper Eq. 2).
//
// The functions are defined inline: they sit in the innermost loops of the
// fast-noise model and the circuit solver (one evaluation per crossbar cell
// per sample / per sweep), where a cross-TU call would both cost the call
// overhead and block vectorization across a sample block.
#pragma once

#include <cmath>

namespace nvm::xbar {

/// sinh(x)/x with a cheap, accurate polynomial for |x| < 1.2 (the operating
/// range: b*v_read <= ~1), falling back to the exact form outside it.
///
/// The polynomial is the degree-8 Taylor series in Horner form with
/// precomputed reciprocal-factorial coefficients — multiplies and adds
/// only, so the evaluation pipelines and vectorizes (a division-based
/// nesting costs ~4 divides per call and serializes). Relative error
/// < 2e-7 on the polynomial range.
inline double sinhc(double x) {
  const double ax = std::abs(x);
  if (ax < 1.2) {
    const double x2 = x * x;
    constexpr double c1 = 1.0 / 6.0;
    constexpr double c2 = 1.0 / 120.0;
    constexpr double c3 = 1.0 / 5040.0;
    constexpr double c4 = 1.0 / 362880.0;
    return 1.0 + x2 * (c1 + x2 * (c2 + x2 * (c3 + x2 * c4)));
  }
  return std::sinh(x) / x;
}

/// Device current at voltage drop `v` for programmed conductance `g`.
inline double device_current(double g, double v, double b) {
  return g * v * sinhc(b * v);
}

/// Effective (secant) conductance I(v)/v, used by the circuit solver's
/// per-iteration linearization. Returns g at v == 0.
inline double device_secant_conductance(double g, double v, double b) {
  return g * sinhc(b * v);
}

}  // namespace nvm::xbar

#include "xbar/device.h"

#include <cmath>

namespace nvm::xbar {

double sinhc(double x) {
  const double ax = std::abs(x);
  if (ax < 1.2) {
    const double x2 = x * x;
    // Taylor series of sinh(x)/x through x^8; relative error < 2e-7 on
    // |x| < 1.2 (the operating range is b*v_read <= ~1).
    return 1.0 +
           x2 / 6.0 *
               (1.0 + x2 / 20.0 * (1.0 + x2 / 42.0 * (1.0 + x2 / 72.0)));
  }
  return std::sinh(x) / x;
}

double device_current(double g, double v, double b) {
  return g * v * sinhc(b * v);
}

double device_secant_conductance(double g, double v, double b) {
  return g * sinhc(b * v);
}

}  // namespace nvm::xbar

#include "xbar/circuit_solver.h"

#include <cmath>
#include <vector>

#include "common/check.h"
#include "xbar/device.h"

namespace nvm::xbar {

namespace {

/// Thomas algorithm for a tridiagonal system. diag/rhs are overwritten.
/// `off` is the (constant) off-diagonal entry (-gw here, passed positive
/// and applied with its sign internally for clarity at the call sites).
void solve_tridiagonal(std::vector<double>& diag, std::vector<double>& rhs,
                       double off, std::vector<double>& out) {
  const std::size_t n = diag.size();
  // Forward elimination: eliminate the sub-diagonal (-off).
  for (std::size_t k = 1; k < n; ++k) {
    const double m = -off / diag[k - 1];
    diag[k] -= m * -off;
    rhs[k] -= m * rhs[k - 1];
  }
  out[n - 1] = rhs[n - 1] / diag[n - 1];
  for (std::size_t k = n - 1; k-- > 0;)
    out[k] = (rhs[k] + off * out[k + 1]) / diag[k];
}

/// Crossbar nodal analysis via block line relaxation: each outer iteration
/// re-linearizes the nonlinear devices (secant conductance), then solves
/// every row wire chain and every column wire chain exactly as tridiagonal
/// systems with the opposite side held fixed. The wire stiffness
/// (g_wire >> g_device) is handled inside the direct solves, so the outer
/// loop converges at the device/wire coupling rate — a handful of sweeps.
class Solver {
 public:
  Solver(const CrossbarConfig& cfg, const SolverOptions& opt, const Tensor& g)
      : cfg_(cfg),
        opt_(opt),
        rows_(cfg.rows),
        cols_(cfg.cols),
        g_(g.data().begin(), g.data().end()),
        geff_(g_),
        vr_(static_cast<std::size_t>(rows_ * cols_), 0.0),
        vc_(static_cast<std::size_t>(rows_ * cols_), 0.0),
        gs_(1.0 / cfg.r_source),
        gk_(1.0 / cfg.r_sink),
        gw_(1.0 / cfg.r_wire) {}

  Tensor solve(const Tensor& v, int* sweeps_used) {
    NVM_CHECK_EQ(v.numel(), rows_);
    for (std::int64_t i = 0; i < rows_; ++i)
      for (std::int64_t j = 0; j < cols_; ++j) vr_[idx(i, j)] = v[i];
    std::fill(vc_.begin(), vc_.end(), 0.0);

    std::vector<double> diag, rhs, sol;
    int sweep = 0;
    for (; sweep < opt_.max_sweeps; ++sweep) {
      relinearize();

      // Row chains: unknowns vr[i][*]; vc held fixed.
      diag.assign(static_cast<std::size_t>(cols_), 0.0);
      rhs.assign(static_cast<std::size_t>(cols_), 0.0);
      sol.assign(static_cast<std::size_t>(cols_), 0.0);
      for (std::int64_t i = 0; i < rows_; ++i) {
        for (std::int64_t j = 0; j < cols_; ++j) {
          const std::size_t k = idx(i, j);
          double d = geff_[k];
          double r = geff_[k] * vc_[k];
          if (j == 0) {
            d += gs_;
            r += gs_ * v[i];
          }
          if (j > 0) d += gw_;
          if (j + 1 < cols_) d += gw_;
          diag[static_cast<std::size_t>(j)] = d;
          rhs[static_cast<std::size_t>(j)] = r;
        }
        solve_tridiagonal(diag, rhs, gw_, sol);
        for (std::int64_t j = 0; j < cols_; ++j)
          vr_[idx(i, j)] = sol[static_cast<std::size_t>(j)];
      }

      // Column chains: unknowns vc[*][j]; vr held fixed.
      double max_delta = 0.0;
      diag.assign(static_cast<std::size_t>(rows_), 0.0);
      rhs.assign(static_cast<std::size_t>(rows_), 0.0);
      sol.assign(static_cast<std::size_t>(rows_), 0.0);
      for (std::int64_t j = 0; j < cols_; ++j) {
        for (std::int64_t i = 0; i < rows_; ++i) {
          const std::size_t k = idx(i, j);
          double d = geff_[k];
          double r = geff_[k] * vr_[k];
          if (i > 0) d += gw_;
          if (i + 1 < rows_) d += gw_;
          else d += gk_;  // bottom node ties to ground through the sink
          diag[static_cast<std::size_t>(i)] = d;
          rhs[static_cast<std::size_t>(i)] = r;
        }
        solve_tridiagonal(diag, rhs, gw_, sol);
        for (std::int64_t i = 0; i < rows_; ++i) {
          const std::size_t k = idx(i, j);
          max_delta = std::max(max_delta,
                               std::abs(sol[static_cast<std::size_t>(i)] - vc_[k]));
          vc_[k] = sol[static_cast<std::size_t>(i)];
        }
      }

      // Converge on relative voltage movement against the drive scale.
      if (max_delta < opt_.tol * cfg_.v_read + 1e-15) {
        ++sweep;
        break;
      }
    }
    if (sweeps_used != nullptr) *sweeps_used = sweep;

    Tensor out({cols_});
    for (std::int64_t j = 0; j < cols_; ++j)
      out[j] = static_cast<float>(vc_[idx(rows_ - 1, j)] * gk_);
    return out;
  }

 private:
  std::size_t idx(std::int64_t i, std::int64_t j) const {
    return static_cast<std::size_t>(i * cols_ + j);
  }

  void relinearize() {
    const double b = cfg_.device_nonlin;
    for (std::size_t k = 0; k < g_.size(); ++k)
      geff_[k] = device_secant_conductance(g_[k], vr_[k] - vc_[k], b);
  }

  const CrossbarConfig& cfg_;
  const SolverOptions& opt_;
  std::int64_t rows_, cols_;
  std::vector<double> g_, geff_;
  std::vector<double> vr_, vc_;
  double gs_, gk_, gw_;
};

class SolverProgrammed final : public ProgrammedXbar {
 public:
  SolverProgrammed(CrossbarConfig cfg, SolverOptions opt, Tensor g)
      : cfg_(std::move(cfg)), opt_(opt), g_(std::move(g)) {}

  Tensor mvm(const Tensor& v) override {
    Solver solver(cfg_, opt_, g_);
    return solver.solve(v, nullptr);
  }

 private:
  CrossbarConfig cfg_;
  SolverOptions opt_;
  Tensor g_;
};

}  // namespace

std::unique_ptr<ProgrammedXbar> CircuitSolverModel::program(
    const Tensor& g) const {
  validate_conductances(g, cfg_);
  return std::make_unique<SolverProgrammed>(cfg_, opt_, g);
}

Tensor solve_crossbar(const CrossbarConfig& cfg, const SolverOptions& opt,
                      const Tensor& g, const Tensor& v, int* sweeps_used) {
  validate_conductances(g, cfg);
  Solver solver(cfg, opt, g);
  return solver.solve(v, sweeps_used);
}

}  // namespace nvm::xbar

#include "xbar/circuit_solver.h"


#include <cmath>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/health.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "xbar/device.h"

namespace nvm::xbar {

namespace {

/// Thomas algorithm for a tridiagonal system. diag/rhs are overwritten.
/// `off` is the (constant) off-diagonal entry (-gw here, passed positive
/// and applied with its sign internally for clarity at the call sites).
void solve_tridiagonal(std::vector<double>& diag, std::vector<double>& rhs,
                       double off, std::vector<double>& out) {
  const std::size_t n = diag.size();
  // Forward elimination: eliminate the sub-diagonal (-off).
  for (std::size_t k = 1; k < n; ++k) {
    const double m = -off / diag[k - 1];
    diag[k] -= m * -off;
    rhs[k] -= m * rhs[k - 1];
  }
  out[n - 1] = rhs[n - 1] / diag[n - 1];
  for (std::size_t k = n - 1; k-- > 0;)
    out[k] = (rhs[k] + off * out[k + 1]) / diag[k];
}

/// Reusable relinearization/solve scratch. Every solve fully overwrites
/// each array before reading it, so reuse across solves (and across
/// crossbars of different sizes) cannot leak state between calls. One
/// instance lives per thread (see tls_workspace), which makes concurrent
/// mvm() calls on the same SolverProgrammed allocation-free and race-free.
struct SolverWorkspace {
  std::vector<double> geff;            // secant conductances
  std::vector<double> vr, vc;          // row/column node voltages
  std::vector<double> diag, rhs, sol;  // per-chain tridiagonal scratch
  // Batched (red-black) scratch: all chains of one plane eliminated in
  // lockstep. Row plane uses the transposed layout [j*rows + i] so the
  // inner loop over chains i is contiguous; the column plane's natural
  // layout [i*cols + j] already has contiguous chains j.
  std::vector<double> diagb, rhsb, solb;
};

/// A previous solve's converged node voltages, used to warm-start a
/// correlated solve. Both planes matter: vc seeds the first row solve's
/// right-hand side, and vr seeds the first device re-linearization (with
/// the default cold broadcast vr[i][j] = v[i], the sweep-1 secant
/// conductances carry the full row-side IR-drop error no matter how good
/// the vc seed is, which is why seeding vc alone saves nothing).
struct SolverSeed {
  std::vector<double> vr, vc;

  bool usable(std::size_t cells) const {
    return vr.size() == cells && vc.size() == cells;
  }
};

SolverWorkspace& tls_workspace() {
  thread_local SolverWorkspace ws;
  return ws;
}

/// Crossbar nodal analysis via block line relaxation: each outer iteration
/// re-linearizes the nonlinear devices (secant conductance), then solves
/// every row wire chain and every column wire chain exactly as tridiagonal
/// systems with the opposite side held fixed. The wire stiffness
/// (g_wire >> g_device) is handled inside the direct solves, so the outer
/// loop converges at the device/wire coupling rate — a handful of sweeps.
///
/// `g` is the programmed conductance matrix in row-major doubles; it is
/// read-only, so one programmed crossbar can be solved from many threads.
/// One attempt only — the retry policy lives in solve_nodal below.
Tensor solve_nodal_once(const CrossbarConfig& cfg, const SolverOptions& opt,
                        std::span<const double> g, const Tensor& v,
                        SolverWorkspace& ws, SolveStats& stats,
                        const SolverSeed* seed = nullptr) {
  NVM_TRACE_SPAN("xbar/solver/solve");
  const std::int64_t rows = cfg.rows, cols = cfg.cols;
  NVM_CHECK_EQ(v.numel(), rows);
  NVM_CHECK_EQ(g.size(), static_cast<std::size_t>(rows * cols));
  const double gs = 1.0 / cfg.r_source;
  const double gk = 1.0 / cfg.r_sink;
  const double gw = 1.0 / cfg.r_wire;
  const auto idx = [cols](std::int64_t i, std::int64_t j) {
    return static_cast<std::size_t>(i * cols + j);
  };

  const std::size_t cells = static_cast<std::size_t>(rows * cols);
  ws.geff.resize(cells);
  ws.vr.resize(cells);
  ws.vc.resize(cells);
  // Node voltages seed from a caller-provided warm start (a correlated
  // previous solve's fixed point) or cold: vr broadcast from the drive,
  // vc from ground.
  if (seed != nullptr && seed->usable(cells)) {
    std::copy(seed->vr.begin(), seed->vr.end(), ws.vr.begin());
    std::copy(seed->vc.begin(), seed->vc.end(), ws.vc.begin());
    static metrics::Counter& m_warm = metrics::counter("solver/warm_starts");
    m_warm.add();
  } else if (opt.coarse_start) {
    // Coarse-grid analytic cold seed. Row plane: closed-form IR-drop
    // attenuation v[i] / (1 + R_row(j) * Growsum_i), with R_row averaged
    // over coarse column blocks (one divide per block instead of per
    // cell). Column plane: one linearized flow reconstruction — device
    // currents approximated as g * vr, then the column profile follows
    // exactly from cumulative sums (the wires are linear). Costs about
    // half a sweep; replaces the flat broadcast whose error is the entire
    // IR drop.
    static metrics::Counter& m_coarse =
        metrics::counter("solver/coarse_starts");
    m_coarse.add();
    constexpr std::int64_t kBlock = 8;
    ws.diag.resize(static_cast<std::size_t>(rows));  // per-row g sums
    for (std::int64_t i = 0; i < rows; ++i) {
      double s = 0.0;
      for (std::int64_t j = 0; j < cols; ++j) s += g[idx(i, j)];
      ws.diag[static_cast<std::size_t>(i)] = s;
    }
    for (std::int64_t i = 0; i < rows; ++i) {
      const double growsum = ws.diag[static_cast<std::size_t>(i)];
      for (std::int64_t j0 = 0; j0 < cols; j0 += kBlock) {
        const std::int64_t j1 = std::min(cols, j0 + kBlock);
        const double jc = 0.5 * static_cast<double>(j0 + j1 - 1);
        const double atten =
            1.0 / (1.0 + (cfg.r_source + cfg.r_wire * jc) * growsum);
        const double vij = v[i] * atten;
        for (std::int64_t j = j0; j < j1; ++j) ws.vr[idx(i, j)] = vij;
      }
    }
    // Linearized currents into geff (recomputed at sweep start anyway).
    for (std::size_t k = 0; k < cells; ++k) ws.geff[k] = g[k] * ws.vr[k];
    for (std::int64_t j = 0; j < cols; ++j) {
      double below = 0.0;
      for (std::int64_t i = 0; i < rows; ++i) below += ws.geff[idx(i, j)];
      double vc = below * cfg.r_sink;
      ws.vc[idx(rows - 1, j)] = vc;
      for (std::int64_t i = rows - 2; i >= 0; --i) {
        below -= ws.geff[idx(i + 1, j)];
        vc += below * cfg.r_wire;
        ws.vc[idx(i, j)] = vc;
      }
    }
  } else {
    for (std::int64_t i = 0; i < rows; ++i)
      for (std::int64_t j = 0; j < cols; ++j) ws.vr[idx(i, j)] = v[i];
    std::fill(ws.vc.begin(), ws.vc.end(), 0.0);
  }

  const bool batched = opt.ordering == SweepOrdering::kRedBlack;
  // Outer-iteration damping. omega == 1.0 takes each plane's exact line
  // solve (the historical update, kept bit-identical); omega < 1 blends
  // v += omega * (solve - v), which slows but stabilizes the sweep on
  // arrays where the exact update overshoots.
  const double omega = opt.relaxation;
  NVM_CHECK(omega > 0.0 && omega <= 1.0,
            "solver relaxation must be in (0, 1], got " << omega);
  stats = SolveStats{};
  int sweep = 0;
  for (; sweep < opt.max_sweeps; ++sweep) {
    const double b = cfg.device_nonlin;
    for (std::size_t k = 0; k < cells; ++k)
      ws.geff[k] = device_secant_conductance(g[k], ws.vr[k] - ws.vc[k], b);

    double max_delta = 0.0;
    if (batched) {
      // Red plane — all row chains in lockstep. Unknowns vr[i][*] with vc
      // held fixed; chains i are independent, so the Thomas elimination
      // runs with j as the recurrence index and i as the contiguous inner
      // loop (transposed scratch [j*rows + i]). Each chain performs the
      // exact op sequence of solve_tridiagonal, so results are
      // bit-identical to the lexicographic schedule.
      ws.diagb.resize(cells);
      ws.rhsb.resize(cells);
      ws.solb.resize(cells);
      double* diagb = ws.diagb.data();
      double* rhsb = ws.rhsb.data();
      double* solb = ws.solb.data();
      for (std::int64_t i = 0; i < rows; ++i) {
        for (std::int64_t j = 0; j < cols; ++j) {
          const std::size_t k = idx(i, j);
          double d = ws.geff[k];
          double r = ws.geff[k] * ws.vc[k];
          if (j == 0) {
            d += gs;
            r += gs * v[i];
          }
          if (j > 0) d += gw;
          if (j + 1 < cols) d += gw;
          const std::size_t kt = static_cast<std::size_t>(j * rows + i);
          diagb[kt] = d;
          rhsb[kt] = r;
        }
      }
      for (std::int64_t j = 1; j < cols; ++j) {
        double* dp = diagb + j * rows;
        double* rp = rhsb + j * rows;
        const double* dm = diagb + (j - 1) * rows;
        const double* rm = rhsb + (j - 1) * rows;
        for (std::int64_t i = 0; i < rows; ++i) {
          const double m = -gw / dm[i];
          dp[i] -= m * -gw;
          rp[i] -= m * rm[i];
        }
      }
      {
        const double* dp = diagb + (cols - 1) * rows;
        const double* rp = rhsb + (cols - 1) * rows;
        double* sp = solb + (cols - 1) * rows;
        for (std::int64_t i = 0; i < rows; ++i) sp[i] = rp[i] / dp[i];
      }
      for (std::int64_t j = cols - 1; j-- > 0;) {
        const double* dp = diagb + j * rows;
        const double* rp = rhsb + j * rows;
        const double* sn = solb + (j + 1) * rows;
        double* sp = solb + j * rows;
        for (std::int64_t i = 0; i < rows; ++i)
          sp[i] = (rp[i] + gw * sn[i]) / dp[i];
      }
      for (std::int64_t i = 0; i < rows; ++i)
        for (std::int64_t j = 0; j < cols; ++j) {
          const std::size_t k = idx(i, j);
          const double s = solb[static_cast<std::size_t>(j * rows + i)];
          ws.vr[k] = omega == 1.0 ? s : ws.vr[k] + omega * (s - ws.vr[k]);
        }

      // Black plane — all column chains in lockstep. Unknowns vc[*][j]
      // with vr held fixed; the natural [i*cols + j] layout already has
      // the chain index j contiguous. Back-substitution writes vc in
      // place (row i+1 is final before row i needs it), folding the
      // convergence check into the update loop — no separate residual
      // pass.
      for (std::int64_t i = 0; i < rows; ++i) {
        double* dp = diagb + i * cols;
        double* rp = rhsb + i * cols;
        for (std::int64_t j = 0; j < cols; ++j) {
          const std::size_t k = idx(i, j);
          double d = ws.geff[k];
          if (i > 0) d += gw;
          if (i + 1 < rows) d += gw;
          else d += gk;  // bottom node ties to ground through the sink
          dp[j] = d;
          rp[j] = ws.geff[k] * ws.vr[k];
        }
      }
      for (std::int64_t i = 1; i < rows; ++i) {
        double* dp = diagb + i * cols;
        double* rp = rhsb + i * cols;
        const double* dm = diagb + (i - 1) * cols;
        const double* rm = rhsb + (i - 1) * cols;
        for (std::int64_t j = 0; j < cols; ++j) {
          const double m = -gw / dm[j];
          dp[j] -= m * -gw;
          rp[j] -= m * rm[j];
        }
      }
      if (omega == 1.0) {
        const std::size_t off = idx(rows - 1, 0);
        const double* dp = diagb + off;
        const double* rp = rhsb + off;
        double* vcp = ws.vc.data() + off;
        for (std::int64_t j = 0; j < cols; ++j) {
          const double s = rp[j] / dp[j];
          max_delta = std::max(max_delta, std::abs(s - vcp[j]));
          vcp[j] = s;
        }
        for (std::int64_t i = rows - 1; i-- > 0;) {
          const double* dp2 = diagb + i * cols;
          const double* rp2 = rhsb + i * cols;
          const double* vn = ws.vc.data() + (i + 1) * cols;
          double* vcp2 = ws.vc.data() + i * cols;
          for (std::int64_t j = 0; j < cols; ++j) {
            const double s = (rp2[j] + gw * vn[j]) / dp2[j];
            max_delta = std::max(max_delta, std::abs(s - vcp2[j]));
            vcp2[j] = s;
          }
        }
      } else {
        // Damped update: the Thomas recurrence at row i must read the
        // EXACT solution of row i+1, not the blended iterate, so the
        // back-substitution runs in solb and only the final blend
        // touches vc. max_delta stays the distance to the exact plane
        // solve (not the omega-scaled step), so damping cannot fake
        // convergence.
        {
          const std::size_t off = idx(rows - 1, 0);
          const double* dp = diagb + off;
          const double* rp = rhsb + off;
          double* sp = solb + off;
          for (std::int64_t j = 0; j < cols; ++j) sp[j] = rp[j] / dp[j];
        }
        for (std::int64_t i = rows - 1; i-- > 0;) {
          const double* dp = diagb + i * cols;
          const double* rp = rhsb + i * cols;
          const double* sn = solb + (i + 1) * cols;
          double* sp = solb + i * cols;
          for (std::int64_t j = 0; j < cols; ++j)
            sp[j] = (rp[j] + gw * sn[j]) / dp[j];
        }
        for (std::size_t k = 0; k < cells; ++k) {
          max_delta = std::max(max_delta, std::abs(solb[k] - ws.vc[k]));
          ws.vc[k] += omega * (solb[k] - ws.vc[k]);
        }
      }
    } else {
      // Row chains: unknowns vr[i][*]; vc held fixed.
      ws.diag.assign(static_cast<std::size_t>(cols), 0.0);
      ws.rhs.assign(static_cast<std::size_t>(cols), 0.0);
      ws.sol.assign(static_cast<std::size_t>(cols), 0.0);
      for (std::int64_t i = 0; i < rows; ++i) {
        for (std::int64_t j = 0; j < cols; ++j) {
          const std::size_t k = idx(i, j);
          double d = ws.geff[k];
          double r = ws.geff[k] * ws.vc[k];
          if (j == 0) {
            d += gs;
            r += gs * v[i];
          }
          if (j > 0) d += gw;
          if (j + 1 < cols) d += gw;
          ws.diag[static_cast<std::size_t>(j)] = d;
          ws.rhs[static_cast<std::size_t>(j)] = r;
        }
        solve_tridiagonal(ws.diag, ws.rhs, gw, ws.sol);
        for (std::int64_t j = 0; j < cols; ++j) {
          const std::size_t k = idx(i, j);
          const double s = ws.sol[static_cast<std::size_t>(j)];
          ws.vr[k] = omega == 1.0 ? s : ws.vr[k] + omega * (s - ws.vr[k]);
        }
      }

      // Column chains: unknowns vc[*][j]; vr held fixed.
      ws.diag.assign(static_cast<std::size_t>(rows), 0.0);
      ws.rhs.assign(static_cast<std::size_t>(rows), 0.0);
      ws.sol.assign(static_cast<std::size_t>(rows), 0.0);
      for (std::int64_t j = 0; j < cols; ++j) {
        for (std::int64_t i = 0; i < rows; ++i) {
          const std::size_t k = idx(i, j);
          double d = ws.geff[k];
          double r = ws.geff[k] * ws.vr[k];
          if (i > 0) d += gw;
          if (i + 1 < rows) d += gw;
          else d += gk;  // bottom node ties to ground through the sink
          ws.diag[static_cast<std::size_t>(i)] = d;
          ws.rhs[static_cast<std::size_t>(i)] = r;
        }
        solve_tridiagonal(ws.diag, ws.rhs, gw, ws.sol);
        for (std::int64_t i = 0; i < rows; ++i) {
          const std::size_t k = idx(i, j);
          const double s = ws.sol[static_cast<std::size_t>(i)];
          max_delta = std::max(max_delta, std::abs(s - ws.vc[k]));
          ws.vc[k] = omega == 1.0 ? s : ws.vc[k] + omega * (s - ws.vc[k]);
        }
      }
    }

    stats.last_delta = max_delta;
    // A diverging relaxation shows up as NaN/Inf voltage movement; stop
    // sweeping immediately — further sweeps only churn NaN.
    if (!std::isfinite(max_delta)) {
      ++sweep;
      stats.finite = false;
      break;
    }
    // Converge on relative voltage movement against the drive scale.
    if (max_delta < opt.tol * cfg.v_read + 1e-15) {
      ++sweep;
      stats.converged = true;
      break;
    }
  }
  stats.sweeps_used = sweep;
  static metrics::Counter& m_solves = metrics::counter("solver/solves");
  static metrics::Counter& m_sweeps = metrics::counter("solver/sweeps");
  m_solves.add();
  m_sweeps.add(static_cast<std::uint64_t>(sweep));

  Tensor out({cols});
  for (std::int64_t j = 0; j < cols; ++j)
    out[j] = static_cast<float>(ws.vc[idx(rows - 1, j)] * gk);
  guard_output_finite(out, "circuit_solver");
  return out;
}

/// solve_nodal_once plus the failure policy: a solve that exhausts
/// max_sweeps or diverges is retried ONCE from a cold start (a bad warm
/// seed may be what diverged) with halved relaxation and doubled sweep
/// budget before the scrubbed output is accepted. Only the final outcome
/// bumps HealthCounter::SolverNonConverged / warns; retries are counted
/// under solver/retries and reported in SolveStats::retries.
Tensor solve_nodal(const CrossbarConfig& cfg, const SolverOptions& opt,
                   std::span<const double> g, const Tensor& v,
                   SolverWorkspace& ws, SolveStats& stats,
                   const SolverSeed* seed = nullptr) {
  Tensor out = solve_nodal_once(cfg, opt, g, v, ws, stats, seed);
  if (!stats.ok() && opt.retry_on_nonconvergence) {
    static metrics::Counter& m_retries = metrics::counter("solver/retries");
    m_retries.add();
    SolverOptions damped = opt;
    damped.relaxation = 0.5 * opt.relaxation;
    damped.max_sweeps = 2 * opt.max_sweeps;
    out = solve_nodal_once(cfg, damped, g, v, ws, stats, nullptr);
    stats.retries = 1;
  }
  if (!stats.ok()) {
    const std::uint64_t n = bump(HealthCounter::SolverNonConverged);
    if (health_should_log(n))
      NVM_LOG(Warn) << "crossbar solve " << (stats.finite ? "hit max_sweeps"
                                                          : "diverged")
                    << " on " << cfg.name << " (" << cfg.rows << "x"
                    << cfg.cols << "): sweeps=" << stats.sweeps_used
                    << " retries=" << stats.retries
                    << " last_delta=" << stats.last_delta
                    << " tol=" << opt.tol * cfg.v_read
                    << " (non-converged total " << n << ")";
  }
  return out;
}

class SolverProgrammed final : public ProgrammedXbar {
 public:
  SolverProgrammed(CrossbarConfig cfg, SolverOptions opt, const Tensor& g)
      : cfg_(std::move(cfg)),
        opt_(opt),
        g_(g.data().begin(), g.data().end()) {}

  // Programming converted the conductances to doubles once; each call
  // borrows the calling thread's workspace, so repeated / concurrent mvm()
  // neither copies the matrix nor allocates relinearization state.
  Tensor mvm(const Tensor& v) override {
    SolveStats stats;
    return solve_nodal(cfg_, opt_, g_, v, tls_workspace(), stats);
  }

  std::unique_ptr<XbarStream> open_stream() override;

  const CrossbarConfig& cfg() const { return cfg_; }
  const SolverOptions& opt() const { return opt_; }
  std::span<const double> g() const { return g_; }

 private:
  CrossbarConfig cfg_;
  SolverOptions opt_;
  std::vector<double> g_;
};

/// Warm-starting stream: remembers, per RHS column, the previous solve's
/// drive vector and converged node voltages, and seeds the next solve
/// with a *rescaled* copy. Successive DAC bit-stream chunks of one
/// tiled-GEMM input are not proportional (they are different bit slices),
/// so the raw fixed point is a poor — sometimes worse-than-cold — seed.
/// But the network is only weakly nonlinear, so node voltages are nearly
/// linear in the drive: each row plane (an independent chain driven by
/// v[i]) rescales by v_new[i] / v_prev[i], and the column plane (a mix of
/// all rows' currents) by the least-squares drive ratio. Results differ
/// from cold solves only within the solver tolerance. Not thread-safe
/// (one stream per tile-slot task).
class SolverStream final : public XbarStream {
 public:
  explicit SolverStream(SolverProgrammed* xbar) : xbar_(xbar) {}

  Tensor mvm_multi_active(const Tensor& v_block, std::int64_t rows_used,
                          std::int64_t cols_used) override {
    (void)rows_used;  // every row conducts regardless of drive voltage
    (void)cols_used;  // column currents all fall out of the same solve
    NVM_CHECK_EQ(v_block.rank(), 2u);
    const CrossbarConfig& cfg = xbar_->cfg();
    const SolverOptions& opt = xbar_->opt();
    const std::int64_t rows = cfg.rows, cols = cfg.cols, n = v_block.dim(1);
    NVM_CHECK_EQ(v_block.dim(0), rows);
    if (n == 0) return Tensor();
    count_mvm_multi_columns(n);
    const bool warm = opt.warm_start_streams;
    const std::size_t cells = static_cast<std::size_t>(rows * cols);
    if (warm) seeds_.resize(static_cast<std::size_t>(n));
    Tensor out({cols, n});
    Tensor v({rows});
    SolverWorkspace& ws = tls_workspace();
    for (std::int64_t k = 0; k < n; ++k) {
      for (std::int64_t i = 0; i < rows; ++i) v[i] = v_block.at(i, k);
      const SolverSeed* init = nullptr;
      if (warm) {
        ColumnState& sk = seeds_[static_cast<std::size_t>(k)];
        if (sk.seed.usable(cells)) {
          rescale_seed(sk, v, rows, cols);
        } else {
          // First chunk for this column (or a poisoned history): start
          // from the cold broadcast and let the flow refinement below
          // build the IR-drop profile analytically.
          scratch_.vr.resize(cells);
          scratch_.vc.assign(cells, 0.0);
          for (std::int64_t i = 0; i < rows; ++i)
            for (std::int64_t j = 0; j < cols; ++j)
              scratch_.vr[static_cast<std::size_t>(i * cols + j)] = v[i];
        }
        refine_seed(v, rows, cols);
        refine_seed(v, rows, cols);
        refine_seed(v, rows, cols);
        refine_seed(v, rows, cols);
        init = &scratch_;
      }
      SolveStats stats;
      Tensor y = solve_nodal(cfg, opt, xbar_->g(), v, ws, stats, init);
      if (warm) {
        ColumnState& sk = seeds_[static_cast<std::size_t>(k)];
        // A diverged solve must not poison the next chunk's seed.
        if (stats.finite) {
          sk.seed.vr.assign(ws.vr.begin(), ws.vr.end());
          sk.seed.vc.assign(ws.vc.begin(), ws.vc.end());
          sk.v_prev.assign(v.raw(), v.raw() + rows);
        } else {
          sk.seed.vr.clear();
          sk.seed.vc.clear();
        }
      }
      for (std::int64_t j = 0; j < cols; ++j) out.at(j, k) = y[j];
    }
    return out;
  }

 private:
  struct ColumnState {
    SolverSeed seed;             // previous converged node voltages
    std::vector<double> v_prev;  // the drive they were solved for
  };

  /// Builds scratch_ = sk.seed rescaled from sk.v_prev to the new drive.
  void rescale_seed(const ColumnState& sk, const Tensor& v, std::int64_t rows,
                    std::int64_t cols) {
    const std::size_t cells = static_cast<std::size_t>(rows * cols);
    const CrossbarConfig& cfg = xbar_->cfg();
    std::span<const double> g = xbar_->g();
    scratch_.vr.resize(cells);
    scratch_.vc.resize(cells);
    if (growsum_.empty()) {
      growsum_.resize(static_cast<std::size_t>(rows), 0.0);
      for (std::int64_t i = 0; i < rows; ++i)
        for (std::int64_t j = 0; j < cols; ++j)
          growsum_[static_cast<std::size_t>(i)] +=
              g[static_cast<std::size_t>(i * cols + j)];
    }
    const double tiny = 1e-12;
    for (std::int64_t i = 0; i < rows; ++i) {
      const double vp = sk.v_prev[static_cast<std::size_t>(i)];
      const std::size_t off = static_cast<std::size_t>(i * cols);
      if (std::abs(vp) > tiny) {
        // Row chains are independent linear systems driven by v[i], so in
        // the weakly-nonlinear regime the saved profile rescales exactly.
        const double si = static_cast<double>(v[i]) / vp;
        for (std::int64_t j = 0; j < cols; ++j)
          scratch_.vr[off + static_cast<std::size_t>(j)] =
              si * sk.seed.vr[off + static_cast<std::size_t>(j)];
      } else {
        // Previously undriven row: its saved profile carries no signal.
        // Seed with the closed-form IR-drop attenuation (fast-noise model):
        // far better than the flat broadcast, whose error is the entire
        // row-side drop and would dominate the seed's max-norm.
        for (std::int64_t j = 0; j < cols; ++j) {
          const double r_row = cfg.r_source + cfg.r_wire * static_cast<double>(j);
          scratch_.vr[off + static_cast<std::size_t>(j)] =
              v[i] / (1.0 + r_row * growsum_[static_cast<std::size_t>(i)]);
        }
      }
    }
    // Column plane: vc[.][j] tracks the column current, which mixes every
    // row, so rescale each column by the ratio of its predicted device
    // current under the new row voltages to the current it actually
    // carried — including the sinh superlinearity, which a plain G*V
    // ratio would misestimate at high drive.
    const double b = cfg.device_nonlin;
    for (std::int64_t j = 0; j < cols; ++j) {
      double inew = 0.0, iprev = 0.0;
      for (std::int64_t i = 0; i < rows; ++i) {
        const std::size_t c = static_cast<std::size_t>(i * cols + j);
        inew += device_current(g[c], scratch_.vr[c] - sk.seed.vc[c], b);
        iprev += device_current(g[c], sk.seed.vr[c] - sk.seed.vc[c], b);
      }
      const double tj = std::abs(iprev) > tiny ? inew / iprev : 0.0;
      for (std::int64_t i = 0; i < rows; ++i) {
        const std::size_t c = static_cast<std::size_t>(i * cols + j);
        scratch_.vc[c] = tj * sk.seed.vc[c];
      }
    }
  }

  /// One flow-based refinement pass over scratch_: predict every device
  /// current from the seed voltages, then rebuild both line-voltage planes
  /// in closed form — the wires are linear, so given the injected currents
  /// the row and column profiles follow exactly from cumulative sums. Each
  /// pass costs about half a relaxation sweep and shrinks the seed error
  /// by roughly the relative IR drop (~100x at these wire resistances).
  void refine_seed(const Tensor& v, std::int64_t rows, std::int64_t cols) {
    const CrossbarConfig& cfg = xbar_->cfg();
    std::span<const double> g = xbar_->g();
    const double b = cfg.device_nonlin;
    cur_.resize(static_cast<std::size_t>(rows * cols));
    for (std::size_t c = 0; c < cur_.size(); ++c)
      cur_[c] = device_current(g[c], scratch_.vr[c] - scratch_.vc[c], b);
    // Row plane: drive v[i] sits behind r_source at j=0; the segment
    // between columns j-1 and j carries every device current still to be
    // delivered downstream of it.
    for (std::int64_t i = 0; i < rows; ++i) {
      const std::size_t off = static_cast<std::size_t>(i * cols);
      double seg = 0.0;
      for (std::int64_t j = 0; j < cols; ++j)
        seg += cur_[off + static_cast<std::size_t>(j)];
      double vr = v[i] - seg * cfg.r_source;
      scratch_.vr[off] = vr;
      for (std::int64_t j = 1; j < cols; ++j) {
        seg -= cur_[off + static_cast<std::size_t>(j - 1)];
        vr -= seg * cfg.r_wire;
        scratch_.vr[off + static_cast<std::size_t>(j)] = vr;
      }
    }
    // Column plane: everything injected at or above node i flows down
    // through the segment below it and out through r_sink at the bottom.
    for (std::int64_t j = 0; j < cols; ++j) {
      double below = 0.0;
      for (std::int64_t i = 0; i < rows; ++i)
        below += cur_[static_cast<std::size_t>(i * cols + j)];
      double vc = below * cfg.r_sink;
      scratch_.vc[static_cast<std::size_t>((rows - 1) * cols + j)] = vc;
      for (std::int64_t i = rows - 2; i >= 0; --i) {
        below -= cur_[static_cast<std::size_t>((i + 1) * cols + j)];
        vc += below * cfg.r_wire;
        scratch_.vc[static_cast<std::size_t>(i * cols + j)] = vc;
      }
    }
  }

  std::vector<double> growsum_;  // per-row conductance sums (lazy)
  std::vector<double> cur_;      // predicted device currents (scratch)

  SolverProgrammed* xbar_;
  std::vector<ColumnState> seeds_;  // per RHS column
  SolverSeed scratch_;              // rescaled seed passed to solve_nodal
};

std::unique_ptr<XbarStream> SolverProgrammed::open_stream() {
  return std::make_unique<SolverStream>(this);
}

}  // namespace

std::unique_ptr<ProgrammedXbar> CircuitSolverModel::program(
    const Tensor& g) const {
  validate_conductances(g, cfg_);
  return std::make_unique<SolverProgrammed>(cfg_, opt_, g);
}

Tensor solve_crossbar(const CrossbarConfig& cfg, const SolverOptions& opt,
                      const Tensor& g, const Tensor& v, int* sweeps_used) {
  SolveStats stats;
  Tensor out = solve_crossbar(cfg, opt, g, v, &stats);
  if (sweeps_used != nullptr) *sweeps_used = stats.sweeps_used;
  return out;
}

Tensor solve_crossbar(const CrossbarConfig& cfg, const SolverOptions& opt,
                      const Tensor& g, const Tensor& v, SolveStats* stats) {
  validate_conductances(g, cfg);
  const std::vector<double> gd(g.data().begin(), g.data().end());
  SolveStats local;
  Tensor out = solve_nodal(cfg, opt, gd, v, tls_workspace(), local);
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace nvm::xbar

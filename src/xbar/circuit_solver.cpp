#include "xbar/circuit_solver.h"

#include <cmath>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/health.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "xbar/device.h"

namespace nvm::xbar {

namespace {

/// Thomas algorithm for a tridiagonal system. diag/rhs are overwritten.
/// `off` is the (constant) off-diagonal entry (-gw here, passed positive
/// and applied with its sign internally for clarity at the call sites).
void solve_tridiagonal(std::vector<double>& diag, std::vector<double>& rhs,
                       double off, std::vector<double>& out) {
  const std::size_t n = diag.size();
  // Forward elimination: eliminate the sub-diagonal (-off).
  for (std::size_t k = 1; k < n; ++k) {
    const double m = -off / diag[k - 1];
    diag[k] -= m * -off;
    rhs[k] -= m * rhs[k - 1];
  }
  out[n - 1] = rhs[n - 1] / diag[n - 1];
  for (std::size_t k = n - 1; k-- > 0;)
    out[k] = (rhs[k] + off * out[k + 1]) / diag[k];
}

/// Reusable relinearization/solve scratch. Every solve fully overwrites
/// each array before reading it, so reuse across solves (and across
/// crossbars of different sizes) cannot leak state between calls. One
/// instance lives per thread (see tls_workspace), which makes concurrent
/// mvm() calls on the same SolverProgrammed allocation-free and race-free.
struct SolverWorkspace {
  std::vector<double> geff;             // secant conductances
  std::vector<double> vr, vc;           // row/column node voltages
  std::vector<double> diag, rhs, sol;   // tridiagonal scratch
};

SolverWorkspace& tls_workspace() {
  thread_local SolverWorkspace ws;
  return ws;
}

/// Crossbar nodal analysis via block line relaxation: each outer iteration
/// re-linearizes the nonlinear devices (secant conductance), then solves
/// every row wire chain and every column wire chain exactly as tridiagonal
/// systems with the opposite side held fixed. The wire stiffness
/// (g_wire >> g_device) is handled inside the direct solves, so the outer
/// loop converges at the device/wire coupling rate — a handful of sweeps.
///
/// `g` is the programmed conductance matrix in row-major doubles; it is
/// read-only, so one programmed crossbar can be solved from many threads.
Tensor solve_nodal(const CrossbarConfig& cfg, const SolverOptions& opt,
                   std::span<const double> g, const Tensor& v,
                   SolverWorkspace& ws, SolveStats& stats) {
  NVM_TRACE_SPAN("xbar/solver/solve");
  const std::int64_t rows = cfg.rows, cols = cfg.cols;
  NVM_CHECK_EQ(v.numel(), rows);
  NVM_CHECK_EQ(g.size(), static_cast<std::size_t>(rows * cols));
  const double gs = 1.0 / cfg.r_source;
  const double gk = 1.0 / cfg.r_sink;
  const double gw = 1.0 / cfg.r_wire;
  const auto idx = [cols](std::int64_t i, std::int64_t j) {
    return static_cast<std::size_t>(i * cols + j);
  };

  const std::size_t cells = static_cast<std::size_t>(rows * cols);
  ws.geff.resize(cells);
  ws.vr.resize(cells);
  ws.vc.resize(cells);
  for (std::int64_t i = 0; i < rows; ++i)
    for (std::int64_t j = 0; j < cols; ++j) ws.vr[idx(i, j)] = v[i];
  std::fill(ws.vc.begin(), ws.vc.end(), 0.0);

  stats = SolveStats{};
  int sweep = 0;
  for (; sweep < opt.max_sweeps; ++sweep) {
    const double b = cfg.device_nonlin;
    for (std::size_t k = 0; k < cells; ++k)
      ws.geff[k] = device_secant_conductance(g[k], ws.vr[k] - ws.vc[k], b);

    // Row chains: unknowns vr[i][*]; vc held fixed.
    ws.diag.assign(static_cast<std::size_t>(cols), 0.0);
    ws.rhs.assign(static_cast<std::size_t>(cols), 0.0);
    ws.sol.assign(static_cast<std::size_t>(cols), 0.0);
    for (std::int64_t i = 0; i < rows; ++i) {
      for (std::int64_t j = 0; j < cols; ++j) {
        const std::size_t k = idx(i, j);
        double d = ws.geff[k];
        double r = ws.geff[k] * ws.vc[k];
        if (j == 0) {
          d += gs;
          r += gs * v[i];
        }
        if (j > 0) d += gw;
        if (j + 1 < cols) d += gw;
        ws.diag[static_cast<std::size_t>(j)] = d;
        ws.rhs[static_cast<std::size_t>(j)] = r;
      }
      solve_tridiagonal(ws.diag, ws.rhs, gw, ws.sol);
      for (std::int64_t j = 0; j < cols; ++j)
        ws.vr[idx(i, j)] = ws.sol[static_cast<std::size_t>(j)];
    }

    // Column chains: unknowns vc[*][j]; vr held fixed.
    double max_delta = 0.0;
    ws.diag.assign(static_cast<std::size_t>(rows), 0.0);
    ws.rhs.assign(static_cast<std::size_t>(rows), 0.0);
    ws.sol.assign(static_cast<std::size_t>(rows), 0.0);
    for (std::int64_t j = 0; j < cols; ++j) {
      for (std::int64_t i = 0; i < rows; ++i) {
        const std::size_t k = idx(i, j);
        double d = ws.geff[k];
        double r = ws.geff[k] * ws.vr[k];
        if (i > 0) d += gw;
        if (i + 1 < rows) d += gw;
        else d += gk;  // bottom node ties to ground through the sink
        ws.diag[static_cast<std::size_t>(i)] = d;
        ws.rhs[static_cast<std::size_t>(i)] = r;
      }
      solve_tridiagonal(ws.diag, ws.rhs, gw, ws.sol);
      for (std::int64_t i = 0; i < rows; ++i) {
        const std::size_t k = idx(i, j);
        max_delta = std::max(
            max_delta, std::abs(ws.sol[static_cast<std::size_t>(i)] - ws.vc[k]));
        ws.vc[k] = ws.sol[static_cast<std::size_t>(i)];
      }
    }

    stats.last_delta = max_delta;
    // A diverging relaxation shows up as NaN/Inf voltage movement; stop
    // sweeping immediately — further sweeps only churn NaN.
    if (!std::isfinite(max_delta)) {
      ++sweep;
      stats.finite = false;
      break;
    }
    // Converge on relative voltage movement against the drive scale.
    if (max_delta < opt.tol * cfg.v_read + 1e-15) {
      ++sweep;
      stats.converged = true;
      break;
    }
  }
  stats.sweeps_used = sweep;
  static metrics::Counter& m_solves = metrics::counter("solver/solves");
  static metrics::Counter& m_sweeps = metrics::counter("solver/sweeps");
  m_solves.add();
  m_sweeps.add(static_cast<std::uint64_t>(sweep));
  if (!stats.ok()) {
    const std::uint64_t n = bump(HealthCounter::SolverNonConverged);
    if (health_should_log(n))
      NVM_LOG(Warn) << "crossbar solve " << (stats.finite ? "hit max_sweeps"
                                                          : "diverged")
                    << " on " << cfg.name << " (" << rows << "x" << cols
                    << "): sweeps=" << sweep
                    << " last_delta=" << stats.last_delta
                    << " tol=" << opt.tol * cfg.v_read
                    << " (non-converged total " << n << ")";
  }

  Tensor out({cols});
  for (std::int64_t j = 0; j < cols; ++j)
    out[j] = static_cast<float>(ws.vc[idx(rows - 1, j)] * gk);
  guard_output_finite(out, "circuit_solver");
  return out;
}

class SolverProgrammed final : public ProgrammedXbar {
 public:
  SolverProgrammed(CrossbarConfig cfg, SolverOptions opt, const Tensor& g)
      : cfg_(std::move(cfg)),
        opt_(opt),
        g_(g.data().begin(), g.data().end()) {}

  // Programming converted the conductances to doubles once; each call
  // borrows the calling thread's workspace, so repeated / concurrent mvm()
  // neither copies the matrix nor allocates relinearization state.
  Tensor mvm(const Tensor& v) override {
    SolveStats stats;
    return solve_nodal(cfg_, opt_, g_, v, tls_workspace(), stats);
  }

 private:
  CrossbarConfig cfg_;
  SolverOptions opt_;
  std::vector<double> g_;
};

}  // namespace

std::unique_ptr<ProgrammedXbar> CircuitSolverModel::program(
    const Tensor& g) const {
  validate_conductances(g, cfg_);
  return std::make_unique<SolverProgrammed>(cfg_, opt_, g);
}

Tensor solve_crossbar(const CrossbarConfig& cfg, const SolverOptions& opt,
                      const Tensor& g, const Tensor& v, int* sweeps_used) {
  SolveStats stats;
  Tensor out = solve_crossbar(cfg, opt, g, v, &stats);
  if (sweeps_used != nullptr) *sweeps_used = stats.sweeps_used;
  return out;
}

Tensor solve_crossbar(const CrossbarConfig& cfg, const SolverOptions& opt,
                      const Tensor& g, const Tensor& v, SolveStats* stats) {
  validate_conductances(g, cfg);
  const std::vector<double> gd(g.data().begin(), g.data().end());
  SolveStats local;
  Tensor out = solve_nodal(cfg, opt, gd, v, tls_workspace(), local);
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace nvm::xbar

#include "xbar/fast_noise.h"

#include <vector>

#include "common/check.h"
#include "xbar/device.h"

namespace nvm::xbar {

namespace {

class FastNoiseProgrammed final : public ProgrammedXbar {
 public:
  FastNoiseProgrammed(const CrossbarConfig& cfg, Tensor g)
      : cfg_(cfg), g_(std::move(g)) {
    const std::int64_t rows = cfg_.rows, cols = cfg_.cols;
    growsum_.assign(static_cast<std::size_t>(rows), 0.0);
    gsum_.assign(static_cast<std::size_t>(cols), 0.0);
    for (std::int64_t i = 0; i < rows; ++i)
      for (std::int64_t j = 0; j < cols; ++j) {
        const double gij = g_.at(i, j);
        growsum_[static_cast<std::size_t>(i)] += gij;
        gsum_[static_cast<std::size_t>(j)] += gij;
      }
    col_atten_.assign(static_cast<std::size_t>(cols), 1.0);
    const double r_col = cfg_.r_sink + 0.5 * cfg_.r_wire * rows;
    for (std::int64_t j = 0; j < cols; ++j)
      col_atten_[static_cast<std::size_t>(j)] =
          1.0 / (1.0 + r_col * gsum_[static_cast<std::size_t>(j)]);
  }

  Tensor mvm(const Tensor& v) override {
    NVM_CHECK_EQ(v.numel(), cfg_.rows);
    const std::int64_t rows = cfg_.rows, cols = cfg_.cols;
    const double b = cfg_.device_nonlin;
    Tensor out({cols});
    for (std::int64_t j = 0; j < cols; ++j) {
      const double r_row_base = cfg_.r_source + cfg_.r_wire * j;
      double acc = 0.0;
      for (std::int64_t i = 0; i < rows; ++i) {
        const double atten =
            1.0 / (1.0 + r_row_base * growsum_[static_cast<std::size_t>(i)]);
        const double v_eff =
            v[i] * atten * col_atten_[static_cast<std::size_t>(j)];
        acc += device_current(g_.at(i, j), v_eff, b);
      }
      out[j] = static_cast<float>(acc);
    }
    guard_output_finite(out, "fast_noise");
    return out;
  }

 private:
  const CrossbarConfig& cfg_;
  Tensor g_;
  std::vector<double> growsum_, gsum_, col_atten_;
};

}  // namespace

std::unique_ptr<ProgrammedXbar> FastNoiseModel::program(const Tensor& g) const {
  validate_conductances(g, cfg_);
  return std::make_unique<FastNoiseProgrammed>(cfg_, g);
}

}  // namespace nvm::xbar

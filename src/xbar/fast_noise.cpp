#include "xbar/fast_noise.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/simd.h"
#include "xbar/device.h"

namespace nvm::xbar {

namespace {

/// Compiled chunk kernel for the fast-noise model: everything in
/// mvm_chunks_active that does not depend on the input — the per-cell
/// attenuation divide and the per-(cell, code) contribution tables for
/// BOTH sinhc branches, plus the per-cell branch cutoff — is hoisted to
/// compile time, leaving only the code gather per sample at run time.
///
/// Two tables per cell are required for bit identity: the interpreter
/// picks its branch per call from the row's max code (vmax = double(
/// v_unit * float(cmax)) with its own rounding), and near the 1.2
/// threshold the poly and exact forms differ in the last ULPs, so the
/// kernel must reproduce the same branch choice, not just "a" sinhc.
/// float(v_unit * float(c)) is monotone in c, so the branch condition
/// fails first at a well-defined cutoff code per cell; at run time the
/// row's cmax is compared against it. Table entries themselves are
/// cmax-independent (each is a function of the code alone), and both
/// builders below run the interpreter's exact op sequence.
class FastNoiseFusedKernel final : public FusedChunkKernel {
 public:
  FastNoiseFusedKernel(const CrossbarConfig& cfg, const Tensor& g,
                       const std::vector<double>& growsum,
                       const std::vector<double>& col_atten, float v_unit,
                       int max_code)
      : rows_(cfg.rows), cols_(cfg.cols), v_unit_(v_unit),
        codes_(max_code + 1) {
    const double b = cfg.device_nonlin;
    const float* pgf = g.raw();
    tabs_.resize(static_cast<std::size_t>(cols_ * rows_ * 2 * codes_));
    cut_.resize(static_cast<std::size_t>(cols_ * rows_));
    for (std::int64_t j = 0; j < cols_; ++j) {
      const double r_row_base = cfg.r_source + cfg.r_wire * j;
      const double catten = col_atten[static_cast<std::size_t>(j)];
      for (std::int64_t i = 0; i < rows_; ++i) {
        const double atten =
            1.0 / (1.0 + r_row_base * growsum[static_cast<std::size_t>(i)]);
        const double gij = pgf[i * cols_ + j];
        const double s = atten * catten;
        // Smallest cmax whose row fails the interpreter's poly condition;
        // rows with cmax below it take the polynomial branch.
        int cut = max_code + 1;
        for (int c = 1; c <= max_code; ++c) {
          const double vmax =
              static_cast<double>(v_unit * static_cast<float>(c));
          if (!(std::abs(b) * s * vmax < 1.2)) {
            cut = c;
            break;
          }
        }
        cut_[static_cast<std::size_t>(j * rows_ + i)] =
            static_cast<std::int8_t>(cut);
        double* poly =
            tabs_.data() + static_cast<std::size_t>((j * rows_ + i) * 2) *
                               static_cast<std::size_t>(codes_);
        double* exact = poly + codes_;
        for (int c = 0; c <= max_code; ++c) {
          const float vf = v_unit * static_cast<float>(c);
          const double v_eff = static_cast<double>(vf) * atten * catten;
          const double x = b * v_eff;
          const double x2 = x * x;
          constexpr double c1 = 1.0 / 6.0, c2 = 1.0 / 120.0;
          constexpr double c3 = 1.0 / 5040.0, c4 = 1.0 / 362880.0;
          const double shc =
              1.0 + x2 * (c1 + x2 * (c2 + x2 * (c3 + x2 * c4)));
          poly[c] = gij * v_eff * shc;
          exact[c] = device_current(gij, v_eff, b);
        }
      }
    }
  }

  void run(const ChunkBlock& cb, std::int64_t rows_used,
           std::int64_t cols_used, float* out,
           simd::Workspace& ws) const override {
    NVM_CHECK_EQ(cb.rows, rows_);
    NVM_CHECK_EQ(cb.v_unit, v_unit_);
    const std::int64_t n = cb.n;
    if (n == 0) return;
    count_mvm_multi_columns(n);
    std::span<double> acc = ws.doubles(11, static_cast<std::size_t>(n));
    for (std::int64_t j = 0; j < cols_used; ++j) {
      const double* cells =
          tabs_.data() + static_cast<std::size_t>(j * rows_ * 2) *
                             static_cast<std::size_t>(codes_);
      const std::int8_t* cut = cut_.data() + j * rows_;
      for (std::int64_t k = 0; k < n; ++k)
        acc[static_cast<std::size_t>(k)] = 0.0;
      for (std::int64_t i = 0; i < rows_used; ++i) {
        const int cmax = cb.row_max[i];
        if (cmax == 0) continue;  // all contributions exactly +0.0
        const double* tab = cells + (i * 2 + (cmax < cut[i] ? 0 : 1)) * codes_;
        const std::int8_t* crow = cb.chunk + i * n;
        for (std::int64_t k = 0; k < n; ++k)
          acc[static_cast<std::size_t>(k)] += tab[crow[k]];
      }
      float* orow = out + j * n;
      for (std::int64_t k = 0; k < n; ++k)
        orow[k] = static_cast<float>(acc[static_cast<std::size_t>(k)]);
    }
    guard_output_finite(out, cols_used * n, "fast_noise");
  }

 private:
  std::int64_t rows_, cols_;
  float v_unit_;
  std::int64_t codes_;
  std::vector<double> tabs_;     ///< [(j*rows + i) * 2 + branch][code]
  std::vector<std::int8_t> cut_; ///< [j*rows + i] poly/exact cutoff cmax
};

class FastNoiseProgrammed final : public ProgrammedXbar {
 public:
  FastNoiseProgrammed(const CrossbarConfig& cfg, Tensor g)
      : cfg_(cfg), g_(std::move(g)) {
    const std::int64_t rows = cfg_.rows, cols = cfg_.cols;
    growsum_.assign(static_cast<std::size_t>(rows), 0.0);
    gsum_.assign(static_cast<std::size_t>(cols), 0.0);
    for (std::int64_t i = 0; i < rows; ++i)
      for (std::int64_t j = 0; j < cols; ++j) {
        const double gij = g_.at(i, j);
        growsum_[static_cast<std::size_t>(i)] += gij;
        gsum_[static_cast<std::size_t>(j)] += gij;
      }
    col_atten_.assign(static_cast<std::size_t>(cols), 1.0);
    const double r_col = cfg_.r_sink + 0.5 * cfg_.r_wire * rows;
    for (std::int64_t j = 0; j < cols; ++j)
      col_atten_[static_cast<std::size_t>(j)] =
          1.0 / (1.0 + r_col * gsum_[static_cast<std::size_t>(j)]);
  }

  Tensor mvm(const Tensor& v) override {
    NVM_CHECK_EQ(v.numel(), cfg_.rows);
    const std::int64_t rows = cfg_.rows, cols = cfg_.cols;
    const double b = cfg_.device_nonlin;
    Tensor out({cols});
    for (std::int64_t j = 0; j < cols; ++j) {
      const double r_row_base = cfg_.r_source + cfg_.r_wire * j;
      double acc = 0.0;
      for (std::int64_t i = 0; i < rows; ++i) {
        const double atten =
            1.0 / (1.0 + r_row_base * growsum_[static_cast<std::size_t>(i)]);
        const double v_eff =
            v[i] * atten * col_atten_[static_cast<std::size_t>(j)];
        acc += device_current(g_.at(i, j), v_eff, b);
      }
      out[j] = static_cast<float>(acc);
    }
    guard_output_finite(out, "fast_noise");
    return out;
  }

  Tensor mvm_multi(const Tensor& v_block) override {
    NVM_CHECK_EQ(v_block.rank(), 2u);
    return mvm_multi_active(v_block, cfg_.rows, cfg_.cols);
  }

  std::unique_ptr<FusedChunkKernel> compile_chunk_kernel(
      float v_unit, int max_code) const override {
    // The table layout holds 2*(max_code+1) doubles per cell; stay within
    // the interpreter's 7-bit code assumption and a sane footprint
    // (8 MiB/kernel covers 256x256 tiles at stream_bits <= 5).
    if (max_code < 1 || max_code + 1 > 32) return nullptr;
    const std::int64_t doubles =
        cfg_.rows * cfg_.cols * 2 * (max_code + 1);
    if (doubles > (std::int64_t{1} << 20)) return nullptr;
    return std::make_unique<FastNoiseFusedKernel>(cfg_, g_, growsum_,
                                                  col_atten_, v_unit,
                                                  max_code);
  }

  Tensor mvm_chunks_active(const ChunkBlock& cb, std::int64_t rows_used,
                           std::int64_t cols_used) override {
    NVM_CHECK_EQ(cb.rows, cfg_.rows);
    const std::int64_t n = cb.n;
    if (n == 0) return Tensor();
    count_mvm_multi_columns(n);
    const double b = cfg_.device_nonlin;
    Tensor out({cfg_.cols, n});
    const float* pgf = g_.raw();
    thread_local simd::Workspace ws;
    std::span<double> acc = ws.doubles(0, static_cast<std::size_t>(n));
    // Integer DAC codes come from an alphabet of <= 128 values, so each
    // cell's contribution is one of <= row_max+1 doubles: precompute them
    // per (cell, code) and gather. Every table entry is produced by the
    // exact op sequence the voltage path runs per sample (v = v_unit *
    // float(code) as simd::scale computes it, then v*atten, *col_atten,
    // the same sinhc branch), and the branch choice keys off the same
    // vmax (v_unit*row_max is the row's max voltage by monotonicity), so
    // this is bit-identical to mvm_multi_active on materialized volts.
    double tab[129];
    for (std::int64_t j = 0; j < cols_used; ++j) {
      const double r_row_base = cfg_.r_source + cfg_.r_wire * j;
      const double catten = col_atten_[static_cast<std::size_t>(j)];
      for (std::int64_t k = 0; k < n; ++k)
        acc[static_cast<std::size_t>(k)] = 0.0;
      for (std::int64_t i = 0; i < rows_used; ++i) {
        const int cmax = cb.row_max[i];
        if (cmax == 0) continue;  // all contributions exactly +0.0
        const double atten =
            1.0 / (1.0 + r_row_base * growsum_[static_cast<std::size_t>(i)]);
        const double gij = pgf[i * cfg_.cols + j];
        const double s = atten * catten;
        const double vmax =
            static_cast<double>(cb.v_unit * static_cast<float>(cmax));
        if (std::abs(b) * s * vmax < 1.2) {
          for (int c = 0; c <= cmax; ++c) {
            const float vf = cb.v_unit * static_cast<float>(c);
            const double v_eff = static_cast<double>(vf) * atten * catten;
            const double x = b * v_eff;
            const double x2 = x * x;
            constexpr double c1 = 1.0 / 6.0, c2 = 1.0 / 120.0;
            constexpr double c3 = 1.0 / 5040.0, c4 = 1.0 / 362880.0;
            const double shc =
                1.0 + x2 * (c1 + x2 * (c2 + x2 * (c3 + x2 * c4)));
            tab[c] = gij * v_eff * shc;
          }
        } else {
          for (int c = 0; c <= cmax; ++c) {
            const float vf = cb.v_unit * static_cast<float>(c);
            const double v_eff = static_cast<double>(vf) * atten * catten;
            tab[c] = device_current(gij, v_eff, b);
          }
        }
        const std::int8_t* crow = cb.chunk + i * n;
        for (std::int64_t k = 0; k < n; ++k)
          acc[static_cast<std::size_t>(k)] += tab[crow[k]];
      }
      float* orow = out.raw() + j * n;
      for (std::int64_t k = 0; k < n; ++k)
        orow[k] = static_cast<float>(acc[static_cast<std::size_t>(k)]);
    }
    guard_output_finite(out, "fast_noise");
    return out;
  }

  Tensor mvm_multi_active(const Tensor& v_block, std::int64_t rows_used,
                          std::int64_t cols_used) override {
    NVM_CHECK_EQ(v_block.rank(), 2u);
    NVM_CHECK_EQ(v_block.dim(0), cfg_.rows);
    const std::int64_t n = v_block.dim(1);
    if (n == 0) return Tensor();
    count_mvm_multi_columns(n);
    const double b = cfg_.device_nonlin;
    Tensor out({cfg_.cols, n});
    const float* pv = v_block.raw();
    const float* pg = g_.raw();
    thread_local simd::Workspace ws;
    std::span<double> acc = ws.doubles(0, static_cast<std::size_t>(n));
    std::span<double> vmax = ws.doubles(1, static_cast<std::size_t>(rows_used));
    for (std::int64_t i = 0; i < rows_used; ++i) {
      const float* vrow = pv + i * n;
      double m = 0.0;
      for (std::int64_t k = 0; k < n; ++k)
        m = std::max(m, std::abs(static_cast<double>(vrow[k])));
      vmax[static_cast<std::size_t>(i)] = m;
    }
    // Blocked across the RHS: the per-(i,j) attenuation divide is hoisted
    // out of the sample loop (the single-vector path pays it per sample).
    // Each sample keeps the exact op sequence of mvm() — v*atten, then
    // *col_atten, scalar device_current, ascending-i double accumulation —
    // so this is bit-identical to looping mvm() over the block.
    for (std::int64_t j = 0; j < cols_used; ++j) {
      const double r_row_base = cfg_.r_source + cfg_.r_wire * j;
      const double catten = col_atten_[static_cast<std::size_t>(j)];
      for (std::int64_t k = 0; k < n; ++k) acc[static_cast<std::size_t>(k)] = 0.0;
      for (std::int64_t i = 0; i < rows_used; ++i) {
        const double atten =
            1.0 / (1.0 + r_row_base * growsum_[static_cast<std::size_t>(i)]);
        const double gij = pg[i * cfg_.cols + j];
        const float* vrow = pv + i * n;
        const double s = atten * catten;
        if (std::abs(b) * s * vmax[static_cast<std::size_t>(i)] < 1.2) {
          // Every sample of this cell lands in sinhc's polynomial branch,
          // so the branch is uniform across the k loop and the body below
          // — the same double ops device_current performs, written out —
          // auto-vectorizes across samples. Bit-identical either way:
          // IEEE elementwise ops don't change under SIMD.
          for (std::int64_t k = 0; k < n; ++k) {
            const double v_eff = vrow[k] * atten * catten;
            const double x = b * v_eff;
            const double x2 = x * x;
            constexpr double c1 = 1.0 / 6.0, c2 = 1.0 / 120.0;
            constexpr double c3 = 1.0 / 5040.0, c4 = 1.0 / 362880.0;
            const double shc = 1.0 + x2 * (c1 + x2 * (c2 + x2 * (c3 + x2 * c4)));
            acc[static_cast<std::size_t>(k)] += gij * v_eff * shc;
          }
        } else {
          for (std::int64_t k = 0; k < n; ++k) {
            const double v_eff = vrow[k] * atten * catten;
            acc[static_cast<std::size_t>(k)] += device_current(gij, v_eff, b);
          }
        }
      }
      float* orow = out.raw() + j * n;
      for (std::int64_t k = 0; k < n; ++k)
        orow[k] = static_cast<float>(acc[static_cast<std::size_t>(k)]);
    }
    guard_output_finite(out, "fast_noise");
    return out;
  }

 private:
  const CrossbarConfig& cfg_;
  Tensor g_;
  std::vector<double> growsum_, gsum_, col_atten_;
};

}  // namespace

std::unique_ptr<ProgrammedXbar> FastNoiseModel::program(const Tensor& g) const {
  validate_conductances(g, cfg_);
  return std::make_unique<FastNoiseProgrammed>(cfg_, g);
}

}  // namespace nvm::xbar

#include "xbar/fast_noise.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/simd.h"
#include "xbar/device.h"

namespace nvm::xbar {

namespace {

class FastNoiseProgrammed final : public ProgrammedXbar {
 public:
  FastNoiseProgrammed(const CrossbarConfig& cfg, Tensor g)
      : cfg_(cfg), g_(std::move(g)) {
    const std::int64_t rows = cfg_.rows, cols = cfg_.cols;
    growsum_.assign(static_cast<std::size_t>(rows), 0.0);
    gsum_.assign(static_cast<std::size_t>(cols), 0.0);
    for (std::int64_t i = 0; i < rows; ++i)
      for (std::int64_t j = 0; j < cols; ++j) {
        const double gij = g_.at(i, j);
        growsum_[static_cast<std::size_t>(i)] += gij;
        gsum_[static_cast<std::size_t>(j)] += gij;
      }
    col_atten_.assign(static_cast<std::size_t>(cols), 1.0);
    const double r_col = cfg_.r_sink + 0.5 * cfg_.r_wire * rows;
    for (std::int64_t j = 0; j < cols; ++j)
      col_atten_[static_cast<std::size_t>(j)] =
          1.0 / (1.0 + r_col * gsum_[static_cast<std::size_t>(j)]);
  }

  Tensor mvm(const Tensor& v) override {
    NVM_CHECK_EQ(v.numel(), cfg_.rows);
    const std::int64_t rows = cfg_.rows, cols = cfg_.cols;
    const double b = cfg_.device_nonlin;
    Tensor out({cols});
    for (std::int64_t j = 0; j < cols; ++j) {
      const double r_row_base = cfg_.r_source + cfg_.r_wire * j;
      double acc = 0.0;
      for (std::int64_t i = 0; i < rows; ++i) {
        const double atten =
            1.0 / (1.0 + r_row_base * growsum_[static_cast<std::size_t>(i)]);
        const double v_eff =
            v[i] * atten * col_atten_[static_cast<std::size_t>(j)];
        acc += device_current(g_.at(i, j), v_eff, b);
      }
      out[j] = static_cast<float>(acc);
    }
    guard_output_finite(out, "fast_noise");
    return out;
  }

  Tensor mvm_multi(const Tensor& v_block) override {
    NVM_CHECK_EQ(v_block.rank(), 2u);
    return mvm_multi_active(v_block, cfg_.rows, cfg_.cols);
  }

  Tensor mvm_chunks_active(const ChunkBlock& cb, std::int64_t rows_used,
                           std::int64_t cols_used) override {
    NVM_CHECK_EQ(cb.rows, cfg_.rows);
    const std::int64_t n = cb.n;
    if (n == 0) return Tensor();
    count_mvm_multi_columns(n);
    const double b = cfg_.device_nonlin;
    Tensor out({cfg_.cols, n});
    const float* pgf = g_.raw();
    thread_local simd::Workspace ws;
    std::span<double> acc = ws.doubles(0, static_cast<std::size_t>(n));
    // Integer DAC codes come from an alphabet of <= 128 values, so each
    // cell's contribution is one of <= row_max+1 doubles: precompute them
    // per (cell, code) and gather. Every table entry is produced by the
    // exact op sequence the voltage path runs per sample (v = v_unit *
    // float(code) as simd::scale computes it, then v*atten, *col_atten,
    // the same sinhc branch), and the branch choice keys off the same
    // vmax (v_unit*row_max is the row's max voltage by monotonicity), so
    // this is bit-identical to mvm_multi_active on materialized volts.
    double tab[129];
    for (std::int64_t j = 0; j < cols_used; ++j) {
      const double r_row_base = cfg_.r_source + cfg_.r_wire * j;
      const double catten = col_atten_[static_cast<std::size_t>(j)];
      for (std::int64_t k = 0; k < n; ++k)
        acc[static_cast<std::size_t>(k)] = 0.0;
      for (std::int64_t i = 0; i < rows_used; ++i) {
        const int cmax = cb.row_max[i];
        if (cmax == 0) continue;  // all contributions exactly +0.0
        const double atten =
            1.0 / (1.0 + r_row_base * growsum_[static_cast<std::size_t>(i)]);
        const double gij = pgf[i * cfg_.cols + j];
        const double s = atten * catten;
        const double vmax =
            static_cast<double>(cb.v_unit * static_cast<float>(cmax));
        if (std::abs(b) * s * vmax < 1.2) {
          for (int c = 0; c <= cmax; ++c) {
            const float vf = cb.v_unit * static_cast<float>(c);
            const double v_eff = static_cast<double>(vf) * atten * catten;
            const double x = b * v_eff;
            const double x2 = x * x;
            constexpr double c1 = 1.0 / 6.0, c2 = 1.0 / 120.0;
            constexpr double c3 = 1.0 / 5040.0, c4 = 1.0 / 362880.0;
            const double shc =
                1.0 + x2 * (c1 + x2 * (c2 + x2 * (c3 + x2 * c4)));
            tab[c] = gij * v_eff * shc;
          }
        } else {
          for (int c = 0; c <= cmax; ++c) {
            const float vf = cb.v_unit * static_cast<float>(c);
            const double v_eff = static_cast<double>(vf) * atten * catten;
            tab[c] = device_current(gij, v_eff, b);
          }
        }
        const std::int8_t* crow = cb.chunk + i * n;
        for (std::int64_t k = 0; k < n; ++k)
          acc[static_cast<std::size_t>(k)] += tab[crow[k]];
      }
      float* orow = out.raw() + j * n;
      for (std::int64_t k = 0; k < n; ++k)
        orow[k] = static_cast<float>(acc[static_cast<std::size_t>(k)]);
    }
    guard_output_finite(out, "fast_noise");
    return out;
  }

  Tensor mvm_multi_active(const Tensor& v_block, std::int64_t rows_used,
                          std::int64_t cols_used) override {
    NVM_CHECK_EQ(v_block.rank(), 2u);
    NVM_CHECK_EQ(v_block.dim(0), cfg_.rows);
    const std::int64_t n = v_block.dim(1);
    if (n == 0) return Tensor();
    count_mvm_multi_columns(n);
    const double b = cfg_.device_nonlin;
    Tensor out({cfg_.cols, n});
    const float* pv = v_block.raw();
    const float* pg = g_.raw();
    thread_local simd::Workspace ws;
    std::span<double> acc = ws.doubles(0, static_cast<std::size_t>(n));
    std::span<double> vmax = ws.doubles(1, static_cast<std::size_t>(rows_used));
    for (std::int64_t i = 0; i < rows_used; ++i) {
      const float* vrow = pv + i * n;
      double m = 0.0;
      for (std::int64_t k = 0; k < n; ++k)
        m = std::max(m, std::abs(static_cast<double>(vrow[k])));
      vmax[static_cast<std::size_t>(i)] = m;
    }
    // Blocked across the RHS: the per-(i,j) attenuation divide is hoisted
    // out of the sample loop (the single-vector path pays it per sample).
    // Each sample keeps the exact op sequence of mvm() — v*atten, then
    // *col_atten, scalar device_current, ascending-i double accumulation —
    // so this is bit-identical to looping mvm() over the block.
    for (std::int64_t j = 0; j < cols_used; ++j) {
      const double r_row_base = cfg_.r_source + cfg_.r_wire * j;
      const double catten = col_atten_[static_cast<std::size_t>(j)];
      for (std::int64_t k = 0; k < n; ++k) acc[static_cast<std::size_t>(k)] = 0.0;
      for (std::int64_t i = 0; i < rows_used; ++i) {
        const double atten =
            1.0 / (1.0 + r_row_base * growsum_[static_cast<std::size_t>(i)]);
        const double gij = pg[i * cfg_.cols + j];
        const float* vrow = pv + i * n;
        const double s = atten * catten;
        if (std::abs(b) * s * vmax[static_cast<std::size_t>(i)] < 1.2) {
          // Every sample of this cell lands in sinhc's polynomial branch,
          // so the branch is uniform across the k loop and the body below
          // — the same double ops device_current performs, written out —
          // auto-vectorizes across samples. Bit-identical either way:
          // IEEE elementwise ops don't change under SIMD.
          for (std::int64_t k = 0; k < n; ++k) {
            const double v_eff = vrow[k] * atten * catten;
            const double x = b * v_eff;
            const double x2 = x * x;
            constexpr double c1 = 1.0 / 6.0, c2 = 1.0 / 120.0;
            constexpr double c3 = 1.0 / 5040.0, c4 = 1.0 / 362880.0;
            const double shc = 1.0 + x2 * (c1 + x2 * (c2 + x2 * (c3 + x2 * c4)));
            acc[static_cast<std::size_t>(k)] += gij * v_eff * shc;
          }
        } else {
          for (std::int64_t k = 0; k < n; ++k) {
            const double v_eff = vrow[k] * atten * catten;
            acc[static_cast<std::size_t>(k)] += device_current(gij, v_eff, b);
          }
        }
      }
      float* orow = out.raw() + j * n;
      for (std::int64_t k = 0; k < n; ++k)
        orow[k] = static_cast<float>(acc[static_cast<std::size_t>(k)]);
    }
    guard_output_finite(out, "fast_noise");
    return out;
  }

 private:
  const CrossbarConfig& cfg_;
  Tensor g_;
  std::vector<double> growsum_, gsum_, col_atten_;
};

}  // namespace

std::unique_ptr<ProgrammedXbar> FastNoiseModel::program(const Tensor& g) const {
  validate_conductances(g, cfg_);
  return std::make_unique<FastNoiseProgrammed>(cfg_, g);
}

}  // namespace nvm::xbar

// Device fault injection: stuck cells, line opens, conductance drift.
//
// Write noise (VariationModel) covers the benign imperfection of working
// devices; real NVM arrays additionally ship with *broken* ones. Yield
// studies and the nonideality-aware-training literature (Joksas et al.;
// Bhattacharjee & Panda) treat three fault classes as first-class
// robustness variables, all modelled here:
//   * stuck-at cells: forming/retention failures pin a device at G_ON
//     (stuck short) or G_OFF (stuck open) regardless of programming;
//   * line opens: a broken word/bit line disconnects an entire row or
//     column — its devices contribute no current (modelled as all-G_OFF);
//   * conductance drift: programmed state decays toward G_OFF over time,
//     G(t) = G_off + (G - G_off) * (1 + t/t0)^-nu (the standard power-law
//     retention model), parameterized by the time since programming.
//
// FaultModel mirrors VariationModel's decorator shape: program() rewrites
// the target conductances through the deterministic, chip-seeded fault map
// and hands the result to any base MvmModel — so the same faults flow
// through the circuit solver, the GENIEx surrogate, and the fast-noise
// path alike, and decorators compose (VariationModel over FaultModel keeps
// stuck cells stuck, because the fault rewrite runs last).
//
// With all rates zero and drift_time zero, apply_faults is the identity
// and FaultModel is bit-identical to its base model.
#pragma once

#include <cstdint>
#include <vector>

#include "xbar/mvm_model.h"

namespace nvm::xbar {

struct FaultOptions {
  double stuck_on_rate = 0.0;   ///< fraction of cells stuck at g_on
  double stuck_off_rate = 0.0;  ///< fraction of cells stuck at g_off
  double dead_row_rate = 0.0;   ///< probability a row line is open
  double dead_col_rate = 0.0;   ///< probability a column line is open
  double drift_time = 0.0;      ///< seconds since programming (0 = fresh)
  double drift_nu = 0.05;       ///< power-law drift exponent
  double drift_t0 = 1.0;        ///< drift reference time (s)
  std::uint64_t chip_seed = 1;  ///< identifies the physical die
};

/// Per-cell fault classification, fixed at model construction.
enum class CellFault : std::uint8_t { Healthy = 0, StuckOn = 1, StuckOff = 2 };

/// The deterministic fault pattern of one die (exposed for tests and for
/// experiment reports).
struct FaultMap {
  std::vector<CellFault> cell;        ///< (rows*cols), row-major
  std::vector<std::uint8_t> dead_row; ///< (rows), 1 = line open
  std::vector<std::uint8_t> dead_col; ///< (cols), 1 = line open
  std::int64_t stuck_on_cells = 0;
  std::int64_t stuck_off_cells = 0;
  std::int64_t dead_rows = 0;
  std::int64_t dead_cols = 0;
};

class FaultModel final : public MvmModel {
 public:
  FaultModel(std::shared_ptr<const MvmModel> base, FaultOptions opt);

  std::unique_ptr<ProgrammedXbar> program(const Tensor& g) const override;
  const CrossbarConfig& config() const override { return base_->config(); }
  std::string name() const override;

  /// The fault rewrite applied to a target matrix (exposed for tests):
  /// drift first (healthy decay of what was programmed), then stuck-at and
  /// line-open overrides, clamped to [g_off, g_on]. Deterministic in
  /// (chip_seed, device position); the identity when fault-free.
  Tensor apply_faults(const Tensor& g) const;

  const FaultMap& map() const { return map_; }
  const FaultOptions& options() const { return opt_; }

  /// Seconds since the last (re)programming, as seen by the drift law.
  double drift_time() const { return opt_.drift_time; }

  /// Moves the drift clock without rebuilding the model. The stuck-at /
  /// line-open map depends only on (chip_seed, geometry) — never on the
  /// drift clock — so mutating the age is safe and cheap; only the next
  /// program() call observes the new decay factor.
  void set_drift_time(double seconds);

  /// Models tile re-programming: freshly written conductances have not yet
  /// decayed, so the clock returns to zero. Stuck cells stay stuck.
  void reset_drift_clock() { set_drift_time(0.0); }

 private:
  std::shared_ptr<const MvmModel> base_;
  FaultOptions opt_;
  FaultMap map_;
};

}  // namespace nvm::xbar

// Non-ideality factor measurement (paper §III-A):
//   NF = Avg[(Ideal_Output - NonIdeal_Output) / Ideal_Output]
// averaged over random (G, V) samples and over columns whose ideal output
// is large enough for the ratio to be meaningful.
#pragma once

#include "xbar/mvm_model.h"

namespace nvm::xbar {

struct NfOptions {
  std::int64_t samples = 64;    ///< random (G, V) pairs
  double min_ideal_frac = 0.02; ///< skip columns with I_ideal below this
                                ///< fraction of full scale
  std::uint64_t seed = 3;
};

struct NfResult {
  double nf = 0.0;       ///< mean relative deviation
  double nf_stddev = 0.0;
  std::int64_t columns_measured = 0;
};

/// Measures NF of `model` against the ideal dot product.
NfResult measure_nf(const MvmModel& model, const NfOptions& opt = {});

}  // namespace nvm::xbar

// Full nodal analysis of the parasitic crossbar network.
//
// This is the repo's stand-in for the paper's HSPICE simulations: the
// ground-truth non-ideal MVM against which the GENIEx surrogate is trained
// and validated.
//
// Network topology (per Fig. 1 of the paper):
//
//   V_i --R_source-- vr[i][0] --R_wire-- vr[i][1] -- ... -- vr[i][C-1]
//                        |                  |                  |
//                     device(G_i0)      device(G_i1)       device(G_iC-1)
//                        |                  |                  |
//   vc[0][j] --R_wire-- vc[1][j] -- ... -- vc[R-1][j] --R_sink-- GND
//
// Devices follow the nonlinear I(V) = G*sinh(b*V)/b model. The solver uses
// block line relaxation: every outer sweep re-linearizes the devices
// (secant conductance), then solves each row wire chain and each column
// wire chain *exactly* as a tridiagonal system (Thomas algorithm) with the
// opposite side held fixed. The stiff wire coupling (g_wire >> g_device)
// lives inside the direct solves, so the outer loop converges at the weak
// device/wire coupling rate — a handful of sweeps even for 64x64 arrays.
//
// Output: I_j = current into the column-j sink resistor.
#pragma once

#include "xbar/mvm_model.h"

namespace nvm::xbar {

/// Update schedule for the block line relaxation.
enum class SweepOrdering {
  /// Red-black plane schedule: the row chains form one independent plane
  /// ("red") and the column chains the other ("black"), so each half-sweep
  /// runs ALL of its chains' Thomas recurrences in lockstep with the chain
  /// index as the contiguous inner loop — the elimination vectorizes
  /// across chains. Within a plane the chains do not couple, so the
  /// iterates (and results) are bit-identical to kLexicographic; only the
  /// loop nest order changes.
  kRedBlack,
  /// Legacy chain-at-a-time schedule (rows then columns, one tridiagonal
  /// solve at a time). Kept for A/B benchmarking.
  kLexicographic,
};

struct SolverOptions {
  /// Convergence threshold on node-voltage movement, relative to v_read.
  double tol = 1e-9;
  int max_sweeps = 200;
  /// When true, XbarStreams opened on a solver-programmed crossbar carry
  /// each RHS column's converged node voltages into the next chunk's solve
  /// (the DAC chunks of one input are strongly correlated, so the
  /// relaxation starts near the fixed point and needs fewer sweeps).
  /// Results agree with cold solves within the solve tolerance; cold
  /// entry points (mvm / mvm_multi) are unaffected. False restores
  /// stateless streams for A/B comparisons.
  bool warm_start_streams = true;
  /// Half-sweep schedule; kRedBlack is bit-identical and faster.
  SweepOrdering ordering = SweepOrdering::kRedBlack;
  /// Seed cold solves (no warm-start seed available) with a coarse-grid
  /// analytic guess instead of the flat broadcast: per-row IR-drop
  /// attenuation averaged over coarse column blocks for the row plane,
  /// plus one linearized current-flow reconstruction for the column plane.
  /// Costs about half a sweep, typically saves one or two full sweeps.
  /// Counted under solver/coarse_starts.
  bool coarse_start = true;
  /// Under-relaxation factor for the outer block sweeps: each plane solve
  /// moves the node voltages by `relaxation` times the exact line-solve
  /// update. 1.0 (the default) takes the exact update and is bit-identical
  /// to the historical solver; values in (0, 1) damp the outer iteration,
  /// trading sweeps for stability on stiff / strongly nonlinear arrays.
  double relaxation = 1.0;
  /// When a solve exhausts max_sweeps or diverges, retry it once from a
  /// cold start with halved relaxation and doubled max_sweeps before
  /// accepting the scrubbed-output fallback. The retry is counted under
  /// solver/retries and reported in SolveStats::retries; only a failure
  /// of the *retry* bumps HealthCounter::SolverNonConverged.
  bool retry_on_nonconvergence = true;
};

/// Outcome of one nodal solve. A solve that exhausts max_sweeps or
/// diverges into NaN is not silently accepted: it is reported here,
/// counted under HealthCounter::SolverNonConverged, and warned about once
/// per throttle window. Output currents are always finite (non-finite
/// values are scrubbed to zero via guard_output_finite).
struct SolveStats {
  int sweeps_used = 0;
  bool converged = false;  ///< tolerance met within max_sweeps
  bool finite = true;      ///< false if node voltages diverged to NaN/Inf
  double last_delta = 0.0; ///< final sweep's max node-voltage movement (V)
  int retries = 0;         ///< damped cold re-solves taken after a failure

  bool ok() const { return converged && finite; }
};

class CircuitSolverModel final : public MvmModel {
 public:
  explicit CircuitSolverModel(CrossbarConfig cfg, SolverOptions opt = {})
      : cfg_(std::move(cfg)), opt_(opt) {}

  std::unique_ptr<ProgrammedXbar> program(const Tensor& g) const override;
  const CrossbarConfig& config() const override { return cfg_; }
  std::string name() const override { return "circuit_solver"; }

 private:
  CrossbarConfig cfg_;
  SolverOptions opt_;
};

/// One-shot solve (programs then evaluates); returns column currents and,
/// via out parameter, the number of sweeps used (for convergence tests).
Tensor solve_crossbar(const CrossbarConfig& cfg, const SolverOptions& opt,
                      const Tensor& g, const Tensor& v,
                      int* sweeps_used = nullptr);

/// One-shot solve with the full outcome report.
Tensor solve_crossbar(const CrossbarConfig& cfg, const SolverOptions& opt,
                      const Tensor& g, const Tensor& v, SolveStats* stats);

}  // namespace nvm::xbar

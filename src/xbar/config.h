// Crossbar electrical configuration.
//
// Units are SI (ohms, siemens, volts, amps). The three named presets
// reproduce Table I of the paper: NF is directly proportional to crossbar
// size and inversely proportional to R_ON, giving
//   64x64_300k  -> NF ~ 0.07
//   32x32_100k  -> NF ~ 0.14
//   64x64_100k  -> NF ~ 0.26
// Parasitic values were calibrated once against the in-repo circuit solver
// (see bench_table1_nf) to land in the paper's NF range.
#pragma once

#include <cstdint>
#include <string>

namespace nvm::xbar {

struct CrossbarConfig {
  std::string name = "custom";
  std::int64_t rows = 64;
  std::int64_t cols = 64;

  double r_on = 100e3;       ///< device ON resistance (ohm)
  double on_off_ratio = 20;  ///< R_OFF / R_ON
  std::int64_t levels = 16;  ///< programmable conductance levels per device

  double r_source = 450.0;  ///< driver output resistance per row (ohm)
  double r_sink = 560.0;    ///< sense/ground resistance per column (ohm)
  double r_wire = 3.4;      ///< metal resistance per cell segment (ohm)

  double v_read = 0.25;       ///< full-scale DAC voltage (V)
  double device_nonlin = 2.0; ///< sinh coefficient b in I = G*sinh(b*V)/b

  double g_on() const { return 1.0 / r_on; }
  double g_off() const { return 1.0 / (r_on * on_off_ratio); }
  /// Full-scale column current: every device ON, every input at v_read.
  double i_scale() const { return v_read * g_on() * static_cast<double>(rows); }

  /// Stable identifier for cache keys ("64x64_300k_rw2.5_...").
  std::string tag() const;
};

/// Table I presets.
CrossbarConfig xbar_64x64_300k();
CrossbarConfig xbar_32x32_100k();
CrossbarConfig xbar_64x64_100k();

/// Preset lookup by paper name; throws on unknown name.
CrossbarConfig preset(const std::string& name);

}  // namespace nvm::xbar

#include "xbar/mlp.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/simd.h"

namespace nvm::xbar {

float fast_tanh(float x) { return simd::tanh_fast(x); }

MlpRegressor::MlpRegressor(std::int64_t in_dim, std::int64_t hidden, Rng& rng)
    : in_dim_(in_dim),
      hidden_(hidden),
      w1_(Tensor::normal({hidden, in_dim}, 0.0f,
                         std::sqrt(1.0f / static_cast<float>(in_dim)), rng)),
      b1_(Tensor::zeros({hidden})),
      w2_(Tensor::normal({hidden}, 0.0f,
                         std::sqrt(1.0f / static_cast<float>(hidden)), rng)),
      b2_(Tensor::zeros({1})) {
  NVM_CHECK(in_dim > 0 && hidden > 0);
}

void MlpRegressor::save(BinaryWriter& w) const {
  w.write_i64(in_dim_);
  w.write_i64(hidden_);
  w1_.save(w);
  b1_.save(w);
  w2_.save(w);
  b2_.save(w);
}

MlpRegressor MlpRegressor::load(BinaryReader& r) {
  const std::int64_t in_dim = r.read_i64();
  const std::int64_t hidden = r.read_i64();
  Rng dummy(0);
  MlpRegressor m(in_dim, hidden, dummy);
  m.w1_ = Tensor::load(r);
  m.b1_ = Tensor::load(r);
  m.w2_ = Tensor::load(r);
  m.b2_ = Tensor::load(r);
  NVM_CHECK_EQ(m.w1_.dim(0), hidden);
  NVM_CHECK_EQ(m.w1_.dim(1), in_dim);
  return m;
}

float MlpRegressor::predict(std::span<const float> features) const {
  NVM_CHECK_EQ(static_cast<std::int64_t>(features.size()), in_dim_);
  float out;
  predict_block(features.data(), 1, &out);
  return out;
}

void MlpRegressor::predict_block(const float* features_t, std::int64_t n,
                                 float* out) const {
  // Whole-block forward through the gemm microtiles of the active simd
  // tier: hid = b1 + W1 * F, tanh, out = b2 + w2 * act — two gemm_accum
  // calls instead of a per-hidden-row madd sweep, so the hidden layer
  // runs 4xW broadcast-FMA microtiles (W = the tier's lane count).
  //
  // Columns are padded to a multiple of 16 (one AVX-512 vector; a whole
  // number of AVX2/NEON vectors): the gemm kernels handle remainder
  // columns with an unfused scalar tail, so without padding a sample's
  // result would depend on its position within the block and therefore on
  // the batch width n. With every real column inside the vector FMA body,
  // out[s] is invariant to n — the batch-invariance GENIEx's mvm paths
  // are pinned to — and the vector tiers agree bit-for-bit with each
  // other (per column the FMA chain is lane-width-independent); only the
  // scalar tier differs, by the documented gemm [~ulp] bound.
  constexpr std::int64_t kPad = 16;
  const std::int64_t np = (n + kPad - 1) / kPad * kPad;
  const float* w1 = w1_.raw();
  simd::WorkspacePool::Lease lease = simd::shared_workspace_pool().acquire();
  simd::Workspace& ws = lease.get();
  std::span<float> fp = ws.floats(0, static_cast<std::size_t>(in_dim_ * np));
  std::span<float> hid = ws.floats(1, static_cast<std::size_t>(hidden_ * np));
  std::span<float> op = ws.floats(2, static_cast<std::size_t>(np));

  // Stage features into the padded block; padding columns are zeroed so
  // their (discarded) accumulators stay finite through tanh.
  for (std::int64_t i = 0; i < in_dim_; ++i) {
    float* row = fp.data() + i * np;
    std::copy(features_t + i * n, features_t + (i + 1) * n, row);
    std::fill(row + n, row + np, 0.0f);
  }
  for (std::int64_t h = 0; h < hidden_; ++h)
    std::fill(hid.data() + h * np, hid.data() + (h + 1) * np, b1_[h]);
  simd::gemm_accum(hid.data(), w1, fp.data(), hidden_, np, in_dim_, in_dim_,
                   np, np);
  simd::tanh_block(hid.data(), hidden_ * np);
  std::fill(op.data(), op.data() + np, b2_[0]);
  simd::gemm_accum(op.data(), w2_.raw(), hid.data(), 1, np, hidden_, hidden_,
                   np, np);
  std::copy(op.data(), op.data() + n, out);
}

float MlpRegressor::train(const Tensor& x, const Tensor& y,
                          const MlpTrainOptions& opt) {
  NVM_CHECK_EQ(x.rank(), 2u);
  NVM_CHECK_EQ(x.dim(1), in_dim_);
  NVM_CHECK_EQ(x.dim(0), y.numel());
  const std::int64_t n = x.dim(0);
  NVM_CHECK_GT(n, 0);

  Rng rng(opt.seed);
  // Adam state.
  struct AdamState {
    Tensor m, v;
    explicit AdamState(const Shape& s) : m(Tensor::zeros(s)), v(Tensor::zeros(s)) {}
  };
  Tensor* params[4] = {&w1_, &b1_, &w2_, &b2_};
  std::vector<AdamState> adam;
  for (Tensor* p : params) adam.emplace_back(p->shape());
  const float beta1 = 0.9f, beta2 = 0.999f, eps = 1e-8f;
  std::int64_t t = 0;

  std::vector<std::int64_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);

  Tensor gw1(w1_.shape()), gb1(b1_.shape()), gw2(w2_.shape()), gb2(b2_.shape());
  std::vector<float> hidden_pre(static_cast<std::size_t>(hidden_));
  std::vector<float> hidden_act(static_cast<std::size_t>(hidden_));

  float last_epoch_mse = 0.0f;
  for (std::int64_t epoch = 0; epoch < opt.epochs; ++epoch) {
    rng.shuffle(order);
    double se = 0.0;
    for (std::int64_t start = 0; start < n; start += opt.batch) {
      const std::int64_t stop = std::min(n, start + opt.batch);
      gw1.fill(0);
      gb1.fill(0);
      gw2.fill(0);
      gb2.fill(0);
      for (std::int64_t s = start; s < stop; ++s) {
        const std::int64_t row = order[static_cast<std::size_t>(s)];
        const float* fx = x.raw() + row * in_dim_;
        // Forward.
        float out = b2_[0];
        for (std::int64_t h = 0; h < hidden_; ++h) {
          float acc = b1_[h];
          const float* wrow = w1_.raw() + h * in_dim_;
          for (std::int64_t i = 0; i < in_dim_; ++i) acc += wrow[i] * fx[i];
          hidden_pre[static_cast<std::size_t>(h)] = acc;
          hidden_act[static_cast<std::size_t>(h)] = fast_tanh(acc);
          out += w2_[h] * hidden_act[static_cast<std::size_t>(h)];
        }
        const float err = out - y[row];
        se += static_cast<double>(err) * err;
        // Backward (d/dout of 0.5*err^2 = err).
        gb2[0] += err;
        for (std::int64_t h = 0; h < hidden_; ++h) {
          const float a = hidden_act[static_cast<std::size_t>(h)];
          gw2[h] += err * a;
          const float dh = err * w2_[h] * (1.0f - a * a);
          gb1[h] += dh;
          float* grow = gw1.raw() + h * in_dim_;
          for (std::int64_t i = 0; i < in_dim_; ++i) grow[i] += dh * fx[i];
        }
      }
      // Adam step.
      ++t;
      const float count = static_cast<float>(stop - start);
      Tensor* grads[4] = {&gw1, &gb1, &gw2, &gb2};
      const float bc1 = 1.0f - std::pow(beta1, static_cast<float>(t));
      const float bc2 = 1.0f - std::pow(beta2, static_cast<float>(t));
      for (int pi = 0; pi < 4; ++pi) {
        auto pv = params[pi]->data();
        auto pg = grads[pi]->data();
        auto pm = adam[static_cast<std::size_t>(pi)].m.data();
        auto pvv = adam[static_cast<std::size_t>(pi)].v.data();
        for (std::size_t j = 0; j < pv.size(); ++j) {
          const float g = pg[j] / count;
          pm[j] = beta1 * pm[j] + (1 - beta1) * g;
          pvv[j] = beta2 * pvv[j] + (1 - beta2) * g * g;
          const float mhat = pm[j] / bc1;
          const float vhat = pvv[j] / bc2;
          pv[j] -= opt.lr * mhat / (std::sqrt(vhat) + eps);
        }
      }
    }
    last_epoch_mse = static_cast<float>(se / n);
  }
  return last_epoch_mse;
}

float MlpRegressor::mse(const Tensor& x, const Tensor& y) const {
  NVM_CHECK_EQ(x.rank(), 2u);
  NVM_CHECK_EQ(x.dim(0), y.numel());
  double se = 0.0;
  for (std::int64_t i = 0; i < x.dim(0); ++i) {
    const float p = predict({x.raw() + i * in_dim_,
                             static_cast<std::size_t>(in_dim_)});
    const float err = p - y[i];
    se += static_cast<double>(err) * err;
  }
  return static_cast<float>(se / std::max<std::int64_t>(1, x.dim(0)));
}

}  // namespace nvm::xbar

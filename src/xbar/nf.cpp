#include "xbar/nf.h"

#include <cmath>

#include "common/check.h"
#include "xbar/geniex.h"

namespace nvm::xbar {

NfResult measure_nf(const MvmModel& model, const NfOptions& opt) {
  const CrossbarConfig& cfg = model.config();
  Rng rng(opt.seed);
  const double floor = opt.min_ideal_frac * cfg.i_scale();

  double sum = 0.0, sum_sq = 0.0;
  std::int64_t n = 0;
  for (std::int64_t s = 0; s < opt.samples; ++s) {
    Tensor g = sample_conductances(cfg, rng);
    Tensor v = sample_voltages(cfg, rng);
    Tensor i_ideal = ideal_mvm(g, v);
    auto programmed = model.program(g);
    Tensor i_ni = programmed->mvm(v);
    NVM_CHECK_EQ(i_ni.numel(), cfg.cols);
    for (std::int64_t j = 0; j < cfg.cols; ++j) {
      if (i_ideal[j] < floor) continue;
      const double rel = (i_ideal[j] - i_ni[j]) / i_ideal[j];
      sum += rel;
      sum_sq += rel * rel;
      ++n;
    }
  }
  NfResult out;
  out.columns_measured = n;
  if (n > 0) {
    out.nf = sum / n;
    const double var = sum_sq / n - out.nf * out.nf;
    out.nf_stddev = std::sqrt(std::max(0.0, var));
  }
  return out;
}

}  // namespace nvm::xbar

#include "xbar/model_zoo.h"

namespace nvm::xbar {

const std::vector<std::string>& paper_model_names() {
  static const std::vector<std::string> names = {"64x64_300k", "32x32_100k",
                                                 "64x64_100k"};
  return names;
}

std::shared_ptr<GeniexModel> make_geniex(const std::string& name) {
  return std::make_shared<GeniexModel>(
      GeniexModel::load_or_train(preset(name)));
}

std::shared_ptr<CircuitSolverModel> make_solver(const std::string& name) {
  return std::make_shared<CircuitSolverModel>(preset(name));
}

}  // namespace nvm::xbar

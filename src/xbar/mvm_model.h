// Crossbar MVM model interface.
//
// Mirrors real deployment: a conductance matrix is *programmed* once,
// yielding a ProgrammedXbar handle that can evaluate many input vectors.
// Programming is where model-specific precomputation happens (column
// conductance sums, surrogate feature normalizers, ...).
//
// Conventions: g is (rows, cols) in siemens with entries in
// [g_off, g_on]; v is (rows) in volts with entries in [0, v_read];
// the result is (cols) column currents in amps.
#pragma once

#include <memory>
#include <string>

#include "tensor/tensor.h"
#include "xbar/config.h"

namespace nvm::simd {
class Workspace;
}

namespace nvm::xbar {

class XbarStream;

/// Integer view of a DAC voltage block (DESIGN.md §13): the voltages the
/// tiled GEMM would apply are exactly v_unit * float(chunk[i*n + k]) with
/// chunk codes in [0, 2^stream_bits - 1]. Models that understand the code
/// alphabet can exploit it (e.g. per-cell lookup tables over the <= 128
/// possible codes) while remaining bit-identical to evaluating the
/// materialized float voltages.
struct ChunkBlock {
  const std::int8_t* chunk = nullptr;    ///< (rows, n) row-major DAC codes
  const std::int8_t* row_max = nullptr;  ///< per-row max code (rows entries)
  std::int64_t rows = 0;
  std::int64_t n = 0;
  float v_unit = 0.0f;  ///< volts per code step
};

/// A compiled, input-independent evaluation kernel for the chunk MVM of
/// one programmed crossbar (see ProgrammedXbar::compile_chunk_kernel).
/// Where mvm_chunks_active rebuilds its per-cell code tables on every
/// call, a fused kernel precomputes everything that depends only on
/// programmed state and the DAC code alphabet, leaving just the per-cell
/// gather at run time. Contract: run() writes the same (cols_used x n)
/// currents mvm_chunks_active would return — bit-identical — into
/// caller-provided scratch (row j of the tile's output at out + j*n), and
/// performs the same metric/health accounting (count_mvm_multi_columns +
/// non-finite scrub). Kernels borrow the xbar (keep it alive) and are
/// immutable after compile: run() is safe to call concurrently.
class FusedChunkKernel {
 public:
  virtual ~FusedChunkKernel() = default;

  /// Evaluates the chunk block; `cb.v_unit` must equal the v_unit the
  /// kernel was compiled for and codes must stay <= the compiled
  /// max_code. `out` must hold cols_used * n floats (fully overwritten).
  /// `ws` provides the kernel's scratch — planned per task by the caller
  /// instead of ad-hoc thread_local buffers (kernels use double slot 11
  /// so they never alias the tiled-GEMM's own slots).
  virtual void run(const ChunkBlock& cb, std::int64_t rows_used,
                   std::int64_t cols_used, float* out,
                   simd::Workspace& ws) const = 0;
};

/// A conductance matrix resident on a (model of a) crossbar.
///
/// Thread-safety contract: after program() returns, a ProgrammedXbar is
/// immutable — mvm()/mvm_batch()/mvm_batch_active()/mvm_multi*() must be
/// safe to call concurrently on the same object. The parallel execution
/// layer relies on this in two places: the default mvm_batch() fans input
/// vectors across the thread pool, and puma::TiledMatrix::matmul evaluates
/// programmed tiles concurrently. Implementations needing mutable solve
/// state keep it per-thread (see SolverProgrammed's thread-local
/// workspace) or per-stream (see open_stream()).
class ProgrammedXbar {
 public:
  virtual ~ProgrammedXbar() = default;

  /// Single-vector MVM: (rows) -> (cols). Must be const-like (see class
  /// comment): no observable mutation of shared state.
  virtual Tensor mvm(const Tensor& v) = 0;

  /// Batched MVM: v_batch is (rows, n) -> (cols, n). Default evaluates
  /// each column through mvm(), fanning the independent columns across
  /// nvm::parallel_for; results are bit-identical for any thread count.
  virtual Tensor mvm_batch(const Tensor& v_batch);

  /// Batched MVM with an activity hint for partially-used tiles: rows
  /// beyond `rows_used` are guaranteed to carry zero volts and columns
  /// beyond `cols_used` will never be read (their outputs may be left
  /// zero). Models may exploit this to skip arithmetic whose contribution
  /// is exactly zero; the physics (column loading by unused g_off devices)
  /// is unchanged because programmed state already includes them.
  /// Default ignores the hint.
  virtual Tensor mvm_batch_active(const Tensor& v_batch,
                                  std::int64_t rows_used,
                                  std::int64_t cols_used);

  /// Multi-RHS MVM evaluated on the CALLING thread: v_block is (rows, n)
  /// -> (cols, n). Contract: bit-identical to evaluating mvm() per column
  /// (the blocked overrides vectorize across columns while keeping each
  /// column's accumulation order unchanged). This is the primitive the
  /// tiled GEMM drives per tile-slot task; unlike mvm_batch() it never
  /// touches the thread pool. Default loops mvm().
  virtual Tensor mvm_multi(const Tensor& v_block);

  /// mvm_multi with the same activity hint semantics as
  /// mvm_batch_active(). Default ignores the hint.
  virtual Tensor mvm_multi_active(const Tensor& v_block,
                                  std::int64_t rows_used,
                                  std::int64_t cols_used);

  /// mvm_multi_active driven by integer DAC codes instead of materialized
  /// voltages. Contract: bit-identical to mvm_multi_active on the float
  /// block volts[i][k] = cb.v_unit * float(cb.chunk[i*n + k]). The default
  /// materializes exactly that block and forwards; models override to
  /// exploit the small code alphabet (see FastNoiseModel).
  virtual Tensor mvm_chunks_active(const ChunkBlock& cb,
                                   std::int64_t rows_used,
                                   std::int64_t cols_used);

  /// Compiles a fused, input-independent kernel for mvm_chunks_active
  /// with DAC step `v_unit` and codes in [0, max_code] (the execution-plan
  /// layer calls this once per tile at plan build). Returns nullptr when
  /// the model has no profitable fused form (the default) — callers fall
  /// back to the stream path. Non-null kernels are bit-identical to
  /// mvm_chunks_active by the FusedChunkKernel contract.
  virtual std::unique_ptr<FusedChunkKernel> compile_chunk_kernel(
      float v_unit, int max_code) const;

  /// Opens an evaluation stream for a sequence of RELATED v-blocks (the
  /// DAC bit-stream chunks of one tiled-GEMM input). A stream may carry
  /// model state between calls — e.g. the circuit solver warm-starts each
  /// solve from the previous chunk's node voltages — so results may differ
  /// from cold mvm_multi_active() within the model's solve tolerance. The
  /// default stream is stateless and forwards to mvm_multi_active()
  /// verbatim. Streams borrow the xbar (keep it alive) and are NOT
  /// thread-safe; use one stream per thread/task.
  virtual std::unique_ptr<XbarStream> open_stream();
};

/// Stateful evaluation handle from ProgrammedXbar::open_stream().
class XbarStream {
 public:
  virtual ~XbarStream() = default;

  /// Same shapes and hint semantics as ProgrammedXbar::mvm_multi_active.
  virtual Tensor mvm_multi_active(const Tensor& v_block,
                                  std::int64_t rows_used,
                                  std::int64_t cols_used) = 0;

  /// Same contract as ProgrammedXbar::mvm_chunks_active (bit-identical to
  /// mvm_multi_active on the materialized voltages); default materializes
  /// and forwards through this stream.
  virtual Tensor mvm_chunks_active(const ChunkBlock& cb,
                                   std::int64_t rows_used,
                                   std::int64_t cols_used);
};

/// Factory for programmed crossbars of one electrical configuration.
class MvmModel {
 public:
  virtual ~MvmModel() = default;

  /// Programs `g` onto a crossbar; g must be (rows, cols) within config
  /// conductance bounds (validated).
  virtual std::unique_ptr<ProgrammedXbar> program(const Tensor& g) const = 0;

  virtual const CrossbarConfig& config() const = 0;
  virtual std::string name() const = 0;

  /// True when this model's MVM is the exact digital dot product (no
  /// analog non-ideality beyond conductance mapping). The tiled GEMM uses
  /// this to route the whole evaluation through the integer bit-slice
  /// pipeline (DESIGN.md §13) without programming-model round trips.
  virtual bool is_ideal() const { return false; }

  /// True when programmed crossbars of this model override
  /// mvm_chunks_active with something faster than voltage
  /// materialization.
  virtual bool supports_chunk_mvm() const { return false; }
};

/// Validates shape and conductance range of a matrix to be programmed.
void validate_conductances(const Tensor& g, const CrossbarConfig& cfg);

/// Tallies `n` columns under xbar/mvm_multi_columns; every mvm_multi*
/// override calls this so the metric stays model-independent.
void count_mvm_multi_columns(std::int64_t n);

/// Scrubs NaN/Inf entries from a crossbar output (replaced with 0 — a
/// dead column reads no current), counting them under
/// HealthCounter::NonFiniteOutput with a throttled warning tagged `who`.
/// Returns the number of entries scrubbed. Every analog model output
/// passes through this guard so a diverged solve or a wild surrogate
/// prediction degrades instead of propagating NaN into the network.
std::int64_t guard_output_finite(Tensor& out, const char* who);

/// Raw-buffer overload for kernels that write into caller scratch instead
/// of a Tensor (same scrub + health accounting).
std::int64_t guard_output_finite(float* out, std::int64_t n, const char* who);

/// Exact I_j = sum_i V_i * G_ij — "accurate digital" reference.
class IdealXbarModel final : public MvmModel {
 public:
  explicit IdealXbarModel(CrossbarConfig cfg) : cfg_(std::move(cfg)) {}

  std::unique_ptr<ProgrammedXbar> program(const Tensor& g) const override;
  const CrossbarConfig& config() const override { return cfg_; }
  std::string name() const override { return "ideal"; }
  bool is_ideal() const override { return true; }

 private:
  CrossbarConfig cfg_;
};

/// Ideal MVM as a free function (used by models to compute I_ideal).
Tensor ideal_mvm(const Tensor& g, const Tensor& v);
Tensor ideal_mvm_batch(const Tensor& g, const Tensor& v_batch);

}  // namespace nvm::xbar

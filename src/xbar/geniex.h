// GENIEx-style crossbar surrogate (paper §II-A, ref [15]).
//
// A 2-layer perceptron learns the deviation between the ideal dot product
// and the circuit-solver (HSPICE stand-in) output. The network does not
// consume the raw (V, G) tensors: it consumes a compact set of
// physics-informed features of the programmed conductance matrix and the
// applied voltage vector — column conductance load, row loading, wire
// distance weighting, input activity, device energy — which is what makes
// the surrogate fast enough to sit inside every DNN MVM while remaining
// data-dependent in the same way the full solver is.
//
// Prediction target: the *relative* deviation
//   r_j = (I_ideal_j - I_nonideal_j) / max(I_ideal_j, floor)
// with floor = kGeniexRelFloor * i_scale, so surrogate error scales with
// the signal and small-current columns keep bounded relative error.
#pragma once

#include "xbar/circuit_solver.h"
#include "xbar/fast_noise.h"
#include "xbar/mlp.h"
#include "xbar/mvm_model.h"

namespace nvm::xbar {

/// Number of per-column features fed to the surrogate MLP.
inline constexpr std::int64_t kGeniexFeatureCount = 10;

/// Denominator floor for the relative-deviation target, as a fraction of
/// the full-scale column current.
inline constexpr float kGeniexRelFloor = 0.02f;

struct GeniexTrainOptions {
  std::int64_t solver_samples = 320;  ///< random (G, V) circuit solves
  std::int64_t hidden = 28;
  MlpTrainOptions mlp;
  std::uint64_t seed = 11;
  SolverOptions solver;
};

/// Result of a surrogate fit, with its validation error against held-out
/// solver data (normalized by i_scale).
struct GeniexFit {
  MlpRegressor mlp;
  float train_mse = 0.0f;
  float val_mse = 0.0f;
};

/// Surrogate trust envelope. The MLP predicts a *relative* deviation; on
/// physical hardware the non-ideal current satisfies 0 <= I <= I_ideal, so
/// r lives in [0, 1] (small negative values are tolerable regression
/// noise). A prediction far outside that envelope — or a NaN — means the
/// surrogate is being driven off its training distribution (e.g. by an
/// injected fault pattern); rather than trust it or crash, the affected
/// input vector is re-evaluated on the closed-form fast-noise model. Every
/// such degradation bumps HealthCounter::SurrogateFallback and is warned
/// about (throttled); experiments report the count next to accuracy.
struct GeniexGuardOptions {
  bool enabled = true;
  float rel_min = -0.5f;  ///< below: surrogate claims implausible gain
  float rel_max = 1.5f;   ///< above: claims more than total current loss
};

class GeniexModel final : public MvmModel {
 public:
  GeniexModel(CrossbarConfig cfg, MlpRegressor mlp,
              GeniexGuardOptions guard = {});

  /// Trains a fresh surrogate against the circuit solver.
  static GeniexFit fit(const CrossbarConfig& cfg, const GeniexTrainOptions& opt);

  /// Cached fit: loads surrogate weights from the file cache when present
  /// (keyed by the electrical config and train options), trains otherwise.
  static GeniexModel load_or_train(const CrossbarConfig& cfg,
                                   const GeniexTrainOptions& opt = {});

  std::unique_ptr<ProgrammedXbar> program(const Tensor& g) const override;
  const CrossbarConfig& config() const override { return cfg_; }
  std::string name() const override { return "geniex"; }

  const MlpRegressor& mlp() const { return mlp_; }

  const GeniexGuardOptions& guard() const { return guard_; }
  void set_guard(const GeniexGuardOptions& guard) { guard_ = guard; }

 private:
  CrossbarConfig cfg_;
  MlpRegressor mlp_;
  GeniexGuardOptions guard_;
  FastNoiseModel fallback_;  ///< degradation target for out-of-envelope MVMs
};

/// Assembles the per-column feature matrix (cols x kGeniexFeatureCount)
/// for one (G, V) pair. Exposed for training and tests.
Tensor geniex_features(const CrossbarConfig& cfg, const Tensor& g,
                       const Tensor& v);

/// Samples a random conductance matrix representative of sliced DNN
/// weights (mixture of uniform, level-quantized, and near-g_off patterns).
Tensor sample_conductances(const CrossbarConfig& cfg, Rng& rng);

/// Samples a random input voltage vector representative of bit-streamed
/// post-ReLU activations (dense, sparse, binary, low-amplitude mixtures).
Tensor sample_voltages(const CrossbarConfig& cfg, Rng& rng);

}  // namespace nvm::xbar

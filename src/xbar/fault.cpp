#include "xbar/fault.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace nvm::xbar {

FaultModel::FaultModel(std::shared_ptr<const MvmModel> base, FaultOptions opt)
    : base_(std::move(base)), opt_(opt) {
  NVM_CHECK(base_ != nullptr);
  NVM_CHECK(opt_.stuck_on_rate >= 0 && opt_.stuck_off_rate >= 0 &&
            opt_.stuck_on_rate + opt_.stuck_off_rate <= 1.0,
            "stuck rates must be a sub-unit partition: on="
                << opt_.stuck_on_rate << " off=" << opt_.stuck_off_rate);
  NVM_CHECK(opt_.dead_row_rate >= 0 && opt_.dead_row_rate <= 1);
  NVM_CHECK(opt_.dead_col_rate >= 0 && opt_.dead_col_rate <= 1);
  NVM_CHECK(opt_.drift_time >= 0 && opt_.drift_nu >= 0 && opt_.drift_t0 > 0);

  // Device (i, j) / line i of chip k draws from its own stable stream, so
  // the same chip has the same faults across programmings (and across
  // fault-rate-independent positions: a device that survives at 1% also
  // survives at 0.5%, since the comparison is against one fixed draw).
  const CrossbarConfig& cfg = base_->config();
  const std::int64_t rows = cfg.rows, cols = cfg.cols;
  const auto cells = static_cast<std::uint64_t>(rows * cols);
  map_.cell.assign(cells, CellFault::Healthy);
  map_.dead_row.assign(static_cast<std::size_t>(rows), 0);
  map_.dead_col.assign(static_cast<std::size_t>(cols), 0);
  Rng chip(0xFA017D1EULL ^ opt_.chip_seed);
  for (std::uint64_t k = 0; k < cells; ++k) {
    Rng dev = chip.split(k);
    const double u = dev.uniform();
    if (u < opt_.stuck_on_rate) {
      map_.cell[k] = CellFault::StuckOn;
      ++map_.stuck_on_cells;
    } else if (u < opt_.stuck_on_rate + opt_.stuck_off_rate) {
      map_.cell[k] = CellFault::StuckOff;
      ++map_.stuck_off_cells;
    }
  }
  for (std::int64_t i = 0; i < rows; ++i) {
    Rng line = chip.split(cells + static_cast<std::uint64_t>(i));
    if (line.uniform() < opt_.dead_row_rate) {
      map_.dead_row[static_cast<std::size_t>(i)] = 1;
      ++map_.dead_rows;
    }
  }
  for (std::int64_t j = 0; j < cols; ++j) {
    Rng line = chip.split(cells + static_cast<std::uint64_t>(rows + j));
    if (line.uniform() < opt_.dead_col_rate) {
      map_.dead_col[static_cast<std::size_t>(j)] = 1;
      ++map_.dead_cols;
    }
  }
}

void FaultModel::set_drift_time(double seconds) {
  NVM_CHECK(seconds >= 0, "drift_time must be >= 0, got " << seconds);
  opt_.drift_time = seconds;
}

std::string FaultModel::name() const {
  std::ostringstream os;
  os << base_->name() << "+fault(chip" << opt_.chip_seed;
  if (opt_.stuck_on_rate > 0) os << ",on" << opt_.stuck_on_rate;
  if (opt_.stuck_off_rate > 0) os << ",off" << opt_.stuck_off_rate;
  if (opt_.dead_row_rate > 0) os << ",drow" << opt_.dead_row_rate;
  if (opt_.dead_col_rate > 0) os << ",dcol" << opt_.dead_col_rate;
  if (opt_.drift_time > 0) os << ",t" << opt_.drift_time << "s";
  os << ")";
  return os.str();
}

Tensor FaultModel::apply_faults(const Tensor& g) const {
  const CrossbarConfig& cfg = base_->config();
  validate_conductances(g, cfg);
  const float g_off = static_cast<float>(cfg.g_off());
  const float g_on = static_cast<float>(cfg.g_on());
  const bool drifting = opt_.drift_time > 0 && opt_.drift_nu > 0;
  const float decay =
      drifting ? static_cast<float>(
                     std::pow(1.0 + opt_.drift_time / opt_.drift_t0,
                              -opt_.drift_nu))
               : 1.0f;
  Tensor out = g;
  // Healthy cells are written only when drift is active, so the fault-free
  // rewrite is the bit-exact identity.
  for (std::int64_t i = 0; i < cfg.rows; ++i) {
    const bool row_dead = map_.dead_row[static_cast<std::size_t>(i)] != 0;
    for (std::int64_t j = 0; j < cfg.cols; ++j) {
      const auto k = static_cast<std::size_t>(i * cfg.cols + j);
      if (row_dead || map_.dead_col[static_cast<std::size_t>(j)] != 0) {
        out.at(i, j) = g_off;
        continue;
      }
      switch (map_.cell[k]) {
        case CellFault::StuckOn:
          out.at(i, j) = g_on;
          break;
        case CellFault::StuckOff:
          out.at(i, j) = g_off;
          break;
        case CellFault::Healthy:
          if (drifting)
            out.at(i, j) = std::clamp(
                g_off + (out.at(i, j) - g_off) * decay, g_off, g_on);
          break;
      }
    }
  }
  return out;
}

std::unique_ptr<ProgrammedXbar> FaultModel::program(const Tensor& g) const {
  return base_->program(apply_faults(g));
}

}  // namespace nvm::xbar

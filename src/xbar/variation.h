// Device variation: per-chip conductance programming noise.
//
// Real NVM devices land near — not on — their target conductance
// (write-and-verify leaves residual error), and the error pattern differs
// die to die. The paper's discussion (§V) points out that such chip-to-chip
// variation should further hinder the transferability of attacks crafted
// on one piece of analog hardware to another; the extension bench
// `bench_ext_chip_variation` measures exactly that with this model.
//
// VariationModel decorates any base MvmModel: program() first perturbs the
// target conductances with deterministic, chip-seeded noise (so "chip 7"
// always gets the same devices), then programs the perturbed matrix into
// the base model. Two noise components:
//   * lognormal multiplicative write error with sigma `write_sigma`
//     (relative, ~5-15% for RRAM write-verify);
//   * a per-device fixed offset drawn once per chip, modelling systematic
//     local process variation, with relative sigma `process_sigma`.
// Results are clamped back into [g_off, g_on] (the programmable range).
#pragma once

#include "xbar/mvm_model.h"

namespace nvm::xbar {

struct VariationOptions {
  double write_sigma = 0.05;    ///< lognormal sigma of write error
  double process_sigma = 0.03;  ///< relative sigma of per-device offset
  std::uint64_t chip_seed = 1;  ///< identifies the physical die
};

class VariationModel final : public MvmModel {
 public:
  VariationModel(std::shared_ptr<const MvmModel> base, VariationOptions opt);

  std::unique_ptr<ProgrammedXbar> program(const Tensor& g) const override;
  const CrossbarConfig& config() const override { return base_->config(); }
  std::string name() const override;

  /// The perturbation applied to a target matrix (exposed for tests):
  /// deterministic in (chip_seed, device position).
  Tensor perturb(const Tensor& g) const;

 private:
  std::shared_ptr<const MvmModel> base_;
  VariationOptions opt_;
};

}  // namespace nvm::xbar

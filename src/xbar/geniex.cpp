#include "xbar/geniex.h"

#include <algorithm>
#include <cmath>
#include <span>

#include "common/check.h"
#include "common/simd.h"
#include "common/file_cache.h"
#include "common/health.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "tensor/ops.h"

namespace nvm::xbar {

namespace {

/// Precomputed per-programming state shared by feature assembly.
struct ProgramStats {
  Tensor gt;       // (cols, rows)
  Tensor gtd;      // (cols, rows), g_ij * (rows-1-i)/rows (column-wire distance)
  Tensor gsum;     // (cols)
  Tensor growsum;  // (rows)
  float garr = 0;  // normalized total conductance

  ProgramStats(const CrossbarConfig& cfg, const Tensor& g) {
    const std::int64_t rows = cfg.rows, cols = cfg.cols;
    gt = transpose2d(g);
    gtd = Tensor({cols, rows});
    gsum = Tensor({cols});
    growsum = Tensor({rows});
    double total = 0.0;
    for (std::int64_t i = 0; i < rows; ++i) {
      double rsum = 0.0;
      for (std::int64_t j = 0; j < cols; ++j) {
        const float gij = g.at(i, j);
        rsum += gij;
        gsum[j] += gij;
        gtd.at(j, i) =
            gij * static_cast<float>(rows - 1 - i) / static_cast<float>(rows);
      }
      growsum[i] = static_cast<float>(rsum);
      total += rsum;
    }
    garr = static_cast<float>(total / (cfg.g_on() * rows * cols));
  }
};

/// Fills one feature row. `iid` is the ideal current of column j.
void fill_features(const CrossbarConfig& cfg, const ProgramStats& st,
                   std::int64_t j, float iid, float vbar, float v2bar,
                   float rbar, float e_j, float p_j, float w_j, float* out) {
  const auto rows = static_cast<float>(cfg.rows);
  const auto cols = static_cast<float>(cfg.cols);
  const float g_on = static_cast<float>(cfg.g_on());
  const float v_read = static_cast<float>(cfg.v_read);
  const float i_scale = static_cast<float>(cfg.i_scale());
  out[0] = iid / i_scale;
  out[1] = st.gsum[j] / (g_on * rows);
  out[2] = vbar;
  out[3] = v2bar;
  out[4] = e_j / (g_on * v_read * v_read * rows);
  out[5] = p_j / (g_on * g_on * v_read * rows * rows);
  out[6] = rbar;
  out[7] = cols > 1 ? static_cast<float>(j) / (cols - 1) : 0.0f;
  out[8] = st.garr;
  out[9] = w_j / (g_on * v_read * rows);
}

class GeniexProgrammed final : public ProgrammedXbar {
 public:
  GeniexProgrammed(const CrossbarConfig& cfg, const MlpRegressor& mlp,
                   const GeniexGuardOptions& guard,
                   const FastNoiseModel& fallback, Tensor g)
      : cfg_(cfg), mlp_(mlp), guard_(guard), stats_(cfg, g) {
    // The degradation target is programmed with the same conductances up
    // front, so a mid-batch fallback never re-enters program() (which
    // keeps concurrent mvm calls allocation- and race-free).
    if (guard_.enabled) fallback_xbar_ = fallback.program(g);
  }

  Tensor mvm(const Tensor& v) override {
    Tensor vb = v.reshaped({cfg_.rows, 1});
    Tensor out = mvm_batch(vb);
    return out.reshaped({cfg_.cols});
  }

  Tensor mvm_batch(const Tensor& vb) override {
    return eval_block(vb, cfg_.rows, cfg_.cols);
  }

  Tensor mvm_batch_active(const Tensor& vb, std::int64_t rows_used,
                          std::int64_t cols_used) override {
    return eval_block(vb, rows_used, cols_used);
  }

  Tensor mvm_multi(const Tensor& v_block) override {
    NVM_CHECK_EQ(v_block.rank(), 2u);
    count_mvm_multi_columns(v_block.dim(1));
    return eval_block(v_block, cfg_.rows, cfg_.cols);
  }

  Tensor mvm_multi_active(const Tensor& v_block, std::int64_t rows_used,
                          std::int64_t cols_used) override {
    NVM_CHECK_EQ(v_block.rank(), 2u);
    count_mvm_multi_columns(v_block.dim(1));
    return eval_block(v_block, rows_used, cols_used);
  }

 private:
  /// The blocked evaluation core behind every entry point. Runs entirely
  /// on the calling thread; every per-sample op sequence is independent of
  /// the block width, so any blocking of the same inputs (including n=1
  /// single-vector mvm) produces bit-identical outputs.
  Tensor eval_block(const Tensor& vb, std::int64_t rows_used,
                    std::int64_t cols_used) {
    NVM_TRACE_SPAN("xbar/geniex/mvm_batch");
    NVM_CHECK_EQ(vb.rank(), 2u);
    NVM_CHECK_EQ(vb.dim(0), cfg_.rows);
    NVM_CHECK(rows_used >= 1 && rows_used <= cfg_.rows);
    NVM_CHECK(cols_used >= 1 && cols_used <= cfg_.cols);
    const std::int64_t rows = cfg_.rows, cols = cfg_.cols, n = vb.dim(1);
    const float v_read = static_cast<float>(cfg_.v_read);
    const float g_on = static_cast<float>(cfg_.g_on());
    const float i_scale = static_cast<float>(cfg_.i_scale());

    // All per-call scratch lives in a per-thread workspace: one tiled
    // matmul evaluates thousands of chunk blocks, and the reused buffers
    // keep this path allocation-free after warm-up.
    thread_local simd::Workspace ws;
    const auto sz = [n](std::int64_t r) {
      return static_cast<std::size_t>(r * n);
    };

    // Elementwise input transforms (rows beyond rows_used are zero volts,
    // contributing exactly nothing to any sum below).
    std::span<float> vv = ws.floats(0, sz(rows_used));
    std::span<float> vr = ws.floats(1, sz(rows_used));
    const float* pvb = vb.raw();
    {
      float* pvv = vv.data();
      float* pvr = vr.data();
      for (std::int64_t i = 0; i < rows_used; ++i) {
        const float gr = stats_.growsum[i];
        const float* src = pvb + i * n;
        float* dv = pvv + i * n;
        float* dr = pvr + i * n;
        for (std::int64_t k = 0; k < n; ++k) {
          dv[k] = src[k] * src[k];
          dr[k] = src[k] * gr;
        }
      }
    }

    // Fused feature GEMMs over the active region.
    std::span<float> iid = ws.floats(2, sz(cols_used));
    std::span<float> e = ws.floats(3, sz(cols_used));
    std::span<float> p = ws.floats(4, sz(cols_used));
    std::span<float> wd = ws.floats(5, sz(cols_used));
    std::fill(iid.begin(), iid.end(), 0.0f);
    std::fill(e.begin(), e.end(), 0.0f);
    std::fill(p.begin(), p.end(), 0.0f);
    std::fill(wd.begin(), wd.end(), 0.0f);
    {
      const float* pgt = stats_.gt.raw();    // (cols, rows)
      const float* pgtd = stats_.gtd.raw();  // (cols, rows)
      const float* pvv = vv.data();
      const float* pvr = vr.data();
      for (std::int64_t j = 0; j < cols_used; ++j) {
        float* oi = iid.data() + j * n;
        float* oe = e.data() + j * n;
        float* op = p.data() + j * n;
        float* ow = wd.data() + j * n;
        const float* grow = pgt + j * rows;
        const float* gdrow = pgtd + j * rows;
        for (std::int64_t i = 0; i < rows_used; ++i) {
          const float g = grow[i];
          const float gd = gdrow[i];
          if (g == 0.0f && gd == 0.0f) continue;
          const float* xb = pvb + i * n;
          const float* xv = pvv + i * n;
          const float* xr = pvr + i * n;
          for (std::int64_t k = 0; k < n; ++k) {
            oi[k] += g * xb[k];
            oe[k] += g * xv[k];
            op[k] += g * xr[k];
            ow[k] += gd * xb[k];
          }
        }
      }
    }

    // Per-input-vector scalars.
    std::span<float> vbar = ws.floats(6, static_cast<std::size_t>(n));
    std::span<float> v2bar = ws.floats(7, static_cast<std::size_t>(n));
    std::span<float> rbar = ws.floats(8, static_cast<std::size_t>(n));
    std::fill(vbar.begin(), vbar.end(), 0.0f);
    std::fill(v2bar.begin(), v2bar.end(), 0.0f);
    std::fill(rbar.begin(), rbar.end(), 0.0f);
    {
      const float* pvv = vv.data();
      const float* pvr = vr.data();
      for (std::int64_t i = 0; i < rows_used; ++i) {
        const float* xb = pvb + i * n;
        const float* xv = pvv + i * n;
        const float* xr = pvr + i * n;
        for (std::int64_t k = 0; k < n; ++k) {
          vbar[static_cast<std::size_t>(k)] += xb[k];
          v2bar[static_cast<std::size_t>(k)] += xv[k];
          rbar[static_cast<std::size_t>(k)] += xr[k];
        }
      }
      const float nv = 1.0f / (v_read * rows);
      const float nv2 = 1.0f / (v_read * v_read * rows);
      const float nr = 1.0f / (g_on * v_read * rows * rows);
      for (std::int64_t k = 0; k < n; ++k) {
        vbar[static_cast<std::size_t>(k)] *= nv;
        v2bar[static_cast<std::size_t>(k)] *= nv2;
        rbar[static_cast<std::size_t>(k)] *= nr;
      }
    }

    Tensor out({cols, n});
    const float rel_floor = kGeniexRelFloor * i_scale;
    std::vector<std::uint8_t> out_of_envelope(static_cast<std::size_t>(n), 0);
    bool any_fallback = false;
    // Feature-major block (feature f of sample k at ft[f*n + k]) feeding
    // the batched MLP forward. Denominators are the exact float
    // expressions of fill_features, applied per sample, so each sample's
    // feature values match the looped path bit-for-bit — and
    // predict_block is batch-width-invariant (mlp.h), so the prediction
    // does too under whichever simd tier is active.
    std::span<float> ft =
        ws.floats(9, static_cast<std::size_t>(kGeniexFeatureCount * n));
    std::span<float> rel = ws.floats(10, static_cast<std::size_t>(n));
    const float rows_f = static_cast<float>(cfg_.rows);
    const float cols_f = static_cast<float>(cfg_.cols);
    const float d_e = g_on * v_read * v_read * rows_f;
    const float d_p = g_on * g_on * v_read * rows_f * rows_f;
    const float d_w = g_on * v_read * rows_f;
    const float d_g = g_on * rows_f;
    for (std::int64_t j = 0; j < cols_used; ++j) {
      const float* ji = iid.data() + j * n;
      const float* je = e.data() + j * n;
      const float* jp = p.data() + j * n;
      const float* jw = wd.data() + j * n;
      float* jo = out.raw() + j * n;
      float* F = ft.data();
      const float f_gsum = stats_.gsum[j] / d_g;
      const float f_pos =
          cols_f > 1 ? static_cast<float>(j) / (cols_f - 1) : 0.0f;
      for (std::int64_t k = 0; k < n; ++k) {
        F[0 * n + k] = ji[k] / i_scale;
        F[4 * n + k] = je[k] / d_e;
        F[5 * n + k] = jp[k] / d_p;
        F[9 * n + k] = jw[k] / d_w;
        F[1 * n + k] = f_gsum;
        F[7 * n + k] = f_pos;
        F[8 * n + k] = stats_.garr;
      }
      std::copy(vbar.begin(), vbar.end(), F + 2 * n);
      std::copy(v2bar.begin(), v2bar.end(), F + 3 * n);
      std::copy(rbar.begin(), rbar.end(), F + 6 * n);
      mlp_.predict_block(F, n, rel.data());
      for (std::int64_t k = 0; k < n; ++k) {
        const float r = rel[static_cast<std::size_t>(k)];
        if (guard_.enabled && (!std::isfinite(r) || r < guard_.rel_min ||
                               r > guard_.rel_max)) {
          // Out-of-envelope deviation: the surrogate is off its training
          // distribution for this input. Its whole column set for sample k
          // is distrusted and re-evaluated on the fallback model below.
          out_of_envelope[static_cast<std::size_t>(k)] = 1;
          any_fallback = true;
        }
        const float denom = std::max(ji[k], rel_floor);
        // Physical clamp: column current is non-negative and bounded by
        // the full-scale current.
        jo[k] = std::clamp(ji[k] - r * denom, 0.0f, i_scale);
      }
    }
    if (any_fallback) degrade_to_fallback(vb, out_of_envelope, cols_used, out);
    guard_output_finite(out, "geniex");
    static metrics::Counter& preds = metrics::counter("xbar/geniex/predictions");
    preds.add(static_cast<std::uint64_t>(cols_used * n));
    return out;
  }

 private:
  /// Replaces the output columns of every flagged sample with the
  /// fast-noise model's prediction (counted + logged, never a crash).
  void degrade_to_fallback(const Tensor& vb,
                           const std::vector<std::uint8_t>& flagged,
                           std::int64_t cols_used, Tensor& out) {
    const std::int64_t rows = cfg_.rows, n = vb.dim(1);
    std::uint64_t dropped = 0;
    for (std::int64_t k = 0; k < n; ++k) {
      if (flagged[static_cast<std::size_t>(k)] == 0) continue;
      ++dropped;
      Tensor v({rows});
      for (std::int64_t i = 0; i < rows; ++i) v[i] = vb.at(i, k);
      Tensor y = fallback_xbar_->mvm(v);
      for (std::int64_t j = 0; j < cols_used; ++j) out.at(j, k) = y[j];
    }
    const std::uint64_t total = bump(HealthCounter::SurrogateFallback, dropped);
    if (health_should_log(total))
      NVM_LOG(Warn) << "geniex surrogate out of envelope on " << cfg_.name
                    << " for " << dropped << " of " << n
                    << " input vector(s); fell back to fast_noise (total "
                    << total << ")";
  }

  const CrossbarConfig& cfg_;
  const MlpRegressor& mlp_;
  GeniexGuardOptions guard_;
  std::unique_ptr<ProgrammedXbar> fallback_xbar_;
  ProgramStats stats_;
};

}  // namespace

Tensor geniex_features(const CrossbarConfig& cfg, const Tensor& g,
                       const Tensor& v) {
  validate_conductances(g, cfg);
  NVM_CHECK_EQ(v.numel(), cfg.rows);
  ProgramStats st(cfg, g);
  const std::int64_t rows = cfg.rows, cols = cfg.cols;
  const float v_read = static_cast<float>(cfg.v_read);
  const float g_on = static_cast<float>(cfg.g_on());

  double sv = 0, sv2 = 0, sr = 0;
  for (std::int64_t i = 0; i < rows; ++i) {
    sv += v[i];
    sv2 += static_cast<double>(v[i]) * v[i];
    sr += static_cast<double>(v[i]) * st.growsum[i];
  }
  const float vbar = static_cast<float>(sv / (v_read * rows));
  const float v2bar = static_cast<float>(sv2 / (v_read * v_read * rows));
  const float rbar = static_cast<float>(sr / (g_on * v_read * rows * rows));

  Tensor iid = matvec(st.gt, v);
  Tensor e({cols}), p({cols}), wd({cols});
  for (std::int64_t j = 0; j < cols; ++j) {
    double ej = 0, pj = 0, wj = 0;
    for (std::int64_t i = 0; i < rows; ++i) {
      const float gij = st.gt.at(j, i);
      ej += static_cast<double>(gij) * v[i] * v[i];
      pj += static_cast<double>(gij) * v[i] * st.growsum[i];
      wj += static_cast<double>(st.gtd.at(j, i)) * v[i];
    }
    e[j] = static_cast<float>(ej);
    p[j] = static_cast<float>(pj);
    wd[j] = static_cast<float>(wj);
  }

  Tensor feats({cols, kGeniexFeatureCount});
  for (std::int64_t j = 0; j < cols; ++j)
    fill_features(cfg, st, j, iid[j], vbar, v2bar, rbar, e[j], p[j], wd[j],
                  feats.raw() + j * kGeniexFeatureCount);
  return feats;
}

Tensor sample_conductances(const CrossbarConfig& cfg, Rng& rng) {
  const float g_off = static_cast<float>(cfg.g_off());
  const float g_on = static_cast<float>(cfg.g_on());
  const float span = g_on - g_off;
  Tensor g({cfg.rows, cfg.cols});
  const int pattern = static_cast<int>(rng.uniform_index(3));
  const auto levels = static_cast<double>(cfg.levels - 1);
  for (auto& val : g.data()) {
    double u;
    switch (pattern) {
      case 0:  // uniform across the full range
        u = rng.uniform();
        break;
      case 1:  // quantized to device levels (as programmed weight slices)
        u = std::round(rng.uniform() * levels) / levels;
        break;
      default:  // mostly-OFF, like sliced near-zero DNN weights
        u = rng.bernoulli(0.3) ? rng.uniform() : rng.uniform() * 0.15;
        break;
    }
    val = g_off + span * static_cast<float>(u);
  }
  return g;
}

Tensor sample_voltages(const CrossbarConfig& cfg, Rng& rng) {
  const float v_read = static_cast<float>(cfg.v_read);
  Tensor v({cfg.rows});
  const int pattern = static_cast<int>(rng.uniform_index(4));
  const double sparsity = rng.uniform(0.3, 0.97);
  for (auto& val : v.data()) {
    switch (pattern) {
      case 0:  // dense DAC levels
        val = v_read * static_cast<float>(
                           std::round(rng.uniform() * 7.0) / 7.0);
        break;
      case 1:  // sparse post-ReLU-like
        val = rng.bernoulli(sparsity)
                  ? 0.0f
                  : v_read * static_cast<float>(rng.uniform());
        break;
      case 2:  // binary streams
        val = rng.bernoulli(0.5) ? v_read : 0.0f;
        break;
      default:  // low-amplitude
        val = v_read * static_cast<float>(rng.uniform() * 0.3);
        break;
    }
  }
  return v;
}

GeniexModel::GeniexModel(CrossbarConfig cfg, MlpRegressor mlp,
                         GeniexGuardOptions guard)
    : cfg_(std::move(cfg)),
      mlp_(std::move(mlp)),
      guard_(guard),
      fallback_(cfg_) {
  NVM_CHECK_EQ(mlp_.in_dim(), kGeniexFeatureCount);
  NVM_CHECK(guard_.rel_min < guard_.rel_max);
}

GeniexFit GeniexModel::fit(const CrossbarConfig& cfg,
                           const GeniexTrainOptions& opt) {
  trace::Span fit_span("xbar/geniex/fit");
  Rng rng(opt.seed);
  const std::int64_t n_samples = opt.solver_samples;
  NVM_CHECK_GT(n_samples, 10);
  const std::int64_t n_rows = n_samples * cfg.cols;
  Tensor x({n_rows, kGeniexFeatureCount});
  Tensor y({n_rows});
  const float i_scale = static_cast<float>(cfg.i_scale());

  NVM_LOG(Info) << "GENIEx fit for " << cfg.name << ": " << n_samples
                << " circuit solves across " << ThreadPool::current().size()
                << " thread(s)";
  // Each sample draws from its own split stream and writes disjoint rows
  // of (x, y), so the solves fan out across the pool with results
  // bit-identical to a serial run.
  parallel_for(n_samples, [&](std::int64_t s) {
    Rng srng = rng.split(static_cast<std::uint64_t>(s));
    Tensor g = sample_conductances(cfg, srng);
    Tensor v = sample_voltages(cfg, srng);
    Tensor feats = geniex_features(cfg, g, v);
    Tensor i_ideal = ideal_mvm(g, v);
    Tensor i_ni = solve_crossbar(cfg, opt.solver, g, v);
    for (std::int64_t j = 0; j < cfg.cols; ++j) {
      const std::int64_t row = s * cfg.cols + j;
      for (std::int64_t f = 0; f < kGeniexFeatureCount; ++f)
        x.at(row, f) = feats.at(j, f);
      const float denom = std::max(i_ideal[j], kGeniexRelFloor * i_scale);
      y[row] = (i_ideal[j] - i_ni[j]) / denom;
    }
  });

  // Hold out the last 12.5% of solves for validation.
  const std::int64_t n_train = (n_rows * 7) / 8;
  Tensor x_train({n_train, kGeniexFeatureCount});
  Tensor y_train({n_train});
  Tensor x_val({n_rows - n_train, kGeniexFeatureCount});
  Tensor y_val({n_rows - n_train});
  for (std::int64_t i = 0; i < n_rows; ++i) {
    Tensor& xd = (i < n_train) ? x_train : x_val;
    Tensor& yd = (i < n_train) ? y_train : y_val;
    const std::int64_t r = (i < n_train) ? i : i - n_train;
    for (std::int64_t f = 0; f < kGeniexFeatureCount; ++f)
      xd.at(r, f) = x.at(i, f);
    yd[r] = y[i];
  }

  Rng init_rng(opt.seed + 1);
  MlpRegressor mlp(kGeniexFeatureCount, opt.hidden, init_rng);
  const float train_mse = mlp.train(x_train, y_train, opt.mlp);
  const float val_mse = mlp.mse(x_val, y_val);
  metrics::counter("xbar/geniex/fits").add();
  metrics::gauge("xbar/geniex/fit_seconds").set(fit_span.seconds());
  metrics::gauge("xbar/geniex/val_mse").set(val_mse);
  NVM_LOG(Info) << "GENIEx " << cfg.name << " train_mse=" << train_mse
                << " val_mse=" << val_mse;
  return GeniexFit{std::move(mlp), train_mse, val_mse};
}

GeniexModel GeniexModel::load_or_train(const CrossbarConfig& cfg,
                                       const GeniexTrainOptions& opt) {
  // "ps1" marks the per-sample split-stream sampling scheme; bumping it
  // invalidates caches fitted from the old sequential-draw scheme.
  std::ostringstream tag;
  tag << cfg.tag() << "_s" << opt.solver_samples << "_h" << opt.hidden
      << "_e" << opt.mlp.epochs << "_seed" << opt.seed << "_ps1";
  const std::string file = "geniex_" + cfg.name + ".bin";

  std::optional<MlpRegressor> mlp;
  cache_load(file, tag.str(),
             [&](BinaryReader& r) { mlp = MlpRegressor::load(r); });
  if (!mlp.has_value()) {
    GeniexFit fitted = fit(cfg, opt);
    mlp = std::move(fitted.mlp);
    cache_store(file, tag.str(), [&](BinaryWriter& w) { mlp->save(w); });
  }
  return GeniexModel(cfg, std::move(*mlp));
}

std::unique_ptr<ProgrammedXbar> GeniexModel::program(const Tensor& g) const {
  validate_conductances(g, cfg_);
  return std::make_unique<GeniexProgrammed>(cfg_, mlp_, guard_, fallback_, g);
}

}  // namespace nvm::xbar

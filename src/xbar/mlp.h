// Small dense MLP regressor (one tanh hidden layer) with Adam training.
//
// This is the "2 layer perceptron network" of the GENIEx methodology
// (paper §II-A): it learns the mapping from crossbar state features to the
// non-ideal output current deviation. It is intentionally independent of
// the nn:: layer stack — inference here is a hot inner loop of every
// crossbar MVM, so it uses a fast tanh approximation consistently in both
// training and inference.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/serialize.h"
#include "tensor/tensor.h"

namespace nvm::xbar {

/// Rational tanh approximation, max abs error ~2e-3, ~10x faster than
/// std::tanh. The network is trained with the same function, so the
/// approximation error is absorbed by the fit.
float fast_tanh(float x);

struct MlpTrainOptions {
  std::int64_t epochs = 40;
  std::int64_t batch = 64;
  float lr = 3e-3f;
  std::uint64_t seed = 7;
};

class MlpRegressor {
 public:
  /// Xavier-initialized in_dim -> hidden(tanh) -> 1 network.
  MlpRegressor(std::int64_t in_dim, std::int64_t hidden, Rng& rng);

  /// Deserializing constructor.
  static MlpRegressor load(BinaryReader& r);
  void save(BinaryWriter& w) const;

  std::int64_t in_dim() const { return in_dim_; }
  std::int64_t hidden() const { return hidden_; }

  /// Predicts a single value from `in_dim` features. Delegates to
  /// predict_block with n = 1, so single and batched predictions are one
  /// code path (bit-identical by construction).
  float predict(std::span<const float> features) const;

  /// Batched predict over `n` samples laid out FEATURE-MAJOR:
  /// features_t[i * n + s] is feature i of sample s. Writes one prediction
  /// per sample into out[0..n). Runs on the widest usable nvm::simd gemm
  /// tier; samples are staged into a 16-column-padded block so every
  /// sample's accumulation takes the vector FMA body regardless of n —
  /// each out[s] is a pure function of sample s's features, independent of
  /// batch width (the GENIEx batch-invariance requirement). Across simd
  /// tiers the result carries the gemm kernels' [~ulp] parity contract
  /// (vector tiers agree bit-for-bit; the scalar tier differs by a few
  /// ULP because its multiply-adds are unfused).
  void predict_block(const float* features_t, std::int64_t n,
                     float* out) const;

  /// Adam training on MSE. `x` is (n, in_dim), `y` is (n). Returns final
  /// epoch mean squared error.
  float train(const Tensor& x, const Tensor& y, const MlpTrainOptions& opt);

  /// Mean squared error over a dataset.
  float mse(const Tensor& x, const Tensor& y) const;

 private:
  std::int64_t in_dim_, hidden_;
  Tensor w1_, b1_;  // (hidden, in), (hidden)
  Tensor w2_, b2_;  // (hidden), (1)
};

}  // namespace nvm::xbar

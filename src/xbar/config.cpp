#include "xbar/config.h"

#include <sstream>

#include "common/check.h"

namespace nvm::xbar {

std::string CrossbarConfig::tag() const {
  std::ostringstream os;
  os << rows << "x" << cols << "_ron" << r_on << "_oo" << on_off_ratio
     << "_lv" << levels << "_rs" << r_source << "_rk" << r_sink << "_rw"
     << r_wire << "_v" << v_read << "_b" << device_nonlin;
  return os.str();
}

namespace {
CrossbarConfig base() {
  CrossbarConfig c;
  c.r_source = 450.0;
  c.r_sink = 560.0;
  c.r_wire = 3.4;
  c.v_read = 0.25;
  c.device_nonlin = 2.0;
  c.on_off_ratio = 20;
  c.levels = 16;
  return c;
}
}  // namespace

CrossbarConfig xbar_64x64_300k() {
  CrossbarConfig c = base();
  c.name = "64x64_300k";
  c.rows = c.cols = 64;
  c.r_on = 300e3;
  return c;
}

CrossbarConfig xbar_32x32_100k() {
  CrossbarConfig c = base();
  c.name = "32x32_100k";
  c.rows = c.cols = 32;
  c.r_on = 100e3;
  return c;
}

CrossbarConfig xbar_64x64_100k() {
  CrossbarConfig c = base();
  c.name = "64x64_100k";
  c.rows = c.cols = 64;
  c.r_on = 100e3;
  return c;
}

CrossbarConfig preset(const std::string& name) {
  if (name == "64x64_300k") return xbar_64x64_300k();
  if (name == "32x32_100k") return xbar_32x32_100k();
  if (name == "64x64_100k") return xbar_64x64_100k();
  NVM_CHECK(false, "unknown crossbar preset: " << name);
}

}  // namespace nvm::xbar

#include "xbar/variation.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace nvm::xbar {

VariationModel::VariationModel(std::shared_ptr<const MvmModel> base,
                               VariationOptions opt)
    : base_(std::move(base)), opt_(opt) {
  NVM_CHECK(base_ != nullptr);
  NVM_CHECK(opt_.write_sigma >= 0 && opt_.process_sigma >= 0);
}

std::string VariationModel::name() const {
  return base_->name() + "+var(chip" + std::to_string(opt_.chip_seed) + ")";
}

Tensor VariationModel::perturb(const Tensor& g) const {
  const CrossbarConfig& cfg = base_->config();
  validate_conductances(g, cfg);
  const float g_off = static_cast<float>(cfg.g_off());
  const float g_on = static_cast<float>(cfg.g_on());
  Tensor out = g;
  // Device (i, j) of chip k gets its own stable random stream, so the same
  // chip is identical across programmings while different chips differ.
  Rng chip(0xC41B0000ULL ^ opt_.chip_seed);
  for (std::int64_t i = 0; i < cfg.rows; ++i) {
    for (std::int64_t j = 0; j < cfg.cols; ++j) {
      Rng dev = chip.split(static_cast<std::uint64_t>(i * cfg.cols + j));
      const double write = std::exp(opt_.write_sigma * dev.normal());
      const double process = 1.0 + opt_.process_sigma * dev.normal();
      float v = out.at(i, j) * static_cast<float>(write * process);
      out.at(i, j) = std::clamp(v, g_off, g_on);
    }
  }
  return out;
}

std::unique_ptr<ProgrammedXbar> VariationModel::program(const Tensor& g) const {
  return base_->program(perturb(g));
}

}  // namespace nvm::xbar

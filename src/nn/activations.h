// Pointwise activation layers.
#pragma once

#include "nn/layer.h"

namespace nvm::nn {

/// Rectified linear unit. Guarantees non-negative outputs, which is what
/// allows all crossbar inputs to be encoded as unsigned DAC levels.
class ReLU final : public Layer {
 public:
  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "relu"; }

 private:
  Tensor cached_mask_;  // 1 where x > 0
};

}  // namespace nvm::nn

// Network: a named layer tree plus whole-model operations used by the
// training loop, the attacks, and the hardware deployment.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "nn/mvm_engine.h"
#include "nn/sequential.h"

namespace nvm::nn {

class Network {
 public:
  /// Takes ownership of the root layer (normally a Sequential built by one
  /// of the resnet builders). `arch` is a human-readable architecture tag
  /// used in cache keys.
  Network(std::string arch, std::unique_ptr<Sequential> root,
          std::int64_t num_classes);

  Network(Network&&) = default;
  Network& operator=(Network&&) = default;

  /// Forward pass returning logits (length == num_classes).
  Tensor forward(const Tensor& x, Mode mode);

  /// Backward pass from d(loss)/d(logits); returns d(loss)/d(input).
  /// Must follow a forward() call.
  Tensor backward(const Tensor& grad_logits);

  const std::string& arch() const { return arch_; }
  std::int64_t num_classes() const { return num_classes_; }
  Sequential& root() { return *root_; }

  std::vector<Param*> params();
  void zero_grads();
  std::int64_t param_count();

  /// Installs an MVM engine on every Conv2d/Linear layer. `make` is called
  /// once per layer so each layer can own independently-programmed tiles.
  void set_mvm_engines(
      const std::function<std::shared_ptr<MvmEngine>(Layer&)>& make);

  /// Restores the exact-float engine on every MVM layer.
  void reset_mvm_engines();

  /// Attaches an Eval-mode output hook to every convolution layer (used by
  /// activation-space defenses); pass nullptr to clear.
  void set_conv_eval_hooks(std::function<Tensor(const Tensor&)> hook);

  /// Freezes (or unfreezes) the statistics of every BatchNorm2d — see
  /// BatchNorm2d::set_frozen.
  void freeze_batchnorm(bool frozen = true);

  // Parameter (+ BN running stats) serialization.
  void save(BinaryWriter& w);
  void load(BinaryReader& r);

 private:
  std::string arch_;
  std::unique_ptr<Sequential> root_;
  std::int64_t num_classes_;
};

}  // namespace nvm::nn

// Composite layers: Sequential chain and residual block.
#pragma once

#include <memory>
#include <vector>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv.h"
#include "nn/layer.h"

namespace nvm::nn {

/// Runs child layers in order; backward in reverse.
class Sequential : public Layer {
 public:
  Sequential() = default;

  /// Appends a layer and returns a typed handle to it.
  template <typename L, typename... Args>
  L* emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L* raw = layer.get();
    layers_.push_back(std::move(layer));
    return raw;
  }

  void append(std::unique_ptr<Layer> layer);

  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Layer*> children() override;
  std::string name() const override { return "sequential"; }

  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Basic (two-conv) residual block:
///   out = relu( bn2(conv2(relu(bn1(conv1(x))))) + shortcut(x) )
/// where shortcut is identity, or conv1x1+bn when shape changes.
class ResidualBlock final : public Layer {
 public:
  ResidualBlock(std::int64_t in_c, std::int64_t out_c, std::int64_t stride,
                Rng& rng);

  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Layer*> children() override;
  std::string name() const override { return "residual_block"; }

 private:
  bool projection_;
  Conv2d conv1_;
  BatchNorm2d bn1_;
  ReLU relu1_;
  Conv2d conv2_;
  BatchNorm2d bn2_;
  ReLU relu_out_;
  // Projection shortcut (only used when projection_ is true).
  std::unique_ptr<Conv2d> conv_s_;
  std::unique_ptr<BatchNorm2d> bn_s_;
};

}  // namespace nvm::nn

// 2-d convolution expressed as im2col + engine GEMM.
#pragma once

#include <memory>

#include "nn/layer.h"
#include "nn/mvm_engine.h"
#include "tensor/ops.h"

namespace nvm::nn {

/// Square-kernel, bias-free convolution over a single (C,H,W) example.
/// (Bias is omitted because every conv in the networks here is followed by
/// batch norm, which subsumes it.)
class Conv2d final : public Layer {
 public:
  /// Weight init: Kaiming-normal (fan-in) scaled for ReLU.
  Conv2d(std::int64_t in_c, std::int64_t out_c, std::int64_t kernel,
         std::int64_t stride, std::int64_t pad, Rng& rng);

  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&weight_}; }
  std::string name() const override { return "conv2d"; }

  /// Replaces the MVM engine (ideal by default). Used by puma:: to deploy
  /// this layer onto crossbar hardware.
  void set_engine(std::shared_ptr<MvmEngine> engine);
  MvmEngine& engine() const { return *engine_; }

  /// Weight as (out_c, in_c*k*k) GEMM matrix — the matrix that gets
  /// programmed onto crossbars.
  const Tensor& weight_matrix() const { return weight_.value; }
  Param& weight_param() { return weight_; }

  std::int64_t in_channels() const { return in_c_; }
  std::int64_t out_channels() const { return out_c_; }
  std::int64_t kernel() const { return kernel_; }
  std::int64_t stride() const { return stride_; }
  std::int64_t padding() const { return pad_; }

 private:
  std::int64_t in_c_, out_c_, kernel_, stride_, pad_;
  Param weight_;  // shape (out_c, in_c*k*k)
  std::shared_ptr<MvmEngine> engine_;

  // backward() caches
  ConvGeom geom_{};
  Tensor cached_cols_;  // im2col of last input
};

}  // namespace nvm::nn

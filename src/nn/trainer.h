// Minibatch SGD training loop and accuracy evaluation.
#pragma once

#include <span>

#include "nn/network.h"
#include "nn/optimizer.h"

namespace nvm::nn {

struct TrainConfig {
  std::int64_t epochs = 20;
  std::int64_t batch_size = 32;
  SgdConfig sgd;
  /// Learning rate is multiplied by `lr_decay` at 50% and 75% of training.
  float lr_decay = 0.1f;
  /// Fraction of epochs after which BatchNorm statistics freeze and the
  /// network fine-tunes against them (closes the train/eval-statistics
  /// gap of per-example normalization). 1.0 disables freezing.
  float bn_freeze_frac = 0.6f;
  std::uint64_t seed = 1;
  bool verbose = false;
};

struct TrainStats {
  float final_train_loss = 0.0f;
  float final_train_acc = 0.0f;
};

/// Trains `net` on (images, labels); images are (C,H,W) tensors.
TrainStats train(Network& net, std::span<const Tensor> images,
                 std::span<const std::int64_t> labels,
                 const TrainConfig& config);

/// Top-1 accuracy (%) of `net` in Eval mode.
float evaluate_accuracy(Network& net, std::span<const Tensor> images,
                        std::span<const std::int64_t> labels);

}  // namespace nvm::nn

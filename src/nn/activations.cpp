#include "nn/activations.h"

#include "common/check.h"

namespace nvm::nn {

Tensor ReLU::forward(const Tensor& x, Mode mode) {
  Tensor y(x.shape());
  cached_mask_ = Tensor(x.shape());
  const float* in = x.raw();
  float* out = y.raw();
  float* mask = cached_mask_.raw();
  const std::int64_t n = x.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    const bool pos = in[i] > 0.0f;
    out[i] = pos ? in[i] : 0.0f;
    mask[i] = pos ? 1.0f : 0.0f;
  }
  return apply_eval_hook(std::move(y), mode);
}

Tensor ReLU::backward(const Tensor& grad_out) {
  NVM_CHECK(cached_mask_.numel() > 0, "backward before forward");
  NVM_CHECK(grad_out.same_shape(cached_mask_));
  Tensor dx = grad_out;
  dx *= cached_mask_;
  return dx;
}

}  // namespace nvm::nn

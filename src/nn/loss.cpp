#include "nn/loss.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace nvm::nn {

Tensor softmax(const Tensor& logits) {
  NVM_CHECK_EQ(logits.rank(), 1u);
  Tensor p(logits.shape());
  const float m = logits.max();
  double sum = 0.0;
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    p[i] = std::exp(logits[i] - m);
    sum += p[i];
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (std::int64_t i = 0; i < p.numel(); ++i) p[i] *= inv;
  return p;
}

LossGrad cross_entropy(const Tensor& logits, std::int64_t label) {
  NVM_CHECK(label >= 0 && label < logits.numel(), "label=" << label);
  LossGrad out;
  out.grad_logits = softmax(logits);
  out.loss = -std::log(std::max(out.grad_logits[label], 1e-12f));
  out.grad_logits[label] -= 1.0f;
  return out;
}

LossGrad cross_entropy_soft(const Tensor& logits, const Tensor& targets) {
  NVM_CHECK(logits.same_shape(targets));
  LossGrad out;
  Tensor p = softmax(logits);
  double loss = 0.0;
  for (std::int64_t i = 0; i < logits.numel(); ++i)
    loss -= targets[i] * std::log(std::max(p[i], 1e-12f));
  out.loss = static_cast<float>(loss);
  out.grad_logits = p;
  out.grad_logits -= targets;
  return out;
}

float margin(const Tensor& logits, std::int64_t label) {
  NVM_CHECK(label >= 0 && label < logits.numel(), "label=" << label);
  float best_other = -std::numeric_limits<float>::infinity();
  for (std::int64_t i = 0; i < logits.numel(); ++i)
    if (i != label) best_other = std::max(best_other, logits[i]);
  return logits[label] - best_other;
}

}  // namespace nvm::nn

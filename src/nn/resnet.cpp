#include "nn/resnet.h"

#include <sstream>

#include "common/check.h"
#include "nn/activations.h"
#include "nn/linear.h"
#include "nn/pool.h"

namespace nvm::nn {

Network make_resnet_cifar(const ResnetCifarSpec& spec, Rng& rng) {
  NVM_CHECK_GT(spec.blocks_per_stage, 0);
  auto root = std::make_unique<Sequential>();
  root->emplace<Conv2d>(3, spec.widths[0], 3, 1, 1, rng);
  root->emplace<BatchNorm2d>(spec.widths[0]);
  root->emplace<ReLU>();
  std::int64_t in_c = spec.widths[0];
  for (int stage = 0; stage < 3; ++stage) {
    const std::int64_t out_c = spec.widths[static_cast<std::size_t>(stage)];
    for (std::int64_t b = 0; b < spec.blocks_per_stage; ++b) {
      const std::int64_t stride = (stage > 0 && b == 0) ? 2 : 1;
      root->emplace<ResidualBlock>(in_c, out_c, stride, rng);
      in_c = out_c;
    }
  }
  root->emplace<GlobalAvgPool>();
  root->emplace<Linear>(in_c, spec.num_classes, rng);

  std::ostringstream arch;
  arch << "resnet" << (6 * spec.blocks_per_stage + 2) << "_w"
       << spec.widths[0] << "-" << spec.widths[1] << "-" << spec.widths[2]
       << "_c" << spec.num_classes;
  return Network(arch.str(), std::move(root), spec.num_classes);
}

Network make_resnet18(const Resnet18Spec& spec, Rng& rng) {
  auto root = std::make_unique<Sequential>();
  root->emplace<Conv2d>(3, spec.widths[0], 3, 1, 1, rng);
  root->emplace<BatchNorm2d>(spec.widths[0]);
  root->emplace<ReLU>();
  std::int64_t in_c = spec.widths[0];
  for (int stage = 0; stage < 4; ++stage) {
    const std::int64_t out_c = spec.widths[static_cast<std::size_t>(stage)];
    for (std::int64_t b = 0; b < 2; ++b) {
      const std::int64_t stride = (stage > 0 && b == 0) ? 2 : 1;
      root->emplace<ResidualBlock>(in_c, out_c, stride, rng);
      in_c = out_c;
    }
  }
  root->emplace<GlobalAvgPool>();
  root->emplace<Linear>(in_c, spec.num_classes, rng);

  std::ostringstream arch;
  arch << "resnet18_w" << spec.widths[0] << "-" << spec.widths[1] << "-"
       << spec.widths[2] << "-" << spec.widths[3] << "_c" << spec.num_classes;
  return Network(arch.str(), std::move(root), spec.num_classes);
}

}  // namespace nvm::nn

#include "nn/trainer.h"

#include <numeric>

#include "common/check.h"
#include "common/logging.h"
#include "nn/loss.h"

namespace nvm::nn {

TrainStats train(Network& net, std::span<const Tensor> images,
                 std::span<const std::int64_t> labels,
                 const TrainConfig& config) {
  NVM_CHECK_EQ(images.size(), labels.size());
  NVM_CHECK_GT(images.size(), 0u);
  Rng rng(config.seed);
  Sgd opt(net.params(), config.sgd);

  const std::int64_t n = static_cast<std::int64_t>(images.size());
  std::vector<std::int64_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);

  TrainStats stats;
  const auto freeze_epoch = static_cast<std::int64_t>(
      config.bn_freeze_frac * static_cast<float>(config.epochs));
  for (std::int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    // Step-decay schedule at 50% and 75% of training.
    if (epoch == config.epochs / 2 || epoch == (3 * config.epochs) / 4)
      opt.set_lr(opt.lr() * config.lr_decay);
    if (epoch == freeze_epoch && epoch < config.epochs) net.freeze_batchnorm();

    rng.shuffle(order);
    double loss_sum = 0.0;
    std::int64_t correct = 0;
    std::int64_t in_batch = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      const std::int64_t idx = order[static_cast<std::size_t>(i)];
      const Tensor& x = images[static_cast<std::size_t>(idx)];
      const std::int64_t y = labels[static_cast<std::size_t>(idx)];
      Tensor logits = net.forward(x, Mode::Train);
      LossGrad lg = cross_entropy(logits, y);
      loss_sum += lg.loss;
      if (logits.argmax() == y) ++correct;
      net.backward(lg.grad_logits);
      if (++in_batch == config.batch_size || i == n - 1) {
        opt.step(static_cast<float>(in_batch));
        in_batch = 0;
      }
    }
    stats.final_train_loss = static_cast<float>(loss_sum / n);
    stats.final_train_acc = 100.0f * static_cast<float>(correct) / n;
    if (config.verbose) {
      NVM_LOG(Info) << net.arch() << " epoch " << (epoch + 1) << "/"
                    << config.epochs << " loss=" << stats.final_train_loss
                    << " acc=" << stats.final_train_acc << "%";
    }
  }
  return stats;
}

float evaluate_accuracy(Network& net, std::span<const Tensor> images,
                        std::span<const std::int64_t> labels) {
  NVM_CHECK_EQ(images.size(), labels.size());
  NVM_CHECK_GT(images.size(), 0u);
  std::int64_t correct = 0;
  for (std::size_t i = 0; i < images.size(); ++i) {
    Tensor logits = net.forward(images[i], Mode::Eval);
    if (logits.argmax() == labels[i]) ++correct;
  }
  return 100.0f * static_cast<float>(correct) / images.size();
}

}  // namespace nvm::nn

// Softmax cross-entropy loss and helpers.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace nvm::nn {

/// Numerically-stable softmax of a 1-d logits vector.
Tensor softmax(const Tensor& logits);

struct LossGrad {
  float loss = 0.0f;
  Tensor grad_logits;  // d(loss)/d(logits)
};

/// Cross-entropy of softmax(logits) against integer label.
LossGrad cross_entropy(const Tensor& logits, std::int64_t label);

/// Soft-target cross-entropy (distillation): targets is a probability
/// vector of the same length as logits.
LossGrad cross_entropy_soft(const Tensor& logits, const Tensor& targets);

/// Margin loss used by Square Attack: logit[y] - max_{k!=y} logit[k].
/// Negative means misclassified.
float margin(const Tensor& logits, std::int64_t label);

}  // namespace nvm::nn

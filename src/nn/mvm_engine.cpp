#include "nn/mvm_engine.h"

#include "tensor/ops.h"

namespace nvm::nn {

Tensor IdealMvmEngine::matmul(const Tensor& w, const Tensor& x) {
  return nvm::matmul(w, x);
}

std::shared_ptr<MvmEngine> ideal_engine() {
  static std::shared_ptr<MvmEngine> engine = std::make_shared<IdealMvmEngine>();
  return engine;
}

}  // namespace nvm::nn

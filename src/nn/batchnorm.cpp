#include "nn/batchnorm.h"

#include <cmath>

#include "common/check.h"

namespace nvm::nn {

BatchNorm2d::BatchNorm2d(std::int64_t channels, float momentum, float eps)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_(Tensor::full({channels}, 1.0f), /*decay_flag=*/false),
      beta_(Tensor::zeros({channels}), /*decay_flag=*/false),
      running_mean_(Tensor::zeros({channels})),
      running_var_(Tensor::full({channels}, 1.0f)) {
  NVM_CHECK_GT(channels, 0);
}

Tensor BatchNorm2d::forward(const Tensor& x, Mode mode) {
  NVM_CHECK_EQ(x.rank(), 3u);
  NVM_CHECK_EQ(x.dim(0), channels_);
  const std::int64_t hw = x.dim(1) * x.dim(2);
  Tensor y(x.shape());
  const float* in = x.raw();
  float* out = y.raw();

  if (mode == Mode::Train && !frozen_) {
    // Batch-statistics path (spatial statistics of the example).
    last_forward_ = LastForward::Train;
    cached_xhat_ = Tensor(x.shape());
    cached_inv_std_ = Tensor({channels_});
    float* xhat = cached_xhat_.raw();
    for (std::int64_t c = 0; c < channels_; ++c) {
      const float* src = in + c * hw;
      double sum = 0.0, sq = 0.0;
      for (std::int64_t i = 0; i < hw; ++i) {
        sum += src[i];
        sq += static_cast<double>(src[i]) * src[i];
      }
      const float mean = static_cast<float>(sum / hw);
      const float var =
          static_cast<float>(sq / hw - static_cast<double>(mean) * mean);
      const float inv_std = 1.0f / std::sqrt(std::max(var, 0.0f) + eps_);
      cached_inv_std_[c] = inv_std;
      const float g = gamma_.value[c], b = beta_.value[c];
      float* xh = xhat + c * hw;
      float* dst = out + c * hw;
      for (std::int64_t i = 0; i < hw; ++i) {
        xh[i] = (src[i] - mean) * inv_std;
        dst[i] = g * xh[i] + b;
      }
      running_mean_[c] = (1 - momentum_) * running_mean_[c] + momentum_ * mean;
      running_var_[c] = (1 - momentum_) * running_var_[c] + momentum_ * var;
    }
    return y;
  }

  if (mode == Mode::Train) {
    // Frozen fine-tuning path: running statistics normalize, gamma/beta
    // still learn, so xhat must be cached for their gradients.
    last_forward_ = LastForward::FrozenTrain;
    cached_xhat_ = Tensor(x.shape());
    float* xhat = cached_xhat_.raw();
    for (std::int64_t c = 0; c < channels_; ++c) {
      const float inv_std = 1.0f / std::sqrt(running_var_[c] + eps_);
      const float mean = running_mean_[c];
      const float g = gamma_.value[c], b = beta_.value[c];
      const float* src = in + c * hw;
      float* xh = xhat + c * hw;
      float* dst = out + c * hw;
      for (std::int64_t i = 0; i < hw; ++i) {
        xh[i] = (src[i] - mean) * inv_std;
        dst[i] = g * xh[i] + b;
      }
    }
    return y;
  }

  // Eval: frozen statistics, lean path (no caching beyond the mode flag;
  // attack gradients only need d(out)/d(in), which is a constant scale).
  last_forward_ = LastForward::Eval;
  cached_xhat_ = Tensor();
  if (collecting_) {
    for (std::int64_t c = 0; c < channels_; ++c) {
      const float* src = in + c * hw;
      double sum = 0.0, sq = 0.0;
      for (std::int64_t i = 0; i < hw; ++i) {
        sum += src[i];
        sq += static_cast<double>(src[i]) * src[i];
      }
      const float mean = static_cast<float>(sum / hw);
      collect_sum_[c] += mean;
      collect_sumsq_[c] +=
          static_cast<float>(sq / hw - static_cast<double>(mean) * mean);
    }
    ++collect_count_;
  }
  for (std::int64_t c = 0; c < channels_; ++c) {
    const float inv_std = 1.0f / std::sqrt(running_var_[c] + eps_);
    const float g = gamma_.value[c] * inv_std;
    const float b = beta_.value[c] - gamma_.value[c] * running_mean_[c] * inv_std;
    const float* src = in + c * hw;
    float* dst = out + c * hw;
    for (std::int64_t i = 0; i < hw; ++i) dst[i] = g * src[i] + b;
  }
  return apply_eval_hook(std::move(y), mode);
}

void BatchNorm2d::begin_stat_collection() {
  collecting_ = true;
  collect_count_ = 0;
  collect_sum_ = Tensor::zeros({channels_});
  collect_sumsq_ = Tensor::zeros({channels_});
}

void BatchNorm2d::finish_stat_collection() {
  collecting_ = false;
  if (collect_count_ == 0) return;
  // Mean of per-image channel means, and mean of per-image within-image
  // variances — matching how the training-time running stats were built.
  const float inv = 1.0f / static_cast<float>(collect_count_);
  for (std::int64_t c = 0; c < channels_; ++c) {
    running_mean_[c] = collect_sum_[c] * inv;
    running_var_[c] = std::max(collect_sumsq_[c] * inv, 0.0f);
  }
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
  NVM_CHECK(last_forward_ != LastForward::None, "backward before forward");
  NVM_CHECK_EQ(grad_out.rank(), 3u);
  NVM_CHECK_EQ(grad_out.dim(0), channels_);
  const std::int64_t hw = grad_out.dim(1) * grad_out.dim(2);
  Tensor dx(grad_out.shape());
  const float* g_out = grad_out.raw();
  float* g_in = dx.raw();

  if (last_forward_ == LastForward::Eval) {
    // Linearization through the frozen affine transform.
    for (std::int64_t c = 0; c < channels_; ++c) {
      const float k = gamma_.value[c] / std::sqrt(running_var_[c] + eps_);
      const float* src = g_out + c * hw;
      float* dst = g_in + c * hw;
      for (std::int64_t i = 0; i < hw; ++i) dst[i] = k * src[i];
    }
    return dx;
  }

  if (last_forward_ == LastForward::FrozenTrain) {
    const float* xhat = cached_xhat_.raw();
    for (std::int64_t c = 0; c < channels_; ++c) {
      const float* go = g_out + c * hw;
      const float* xh = xhat + c * hw;
      double sum_g = 0.0, sum_gx = 0.0;
      for (std::int64_t i = 0; i < hw; ++i) {
        sum_g += go[i];
        sum_gx += static_cast<double>(go[i]) * xh[i];
      }
      gamma_.grad[c] += static_cast<float>(sum_gx);
      beta_.grad[c] += static_cast<float>(sum_g);
      const float k = gamma_.value[c] / std::sqrt(running_var_[c] + eps_);
      float* dst = g_in + c * hw;
      for (std::int64_t i = 0; i < hw; ++i) dst[i] = k * go[i];
    }
    return dx;
  }

  // Batch-statistics backward.
  const float* xhat = cached_xhat_.raw();
  for (std::int64_t c = 0; c < channels_; ++c) {
    const float* go = g_out + c * hw;
    const float* xh = xhat + c * hw;
    double sum_g = 0.0, sum_gx = 0.0;
    for (std::int64_t i = 0; i < hw; ++i) {
      sum_g += go[i];
      sum_gx += static_cast<double>(go[i]) * xh[i];
    }
    gamma_.grad[c] += static_cast<float>(sum_gx);
    beta_.grad[c] += static_cast<float>(sum_g);
    const float inv_std = cached_inv_std_[c];
    const float g = gamma_.value[c];
    const float mean_g = static_cast<float>(sum_g / hw);
    const float mean_gx = static_cast<float>(sum_gx / hw);
    float* dst = g_in + c * hw;
    for (std::int64_t i = 0; i < hw; ++i)
      dst[i] = g * inv_std * (go[i] - mean_g - xh[i] * mean_gx);
  }
  return dx;
}

}  // namespace nvm::nn

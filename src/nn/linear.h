// Fully-connected layer (classifier head).
#pragma once

#include <memory>

#include "nn/layer.h"
#include "nn/mvm_engine.h"

namespace nvm::nn {

/// y = W x + b for a single 1-d input. The W x product routes through the
/// MVM engine (crossbar-mappable); the bias add stays digital, as in PUMA.
class Linear final : public Layer {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng);

  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  std::string name() const override { return "linear"; }

  void set_engine(std::shared_ptr<MvmEngine> engine);
  const Tensor& weight_matrix() const { return weight_.value; }

  std::int64_t in_features() const { return in_f_; }
  std::int64_t out_features() const { return out_f_; }

 private:
  std::int64_t in_f_, out_f_;
  Param weight_;  // (out, in)
  Param bias_;    // (out)
  std::shared_ptr<MvmEngine> engine_;
  Tensor cached_in_;
};

}  // namespace nvm::nn

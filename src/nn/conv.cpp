#include "nn/conv.h"

#include <cmath>

#include "common/check.h"
#include "common/simd.h"

namespace nvm::nn {

Conv2d::Conv2d(std::int64_t in_c, std::int64_t out_c, std::int64_t kernel,
               std::int64_t stride, std::int64_t pad, Rng& rng)
    : in_c_(in_c),
      out_c_(out_c),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      weight_(Tensor::normal(
          {out_c, in_c * kernel * kernel}, 0.0f,
          std::sqrt(2.0f / static_cast<float>(in_c * kernel * kernel)), rng)),
      engine_(ideal_engine()) {
  NVM_CHECK(in_c > 0 && out_c > 0 && kernel > 0 && stride > 0 && pad >= 0);
}

void Conv2d::set_engine(std::shared_ptr<MvmEngine> engine) {
  NVM_CHECK(engine != nullptr);
  engine_ = std::move(engine);
}

Tensor Conv2d::forward(const Tensor& x, Mode mode) {
  NVM_CHECK_EQ(x.rank(), 3u);
  NVM_CHECK_EQ(x.dim(0), in_c_);
  geom_ = ConvGeom{x.dim(0), x.dim(1), x.dim(2), out_c_, kernel_, stride_, pad_};
  cached_cols_ = im2col(x, geom_);
  Tensor y = engine_->matmul(weight_.value, cached_cols_);
  y.reshape({out_c_, geom_.out_h(), geom_.out_w()});
  return apply_eval_hook(std::move(y), mode);
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  NVM_CHECK(cached_cols_.numel() > 0, "backward before forward");
  Tensor g = grad_out.reshaped({out_c_, geom_.out_h() * geom_.out_w()});
  // dW = g * cols^T  (ideal arithmetic regardless of forward engine).
  // The transposed-B kernel reads cols row-wise, so no transpose2d copy
  // of the (large) im2col matrix is materialized; same for W^T below.
  simd::gemm_bt_accum(weight_.grad.raw(), g.raw(), cached_cols_.raw(),
                      g.dim(0), cached_cols_.dim(0), g.dim(1), g.dim(1),
                      cached_cols_.dim(1), cached_cols_.dim(0));
  // dX = fold(W^T * g).
  Tensor dcols = matmul_at(weight_.value, g);
  return col2im(dcols, geom_);
}

}  // namespace nvm::nn

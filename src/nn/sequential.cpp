#include "nn/sequential.h"

#include "common/check.h"
#include "nn/activations.h"

namespace nvm::nn {

void Sequential::append(std::unique_ptr<Layer> layer) {
  NVM_CHECK(layer != nullptr);
  layers_.push_back(std::move(layer));
}

Tensor Sequential::forward(const Tensor& x, Mode mode) {
  Tensor y = x;
  for (auto& l : layers_) y = l->forward(y, mode);
  return y;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->backward(g);
  return g;
}

std::vector<Layer*> Sequential::children() {
  std::vector<Layer*> out;
  out.reserve(layers_.size());
  for (auto& l : layers_) out.push_back(l.get());
  return out;
}

ResidualBlock::ResidualBlock(std::int64_t in_c, std::int64_t out_c,
                             std::int64_t stride, Rng& rng)
    : projection_(stride != 1 || in_c != out_c),
      conv1_(in_c, out_c, 3, stride, 1, rng),
      bn1_(out_c),
      conv2_(out_c, out_c, 3, 1, 1, rng),
      bn2_(out_c) {
  if (projection_) {
    conv_s_ = std::make_unique<Conv2d>(in_c, out_c, 1, stride, 0, rng);
    bn_s_ = std::make_unique<BatchNorm2d>(out_c);
  }
}

Tensor ResidualBlock::forward(const Tensor& x, Mode mode) {
  Tensor main = conv1_.forward(x, mode);
  main = bn1_.forward(main, mode);
  main = relu1_.forward(main, mode);
  main = conv2_.forward(main, mode);
  main = bn2_.forward(main, mode);

  Tensor shortcut =
      projection_ ? bn_s_->forward(conv_s_->forward(x, mode), mode) : x;
  NVM_CHECK(main.same_shape(shortcut), "residual shape mismatch");
  main += shortcut;
  return relu_out_.forward(main, mode);
}

Tensor ResidualBlock::backward(const Tensor& grad_out) {
  Tensor g = relu_out_.backward(grad_out);
  // g splits into the main path and the shortcut.
  Tensor g_main = bn2_.backward(g);
  g_main = conv2_.backward(g_main);
  g_main = relu1_.backward(g_main);
  g_main = bn1_.backward(g_main);
  g_main = conv1_.backward(g_main);

  if (projection_) {
    Tensor g_short = bn_s_->backward(g);
    g_short = conv_s_->backward(g_short);
    g_main += g_short;
  } else {
    g_main += g;
  }
  return g_main;
}

std::vector<Layer*> ResidualBlock::children() {
  std::vector<Layer*> out{&conv1_, &bn1_, &relu1_, &conv2_, &bn2_, &relu_out_};
  if (projection_) {
    out.push_back(conv_s_.get());
    out.push_back(bn_s_.get());
  }
  return out;
}

}  // namespace nvm::nn

#include "nn/ir.h"

#include <sstream>

#include "common/check.h"
#include "common/metrics.h"
#include "nn/network.h"

namespace nvm::nn::ir {

namespace {

/// 64-bit mix (splitmix64 finalizer) — cheap, stable across platforms.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  return h;
}

std::uint64_t node_hash(Op op, const std::vector<std::int64_t>& attrs,
                        const std::vector<std::uint64_t>& input_hashes) {
  std::uint64_t h = mix(0x6e766d5f6972ull /* "nvm_ir" */,
                        static_cast<std::uint64_t>(op));
  for (const std::int64_t a : attrs)
    h = mix(h, static_cast<std::uint64_t>(a));
  for (const std::uint64_t ih : input_hashes) h = mix(h, ih);
  return h;
}

std::optional<Op> op_for_layer_name(const std::string& name) {
  if (name == "conv2d") return Op::kConv2d;
  if (name == "batchnorm2d") return Op::kBatchNorm2d;
  if (name == "relu") return Op::kRelu;
  if (name == "avg_pool2d") return Op::kAvgPool2d;
  if (name == "global_avg_pool") return Op::kGlobalAvgPool;
  if (name == "flatten") return Op::kFlatten;
  if (name == "linear") return Op::kLinear;
  if (name == "residual_block") return Op::kResidualBlock;
  return std::nullopt;
}

/// Attribute vector of a step: every parameter's rank and dims, in
/// params() order. Two layers with identical parameter geometry intern to
/// the same node shape-wise (values are runtime state, not structure).
std::vector<std::int64_t> layer_attrs(Layer& l) {
  std::vector<std::int64_t> attrs;
  for (Param* p : l.params()) {
    const Shape& s = p->value.shape();
    attrs.push_back(static_cast<std::int64_t>(s.size()));
    for (const std::int64_t d : s) attrs.push_back(d);
  }
  return attrs;
}

/// Flattens the layer tree into linear steps: Sequentials recurse,
/// everything else (including ResidualBlock) is one step. Returns false
/// with `reason` set on the first non-capturable layer.
bool flatten_steps(Layer& l, const std::string& scope,
                   std::vector<std::pair<Layer*, std::string>>* steps,
                   std::string* reason) {
  if (l.name() == "sequential") {
    if (l.has_eval_hook()) {
      *reason = scope + ": sequential carries an eval hook";
      return false;
    }
    std::vector<Layer*> children = l.children();
    for (std::size_t i = 0; i < children.size(); ++i) {
      std::ostringstream os;
      os << scope << "/" << i;
      if (!flatten_steps(*children[i], os.str(), steps, reason)) return false;
    }
    return true;
  }
  if (!op_for_layer_name(l.name()).has_value()) {
    *reason = scope + ": layer '" + l.name() + "' has no IR opcode";
    return false;
  }
  steps->emplace_back(&l, scope + "/" + l.name());
  return true;
}

}  // namespace

const char* op_name(Op op) {
  switch (op) {
    case Op::kInput: return "input";
    case Op::kConv2d: return "conv2d";
    case Op::kBatchNorm2d: return "batchnorm2d";
    case Op::kRelu: return "relu";
    case Op::kAvgPool2d: return "avg_pool2d";
    case Op::kGlobalAvgPool: return "global_avg_pool";
    case Op::kFlatten: return "flatten";
    case Op::kLinear: return "linear";
    case Op::kResidualBlock: return "residual_block";
    case Op::kOutput: return "output";
    case Op::kQuantize: return "quantize";
    case Op::kDac: return "dac";
    case Op::kTileMvm: return "tile_mvm";
    case Op::kAdcShiftAdd: return "adc_shift_add";
    case Op::kFusedMvm: return "fused_mvm";
  }
  return "?";
}

std::int64_t Graph::intern(Op op, std::vector<std::int64_t> inputs,
                           std::vector<std::int64_t> attrs,
                           std::string scope) {
  static metrics::Counter& m_nodes = metrics::counter("ir/nodes");
  static metrics::Counter& m_consed = metrics::counter("ir/consed");
  std::vector<std::uint64_t> input_hashes;
  input_hashes.reserve(inputs.size());
  for (const std::int64_t id : inputs) {
    NVM_CHECK(id >= 0 && id < size(), "ir: bad input node id " << id);
    input_hashes.push_back(node(id).hash);
  }
  const std::uint64_t h = node_hash(op, attrs, input_hashes);
  // Hash-consing: an existing node with equal structure is THE node (the
  // bucket list handles the astronomically-unlikely hash collision).
  if (auto it = interned_.find(h); it != interned_.end()) {
    for (const std::int64_t id : it->second) {
      const Node& cand = node(id);
      if (cand.op == op && cand.inputs == inputs && cand.attrs == attrs) {
        m_consed.add();
        return id;
      }
    }
  }
  const std::int64_t id = size();
  nodes_.push_back(Node{op, std::move(inputs), std::move(attrs),
                        std::move(scope), h});
  shapes_.emplace_back();
  interned_[h].push_back(id);
  m_nodes.add();
  return id;
}

void Graph::set_shape(std::int64_t id, Shape shape) {
  shapes_.at(static_cast<std::size_t>(id)) = std::move(shape);
}

const Shape* Graph::shape(std::int64_t id) const {
  const std::optional<Shape>& s = shapes_.at(static_cast<std::size_t>(id));
  return s.has_value() ? &*s : nullptr;
}

std::uint64_t Graph::graph_hash(std::uint64_t seed) const {
  std::uint64_t h = mix(seed, 0x706c616eull /* "plan" */);
  for (const Node& n : nodes_) h = mix(h, n.hash);
  return h;
}

std::string Graph::to_string() const {
  std::ostringstream os;
  for (std::int64_t id = 0; id < size(); ++id) {
    const Node& n = node(id);
    os << "%" << id << " = " << op_name(n.op) << "(";
    for (std::size_t i = 0; i < n.inputs.size(); ++i)
      os << (i ? ", " : "") << "%" << n.inputs[i];
    os << ")";
    if (const Shape* s = shape(id)) os << " : " << shape_str(*s);
    if (!n.scope.empty()) os << "  # " << n.scope;
    os << "\n";
  }
  return os.str();
}

Capture capture(Network& net) {
  static metrics::Counter& m_captures = metrics::counter("ir/captures");
  static metrics::Counter& m_failed = metrics::counter("ir/captures_failed");
  Capture cap;
  std::vector<std::pair<Layer*, std::string>> steps;
  if (!flatten_steps(net.root(), "root", &steps, &cap.reason)) {
    m_failed.add();
    return cap;
  }
  cap.input_node = cap.graph.intern(Op::kInput, {}, {}, "input");
  std::int64_t prev = cap.input_node;
  for (auto& [layer, scope] : steps) {
    if (layer->has_eval_hook()) {
      // An eval hook is an arbitrary Tensor->Tensor function attached at
      // runtime (activation-space defenses); the IR cannot represent it,
      // so the whole graph stays on the eager interpreter.
      cap = Capture{};
      cap.reason = scope + ": layer carries an eval hook";
      m_failed.add();
      return cap;
    }
    const Op op = *op_for_layer_name(layer->name());
    prev = cap.graph.intern(op, {prev}, layer_attrs(*layer), scope);
    cap.steps.push_back(layer);
    cap.step_nodes.push_back(prev);
  }
  cap.output_node = cap.graph.intern(
      Op::kOutput, {prev}, {net.num_classes()}, "output");
  cap.ok = true;
  m_captures.add();
  return cap;
}

}  // namespace nvm::nn::ir

// Pooling and shape layers.
#pragma once

#include "nn/layer.h"

namespace nvm::nn {

/// Global average pooling: (C,H,W) -> (C). Standard ResNet head.
class GlobalAvgPool final : public Layer {
 public:
  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "global_avg_pool"; }

 private:
  Shape cached_shape_;
};

/// kxk average pooling with stride k (used by the ImageNet-style stem).
class AvgPool2d final : public Layer {
 public:
  explicit AvgPool2d(std::int64_t k);
  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "avg_pool2d"; }

 private:
  std::int64_t k_;
  Shape cached_shape_;
};

/// Flattens any input to 1-d; inverse restores the shape on backward.
class Flatten final : public Layer {
 public:
  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "flatten"; }

 private:
  Shape cached_shape_;
};

}  // namespace nvm::nn

#include "nn/layer.h"

namespace nvm::nn {

std::vector<Param*> collect_params(Layer& root) {
  std::vector<Param*> out;
  visit_layers(root, [&](Layer& l) {
    for (Param* p : l.params()) out.push_back(p);
  });
  return out;
}

void visit_layers(Layer& root, const std::function<void(Layer&)>& fn) {
  fn(root);
  for (Layer* child : root.children()) visit_layers(*child, fn);
}

void zero_grads(Layer& root) {
  for (Param* p : collect_params(root)) p->grad.fill(0.0f);
}

}  // namespace nvm::nn

#include "nn/pool.h"

#include "common/check.h"

namespace nvm::nn {

Tensor GlobalAvgPool::forward(const Tensor& x, Mode mode) {
  NVM_CHECK_EQ(x.rank(), 3u);
  cached_shape_ = x.shape();
  const std::int64_t c = x.dim(0), hw = x.dim(1) * x.dim(2);
  Tensor y({c});
  const float* in = x.raw();
  for (std::int64_t ch = 0; ch < c; ++ch) {
    double acc = 0.0;
    for (std::int64_t i = 0; i < hw; ++i) acc += in[ch * hw + i];
    y[ch] = static_cast<float>(acc / hw);
  }
  return apply_eval_hook(std::move(y), mode);
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  NVM_CHECK(!cached_shape_.empty(), "backward before forward");
  const std::int64_t c = cached_shape_[0];
  const std::int64_t hw = cached_shape_[1] * cached_shape_[2];
  NVM_CHECK_EQ(grad_out.numel(), c);
  Tensor dx(cached_shape_);
  float* out = dx.raw();
  for (std::int64_t ch = 0; ch < c; ++ch) {
    const float g = grad_out[ch] / static_cast<float>(hw);
    for (std::int64_t i = 0; i < hw; ++i) out[ch * hw + i] = g;
  }
  return dx;
}

AvgPool2d::AvgPool2d(std::int64_t k) : k_(k) { NVM_CHECK_GT(k, 0); }

Tensor AvgPool2d::forward(const Tensor& x, Mode mode) {
  NVM_CHECK_EQ(x.rank(), 3u);
  NVM_CHECK(x.dim(1) % k_ == 0 && x.dim(2) % k_ == 0,
            "pool size must divide input");
  cached_shape_ = x.shape();
  const std::int64_t c = x.dim(0), oh = x.dim(1) / k_, ow = x.dim(2) / k_;
  Tensor y({c, oh, ow});
  for (std::int64_t ch = 0; ch < c; ++ch)
    for (std::int64_t oy = 0; oy < oh; ++oy)
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        double acc = 0.0;
        for (std::int64_t dy = 0; dy < k_; ++dy)
          for (std::int64_t dx = 0; dx < k_; ++dx)
            acc += x.at(ch, oy * k_ + dy, ox * k_ + dx);
        y.at(ch, oy, ox) = static_cast<float>(acc / (k_ * k_));
      }
  return apply_eval_hook(std::move(y), mode);
}

Tensor AvgPool2d::backward(const Tensor& grad_out) {
  NVM_CHECK(!cached_shape_.empty(), "backward before forward");
  const std::int64_t c = cached_shape_[0];
  const std::int64_t oh = cached_shape_[1] / k_, ow = cached_shape_[2] / k_;
  NVM_CHECK_EQ(grad_out.numel(), c * oh * ow);
  Tensor dx(cached_shape_);
  const float scale = 1.0f / static_cast<float>(k_ * k_);
  for (std::int64_t ch = 0; ch < c; ++ch)
    for (std::int64_t oy = 0; oy < oh; ++oy)
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        const float g = grad_out.at(ch, oy, ox) * scale;
        for (std::int64_t dy = 0; dy < k_; ++dy)
          for (std::int64_t dxi = 0; dxi < k_; ++dxi)
            dx.at(ch, oy * k_ + dy, ox * k_ + dxi) = g;
      }
  return dx;
}

Tensor Flatten::forward(const Tensor& x, Mode mode) {
  (void)mode;
  cached_shape_ = x.shape();
  return x.reshaped({x.numel()});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  NVM_CHECK(!cached_shape_.empty(), "backward before forward");
  return grad_out.reshaped(cached_shape_);
}

}  // namespace nvm::nn

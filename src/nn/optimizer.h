// SGD with momentum and decoupled weight decay.
#pragma once

#include <vector>

#include "nn/layer.h"

namespace nvm::nn {

struct SgdConfig {
  float lr = 0.1f;
  float momentum = 0.9f;
  float weight_decay = 1e-4f;
};

class Sgd {
 public:
  Sgd(std::vector<Param*> params, SgdConfig config);

  /// Applies one update from the accumulated grads, then zeroes them.
  /// `scale` divides the gradient (use 1/batch for mean-of-sum grads).
  void step(float scale = 1.0f);

  void set_lr(float lr) { config_.lr = lr; }
  float lr() const { return config_.lr; }

 private:
  std::vector<Param*> params_;
  std::vector<Tensor> velocity_;
  SgdConfig config_;
};

}  // namespace nvm::nn

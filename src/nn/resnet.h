// ResNet builders.
//
// These mirror the paper's three target networks at reduced width so they
// train in seconds on one core:
//   - resnet20 / resnet32 (CIFAR-style, He et al. §4.2): 3x3 stem, three
//     stages of n basic blocks, global average pool, linear head.
//     Paper widths are 16/32/64; we default to 8/16/32.
//   - resnet18 (ImageNet-style): 3x3 stem (no 7x7 downsample at our small
//     resolution), four stages of two basic blocks.
#pragma once

#include <array>
#include <memory>

#include "nn/network.h"

namespace nvm::nn {

struct ResnetCifarSpec {
  std::int64_t blocks_per_stage = 3;  // 3 -> ResNet-20, 5 -> ResNet-32
  std::array<std::int64_t, 3> widths = {8, 16, 32};
  std::int64_t num_classes = 10;
};

/// CIFAR-style ResNet (depth = 6n+2).
Network make_resnet_cifar(const ResnetCifarSpec& spec, Rng& rng);

struct Resnet18Spec {
  std::array<std::int64_t, 4> widths = {8, 16, 32, 64};
  std::int64_t num_classes = 16;
};

/// ImageNet-style ResNet-18 (2-2-2-2 basic blocks).
Network make_resnet18(const Resnet18Spec& spec, Rng& rng);

}  // namespace nvm::nn

// Per-channel normalization for (C,H,W) activations.
//
// The library trains one example at a time, so "batch" statistics are
// computed over the spatial extent of each channel (instance-norm style)
// during training, while exponential running statistics are accumulated
// for use at evaluation — functionally the standard BatchNorm2d inference
// path. This trains the small ResNets used here to high accuracy and keeps
// the eval-time operator identical to the paper's (affine scale + shift
// with frozen statistics, executed digitally next to the crossbar convs).
#pragma once

#include "nn/layer.h"

namespace nvm::nn {

class BatchNorm2d final : public Layer {
 public:
  explicit BatchNorm2d(std::int64_t channels, float momentum = 0.1f,
                       float eps = 1e-5f);

  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&gamma_, &beta_}; }
  std::string name() const override { return "batchnorm2d"; }

  /// Frozen statistics, exposed for serialization.
  Tensor& running_mean() { return running_mean_; }
  Tensor& running_var() { return running_var_; }

  /// When frozen, Train-mode forward also uses the running statistics (the
  /// standard BN-freeze fine-tuning phase that closes the train/eval
  /// statistics gap); gamma/beta keep training.
  void set_frozen(bool frozen) { frozen_ = frozen; }
  bool frozen() const { return frozen_; }

  /// Precise-BN statistics re-estimation: between begin and finish, every
  /// Eval-mode forward accumulates its *input* mean/variance per channel;
  /// finish replaces the running statistics with the accumulated ones.
  /// Used when the network is deployed on non-ideal hardware, whose
  /// systematic activation shift would otherwise invalidate the statistics.
  void begin_stat_collection();
  void finish_stat_collection();

  std::int64_t channels() const { return channels_; }

 private:
  std::int64_t channels_;
  float momentum_, eps_;
  bool frozen_ = false;
  Param gamma_;  // scale, no weight decay
  Param beta_;   // shift, no weight decay
  Tensor running_mean_, running_var_;

  // backward() caches
  enum class LastForward { None, Train, FrozenTrain, Eval };
  LastForward last_forward_ = LastForward::None;
  Tensor cached_xhat_;
  Tensor cached_inv_std_;  // per channel (batch stats path only)

  // Precise-BN accumulation state.
  bool collecting_ = false;
  std::int64_t collect_count_ = 0;
  Tensor collect_sum_, collect_sumsq_;
};

}  // namespace nvm::nn

#include "nn/optimizer.h"

#include "common/check.h"

namespace nvm::nn {

Sgd::Sgd(std::vector<Param*> params, SgdConfig config)
    : params_(std::move(params)), config_(config) {
  velocity_.reserve(params_.size());
  for (Param* p : params_) {
    NVM_CHECK(p != nullptr);
    velocity_.push_back(Tensor::zeros(p->value.shape()));
  }
}

void Sgd::step(float scale) {
  NVM_CHECK_GT(scale, 0.0f);
  const float inv = 1.0f / scale;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    Tensor& v = velocity_[i];
    const float wd = p.decay ? config_.weight_decay : 0.0f;
    auto pv = p.value.data();
    auto pg = p.grad.data();
    auto vel = v.data();
    for (std::size_t j = 0; j < pv.size(); ++j) {
      const float g = pg[j] * inv + wd * pv[j];
      vel[j] = config_.momentum * vel[j] + g;
      pv[j] -= config_.lr * vel[j];
    }
    p.grad.fill(0.0f);
  }
}

}  // namespace nvm::nn

// Layer abstraction with explicit forward/backward.
//
// The library uses layer-local manual differentiation instead of a tape:
// each layer caches whatever it needs during forward() and implements
// backward(grad_out) -> grad_in, accumulating parameter gradients into
// Param::grad. Chaining backward() through the first layer yields
// d(loss)/d(input), which is what gradient-based attacks (PGD) consume.
//
// Hardware-in-loop gradients (paper §III-C2) fall out of this design: when
// a layer's MVM runs on a non-ideal crossbar engine, forward() caches the
// *non-ideal* activations, while backward() applies the *ideal* local
// derivative at those cached values — exactly the paper's attack gradient.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "tensor/tensor.h"

namespace nvm::nn {

/// A trainable tensor with its gradient accumulator.
struct Param {
  Tensor value;
  Tensor grad;
  /// When false the trainer skips weight decay (biases, BN affine params).
  bool decay = true;

  explicit Param(Tensor v, bool decay_flag = true)
      : value(std::move(v)), grad(Tensor::zeros(value.shape())),
        decay(decay_flag) {}
};

/// Forward-pass mode: Train uses batch statistics and stochastic layers;
/// Eval uses running statistics and applies inference-time hooks.
enum class Mode { Train, Eval };

class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output; caches state required by backward().
  virtual Tensor forward(const Tensor& x, Mode mode) = 0;

  /// Propagates gradients; must follow a forward() in Train-compatible
  /// state. Accumulates into parameter grads and returns grad w.r.t. input.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<Param*> params() { return {}; }

  /// Child layers for composite layers (Sequential, ResidualBlock).
  virtual std::vector<Layer*> children() { return {}; }

  virtual std::string name() const = 0;

  /// Inference-time output hook, used to attach defenses (e.g. stochastic
  /// activation pruning) to existing layers. Applied in Eval mode only and
  /// invisible to backward() — matching the paper's non-adaptive threat
  /// model where the attacker's gradient does not see the defense.
  void set_eval_hook(std::function<Tensor(const Tensor&)> hook) {
    eval_hook_ = std::move(hook);
  }
  bool has_eval_hook() const { return static_cast<bool>(eval_hook_); }

 protected:
  Tensor apply_eval_hook(Tensor y, Mode mode) const {
    if (mode == Mode::Eval && eval_hook_) return eval_hook_(y);
    return y;
  }

 private:
  std::function<Tensor(const Tensor&)> eval_hook_;
};

/// Collects parameters of a layer tree in depth-first order.
std::vector<Param*> collect_params(Layer& root);

/// Visits every layer in the tree (pre-order), including the root.
void visit_layers(Layer& root, const std::function<void(Layer&)>& fn);

/// Zeroes all parameter gradients in the tree.
void zero_grads(Layer& root);

}  // namespace nvm::nn

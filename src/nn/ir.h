// Lazy tensor IR for inference-graph capture (DESIGN.md §17).
//
// The nn:: layer tree is an eager interpreter: every forward() walks the
// tree op-by-op. For whole-graph work — linearized execution plans, fusion
// decisions, plan caching — the stack needs the graph as DATA. This module
// captures it once: a walk over the Network's layer tree produces a small
// hash-consed IR (structurally identical subgraphs intern to the same
// node, in the style of pytorch_xla's ir.cpp), with scoped op names for
// diagnostics, a lazily-filled shape cache, and a deterministic
// whole-graph hash that keys the execution-plan file cache.
//
// The IR is intentionally minimal: nodes carry an opcode, input edges, and
// integer attributes (parameter shapes, pool windows). It describes the
// Eval-mode dataflow only — training, gradients, and stochastic layers
// stay on the eager interpreter.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "tensor/tensor.h"

namespace nvm::nn {

class Layer;
class Network;

namespace ir {

enum class Op : std::uint8_t {
  kInput = 0,
  kConv2d,
  kBatchNorm2d,
  kRelu,
  kAvgPool2d,
  kGlobalAvgPool,
  kFlatten,
  kLinear,
  kResidualBlock,  ///< kept opaque: its skip-add topology is one plan step
  kOutput,
  // Lowering ops: the puma plan compiler (puma/plan.cpp) expresses the
  // tiled-GEMM pipeline in the same IR so plans hash and cache uniformly.
  kQuantize,     ///< activation quantization to input_bits
  kDac,          ///< bit-stream chunk extraction to DAC codes
  kTileMvm,      ///< one programmed tile slot's streamed crossbar passes
  kAdcShiftAdd,  ///< ADC + baseline subtract + shift-add reduction
  kFusedMvm,     ///< quantize→DAC→tile-MVM→ADC chain as one fused kernel
};

const char* op_name(Op op);

/// One hash-consed IR node. `hash` is structural — opcode, attributes, and
/// input HASHES (not ids) folded together — so equal subtrees hash equal
/// regardless of interning order; `scope` is diagnostic metadata and
/// deliberately excluded from the hash and from interning equality.
struct Node {
  Op op = Op::kInput;
  std::vector<std::int64_t> inputs;  ///< node ids
  std::vector<std::int64_t> attrs;   ///< op-specific (param dims, windows)
  std::string scope;                 ///< e.g. "root/4/residual_block"
  std::uint64_t hash = 0;
};

/// Append-only graph with hash-consing and a shape cache.
class Graph {
 public:
  /// Interns a node: structurally identical (op, inputs, attrs) nodes
  /// return the existing id instead of growing the graph.
  std::int64_t intern(Op op, std::vector<std::int64_t> inputs,
                      std::vector<std::int64_t> attrs, std::string scope);

  const Node& node(std::int64_t id) const { return nodes_.at(static_cast<std::size_t>(id)); }
  std::int64_t size() const { return static_cast<std::int64_t>(nodes_.size()); }

  /// Shape cache: filled lazily (first planned execution records the
  /// shapes it observes); a node without a cached shape returns nullptr.
  void set_shape(std::int64_t id, Shape shape);
  const Shape* shape(std::int64_t id) const;

  /// Deterministic whole-graph hash: node hashes folded in id order over a
  /// seed. Identical architectures produce identical hashes across runs
  /// (no pointers, no iteration-order dependence), so this keys the
  /// execution-plan file cache.
  std::uint64_t graph_hash(std::uint64_t seed = 0) const;

  /// Human-readable one-node-per-line dump (tests, debugging).
  std::string to_string() const;

 private:
  std::vector<Node> nodes_;
  std::vector<std::optional<Shape>> shapes_;
  std::unordered_map<std::uint64_t, std::vector<std::int64_t>> interned_;
};

/// Result of capturing a Network's Eval-mode dataflow. When `ok` is false
/// (a layer the IR does not model, or an eval hook whose behaviour is not
/// graph-representable), `reason` says why and callers fall back to the
/// eager interpreter.
struct Capture {
  Graph graph;
  std::vector<Layer*> steps;            ///< linear execution order
  std::vector<std::int64_t> step_nodes; ///< IR node id per step
  std::int64_t input_node = -1;
  std::int64_t output_node = -1;
  bool ok = false;
  std::string reason;
};

/// Captures `net`'s layer walk into an IR graph: nested Sequentials are
/// flattened into the linear step list, ResidualBlocks stay single opaque
/// steps. Pure inspection — no forward pass runs and the network is not
/// mutated.
Capture capture(Network& net);

}  // namespace ir
}  // namespace nvm::nn

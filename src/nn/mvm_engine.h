// Matrix-vector-multiply engine abstraction.
//
// Conv2d and Linear route their forward GEMM through an MvmEngine. The
// default engine is exact float arithmetic ("accurate digital hardware" in
// the paper). Deploying a network onto NVM crossbars swaps in a
// puma::CrossbarMvmEngine per layer, which quantizes + tiles + bit-slices
// the weight matrix onto crossbar conductances and evaluates every MVM
// through a (non-ideal) crossbar model. Backward passes never touch the
// engine — gradients are always the ideal derivative, as in the paper.
// Thread-safety contract: one MvmEngine instance is NOT required to
// support concurrent matmul() calls — engines keep lazy-programming and
// calibration state (see puma::CrossbarMvmEngine). The parallel execution
// layer respects this at both of its levels:
//   * inside one call — puma::TiledMatrix::matmul fans crossbar tiles
//     across the nvm::ThreadPool; the underlying xbar::ProgrammedXbar
//     objects ARE required to tolerate concurrent mvm() (xbar/mvm_model.h);
//   * across samples — the core::accuracy / craft_* replica overloads give
//     each worker chunk its own network (and thus its own engine chain).
// Consequently a Network is driven by at most one thread at a time, and
// engines never see concurrent matmul() on the same instance.
#pragma once

#include <memory>
#include <string>

#include "tensor/tensor.h"

namespace nvm::nn {

class MvmEngine {
 public:
  virtual ~MvmEngine() = default;

  /// Computes W(MxK) * X(KxN) where W is the layer's float weight matrix
  /// and X packs N input vectors (im2col columns / a single linear input).
  /// Implementations may quantize, tile and perturb the computation; they
  /// must not mutate W or X.
  virtual Tensor matmul(const Tensor& w, const Tensor& x) = 0;

  virtual std::string name() const = 0;
};

/// Exact float GEMM — the "accurate digital" baseline.
class IdealMvmEngine final : public MvmEngine {
 public:
  Tensor matmul(const Tensor& w, const Tensor& x) override;
  std::string name() const override { return "ideal"; }
};

/// Shared default instance (stateless).
std::shared_ptr<MvmEngine> ideal_engine();

}  // namespace nvm::nn

#include "nn/linear.h"

#include <cmath>

#include "common/check.h"
#include "tensor/ops.h"

namespace nvm::nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng)
    : in_f_(in_features),
      out_f_(out_features),
      weight_(Tensor::normal({out_features, in_features}, 0.0f,
                             std::sqrt(1.0f / static_cast<float>(in_features)),
                             rng)),
      bias_(Tensor::zeros({out_features}), /*decay_flag=*/false),
      engine_(ideal_engine()) {
  NVM_CHECK(in_features > 0 && out_features > 0);
}

void Linear::set_engine(std::shared_ptr<MvmEngine> engine) {
  NVM_CHECK(engine != nullptr);
  engine_ = std::move(engine);
}

Tensor Linear::forward(const Tensor& x, Mode mode) {
  NVM_CHECK_EQ(x.numel(), in_f_);
  cached_in_ = x.reshaped({in_f_});
  Tensor y = engine_->matmul(weight_.value, cached_in_.reshaped({in_f_, 1}));
  y.reshape({out_f_});
  y += bias_.value;
  return apply_eval_hook(std::move(y), mode);
}

Tensor Linear::backward(const Tensor& grad_out) {
  NVM_CHECK(cached_in_.numel() > 0, "backward before forward");
  Tensor g = grad_out.reshaped({out_f_});
  bias_.grad += g;
  // dW = g x^T
  weight_.grad += matmul(g.reshaped({out_f_, 1}), cached_in_.reshaped({1, in_f_}));
  // dx = W^T g
  return matvec(transpose2d(weight_.value), g);
}

}  // namespace nvm::nn

#include "nn/network.h"

#include "common/check.h"
#include "nn/linear.h"

namespace nvm::nn {

Network::Network(std::string arch, std::unique_ptr<Sequential> root,
                 std::int64_t num_classes)
    : arch_(std::move(arch)), root_(std::move(root)), num_classes_(num_classes) {
  NVM_CHECK(root_ != nullptr);
  NVM_CHECK_GT(num_classes_, 0);
}

Tensor Network::forward(const Tensor& x, Mode mode) {
  Tensor y = root_->forward(x, mode);
  NVM_CHECK_EQ(y.numel(), num_classes_);
  return y;
}

Tensor Network::backward(const Tensor& grad_logits) {
  return root_->backward(grad_logits);
}

std::vector<Param*> Network::params() { return collect_params(*root_); }

void Network::zero_grads() { nn::zero_grads(*root_); }

std::int64_t Network::param_count() {
  std::int64_t n = 0;
  for (Param* p : params()) n += p->value.numel();
  return n;
}

void Network::set_mvm_engines(
    const std::function<std::shared_ptr<MvmEngine>(Layer&)>& make) {
  visit_layers(*root_, [&](Layer& l) {
    if (auto* conv = dynamic_cast<Conv2d*>(&l)) {
      conv->set_engine(make(l));
    } else if (auto* lin = dynamic_cast<Linear*>(&l)) {
      lin->set_engine(make(l));
    }
  });
}

void Network::reset_mvm_engines() {
  set_mvm_engines([](Layer&) { return ideal_engine(); });
}

void Network::freeze_batchnorm(bool frozen) {
  visit_layers(*root_, [&](Layer& l) {
    if (auto* bn = dynamic_cast<BatchNorm2d*>(&l)) bn->set_frozen(frozen);
  });
}

void Network::set_conv_eval_hooks(std::function<Tensor(const Tensor&)> hook) {
  visit_layers(*root_, [&](Layer& l) {
    if (dynamic_cast<Conv2d*>(&l) != nullptr) l.set_eval_hook(hook);
  });
}

void Network::save(BinaryWriter& w) {
  w.write_string(arch_);
  for (Param* p : params()) p->value.save(w);
  visit_layers(*root_, [&](Layer& l) {
    if (auto* bn = dynamic_cast<BatchNorm2d*>(&l)) {
      bn->running_mean().save(w);
      bn->running_var().save(w);
    }
  });
}

void Network::load(BinaryReader& r) {
  const std::string arch = r.read_string();
  NVM_CHECK(arch == arch_, "architecture mismatch: " << arch << " vs " << arch_);
  for (Param* p : params()) {
    Tensor v = Tensor::load(r);
    NVM_CHECK(v.same_shape(p->value), "param shape mismatch");
    p->value = std::move(v);
  }
  visit_layers(*root_, [&](Layer& l) {
    if (auto* bn = dynamic_cast<BatchNorm2d*>(&l)) {
      bn->running_mean() = Tensor::load(r);
      bn->running_var() = Tensor::load(r);
    }
  });
}

}  // namespace nvm::nn

// Text report helpers shared by the benchmark harnesses: aligned tables in
// the style of the paper's Tables III/IV, and figure series as
// comma-separated rows suitable for replotting.
#pragma once

#include <string>
#include <vector>

namespace nvm::core {

/// Accumulates a table and prints it with aligned columns.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Prints to stdout with a title banner.
  void print(const std::string& title) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// "54.98 (+35.34)" — value with delta vs baseline, paper style.
std::string with_delta(float value, float baseline);

/// Fixed two-decimal formatting.
std::string fmt(float value);

/// Prints one figure series: "series_name, p1, p2, ..." after an x-axis
/// header line. Collect multiple calls under one banner for replotting.
void print_series(const std::string& name, const std::vector<float>& values);

}  // namespace nvm::core

// Report helpers shared by the benchmark harnesses and CLI: aligned text
// tables in the style of the paper's Tables III/IV, figure series as
// comma-separated rows suitable for replotting, and the machine-readable
// run manifest (JSON) that carries crossbar config, accuracy results,
// metric/health deltas, and span timings out of a run. See DESIGN.md §10
// for the manifest schema.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "xbar/config.h"

namespace nvm::core {

/// Accumulates a table and prints it with aligned columns.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Prints to stdout with a title banner.
  void print(const std::string& title) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// "54.98 (+35.34)" — value with delta vs baseline, paper style.
std::string with_delta(float value, float baseline);

/// Fixed two-decimal formatting.
std::string fmt(float value);

/// Prints one figure series: "series_name, p1, p2, ..." after an x-axis
/// header line. Collect multiple calls under one banner for replotting.
void print_series(const std::string& name, const std::vector<float>& values);

/// Minimal streaming JSON writer: correct escaping (control characters,
/// quotes, backslashes), non-finite doubles emitted as null, 2-space
/// indentation. Misnested begin/end or a key outside an object throws
/// CheckError.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  void key(const std::string& k);
  void value(const std::string& v);
  void value(const char* v);
  void value(double v);
  void value(std::uint64_t v);
  void value(std::int64_t v);
  void value(bool v);
  void null();

  /// Escapes `v` as a JSON string literal including the quotes.
  static std::string escape(const std::string& v);

 private:
  void before_value();

  std::ostream& os_;
  /// One entry per open container: true once it holds a member (comma due).
  std::vector<bool> has_member_;
  bool key_pending_ = false;
};

/// Collects one run's worth of observability output and writes it as a
/// single JSON file. Metric and health baselines are snapshotted at
/// construction, so the manifest reports *deltas over this run* even when
/// several runs share a process. Writes on destruction if write() was
/// never called; write failures log a warning, never throw.
class RunManifest {
 public:
  /// `path` may be empty: the manifest then collects but never writes
  /// (keeps call sites branch-free).
  RunManifest(std::string run_name, std::string path);
  ~RunManifest();
  RunManifest(RunManifest&& other) noexcept;
  RunManifest& operator=(RunManifest&&) = delete;
  RunManifest(const RunManifest&) = delete;
  RunManifest& operator=(const RunManifest&) = delete;

  /// Resolves the output path from `flag_path` (the --metrics-out flag,
  /// wins when non-empty) or the NVM_METRICS_OUT environment variable;
  /// the returned manifest is inert when neither is set.
  static RunManifest from_env(std::string run_name,
                              const std::string& flag_path = "");

  void set_xbar(const xbar::CrossbarConfig& cfg);
  /// Records one named numeric result (accuracies, NF values, ...).
  void add_result(const std::string& name, double value);
  /// Records one named numeric series (fleet curves, sweep rows, ...);
  /// written as a JSON array under "series".
  void add_series(const std::string& name, std::vector<double> values);
  /// Records one free-form annotation (model arch, attack settings, ...).
  void set_note(const std::string& key, const std::string& value);

  bool active() const { return !path_.empty(); }
  /// Writes the manifest now (at most once; later calls and the
  /// destructor become no-ops).
  void write();

 private:
  std::string run_name_;
  std::string path_;
  bool written_ = false;
  std::optional<xbar::CrossbarConfig> xbar_;
  std::vector<std::pair<std::string, double>> results_;
  std::vector<std::pair<std::string, std::vector<double>>> series_;
  std::vector<std::pair<std::string, std::string>> notes_;
  std::vector<metrics::MetricValue> metrics_base_;
};

}  // namespace nvm::core

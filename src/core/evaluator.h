// Accuracy evaluation over (possibly defended, possibly crossbar-deployed)
// forward functions, and batch adversarial-set generation.
//
// Parallel execution model: a Network (and therefore a ForwardFn or
// AttackModel wrapping one) caches layer state during forward/backward, so
// a single instance must never be driven from two threads at once. The
// serial entry points below honor that. Each also has a replica overload
// that fans per-sample work across the thread pool, taking one
// functionally-identical replica per worker chunk (at most one thread
// drives a replica at a time). Per-sample RNG seeding goes through
// derive_seed(base, sample_index) in both paths, so serial and parallel
// runs produce bit-identical outputs when the replicas are deterministic
// and equivalent.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "attack/pgd.h"
#include "attack/square.h"
#include "nn/network.h"

namespace nvm::core {

/// Image -> logits. Wraps whatever stack is under evaluation.
using ForwardFn = std::function<Tensor(const Tensor&)>;

/// Plain Eval-mode forward of a network (with its current engines/hooks).
ForwardFn plain_forward(nn::Network& net);

/// Top-1 accuracy (%) of `fn` over an image set (serial).
float accuracy(const ForwardFn& fn, std::span<const Tensor> images,
               std::span<const std::int64_t> labels);

/// Top-1 accuracy (%) fanning samples across the pool: replica r serves
/// worker chunk r. Replicas must classify identically (e.g. plain_forward
/// over identically-prepared networks, or copies of one thread-safe
/// closure); then the result equals the serial overload bit-for-bit.
float accuracy(std::span<const ForwardFn> replicas,
               std::span<const Tensor> images,
               std::span<const std::int64_t> labels);

/// Crafts one PGD adversarial image per input using `attacker`'s view.
/// Image i uses seed derive_seed(opt.seed, i).
std::vector<Tensor> craft_pgd(attack::AttackModel& attacker,
                              std::span<const Tensor> images,
                              std::span<const std::int64_t> labels,
                              const attack::PgdOptions& opt);

/// Parallel PGD crafting over per-worker attacker replicas; per-image
/// seeding matches the serial overload, so equivalent replicas yield
/// bit-identical adversarial sets.
std::vector<Tensor> craft_pgd(std::span<attack::AttackModel* const> attackers,
                              std::span<const Tensor> images,
                              std::span<const std::int64_t> labels,
                              const attack::PgdOptions& opt);

/// Crafts one Square-Attack adversarial image per input.
/// Image i uses seed derive_seed(opt.seed, i).
std::vector<Tensor> craft_square(attack::AttackModel& attacker,
                                 std::span<const Tensor> images,
                                 std::span<const std::int64_t> labels,
                                 const attack::SquareOptions& opt);

/// Parallel Square-Attack crafting over per-worker attacker replicas.
std::vector<Tensor> craft_square(
    std::span<attack::AttackModel* const> attackers,
    std::span<const Tensor> images, std::span<const std::int64_t> labels,
    const attack::SquareOptions& opt);

}  // namespace nvm::core

// Accuracy evaluation over (possibly defended, possibly crossbar-deployed)
// forward functions, and batch adversarial-set generation.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "attack/pgd.h"
#include "attack/square.h"
#include "nn/network.h"

namespace nvm::core {

/// Image -> logits. Wraps whatever stack is under evaluation.
using ForwardFn = std::function<Tensor(const Tensor&)>;

/// Plain Eval-mode forward of a network (with its current engines/hooks).
ForwardFn plain_forward(nn::Network& net);

/// Top-1 accuracy (%) of `fn` over an image set.
float accuracy(const ForwardFn& fn, std::span<const Tensor> images,
               std::span<const std::int64_t> labels);

/// Crafts one PGD adversarial image per input using `attacker`'s view.
std::vector<Tensor> craft_pgd(attack::AttackModel& attacker,
                              std::span<const Tensor> images,
                              std::span<const std::int64_t> labels,
                              const attack::PgdOptions& opt);

/// Crafts one Square-Attack adversarial image per input.
std::vector<Tensor> craft_square(attack::AttackModel& attacker,
                                 std::span<const Tensor> images,
                                 std::span<const std::int64_t> labels,
                                 const attack::SquareOptions& opt);

}  // namespace nvm::core

#include "core/evaluator.h"

#include "common/check.h"

namespace nvm::core {

ForwardFn plain_forward(nn::Network& net) {
  return [&net](const Tensor& x) { return net.forward(x, nn::Mode::Eval); };
}

float accuracy(const ForwardFn& fn, std::span<const Tensor> images,
               std::span<const std::int64_t> labels) {
  NVM_CHECK_EQ(images.size(), labels.size());
  NVM_CHECK_GT(images.size(), 0u);
  std::int64_t correct = 0;
  for (std::size_t i = 0; i < images.size(); ++i)
    if (fn(images[i]).argmax() == labels[i]) ++correct;
  return 100.0f * static_cast<float>(correct) /
         static_cast<float>(images.size());
}

std::vector<Tensor> craft_pgd(attack::AttackModel& attacker,
                              std::span<const Tensor> images,
                              std::span<const std::int64_t> labels,
                              const attack::PgdOptions& opt) {
  NVM_CHECK_EQ(images.size(), labels.size());
  std::vector<Tensor> out;
  out.reserve(images.size());
  for (std::size_t i = 0; i < images.size(); ++i) {
    attack::PgdOptions per = opt;
    per.seed = opt.seed + i;  // independent random starts per image
    out.push_back(attack::pgd_attack(attacker, images[i], labels[i], per));
  }
  return out;
}

std::vector<Tensor> craft_square(attack::AttackModel& attacker,
                                 std::span<const Tensor> images,
                                 std::span<const std::int64_t> labels,
                                 const attack::SquareOptions& opt) {
  NVM_CHECK_EQ(images.size(), labels.size());
  std::vector<Tensor> out;
  out.reserve(images.size());
  for (std::size_t i = 0; i < images.size(); ++i) {
    attack::SquareOptions per = opt;
    per.seed = opt.seed + i;
    out.push_back(
        attack::square_attack(attacker, images[i], labels[i], per).adv);
  }
  return out;
}

}  // namespace nvm::core

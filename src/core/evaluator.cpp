#include "core/evaluator.h"

#include "common/check.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "puma/plan.h"

namespace nvm::core {

ForwardFn plain_forward(nn::Network& net) {
  // With NVM_PLAN on (the default), capture the layer walk once and replay
  // the linearized plan; networks the IR cannot represent (eval hooks,
  // unknown layers) keep the eager walk.
  if (puma::plan_enabled()) {
    if (std::shared_ptr<puma::NetworkPlan> plan =
            puma::NetworkPlan::capture(net)) {
      return [plan](const Tensor& x) { return plan->forward(x); };
    }
  }
  return [&net](const Tensor& x) { return net.forward(x, nn::Mode::Eval); };
}

float accuracy(const ForwardFn& fn, std::span<const Tensor> images,
               std::span<const std::int64_t> labels) {
  NVM_TRACE_SPAN("eval/accuracy");
  NVM_CHECK_EQ(images.size(), labels.size());
  NVM_CHECK_GT(images.size(), 0u);
  std::int64_t correct = 0;
  for (std::size_t i = 0; i < images.size(); ++i)
    if (fn(images[i]).argmax() == labels[i]) ++correct;
  return 100.0f * static_cast<float>(correct) /
         static_cast<float>(images.size());
}

float accuracy(std::span<const ForwardFn> replicas,
               std::span<const Tensor> images,
               std::span<const std::int64_t> labels) {
  NVM_TRACE_SPAN("eval/accuracy");
  NVM_CHECK_EQ(images.size(), labels.size());
  NVM_CHECK_GT(images.size(), 0u);
  NVM_CHECK_GT(replicas.size(), 0u);
  const auto n = static_cast<std::int64_t>(images.size());
  // Per-sample verdicts land in disjoint slots; the count is an integer
  // sum, so the result does not depend on chunking or thread count.
  std::vector<std::uint8_t> hit(images.size(), 0);
  parallel_chunks(n, static_cast<std::int64_t>(replicas.size()),
                  [&](std::int64_t chunk, std::int64_t begin,
                      std::int64_t end) {
                    const ForwardFn& fn = replicas[static_cast<std::size_t>(chunk)];
                    for (std::int64_t i = begin; i < end; ++i) {
                      const auto u = static_cast<std::size_t>(i);
                      hit[u] = fn(images[u]).argmax() == labels[u] ? 1 : 0;
                    }
                  });
  std::int64_t correct = 0;
  for (const std::uint8_t h : hit) correct += h;
  return 100.0f * static_cast<float>(correct) /
         static_cast<float>(images.size());
}

std::vector<Tensor> craft_pgd(attack::AttackModel& attacker,
                              std::span<const Tensor> images,
                              std::span<const std::int64_t> labels,
                              const attack::PgdOptions& opt) {
  NVM_TRACE_SPAN("eval/craft_pgd");
  NVM_CHECK_EQ(images.size(), labels.size());
  std::vector<Tensor> out;
  out.reserve(images.size());
  for (std::size_t i = 0; i < images.size(); ++i) {
    attack::PgdOptions per = opt;
    per.seed = derive_seed(opt.seed, i);  // independent random starts
    out.push_back(attack::pgd_attack(attacker, images[i], labels[i], per));
  }
  return out;
}

std::vector<Tensor> craft_pgd(std::span<attack::AttackModel* const> attackers,
                              std::span<const Tensor> images,
                              std::span<const std::int64_t> labels,
                              const attack::PgdOptions& opt) {
  NVM_TRACE_SPAN("eval/craft_pgd");
  NVM_CHECK_EQ(images.size(), labels.size());
  NVM_CHECK_GT(attackers.size(), 0u);
  std::vector<Tensor> out(images.size());
  parallel_chunks(
      static_cast<std::int64_t>(images.size()),
      static_cast<std::int64_t>(attackers.size()),
      [&](std::int64_t chunk, std::int64_t begin, std::int64_t end) {
        attack::AttackModel* attacker =
            attackers[static_cast<std::size_t>(chunk)];
        for (std::int64_t i = begin; i < end; ++i) {
          const auto u = static_cast<std::size_t>(i);
          attack::PgdOptions per = opt;
          per.seed = derive_seed(opt.seed, u);
          out[u] = attack::pgd_attack(*attacker, images[u], labels[u], per);
        }
      });
  return out;
}

std::vector<Tensor> craft_square(attack::AttackModel& attacker,
                                 std::span<const Tensor> images,
                                 std::span<const std::int64_t> labels,
                                 const attack::SquareOptions& opt) {
  NVM_TRACE_SPAN("eval/craft_square");
  NVM_CHECK_EQ(images.size(), labels.size());
  std::vector<Tensor> out;
  out.reserve(images.size());
  for (std::size_t i = 0; i < images.size(); ++i) {
    attack::SquareOptions per = opt;
    per.seed = derive_seed(opt.seed, i);
    out.push_back(
        attack::square_attack(attacker, images[i], labels[i], per).adv);
  }
  return out;
}

std::vector<Tensor> craft_square(
    std::span<attack::AttackModel* const> attackers,
    std::span<const Tensor> images, std::span<const std::int64_t> labels,
    const attack::SquareOptions& opt) {
  NVM_TRACE_SPAN("eval/craft_square");
  NVM_CHECK_EQ(images.size(), labels.size());
  NVM_CHECK_GT(attackers.size(), 0u);
  std::vector<Tensor> out(images.size());
  parallel_chunks(
      static_cast<std::int64_t>(images.size()),
      static_cast<std::int64_t>(attackers.size()),
      [&](std::int64_t chunk, std::int64_t begin, std::int64_t end) {
        attack::AttackModel* attacker =
            attackers[static_cast<std::size_t>(chunk)];
        for (std::int64_t i = begin; i < end; ++i) {
          const auto u = static_cast<std::size_t>(i);
          attack::SquareOptions per = opt;
          per.seed = derive_seed(opt.seed, u);
          out[u] =
              attack::square_attack(*attacker, images[u], labels[u], per).adv;
        }
      });
  return out;
}

}  // namespace nvm::core

#include "core/tasks.h"

#include <sstream>

#include "common/check.h"
#include "common/env.h"
#include "common/file_cache.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/serialize.h"
#include "common/trace.h"

namespace nvm::core {

namespace {

nn::TrainConfig default_train_config() {
  nn::TrainConfig tc;
  tc.epochs = env_int("NVMROBUST_EPOCHS", 15);
  tc.batch_size = 32;
  tc.sgd.lr = 0.05f;
  tc.sgd.momentum = 0.9f;
  tc.sgd.weight_decay = 5e-4f;
  tc.seed = 42;
  return tc;
}

}  // namespace

Task task_scifar10() {
  Task t;
  t.name = "SCIFAR10";
  t.paper_analogue = "CIFAR-10 (ResNet-20)";
  t.data_spec.name = "scifar10";
  t.data_spec.classes = 10;
  t.data_spec.image_size = 12;
  t.data_spec.train_count = scaled(900, 4000);
  t.data_spec.test_count = scaled(300, 1000);
  t.data_spec.seed = 100;
  t.make_network = [](Rng& rng) {
    nn::ResnetCifarSpec spec;
    spec.blocks_per_stage = 3;  // ResNet-20
    spec.widths = {8, 16, 32};
    spec.num_classes = 10;
    return nn::make_resnet_cifar(spec, rng);
  };
  t.train_config = default_train_config();
  t.attack_eval_count = scaled(96, 1000);
  t.adaptive_eval_count = scaled(64, 500);
  return t;
}

Task task_scifar100() {
  Task t;
  t.name = "SCIFAR100";
  t.paper_analogue = "CIFAR-100 (ResNet-32)";
  t.data_spec.name = "scifar100";
  t.data_spec.classes = 20;
  t.data_spec.image_size = 12;
  t.data_spec.train_count = scaled(1200, 6000);
  t.data_spec.test_count = scaled(300, 1000);
  t.data_spec.seed = 200;
  t.data_spec.noise = 0.13f;  // harder task, mirroring CIFAR-100's lower accuracy
  t.make_network = [](Rng& rng) {
    nn::ResnetCifarSpec spec;
    spec.blocks_per_stage = 5;  // ResNet-32
    spec.widths = {8, 16, 32};
    spec.num_classes = 20;
    return nn::make_resnet_cifar(spec, rng);
  };
  t.train_config = default_train_config();
  t.attack_eval_count = scaled(96, 1000);
  t.adaptive_eval_count = scaled(64, 500);
  return t;
}

Task task_simagenet() {
  Task t;
  t.name = "SIMAGENET";
  t.paper_analogue = "ImageNet (ResNet-18)";
  t.data_spec.name = "simagenet";
  t.data_spec.classes = 16;
  t.data_spec.image_size = 24;
  t.data_spec.train_count = scaled(960, 4000);
  t.data_spec.test_count = scaled(192, 1000);
  t.data_spec.seed = 300;
  t.data_spec.noise = 0.11f;
  t.make_network = [](Rng& rng) {
    nn::Resnet18Spec spec;
    spec.widths = {8, 16, 24, 32};
    spec.num_classes = 16;
    return nn::make_resnet18(spec, rng);
  };
  t.train_config = default_train_config();
  t.train_config.epochs = env_int("NVMROBUST_EPOCHS", 12);
  t.attack_eval_count = scaled(64, 1000);
  t.adaptive_eval_count = scaled(48, 500);
  return t;
}

std::vector<Task> all_tasks() {
  return {task_scifar10(), task_scifar100(), task_simagenet()};
}

nn::Network PreparedTask::clone_network() const {
  Rng rng(task.train_config.seed);
  nn::Network copy = task.make_network(rng);
  std::stringstream buf;
  BinaryWriter w(buf);
  // save() only reads parameters; the const_cast spares Network a const
  // save overload.
  const_cast<nn::Network&>(network).save(w);
  BinaryReader r(buf);
  copy.load(r);
  return copy;
}

std::vector<Tensor> PreparedTask::calibration_images(std::int64_t count) const {
  NVM_CHECK_GT(count, 0);
  std::vector<Tensor> out;
  const auto n = std::min<std::size_t>(static_cast<std::size_t>(count),
                                       dataset.train_images.size());
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(dataset.train_images[i]);
  return out;
}

std::span<const Tensor> PreparedTask::eval_images(std::int64_t count) const {
  const auto n = std::min<std::size_t>(static_cast<std::size_t>(count),
                                       dataset.test_images.size());
  return {dataset.test_images.data(), n};
}

std::span<const std::int64_t> PreparedTask::eval_labels(
    std::int64_t count) const {
  const auto n = std::min<std::size_t>(static_cast<std::size_t>(count),
                                       dataset.test_labels.size());
  return {dataset.test_labels.data(), n};
}

PreparedTask prepare(const Task& task) {
  trace::Span watch("core/prepare");
  data::Dataset ds = make_synth_vision(task.data_spec);
  Rng init_rng(task.train_config.seed);
  nn::Network net = task.make_network(init_rng);

  std::ostringstream tag;
  tag << net.arch() << "_n" << task.data_spec.train_count << "_s"
      << task.data_spec.seed << "_e" << task.train_config.epochs << "_lr"
      << task.train_config.sgd.lr << "_noise" << task.data_spec.noise;

  const std::string file = "model_" + task.name + ".bin";
  bool loaded = cache_load(file, tag.str(),
                           [&](BinaryReader& r) { net.load(r); });
  if (!loaded) {
    NVM_LOG(Info) << "training " << task.name << " (" << net.arch() << ", "
                  << net.param_count() << " params)";
    nn::train(net, ds.train_images, ds.train_labels, task.train_config);
    cache_store(file, tag.str(), [&](BinaryWriter& w) { net.save(w); });
    metrics::gauge("core/train_seconds").set(watch.seconds());
    NVM_LOG(Info) << task.name << " trained in " << watch.seconds() << "s";
  }

  PreparedTask out{task, std::move(ds), std::move(net)};
  out.clean_test_accuracy = nn::evaluate_accuracy(
      out.network, out.dataset.test_images, out.dataset.test_labels);
  NVM_LOG(Info) << task.name << " clean test accuracy "
                << out.clean_test_accuracy << "%";
  return out;
}

}  // namespace nvm::core

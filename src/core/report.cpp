#include "core/report.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "common/check.h"
#include "common/file_cache.h"
#include "common/health.h"
#include "common/logging.h"
#include "common/telemetry.h"
#include "common/trace.h"

namespace nvm::core {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  NVM_CHECK(!header_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  NVM_CHECK_EQ(cells.size(), header_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(const std::string& title) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::cout << "\n== " << title << " ==\n";
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::cout << (c == 0 ? "" : " | ");
      std::cout << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad)
        std::cout << ' ';
    }
    std::cout << "\n";
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + 3;
  std::cout << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
  std::cout.flush();
}

std::string fmt(float value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", static_cast<double>(value));
  return buf;
}

std::string with_delta(float value, float baseline) {
  char buf[64];
  const float d = value - baseline;
  std::snprintf(buf, sizeof buf, "%.2f (%+.2f)", static_cast<double>(value),
                static_cast<double>(d));
  return buf;
}

void print_series(const std::string& name, const std::vector<float>& values) {
  std::cout << name;
  for (float v : values) std::cout << ", " << fmt(v);
  std::cout << "\n";
  std::cout.flush();
}

// ---------------------------------------------------------------------------
// JsonWriter

std::string JsonWriter::escape(const std::string& v) {
  std::string out;
  out.reserve(v.size() + 2);
  out += '"';
  for (const char c : v) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void JsonWriter::before_value() {
  if (has_member_.empty()) return;  // top-level value
  if (key_pending_) {
    key_pending_ = false;
    return;
  }
  if (has_member_.back()) os_ << ",";
  has_member_.back() = true;
  os_ << "\n" << std::string(2 * has_member_.size(), ' ');
}

void JsonWriter::begin_object() {
  before_value();
  os_ << "{";
  has_member_.push_back(false);
}

void JsonWriter::end_object() {
  NVM_CHECK(!has_member_.empty(), "JSON end_object with nothing open");
  const bool any = has_member_.back();
  has_member_.pop_back();
  if (any) os_ << "\n" << std::string(2 * has_member_.size(), ' ');
  os_ << "}";
  if (has_member_.empty()) os_ << "\n";
}

void JsonWriter::begin_array() {
  before_value();
  os_ << "[";
  has_member_.push_back(false);
}

void JsonWriter::end_array() {
  NVM_CHECK(!has_member_.empty(), "JSON end_array with nothing open");
  const bool any = has_member_.back();
  has_member_.pop_back();
  if (any) os_ << "\n" << std::string(2 * has_member_.size(), ' ');
  os_ << "]";
}

void JsonWriter::key(const std::string& k) {
  NVM_CHECK(!has_member_.empty() && !key_pending_,
            "JSON key() outside an object member slot");
  before_value();
  os_ << escape(k) << ": ";
  key_pending_ = true;
}

void JsonWriter::value(const std::string& v) {
  before_value();
  os_ << escape(v);
}

void JsonWriter::value(const char* v) { value(std::string(v)); }

void JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    os_ << "null";  // JSON has no NaN/Inf
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os_ << buf;
}

void JsonWriter::value(std::uint64_t v) {
  before_value();
  os_ << v;
}

void JsonWriter::value(std::int64_t v) {
  before_value();
  os_ << v;
}

void JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
}

void JsonWriter::null() {
  before_value();
  os_ << "null";
}

// ---------------------------------------------------------------------------
// RunManifest

RunManifest::RunManifest(std::string run_name, std::string path)
    : run_name_(std::move(run_name)), path_(std::move(path)) {
  if (active()) metrics_base_ = metrics::snapshot();
}

RunManifest::RunManifest(RunManifest&& other) noexcept
    : run_name_(std::move(other.run_name_)),
      path_(std::move(other.path_)),
      written_(other.written_),
      xbar_(std::move(other.xbar_)),
      results_(std::move(other.results_)),
      series_(std::move(other.series_)),
      notes_(std::move(other.notes_)),
      metrics_base_(std::move(other.metrics_base_)) {
  other.written_ = true;  // the moved-from shell must never write
}

RunManifest::~RunManifest() {
  try {
    write();
  } catch (...) {
    // Destructors must not throw; write() already logged the failure.
  }
}

RunManifest RunManifest::from_env(std::string run_name,
                                  const std::string& flag_path) {
  std::string path = flag_path;
  if (path.empty()) {
    const char* env = std::getenv("NVM_METRICS_OUT");
    if (env != nullptr) path = env;
  }
  return RunManifest(std::move(run_name), std::move(path));
}

void RunManifest::set_xbar(const xbar::CrossbarConfig& cfg) { xbar_ = cfg; }

void RunManifest::add_result(const std::string& name, double value) {
  results_.emplace_back(name, value);
}

void RunManifest::add_series(const std::string& name,
                             std::vector<double> values) {
  series_.emplace_back(name, std::move(values));
}

void RunManifest::set_note(const std::string& key, const std::string& value) {
  notes_.emplace_back(key, value);
}

namespace {

void write_metric_delta(JsonWriter& j, const metrics::MetricValue& m) {
  j.key(m.name);
  switch (m.kind) {
    case metrics::Kind::Counter:
      j.value(static_cast<std::uint64_t>(m.value));
      break;
    case metrics::Kind::Gauge:
      j.value(m.value);
      break;
    case metrics::Kind::Histogram:
      j.begin_object();
      j.key("count");
      j.value(m.count);
      j.key("sum");
      j.value(m.sum);
      j.key("bounds");
      j.begin_array();
      for (const double b : m.bounds) j.value(b);
      j.end_array();
      j.key("buckets");
      j.begin_array();
      for (const std::uint64_t b : m.buckets) j.value(b);
      j.end_array();
      // Interpolated tail estimates so consumers get latency percentiles
      // without re-deriving them from the buckets.
      j.key("p50");
      j.value(metrics::quantile(m, 0.5));
      j.key("p99");
      j.value(metrics::quantile(m, 0.99));
      j.end_object();
      break;
  }
}

}  // namespace

void RunManifest::write() {
  if (!active() || written_) return;
  written_ = true;

  const std::vector<metrics::MetricValue> deltas =
      metrics::delta(metrics::snapshot(), metrics_base_);

  // Build the whole document in memory and publish it crash-safely
  // (tmp + fsync + rename): a run killed mid-write never leaves a
  // truncated manifest behind.
  std::ostringstream os;
  JsonWriter j(os);
  j.begin_object();
  j.key("run");
  j.value(run_name_);
  j.key("schema");
  j.value(std::int64_t{1});

  j.key("xbar");
  if (xbar_.has_value()) {
    j.begin_object();
    j.key("name");
    j.value(xbar_->name);
    j.key("rows");
    j.value(xbar_->rows);
    j.key("cols");
    j.value(xbar_->cols);
    j.key("r_on");
    j.value(xbar_->r_on);
    j.key("on_off_ratio");
    j.value(xbar_->on_off_ratio);
    j.key("levels");
    j.value(xbar_->levels);
    j.key("r_source");
    j.value(xbar_->r_source);
    j.key("r_sink");
    j.value(xbar_->r_sink);
    j.key("r_wire");
    j.value(xbar_->r_wire);
    j.key("v_read");
    j.value(xbar_->v_read);
    j.key("device_nonlin");
    j.value(xbar_->device_nonlin);
    j.end_object();
  } else {
    j.null();
  }

  j.key("results");
  j.begin_object();
  for (const auto& [name, value] : results_) {
    j.key(name);
    j.value(value);
  }
  j.end_object();

  j.key("series");
  j.begin_object();
  for (const auto& [name, values] : series_) {
    j.key(name);
    j.begin_array();
    for (const double v : values) j.value(v);
    j.end_array();
  }
  j.end_object();

  j.key("notes");
  j.begin_object();
  for (const auto& [key, value] : notes_) {
    j.key(key);
    j.value(value);
  }
  j.end_object();

  // Health counters are metrics (one source of truth); this section just
  // pulls their four canonical names out of the same delta list.
  j.key("health");
  j.begin_object();
  for (int c = 0; c < kHealthCounterCount; ++c) {
    const std::string name = health_metric_name(static_cast<HealthCounter>(c));
    std::uint64_t delta_value = 0;
    for (const auto& m : deltas)
      if (m.name == name) delta_value = static_cast<std::uint64_t>(m.value);
    j.key(name);
    j.value(delta_value);
  }
  j.end_object();

  j.key("metrics");
  j.begin_object();
  for (const auto& m : deltas) write_metric_delta(j, m);
  j.end_object();

  j.key("spans");
  j.begin_object();
  for (const auto& [name, stats] : trace::snapshot()) {
    j.key(name);
    j.begin_object();
    j.key("count");
    j.value(stats.count);
    j.key("total_ns");
    j.value(stats.total_ns);
    j.key("min_ns");
    j.value(stats.min_ns);
    j.key("max_ns");
    j.value(stats.max_ns);
    j.end_object();
  }
  j.end_object();

  // Streaming-telemetry series (common/telemetry.h): absolute sampled
  // values in pulse order, not deltas — a pulse may predate this
  // manifest's construction when several runs share a process.
  j.key("telemetry");
  j.begin_object();
  j.key("capacity");
  j.value(static_cast<std::uint64_t>(telemetry::capacity()));
  j.key("series");
  j.begin_object();
  for (const telemetry::Series& s : telemetry::snapshot()) {
    if (s.ticks.empty() && s.dropped == 0) continue;
    j.key(s.metric);
    j.begin_object();
    j.key("ticks");
    j.begin_array();
    for (const std::uint64_t t : s.ticks) j.value(t);
    j.end_array();
    j.key("values");
    j.begin_array();
    for (const double v : s.values) j.value(v);
    j.end_array();
    j.key("dropped");
    j.value(s.dropped);
    j.end_object();
  }
  j.end_object();
  j.end_object();

  j.end_object();
  if (!atomic_write_file(path_, os.str()))
    NVM_LOG(Warn) << "write failed for metrics manifest " << path_;
  else
    NVM_LOG(Info) << "metrics manifest written to " << path_;
}

}  // namespace nvm::core

#include "core/report.h"

#include <cstdio>
#include <iostream>

#include "common/check.h"

namespace nvm::core {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  NVM_CHECK(!header_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  NVM_CHECK_EQ(cells.size(), header_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(const std::string& title) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::cout << "\n== " << title << " ==\n";
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::cout << (c == 0 ? "" : " | ");
      std::cout << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad)
        std::cout << ' ';
    }
    std::cout << "\n";
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + 3;
  std::cout << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
  std::cout.flush();
}

std::string fmt(float value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", static_cast<double>(value));
  return buf;
}

std::string with_delta(float value, float baseline) {
  char buf[64];
  const float d = value - baseline;
  std::snprintf(buf, sizeof buf, "%.2f (%+.2f)", static_cast<double>(value),
                static_cast<double>(d));
  return buf;
}

void print_series(const std::string& name, const std::vector<float>& values) {
  std::cout << name;
  for (float v : values) std::cout << ", " << fmt(v);
  std::cout << "\n";
  std::cout.flush();
}

}  // namespace nvm::core

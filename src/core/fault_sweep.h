// Fault-sweep experiment: clean and adversarial accuracy of a deployed
// network as a function of device fault rate and conductance-drift time.
//
// The sweep wraps a base crossbar model (GENIEx, fast-noise, or the
// circuit solver) in xbar::FaultModel at each grid point, deploys the
// prepared network on the faulty hardware, and measures accuracy on the
// clean test set and on adversarial sets crafted once against the digital
// network (the paper's non-adaptive transfer setting). Health counters
// (solver non-convergence, surrogate fallbacks, scrubbed NaNs) are
// snapshotted around every grid point so each row reports how much of the
// degradation path was exercised — a run is only trustworthy together
// with its counters.
//
// Evaluation reuses the parallel replica machinery: one deployed network
// replica per worker chunk, bit-identical results for any NVM_THREADS.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/health.h"
#include "core/tasks.h"
#include "xbar/fault.h"

namespace nvm::core {

struct FaultSweepOptions {
  /// Total stuck-cell rates to sweep; each splits into stuck-ON /
  /// stuck-OFF by `stuck_on_fraction`.
  std::vector<double> stuck_rates = {0.0, 0.01, 0.05};
  double stuck_on_fraction = 0.5;
  /// Drift times (seconds since programming) to sweep, crossed with the
  /// stuck rates.
  std::vector<double> drift_times = {0.0};
  double dead_row_rate = 0.0;
  double dead_col_rate = 0.0;
  std::uint64_t chip_seed = 1;

  std::int64_t n_eval = 32;
  bool run_pgd = true;
  float pgd_eps_255 = 2.0f;  ///< paper-units epsilon (scaled via the task)
  std::int64_t pgd_iters = 20;
  bool run_square = false;
  std::int64_t square_queries = 300;
  /// Deployed network replicas for parallel evaluation; 0 = pool size.
  std::int64_t replicas = 0;
};

struct FaultSweepRow {
  xbar::FaultOptions fault;
  float clean = 0.0f;
  float pgd = -1.0f;     ///< -1 when the attack was not run
  float square = -1.0f;
  /// Realized fault pattern of this grid point's die.
  std::int64_t stuck_on_cells = 0;
  std::int64_t stuck_off_cells = 0;
  std::int64_t dead_rows = 0;
  std::int64_t dead_cols = 0;
  /// Failure-handling activity during this grid point (deploy + eval).
  HealthSnapshot health;
};

struct FaultSweepResult {
  float digital_clean = 0.0f;
  float digital_pgd = -1.0f;
  float digital_square = -1.0f;
  std::vector<FaultSweepRow> rows;
  HealthSnapshot total;  ///< failure-handling activity across the sweep
};

/// Runs the sweep; `base_model` is shared across grid points (each one
/// wraps it in a fresh FaultModel).
FaultSweepResult run_fault_sweep(
    PreparedTask& prepared,
    const std::shared_ptr<const xbar::MvmModel>& base_model,
    const FaultSweepOptions& opt);

/// Prints the result as an aligned report table with the health-counter
/// summary (shared by the CLI and bench_ext_faults).
void print_fault_sweep(const Task& task, const std::string& model_name,
                       const FaultSweepOptions& opt,
                       const FaultSweepResult& result);

}  // namespace nvm::core

#include "core/fault_sweep.h"

#include <cstdio>
#include <memory>
#include <sstream>
#include <utility>

#include "attack/attack_model.h"
#include "common/check.h"
#include "common/thread_pool.h"
#include "core/evaluator.h"
#include "core/report.h"
#include "puma/hw_network.h"

namespace nvm::core {

namespace {

/// One evaluation replica: a network copy plus (while a grid point is
/// active) its crossbar deployment.
struct Replica {
  explicit Replica(const PreparedTask& prepared)
      : net(prepared.clone_network()) {}
  nn::Network net;
  std::unique_ptr<puma::HwDeployment> deployment;
};

std::string fmt_rate(double r) {
  std::ostringstream os;
  os << r;
  return os.str();
}

std::string fmt_acc(float a) { return a < 0.0f ? std::string("-") : fmt(a); }

}  // namespace

FaultSweepResult run_fault_sweep(
    PreparedTask& prepared,
    const std::shared_ptr<const xbar::MvmModel>& base_model,
    const FaultSweepOptions& opt) {
  NVM_CHECK(base_model != nullptr, "fault sweep needs a base model");
  NVM_CHECK(!opt.stuck_rates.empty() && !opt.drift_times.empty(),
            "fault sweep needs a non-empty rate/drift grid");
  NVM_CHECK(opt.stuck_on_fraction >= 0.0 && opt.stuck_on_fraction <= 1.0,
            "stuck_on_fraction must lie in [0, 1]");

  const std::size_t n_rep =
      opt.replicas > 0 ? static_cast<std::size_t>(opt.replicas)
                       : ThreadPool::current().size();
  const auto images = prepared.eval_images(opt.n_eval);
  const auto labels = prepared.eval_labels(opt.n_eval);
  const std::vector<Tensor> calib = prepared.calibration_images();

  std::vector<std::unique_ptr<Replica>> reps;
  reps.reserve(n_rep);
  for (std::size_t i = 0; i < n_rep; ++i)
    reps.push_back(std::make_unique<Replica>(prepared));
  std::vector<ForwardFn> fns;
  fns.reserve(n_rep);
  for (auto& rep : reps) fns.push_back(plain_forward(rep->net));

  FaultSweepResult result;
  result.digital_clean = accuracy(fns, images, labels);

  // Adversarial sets are crafted once against the digital network — the
  // paper's non-adaptive transfer setting — then replayed on every faulty
  // deployment.
  std::vector<Tensor> adv_pgd, adv_square;
  if (opt.run_pgd || opt.run_square) {
    std::vector<attack::NetworkAttackModel> attackers;
    attackers.reserve(n_rep);
    for (auto& rep : reps) attackers.emplace_back(rep->net);
    std::vector<attack::AttackModel*> ptrs;
    ptrs.reserve(n_rep);
    for (auto& a : attackers) ptrs.push_back(&a);
    if (opt.run_pgd) {
      attack::PgdOptions pgd;
      pgd.epsilon = prepared.task.scaled_eps(opt.pgd_eps_255);
      pgd.iters = opt.pgd_iters;
      adv_pgd = craft_pgd(ptrs, images, labels, pgd);
      result.digital_pgd = accuracy(fns, adv_pgd, labels);
    }
    if (opt.run_square) {
      attack::SquareOptions sq;
      sq.epsilon = prepared.task.scaled_eps(opt.pgd_eps_255);
      sq.max_queries = opt.square_queries;
      adv_square = craft_square(ptrs, images, labels, sq);
      result.digital_square = accuracy(fns, adv_square, labels);
    }
  }

  const HealthSnapshot sweep_start = health_snapshot();
  for (double rate : opt.stuck_rates) {
    for (double t : opt.drift_times) {
      xbar::FaultOptions fo;
      fo.stuck_on_rate = rate * opt.stuck_on_fraction;
      fo.stuck_off_rate = rate * (1.0 - opt.stuck_on_fraction);
      fo.dead_row_rate = opt.dead_row_rate;
      fo.dead_col_rate = opt.dead_col_rate;
      fo.drift_time = t;
      fo.chip_seed = opt.chip_seed;
      auto faulty = std::make_shared<xbar::FaultModel>(base_model, fo);

      FaultSweepRow row;
      row.fault = fo;
      row.stuck_on_cells = faulty->map().stuck_on_cells;
      row.stuck_off_cells = faulty->map().stuck_off_cells;
      row.dead_rows = faulty->map().dead_rows;
      row.dead_cols = faulty->map().dead_cols;

      const HealthSnapshot before = health_snapshot();
      for (auto& rep : reps)
        rep->deployment = std::make_unique<puma::HwDeployment>(
            rep->net, faulty, std::span<const Tensor>(calib));
      row.clean = accuracy(fns, images, labels);
      if (opt.run_pgd)
        row.pgd = accuracy(fns, std::span<const Tensor>(adv_pgd), labels);
      if (opt.run_square)
        row.square =
            accuracy(fns, std::span<const Tensor>(adv_square), labels);
      for (auto& rep : reps) rep->deployment.reset();
      row.health = health_snapshot().delta_since(before);
      result.rows.push_back(std::move(row));
    }
  }
  result.total = health_snapshot().delta_since(sweep_start);
  return result;
}

void print_fault_sweep(const Task& task, const std::string& model_name,
                       const FaultSweepOptions& opt,
                       const FaultSweepResult& result) {
  TablePrinter table({"stuck rate", "drift t(s)", "clean %", "PGD %",
                      "Square %", "stuck on/off", "dead r/c", "solver_nc",
                      "fallback", "nonfinite"});
  table.add_row({"digital", "-", fmt(result.digital_clean),
                 fmt_acc(result.digital_pgd), fmt_acc(result.digital_square),
                 "-", "-", "-", "-", "-"});
  for (const auto& row : result.rows) {
    const double rate = row.fault.stuck_on_rate + row.fault.stuck_off_rate;
    table.add_row(
        {fmt_rate(rate), fmt_rate(row.fault.drift_time), fmt(row.clean),
         fmt_acc(row.pgd), fmt_acc(row.square),
         std::to_string(row.stuck_on_cells) + "/" +
             std::to_string(row.stuck_off_cells),
         std::to_string(row.dead_rows) + "/" + std::to_string(row.dead_cols),
         std::to_string(row.health.solver_nonconverged),
         std::to_string(row.health.surrogate_fallbacks),
         std::to_string(row.health.nonfinite_outputs)});
  }
  table.print("Fault sweep: " + task.name + " on " + model_name +
              " (n=" + std::to_string(opt.n_eval) +
              ", chip=" + std::to_string(opt.chip_seed) + ")");
  std::printf("health counters (sweep total): %s\n",
              result.total.summary().c_str());
}

}  // namespace nvm::core

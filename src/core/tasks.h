// Experiment task presets: the scaled-down analogues of the paper's three
// dataset/network pairs, plus cached training so every bench and example
// shares the same trained target models.
//
//   SCIFAR10   ~ CIFAR-10  + ResNet-20  (10 classes, 12x12)
//   SCIFAR100  ~ CIFAR-100 + ResNet-32  (20 classes, 12x12)
//   SIMAGENET  ~ ImageNet  + ResNet-18  (16 classes, 24x24)
//
// Counts are reduced for a single-core machine; REPRO_FULL=1 raises the
// dataset and evaluation sizes (see common/env.h).
#pragma once

#include <functional>
#include <string>

#include "data/synth_vision.h"
#include "nn/resnet.h"
#include "nn/trainer.h"

namespace nvm::core {

struct Task {
  std::string name;             ///< "SCIFAR10"
  std::string paper_analogue;   ///< "CIFAR-10 (ResNet-20)"
  data::DatasetSpec data_spec;
  std::function<nn::Network(Rng&)> make_network;
  nn::TrainConfig train_config;
  /// Images used for non-adaptive attack evaluation (paper: full test set
  /// for CIFAR, 1000 for ImageNet; reduced here).
  std::int64_t attack_eval_count = 96;
  /// Images used for the expensive hardware-in-loop attacks.
  std::int64_t adaptive_eval_count = 64;
  /// Attack-strength conversion: our images have far fewer pixels than the
  /// paper's, so an l_inf budget carries less total perturbation energy.
  /// epsilon_ours = eps_scale * epsilon_paper keeps the attacks in the
  /// paper's operating regime (see EXPERIMENTS.md).
  float eps_scale = 3.0f;

  /// Paper epsilon (in 1/255 units) -> our epsilon (fraction of [0,1]).
  float scaled_eps(float paper_eps_255) const {
    return eps_scale * paper_eps_255 / 255.0f;
  }
};

Task task_scifar10();
Task task_scifar100();
Task task_simagenet();
/// All three, in paper order.
std::vector<Task> all_tasks();

/// A task with its dataset generated and target network trained (from the
/// on-disk cache when available).
struct PreparedTask {
  Task task;
  data::Dataset dataset;
  nn::Network network;
  float clean_test_accuracy = 0.0f;

  /// Functionally-identical copy of the trained network (fresh layer
  /// objects, same weights), via a serialize roundtrip. Replica fan-outs
  /// (fault sweep, fleet evaluation) deploy crossbars on these copies so
  /// the prepared network itself is never mutated.
  nn::Network clone_network() const;

  /// First few training images — used to calibrate DAC ranges at
  /// crossbar deployment.
  std::vector<Tensor> calibration_images(std::int64_t count = 8) const;
  /// Test subset used for attack evaluation (first `count` test images).
  std::span<const Tensor> eval_images(std::int64_t count) const;
  std::span<const std::int64_t> eval_labels(std::int64_t count) const;
};

/// Generates the dataset and trains (or cache-loads) the target network.
PreparedTask prepare(const Task& task);

}  // namespace nvm::core

// Tensor linear algebra and image-layout kernels.
//
// Convolutions throughout the library are expressed as im2col + matmul so
// that the same GEMM maps both to the reference float path (nn::) and to
// the tiled crossbar path (puma::), which consumes the im2col columns as
// crossbar input vectors.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace nvm {

/// C = A(MxK) * B(KxN). Shapes are validated.
Tensor matmul(const Tensor& a, const Tensor& b);

/// C = A^T * B for A(KxM), B(KxN) — reads A transposed in place, no
/// materialized transpose2d copy (conv backward-to-input).
Tensor matmul_at(const Tensor& a, const Tensor& b);

/// C = A * B^T for A(MxK), B(NxK) — each output element is a dot of two
/// contiguous rows (conv weight gradient against im2col columns).
Tensor matmul_bt(const Tensor& a, const Tensor& b);

/// y = A(MxK) * x(K). Returns a 1-d tensor of length M.
Tensor matvec(const Tensor& a, const Tensor& x);

/// Transpose of a 2-d tensor.
Tensor transpose2d(const Tensor& a);

/// Geometry of a 2-d convolution; all convs are square-kernel, symmetric
/// padding, equal stride in both dims.
struct ConvGeom {
  std::int64_t in_c = 0, in_h = 0, in_w = 0;
  std::int64_t out_c = 0;
  std::int64_t kernel = 1;
  std::int64_t stride = 1;
  std::int64_t pad = 0;

  std::int64_t out_h() const { return (in_h + 2 * pad - kernel) / stride + 1; }
  std::int64_t out_w() const { return (in_w + 2 * pad - kernel) / stride + 1; }
  /// Rows of the im2col matrix = in_c * kernel * kernel.
  std::int64_t patch_size() const { return in_c * kernel * kernel; }
};

/// Unfolds input (C,H,W) into a (patch_size, out_h*out_w) matrix. Each
/// column is the receptive field of one output pixel.
Tensor im2col(const Tensor& input, const ConvGeom& g);

/// Adjoint of im2col: folds a (patch_size, out_h*out_w) matrix back into a
/// (C,H,W) tensor, accumulating overlaps. Used for conv backward-to-input.
Tensor col2im(const Tensor& cols, const ConvGeom& g);

/// Zero-pads a (C,H,W) tensor by `top/left` with final size (C,H2,W2).
Tensor pad_image(const Tensor& img, std::int64_t top, std::int64_t left,
                 std::int64_t out_h, std::int64_t out_w);

/// Nearest-neighbour resize of a (C,H,W) tensor to (C,out_h,out_w).
Tensor resize_nearest(const Tensor& img, std::int64_t out_h,
                      std::int64_t out_w);

}  // namespace nvm

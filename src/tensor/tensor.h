// Dense row-major float32 tensor.
//
// This is the numeric workhorse for the whole library: network weights and
// activations, crossbar conductance matrices, images. It is deliberately a
// concrete value type (Core Guidelines C.10): contiguous storage, explicit
// shape, copy = deep copy, no views or strides. Anything that needs
// aliasing works on spans of the underlying data.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/serialize.h"

namespace nvm {

using Shape = std::vector<std::int64_t>;

/// Returns the element count of a shape (product of dims, 1 for scalar).
std::int64_t shape_numel(const Shape& shape);

/// Human-readable "[2, 3, 4]" form for diagnostics.
std::string shape_str(const Shape& shape);

class Tensor {
 public:
  /// Empty 0-d tensor (numel == 1? no: numel == 0, shape {}). Default
  /// constructed tensors hold no elements and shape {0}.
  Tensor() : shape_{0} {}

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor with explicit contents; data.size() must equal numel(shape).
  Tensor(Shape shape, std::vector<float> data);

  // Factories -------------------------------------------------------------
  static Tensor zeros(Shape shape);
  static Tensor full(Shape shape, float value);
  static Tensor uniform(Shape shape, float lo, float hi, Rng& rng);
  static Tensor normal(Shape shape, float mean, float stddev, Rng& rng);
  /// 1-d tensor from an initializer list.
  static Tensor from(std::initializer_list<float> values);

  // Introspection ----------------------------------------------------------
  const Shape& shape() const { return shape_; }
  std::int64_t dim(std::size_t i) const;
  std::size_t rank() const { return shape_.size(); }
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  std::span<float> data() { return data_; }
  std::span<const float> data() const { return data_; }
  float* raw() { return data_.data(); }
  const float* raw() const { return data_.data(); }

  // Element access (bounds-checked) ----------------------------------------
  float& operator[](std::int64_t flat);
  float operator[](std::int64_t flat) const;
  float& at(std::int64_t i, std::int64_t j);
  float at(std::int64_t i, std::int64_t j) const;
  float& at(std::int64_t i, std::int64_t j, std::int64_t k);
  float at(std::int64_t i, std::int64_t j, std::int64_t k) const;
  float& at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w);
  float at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) const;

  // Shape manipulation ------------------------------------------------------
  /// Returns a copy with a new shape; numel must match.
  Tensor reshaped(Shape new_shape) const;
  /// In-place reshape; numel must match.
  void reshape(Shape new_shape);

  // In-place arithmetic -----------------------------------------------------
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(const Tensor& other);  // elementwise
  Tensor& operator+=(float s);
  Tensor& operator*=(float s);

  /// this += alpha * other (axpy).
  void add_scaled(const Tensor& other, float alpha);
  void fill(float value);
  /// Clamps every element into [lo, hi].
  void clamp(float lo, float hi);

  // Reductions ---------------------------------------------------------------
  float sum() const;
  float mean() const;
  float min() const;
  float max() const;
  /// Index of the maximum element (first on ties).
  std::int64_t argmax() const;
  /// L2 norm of all elements.
  float norm2() const;
  /// Maximum |element|.
  float abs_max() const;

  // Serialization -------------------------------------------------------------
  void save(BinaryWriter& w) const;
  static Tensor load(BinaryReader& r);

 private:
  std::int64_t flat2(std::int64_t i, std::int64_t j) const;
  std::int64_t flat3(std::int64_t i, std::int64_t j, std::int64_t k) const;
  std::int64_t flat4(std::int64_t n, std::int64_t c, std::int64_t h,
                     std::int64_t w) const;

  Shape shape_;
  std::vector<float> data_;
};

// Out-of-place arithmetic (value semantics).
Tensor operator+(Tensor a, const Tensor& b);
Tensor operator-(Tensor a, const Tensor& b);
Tensor operator*(Tensor a, const Tensor& b);
Tensor operator*(Tensor a, float s);
Tensor operator*(float s, Tensor a);

/// Max |a - b| over all elements; shapes must match.
float max_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace nvm

#include "tensor/ops.h"

#include "common/check.h"
#include "common/simd.h"

namespace nvm {

Tensor matmul(const Tensor& a, const Tensor& b) {
  NVM_CHECK_EQ(a.rank(), 2u);
  NVM_CHECK_EQ(b.rank(), 2u);
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  NVM_CHECK_EQ(k, b.dim(0));
  Tensor c({m, n});
  simd::gemm_accum(c.raw(), a.raw(), b.raw(), m, n, k, k, n, n);
  return c;
}

Tensor matmul_at(const Tensor& a, const Tensor& b) {
  NVM_CHECK_EQ(a.rank(), 2u);
  NVM_CHECK_EQ(b.rank(), 2u);
  const std::int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  NVM_CHECK_EQ(k, b.dim(0));
  Tensor c({m, n});
  simd::gemm_at_accum(c.raw(), a.raw(), b.raw(), m, n, k, m, n, n);
  return c;
}

Tensor matmul_bt(const Tensor& a, const Tensor& b) {
  NVM_CHECK_EQ(a.rank(), 2u);
  NVM_CHECK_EQ(b.rank(), 2u);
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  NVM_CHECK_EQ(k, b.dim(1));
  Tensor c({m, n});
  simd::gemm_bt_accum(c.raw(), a.raw(), b.raw(), m, n, k, k, k, n);
  return c;
}

Tensor matvec(const Tensor& a, const Tensor& x) {
  NVM_CHECK_EQ(a.rank(), 2u);
  NVM_CHECK_EQ(x.rank(), 1u);
  const std::int64_t m = a.dim(0), k = a.dim(1);
  NVM_CHECK_EQ(k, x.dim(0));
  Tensor y({m});
  simd::gemm_f64acc(y.raw(), a.raw(), x.raw(), m, 1, k, k, 1, 1);
  return y;
}

Tensor transpose2d(const Tensor& a) {
  NVM_CHECK_EQ(a.rank(), 2u);
  const std::int64_t m = a.dim(0), n = a.dim(1);
  Tensor t({n, m});
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) t.at(j, i) = a.at(i, j);
  return t;
}

Tensor im2col(const Tensor& input, const ConvGeom& g) {
  NVM_CHECK_EQ(input.rank(), 3u);
  NVM_CHECK_EQ(input.dim(0), g.in_c);
  NVM_CHECK_EQ(input.dim(1), g.in_h);
  NVM_CHECK_EQ(input.dim(2), g.in_w);
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  NVM_CHECK(oh > 0 && ow > 0, "conv output empty");
  Tensor cols({g.patch_size(), oh * ow});
  const float* in = input.raw();
  float* out = cols.raw();
  const std::int64_t n_cols = oh * ow;
  for (std::int64_t c = 0; c < g.in_c; ++c) {
    for (std::int64_t ky = 0; ky < g.kernel; ++ky) {
      for (std::int64_t kx = 0; kx < g.kernel; ++kx) {
        const std::int64_t row = (c * g.kernel + ky) * g.kernel + kx;
        float* dst = out + row * n_cols;
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          const std::int64_t iy = oy * g.stride + ky - g.pad;
          if (iy < 0 || iy >= g.in_h) {
            for (std::int64_t ox = 0; ox < ow; ++ox) dst[oy * ow + ox] = 0.0f;
            continue;
          }
          const float* src = in + (c * g.in_h + iy) * g.in_w;
          for (std::int64_t ox = 0; ox < ow; ++ox) {
            const std::int64_t ix = ox * g.stride + kx - g.pad;
            dst[oy * ow + ox] =
                (ix >= 0 && ix < g.in_w) ? src[ix] : 0.0f;
          }
        }
      }
    }
  }
  return cols;
}

Tensor col2im(const Tensor& cols, const ConvGeom& g) {
  NVM_CHECK_EQ(cols.rank(), 2u);
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  NVM_CHECK_EQ(cols.dim(0), g.patch_size());
  NVM_CHECK_EQ(cols.dim(1), oh * ow);
  Tensor img({g.in_c, g.in_h, g.in_w});
  const float* in = cols.raw();
  float* out = img.raw();
  const std::int64_t n_cols = oh * ow;
  for (std::int64_t c = 0; c < g.in_c; ++c) {
    for (std::int64_t ky = 0; ky < g.kernel; ++ky) {
      for (std::int64_t kx = 0; kx < g.kernel; ++kx) {
        const std::int64_t row = (c * g.kernel + ky) * g.kernel + kx;
        const float* src = in + row * n_cols;
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          const std::int64_t iy = oy * g.stride + ky - g.pad;
          if (iy < 0 || iy >= g.in_h) continue;
          float* dst = out + (c * g.in_h + iy) * g.in_w;
          for (std::int64_t ox = 0; ox < ow; ++ox) {
            const std::int64_t ix = ox * g.stride + kx - g.pad;
            if (ix >= 0 && ix < g.in_w) dst[ix] += src[oy * ow + ox];
          }
        }
      }
    }
  }
  return img;
}

Tensor pad_image(const Tensor& img, std::int64_t top, std::int64_t left,
                 std::int64_t out_h, std::int64_t out_w) {
  NVM_CHECK_EQ(img.rank(), 3u);
  const std::int64_t c = img.dim(0), h = img.dim(1), w = img.dim(2);
  NVM_CHECK(top >= 0 && left >= 0 && top + h <= out_h && left + w <= out_w,
            "pad out of range");
  Tensor out({c, out_h, out_w});
  for (std::int64_t ch = 0; ch < c; ++ch)
    for (std::int64_t y = 0; y < h; ++y)
      for (std::int64_t x = 0; x < w; ++x)
        out.at(ch, top + y, left + x) = img.at(ch, y, x);
  return out;
}

Tensor resize_nearest(const Tensor& img, std::int64_t out_h,
                      std::int64_t out_w) {
  NVM_CHECK_EQ(img.rank(), 3u);
  NVM_CHECK(out_h > 0 && out_w > 0);
  const std::int64_t c = img.dim(0), h = img.dim(1), w = img.dim(2);
  Tensor out({c, out_h, out_w});
  for (std::int64_t ch = 0; ch < c; ++ch) {
    for (std::int64_t y = 0; y < out_h; ++y) {
      std::int64_t sy = y * h / out_h;
      for (std::int64_t x = 0; x < out_w; ++x) {
        std::int64_t sx = x * w / out_w;
        out.at(ch, y, x) = img.at(ch, sy, sx);
      }
    }
  }
  return out;
}

}  // namespace nvm

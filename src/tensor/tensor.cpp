#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/check.h"

namespace nvm {

std::int64_t shape_numel(const Shape& shape) {
  std::int64_t n = 1;
  for (auto d : shape) {
    NVM_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

std::string shape_str(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_numel(shape_)), 0.0f) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  NVM_CHECK_EQ(shape_numel(shape_), static_cast<std::int64_t>(data_.size()));
}

Tensor Tensor::zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::uniform(Shape shape, float lo, float hi, Rng& rng) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

Tensor Tensor::normal(Shape shape, float mean, float stddev, Rng& rng) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.normal(mean, stddev));
  return t;
}

Tensor Tensor::from(std::initializer_list<float> values) {
  return Tensor({static_cast<std::int64_t>(values.size())},
                std::vector<float>(values));
}

std::int64_t Tensor::dim(std::size_t i) const {
  NVM_CHECK_LT(i, shape_.size());
  return shape_[i];
}

float& Tensor::operator[](std::int64_t flat) {
  NVM_CHECK(flat >= 0 && flat < numel(), "flat=" << flat);
  return data_[static_cast<std::size_t>(flat)];
}
float Tensor::operator[](std::int64_t flat) const {
  NVM_CHECK(flat >= 0 && flat < numel(), "flat=" << flat);
  return data_[static_cast<std::size_t>(flat)];
}

std::int64_t Tensor::flat2(std::int64_t i, std::int64_t j) const {
  NVM_CHECK_EQ(rank(), 2u);
  NVM_CHECK(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1],
            "(" << i << "," << j << ") in " << shape_str(shape_));
  return i * shape_[1] + j;
}

std::int64_t Tensor::flat3(std::int64_t i, std::int64_t j,
                           std::int64_t k) const {
  NVM_CHECK_EQ(rank(), 3u);
  NVM_CHECK(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1] && k >= 0 &&
                k < shape_[2],
            "(" << i << "," << j << "," << k << ") in " << shape_str(shape_));
  return (i * shape_[1] + j) * shape_[2] + k;
}

std::int64_t Tensor::flat4(std::int64_t n, std::int64_t c, std::int64_t h,
                           std::int64_t w) const {
  NVM_CHECK_EQ(rank(), 4u);
  NVM_CHECK(n >= 0 && n < shape_[0] && c >= 0 && c < shape_[1] && h >= 0 &&
                h < shape_[2] && w >= 0 && w < shape_[3],
            "(" << n << "," << c << "," << h << "," << w << ") in "
                << shape_str(shape_));
  return ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w;
}

float& Tensor::at(std::int64_t i, std::int64_t j) {
  return data_[static_cast<std::size_t>(flat2(i, j))];
}
float Tensor::at(std::int64_t i, std::int64_t j) const {
  return data_[static_cast<std::size_t>(flat2(i, j))];
}
float& Tensor::at(std::int64_t i, std::int64_t j, std::int64_t k) {
  return data_[static_cast<std::size_t>(flat3(i, j, k))];
}
float Tensor::at(std::int64_t i, std::int64_t j, std::int64_t k) const {
  return data_[static_cast<std::size_t>(flat3(i, j, k))];
}
float& Tensor::at(std::int64_t n, std::int64_t c, std::int64_t h,
                  std::int64_t w) {
  return data_[static_cast<std::size_t>(flat4(n, c, h, w))];
}
float Tensor::at(std::int64_t n, std::int64_t c, std::int64_t h,
                 std::int64_t w) const {
  return data_[static_cast<std::size_t>(flat4(n, c, h, w))];
}

Tensor Tensor::reshaped(Shape new_shape) const {
  Tensor t = *this;
  t.reshape(std::move(new_shape));
  return t;
}

void Tensor::reshape(Shape new_shape) {
  NVM_CHECK_EQ(shape_numel(new_shape), numel());
  shape_ = std::move(new_shape);
}

Tensor& Tensor::operator+=(const Tensor& other) {
  NVM_CHECK(same_shape(other), shape_str(shape_) << " vs "
                                                 << shape_str(other.shape_));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  NVM_CHECK(same_shape(other), shape_str(shape_) << " vs "
                                                 << shape_str(other.shape_));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(const Tensor& other) {
  NVM_CHECK(same_shape(other), shape_str(shape_) << " vs "
                                                 << shape_str(other.shape_));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

Tensor& Tensor::operator+=(float s) {
  for (auto& v : data_) v += s;
  return *this;
}

Tensor& Tensor::operator*=(float s) {
  for (auto& v : data_) v *= s;
  return *this;
}

void Tensor::add_scaled(const Tensor& other, float alpha) {
  NVM_CHECK(same_shape(other), shape_str(shape_) << " vs "
                                                 << shape_str(other.shape_));
  for (std::size_t i = 0; i < data_.size(); ++i)
    data_[i] += alpha * other.data_[i];
}

void Tensor::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

void Tensor::clamp(float lo, float hi) {
  NVM_CHECK_LE(lo, hi);
  for (auto& v : data_) v = std::clamp(v, lo, hi);
}

float Tensor::sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

float Tensor::mean() const {
  NVM_CHECK_GT(numel(), 0);
  return sum() / static_cast<float>(numel());
}

float Tensor::min() const {
  NVM_CHECK_GT(numel(), 0);
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  NVM_CHECK_GT(numel(), 0);
  return *std::max_element(data_.begin(), data_.end());
}

std::int64_t Tensor::argmax() const {
  NVM_CHECK_GT(numel(), 0);
  return static_cast<std::int64_t>(
      std::max_element(data_.begin(), data_.end()) - data_.begin());
}

float Tensor::norm2() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

float Tensor::abs_max() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::abs(v));
  return m;
}

void Tensor::save(BinaryWriter& w) const {
  w.write_i64_vec(shape_);
  w.write_f32_vec(data_);
}

Tensor Tensor::load(BinaryReader& r) {
  Shape shape = r.read_i64_vec();
  std::vector<float> data = r.read_f32_vec();
  return Tensor(std::move(shape), std::move(data));
}

Tensor operator+(Tensor a, const Tensor& b) { return a += b; }
Tensor operator-(Tensor a, const Tensor& b) { return a -= b; }
Tensor operator*(Tensor a, const Tensor& b) { return a *= b; }
Tensor operator*(Tensor a, float s) { return a *= s; }
Tensor operator*(float s, Tensor a) { return a *= s; }

float max_abs_diff(const Tensor& a, const Tensor& b) {
  NVM_CHECK(a.same_shape(b));
  float m = 0.0f;
  auto da = a.data();
  auto db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i)
    m = std::max(m, std::abs(da[i] - db[i]));
  return m;
}

}  // namespace nvm

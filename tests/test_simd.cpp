// SIMD micro-kernel layer: scalar/AVX2 parity (bit-exact for [exact]
// kernels, bounded for [~ulp] kernels), batched-MVM bit-identity against
// looped single-vector MVMs for every crossbar model, cross-ISA and
// cross-thread-count determinism of the full tiled GEMM, and the solver
// stream's warm-start behaviour.
#include <gtest/gtest.h>

#include "common/check.h"

#include <cmath>
#include <memory>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/simd.h"
#include "common/thread_pool.h"
#include "puma/tiled_mvm.h"
#include "tensor/ops.h"
#include "xbar/circuit_solver.h"
#include "xbar/fast_noise.h"
#include "xbar/fault.h"
#include "xbar/geniex.h"
#include "xbar/variation.h"

namespace nvm {
namespace {

bool avx2_usable() { return simd::isa_usable(simd::Isa::Avx2); }

/// ISAs to exercise on this machine: scalar always, plus every vector
/// tier that is both compiled in and usable (AVX2/AVX-512 on x86 with OS
/// state enabled, NEON on AArch64). Parity tests below iterate this list,
/// so new tiers are covered automatically wherever the hardware allows.
std::vector<simd::Isa> test_isas() {
  std::vector<simd::Isa> isas{simd::Isa::Scalar};
  for (simd::Isa isa :
       {simd::Isa::Avx2, simd::Isa::Avx512, simd::Isa::Neon})
    if (simd::isa_usable(isa)) isas.push_back(isa);
  return isas;
}

/// The vector tiers from test_isas() (everything but scalar).
std::vector<simd::Isa> vector_isas() {
  std::vector<simd::Isa> isas = test_isas();
  isas.erase(isas.begin());
  return isas;
}

std::vector<float> random_vec(std::int64_t n, Rng& rng, double lo = -1.0,
                              double hi = 1.0) {
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<float>(rng.uniform(lo, hi));
  return v;
}

// ---------------------------------------------------------------------------
// ISA plumbing
// ---------------------------------------------------------------------------

TEST(SimdIsa, ScopedOverrideForcesAndRestores) {
  const simd::Isa before = simd::active_isa();
  {
    simd::ScopedIsaForTests scalar(simd::Isa::Scalar);
    EXPECT_EQ(simd::active_isa(), simd::Isa::Scalar);
    if (avx2_usable()) {
      simd::ScopedIsaForTests avx(simd::Isa::Avx2);
      EXPECT_EQ(simd::active_isa(), simd::Isa::Avx2);
    }
    EXPECT_EQ(simd::active_isa(), simd::Isa::Scalar);
  }
  EXPECT_EQ(simd::active_isa(), before);
}

TEST(SimdIsa, ForcingAvx2WithoutSupportThrows) {
  if (avx2_usable()) GTEST_SKIP() << "AVX2 available; force succeeds here";
  EXPECT_THROW(simd::ScopedIsaForTests avx(simd::Isa::Avx2), CheckError);
}

TEST(SimdIsa, NamesAreStable) {
  EXPECT_STREQ(simd::isa_name(simd::Isa::Scalar), "scalar");
  EXPECT_STREQ(simd::isa_name(simd::Isa::Avx2), "avx2");
  EXPECT_STREQ(simd::isa_name(simd::Isa::Avx512), "avx512");
  EXPECT_STREQ(simd::isa_name(simd::Isa::Neon), "neon");
}

TEST(SimdIsa, UsableImpliesCompiledAndSupported) {
  EXPECT_TRUE(simd::isa_usable(simd::Isa::Scalar));
  EXPECT_EQ(simd::isa_usable(simd::Isa::Avx2),
            simd::avx2_compiled() && simd::avx2_supported());
  EXPECT_EQ(simd::isa_usable(simd::Isa::Avx512),
            simd::avx512_compiled() && simd::avx512_supported());
  EXPECT_EQ(simd::isa_usable(simd::Isa::Neon),
            simd::neon_compiled() && simd::neon_supported());
  // AVX-512 dispatch requires the AVX2-era OS state too, so a machine that
  // can run the avx512 tier can always also run avx2.
  if (simd::avx512_supported()) {
    EXPECT_TRUE(simd::avx2_supported());
  }
}

TEST(SimdIsa, ForcingUnusableTierThrows) {
  for (simd::Isa isa :
       {simd::Isa::Avx2, simd::Isa::Avx512, simd::Isa::Neon}) {
    if (simd::isa_usable(isa)) continue;
    EXPECT_THROW(simd::ScopedIsaForTests scope(isa), CheckError)
        << simd::isa_name(isa);
  }
}

// ---------------------------------------------------------------------------
// Kernel correctness against naive references
// ---------------------------------------------------------------------------

TEST(SimdKernels, DotMatchesNaiveWithinBound) {
  Rng rng(11);
  for (simd::Isa isa : test_isas()) {
    simd::ScopedIsaForTests scope(isa);
    for (std::int64_t n : {0, 1, 7, 8, 9, 64, 131}) {
      std::vector<float> a = random_vec(n, rng), b = random_vec(n, rng);
      double ref = 0.0, abs_sum = 0.0;
      for (std::int64_t i = 0; i < n; ++i) {
        ref += static_cast<double>(a[i]) * b[i];
        abs_sum += std::abs(static_cast<double>(a[i]) * b[i]);
      }
      const double bound =
          4.0 * static_cast<double>(n + 1) *
              std::numeric_limits<float>::epsilon() * abs_sum +
          1e-12;
      EXPECT_NEAR(simd::dot(a.data(), b.data(), n), ref, bound)
          << "isa=" << simd::isa_name(isa) << " n=" << n;
    }
  }
}

TEST(SimdKernels, DotIsDeterministicPerIsa) {
  Rng rng(12);
  std::vector<float> a = random_vec(1001, rng), b = random_vec(1001, rng);
  for (simd::Isa isa : test_isas()) {
    simd::ScopedIsaForTests scope(isa);
    const float first = simd::dot(a.data(), b.data(), 1001);
    for (int rep = 0; rep < 5; ++rep)
      EXPECT_EQ(simd::dot(a.data(), b.data(), 1001), first);
  }
}

TEST(SimdKernels, GemmMatchesNaiveReference) {
  Rng rng(13);
  const std::int64_t m = 5, n = 11, k = 17;
  std::vector<float> a = random_vec(m * k, rng), b = random_vec(k * n, rng);
  for (simd::Isa isa : test_isas()) {
    simd::ScopedIsaForTests scope(isa);
    std::vector<float> c(static_cast<std::size_t>(m * n), 0.5f);
    simd::gemm_accum(c.data(), a.data(), b.data(), m, n, k, k, n, n);
    for (std::int64_t i = 0; i < m; ++i)
      for (std::int64_t j = 0; j < n; ++j) {
        double ref = 0.5;
        for (std::int64_t kk = 0; kk < k; ++kk)
          ref += static_cast<double>(a[i * k + kk]) * b[kk * n + j];
        EXPECT_NEAR(c[i * n + j], ref, 1e-5)
            << "isa=" << simd::isa_name(isa) << " (" << i << "," << j << ")";
      }
  }
}

TEST(SimdKernels, TransposedGemmVariantsMatchExplicitTranspose) {
  Rng rng(14);
  Tensor a = Tensor::normal({9, 6}, 0.0f, 1.0f, rng);   // K x M
  Tensor b = Tensor::normal({9, 7}, 0.0f, 1.0f, rng);   // K x N
  Tensor at_ref = matmul(transpose2d(a), b);
  Tensor at = matmul_at(a, b);
  ASSERT_EQ(at.dim(0), 6);
  ASSERT_EQ(at.dim(1), 7);
  for (std::int64_t i = 0; i < at.numel(); ++i)
    EXPECT_NEAR(at[i], at_ref[i], 1e-5) << i;

  Tensor c = Tensor::normal({5, 9}, 0.0f, 1.0f, rng);   // M x K
  Tensor d = Tensor::normal({8, 9}, 0.0f, 1.0f, rng);   // N x K
  Tensor bt_ref = matmul(c, transpose2d(d));
  Tensor bt = matmul_bt(c, d);
  ASSERT_EQ(bt.dim(0), 5);
  ASSERT_EQ(bt.dim(1), 8);
  for (std::int64_t i = 0; i < bt.numel(); ++i)
    EXPECT_NEAR(bt[i], bt_ref[i], 1e-5) << i;
}

TEST(SimdKernels, QuantizeAffineMatchesScalarFormula) {
  Rng rng(15);
  const std::int64_t n = 37;
  std::vector<float> x = random_vec(n, rng, -0.5, 1.5);
  const float scale = 0.9f, qmax = 63.0f;
  for (simd::Isa isa : test_isas()) {
    simd::ScopedIsaForTests scope(isa);
    std::vector<float> out(static_cast<std::size_t>(n));
    simd::quantize_affine(out.data(), x.data(), n, scale, qmax);
    for (std::int64_t i = 0; i < n; ++i) {
      const float clipped = std::clamp(x[i], 0.0f, scale);
      EXPECT_EQ(out[i], std::round(clipped / scale * qmax))
          << "isa=" << simd::isa_name(isa) << " x=" << x[i];
    }
  }
}

TEST(SimdKernels, QuantizeAffineRoundsTiesAwayFromZero) {
  // scale = qmax = 8 makes t = x/8*8 == x exactly (power-of-two scaling),
  // so half-integer inputs hit the rounding tie exactly. std::round ties
  // away from zero; the AVX2 floor+frac>=0.5 emulation must agree.
  std::vector<float> x{0.5f, 1.5f, 2.5f, 3.5f, 4.5f, 5.5f, 6.5f, 7.5f, 8.0f};
  for (simd::Isa isa : test_isas()) {
    simd::ScopedIsaForTests scope(isa);
    std::vector<float> out(x.size());
    simd::quantize_affine(out.data(), x.data(),
                          static_cast<std::int64_t>(x.size()), 8.0f, 8.0f);
    for (std::size_t i = 0; i < x.size(); ++i)
      EXPECT_EQ(out[i], std::round(x[i])) << "x=" << x[i];
  }
}

TEST(SimdKernels, AdcShiftAddMatchesUnfusedFormula) {
  Rng rng(16);
  const std::int64_t n = 29;
  std::vector<float> cur = random_vec(n, rng, -0.2, 1.4);
  std::vector<float> base = random_vec(n, rng, 0.0, 0.3);
  const float fs = 1.1f, steps = 255.0f, shift = -3.5f;
  for (simd::Isa isa : test_isas()) {
    simd::ScopedIsaForTests scope(isa);
    std::vector<float> acc(static_cast<std::size_t>(n), 0.25f);
    simd::adc_shift_add(acc.data(), cur.data(), base.data(), n, fs, steps,
                        shift);
    for (std::int64_t i = 0; i < n; ++i) {
      const float clamped = std::clamp(cur[i], 0.0f, fs);
      const float q = std::round(clamped / fs * steps) * fs / steps;
      const float want = 0.25f + shift * (q - base[i]);
      EXPECT_EQ(acc[i], want) << "isa=" << simd::isa_name(isa) << " i=" << i;
    }
  }
}

TEST(SimdKernels, TanhBlockMatchesTanhFastExactly) {
  std::vector<float> x;
  for (float t = -6.0f; t <= 6.0f; t += 0.037f) x.push_back(t);
  for (simd::Isa isa : test_isas()) {
    simd::ScopedIsaForTests scope(isa);
    std::vector<float> y = x;
    simd::tanh_block(y.data(), static_cast<std::int64_t>(y.size()));
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_EQ(y[i], simd::tanh_fast(x[i]))
          << "isa=" << simd::isa_name(isa) << " x=" << x[i];
      EXPECT_NEAR(y[i], std::tanh(x[i]), 3e-3f);
    }
  }
}

// ---------------------------------------------------------------------------
// Scalar vs vector-tier parity (avx2 / avx512 / neon, whichever run here)
// ---------------------------------------------------------------------------

/// [exact]-contract kernels must produce bit-identical outputs on every
/// usable ISA tier (DESIGN.md §11, §13); this is what makes the full
/// analog stack NVM_SIMD-invariant.
TEST(SimdParity, ExactKernelsBitIdenticalAcrossIsas) {
  if (vector_isas().empty()) GTEST_SKIP() << "no vector tier available";
  Rng rng(21);
  const std::int64_t n = 101;  // odd: exercises vector body + scalar tail
  std::vector<float> x = random_vec(n, rng, -3.0, 3.0);
  std::vector<float> y0 = random_vec(n, rng);

  auto run = [&](simd::Isa isa) {
    simd::ScopedIsaForTests scope(isa);
    struct Out {
      std::vector<float> madd, scl, tanh, quant, adc;
    } o;
    o.madd = y0;
    simd::madd(o.madd.data(), x.data(), 1.7f, n);
    o.scl.assign(static_cast<std::size_t>(n), 0.0f);
    simd::scale(o.scl.data(), x.data(), -0.313f, n);
    o.tanh = x;
    simd::tanh_block(o.tanh.data(), n);
    o.quant.assign(static_cast<std::size_t>(n), 0.0f);
    simd::quantize_affine(o.quant.data(), x.data(), n, 2.3f, 127.0f);
    o.adc = y0;
    simd::adc_shift_add(o.adc.data(), x.data(), y0.data(), n, 1.7f, 1023.0f,
                        2.25f);
    return o;
  };
  auto s = run(simd::Isa::Scalar);
  for (simd::Isa isa : vector_isas()) {
    auto v = run(isa);
    for (std::int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(s.madd[i], v.madd[i])
          << simd::isa_name(isa) << " madd " << i;
      EXPECT_EQ(s.scl[i], v.scl[i]) << simd::isa_name(isa) << " scale " << i;
      EXPECT_EQ(s.tanh[i], v.tanh[i]) << simd::isa_name(isa) << " tanh " << i;
      EXPECT_EQ(s.quant[i], v.quant[i])
          << simd::isa_name(isa) << " quantize " << i;
      EXPECT_EQ(s.adc[i], v.adc[i]) << simd::isa_name(isa) << " adc " << i;
    }
  }
}

TEST(SimdParity, GemmF64AccBitIdenticalAcrossIsas) {
  if (vector_isas().empty()) GTEST_SKIP() << "no vector tier available";
  Rng rng(22);
  const std::int64_t m = 13, n = 19, k = 31;
  std::vector<float> a = random_vec(m * k, rng), v = random_vec(k * n, rng);
  auto run = [&](simd::Isa isa) {
    simd::ScopedIsaForTests scope(isa);
    std::vector<float> out(static_cast<std::size_t>(m * n));
    simd::gemm_f64acc(out.data(), a.data(), v.data(), m, n, k, k, n, n);
    return out;
  };
  auto s = run(simd::Isa::Scalar);
  for (simd::Isa isa : vector_isas()) {
    auto x = run(isa);
    for (std::int64_t i = 0; i < m * n; ++i)
      EXPECT_EQ(s[i], x[i]) << simd::isa_name(isa) << " " << i;
  }
}

/// [~ulp]-contract kernels (FMA in the vector tiers, plain mul+add
/// scalar) may differ, but only within the documented accumulation bound:
/// a few eps of the sum of absolute products.
TEST(SimdParity, UlpKernelsWithinDocumentedBound) {
  if (vector_isas().empty()) GTEST_SKIP() << "no vector tier available";
  Rng rng(23);
  const std::int64_t n = 517;
  std::vector<float> a = random_vec(n, rng), b = random_vec(n, rng);
  double abs_sum = 0.0;
  for (std::int64_t i = 0; i < n; ++i)
    abs_sum += std::abs(static_cast<double>(a[i]) * b[i]);
  const double bound = 8.0 * static_cast<double>(n) *
                       std::numeric_limits<float>::epsilon() * abs_sum;

  float dot_s;
  std::vector<float> axpy_s = b;
  {
    simd::ScopedIsaForTests scope(simd::Isa::Scalar);
    dot_s = simd::dot(a.data(), b.data(), n);
    simd::axpy(axpy_s.data(), a.data(), 0.77f, n);
  }
  for (simd::Isa isa : vector_isas()) {
    float dot_v;
    std::vector<float> axpy_v = b;
    {
      simd::ScopedIsaForTests scope(isa);
      dot_v = simd::dot(a.data(), b.data(), n);
      simd::axpy(axpy_v.data(), a.data(), 0.77f, n);
    }
    EXPECT_NEAR(dot_s, dot_v, bound) << simd::isa_name(isa);
    for (std::int64_t i = 0; i < n; ++i)
      EXPECT_NEAR(axpy_s[i], axpy_v[i],
                  2.0 * std::numeric_limits<float>::epsilon() *
                      (std::abs(axpy_s[i]) + std::abs(0.77f * a[i])))
          << simd::isa_name(isa) << " " << i;
  }
}

// ---------------------------------------------------------------------------
// Integer bit-slice kernels (DESIGN.md §13)
// ---------------------------------------------------------------------------

/// quantize_to_i8/i16 must produce exactly the codes quantize_affine
/// produces (as floats), on every tier.
TEST(SimdIntKernels, QuantizeIntTwinsMatchQuantizeAffineBitExact) {
  Rng rng(61);
  const std::int64_t n = 103;  // odd: vector body + tail
  std::vector<float> x = random_vec(n, rng, -0.4, 1.9);
  x[0] = 0.0f;
  x[1] = 1.5f;  // ref scale 1.5/qmax hits exact ties for power-of-2 qmax
  for (simd::Isa isa : test_isas()) {
    simd::ScopedIsaForTests scope(isa);
    for (const float qmax : {127.0f, 63.0f, 32767.0f, 8.0f}) {
      const float scale = 1.5f;
      std::vector<float> ref(static_cast<std::size_t>(n));
      simd::quantize_affine(ref.data(), x.data(), n, scale, qmax);
      if (qmax <= 127.0f) {
        std::vector<std::int8_t> q8(static_cast<std::size_t>(n));
        simd::quantize_to_i8(q8.data(), x.data(), n, scale, qmax);
        for (std::int64_t i = 0; i < n; ++i)
          EXPECT_EQ(static_cast<float>(q8[i]), ref[i])
              << simd::isa_name(isa) << " qmax=" << qmax << " i=" << i;
      }
      std::vector<std::int16_t> q16(static_cast<std::size_t>(n));
      simd::quantize_to_i16(q16.data(), x.data(), n, scale, qmax);
      for (std::int64_t i = 0; i < n; ++i)
        EXPECT_EQ(static_cast<float>(q16[i]), ref[i])
            << simd::isa_name(isa) << " qmax=" << qmax << " i=" << i;
    }
  }
}

/// The i32 GEMM must agree bit-for-bit with float accumulation of the
/// same integer-valued operands: products are < 2^14 and dot totals stay
/// below 2^24, where float arithmetic is exact, so BOTH paths compute the
/// mathematically exact integer. This is the kernel-level "int8 == f32"
/// contract the bit-slice pipeline rests on.
TEST(SimdIntKernels, GemmI8I32accMatchesFloatGemmExactly) {
  Rng rng(62);
  const std::int64_t m = 17, n = 23, k = 61;
  std::vector<std::int8_t> a(static_cast<std::size_t>(k * m));
  std::vector<std::int8_t> b(static_cast<std::size_t>(k * n));
  for (auto& v : a) v = static_cast<std::int8_t>(rng.uniform(0.0, 127.99));
  for (auto& v : b) v = static_cast<std::int8_t>(rng.uniform(0.0, 127.99));
  std::vector<float> af(a.begin(), a.end()), bf(b.begin(), b.end());
  std::vector<float> cf(static_cast<std::size_t>(m * n), 0.0f);
  simd::gemm_at_accum(cf.data(), af.data(), bf.data(), m, n, k, m, n, n);

  std::vector<std::int32_t> ref;
  for (simd::Isa isa : test_isas()) {
    simd::ScopedIsaForTests scope(isa);
    std::vector<std::int32_t> c(static_cast<std::size_t>(m * n), 0);
    simd::gemm_at_i8_i32acc(c.data(), a.data(), b.data(), m, n, k, m, n, n);
    for (std::int64_t i = 0; i < m * n; ++i)
      EXPECT_EQ(static_cast<float>(c[i]), cf[i])
          << simd::isa_name(isa) << " " << i;
    if (ref.empty())
      ref = c;
    else
      EXPECT_EQ(c, ref) << simd::isa_name(isa);
  }
}

TEST(SimdIntKernels, AdcShiftAddI32MatchesComposedFloatOps) {
  Rng rng(63);
  const std::int64_t n = 41;
  std::vector<std::int32_t> dot(static_cast<std::size_t>(n));
  for (auto& d : dot)
    d = static_cast<std::int32_t>(rng.uniform(0.0, 16383.99));
  std::vector<float> base = random_vec(n, rng, 0.0, 0.3);
  const float dot_unit = 3.1e-5f, fs = 1.1f, steps = 1023.0f, shift = 2.5f;
  for (simd::Isa isa : test_isas()) {
    simd::ScopedIsaForTests scope(isa);
    std::vector<float> acc(static_cast<std::size_t>(n), 0.125f);
    simd::adc_shift_add_i32(acc.data(), dot.data(), base.data(), n, dot_unit,
                            fs, steps, shift);
    for (std::int64_t i = 0; i < n; ++i) {
      // Composed float reference: unfused mul+add, then the same fused
      // ADC + baseline-subtract + shift-add as adc_shift_add.
      const float cur = base[i] + dot_unit * static_cast<float>(dot[i]);
      float want = 0.125f;
      simd::adc_shift_add(&want, &cur, &base[i], 1, fs, steps, shift);
      EXPECT_EQ(acc[i], want) << simd::isa_name(isa) << " i=" << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Workspace
// ---------------------------------------------------------------------------

TEST(SimdWorkspace, ReacquisitionReusesBufferAndCounts) {
  simd::Workspace ws;
  metrics::Counter& reuses = metrics::counter("simd/workspace/reuses");
  std::span<float> first = ws.floats(0, 256);
  ASSERT_EQ(first.size(), 256u);
  first[0] = 42.0f;
  const std::uint64_t before = reuses.value();
  std::span<float> again = ws.floats(0, 128);  // smaller: must not realloc
  EXPECT_EQ(again.data(), first.data());
  EXPECT_EQ(again.size(), 128u);
  EXPECT_GT(reuses.value(), before);
  // A different slot gets independent storage.
  std::span<float> other = ws.floats(1, 64);
  EXPECT_NE(other.data(), first.data());
  // Doubles and floats of the same slot are independent buffers too.
  std::span<double> d = ws.doubles(0, 32);
  EXPECT_NE(static_cast<const void*>(d.data()),
            static_cast<const void*>(first.data()));
}

// ---------------------------------------------------------------------------
// mvm_multi == looped mvm, bit for bit, for every model
// ---------------------------------------------------------------------------

xbar::CrossbarConfig tiny_config(std::int64_t n) {
  xbar::CrossbarConfig cfg = xbar::xbar_32x32_100k();
  cfg.rows = cfg.cols = n;
  cfg.name = "simd_test";
  return cfg;
}

Tensor random_conductances(const xbar::CrossbarConfig& cfg, Rng& rng) {
  Tensor g({cfg.rows, cfg.cols});
  const double lo = cfg.g_off(), hi = cfg.g_on();
  for (std::int64_t i = 0; i < g.numel(); ++i)
    g[i] = static_cast<float>(rng.uniform(lo, hi));
  return g;
}

Tensor random_voltage_block(const xbar::CrossbarConfig& cfg, std::int64_t n,
                            Rng& rng) {
  Tensor v({cfg.rows, n});
  for (std::int64_t i = 0; i < v.numel(); ++i) {
    // Include exact zeros so skip-zero paths are exercised.
    const double u = rng.uniform(-0.3, 1.0);
    v[i] = static_cast<float>(cfg.v_read * std::max(u, 0.0));
  }
  return v;
}

void expect_multi_matches_looped(const xbar::MvmModel& model,
                                 std::int64_t block, Rng& rng) {
  const xbar::CrossbarConfig& cfg = model.config();
  Tensor g = random_conductances(cfg, rng);
  std::unique_ptr<xbar::ProgrammedXbar> xb = model.program(g);
  Tensor vb = random_voltage_block(cfg, block, rng);
  for (simd::Isa isa : test_isas()) {
    simd::ScopedIsaForTests scope(isa);
    Tensor multi = xb->mvm_multi(vb);
    ASSERT_EQ(multi.dim(0), cfg.cols);
    ASSERT_EQ(multi.dim(1), block);
    for (std::int64_t j = 0; j < block; ++j) {
      Tensor v({cfg.rows});
      for (std::int64_t i = 0; i < cfg.rows; ++i) v[i] = vb.at(i, j);
      Tensor single = xb->mvm(v);
      for (std::int64_t c = 0; c < cfg.cols; ++c)
        EXPECT_EQ(multi.at(c, j), single[c])
            << model.name() << " isa=" << simd::isa_name(isa) << " col=" << c
            << " rhs=" << j;
    }
  }
}

TEST(MvmMulti, IdealBitIdenticalToLoopedMvm) {
  Rng rng(31);
  xbar::IdealXbarModel model(tiny_config(16));
  expect_multi_matches_looped(model, 5, rng);
}

TEST(MvmMulti, FastNoiseBitIdenticalToLoopedMvm) {
  Rng rng(32);
  xbar::FastNoiseModel model(tiny_config(16));
  expect_multi_matches_looped(model, 5, rng);
}

TEST(MvmMulti, CircuitSolverBitIdenticalToLoopedMvm) {
  Rng rng(33);
  xbar::CircuitSolverModel model(tiny_config(8));
  expect_multi_matches_looped(model, 3, rng);
}

TEST(MvmMulti, FaultWrappedBitIdenticalToLoopedMvm) {
  Rng rng(34);
  xbar::FaultOptions fo;
  fo.stuck_on_rate = 0.05;
  fo.stuck_off_rate = 0.05;
  fo.dead_col_rate = 0.05;
  xbar::FaultModel model(
      std::make_shared<xbar::FastNoiseModel>(tiny_config(16)), fo);
  expect_multi_matches_looped(model, 4, rng);
}

TEST(MvmMulti, VariationWrappedBitIdenticalToLoopedMvm) {
  Rng rng(35);
  xbar::VariationModel model(
      std::make_shared<xbar::IdealXbarModel>(tiny_config(16)), {});
  expect_multi_matches_looped(model, 4, rng);
}

TEST(MvmMulti, GeniexBitIdenticalToLoopedMvm) {
  Rng rng(36);
  const xbar::CrossbarConfig cfg = tiny_config(16);
  xbar::GeniexTrainOptions opt;
  opt.solver_samples = 60;  // small fit; bit-identity doesn't need accuracy
  xbar::GeniexFit fit = xbar::GeniexModel::fit(cfg, opt);
  xbar::GeniexModel model(cfg, std::move(fit.mlp));
  expect_multi_matches_looped(model, 5, rng);
}

TEST(MvmMulti, ActiveHintMatchesFullOnZeroPaddedInput) {
  Rng rng(37);
  const xbar::CrossbarConfig cfg = tiny_config(16);
  const std::int64_t rows_used = 11, cols_used = 9, block = 4;
  xbar::IdealXbarModel model(cfg);
  Tensor g = random_conductances(cfg, rng);
  std::unique_ptr<xbar::ProgrammedXbar> xb = model.program(g);
  Tensor vb = random_voltage_block(cfg, block, rng);
  for (std::int64_t i = rows_used; i < cfg.rows; ++i)
    for (std::int64_t j = 0; j < block; ++j) vb.at(i, j) = 0.0f;
  Tensor full = xb->mvm_multi(vb);
  Tensor active = xb->mvm_multi_active(vb, rows_used, cols_used);
  for (std::int64_t c = 0; c < cols_used; ++c)
    for (std::int64_t j = 0; j < block; ++j)
      EXPECT_EQ(active.at(c, j), full.at(c, j)) << c << "," << j;
}

// ---------------------------------------------------------------------------
// Full tiled GEMM: deterministic across runs, thread counts, and ISAs
// ---------------------------------------------------------------------------

Tensor tiled_reference_run(const std::shared_ptr<const xbar::MvmModel>& model,
                           const Tensor& w, const Tensor& x) {
  puma::TiledMatrix tiled(w, model, puma::HwConfig{});
  return tiled.matmul(x, 0.0f);
}

TEST(TiledMatmul, DeterministicAcrossThreadCountsAndIsas) {
  Rng rng(41);
  const auto cfg = tiny_config(16);
  // Non-divisible dimensions: 2x2 row/col tiles with ragged edges.
  Tensor w = Tensor::normal({20, 18}, 0.0f, 0.4f, rng);
  Tensor x({18, 5});
  for (std::int64_t i = 0; i < x.numel(); ++i)
    x[i] = static_cast<float>(rng.uniform(0.0, 1.0));

  for (const bool fast_noise : {false, true}) {
    std::shared_ptr<const xbar::MvmModel> model;
    if (fast_noise)
      model = std::make_shared<xbar::FastNoiseModel>(cfg);
    else
      model = std::make_shared<xbar::IdealXbarModel>(cfg);

    Tensor ref;
    {
      // The whole analog pipeline uses only [exact]-contract kernels, so
      // outputs must be bit-identical across ISAs, pool sizes, and runs.
      simd::ScopedIsaForTests scope(simd::Isa::Scalar);
      ThreadPool serial(1);
      ThreadPool::ScopedUse use(serial);
      ref = tiled_reference_run(model, w, x);
    }
    ASSERT_GT(ref.abs_max(), 0.0f);
    for (simd::Isa isa : test_isas()) {
      simd::ScopedIsaForTests scope(isa);
      for (std::size_t threads : {1u, 2u, 5u}) {
        ThreadPool pool(threads);
        ThreadPool::ScopedUse use(pool);
        Tensor out = tiled_reference_run(model, w, x);
        ASSERT_EQ(out.numel(), ref.numel());
        for (std::int64_t i = 0; i < out.numel(); ++i)
          EXPECT_EQ(out[i], ref[i])
              << (fast_noise ? "fast_noise" : "ideal")
              << " isa=" << simd::isa_name(isa) << " threads=" << threads
              << " i=" << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Integer bit-slice pipeline vs the legacy float pipeline
// ---------------------------------------------------------------------------

/// fast_noise: the chunk-gather int path evaluates the SAME float
/// operations per distinct chunk code as the legacy per-element loop
/// (DESIGN.md §13), so routing through it must not move a single bit.
TEST(IntPath, FastNoiseIntChunksBitIdenticalToLegacyFloat) {
  Rng rng(71);
  const auto cfg = tiny_config(16);
  Tensor w = Tensor::normal({20, 18}, 0.0f, 0.4f, rng);
  Tensor x({18, 5});
  for (std::int64_t i = 0; i < x.numel(); ++i)
    x[i] = static_cast<float>(rng.uniform(0.0, 1.0));
  auto model = std::make_shared<xbar::FastNoiseModel>(cfg);
  puma::TiledMatrix tiled(w, model, puma::HwConfig{});
  metrics::Counter& chunk_mms =
      metrics::counter("puma/tiled/matmuls_int_chunks");

  Tensor legacy, routed;
  {
    puma::ScopedIntPathForTests off(false);
    legacy = tiled.matmul(x, 0.0f);
  }
  {
    puma::ScopedIntPathForTests on(true);
    const std::uint64_t before = chunk_mms.value();
    routed = tiled.matmul(x, 0.0f);
    EXPECT_GT(chunk_mms.value(), before) << "int chunk path did not engage";
  }
  ASSERT_EQ(legacy.numel(), routed.numel());
  for (std::int64_t i = 0; i < legacy.numel(); ++i)
    EXPECT_EQ(routed[i], legacy[i]) << i;
}

/// ideal: the fully-digital int path computes the exact integer dot
/// products the analog model only approximates through pre-rounded float
/// conductances and a double accumulation, so outputs can differ — but
/// only where the ADC rounds a near-tie the other way, i.e. by at most
/// one ADC step per shift-add term.
TEST(IntPath, IdealIntDigitalMatchesLegacyWithinAdcRounding) {
  Rng rng(72);
  const auto cfg = tiny_config(16);
  Tensor w = Tensor::normal({20, 18}, 0.0f, 0.4f, rng);
  Tensor x({18, 5});
  for (std::int64_t i = 0; i < x.numel(); ++i)
    x[i] = static_cast<float>(rng.uniform(0.0, 1.0));
  auto model = std::make_shared<xbar::IdealXbarModel>(cfg);
  puma::TiledMatrix tiled(w, model, puma::HwConfig{});
  metrics::Counter& digital_mms =
      metrics::counter("puma/tiled/matmuls_int_digital");

  Tensor legacy, digital;
  {
    puma::ScopedIntPathForTests off(false);
    legacy = tiled.matmul(x, 0.0f);
  }
  {
    puma::ScopedIntPathForTests on(true);
    const std::uint64_t before = digital_mms.value();
    digital = tiled.matmul(x, 0.0f);
    EXPECT_GT(digital_mms.value(), before) << "int digital path not engaged";
  }
  ASSERT_EQ(legacy.numel(), digital.numel());
  ASSERT_GT(legacy.abs_max(), 0.0f);
  const float tol = 1e-3f * legacy.abs_max() + 1e-6f;
  for (std::int64_t i = 0; i < legacy.numel(); ++i)
    EXPECT_NEAR(digital[i], legacy[i], tol) << i;
}

/// Both int routes must themselves be deterministic across ISA tiers and
/// thread counts (the existing TiledMatmul cross-product runs with the
/// int path live by default; this pins the gate explicitly on).
TEST(IntPath, IntRoutesDeterministicAcrossIsasAndThreads) {
  Rng rng(73);
  const auto cfg = tiny_config(16);
  Tensor w = Tensor::normal({20, 18}, 0.0f, 0.4f, rng);
  Tensor x({18, 5});
  for (std::int64_t i = 0; i < x.numel(); ++i)
    x[i] = static_cast<float>(rng.uniform(0.0, 1.0));
  puma::ScopedIntPathForTests on(true);
  for (const bool fast_noise : {false, true}) {
    std::shared_ptr<const xbar::MvmModel> model;
    if (fast_noise)
      model = std::make_shared<xbar::FastNoiseModel>(cfg);
    else
      model = std::make_shared<xbar::IdealXbarModel>(cfg);
    puma::TiledMatrix tiled(w, model, puma::HwConfig{});
    Tensor ref;
    {
      simd::ScopedIsaForTests scope(simd::Isa::Scalar);
      ThreadPool serial(1);
      ThreadPool::ScopedUse use(serial);
      ref = tiled.matmul(x, 0.0f);
    }
    for (simd::Isa isa : test_isas()) {
      simd::ScopedIsaForTests scope(isa);
      for (std::size_t threads : {1u, 3u}) {
        ThreadPool pool(threads);
        ThreadPool::ScopedUse use(pool);
        Tensor out = tiled.matmul(x, 0.0f);
        for (std::int64_t i = 0; i < out.numel(); ++i)
          EXPECT_EQ(out[i], ref[i])
              << (fast_noise ? "fast_noise" : "ideal")
              << " isa=" << simd::isa_name(isa) << " threads=" << threads
              << " i=" << i;
      }
    }
  }
}

/// Regression: a FaultModel wrapper — even with every rate at zero — must
/// keep the wrapped model off the fully-digital int route. The digital
/// route computes exact integer dot products and would silently erase the
/// fault rewrite (stuck cells, dead lines, drift) the wrapper applies to
/// the programmed conductances; FaultModel(ideal) is only "ideal" in name.
/// Pinned as bit-identity across the int-path gate and every ISA tier,
/// plus the route counter staying flat.
TEST(IntPath, FaultWrappedIdealNeverTakesDigitalRoute) {
  Rng rng(74);
  const auto cfg = tiny_config(16);
  Tensor w = Tensor::normal({20, 18}, 0.0f, 0.4f, rng);
  Tensor x({18, 5});
  for (std::int64_t i = 0; i < x.numel(); ++i)
    x[i] = static_cast<float>(rng.uniform(0.0, 1.0));
  xbar::FaultOptions fo;  // all rates zero: the rewrite is the identity
  auto model = std::make_shared<xbar::FaultModel>(
      std::make_shared<xbar::IdealXbarModel>(cfg), fo);
  puma::TiledMatrix tiled(w, model, puma::HwConfig{});
  metrics::Counter& digital_mms =
      metrics::counter("puma/tiled/matmuls_int_digital");

  Tensor ref;
  {
    puma::ScopedIntPathForTests off(false);
    simd::ScopedIsaForTests scope(simd::Isa::Scalar);
    ref = tiled.matmul(x, 0.0f);
  }
  ASSERT_GT(ref.abs_max(), 0.0f);
  for (const bool int_path : {false, true}) {
    puma::ScopedIntPathForTests gate(int_path);
    for (simd::Isa isa : test_isas()) {
      simd::ScopedIsaForTests scope(isa);
      const std::uint64_t before = digital_mms.value();
      Tensor out = tiled.matmul(x, 0.0f);
      EXPECT_EQ(digital_mms.value(), before)
          << "digital route engaged for fault-wrapped model (int_path="
          << int_path << " isa=" << simd::isa_name(isa) << ")";
      for (std::int64_t i = 0; i < out.numel(); ++i)
        EXPECT_EQ(out[i], ref[i]) << "int_path=" << int_path
                                  << " isa=" << simd::isa_name(isa)
                                  << " i=" << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Solver stream warm-starting
// ---------------------------------------------------------------------------

TEST(SolverStream, WarmStartMatchesColdWithinToleranceAndSavesSweeps) {
  Rng rng(51);
  const xbar::CrossbarConfig cfg = tiny_config(8);
  Tensor g = random_conductances(cfg, rng);
  const std::int64_t block = 3;
  // Two correlated chunk blocks, like successive DAC bit-streams.
  Tensor chunk1 = random_voltage_block(cfg, block, rng);
  Tensor chunk2 = chunk1;
  for (std::int64_t i = 0; i < chunk2.numel(); ++i)
    chunk2[i] = std::max(0.0f, chunk2[i] * 0.5f +
                                   static_cast<float>(rng.uniform(
                                       0.0, 0.1 * cfg.v_read)));

  metrics::Counter& sweeps = metrics::counter("solver/sweeps");
  metrics::Counter& warm = metrics::counter("solver/warm_starts");

  xbar::CircuitSolverModel model(cfg, {});
  std::unique_ptr<xbar::ProgrammedXbar> xb = model.program(g);

  // Cold baseline: independent solves for both chunks.
  const std::uint64_t s0 = sweeps.value();
  Tensor cold1 = xb->mvm_multi(chunk1);
  Tensor cold2 = xb->mvm_multi(chunk2);
  const std::uint64_t cold_sweeps = sweeps.value() - s0;

  // Streamed: the second chunk's solves start from the first's voltages.
  const std::uint64_t w0 = warm.value(), s1 = sweeps.value();
  std::unique_ptr<xbar::XbarStream> stream = xb->open_stream();
  Tensor warm1 = stream->mvm_multi_active(chunk1, cfg.rows, cfg.cols);
  Tensor warm2 = stream->mvm_multi_active(chunk2, cfg.rows, cfg.cols);
  const std::uint64_t warm_sweeps = sweeps.value() - s1;

  // Every streamed solve is seeded: chunk 1 from the analytic flow
  // refinement of the cold broadcast, chunk 2 from chunk 1's voltages.
  EXPECT_EQ(warm.value() - w0, static_cast<std::uint64_t>(2 * block));
  EXPECT_LT(warm_sweeps, cold_sweeps);
  // Seeded solves agree with cold within solve tolerance (currents are
  // ~i_scale; the solver converges node voltages to tol * v_read).
  const double tol = cfg.i_scale() * 1e-5;
  for (std::int64_t i = 0; i < cold1.numel(); ++i)
    EXPECT_NEAR(warm1[i], cold1[i], tol) << i;
  for (std::int64_t i = 0; i < cold2.numel(); ++i)
    EXPECT_NEAR(warm2[i], cold2[i], tol) << i;
}

TEST(SolverStream, WarmStartDisabledMatchesColdBitExactly) {
  Rng rng(52);
  const xbar::CrossbarConfig cfg = tiny_config(8);
  Tensor g = random_conductances(cfg, rng);
  Tensor chunk1 = random_voltage_block(cfg, 2, rng);
  Tensor chunk2 = random_voltage_block(cfg, 2, rng);

  xbar::SolverOptions opt;
  opt.warm_start_streams = false;
  xbar::CircuitSolverModel model(cfg, opt);
  std::unique_ptr<xbar::ProgrammedXbar> xb = model.program(g);
  Tensor cold1 = xb->mvm_multi(chunk1);
  Tensor cold2 = xb->mvm_multi(chunk2);
  std::unique_ptr<xbar::XbarStream> stream = xb->open_stream();
  Tensor out1 = stream->mvm_multi_active(chunk1, cfg.rows, cfg.cols);
  Tensor out2 = stream->mvm_multi_active(chunk2, cfg.rows, cfg.cols);
  for (std::int64_t i = 0; i < cold1.numel(); ++i)
    EXPECT_EQ(out1[i], cold1[i]) << i;
  for (std::int64_t i = 0; i < cold2.numel(); ++i)
    EXPECT_EQ(out2[i], cold2[i]) << i;
}

TEST(SolverStream, TiledMatmulSweepsDropWithWarmStart) {
  Rng rng(53);
  const xbar::CrossbarConfig cfg = tiny_config(8);
  Tensor w = Tensor::normal({8, 8}, 0.0f, 0.4f, rng);
  Tensor x({8, 3});
  for (std::int64_t i = 0; i < x.numel(); ++i)
    x[i] = static_cast<float>(rng.uniform(0.0, 1.0));
  metrics::Counter& sweeps = metrics::counter("solver/sweeps");

  auto run = [&](bool warm_start) {
    xbar::SolverOptions opt;
    opt.warm_start_streams = warm_start;
    auto model = std::make_shared<xbar::CircuitSolverModel>(cfg, opt);
    puma::TiledMatrix tiled(w, model, puma::HwConfig{});
    const std::uint64_t before = sweeps.value();
    Tensor out = tiled.matmul(x, 0.0f);
    return std::pair<Tensor, std::uint64_t>(std::move(out),
                                            sweeps.value() - before);
  };
  auto [cold_out, cold_sweeps] = run(false);
  auto [warm_out, warm_sweeps] = run(true);
  EXPECT_LT(warm_sweeps, cold_sweeps);
  // The digital result is ADC-quantized, so solver differences within
  // tolerance rarely move the output at all; allow one ADC step.
  const float step = static_cast<float>(cfg.i_scale()) /
                     static_cast<float>((1 << 10) - 1);
  for (std::int64_t i = 0; i < cold_out.numel(); ++i)
    EXPECT_NEAR(warm_out[i], cold_out[i], step) << i;
}

}  // namespace
}  // namespace nvm

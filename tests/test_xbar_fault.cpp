// Device fault injection: fault-free identity, chip determinism, stuck-at
// rail semantics, line opens, retention drift, and decorator composition.
#include <gtest/gtest.h>

#include "common/check.h"

#include <cmath>

#include "xbar/fast_noise.h"
#include "xbar/fault.h"
#include "xbar/geniex.h"
#include "xbar/variation.h"

namespace nvm::xbar {
namespace {

CrossbarConfig fault_cfg() {
  CrossbarConfig cfg = xbar_32x32_100k();
  cfg.rows = cfg.cols = 12;
  return cfg;
}

std::shared_ptr<const MvmModel> fast_base() {
  return std::make_shared<FastNoiseModel>(fault_cfg());
}

TEST(Fault, FaultFreeIsBitIdenticalToBase) {
  auto base = fast_base();
  FaultModel pristine(base, FaultOptions{});
  Rng rng(1);
  Tensor g = sample_conductances(fault_cfg(), rng);
  Tensor v = sample_voltages(fault_cfg(), rng);
  // Identity rewrite...
  EXPECT_EQ(max_abs_diff(pristine.apply_faults(g), g), 0.0f);
  // ...and identical currents through the whole programmed path.
  EXPECT_EQ(max_abs_diff(pristine.program(g)->mvm(v), base->program(g)->mvm(v)),
            0.0f);
}

TEST(Fault, DeterministicPerChipAndDiffersAcrossChips) {
  auto base = fast_base();
  FaultOptions opt;
  opt.stuck_on_rate = 0.1;
  opt.stuck_off_rate = 0.1;
  opt.chip_seed = 7;
  FaultModel chip7(base, opt);
  FaultModel chip7_again(base, opt);
  EXPECT_EQ(chip7.map().cell, chip7_again.map().cell);
  Rng rng(2);
  Tensor g = sample_conductances(fault_cfg(), rng);
  EXPECT_EQ(max_abs_diff(chip7.apply_faults(g), chip7_again.apply_faults(g)),
            0.0f);
  opt.chip_seed = 8;
  FaultModel chip8(base, opt);
  EXPECT_NE(chip7.map().cell, chip8.map().cell);
}

TEST(Fault, StuckCellsPinToRails) {
  const CrossbarConfig cfg = fault_cfg();
  auto base = fast_base();
  FaultOptions opt;
  opt.stuck_on_rate = 0.25;
  opt.stuck_off_rate = 0.25;
  FaultModel chip(base, opt);
  // With 144 cells at 25%+25%, both classes appear with near-certainty.
  EXPECT_GT(chip.map().stuck_on_cells, 0);
  EXPECT_GT(chip.map().stuck_off_cells, 0);

  Rng rng(3);
  Tensor g = sample_conductances(cfg, rng);
  Tensor out = chip.apply_faults(g);
  std::int64_t on_seen = 0, off_seen = 0;
  for (std::int64_t i = 0; i < cfg.rows; ++i)
    for (std::int64_t j = 0; j < cfg.cols; ++j) {
      const auto k = static_cast<std::size_t>(i * cfg.cols + j);
      switch (chip.map().cell[k]) {
        case CellFault::StuckOn:
          EXPECT_FLOAT_EQ(out.at(i, j), static_cast<float>(cfg.g_on()));
          ++on_seen;
          break;
        case CellFault::StuckOff:
          EXPECT_FLOAT_EQ(out.at(i, j), static_cast<float>(cfg.g_off()));
          ++off_seen;
          break;
        case CellFault::Healthy:
          EXPECT_FLOAT_EQ(out.at(i, j), g.at(i, j));
          break;
      }
    }
  EXPECT_EQ(on_seen, chip.map().stuck_on_cells);
  EXPECT_EQ(off_seen, chip.map().stuck_off_cells);
}

TEST(Fault, FaultSetGrowsMonotonicallyWithRate) {
  // A device that fails at 5% must still be failed at 20%: each device
  // compares one fixed per-position draw against the rate, so lowering
  // yield only adds faults, never "heals" one. (This is what makes rate
  // sweeps on one chip_seed meaningful.)
  auto base = fast_base();
  FaultOptions low, high;
  low.stuck_on_rate = 0.05;
  high.stuck_on_rate = 0.20;
  FaultModel chip_low(base, low);
  FaultModel chip_high(base, high);
  ASSERT_EQ(chip_low.map().cell.size(), chip_high.map().cell.size());
  for (std::size_t k = 0; k < chip_low.map().cell.size(); ++k)
    if (chip_low.map().cell[k] == CellFault::StuckOn)
      EXPECT_EQ(chip_high.map().cell[k], CellFault::StuckOn) << "cell " << k;
  EXPECT_GE(chip_high.map().stuck_on_cells, chip_low.map().stuck_on_cells);
}

TEST(Fault, DeadLinesDisconnectWholeRowsAndColumns) {
  const CrossbarConfig cfg = fault_cfg();
  auto base = fast_base();
  FaultOptions opt;
  opt.dead_row_rate = 0.5;
  opt.dead_col_rate = 0.5;
  FaultModel chip(base, opt);
  EXPECT_GT(chip.map().dead_rows, 0);
  EXPECT_GT(chip.map().dead_cols, 0);

  Rng rng(4);
  Tensor g = sample_conductances(cfg, rng);
  Tensor out = chip.apply_faults(g);
  const float g_off = static_cast<float>(cfg.g_off());
  for (std::int64_t i = 0; i < cfg.rows; ++i)
    for (std::int64_t j = 0; j < cfg.cols; ++j)
      if (chip.map().dead_row[static_cast<std::size_t>(i)] ||
          chip.map().dead_col[static_cast<std::size_t>(j)])
        EXPECT_FLOAT_EQ(out.at(i, j), g_off) << "(" << i << "," << j << ")";
}

TEST(Fault, DriftDecaysMonotonicallyTowardGOff) {
  const CrossbarConfig cfg = fault_cfg();
  auto base = fast_base();
  auto drifted = [&](double t) {
    FaultOptions opt;
    opt.drift_time = t;
    return FaultModel(base, opt);
  };
  Rng rng(5);
  Tensor g = sample_conductances(cfg, rng);
  // t = 0 is the exact identity.
  EXPECT_EQ(max_abs_diff(drifted(0.0).apply_faults(g), g), 0.0f);
  Tensor g1 = drifted(1e3).apply_faults(g);
  Tensor g2 = drifted(1e6).apply_faults(g);
  const float g_off = static_cast<float>(cfg.g_off());
  for (std::int64_t i = 0; i < cfg.rows; ++i)
    for (std::int64_t j = 0; j < cfg.cols; ++j) {
      // Later snapshots sit closer to g_off, and never below it.
      EXPECT_LE(g2.at(i, j), g1.at(i, j) + 1e-12f);
      EXPECT_LE(g1.at(i, j), g.at(i, j) + 1e-12f);
      EXPECT_GE(g2.at(i, j), g_off * (1 - 1e-6f));
    }
  EXPECT_LT(g2.sum(), g.sum());
}

TEST(Fault, ProgramRoutesRewrittenMatrixThroughBase) {
  auto base = fast_base();
  FaultOptions opt;
  opt.stuck_off_rate = 0.2;
  opt.drift_time = 100.0;
  FaultModel chip(base, opt);
  Rng rng(6);
  Tensor g = sample_conductances(fault_cfg(), rng);
  Tensor v = sample_voltages(fault_cfg(), rng);
  Tensor via_model = chip.program(g)->mvm(v);
  Tensor manual = base->program(chip.apply_faults(g))->mvm(v);
  EXPECT_EQ(max_abs_diff(via_model, manual), 0.0f);
}

TEST(Fault, StuckCellsSurviveVariationOnTop) {
  // VariationModel over FaultModel: the fault rewrite runs *after* the
  // write-noise perturbation, so a stuck device stays at its rail no
  // matter what the programmer tried to write — matching real hardware,
  // where write-verify cannot fix a formed-short or open device.
  const CrossbarConfig cfg = fault_cfg();
  auto base = fast_base();
  FaultOptions fopt;
  fopt.stuck_on_rate = 0.15;
  fopt.stuck_off_rate = 0.15;
  auto faulty = std::make_shared<FaultModel>(base, fopt);
  VariationOptions vopt;
  vopt.write_sigma = 0.2;
  VariationModel noisy_faulty(faulty, vopt);

  Rng rng(7);
  Tensor g = sample_conductances(cfg, rng);
  Tensor v = sample_voltages(cfg, rng);
  // The composed program equals: perturb, then fault-rewrite, then base.
  VariationModel perturb_only(base, vopt);
  Tensor manual =
      base->program(faulty->apply_faults(perturb_only.perturb(g)))->mvm(v);
  EXPECT_EQ(max_abs_diff(noisy_faulty.program(g)->mvm(v), manual), 0.0f);
  // And the rewrite pins stuck cells regardless of the noise.
  Tensor rewritten = faulty->apply_faults(perturb_only.perturb(g));
  for (std::int64_t i = 0; i < cfg.rows; ++i)
    for (std::int64_t j = 0; j < cfg.cols; ++j) {
      const auto k = static_cast<std::size_t>(i * cfg.cols + j);
      if (faulty->map().cell[k] == CellFault::StuckOn)
        EXPECT_FLOAT_EQ(rewritten.at(i, j), static_cast<float>(cfg.g_on()));
    }
}

TEST(Fault, FaultsFlowThroughSolverBackend) {
  CrossbarConfig cfg = fault_cfg();
  cfg.rows = cfg.cols = 6;  // keep the nodal solve cheap
  auto solver = std::make_shared<CircuitSolverModel>(cfg);
  FaultOptions opt;
  opt.stuck_off_rate = 0.3;
  FaultModel chip(solver, opt);
  Rng rng(8);
  Tensor g = sample_conductances(cfg, rng);
  Tensor v = sample_voltages(cfg, rng);
  Tensor faulty_out = chip.program(g)->mvm(v);
  Tensor clean_out = solver->program(g)->mvm(v);
  for (std::int64_t j = 0; j < cfg.cols; ++j)
    EXPECT_TRUE(std::isfinite(faulty_out[j]));
  // Killing 30% of the devices (toward g_off) must lose current.
  EXPECT_LT(faulty_out.sum(), clean_out.sum());
}

TEST(Fault, NameEncodesChipAndActiveFaultClasses) {
  auto base = fast_base();
  FaultOptions opt;
  opt.stuck_on_rate = 0.01;
  opt.drift_time = 10.0;
  opt.chip_seed = 3;
  const std::string n = FaultModel(base, opt).name();
  EXPECT_NE(n.find("fault"), std::string::npos);
  EXPECT_NE(n.find("chip3"), std::string::npos);
  EXPECT_NE(n.find("on0.01"), std::string::npos);
  EXPECT_EQ(n.find("off"), std::string::npos);  // inactive class omitted
}

TEST(Fault, RejectsUnphysicalOptions) {
  auto base = fast_base();
  FaultOptions over;
  over.stuck_on_rate = 0.7;
  over.stuck_off_rate = 0.5;  // partition exceeds 1
  EXPECT_THROW(FaultModel(base, over), CheckError);
  FaultOptions negative;
  negative.drift_time = -1.0;
  EXPECT_THROW(FaultModel(base, negative), CheckError);
  FaultOptions bad_row;
  bad_row.dead_row_rate = 1.5;
  EXPECT_THROW(FaultModel(base, bad_row), CheckError);
}

}  // namespace
}  // namespace nvm::xbar

#include <gtest/gtest.h>

#include "common/check.h"
#include "tensor/ops.h"

namespace nvm {
namespace {

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0;
      for (std::int64_t kk = 0; kk < k; ++kk)
        acc += static_cast<double>(a.at(i, kk)) * b.at(kk, j);
      c.at(i, j) = static_cast<float>(acc);
    }
  return c;
}

TEST(Matmul, MatchesNaive) {
  Rng rng(1);
  for (auto [m, k, n] : {std::tuple{3, 4, 5}, {1, 7, 2}, {8, 8, 8}}) {
    Tensor a = Tensor::normal({m, k}, 0, 1, rng);
    Tensor b = Tensor::normal({k, n}, 0, 1, rng);
    EXPECT_LT(max_abs_diff(matmul(a, b), naive_matmul(a, b)), 1e-4f)
        << m << "x" << k << "x" << n;
  }
}

TEST(Matmul, ShapeMismatchThrows) {
  Tensor a({2, 3});
  Tensor b({4, 2});
  EXPECT_THROW(matmul(a, b), CheckError);
}

TEST(Matvec, MatchesMatmul) {
  Rng rng(2);
  Tensor a = Tensor::normal({5, 7}, 0, 1, rng);
  Tensor x = Tensor::normal({7}, 0, 1, rng);
  Tensor y = matvec(a, x);
  Tensor y2 = matmul(a, x.reshaped({7, 1}));
  EXPECT_LT(max_abs_diff(y, y2.reshaped({5})), 1e-5f);
}

TEST(Transpose, Involution) {
  Rng rng(3);
  Tensor a = Tensor::normal({4, 6}, 0, 1, rng);
  EXPECT_EQ(max_abs_diff(transpose2d(transpose2d(a)), a), 0.0f);
  EXPECT_EQ(transpose2d(a).dim(0), 6);
}

/// Direct (reference) convolution for validating the im2col path.
Tensor naive_conv(const Tensor& x, const Tensor& w, const ConvGeom& g) {
  Tensor y({g.out_c, g.out_h(), g.out_w()});
  for (std::int64_t oc = 0; oc < g.out_c; ++oc)
    for (std::int64_t oy = 0; oy < g.out_h(); ++oy)
      for (std::int64_t ox = 0; ox < g.out_w(); ++ox) {
        double acc = 0;
        for (std::int64_t ic = 0; ic < g.in_c; ++ic)
          for (std::int64_t ky = 0; ky < g.kernel; ++ky)
            for (std::int64_t kx = 0; kx < g.kernel; ++kx) {
              const std::int64_t iy = oy * g.stride + ky - g.pad;
              const std::int64_t ix = ox * g.stride + kx - g.pad;
              if (iy < 0 || iy >= g.in_h || ix < 0 || ix >= g.in_w) continue;
              acc += static_cast<double>(x.at(ic, iy, ix)) *
                     w.at(oc, (ic * g.kernel + ky) * g.kernel + kx);
            }
        y.at(oc, oy, ox) = static_cast<float>(acc);
      }
  return y;
}

struct ConvCase {
  std::int64_t in_c, in_h, in_w, out_c, kernel, stride, pad;
};

class Im2colConv : public ::testing::TestWithParam<ConvCase> {};

TEST_P(Im2colConv, MatchesDirectConvolution) {
  const ConvCase p = GetParam();
  ConvGeom g{p.in_c, p.in_h, p.in_w, p.out_c, p.kernel, p.stride, p.pad};
  Rng rng(7);
  Tensor x = Tensor::normal({g.in_c, g.in_h, g.in_w}, 0, 1, rng);
  Tensor w = Tensor::normal({g.out_c, g.patch_size()}, 0, 1, rng);
  Tensor cols = im2col(x, g);
  Tensor y = matmul(w, cols).reshaped({g.out_c, g.out_h(), g.out_w()});
  EXPECT_LT(max_abs_diff(y, naive_conv(x, w, g)), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Im2colConv,
    ::testing::Values(ConvCase{3, 8, 8, 4, 3, 1, 1},
                      ConvCase{2, 7, 9, 3, 3, 2, 1},
                      ConvCase{1, 5, 5, 2, 1, 1, 0},
                      ConvCase{4, 6, 6, 8, 3, 2, 1},
                      ConvCase{3, 12, 12, 8, 3, 1, 1}));

// Property: col2im is the adjoint of im2col —
//   <im2col(x), y> == <x, col2im(y)> for all x, y.
TEST(Im2col, Col2imIsAdjoint) {
  Rng rng(11);
  ConvGeom g{3, 6, 6, 4, 3, 2, 1};
  for (int trial = 0; trial < 10; ++trial) {
    Tensor x = Tensor::normal({g.in_c, g.in_h, g.in_w}, 0, 1, rng);
    Tensor y = Tensor::normal({g.patch_size(), g.out_h() * g.out_w()}, 0, 1, rng);
    const Tensor cx = im2col(x, g);
    const Tensor ay = col2im(y, g);
    double lhs = 0, rhs = 0;
    for (std::int64_t i = 0; i < cx.numel(); ++i) lhs += double(cx[i]) * y[i];
    for (std::int64_t i = 0; i < x.numel(); ++i) rhs += double(x[i]) * ay[i];
    EXPECT_NEAR(lhs, rhs, 1e-3);
  }
}

TEST(PadImage, PlacesAndZeroFills) {
  Tensor img({1, 2, 2}, {1, 2, 3, 4});
  Tensor out = pad_image(img, 1, 2, 4, 5);
  EXPECT_EQ(out.at(0, 1, 2), 1.0f);
  EXPECT_EQ(out.at(0, 2, 3), 4.0f);
  EXPECT_EQ(out.at(0, 0, 0), 0.0f);
  EXPECT_EQ(out.sum(), 10.0f);
  EXPECT_THROW(pad_image(img, 3, 0, 4, 5), CheckError);
}

TEST(ResizeNearest, IdentityAndUpscale) {
  Tensor img({1, 2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(max_abs_diff(resize_nearest(img, 2, 2), img), 0.0f);
  Tensor up = resize_nearest(img, 4, 4);
  EXPECT_EQ(up.at(0, 0, 0), 1.0f);
  EXPECT_EQ(up.at(0, 0, 3), 2.0f);
  EXPECT_EQ(up.at(0, 3, 3), 4.0f);
}

TEST(ConvGeom, OutputDims) {
  ConvGeom g{3, 12, 12, 8, 3, 2, 1};
  EXPECT_EQ(g.out_h(), 6);
  EXPECT_EQ(g.out_w(), 6);
  EXPECT_EQ(g.patch_size(), 27);
}

}  // namespace
}  // namespace nvm

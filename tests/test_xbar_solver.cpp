// Circuit-solver validation: analytic single-cell case, dense
// Gaussian-elimination reference for small arrays, parasitic limits, and
// physical monotonicity properties.
#include <gtest/gtest.h>

#include "common/check.h"

#include <cmath>
#include <vector>

#include "common/health.h"
#include "common/metrics.h"
#include "xbar/circuit_solver.h"
#include "xbar/geniex.h"

namespace nvm::xbar {
namespace {

CrossbarConfig tiny_config(std::int64_t n) {
  CrossbarConfig cfg = xbar_64x64_100k();
  cfg.rows = cfg.cols = n;
  return cfg;
}

TEST(Solver, SingleCellMatchesVoltageDivider) {
  CrossbarConfig cfg = tiny_config(1);
  cfg.device_nonlin = 1e-12;  // linear device
  const double g_dev = 0.6e-5;
  Tensor g({1, 1}, {static_cast<float>(g_dev)});
  Tensor v({1}, {0.2f});
  Tensor out = solve_crossbar(cfg, {}, g, v);
  const double r_total = cfg.r_source + 1.0 / g_dev + cfg.r_sink;
  EXPECT_NEAR(out[0], 0.2 / r_total, 1e-12);
}

TEST(Solver, SingleCellNonlinearMatchesScalarSolve) {
  CrossbarConfig cfg = tiny_config(1);
  cfg.device_nonlin = 2.0;
  const double g_dev = 1e-5;
  Tensor g({1, 1}, {static_cast<float>(g_dev)});
  Tensor v({1}, {0.25f});
  Tensor out = solve_crossbar(cfg, {}, g, v);

  // Bisection on f(i) = V - i*(Rs+Rk) - Vdev(i), where the device drop
  // satisfies i = g * sinh(b*Vdev)/b  =>  Vdev = asinh(i*b/g)/b.
  const double b = cfg.device_nonlin;
  auto residual = [&](double i) {
    const double vdev = std::asinh(i * b / g_dev) / b;
    return 0.25 - i * (cfg.r_source + cfg.r_sink) - vdev;
  };
  double lo = 0, hi = 1e-3;
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    (residual(mid) > 0 ? lo : hi) = mid;
  }
  EXPECT_NEAR(out[0], lo, 1e-11);
}

/// Dense nodal-analysis reference: builds the full conductance matrix over
/// all 2*N*N nodes (linear devices) and solves by Gaussian elimination.
Tensor dense_reference(const CrossbarConfig& cfg, const Tensor& g,
                       const Tensor& v) {
  const std::int64_t R = cfg.rows, C = cfg.cols, n = 2 * R * C;
  auto vr_idx = [&](std::int64_t i, std::int64_t j) { return i * C + j; };
  auto vc_idx = [&](std::int64_t i, std::int64_t j) { return R * C + i * C + j; };
  std::vector<std::vector<double>> a(
      static_cast<std::size_t>(n), std::vector<double>(static_cast<std::size_t>(n + 1), 0.0));
  auto stamp = [&](std::int64_t p, std::int64_t q, double cond) {
    a[p][p] += cond;
    a[q][q] += cond;
    a[p][q] -= cond;
    a[q][p] -= cond;
  };
  auto stamp_to_ground = [&](std::int64_t p, double cond, double volt) {
    a[p][p] += cond;
    a[p][static_cast<std::size_t>(n)] += cond * volt;
  };
  const double gw = 1.0 / cfg.r_wire, gs = 1.0 / cfg.r_source,
               gk = 1.0 / cfg.r_sink;
  for (std::int64_t i = 0; i < R; ++i) {
    stamp_to_ground(vr_idx(i, 0), gs, v[i]);
    for (std::int64_t j = 0; j + 1 < C; ++j)
      stamp(vr_idx(i, j), vr_idx(i, j + 1), gw);
    for (std::int64_t j = 0; j < C; ++j)
      stamp(vr_idx(i, j), vc_idx(i, j), g.at(i, j));
  }
  for (std::int64_t j = 0; j < C; ++j) {
    for (std::int64_t i = 0; i + 1 < R; ++i)
      stamp(vc_idx(i, j), vc_idx(i + 1, j), gw);
    stamp_to_ground(vc_idx(R - 1, j), gk, 0.0);
  }
  // Gaussian elimination with partial pivoting.
  for (std::int64_t col = 0; col < n; ++col) {
    std::int64_t piv = col;
    for (std::int64_t r2 = col + 1; r2 < n; ++r2)
      if (std::abs(a[r2][col]) > std::abs(a[piv][col])) piv = r2;
    std::swap(a[col], a[piv]);
    for (std::int64_t r2 = 0; r2 < n; ++r2) {
      if (r2 == col || a[r2][col] == 0.0) continue;
      const double f = a[r2][col] / a[col][col];
      for (std::int64_t c2 = col; c2 <= n; ++c2) a[r2][c2] -= f * a[col][c2];
    }
  }
  Tensor out({C});
  for (std::int64_t j = 0; j < C; ++j) {
    const double vc_last =
        a[vc_idx(R - 1, j)][static_cast<std::size_t>(n)] /
        a[vc_idx(R - 1, j)][vc_idx(R - 1, j)];
    out[j] = static_cast<float>(vc_last * gk);
  }
  return out;
}

class SolverVsDense : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(SolverVsDense, MatchesGaussianElimination) {
  CrossbarConfig cfg = tiny_config(GetParam());
  cfg.device_nonlin = 1e-12;  // reference is linear
  Rng rng(GetParam());
  Tensor g = sample_conductances(cfg, rng);
  Tensor v = sample_voltages(cfg, rng);
  Tensor fast = solve_crossbar(cfg, {}, g, v);
  Tensor ref = dense_reference(cfg, g, v);
  for (std::int64_t j = 0; j < cfg.cols; ++j)
    EXPECT_NEAR(fast[j], ref[j], 1e-9f + 1e-5f * std::abs(ref[j])) << "col " << j;
}

INSTANTIATE_TEST_SUITE_P(Sizes, SolverVsDense, ::testing::Values(2, 3, 5, 8));

TEST(Solver, NearIdealParasiticsMatchIdealMvm) {
  CrossbarConfig cfg = tiny_config(6);
  cfg.r_source = cfg.r_sink = cfg.r_wire = 1e-3;
  cfg.device_nonlin = 1e-12;
  Rng rng(4);
  Tensor g = sample_conductances(cfg, rng);
  Tensor v = sample_voltages(cfg, rng);
  Tensor out = solve_crossbar(cfg, {}, g, v);
  Tensor ideal = ideal_mvm(g, v);
  for (std::int64_t j = 0; j < cfg.cols; ++j)
    EXPECT_NEAR(out[j], ideal[j], 1e-4f * std::abs(ideal[j]) + 1e-12f);
}

TEST(Solver, ParasiticsOnlyReduceCurrent) {
  CrossbarConfig cfg = tiny_config(8);
  cfg.device_nonlin = 1e-12;  // isolate resistive losses
  Rng rng(5);
  Tensor g = sample_conductances(cfg, rng);
  Tensor v = sample_voltages(cfg, rng);
  Tensor out = solve_crossbar(cfg, {}, g, v);
  Tensor ideal = ideal_mvm(g, v);
  for (std::int64_t j = 0; j < cfg.cols; ++j)
    EXPECT_LE(out[j], ideal[j] * (1 + 1e-6) + 1e-15);
}

TEST(Solver, MoreWireResistanceMoreLoss) {
  Rng rng(6);
  CrossbarConfig cfg = tiny_config(8);
  Tensor g = sample_conductances(cfg, rng);
  Tensor v = Tensor::full({8}, static_cast<float>(cfg.v_read));
  CrossbarConfig worse = cfg;
  worse.r_wire *= 4;
  Tensor base = solve_crossbar(cfg, {}, g, v);
  Tensor degraded = solve_crossbar(worse, {}, g, v);
  EXPECT_LT(degraded.sum(), base.sum());
}

TEST(Solver, ConvergesWellUnderSweepLimit) {
  CrossbarConfig cfg = xbar_64x64_100k();
  Rng rng(7);
  Tensor g = sample_conductances(cfg, rng);
  Tensor v = sample_voltages(cfg, rng);
  int sweeps = 0;
  SolverOptions opt;
  (void)solve_crossbar(cfg, opt, g, v, &sweeps);
  EXPECT_LT(sweeps, 40);
  EXPECT_GE(sweeps, 2);
}

TEST(Solver, ExhaustedSweepBudgetIsReportedNotSwallowed) {
  // Regression: a solve that hits max_sweeps used to return its last
  // iterate silently. It must now flag non-convergence, bump the health
  // counter, and still hand back finite currents.
  CrossbarConfig cfg = tiny_config(6);
  Rng rng(12);
  Tensor g = sample_conductances(cfg, rng);
  Tensor v = sample_voltages(cfg, rng);
  SolverOptions opt;
  opt.max_sweeps = 1;
  opt.tol = 1e-15;  // unreachable in one sweep
  opt.retry_on_nonconvergence = false;  // exercise the raw failure path
  const auto before = health_value(HealthCounter::SolverNonConverged);
  SolveStats stats;
  Tensor out = solve_crossbar(cfg, opt, g, v, &stats);
  EXPECT_FALSE(stats.converged);
  EXPECT_FALSE(stats.ok());
  EXPECT_TRUE(stats.finite);
  EXPECT_EQ(stats.sweeps_used, 1);
  EXPECT_EQ(stats.retries, 0);
  EXPECT_GT(stats.last_delta, 0.0);
  EXPECT_GT(health_value(HealthCounter::SolverNonConverged), before);
  for (std::int64_t j = 0; j < cfg.cols; ++j)
    EXPECT_TRUE(std::isfinite(out[j])) << "col " << j;
}

TEST(Solver, FailedSolveRetriesOnceDampedBeforeGivingUp) {
  // A non-converged solve retries once, cold, with halved relaxation and
  // doubled sweep budget. With an unreachable tolerance the retry fails
  // too: the stats describe the retry attempt (2x budget spent), exactly
  // one retry is recorded, and the health counter sees ONE failure — not
  // one per attempt.
  CrossbarConfig cfg = tiny_config(6);
  Rng rng(12);
  Tensor g = sample_conductances(cfg, rng);
  Tensor v = sample_voltages(cfg, rng);
  SolverOptions opt;
  opt.max_sweeps = 1;
  opt.tol = 1e-15;
  const auto health_before = health_value(HealthCounter::SolverNonConverged);
  const auto retries_before = metrics::counter("solver/retries").value();
  SolveStats stats;
  Tensor out = solve_crossbar(cfg, opt, g, v, &stats);
  EXPECT_EQ(stats.retries, 1);
  EXPECT_FALSE(stats.converged);
  EXPECT_EQ(stats.sweeps_used, 2);  // the retry's doubled budget
  EXPECT_EQ(metrics::counter("solver/retries").value(), retries_before + 1);
  EXPECT_EQ(health_value(HealthCounter::SolverNonConverged),
            health_before + 1);
  for (std::int64_t j = 0; j < cfg.cols; ++j)
    EXPECT_TRUE(std::isfinite(out[j])) << "col " << j;
}

TEST(Solver, RetryOutputMatchesExplicitDampedColdSolve) {
  // The retry is by definition a cold re-solve at half relaxation and
  // double budget: its output and stats must match an explicitly
  // configured damped solve bit for bit.
  CrossbarConfig cfg = tiny_config(6);
  Rng rng(13);
  Tensor g = sample_conductances(cfg, rng);
  Tensor v = sample_voltages(cfg, rng);
  SolverOptions opt;
  opt.max_sweeps = 1;
  opt.tol = 1e-15;
  SolveStats stats;
  Tensor out = solve_crossbar(cfg, opt, g, v, &stats);
  SolverOptions damped = opt;
  damped.max_sweeps = 2;
  damped.relaxation = 0.5;
  damped.retry_on_nonconvergence = false;
  SolveStats ds;
  Tensor ref = solve_crossbar(cfg, damped, g, v, &ds);
  EXPECT_EQ(stats.retries, 1);
  EXPECT_EQ(ds.retries, 0);
  EXPECT_EQ(stats.sweeps_used, ds.sweeps_used);
  EXPECT_EQ(stats.last_delta, ds.last_delta);
  EXPECT_EQ(max_abs_diff(out, ref), 0.0f);
}

TEST(Solver, UnderRelaxationConvergesToSameFixedPoint) {
  // Damping slows the outer iteration but must land on the same solution,
  // on both sweep schedules.
  CrossbarConfig cfg = tiny_config(8);
  Rng rng(15);
  Tensor g = sample_conductances(cfg, rng);
  Tensor v = sample_voltages(cfg, rng);
  Tensor ref = solve_crossbar(cfg, {}, g, v);
  for (const SweepOrdering ordering :
       {SweepOrdering::kRedBlack, SweepOrdering::kLexicographic}) {
    SolverOptions damped;
    damped.ordering = ordering;
    damped.relaxation = 0.6;
    SolveStats stats;
    Tensor out = solve_crossbar(cfg, damped, g, v, &stats);
    EXPECT_TRUE(stats.ok());
    for (std::int64_t j = 0; j < cfg.cols; ++j)
      EXPECT_NEAR(out[j], ref[j], 1e-5f * cfg.i_scale()) << "col " << j;
  }
}

TEST(Solver, RelaxationValidatesRange) {
  CrossbarConfig cfg = tiny_config(2);
  Rng rng(16);
  Tensor g = sample_conductances(cfg, rng);
  Tensor v = sample_voltages(cfg, rng);
  for (const double bad : {0.0, -0.5, 1.5}) {
    SolverOptions opt;
    opt.relaxation = bad;
    EXPECT_THROW(solve_crossbar(cfg, opt, g, v), CheckError) << bad;
  }
}

TEST(Solver, NormalSolveReportsCleanStats) {
  CrossbarConfig cfg = tiny_config(6);
  Rng rng(13);
  Tensor g = sample_conductances(cfg, rng);
  Tensor v = sample_voltages(cfg, rng);
  const auto before = health_value(HealthCounter::SolverNonConverged);
  SolveStats stats;
  (void)solve_crossbar(cfg, {}, g, v, &stats);
  EXPECT_TRUE(stats.ok());
  EXPECT_GE(stats.sweeps_used, 2);
  EXPECT_EQ(health_value(HealthCounter::SolverNonConverged), before);
}

TEST(Solver, LegacySweepCountOverloadAgreesWithStats) {
  CrossbarConfig cfg = tiny_config(5);
  Rng rng(14);
  Tensor g = sample_conductances(cfg, rng);
  Tensor v = sample_voltages(cfg, rng);
  int sweeps = 0;
  Tensor a = solve_crossbar(cfg, {}, g, v, &sweeps);
  SolveStats stats;
  Tensor b = solve_crossbar(cfg, {}, g, v, &stats);
  EXPECT_EQ(sweeps, stats.sweeps_used);
  EXPECT_EQ(max_abs_diff(a, b), 0.0f);
}

TEST(Solver, ZeroInputGivesZeroOutput) {
  CrossbarConfig cfg = tiny_config(4);
  Rng rng(8);
  Tensor g = sample_conductances(cfg, rng);
  Tensor out = solve_crossbar(cfg, {}, g, Tensor({4}));
  for (std::int64_t j = 0; j < 4; ++j) EXPECT_NEAR(out[j], 0.0f, 1e-15f);
}

TEST(Solver, SuperpositionHoldsForLinearDevices) {
  CrossbarConfig cfg = tiny_config(4);
  cfg.device_nonlin = 1e-12;
  Rng rng(9);
  Tensor g = sample_conductances(cfg, rng);
  Tensor v1 = sample_voltages(cfg, rng);
  Tensor v2 = sample_voltages(cfg, rng);
  Tensor sum_in = v1 + v2;
  Tensor lhs = solve_crossbar(cfg, {}, g, sum_in);
  Tensor rhs = solve_crossbar(cfg, {}, g, v1) + solve_crossbar(cfg, {}, g, v2);
  for (std::int64_t j = 0; j < 4; ++j)
    EXPECT_NEAR(lhs[j], rhs[j], 1e-6f * std::abs(rhs[j]) + 1e-13f);
}

TEST(Solver, RedBlackBitIdenticalToLexicographic) {
  // The red-black plane schedule only reorders independent chain solves
  // within each half-sweep, so every iterate — and therefore the output
  // currents AND the sweep count — must match the legacy chain-at-a-time
  // schedule exactly.
  for (const std::int64_t n : {3, 8, 16}) {
    CrossbarConfig cfg = tiny_config(n);
    Rng rng(20 + n);
    Tensor g = sample_conductances(cfg, rng);
    Tensor v = sample_voltages(cfg, rng);
    SolverOptions rb, lex;
    rb.ordering = SweepOrdering::kRedBlack;
    lex.ordering = SweepOrdering::kLexicographic;
    SolveStats srb, slex;
    Tensor a = solve_crossbar(cfg, rb, g, v, &srb);
    Tensor b = solve_crossbar(cfg, lex, g, v, &slex);
    EXPECT_EQ(srb.sweeps_used, slex.sweeps_used) << "n=" << n;
    EXPECT_EQ(srb.last_delta, slex.last_delta) << "n=" << n;
    EXPECT_EQ(max_abs_diff(a, b), 0.0f) << "n=" << n;
  }
}

TEST(Solver, CoarseStartSavesSweepsAndStaysWithinTolerance) {
  CrossbarConfig cfg = xbar_64x64_100k();
  Rng rng(21);
  Tensor g = sample_conductances(cfg, rng);
  Tensor v = sample_voltages(cfg, rng);
  SolverOptions coarse, flat;
  coarse.coarse_start = true;
  flat.coarse_start = false;
  SolveStats sc, sf;
  Tensor a = solve_crossbar(cfg, coarse, g, v, &sc);
  Tensor b = solve_crossbar(cfg, flat, g, v, &sf);
  EXPECT_TRUE(sc.ok());
  EXPECT_TRUE(sf.ok());
  // The analytic IR-drop seed must never cost sweeps, and on this stiff
  // 64x64 preset it must actually save at least one.
  EXPECT_LT(sc.sweeps_used, sf.sweeps_used);
  // Both converge the same fixed point to tol * v_read.
  for (std::int64_t j = 0; j < cfg.cols; ++j)
    EXPECT_NEAR(a[j], b[j], 1e-5f * cfg.i_scale()) << "col " << j;
}

TEST(Solver, ConvergenceRegressionAcrossScheduleOptions) {
  // Regression rail for the sweep counts the perf work relies on: the
  // default options (red-black + coarse start) must not regress past the
  // legacy schedule's cost on the benchmark-sized preset.
  CrossbarConfig cfg = xbar_64x64_100k();
  Rng rng(22);
  Tensor g = sample_conductances(cfg, rng);
  Tensor v = sample_voltages(cfg, rng);
  SolverOptions legacy;
  legacy.ordering = SweepOrdering::kLexicographic;
  legacy.coarse_start = false;
  SolveStats sdef, sleg;
  (void)solve_crossbar(cfg, {}, g, v, &sdef);
  (void)solve_crossbar(cfg, legacy, g, v, &sleg);
  EXPECT_TRUE(sdef.ok());
  EXPECT_LE(sdef.sweeps_used, sleg.sweeps_used);
  EXPECT_LT(sdef.sweeps_used, 40);
}

TEST(Solver, ProgramValidatesConductanceRange) {
  CrossbarConfig cfg = tiny_config(2);
  CircuitSolverModel model(cfg);
  Tensor bad = Tensor::full({2, 2}, static_cast<float>(cfg.g_on() * 2));
  EXPECT_THROW(model.program(bad), CheckError);
  Tensor wrong_shape = Tensor::full({2, 3}, static_cast<float>(cfg.g_off()));
  EXPECT_THROW(model.program(wrong_shape), CheckError);
}

}  // namespace
}  // namespace nvm::xbar

// nvm::telemetry + trace timeline events: ring-buffer sampler semantics
// (track/pulse/drop-oldest/snapshot, capacity override), Chrome-trace
// event capture (nested/recursive spans balanced per thread, monotone
// timestamps, drop-oldest rings still exporting well-formed streams),
// crash-safe flush output, the zero-overhead/bit-identity contract
// (solver + serve outputs identical with capture on vs off), the serve
// per-request stage breakdown, atomic_write_file, and span-stat merge
// associativity.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <functional>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/file_cache.h"
#include "common/metrics.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "puma/tiled_mvm.h"
#include "serve/serve.h"
#include "tensor/tensor.h"
#include "xbar/fast_noise.h"
#include "xbar/model_zoo.h"

namespace nvm {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::size_t count_occurrences(const std::string& hay, const std::string& s) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(s); pos != std::string::npos;
       pos = hay.find(s, pos + s.size()))
    ++n;
  return n;
}

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    telemetry::reset_for_tests();
    trace::reset_events_for_tests();
  }
  void TearDown() override {
    telemetry::set_capacity_for_tests(0);
    telemetry::reset_for_tests();
    trace::reset_events_for_tests();
  }
};

// ---------------------------------------------------------------------------
// Time-series sampler

TEST_F(TelemetryTest, TrackedSeriesFollowsMetricAcrossPulses) {
  metrics::Gauge& g = metrics::gauge("test/telemetry_gauge");
  telemetry::track("test/telemetry_gauge");
  g.set(1.0);
  telemetry::sample_all(10);
  g.set(2.5);
  telemetry::sample_all(20);

  bool found = false;
  for (const telemetry::Series& s : telemetry::snapshot()) {
    if (s.metric != "test/telemetry_gauge") continue;
    found = true;
    ASSERT_EQ(s.ticks.size(), 2u);
    EXPECT_EQ(s.ticks[0], 10u);
    EXPECT_EQ(s.ticks[1], 20u);
    EXPECT_DOUBLE_EQ(s.values[0], 1.0);
    EXPECT_DOUBLE_EQ(s.values[1], 2.5);
    EXPECT_EQ(s.dropped, 0u);
  }
  EXPECT_TRUE(found);
}

TEST_F(TelemetryTest, RingDropsOldestBeyondCapacity) {
  telemetry::set_capacity_for_tests(3);
  metrics::Gauge& g = metrics::gauge("test/telemetry_ring");
  telemetry::track("test/telemetry_ring");
  for (std::uint64_t t = 0; t < 8; ++t) {
    g.set(static_cast<double>(t) * 10.0);
    telemetry::sample_all(t);
  }
  for (const telemetry::Series& s : telemetry::snapshot()) {
    if (s.metric != "test/telemetry_ring") continue;
    ASSERT_EQ(s.ticks.size(), 3u);  // capacity
    EXPECT_EQ(s.dropped, 5u);       // 8 pulses - 3 retained
    // Oldest-first: the three newest samples survive, in capture order.
    EXPECT_EQ(s.ticks[0], 5u);
    EXPECT_EQ(s.ticks[2], 7u);
    EXPECT_DOUBLE_EQ(s.values[2], 70.0);
    return;
  }
  FAIL() << "tracked series missing from snapshot";
}

TEST_F(TelemetryTest, UnregisteredMetricRecordsNothingUntilItAppears) {
  telemetry::track("test/telemetry_late_metric_unique");
  telemetry::sample_all(1);  // metric does not exist yet: no sample
  metrics::counter("test/telemetry_late_metric_unique").add(4);
  telemetry::sample_all(2);
  for (const telemetry::Series& s : telemetry::snapshot()) {
    if (s.metric != "test/telemetry_late_metric_unique") continue;
    ASSERT_EQ(s.ticks.size(), 1u);
    EXPECT_EQ(s.ticks[0], 2u);
    EXPECT_DOUBLE_EQ(s.values[0], 4.0);
    return;
  }
  FAIL() << "tracked series missing from snapshot";
}

TEST_F(TelemetryTest, HistogramsSampleAsObservationCounts) {
  metrics::Histogram& h = metrics::histogram("test/telemetry_hist");
  telemetry::track("test/telemetry_hist");
  const std::uint64_t base = [] {
    for (const auto& m : metrics::snapshot())
      if (m.name == "test/telemetry_hist") return m.count;
    return std::uint64_t{0};
  }();
  h.observe(1.0);
  h.observe(2.0);
  telemetry::sample_all(1);
  for (const telemetry::Series& s : telemetry::snapshot()) {
    if (s.metric != "test/telemetry_hist") continue;
    ASSERT_EQ(s.values.size(), 1u);
    EXPECT_DOUBLE_EQ(s.values[0], static_cast<double>(base + 2));
    return;
  }
  FAIL() << "tracked series missing from snapshot";
}

TEST_F(TelemetryTest, ZeroCapacityDisablesSampling) {
  // TearDown resets the override; within the test, 0 comes from the env
  // default path only — emulate it by tracking nothing and checking the
  // pulse fast path stays a no-op.
  telemetry::sample_all(1);
  EXPECT_TRUE(telemetry::snapshot().empty());
}

// ---------------------------------------------------------------------------
// Trace timeline events

TEST_F(TelemetryTest, NestedAndRecursiveSpansBalancePerThread) {
  trace::enable_events("", 1 << 12);  // capture only, no at-exit flush

  std::function<void(int)> recurse = [&](int depth) {
    NVM_TRACE_SPAN("test/events/recursive");
    if (depth > 0) recurse(depth - 1);
  };
  {
    NVM_TRACE_SPAN("test/events/outer");
    {
      NVM_TRACE_SPAN("test/events/inner");
    }
    recurse(3);
  }
  trace::disable_events();

  bool checked = false;
  for (const trace::ThreadEvents& te : trace::events_snapshot()) {
    if (te.events.empty()) continue;
    checked = true;
    std::vector<const char*> stack;
    std::uint64_t last_ts = 0;
    for (const trace::Event& e : te.events) {
      EXPECT_GE(e.ts_ns, last_ts) << "per-thread timestamps must be monotone";
      last_ts = e.ts_ns;
      if (e.ph == 'B') {
        stack.push_back(e.name);
      } else {
        ASSERT_FALSE(stack.empty());
        EXPECT_STREQ(stack.back(), e.name) << "E must close the open B";
        stack.pop_back();
      }
    }
    EXPECT_TRUE(stack.empty()) << "every B must have a matching E";
    EXPECT_EQ(te.dropped, 0u);
  }
  EXPECT_TRUE(checked) << "no thread captured any events";
}

TEST_F(TelemetryTest, MultiThreadedCaptureStaysBalancedPerThread) {
  trace::enable_events("", 1 << 12);
  ThreadPool pool(3);
  pool.parallel_for(64, [&](std::int64_t) {
    NVM_TRACE_SPAN("test/events/worker");
    NVM_TRACE_SPAN("test/events/worker_inner");
  });
  trace::disable_events();

  std::size_t total = 0;
  for (const trace::ThreadEvents& te : trace::events_snapshot()) {
    std::int64_t depth = 0;
    std::uint64_t last_ts = 0;
    for (const trace::Event& e : te.events) {
      EXPECT_GE(e.ts_ns, last_ts);
      last_ts = e.ts_ns;
      depth += e.ph == 'B' ? 1 : -1;
      EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    total += te.events.size();
  }
  EXPECT_EQ(total, 2u * 2u * 64u);  // 64 iterations x 2 spans x (B+E)
}

TEST_F(TelemetryTest, TinyRingDropsOldestButExportStaysWellFormed) {
  trace::enable_events("", 8);  // room for 4 B/E pairs
  for (int i = 0; i < 50; ++i) {
    NVM_TRACE_SPAN("test/events/churn");
  }
  trace::disable_events();

  bool found = false;
  for (const trace::ThreadEvents& te : trace::events_snapshot()) {
    if (te.events.empty()) continue;
    found = true;
    EXPECT_GT(te.dropped, 0u);
    std::int64_t depth = 0;
    for (const trace::Event& e : te.events) {
      depth += e.ph == 'B' ? 1 : -1;
      ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0) << "balanced even after ring overwrites";
  }
  EXPECT_TRUE(found);
  EXPECT_GT(metrics::counter("trace/events_dropped").value(), 0u);
}

TEST_F(TelemetryTest, FlushWritesValidChromeTraceJson) {
  const std::string path = temp_path("nvm_test_trace_events.json");
  std::remove(path.c_str());
  trace::enable_events("", 1 << 12);
  {
    NVM_TRACE_SPAN("test/events/flush_outer");
    NVM_TRACE_SPAN("test/events/flush_inner");
  }
  trace::disable_events();
  ASSERT_TRUE(trace::flush_events(path));

  const std::string json = slurp(path);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("test/events/flush_outer"), std::string::npos);
  // Every begin has an end in the exported stream.
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"B\""),
            count_occurrences(json, "\"ph\": \"E\""));
  EXPECT_GT(count_occurrences(json, "\"ph\": \"B\""), 0u);
  // Crash-safe publish: no .tmp litter next to the output.
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST_F(TelemetryTest, SolverOutputsBitIdenticalWithEventsOnOrOff) {
  const xbar::CrossbarConfig cfg = xbar::xbar_32x32_100k();
  auto model = std::make_shared<xbar::FastNoiseModel>(cfg);
  Rng rng(11);
  Tensor w = Tensor::normal({8, 48}, 0, 0.1f, rng);
  Tensor x = Tensor::uniform({48, 5}, 0, 1, rng);

  puma::TiledMatrix tiled_off(w, model, puma::HwConfig{});
  const Tensor y_off = tiled_off.matmul(x, 1.0f);

  trace::enable_events("", 1 << 12);
  puma::TiledMatrix tiled_on(w, model, puma::HwConfig{});
  const Tensor y_on = tiled_on.matmul(x, 1.0f);
  trace::disable_events();

  ASSERT_EQ(y_on.numel(), y_off.numel());
  for (std::int64_t i = 0; i < y_on.numel(); ++i)
    ASSERT_EQ(y_on[i], y_off[i]) << "event capture must not perturb results";
}

// ---------------------------------------------------------------------------
// Serve stage breakdown

TEST_F(TelemetryTest, ServeRepliesCarryStageBreakdownAndBitIdentity) {
  const xbar::CrossbarConfig cfg = xbar::xbar_32x32_100k();
  auto model = std::make_shared<xbar::FastNoiseModel>(cfg);
  Rng rng(7);
  Tensor w = Tensor::normal({4, 24}, 0, 0.2f, rng);
  serve::TiledLinearBackend backend(w, model, puma::HwConfig{}, 1.0f);

  std::vector<Tensor> xs;
  for (int i = 0; i < 6; ++i)
    xs.push_back(Tensor::uniform({24}, 0, 1, rng));

  const auto run = [&](bool events) {
    if (events) trace::enable_events("", 1 << 12);
    serve::ServeOptions opt;
    opt.max_batch = 4;
    opt.flush_us = 0;
    serve::Server server(backend, opt);
    std::vector<serve::Reply> replies;
    for (const Tensor& x : xs) replies.push_back(server.classify(x));
    server.drain();
    if (events) trace::disable_events();
    return replies;
  };

  const std::uint64_t form0 =
      metrics::histogram("serve/stage/batch_form_ns").count();
  const std::vector<serve::Reply> off = run(false);
  const std::vector<serve::Reply> on = run(true);

  ASSERT_EQ(off.size(), on.size());
  for (std::size_t i = 0; i < off.size(); ++i) {
    ASSERT_EQ(off[i].status, serve::ReplyStatus::Ok);
    EXPECT_EQ(off[i].label, on[i].label);
    for (std::int64_t j = 0; j < off[i].logits.numel(); ++j)
      ASSERT_EQ(off[i].logits[j], on[i].logits[j]);
    // Stage timings tile the request's server-side life: all finite and
    // non-negative, queue stage mirroring the legacy queue_ns field.
    EXPECT_GE(on[i].stages.queue_wait_ns, 0.0);
    EXPECT_DOUBLE_EQ(on[i].stages.queue_wait_ns, on[i].queue_ns);
    EXPECT_GT(on[i].stages.batch_form_ns, 0.0);
    EXPECT_GT(on[i].stages.matmul_ns, 0.0);
    EXPECT_GE(on[i].stages.epilogue_ns, 0.0);
  }
  // Stage histograms observed once per Ok request across both runs.
  EXPECT_EQ(metrics::histogram("serve/stage/batch_form_ns").count() - form0,
            2 * xs.size());
}

// ---------------------------------------------------------------------------
// atomic_write_file

TEST_F(TelemetryTest, AtomicWriteFileWritesAndOverwrites) {
  const std::string path = temp_path("nvm_test_atomic_write.txt");
  std::remove(path.c_str());
  ASSERT_TRUE(atomic_write_file(path, std::string_view("hello ")));
  EXPECT_EQ(slurp(path), "hello ");
  const std::string_view parts[] = {"hello ", "world"};
  ASSERT_TRUE(atomic_write_file(path, parts));
  EXPECT_EQ(slurp(path), "hello world");
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST_F(TelemetryTest, AtomicWriteFileFailureLeavesNothingBehind) {
  const std::string dir = temp_path("nvm_test_atomic_missing_dir");
  fs::remove_all(dir);
  const std::string path = dir + "/out.txt";
  EXPECT_FALSE(atomic_write_file(path, std::string_view("data")));
  EXPECT_FALSE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

// ---------------------------------------------------------------------------
// Span-stat merge

TEST_F(TelemetryTest, SpanStatsMergeIsAssociative) {
  const trace::SpanStats a{3, 300, 50, 150};
  const trace::SpanStats b{1, 10, 10, 10};
  const trace::SpanStats c{5, 1000, 100, 400};

  auto merged = [](trace::SpanStats x, const trace::SpanStats& y) {
    x.merge(y);
    return x;
  };
  const trace::SpanStats left = merged(merged(a, b), c);
  const trace::SpanStats right = merged(a, merged(b, c));
  EXPECT_EQ(left.count, right.count);
  EXPECT_EQ(left.total_ns, right.total_ns);
  EXPECT_EQ(left.min_ns, right.min_ns);
  EXPECT_EQ(left.max_ns, right.max_ns);
  EXPECT_EQ(left.count, 9u);
  EXPECT_EQ(left.min_ns, 10u);
  EXPECT_EQ(left.max_ns, 400u);

  // Zero stats are the identity on both sides.
  const trace::SpanStats zero;
  EXPECT_EQ(merged(zero, a).count, a.count);
  EXPECT_EQ(merged(a, zero).total_ns, a.total_ns);
}

}  // namespace
}  // namespace nvm

// Deployment-semantics tests: compensation paths, state restoration under
// every option combination, and interaction with defenses.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"

#include "defense/defenses.h"
#include "nn/resnet.h"
#include "nn/trainer.h"
#include "puma/hw_network.h"
#include "test_util.h"
#include "xbar/fast_noise.h"

namespace nvm {
namespace {

struct Fixture {
  std::vector<Tensor> images;
  std::vector<std::int64_t> labels;
  nn::Network net;
  std::shared_ptr<xbar::FastNoiseModel> model;
};

Fixture& fixture() {
  static Fixture* f = [] {
    Rng rng(61);
    auto* fx = new Fixture{{}, {}, [] {
                             Rng r(62);
                             nn::ResnetCifarSpec spec;
                             spec.blocks_per_stage = 1;
                             spec.widths = {4, 8, 8};
                             spec.num_classes = 2;
                             return nn::make_resnet_cifar(spec, r);
                           }(),
                           nullptr};
    testutil::make_orientation_toy(fx->images, fx->labels, 40, rng);
    nn::train(fx->net, fx->images, fx->labels, testutil::toy_train_config());
    // FastNoise (not GENIEx) keeps these tests fast and fit-free.
    fx->model = std::make_shared<xbar::FastNoiseModel>(xbar::xbar_32x32_100k());
    return fx;
  }();
  return *f;
}

std::vector<Tensor> calib() {
  Fixture& f = fixture();
  return {f.images.begin(), f.images.begin() + 6};
}

TEST(HwSemantics, GainTrimReportsPerLayerGains) {
  Fixture& f = fixture();
  puma::HwConfig hw;
  hw.gain_trim = true;
  puma::HwDeployment dep(f.net, f.model, calib(), hw);
  ASSERT_EQ(dep.stats().output_gains.size(),
            static_cast<std::size_t>(dep.stats().mvm_layers));
  for (float g : dep.stats().output_gains) {
    EXPECT_GE(g, 0.5f);
    EXPECT_LE(g, 2.0f);
  }
}

TEST(HwSemantics, GainTrimImprovesAgreementWithDigital) {
  Fixture& f = fixture();
  Tensor x = f.images[3];
  Tensor digital = f.net.forward(x, nn::Mode::Eval);
  float err_plain, err_trim;
  {
    puma::HwDeployment dep(f.net, f.model, calib());
    err_plain = max_abs_diff(f.net.forward(x, nn::Mode::Eval), digital);
  }
  {
    puma::HwConfig hw;
    hw.gain_trim = true;
    puma::HwDeployment dep(f.net, f.model, calib(), hw);
    err_trim = max_abs_diff(f.net.forward(x, nn::Mode::Eval), digital);
  }
  EXPECT_LT(err_trim, err_plain);
}

class RestoreUnderOptions
    : public ::testing::TestWithParam<std::pair<bool, bool>> {};

TEST_P(RestoreUnderOptions, DeploymentAlwaysRestoresExactly) {
  const auto [trim, reest] = GetParam();
  Fixture& f = fixture();
  Tensor x = f.images[5];
  Tensor before = f.net.forward(x, nn::Mode::Eval);
  {
    puma::HwConfig hw;
    hw.gain_trim = trim;
    hw.bn_reestimate = reest;
    puma::HwDeployment dep(f.net, f.model, calib(), hw);
    (void)f.net.forward(x, nn::Mode::Eval);
  }
  Tensor after = f.net.forward(x, nn::Mode::Eval);
  EXPECT_EQ(max_abs_diff(before, after), 0.0f)
      << "trim=" << trim << " reest=" << reest;
}

INSTANTIATE_TEST_SUITE_P(OptionGrid, RestoreUnderOptions,
                         ::testing::Values(std::pair{false, false},
                                           std::pair{true, false},
                                           std::pair{false, true},
                                           std::pair{true, true}));

TEST(HwSemantics, BnReestimationChangesRunningStatsDuringDeployment) {
  Fixture& f = fixture();
  nn::BatchNorm2d* bn = nullptr;
  nn::visit_layers(f.net.root(), [&](nn::Layer& l) {
    if (bn == nullptr) bn = dynamic_cast<nn::BatchNorm2d*>(&l);
  });
  ASSERT_NE(bn, nullptr);
  Tensor mean_before = bn->running_mean();
  {
    puma::HwConfig hw;
    hw.bn_reestimate = true;
    puma::HwDeployment dep(f.net, f.model, calib(), hw);
    EXPECT_GT(max_abs_diff(mean_before, bn->running_mean()), 0.0f);
  }
  // Restored on teardown.
  EXPECT_EQ(max_abs_diff(mean_before, bn->running_mean()), 0.0f);
}

TEST(HwSemantics, DefenseHooksComposeWithDeployment) {
  Fixture& f = fixture();
  puma::HwDeployment dep(f.net, f.model, calib());
  auto sap = defense::attach_sap(f.net, defense::SapOptions{});
  // SAP on top of crossbar execution: still functional, still stochastic.
  Tensor a = f.net.forward(f.images[0], nn::Mode::Eval);
  Tensor b = f.net.forward(f.images[0], nn::Mode::Eval);
  EXPECT_GT(max_abs_diff(a, b), 0.0f);
  f.net.set_conv_eval_hooks(nullptr);
}

TEST(HwSemantics, EngineNameIdentifiesStack) {
  Fixture& f = fixture();
  puma::CrossbarMvmEngine engine(f.model, puma::HwConfig{}, 1.0f);
  EXPECT_NE(engine.name().find("32x32_100k"), std::string::npos);
  EXPECT_NE(engine.name().find("fast_noise"), std::string::npos);
}

TEST(HwSemantics, DeploymentAccuracyReasonableOnToyTask) {
  Fixture& f = fixture();
  const float ideal = nn::evaluate_accuracy(f.net, f.images, f.labels);
  puma::HwDeployment dep(f.net, f.model, calib());
  const float hw = nn::evaluate_accuracy(f.net, f.images, f.labels);
  EXPECT_GT(ideal, 90.0f);
  EXPECT_GT(hw, ideal - 20.0f);
}

TEST(HwSemantics, TwoSequentialDeploymentsAreIndependent) {
  Fixture& f = fixture();
  Tensor x = f.images[7];
  Tensor first, second;
  {
    puma::HwDeployment dep(f.net, f.model, calib());
    first = f.net.forward(x, nn::Mode::Eval);
  }
  {
    puma::HwDeployment dep(f.net, f.model, calib());
    second = f.net.forward(x, nn::Mode::Eval);
  }
  EXPECT_EQ(max_abs_diff(first, second), 0.0f);
}

}  // namespace
}  // namespace nvm

// Deployment-semantics tests: compensation paths, state restoration under
// every option combination, and interaction with defenses.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/thread_pool.h"

#include "core/evaluator.h"
#include "defense/defenses.h"
#include "nn/resnet.h"
#include "nn/trainer.h"
#include "puma/hw_network.h"
#include "test_util.h"
#include "xbar/circuit_solver.h"
#include "xbar/fast_noise.h"

namespace nvm {
namespace {

struct Fixture {
  std::vector<Tensor> images;
  std::vector<std::int64_t> labels;
  nn::Network net;
  std::shared_ptr<xbar::FastNoiseModel> model;
};

Fixture& fixture() {
  static Fixture* f = [] {
    Rng rng(61);
    auto* fx = new Fixture{{}, {}, [] {
                             Rng r(62);
                             nn::ResnetCifarSpec spec;
                             spec.blocks_per_stage = 1;
                             spec.widths = {4, 8, 8};
                             spec.num_classes = 2;
                             return nn::make_resnet_cifar(spec, r);
                           }(),
                           nullptr};
    testutil::make_orientation_toy(fx->images, fx->labels, 40, rng);
    nn::train(fx->net, fx->images, fx->labels, testutil::toy_train_config());
    // FastNoise (not GENIEx) keeps these tests fast and fit-free.
    fx->model = std::make_shared<xbar::FastNoiseModel>(xbar::xbar_32x32_100k());
    return fx;
  }();
  return *f;
}

std::vector<Tensor> calib() {
  Fixture& f = fixture();
  return {f.images.begin(), f.images.begin() + 6};
}

TEST(HwSemantics, GainTrimReportsPerLayerGains) {
  Fixture& f = fixture();
  puma::HwConfig hw;
  hw.gain_trim = true;
  puma::HwDeployment dep(f.net, f.model, calib(), hw);
  ASSERT_EQ(dep.stats().output_gains.size(),
            static_cast<std::size_t>(dep.stats().mvm_layers));
  for (float g : dep.stats().output_gains) {
    EXPECT_GE(g, 0.5f);
    EXPECT_LE(g, 2.0f);
  }
}

TEST(HwSemantics, GainTrimImprovesAgreementWithDigital) {
  Fixture& f = fixture();
  Tensor x = f.images[3];
  Tensor digital = f.net.forward(x, nn::Mode::Eval);
  float err_plain, err_trim;
  {
    puma::HwDeployment dep(f.net, f.model, calib());
    err_plain = max_abs_diff(f.net.forward(x, nn::Mode::Eval), digital);
  }
  {
    puma::HwConfig hw;
    hw.gain_trim = true;
    puma::HwDeployment dep(f.net, f.model, calib(), hw);
    err_trim = max_abs_diff(f.net.forward(x, nn::Mode::Eval), digital);
  }
  EXPECT_LT(err_trim, err_plain);
}

class RestoreUnderOptions
    : public ::testing::TestWithParam<std::pair<bool, bool>> {};

TEST_P(RestoreUnderOptions, DeploymentAlwaysRestoresExactly) {
  const auto [trim, reest] = GetParam();
  Fixture& f = fixture();
  Tensor x = f.images[5];
  Tensor before = f.net.forward(x, nn::Mode::Eval);
  {
    puma::HwConfig hw;
    hw.gain_trim = trim;
    hw.bn_reestimate = reest;
    puma::HwDeployment dep(f.net, f.model, calib(), hw);
    (void)f.net.forward(x, nn::Mode::Eval);
  }
  Tensor after = f.net.forward(x, nn::Mode::Eval);
  EXPECT_EQ(max_abs_diff(before, after), 0.0f)
      << "trim=" << trim << " reest=" << reest;
}

INSTANTIATE_TEST_SUITE_P(OptionGrid, RestoreUnderOptions,
                         ::testing::Values(std::pair{false, false},
                                           std::pair{true, false},
                                           std::pair{false, true},
                                           std::pair{true, true}));

TEST(HwSemantics, BnReestimationChangesRunningStatsDuringDeployment) {
  Fixture& f = fixture();
  nn::BatchNorm2d* bn = nullptr;
  nn::visit_layers(f.net.root(), [&](nn::Layer& l) {
    if (bn == nullptr) bn = dynamic_cast<nn::BatchNorm2d*>(&l);
  });
  ASSERT_NE(bn, nullptr);
  Tensor mean_before = bn->running_mean();
  {
    puma::HwConfig hw;
    hw.bn_reestimate = true;
    puma::HwDeployment dep(f.net, f.model, calib(), hw);
    EXPECT_GT(max_abs_diff(mean_before, bn->running_mean()), 0.0f);
  }
  // Restored on teardown.
  EXPECT_EQ(max_abs_diff(mean_before, bn->running_mean()), 0.0f);
}

TEST(HwSemantics, DefenseHooksComposeWithDeployment) {
  Fixture& f = fixture();
  puma::HwDeployment dep(f.net, f.model, calib());
  auto sap = defense::attach_sap(f.net, defense::SapOptions{});
  // SAP on top of crossbar execution: still functional, still stochastic.
  Tensor a = f.net.forward(f.images[0], nn::Mode::Eval);
  Tensor b = f.net.forward(f.images[0], nn::Mode::Eval);
  EXPECT_GT(max_abs_diff(a, b), 0.0f);
  f.net.set_conv_eval_hooks(nullptr);
}

TEST(HwSemantics, EngineNameIdentifiesStack) {
  Fixture& f = fixture();
  puma::CrossbarMvmEngine engine(f.model, puma::HwConfig{}, 1.0f);
  EXPECT_NE(engine.name().find("32x32_100k"), std::string::npos);
  EXPECT_NE(engine.name().find("fast_noise"), std::string::npos);
}

TEST(HwSemantics, DeploymentAccuracyReasonableOnToyTask) {
  Fixture& f = fixture();
  const float ideal = nn::evaluate_accuracy(f.net, f.images, f.labels);
  puma::HwDeployment dep(f.net, f.model, calib());
  const float hw = nn::evaluate_accuracy(f.net, f.images, f.labels);
  EXPECT_GT(ideal, 90.0f);
  EXPECT_GT(hw, ideal - 20.0f);
}

// ---- Parallel execution model: parallel == serial, bit for bit. --------

nn::Network make_toy_resnet(std::uint64_t seed) {
  Rng r(seed);
  nn::ResnetCifarSpec spec;
  spec.blocks_per_stage = 1;
  spec.widths = {4, 8, 8};
  spec.num_classes = 2;
  return nn::make_resnet_cifar(spec, r);
}

/// Weight-exact clone of the fixture network (round-trip through the
/// binary serializer), giving the replica overloads an independent layer
/// tree with identical parameters and BN statistics.
nn::Network clone_fixture_net() {
  Fixture& f = fixture();
  nn::Network copy = make_toy_resnet(62);
  std::stringstream buf;
  BinaryWriter w(buf);
  f.net.save(w);
  BinaryReader r(buf);
  copy.load(r);
  return copy;
}

TEST(HwSemantics, TiledMatmulBitIdenticalAcrossThreadCounts) {
  Rng rng(97);
  Tensor w = Tensor::normal({40, 70}, 0.0f, 0.2f, rng);  // 2x3 tile grid
  Tensor x = Tensor::uniform({70, 9}, 0.0f, 1.0f, rng);
  auto model = std::make_shared<xbar::FastNoiseModel>(xbar::xbar_32x32_100k());
  puma::TiledMatrix tiled(w, model, puma::HwConfig{});

  ThreadPool serial(1), wide(4);
  Tensor r_serial, r_wide;
  {
    ThreadPool::ScopedUse use(serial);
    r_serial = tiled.matmul(x, 1.0f);
  }
  {
    ThreadPool::ScopedUse use(wide);
    r_wide = tiled.matmul(x, 1.0f);
  }
  EXPECT_EQ(max_abs_diff(r_serial, r_wide), 0.0f);
}

TEST(HwSemantics, SolverBatchBitIdenticalAcrossThreadCounts) {
  xbar::CrossbarConfig cfg = xbar::xbar_32x32_100k();
  cfg.rows = cfg.cols = 16;
  xbar::CircuitSolverModel model(cfg);
  Rng rng(98);
  auto programmed = model.program(Tensor::uniform(
      {16, 16}, static_cast<float>(cfg.g_off()), static_cast<float>(cfg.g_on()),
      rng));
  Tensor vb = Tensor::uniform({16, 7}, 0.0f,
                              static_cast<float>(cfg.v_read), rng);

  ThreadPool serial(1), wide(4);
  Tensor r_serial, r_wide;
  {
    ThreadPool::ScopedUse use(serial);
    r_serial = programmed->mvm_batch(vb);
  }
  {
    ThreadPool::ScopedUse use(wide);
    r_wide = programmed->mvm_batch(vb);
  }
  EXPECT_EQ(max_abs_diff(r_serial, r_wide), 0.0f);
}

TEST(HwSemantics, ParallelAccuracyMatchesSerialExactly) {
  Fixture& f = fixture();
  nn::Network replica_net = clone_fixture_net();
  const core::ForwardFn fns[] = {core::plain_forward(f.net),
                                 core::plain_forward(replica_net)};

  const float serial = core::accuracy(fns[0], f.images, f.labels);
  ThreadPool wide(4);
  ThreadPool::ScopedUse use(wide);
  const float parallel = core::accuracy(std::span<const core::ForwardFn>(fns),
                                        f.images, f.labels);
  EXPECT_EQ(serial, parallel);
}

TEST(HwSemantics, ParallelPgdCraftingMatchesSerialExactly) {
  Fixture& f = fixture();
  nn::Network replica_net = clone_fixture_net();
  attack::NetworkAttackModel a0(f.net), a1(replica_net);

  attack::PgdOptions opt;
  opt.iters = 3;  // enough to exercise seeding + gradient path
  const std::span<const Tensor> images(f.images.data(), 10);
  const std::span<const std::int64_t> labels(f.labels.data(), 10);

  const std::vector<Tensor> serial = core::craft_pgd(a0, images, labels, opt);
  attack::AttackModel* attackers[] = {&a0, &a1};
  ThreadPool wide(4);
  ThreadPool::ScopedUse use(wide);
  const std::vector<Tensor> parallel = core::craft_pgd(
      std::span<attack::AttackModel* const>(attackers), images, labels, opt);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(max_abs_diff(serial[i], parallel[i]), 0.0f) << "image " << i;
}

TEST(HwSemantics, TwoSequentialDeploymentsAreIndependent) {
  Fixture& f = fixture();
  Tensor x = f.images[7];
  Tensor first, second;
  {
    puma::HwDeployment dep(f.net, f.model, calib());
    first = f.net.forward(x, nn::Mode::Eval);
  }
  {
    puma::HwDeployment dep(f.net, f.model, calib());
    second = f.net.forward(x, nn::Mode::Eval);
  }
  EXPECT_EQ(max_abs_diff(first, second), 0.0f);
}

}  // namespace
}  // namespace nvm

// CIFAR binary-format loader tests against synthesized record streams.
#include <gtest/gtest.h>

#include <sstream>

#include "common/check.h"
#include "data/cifar_loader.h"

namespace nvm::data {
namespace {

/// Builds a CIFAR-10-format record with a solid pixel value.
std::string make_record10(unsigned char label, unsigned char pixel) {
  std::string rec(1 + 3072, static_cast<char>(pixel));
  rec[0] = static_cast<char>(label);
  return rec;
}

std::string make_record100(unsigned char coarse, unsigned char fine,
                           unsigned char pixel) {
  std::string rec(2 + 3072, static_cast<char>(pixel));
  rec[0] = static_cast<char>(coarse);
  rec[1] = static_cast<char>(fine);
  return rec;
}

TEST(CifarLoader, ParsesCifar10Records) {
  std::stringstream ss(make_record10(3, 255) + make_record10(7, 0) +
                       make_record10(0, 128));
  CifarBatch batch = load_cifar(ss, CifarFormat::kCifar10);
  ASSERT_EQ(batch.images.size(), 3u);
  EXPECT_EQ(batch.labels, (std::vector<std::int64_t>{3, 7, 0}));
  EXPECT_EQ(batch.images[0].shape(), (Shape{3, 32, 32}));
  EXPECT_FLOAT_EQ(batch.images[0][0], 1.0f);
  EXPECT_FLOAT_EQ(batch.images[1][0], 0.0f);
  EXPECT_NEAR(batch.images[2][0], 128.0f / 255.0f, 1e-6f);
}

TEST(CifarLoader, Cifar100FineAndCoarseLabels) {
  std::stringstream fine_ss(make_record100(5, 42, 10));
  CifarBatch fine = load_cifar(fine_ss, CifarFormat::kCifar100Fine);
  ASSERT_EQ(fine.labels.size(), 1u);
  EXPECT_EQ(fine.labels[0], 42);

  std::stringstream coarse_ss(make_record100(5, 42, 10));
  CifarBatch coarse = load_cifar(coarse_ss, CifarFormat::kCifar100Coarse);
  EXPECT_EQ(coarse.labels[0], 5);
}

TEST(CifarLoader, MaxRecordsLimits) {
  std::stringstream ss(make_record10(1, 1) + make_record10(2, 2) +
                       make_record10(3, 3));
  CifarBatch batch = load_cifar(ss, CifarFormat::kCifar10, 2);
  EXPECT_EQ(batch.images.size(), 2u);
}

TEST(CifarLoader, TruncatedRecordThrows) {
  std::string partial = make_record10(1, 1);
  partial.resize(partial.size() - 100);
  std::stringstream ss(partial);
  EXPECT_THROW(load_cifar(ss, CifarFormat::kCifar10), CheckError);
}

TEST(CifarLoader, OutOfRangeLabelThrows) {
  std::stringstream ss(make_record10(11, 1));  // CIFAR-10 labels are 0..9
  EXPECT_THROW(load_cifar(ss, CifarFormat::kCifar10), CheckError);
}

TEST(CifarLoader, EmptyStreamGivesEmptyBatch) {
  std::stringstream ss;
  CifarBatch batch = load_cifar(ss, CifarFormat::kCifar10);
  EXPECT_TRUE(batch.images.empty());
}

TEST(CifarLoader, MissingFileThrows) {
  EXPECT_THROW(load_cifar_file("/nonexistent/cifar.bin",
                               CifarFormat::kCifar10),
               CheckError);
}

TEST(CifarLoader, PlanarChannelLayout) {
  // First 1024 bytes are the R plane: make R=200, G=100, B=50.
  std::string rec(1 + 3072, '\0');
  rec[0] = 2;
  for (int i = 0; i < 1024; ++i) {
    rec[1 + i] = static_cast<char>(200);
    rec[1 + 1024 + i] = static_cast<char>(100);
    rec[1 + 2048 + i] = static_cast<char>(50);
  }
  std::stringstream ss(rec);
  CifarBatch batch = load_cifar(ss, CifarFormat::kCifar10);
  ASSERT_EQ(batch.images.size(), 1u);
  EXPECT_NEAR(batch.images[0].at(0, 16, 16), 200.0f / 255, 1e-6f);
  EXPECT_NEAR(batch.images[0].at(1, 16, 16), 100.0f / 255, 1e-6f);
  EXPECT_NEAR(batch.images[0].at(2, 16, 16), 50.0f / 255, 1e-6f);
}

}  // namespace
}  // namespace nvm::data

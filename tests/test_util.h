// Shared helpers for tests that need a quickly-learnable toy task.
//
// The task must be separable by *spatial pattern*, not global brightness:
// per-example BatchNorm statistics remove each image's mean, so a
// mean-brightness task is unlearnable by construction. Class 0 is a
// horizontal ramp, class 1 a vertical ramp.
#pragma once

#include <algorithm>
#include <vector>

#include "nn/trainer.h"

namespace nvm::testutil {

inline void make_orientation_toy(std::vector<Tensor>& images,
                                 std::vector<std::int64_t>& labels, int n,
                                 Rng& rng, std::int64_t hw = 8,
                                 float noise = 0.08f) {
  for (int i = 0; i < n; ++i) {
    const std::int64_t label = i % 2;
    Tensor img({3, hw, hw});
    for (std::int64_t c = 0; c < 3; ++c)
      for (std::int64_t y = 0; y < hw; ++y)
        for (std::int64_t x = 0; x < hw; ++x) {
          const double ramp =
              static_cast<double>(label == 0 ? x : y) / (hw - 1) - 0.5;
          img.at(c, y, x) = static_cast<float>(std::clamp(
              0.5 + 0.4 * ramp + rng.normal(0.0, noise), 0.0, 1.0));
        }
    images.push_back(std::move(img));
    labels.push_back(label);
  }
}

/// Training config sized for ~50-image toys: small batches so the
/// optimizer takes enough steps to converge reliably.
inline nn::TrainConfig toy_train_config() {
  nn::TrainConfig tc;
  tc.epochs = 15;
  tc.batch_size = 8;
  tc.sgd.lr = 0.05f;
  return tc;
}

}  // namespace nvm::testutil

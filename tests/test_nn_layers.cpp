// Gradient checks: every layer's backward() is validated against central
// finite differences of its forward(), for both input gradients and
// parameter gradients. The scalar objective is a fixed random linear
// functional of the layer output.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv.h"
#include "nn/linear.h"
#include "nn/pool.h"
#include "nn/sequential.h"

namespace nvm::nn {
namespace {

/// L(x) = sum_i c_i * layer(x)_i for a fixed random c.
class LossProbe {
 public:
  LossProbe(Layer& layer, const Shape& out_shape, Mode mode, Rng& rng)
      : layer_(layer), mode_(mode),
        c_(Tensor::normal(out_shape, 0.0f, 1.0f, rng)) {}

  float value(const Tensor& x) {
    Tensor y = layer_.forward(x, mode_);
    double acc = 0;
    for (std::int64_t i = 0; i < y.numel(); ++i) acc += double(y[i]) * c_[i];
    return static_cast<float>(acc);
  }

  /// Analytic input gradient; parameter grads accumulate in the layer.
  Tensor input_grad(const Tensor& x) {
    (void)layer_.forward(x, mode_);
    return layer_.backward(c_);
  }

 private:
  Layer& layer_;
  Mode mode_;
  Tensor c_;
};

void expect_grad_close(const Tensor& analytic, const Tensor& numeric,
                       float tol, const std::string& what) {
  ASSERT_TRUE(analytic.same_shape(numeric)) << what;
  const float scale = std::max(1.0f, numeric.abs_max());
  for (std::int64_t i = 0; i < analytic.numel(); ++i)
    EXPECT_NEAR(analytic[i], numeric[i], tol * scale)
        << what << " element " << i;
}

/// Central-difference input gradient.
Tensor numeric_input_grad(LossProbe& probe, Tensor x, float h = 1e-3f) {
  Tensor g(x.shape());
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const float orig = x[i];
    x[i] = orig + h;
    const float up = probe.value(x);
    x[i] = orig - h;
    const float down = probe.value(x);
    x[i] = orig;
    g[i] = (up - down) / (2 * h);
  }
  return g;
}

/// Central-difference gradient for one parameter tensor.
Tensor numeric_param_grad(LossProbe& probe, const Tensor& x, Tensor& p,
                          float h = 1e-3f) {
  Tensor g(p.shape());
  for (std::int64_t i = 0; i < p.numel(); ++i) {
    const float orig = p[i];
    p[i] = orig + h;
    const float up = probe.value(x);
    p[i] = orig - h;
    const float down = probe.value(x);
    p[i] = orig;
    g[i] = (up - down) / (2 * h);
  }
  return g;
}

void check_layer_gradients(Layer& layer, const Tensor& x, Mode mode,
                           float tol = 2e-2f) {
  Rng rng(99);
  Tensor probe_out = layer.forward(x, mode);
  LossProbe probe(layer, probe_out.shape(), mode, rng);

  for (Param* p : layer.params()) p->grad.fill(0.0f);
  Tensor gx = probe.input_grad(x);
  expect_grad_close(gx, numeric_input_grad(probe, x), tol, "input grad");

  for (std::size_t pi = 0; pi < layer.params().size(); ++pi) {
    Param* p = layer.params()[pi];
    Tensor num = numeric_param_grad(probe, x, p->value);
    expect_grad_close(p->grad, num, tol, "param " + std::to_string(pi));
  }
}

TEST(GradCheck, Conv2dBasic) {
  Rng rng(1);
  Conv2d conv(2, 3, 3, 1, 1, rng);
  Tensor x = Tensor::normal({2, 5, 5}, 0, 1, rng);
  check_layer_gradients(conv, x, Mode::Train);
}

TEST(GradCheck, Conv2dStridedNoPad) {
  Rng rng(2);
  Conv2d conv(3, 2, 3, 2, 0, rng);
  Tensor x = Tensor::normal({3, 7, 7}, 0, 1, rng);
  check_layer_gradients(conv, x, Mode::Train);
}

TEST(GradCheck, Conv2dOneByOne) {
  Rng rng(3);
  Conv2d conv(4, 2, 1, 1, 0, rng);
  Tensor x = Tensor::normal({4, 4, 4}, 0, 1, rng);
  check_layer_gradients(conv, x, Mode::Train);
}

TEST(GradCheck, Linear) {
  Rng rng(4);
  Linear lin(6, 4, rng);
  Tensor x = Tensor::normal({6}, 0, 1, rng);
  check_layer_gradients(lin, x, Mode::Train);
}

TEST(GradCheck, ReLU) {
  Rng rng(5);
  ReLU relu;
  // Keep values away from the kink where finite differences are invalid.
  Tensor x = Tensor::normal({3, 4, 4}, 0, 1, rng);
  for (auto& v : x.data())
    if (std::abs(v) < 0.05f) v = 0.2f;
  check_layer_gradients(relu, x, Mode::Train);
}

TEST(GradCheck, BatchNormTrainMode) {
  Rng rng(6);
  BatchNorm2d bn(3);
  Tensor x = Tensor::normal({3, 4, 4}, 0.5f, 2.0f, rng);
  check_layer_gradients(bn, x, Mode::Train, 3e-2f);
}

TEST(GradCheck, BatchNormFrozenTrainMode) {
  Rng rng(7);
  BatchNorm2d bn(3);
  // Populate running stats, then freeze.
  Tensor warm = Tensor::normal({3, 4, 4}, 1.0f, 2.0f, rng);
  for (int i = 0; i < 10; ++i) (void)bn.forward(warm, Mode::Train);
  bn.set_frozen(true);
  Tensor x = Tensor::normal({3, 4, 4}, 0.5f, 1.5f, rng);
  check_layer_gradients(bn, x, Mode::Train);
}

TEST(GradCheck, BatchNormEvalInputGradOnly) {
  Rng rng(8);
  BatchNorm2d bn(2);
  Tensor warm = Tensor::normal({2, 3, 3}, 0.0f, 1.0f, rng);
  for (int i = 0; i < 10; ++i) (void)bn.forward(warm, Mode::Train);
  Tensor x = Tensor::normal({2, 3, 3}, 0, 1, rng);
  LossProbe probe(bn, x.shape(), Mode::Eval, rng);
  Tensor gx = probe.input_grad(x);
  expect_grad_close(gx, numeric_input_grad(probe, x), 2e-2f, "bn eval dx");
}

TEST(GradCheck, GlobalAvgPool) {
  Rng rng(9);
  GlobalAvgPool pool;
  Tensor x = Tensor::normal({3, 4, 4}, 0, 1, rng);
  check_layer_gradients(pool, x, Mode::Train);
}

TEST(GradCheck, AvgPool2d) {
  Rng rng(10);
  AvgPool2d pool(2);
  Tensor x = Tensor::normal({2, 4, 6}, 0, 1, rng);
  check_layer_gradients(pool, x, Mode::Train);
}

TEST(GradCheck, Flatten) {
  Rng rng(11);
  Flatten flat;
  Tensor x = Tensor::normal({2, 3, 3}, 0, 1, rng);
  check_layer_gradients(flat, x, Mode::Train);
}

TEST(GradCheck, ResidualBlockIdentityShortcut) {
  Rng rng(12);
  ResidualBlock block(3, 3, 1, rng);
  Tensor x = Tensor::normal({3, 4, 4}, 0.5f, 1.0f, rng);
  check_layer_gradients(block, x, Mode::Train, 4e-2f);
}

TEST(GradCheck, ResidualBlockProjectionShortcut) {
  Rng rng(13);
  ResidualBlock block(2, 4, 2, rng);
  Tensor x = Tensor::normal({2, 6, 6}, 0.5f, 1.0f, rng);
  check_layer_gradients(block, x, Mode::Train, 4e-2f);
}

TEST(GradCheck, SequentialChain) {
  Rng rng(14);
  Sequential seq;
  seq.emplace<Conv2d>(2, 3, 3, 1, 1, rng);
  seq.emplace<ReLU>();
  seq.emplace<GlobalAvgPool>();
  seq.emplace<Linear>(3, 2, rng);
  Tensor x = Tensor::normal({2, 5, 5}, 0.5f, 1.0f, rng);
  check_layer_gradients(seq, x, Mode::Train, 3e-2f);
}

TEST(Layer, BackwardBeforeForwardThrows) {
  Rng rng(15);
  Conv2d conv(1, 1, 3, 1, 1, rng);
  EXPECT_THROW(conv.backward(Tensor({1, 3, 3})), CheckError);
}

TEST(Layer, EvalHookAppliedOnlyInEval) {
  ReLU relu;
  relu.set_eval_hook([](const Tensor& y) {
    Tensor out = y;
    out *= 2.0f;
    return out;
  });
  Tensor x({2}, {1.0f, -1.0f});
  Tensor train_out = relu.forward(x, Mode::Train);
  Tensor eval_out = relu.forward(x, Mode::Eval);
  EXPECT_EQ(train_out[0], 1.0f);
  EXPECT_EQ(eval_out[0], 2.0f);
}

TEST(Layer, CollectParamsWalksTree) {
  Rng rng(16);
  Sequential seq;
  seq.emplace<Conv2d>(1, 2, 3, 1, 1, rng);      // 1 param
  seq.emplace<BatchNorm2d>(2);                  // 2 params
  seq.emplace<ResidualBlock>(2, 2, 1, rng);     // 2 convs + 2 bns = 6 params
  EXPECT_EQ(collect_params(seq).size(), 9u);
}

}  // namespace
}  // namespace nvm::nn

// Quantization, bit-slicing, tiled crossbar GEMM, and engine tests.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"

#include <cmath>

#include "puma/bit_slicing.h"
#include "puma/engine.h"
#include "puma/quantize.h"
#include "tensor/ops.h"
#include "xbar/fast_noise.h"

namespace nvm::puma {
namespace {

TEST(QuantizeWeights, RoundTripWithinHalfStep) {
  Rng rng(1);
  Tensor w = Tensor::normal({8, 8}, 0, 0.3f, rng);
  for (std::int64_t bits : {4, 6, 8}) {
    QuantizedWeights q = quantize_weights(w, bits);
    for (std::int64_t i = 0; i < w.numel(); ++i) {
      EXPECT_LE(std::abs(q.q[i]), static_cast<float>(q.qmax));
      EXPECT_NEAR(q.q[i] * q.scale, w[i], q.scale * 0.5f + 1e-7f);
    }
  }
}

TEST(QuantizeWeights, ZeroTensorHandled) {
  Tensor w({3, 3});
  QuantizedWeights q = quantize_weights(w, 8);
  EXPECT_EQ(q.q.abs_max(), 0.0f);
  EXPECT_GT(q.scale, 0.0f);
}

TEST(QuantizeActivations, ClipsAndScales) {
  Tensor x({4}, {-0.1f, 0.0f, 0.5f, 2.0f});
  Tensor q = quantize_activations(x, 1.0f, 4);
  EXPECT_EQ(q[0], 0.0f);    // negative clipped
  EXPECT_EQ(q[2], 8.0f);    // 0.5 * 15 = 7.5 -> 8
  EXPECT_EQ(q[3], 15.0f);   // above-scale clipped to max
}

TEST(AdcQuantize, IdempotentAndMonotone) {
  const float fs = 1.0f;
  float prev = -1;
  for (float x = 0.0f; x <= 1.0f; x += 0.01f) {
    const float q = adc_quantize(x, fs, 6);
    EXPECT_EQ(adc_quantize(q, fs, 6), q);
    EXPECT_GE(q, prev);
    prev = q;
  }
  EXPECT_EQ(adc_quantize(-0.5f, fs, 6), 0.0f);
  EXPECT_EQ(adc_quantize(2.0f, fs, 6), 1.0f);
}

class BitSlicing : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(BitSlicing, ChunksReconstructValue) {
  const auto [value_bits, chunk_bits] = GetParam();
  const std::int64_t n_chunks = slice_count(value_bits, chunk_bits);
  Rng rng(3);
  const std::int64_t max_val = (std::int64_t{1} << value_bits) - 1;
  Tensor values({32});
  for (auto& v : values.data())
    v = static_cast<float>(rng.uniform_index(max_val + 1));
  Tensor recon({32});
  for (std::int64_t c = 0; c < n_chunks; ++c) {
    Tensor chunk = extract_chunk(values, c, chunk_bits);
    EXPECT_LE(chunk.max(), static_cast<float>((1 << chunk_bits) - 1));
    recon.add_scaled(chunk, chunk_weight(c, chunk_bits));
  }
  EXPECT_EQ(max_abs_diff(recon, values), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(Widths, BitSlicing,
                         ::testing::Values(std::pair{6, 3}, std::pair{8, 4},
                                           std::pair{7, 2}, std::pair{4, 1},
                                           std::pair{5, 5}));

TEST(BitSlicing, NegativeValueRejected) {
  Tensor v({1}, {-1.0f});
  EXPECT_THROW(extract_chunk(v, 0, 2), CheckError);
}

xbar::CrossbarConfig test_cfg() {
  xbar::CrossbarConfig cfg = xbar::xbar_32x32_100k();
  cfg.rows = cfg.cols = 16;
  return cfg;
}

struct TiledCase {
  std::int64_t m, k, n;
};

class TiledIdeal : public ::testing::TestWithParam<TiledCase> {};

// With an ideal crossbar model the tiled GEMM must reproduce the float
// GEMM up to weight/input/ADC quantization error.
TEST_P(TiledIdeal, ApproximatesFloatGemm) {
  const TiledCase p = GetParam();
  Rng rng(5);
  Tensor w = Tensor::normal({p.m, p.k}, 0, 0.2f, rng);
  Tensor x({p.k, p.n});
  for (auto& v : x.data())
    v = rng.bernoulli(0.4) ? 0.0f : static_cast<float>(rng.uniform(0, 1));

  auto model = std::make_shared<xbar::IdealXbarModel>(test_cfg());
  HwConfig hw;
  TiledMatrix tiled(w, model, hw);
  Tensor got = tiled.matmul(x);
  Tensor want = matmul(w, x);
  // Error budget: dominated by input/weight quantization.
  const float tol = 0.05f * want.abs_max() + 1e-4f;
  EXPECT_LT(max_abs_diff(got, want), tol)
      << p.m << "x" << p.k << "x" << p.n;
}

INSTANTIATE_TEST_SUITE_P(Shapes, TiledIdeal,
                         ::testing::Values(TiledCase{8, 12, 5},
                                           TiledCase{16, 16, 1},
                                           TiledCase{20, 40, 7},   // tiling both dims
                                           TiledCase{3, 100, 4},   // many row tiles
                                           TiledCase{33, 9, 2}));  // col tiles

TEST(Tiled, ZeroInputGivesZeroOutput) {
  Rng rng(6);
  Tensor w = Tensor::normal({4, 8}, 0, 1, rng);
  auto model = std::make_shared<xbar::IdealXbarModel>(test_cfg());
  TiledMatrix tiled(w, model, HwConfig{});
  Tensor out = tiled.matmul(Tensor({8, 3}));
  EXPECT_EQ(out.abs_max(), 0.0f);
}

TEST(Tiled, NegativeInputRejected) {
  Rng rng(7);
  Tensor w = Tensor::normal({4, 8}, 0, 1, rng);
  auto model = std::make_shared<xbar::IdealXbarModel>(test_cfg());
  TiledMatrix tiled(w, model, HwConfig{});
  Tensor x = Tensor::full({8, 2}, -0.5f);
  EXPECT_THROW(tiled.matmul(x), CheckError);
}

TEST(Tiled, SkipZeroTilesIsExactForIdealModel) {
  Rng rng(8);
  // All-positive weights: every negative-polarity slice is empty.
  Tensor w = Tensor::uniform({6, 10}, 0.01f, 0.5f, rng);
  Tensor x = Tensor::uniform({10, 4}, 0.0f, 1.0f, rng);
  auto model = std::make_shared<xbar::IdealXbarModel>(test_cfg());
  HwConfig skip;
  HwConfig noskip;
  noskip.skip_zero_tiles = false;
  Tensor a = TiledMatrix(w, model, skip).matmul(x, 1.0f);
  Tensor b = TiledMatrix(w, model, noskip).matmul(x, 1.0f);
  // The no-skip path still ADC-quantizes the baseline-only currents of the
  // empty tiles, so it carries extra quantization noise; the skip path is
  // exactly zero there. They agree up to that ADC noise floor.
  EXPECT_LT(max_abs_diff(a, b), 0.03f * b.abs_max() + 1e-4f);
  EXPECT_LT(TiledMatrix(w, model, skip).programmed_tiles(),
            TiledMatrix(w, model, noskip).programmed_tiles());
}

TEST(Tiled, FixedInputScaleClipsAbove) {
  Rng rng(9);
  Tensor w = Tensor::uniform({2, 4}, 0.1f, 0.5f, rng);
  auto model = std::make_shared<xbar::IdealXbarModel>(test_cfg());
  TiledMatrix tiled(w, model, HwConfig{});
  Tensor x = Tensor::full({4, 1}, 2.0f);   // above the fixed scale
  Tensor clipped_in = Tensor::full({4, 1}, 1.0f);
  Tensor got = tiled.matmul(x, 1.0f);
  Tensor want = tiled.matmul(clipped_in, 1.0f);
  EXPECT_LT(max_abs_diff(got, want), 1e-6f);
}

TEST(Tiled, SliceBitsMustFitDeviceLevels) {
  xbar::CrossbarConfig cfg = test_cfg();
  cfg.levels = 4;  // 2 bits per device
  auto model = std::make_shared<xbar::IdealXbarModel>(cfg);
  HwConfig hw;
  hw.slice_bits = 3;
  Rng rng(10);
  Tensor w = Tensor::normal({2, 2}, 0, 1, rng);
  EXPECT_THROW(TiledMatrix(w, model, hw), CheckError);
}

TEST(HwConfig, SliceAndStreamCounts) {
  HwConfig hw;
  hw.weight_bits = 7;
  hw.slice_bits = 3;
  hw.input_bits = 6;
  hw.stream_bits = 3;
  EXPECT_EQ(hw.weight_slices(), 2);  // 6 magnitude bits / 3
  EXPECT_EQ(hw.input_streams(), 2);
  hw.slice_bits = 4;
  EXPECT_EQ(hw.weight_slices(), 2);  // ceil(6/4)
}

TEST(Engine, ProgramsLazilyAndDetectsWeightMutation) {
  Rng rng(11);
  auto model = std::make_shared<xbar::IdealXbarModel>(test_cfg());
  CrossbarMvmEngine engine(model, HwConfig{}, 1.0f);
  EXPECT_EQ(engine.programmed_tiles(), 0);
  Tensor w = Tensor::uniform({4, 6}, -0.5f, 0.5f, rng);
  Tensor x = Tensor::uniform({6, 2}, 0.0f, 1.0f, rng);
  (void)engine.matmul(w, x);
  EXPECT_GT(engine.programmed_tiles(), 0);
  w[0] += 1.0f;  // same storage, changed contents
  EXPECT_THROW(engine.matmul(w, x), CheckError);
}

TEST(Engine, RecordingEngineTracksMaxInput) {
  RecordingMvmEngine rec;
  Rng rng(12);
  Tensor w = Tensor::normal({2, 3}, 0, 1, rng);
  (void)rec.matmul(w, Tensor({3, 1}, {0.1f, 0.9f, 0.3f}));
  (void)rec.matmul(w, Tensor({3, 1}, {0.2f, 0.4f, 0.5f}));
  EXPECT_EQ(rec.max_input(), 0.9f);
}

TEST(Engine, GainTrimNearUnityForIdealModel) {
  Rng rng(13);
  auto model = std::make_shared<xbar::IdealXbarModel>(test_cfg());
  CrossbarMvmEngine engine(model, HwConfig{}, 1.0f);
  Tensor w = Tensor::uniform({4, 6}, -0.5f, 0.5f, rng);
  engine.begin_gain_calibration();
  for (int i = 0; i < 4; ++i) {
    Tensor x = Tensor::uniform({6, 3}, 0.0f, 1.0f, rng);
    (void)engine.matmul(w, x);
  }
  engine.finish_gain_calibration();
  EXPECT_NEAR(engine.output_gain(), 1.0f, 0.02f);
}

TEST(Engine, GainTrimCompensatesFastNoiseLoss) {
  Rng rng(14);
  auto model = std::make_shared<xbar::FastNoiseModel>(test_cfg());
  CrossbarMvmEngine engine(model, HwConfig{}, 1.0f);
  Tensor w = Tensor::uniform({4, 6}, 0.05f, 0.5f, rng);
  engine.begin_gain_calibration();
  for (int i = 0; i < 4; ++i) {
    Tensor x = Tensor::uniform({6, 3}, 0.2f, 1.0f, rng);
    (void)engine.matmul(w, x);
  }
  engine.finish_gain_calibration();
  // Parasitic current loss -> fitted digital gain above unity.
  EXPECT_GT(engine.output_gain(), 1.0f);
  EXPECT_LT(engine.output_gain(), 2.0f);
}

}  // namespace
}  // namespace nvm::puma

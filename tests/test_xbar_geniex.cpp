// GENIEx surrogate, fast-noise model, MLP regressor, and NF measurement.
#include <gtest/gtest.h>

#include "common/check.h"

#include <cmath>

#include "common/health.h"
#include "xbar/fast_noise.h"
#include "xbar/geniex.h"
#include "xbar/nf.h"

namespace nvm::xbar {
namespace {

CrossbarConfig small_config() {
  CrossbarConfig cfg = xbar_32x32_100k();
  cfg.rows = cfg.cols = 16;
  cfg.name = "16x16_test";
  return cfg;
}

/// One shared small fit for the whole test binary (training is the slow
/// part; tests only read it).
const GeniexFit& shared_fit() {
  static const GeniexFit fit = [] {
    GeniexTrainOptions opt;
    opt.solver_samples = 120;
    return GeniexModel::fit(small_config(), opt);
  }();
  return fit;
}

TEST(FastTanh, CloseToStdTanh) {
  for (float x = -6.0f; x <= 6.0f; x += 0.13f)
    EXPECT_NEAR(fast_tanh(x), std::tanh(x), 3e-3f) << "x=" << x;
  EXPECT_EQ(fast_tanh(10.0f), 1.0f);
  EXPECT_EQ(fast_tanh(-10.0f), -1.0f);
}

TEST(Mlp, LearnsQuadratic) {
  // y = x0^2 + 0.5*x1; a 2-16-1 tanh MLP fits this easily.
  Rng rng(1);
  const std::int64_t n = 512;
  Tensor x({n, 2});
  Tensor y({n});
  for (std::int64_t i = 0; i < n; ++i) {
    x.at(i, 0) = static_cast<float>(rng.uniform(-1, 1));
    x.at(i, 1) = static_cast<float>(rng.uniform(-1, 1));
    y[i] = x.at(i, 0) * x.at(i, 0) + 0.5f * x.at(i, 1);
  }
  MlpRegressor mlp(2, 16, rng);
  MlpTrainOptions opt;
  opt.epochs = 120;
  const float final_mse = mlp.train(x, y, opt);
  EXPECT_LT(final_mse, 3e-3f);
  EXPECT_LT(mlp.mse(x, y), 3e-3f);
}

TEST(Mlp, SaveLoadRoundTrip) {
  Rng rng(2);
  MlpRegressor mlp(4, 8, rng);
  std::stringstream ss;
  BinaryWriter w(ss);
  mlp.save(w);
  BinaryReader r(ss);
  MlpRegressor loaded = MlpRegressor::load(r);
  float feats[4] = {0.1f, -0.2f, 0.3f, 0.4f};
  EXPECT_EQ(mlp.predict({feats, 4}), loaded.predict({feats, 4}));
}

TEST(GeniexFeatures, ShapeAndRange) {
  CrossbarConfig cfg = small_config();
  Rng rng(3);
  Tensor g = sample_conductances(cfg, rng);
  Tensor v = sample_voltages(cfg, rng);
  Tensor f = geniex_features(cfg, g, v);
  EXPECT_EQ(f.dim(0), cfg.cols);
  EXPECT_EQ(f.dim(1), kGeniexFeatureCount);
  // Normalized features stay in a moderate range.
  EXPECT_LT(f.abs_max(), 3.0f);
}

TEST(GeniexFeatures, IdealCurrentFeatureIsExact) {
  CrossbarConfig cfg = small_config();
  Rng rng(4);
  Tensor g = sample_conductances(cfg, rng);
  Tensor v = sample_voltages(cfg, rng);
  Tensor f = geniex_features(cfg, g, v);
  Tensor iid = ideal_mvm(g, v);
  for (std::int64_t j = 0; j < cfg.cols; ++j)
    EXPECT_NEAR(f.at(j, 0), iid[j] / cfg.i_scale(), 1e-6f);
}

TEST(Geniex, FitGeneralizesToHeldOutSolverData) {
  // Validation MSE on the relative deviation target: a few percent RMS.
  EXPECT_LT(shared_fit().val_mse, 4e-4f);
}

TEST(Geniex, TracksSolverPerColumn) {
  CrossbarConfig cfg = small_config();
  GeniexModel model(cfg, shared_fit().mlp);
  Rng rng(5);
  double err = 0, scale = 0;
  for (int trial = 0; trial < 8; ++trial) {
    Tensor g = sample_conductances(cfg, rng);
    Tensor v = sample_voltages(cfg, rng);
    Tensor pred = model.program(g)->mvm(v);
    Tensor truth = solve_crossbar(cfg, {}, g, v);
    for (std::int64_t j = 0; j < cfg.cols; ++j) {
      err += std::abs(pred[j] - truth[j]);
      scale += std::abs(truth[j]);
    }
  }
  EXPECT_LT(err / scale, 0.05) << "mean relative error vs circuit solver";
}

TEST(Geniex, BatchedMatchesSingleVector) {
  CrossbarConfig cfg = small_config();
  GeniexModel model(cfg, shared_fit().mlp);
  Rng rng(6);
  Tensor g = sample_conductances(cfg, rng);
  auto programmed = model.program(g);
  const std::int64_t n = 5;
  Tensor vb({cfg.rows, n});
  for (std::int64_t k = 0; k < n; ++k) {
    Tensor v = sample_voltages(cfg, rng);
    for (std::int64_t i = 0; i < cfg.rows; ++i) vb.at(i, k) = v[i];
  }
  Tensor batched = programmed->mvm_batch(vb);
  for (std::int64_t k = 0; k < n; ++k) {
    Tensor v({cfg.rows});
    for (std::int64_t i = 0; i < cfg.rows; ++i) v[i] = vb.at(i, k);
    Tensor single = programmed->mvm(v);
    for (std::int64_t j = 0; j < cfg.cols; ++j)
      EXPECT_NEAR(single[j], batched.at(j, k), 1e-6f * cfg.i_scale());
  }
}

TEST(Geniex, ActiveRegionMatchesFullWhenPadded) {
  CrossbarConfig cfg = small_config();
  GeniexModel model(cfg, shared_fit().mlp);
  Rng rng(7);
  Tensor g = sample_conductances(cfg, rng);
  // Zero the voltages beyond row 10 — active evaluation must agree on the
  // first 12 columns.
  auto programmed = model.program(g);
  Tensor vb({cfg.rows, 3});
  for (std::int64_t i = 0; i < 10; ++i)
    for (std::int64_t k = 0; k < 3; ++k)
      vb.at(i, k) = static_cast<float>(rng.uniform(0, cfg.v_read));
  Tensor full = programmed->mvm_batch(vb);
  Tensor active = programmed->mvm_batch_active(vb, 10, 12);
  for (std::int64_t j = 0; j < 12; ++j)
    for (std::int64_t k = 0; k < 3; ++k)
      EXPECT_NEAR(full.at(j, k), active.at(j, k), 1e-7f * cfg.i_scale());
}

TEST(Geniex, OutputsPhysicallyClamped) {
  CrossbarConfig cfg = small_config();
  GeniexModel model(cfg, shared_fit().mlp);
  Rng rng(8);
  Tensor g = sample_conductances(cfg, rng);
  Tensor v = Tensor::full({cfg.rows}, static_cast<float>(cfg.v_read));
  Tensor out = model.program(g)->mvm(v);
  EXPECT_GE(out.min(), 0.0f);
  EXPECT_LE(out.max(), cfg.i_scale() * (1 + 1e-6));
}

TEST(Geniex, GuardFallsBackToFastNoiseOutsideEnvelope) {
  // An absurdly tight trust envelope forces every prediction out of
  // bounds: the guarded model must degrade to the fast-noise fallback
  // (bit-identical to evaluating it directly) and count the event —
  // graceful degradation, not a crash and not a silently-trusted output.
  CrossbarConfig cfg = small_config();
  GeniexGuardOptions tight;
  tight.rel_min = -1e-6f;
  tight.rel_max = 1e-6f;
  GeniexModel guarded(cfg, shared_fit().mlp, tight);
  FastNoiseModel fallback(cfg);
  Rng rng(21);
  Tensor g = sample_conductances(cfg, rng);
  Tensor v = sample_voltages(cfg, rng);
  const auto before = health_value(HealthCounter::SurrogateFallback);
  Tensor out = guarded.program(g)->mvm(v);
  EXPECT_GT(health_value(HealthCounter::SurrogateFallback), before);
  EXPECT_EQ(max_abs_diff(out, fallback.program(g)->mvm(v)), 0.0f);
}

TEST(Geniex, GuardIsQuietOnInDistributionInputs) {
  // The default envelope exists for driven-off-distribution inputs; on
  // the surrogate's own training distribution it must not fire.
  CrossbarConfig cfg = small_config();
  GeniexModel model(cfg, shared_fit().mlp);
  Rng rng(22);
  const auto before = health_value(HealthCounter::SurrogateFallback);
  for (int trial = 0; trial < 4; ++trial) {
    Tensor g = sample_conductances(cfg, rng);
    auto programmed = model.program(g);
    (void)programmed->mvm(sample_voltages(cfg, rng));
  }
  EXPECT_EQ(health_value(HealthCounter::SurrogateFallback), before);
}

TEST(Geniex, GuardDisabledMatchesDefaultOnNominalInputs) {
  CrossbarConfig cfg = small_config();
  GeniexGuardOptions off;
  off.enabled = false;
  GeniexModel unguarded(cfg, shared_fit().mlp, off);
  GeniexModel guarded(cfg, shared_fit().mlp);
  Rng rng(23);
  Tensor g = sample_conductances(cfg, rng);
  Tensor v = sample_voltages(cfg, rng);
  EXPECT_EQ(max_abs_diff(unguarded.program(g)->mvm(v),
                         guarded.program(g)->mvm(v)),
            0.0f);
}

TEST(Geniex, GuardRejectsInvertedEnvelope) {
  GeniexGuardOptions bad;
  bad.rel_min = 1.0f;
  bad.rel_max = 0.0f;
  EXPECT_THROW(GeniexModel(small_config(), shared_fit().mlp, bad),
               CheckError);
}

TEST(FastNoise, ReducesCurrentVsIdeal) {
  CrossbarConfig cfg = small_config();
  FastNoiseModel model(cfg);
  Rng rng(9);
  Tensor g = sample_conductances(cfg, rng);
  Tensor v = Tensor::full({cfg.rows}, static_cast<float>(cfg.v_read));
  Tensor out = model.program(g)->mvm(v);
  Tensor ideal = ideal_mvm(g, v);
  // At full drive, resistive losses dominate the sinh boost.
  EXPECT_LT(out.sum(), ideal.sum());
}

TEST(FastNoise, ApproximatesSolverCoarsely) {
  CrossbarConfig cfg = small_config();
  FastNoiseModel model(cfg);
  Rng rng(10);
  double err = 0, scale = 0;
  for (int trial = 0; trial < 6; ++trial) {
    Tensor g = sample_conductances(cfg, rng);
    Tensor v = sample_voltages(cfg, rng);
    Tensor pred = model.program(g)->mvm(v);
    Tensor truth = solve_crossbar(cfg, {}, g, v);
    for (std::int64_t j = 0; j < cfg.cols; ++j) {
      err += std::abs(pred[j] - truth[j]);
      scale += std::abs(truth[j]);
    }
  }
  EXPECT_LT(err / scale, 0.12);
}

TEST(Nf, IdealModelHasZeroNf) {
  IdealXbarModel model(small_config());
  NfOptions opt;
  opt.samples = 8;
  EXPECT_NEAR(measure_nf(model, opt).nf, 0.0, 1e-6);
}

TEST(Nf, SolverOrderingMatchesTableI) {
  NfOptions opt;
  opt.samples = 6;
  CircuitSolverModel m300(xbar_64x64_300k());
  CircuitSolverModel m32(xbar_32x32_100k());
  CircuitSolverModel m100(xbar_64x64_100k());
  const double nf300 = measure_nf(m300, opt).nf;
  const double nf32 = measure_nf(m32, opt).nf;
  const double nf100 = measure_nf(m100, opt).nf;
  EXPECT_LT(nf300, nf32);
  EXPECT_LT(nf32, nf100);
  EXPECT_GT(nf300, 0.0);
  EXPECT_NEAR(nf100, 0.26, 0.08);
}

TEST(Nf, DeterministicForSeed) {
  FastNoiseModel model(small_config());
  NfOptions opt;
  opt.samples = 4;
  EXPECT_EQ(measure_nf(model, opt).nf, measure_nf(model, opt).nf);
}

TEST(SampleGenerators, RespectPhysicalRanges) {
  CrossbarConfig cfg = small_config();
  Rng rng(11);
  for (int i = 0; i < 16; ++i) {
    Tensor g = sample_conductances(cfg, rng);
    EXPECT_GE(g.min(), cfg.g_off() * (1 - 1e-6));
    EXPECT_LE(g.max(), cfg.g_on() * (1 + 1e-6));
    Tensor v = sample_voltages(cfg, rng);
    EXPECT_GE(v.min(), 0.0f);
    EXPECT_LE(v.max(), cfg.v_read * (1 + 1e-6));
  }
}

}  // namespace
}  // namespace nvm::xbar

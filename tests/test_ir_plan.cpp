// Lazy IR capture, fused execution plans, and the strict double parser:
// hash-consing and graph-hash stability, interpreter-vs-plan bit-identity
// across every backend / wrapper / thread-count / ISA combination, plan
// descriptor caching (hit, recompute, corrupt-entry quarantine), and the
// parse_double/env_double contract that replaced raw std::stod in the CLI.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

#include "common/check.h"
#include "common/env.h"
#include "common/file_cache.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/simd.h"
#include "common/thread_pool.h"
#include "core/evaluator.h"
#include "nn/ir.h"
#include "nn/resnet.h"
#include "puma/plan.h"
#include "puma/tiled_mvm.h"
#include "xbar/fast_noise.h"
#include "xbar/fault.h"
#include "xbar/geniex.h"
#include "xbar/variation.h"

namespace nvm {
namespace {

// ---------------------------------------------------------------------------
// parse_double / env_double (the std::stod crash-fix sweep)
// ---------------------------------------------------------------------------

TEST(ParseDouble, AcceptsWellFormedNumbers) {
  double v = 0.0;
  EXPECT_TRUE(parse_double("0.25", &v));
  EXPECT_EQ(v, 0.25);
  EXPECT_TRUE(parse_double("-3e2", &v));
  EXPECT_EQ(v, -300.0);
  EXPECT_TRUE(parse_double("  7.5", &v));  // leading space: strtod skips
  EXPECT_EQ(v, 7.5);
  EXPECT_TRUE(parse_double("8.0 ", &v));  // trailing space tolerated
  EXPECT_EQ(v, 8.0);
}

TEST(ParseDouble, RejectsMalformedInputWithoutThrowing) {
  // Regression: these strings previously reached std::stod in the CLI
  // (flag_or / parse_list / fleet_param) and terminated the process with
  // an uncaught std::invalid_argument. The strict parser must report
  // failure instead of throwing.
  double v = 42.0;
  EXPECT_FALSE(parse_double("abc", &v));
  EXPECT_FALSE(parse_double("", &v));
  EXPECT_FALSE(parse_double(nullptr, &v));
  EXPECT_FALSE(parse_double("0.1x", &v));  // trailing junk (stod half-parses!)
  EXPECT_FALSE(parse_double("--2", &v));
  EXPECT_FALSE(parse_double("1e999", &v));  // ERANGE
  EXPECT_EQ(v, 42.0) << "failed parse must not clobber the output";
}

TEST(EnvDouble, FallsBackOnUnsetAndMalformed) {
  ::unsetenv("NVM_TEST_DBL");
  EXPECT_EQ(env_double("NVM_TEST_DBL", 1.5), 1.5);
  ::setenv("NVM_TEST_DBL", "2.75", 1);
  EXPECT_EQ(env_double("NVM_TEST_DBL", 1.5), 2.75);
  ::setenv("NVM_TEST_DBL", "not-a-number", 1);
  EXPECT_EQ(env_double("NVM_TEST_DBL", 1.5), 1.5);
  ::setenv("NVM_TEST_DBL", "3.5junk", 1);
  EXPECT_EQ(env_double("NVM_TEST_DBL", 1.5), 1.5);
  ::unsetenv("NVM_TEST_DBL");
}

// ---------------------------------------------------------------------------
// IR graph: hash-consing, scope exclusion, hash stability, shape cache
// ---------------------------------------------------------------------------

TEST(IrGraph, HashConsesStructurallyIdenticalNodes) {
  nn::ir::Graph g;
  const std::int64_t in = g.intern(nn::ir::Op::kInput, {}, {8}, "x");
  const std::int64_t a = g.intern(nn::ir::Op::kRelu, {in}, {}, "a");
  const std::int64_t b = g.intern(nn::ir::Op::kRelu, {in}, {}, "b");
  EXPECT_EQ(a, b) << "same (op, inputs, attrs) must intern to one node";
  EXPECT_EQ(g.size(), 2);
  // Different attrs or inputs stay distinct.
  const std::int64_t c = g.intern(nn::ir::Op::kLinear, {a}, {4, 8}, "c");
  const std::int64_t d = g.intern(nn::ir::Op::kLinear, {a}, {4, 9}, "d");
  EXPECT_NE(c, d);
  EXPECT_EQ(g.size(), 4);
}

TEST(IrGraph, ScopeIsDiagnosticOnlyAndHashIsStable) {
  auto build = [](const char* scope_tag) {
    nn::ir::Graph g;
    const std::int64_t in = g.intern(nn::ir::Op::kInput, {}, {8}, scope_tag);
    const std::int64_t r = g.intern(nn::ir::Op::kRelu, {in}, {}, scope_tag);
    g.intern(nn::ir::Op::kOutput, {r}, {2}, scope_tag);
    return g.graph_hash(17);
  };
  EXPECT_EQ(build("first"), build("second"))
      << "scope must not participate in the structural hash";
  // Different seed or structure moves the hash.
  nn::ir::Graph g;
  const std::int64_t in = g.intern(nn::ir::Op::kInput, {}, {8}, "x");
  g.intern(nn::ir::Op::kOutput, {in}, {2}, "y");
  EXPECT_NE(g.graph_hash(17), build("x"));
  EXPECT_NE(g.graph_hash(17), g.graph_hash(18));
}

TEST(IrGraph, ShapeCacheFillsLazily) {
  nn::ir::Graph g;
  const std::int64_t in = g.intern(nn::ir::Op::kInput, {}, {}, "x");
  EXPECT_EQ(g.shape(in), nullptr);
  g.set_shape(in, Shape{3, 8, 8});
  ASSERT_NE(g.shape(in), nullptr);
  EXPECT_EQ(*g.shape(in), (Shape{3, 8, 8}));
  EXPECT_NE(g.to_string().find("input"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Network capture and NetworkPlan replay
// ---------------------------------------------------------------------------

nn::Network small_resnet(std::uint64_t seed) {
  Rng rng(seed);
  nn::ResnetCifarSpec spec;
  spec.blocks_per_stage = 1;
  spec.widths = {4, 8, 8};
  spec.num_classes = 2;
  return nn::make_resnet_cifar(spec, rng);
}

Tensor toy_image(std::uint64_t seed) {
  Rng rng(seed);
  Tensor img({3, 8, 8});
  for (std::int64_t i = 0; i < img.numel(); ++i)
    img[i] = static_cast<float>(rng.uniform(0.0, 1.0));
  return img;
}

TEST(NetworkPlan, CaptureProducesStableHashAndBitIdenticalReplay) {
  nn::Network net = small_resnet(5);
  nn::ir::Capture cap = nn::ir::capture(net);
  ASSERT_TRUE(cap.ok) << cap.reason;
  EXPECT_GT(cap.graph.size(), 2);
  EXPECT_FALSE(cap.steps.empty());

  // The same architecture (fresh weights) captures to the same hash:
  // structure only, no pointers, no values.
  nn::Network twin = small_resnet(99);
  nn::ir::Capture cap2 = nn::ir::capture(twin);
  ASSERT_TRUE(cap2.ok);
  EXPECT_EQ(cap.graph.graph_hash(1), cap2.graph.graph_hash(1));

  std::shared_ptr<puma::NetworkPlan> plan = puma::NetworkPlan::capture(net);
  ASSERT_NE(plan, nullptr);
  Tensor x = toy_image(7);
  Tensor eager = net.forward(x, nn::Mode::Eval);
  Tensor planned = plan->forward(x);
  ASSERT_EQ(eager.numel(), planned.numel());
  for (std::int64_t i = 0; i < eager.numel(); ++i)
    EXPECT_EQ(eager[i], planned[i]) << i;
  // First replay records the observed shapes into the graph's shape cache.
  EXPECT_NE(plan->graph().shape(0), nullptr);
}

TEST(NetworkPlan, EvalHookFallsBackToEagerInterpreter) {
  nn::Network net = small_resnet(6);
  net.root().children().front()->set_eval_hook(
      [](const Tensor& y) { return y; });
  nn::ir::Capture cap = nn::ir::capture(net);
  EXPECT_FALSE(cap.ok);
  EXPECT_NE(cap.reason.find("eval hook"), std::string::npos) << cap.reason;
  EXPECT_EQ(puma::NetworkPlan::capture(net), nullptr);
  // plain_forward still works — it silently keeps the eager walk.
  core::ForwardFn fn = core::plain_forward(net);
  Tensor x = toy_image(8);
  Tensor eager = net.forward(x, nn::Mode::Eval);
  Tensor routed = fn(x);
  for (std::int64_t i = 0; i < eager.numel(); ++i)
    EXPECT_EQ(eager[i], routed[i]) << i;
}

// ---------------------------------------------------------------------------
// Interpreter-vs-plan bit-identity matrix
// ---------------------------------------------------------------------------

/// Cache-isolated fixture: plan compiles write descriptor entries, so every
/// test that builds a plan runs against a private temp cache directory.
class PlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("nvm_plan_test_" + std::to_string(::getpid()));
    ::setenv("NVMROBUST_CACHE_DIR", dir_.c_str(), 1);
    reset_file_cache_memo_for_tests();
  }
  void TearDown() override {
    ::unsetenv("NVMROBUST_CACHE_DIR");
    std::filesystem::remove_all(dir_);
    reset_file_cache_memo_for_tests();
  }
  std::filesystem::path dir_;
};

std::vector<simd::Isa> test_isas() {
  std::vector<simd::Isa> isas{simd::Isa::Scalar};
  for (simd::Isa isa :
       {simd::Isa::Avx2, simd::Isa::Avx512, simd::Isa::Neon})
    if (simd::isa_usable(isa)) isas.push_back(isa);
  return isas;
}

xbar::CrossbarConfig small_cfg() {
  xbar::CrossbarConfig cfg = xbar::xbar_32x32_100k();
  cfg.rows = cfg.cols = 16;
  cfg.name = "16x16_plan_test";
  return cfg;
}

/// The GENIEx surrogate shared across tests in this binary (training once
/// is the slow part; bit-identity only needs *a* deterministic surrogate).
const xbar::GeniexFit& shared_fit() {
  static const xbar::GeniexFit fit = [] {
    xbar::GeniexTrainOptions opt;
    opt.solver_samples = 80;
    return xbar::GeniexModel::fit(small_cfg(), opt);
  }();
  return fit;
}

/// Backends x wrappers for the identity matrix. Wrapped models take the
/// legacy float path (decorators do not advertise chunk/ideal
/// capabilities), bare fast_noise takes the fused chunk path, bare ideal
/// the int-digital path — together all three plan paths are exercised.
std::vector<std::pair<std::string, std::shared_ptr<const xbar::MvmModel>>>
backend_matrix() {
  const xbar::CrossbarConfig cfg = small_cfg();
  auto ideal = std::make_shared<xbar::IdealXbarModel>(cfg);
  auto fast = std::make_shared<xbar::FastNoiseModel>(cfg);
  auto geniex =
      std::make_shared<xbar::GeniexModel>(cfg, shared_fit().mlp);
  xbar::FaultOptions fo;
  fo.stuck_on_rate = 0.05;
  fo.stuck_off_rate = 0.05;
  xbar::VariationOptions vo;
  return {
      {"ideal", ideal},
      {"fast_noise", fast},
      {"geniex", geniex},
      {"fault(fast_noise)", std::make_shared<xbar::FaultModel>(fast, fo)},
      {"variation(fast_noise)",
       std::make_shared<xbar::VariationModel>(fast, vo)},
      {"fault(ideal)", std::make_shared<xbar::FaultModel>(ideal, fo)},
  };
}

TEST_F(PlanTest, ExecutionBitIdenticalToInterpreterAcrossMatrix) {
  Rng rng(71);
  Tensor w = Tensor::normal({20, 18}, 0.0f, 0.4f, rng);
  Tensor x({18, 5});
  for (std::int64_t i = 0; i < x.numel(); ++i)
    x[i] = static_cast<float>(rng.uniform(0.0, 1.0));

  for (auto& [tag, model] : backend_matrix()) {
    puma::TiledMatrix tiled(w, model, puma::HwConfig{});
    Tensor ref;
    {
      puma::ScopedPlanForTests off(false);
      simd::ScopedIsaForTests scope(simd::Isa::Scalar);
      ThreadPool serial(1);
      ThreadPool::ScopedUse use(serial);
      ref = tiled.matmul(x, 0.0f);
    }
    ASSERT_GT(ref.abs_max(), 0.0f) << tag;
    puma::ScopedPlanForTests on(true);
    for (simd::Isa isa : test_isas()) {
      simd::ScopedIsaForTests scope(isa);
      for (std::size_t threads : {1u, 4u}) {
        ThreadPool pool(threads);
        ThreadPool::ScopedUse use(pool);
        Tensor out = tiled.matmul(x, 0.0f);
        ASSERT_EQ(out.numel(), ref.numel());
        for (std::int64_t i = 0; i < out.numel(); ++i)
          EXPECT_EQ(out[i], ref[i])
              << tag << " isa=" << simd::isa_name(isa)
              << " threads=" << threads << " i=" << i;
      }
    }
  }
}

TEST_F(PlanTest, FusedKernelsEngageForFastNoiseAndStayBitIdentical) {
  Rng rng(72);
  Tensor w = Tensor::normal({20, 18}, 0.0f, 0.4f, rng);
  Tensor x({18, 5});
  for (std::int64_t i = 0; i < x.numel(); ++i)
    x[i] = static_cast<float>(rng.uniform(0.0, 1.0));
  auto model = std::make_shared<xbar::FastNoiseModel>(small_cfg());
  puma::TiledMatrix tiled(w, model, puma::HwConfig{});

  const puma::MvmPlan* plan = tiled.plan();
  ASSERT_NE(plan, nullptr);
  EXPECT_GT(plan->fused_slots(), 0)
      << "chunk-capable model must compile fused kernels";

  Tensor ref;
  {
    puma::ScopedPlanForTests off(false);
    ref = tiled.matmul(x, 0.0f);
  }
  metrics::Counter& fused_runs = metrics::counter("plan/fused_runs");
  const std::uint64_t before = fused_runs.value();
  Tensor out;
  {
    puma::ScopedPlanForTests on(true);
    out = tiled.matmul(x, 0.0f);
  }
  EXPECT_GT(fused_runs.value(), before) << "fused path did not engage";
  for (std::int64_t i = 0; i < out.numel(); ++i)
    EXPECT_EQ(out[i], ref[i]) << i;
  // The int-path escape hatch stays honored under plans too.
  Tensor legacy_ref, legacy_plan;
  {
    puma::ScopedIntPathForTests int_off(false);
    puma::ScopedPlanForTests off(false);
    legacy_ref = tiled.matmul(x, 0.0f);
  }
  {
    puma::ScopedIntPathForTests int_off(false);
    puma::ScopedPlanForTests on(true);
    legacy_plan = tiled.matmul(x, 0.0f);
  }
  for (std::int64_t i = 0; i < legacy_plan.numel(); ++i)
    EXPECT_EQ(legacy_plan[i], legacy_ref[i]) << i;
}

// ---------------------------------------------------------------------------
// Plan descriptor cache: miss, hit, corrupt-entry recompute
// ---------------------------------------------------------------------------

TEST_F(PlanTest, DescriptorCacheMissThenHitAcrossIdenticalMatrices) {
  Rng rng(73);
  Tensor w = Tensor::normal({12, 10}, 0.0f, 0.4f, rng);
  auto model = std::make_shared<xbar::FastNoiseModel>(small_cfg());
  metrics::Counter& hits = metrics::counter("plan/cache_hits");
  metrics::Counter& misses = metrics::counter("plan/cache_misses");

  const std::uint64_t h0 = hits.value(), m0 = misses.value();
  puma::TiledMatrix a(w, model, puma::HwConfig{});
  const puma::MvmPlan* pa = a.plan();
  ASSERT_NE(pa, nullptr);
  EXPECT_EQ(misses.value(), m0 + 1) << "cold cache must miss";
  EXPECT_EQ(hits.value(), h0);

  puma::TiledMatrix b(w, model, puma::HwConfig{});
  const puma::MvmPlan* pb = b.plan();
  ASSERT_NE(pb, nullptr);
  EXPECT_EQ(pa->graph_hash(), pb->graph_hash());
  EXPECT_EQ(hits.value(), h0 + 1) << "warm cache must hit";

  // A different hw config is a different graph — and a different entry.
  puma::HwConfig hw2;
  hw2.adc_bits = 12;
  puma::TiledMatrix c(w, model, hw2);
  ASSERT_NE(c.plan(), nullptr);
  EXPECT_NE(c.plan()->graph_hash(), pa->graph_hash());
  EXPECT_EQ(misses.value(), m0 + 2);
}

TEST_F(PlanTest, CorruptDescriptorIsQuarantinedAndRecomputed) {
  Rng rng(74);
  Tensor w = Tensor::normal({12, 10}, 0.0f, 0.4f, rng);
  Tensor x({10, 3});
  for (std::int64_t i = 0; i < x.numel(); ++i)
    x[i] = static_cast<float>(rng.uniform(0.0, 1.0));
  auto model = std::make_shared<xbar::FastNoiseModel>(small_cfg());

  puma::TiledMatrix a(w, model, puma::HwConfig{});
  const puma::MvmPlan* pa = a.plan();
  ASSERT_NE(pa, nullptr);
  std::ostringstream os;
  os << std::hex << pa->graph_hash();
  const std::filesystem::path entry = dir_ / ("plan_mvm_" + os.str());
  ASSERT_TRUE(std::filesystem::exists(entry)) << entry;

  // Flip the last payload byte: CRC fails, the loader quarantines the
  // entry and reports a miss, and compile() recomputes the schedule.
  {
    std::fstream f(entry, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(0, std::ios::end);
    const auto size = static_cast<std::streamoff>(f.tellg());
    f.seekp(size - 1);
    f.put('\xff');
  }

  metrics::Counter& misses = metrics::counter("plan/cache_misses");
  const std::uint64_t m0 = misses.value();
  puma::TiledMatrix b(w, model, puma::HwConfig{});
  ASSERT_NE(b.plan(), nullptr);
  EXPECT_EQ(misses.value(), m0 + 1) << "corrupt entry must recompute";

  // The recomputed plan still executes bit-identically.
  Tensor ref;
  {
    puma::ScopedPlanForTests off(false);
    ref = b.matmul(x, 0.0f);
  }
  puma::ScopedPlanForTests on(true);
  Tensor out = b.matmul(x, 0.0f);
  for (std::int64_t i = 0; i < out.numel(); ++i)
    EXPECT_EQ(out[i], ref[i]) << i;
}

}  // namespace
}  // namespace nvm

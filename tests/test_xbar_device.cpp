#include <gtest/gtest.h>

#include "common/check.h"

#include <cmath>

#include "xbar/config.h"
#include "xbar/device.h"

namespace nvm::xbar {
namespace {

TEST(Sinhc, MatchesStdSinh) {
  for (double x : {1e-6, 0.01, 0.1, 0.5, 1.0, 1.4, 1.6, 2.5, -0.7, -2.0}) {
    const double expected = x == 0 ? 1.0 : std::sinh(x) / x;
    EXPECT_NEAR(sinhc(x), expected, 1e-6 * std::abs(expected)) << "x=" << x;
  }
}

TEST(Sinhc, UnityAtZero) { EXPECT_DOUBLE_EQ(sinhc(0.0), 1.0); }

TEST(Device, LinearLimitAtSmallVoltage) {
  const double g = 1e-5, b = 2.0;
  EXPECT_NEAR(device_current(g, 1e-6, b), g * 1e-6, 1e-15);
}

TEST(Device, SuperlinearAtLargeVoltage) {
  const double g = 1e-5, b = 2.0, v = 0.25;
  EXPECT_GT(device_current(g, v, b), g * v);
  // sinh(0.5)/0.5 = 1.0422
  EXPECT_NEAR(device_current(g, v, b) / (g * v), 1.0422, 1e-3);
}

TEST(Device, CurrentIsOddInVoltage) {
  const double g = 2e-5, b = 3.0;
  EXPECT_NEAR(device_current(g, 0.2, b), -device_current(g, -0.2, b), 1e-18);
}

TEST(Device, SecantConductanceConsistent) {
  const double g = 1e-5, b = 2.0, v = 0.2;
  EXPECT_NEAR(device_secant_conductance(g, v, b) * v, device_current(g, v, b),
              1e-18);
  EXPECT_NEAR(device_secant_conductance(g, 0.0, b), g, 1e-18);
}

TEST(Device, MonotoneInVoltage) {
  const double g = 1e-5, b = 2.0;
  double prev = 0.0;
  for (double v = 0.01; v <= 0.3; v += 0.01) {
    const double i = device_current(g, v, b);
    EXPECT_GT(i, prev);
    prev = i;
  }
}

TEST(Config, DerivedQuantities) {
  CrossbarConfig cfg = xbar_64x64_100k();
  EXPECT_DOUBLE_EQ(cfg.g_on(), 1e-5);
  EXPECT_DOUBLE_EQ(cfg.g_off(), 1e-5 / 20);
  EXPECT_DOUBLE_EQ(cfg.i_scale(), 0.25 * 1e-5 * 64);
}

TEST(Config, PresetsMatchTableI) {
  EXPECT_EQ(xbar_64x64_300k().rows, 64);
  EXPECT_DOUBLE_EQ(xbar_64x64_300k().r_on, 300e3);
  EXPECT_EQ(xbar_32x32_100k().rows, 32);
  EXPECT_DOUBLE_EQ(xbar_32x32_100k().r_on, 100e3);
  EXPECT_EQ(preset("64x64_100k").name, "64x64_100k");
  EXPECT_THROW(preset("128x128_1k"), CheckError);
}

TEST(Config, TagDistinguishesConfigs) {
  EXPECT_NE(xbar_64x64_100k().tag(), xbar_64x64_300k().tag());
  CrossbarConfig a = xbar_64x64_100k(), b = a;
  b.r_wire *= 2;
  EXPECT_NE(a.tag(), b.tag());
}

}  // namespace
}  // namespace nvm::xbar

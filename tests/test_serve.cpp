// nvm::serve semantics: the bit-identity determinism contract (served ==
// serial classify for every batch/flush/thread config), shutdown drain,
// admission control (shed / reject-after-drain), queue timeout and
// cancellation, backend-failure replies, the deterministic Poisson arrival
// model, and NVM_SERVE_* env plumbing.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "serve/serve.h"
#include "xbar/fast_noise.h"
#include "xbar/model_zoo.h"

namespace nvm {
namespace {

/// Test backend whose logits are a cheap pure function of each column
/// (batch-invariant by construction), with a gate so tests can hold the
/// scheduler inside a batch while they manipulate the queue.
class GateBackend final : public serve::BatchClassifier {
 public:
  GateBackend(std::int64_t feat, std::int64_t classes, bool open = false)
      : feat_(feat), classes_(classes), open_(open) {}

  std::int64_t feature_dim() const override { return feat_; }
  std::int64_t classes() const override { return classes_; }

  Tensor logits_block(const Tensor& x) override {
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++batches_entered_;
      entered_.notify_all();
      gate_.wait(lock, [this] { return open_; });
    }
    const std::int64_t n = x.dim(1);
    Tensor out({classes_, n});
    for (std::int64_t j = 0; j < classes_; ++j)
      for (std::int64_t k = 0; k < n; ++k)
        out.at(j, k) = x.at(j % feat_, k) + static_cast<float>(j);
    return out;
  }

  /// Blocks until the scheduler has entered `k` batches in total.
  void wait_for_batches(int k) {
    std::unique_lock<std::mutex> lock(mu_);
    entered_.wait(lock, [this, k] { return batches_entered_ >= k; });
  }

  void open() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    gate_.notify_all();
  }

 private:
  std::int64_t feat_, classes_;
  std::mutex mu_;
  std::condition_variable entered_, gate_;
  int batches_entered_ = 0;
  bool open_;
};

class ThrowingBackend final : public serve::BatchClassifier {
 public:
  std::int64_t feature_dim() const override { return 4; }
  std::int64_t classes() const override { return 3; }
  Tensor logits_block(const Tensor&) override {
    throw std::runtime_error("injected backend failure");
  }
};

std::vector<Tensor> random_requests(std::int64_t n, std::int64_t feat,
                                    std::uint64_t seed) {
  std::vector<Tensor> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    Rng rng(derive_seed(seed, static_cast<std::uint64_t>(i)));
    Tensor x({feat});
    for (auto& v : x.data()) v = static_cast<float>(rng.uniform());
    out.push_back(std::move(x));
  }
  return out;
}

// The tentpole acceptance test: N requests through the micro-batching
// server produce bit-identical logits and labels to serial single-sample
// classification, for every NVM_SERVE_MAX_BATCH x NVM_THREADS config. The
// analog backend uses a fixed input scale and a stateless (fast-noise)
// model, which is exactly the batch-invariance contract of serve.h.
TEST(Serve, ServedLogitsBitIdenticalToSerialClassify) {
  xbar::CrossbarConfig cfg = xbar::xbar_32x32_100k();
  cfg.rows = cfg.cols = 16;
  cfg.name = "serve_test_16x16";
  auto model = std::make_shared<xbar::FastNoiseModel>(cfg);

  const std::int64_t classes = 8, feat = 48, n = 40;
  Rng wrng(3);
  Tensor w({classes, feat});
  for (auto& v : w.data()) v = static_cast<float>(wrng.uniform(-1.0, 1.0));
  serve::TiledLinearBackend backend(w, model, puma::HwConfig{}, 1.0f);

  const std::vector<Tensor> requests = random_requests(n, feat, 17);

  // Serial reference: one column at a time, no server involved.
  std::vector<Tensor> ref;
  ref.reserve(static_cast<std::size_t>(n));
  for (const Tensor& x : requests) {
    Tensor col({feat, 1});
    std::memcpy(col.raw(), x.raw(), sizeof(float) * static_cast<std::size_t>(feat));
    ref.push_back(backend.logits_block(col));
  }

  for (const std::int64_t max_batch : {1, 8, 32}) {
    for (const int threads : {1, 4}) {
      SCOPED_TRACE("max_batch=" + std::to_string(max_batch) +
                   " threads=" + std::to_string(threads));
      ThreadPool pool(threads);
      serve::ServeOptions opt;
      opt.max_batch = max_batch;
      opt.flush_us = 2000;
      opt.queue_capacity = n;
      opt.pool = &pool;
      serve::Server server(backend, opt);

      std::vector<serve::Server::Ticket> tickets;
      tickets.reserve(static_cast<std::size_t>(n));
      for (const Tensor& x : requests) tickets.push_back(server.submit(x));
      for (std::int64_t i = 0; i < n; ++i) {
        serve::Reply r = tickets[static_cast<std::size_t>(i)].get();
        ASSERT_EQ(r.status, serve::ReplyStatus::Ok);
        ASSERT_EQ(r.logits.numel(), classes);
        const Tensor& expect = ref[static_cast<std::size_t>(i)];
        EXPECT_EQ(std::memcmp(r.logits.raw(), expect.raw(),
                              sizeof(float) * static_cast<std::size_t>(classes)),
                  0)
            << "request " << i << " logits depend on batch composition";
        EXPECT_EQ(r.label, expect.reshaped({classes}).argmax());
        EXPECT_GE(r.batch_size, 1);
        EXPECT_LE(r.batch_size, max_batch);
      }
      server.drain();
    }
  }
}

// drain() must serve everything already admitted: no request lost, no
// hang, even when the queue is deep and flush deadlines are far away.
TEST(Serve, DrainServesEveryAdmittedRequest) {
  GateBackend backend(4, 3, /*open=*/true);
  serve::ServeOptions opt;
  opt.max_batch = 8;
  opt.flush_us = 1'000'000;  // 1 s: drain must not wait for this
  opt.queue_capacity = 64;
  serve::Server server(backend, opt);

  metrics::Counter& served = metrics::counter("serve/served");
  const std::uint64_t served_before = served.value();

  const std::vector<Tensor> requests = random_requests(64, 4, 5);
  std::vector<serve::Server::Ticket> tickets;
  for (const Tensor& x : requests) tickets.push_back(server.submit(x));
  server.drain();

  for (auto& t : tickets)
    EXPECT_EQ(t.get().status, serve::ReplyStatus::Ok);
  EXPECT_EQ(served.value() - served_before, 64u);
}

TEST(Serve, SubmitAfterDrainIsRejectedAsShutdown) {
  GateBackend backend(4, 3, /*open=*/true);
  serve::Server server(backend, serve::ServeOptions{});
  server.drain();
  const serve::Reply r = server.classify(Tensor({4}));
  EXPECT_EQ(r.status, serve::ReplyStatus::Shutdown);
}

// Admission control: with the scheduler held inside a batch and the queue
// at capacity, the next submit must be shed immediately (backpressure),
// and every admitted request must still be served once the gate opens.
TEST(Serve, QueueFullShedsDeterministically) {
  GateBackend backend(4, 3);
  serve::ServeOptions opt;
  opt.max_batch = 1;
  opt.flush_us = 0;
  opt.queue_capacity = 2;
  serve::Server server(backend, opt);

  metrics::Counter& shed = metrics::counter("serve/shed");
  const std::uint64_t shed_before = shed.value();

  auto a = server.submit(Tensor({4}));
  backend.wait_for_batches(1);  // scheduler now blocked inside a's batch
  auto b = server.submit(Tensor({4}));
  auto c = server.submit(Tensor({4}));
  auto d = server.submit(Tensor({4}));  // queue holds {b, c}: full

  EXPECT_EQ(d.get().status, serve::ReplyStatus::Shed);  // resolves instantly
  EXPECT_EQ(shed.value() - shed_before, 1u);

  backend.open();
  EXPECT_EQ(a.get().status, serve::ReplyStatus::Ok);
  EXPECT_EQ(b.get().status, serve::ReplyStatus::Ok);
  EXPECT_EQ(c.get().status, serve::ReplyStatus::Ok);
  server.drain();
}

// A request that outlives timeout_us in the queue gets a Timeout reply and
// never spends analog work.
TEST(Serve, QueuedRequestTimesOut) {
  GateBackend backend(4, 3);
  serve::ServeOptions opt;
  opt.max_batch = 1;
  opt.flush_us = 0;
  opt.timeout_us = 1000;
  serve::Server server(backend, opt);

  auto a = server.submit(Tensor({4}));
  backend.wait_for_batches(1);
  auto b = server.submit(Tensor({4}));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));  // >> timeout
  backend.open();

  EXPECT_EQ(a.get().status, serve::ReplyStatus::Ok);
  EXPECT_EQ(b.get().status, serve::ReplyStatus::Timeout);
  server.drain();
}

TEST(Serve, CancelBeforeDispatchIsHonoured) {
  GateBackend backend(4, 3);
  serve::ServeOptions opt;
  opt.max_batch = 1;
  opt.flush_us = 0;
  serve::Server server(backend, opt);

  auto a = server.submit(Tensor({4}));
  backend.wait_for_batches(1);
  auto b = server.submit(Tensor({4}));
  b.cancel();  // still queued: scheduler is blocked inside a's batch
  backend.open();

  EXPECT_EQ(a.get().status, serve::ReplyStatus::Ok);
  EXPECT_EQ(b.get().status, serve::ReplyStatus::Cancelled);
  server.drain();
}

TEST(Serve, BackendExceptionYieldsErrorReplies) {
  ThrowingBackend backend;
  serve::Server server(backend, serve::ServeOptions{});
  const serve::Reply r = server.classify(Tensor({4}));
  EXPECT_EQ(r.status, serve::ReplyStatus::Error);
  EXPECT_EQ(r.label, -1);
  server.drain();
}

// Every submitted request resolves to exactly one terminal metrics counter.
TEST(Serve, TerminalCountersPartitionRequests) {
  metrics::Counter& requests = metrics::counter("serve/requests");
  metrics::Counter& served = metrics::counter("serve/served");
  metrics::Counter& shed = metrics::counter("serve/shed");
  metrics::Counter& timeouts = metrics::counter("serve/timeouts");
  metrics::Counter& cancelled = metrics::counter("serve/cancelled");
  metrics::Counter& errors = metrics::counter("serve/errors");
  metrics::Counter& rejected = metrics::counter("serve/rejected_shutdown");
  const std::uint64_t base = served.value() + shed.value() +
                             timeouts.value() + cancelled.value() +
                             errors.value() + rejected.value();
  const std::uint64_t req_before = requests.value();

  GateBackend backend(4, 3, /*open=*/true);
  serve::ServeOptions opt;
  opt.queue_capacity = 32;
  serve::Server server(backend, opt);
  for (int i = 0; i < 12; ++i) (void)server.classify(Tensor({4}));
  server.drain();
  (void)server.submit(Tensor({4}));  // -> rejected_shutdown

  EXPECT_EQ(requests.value() - req_before, 13u);
  const std::uint64_t terminal = served.value() + shed.value() +
                                 timeouts.value() + cancelled.value() +
                                 errors.value() + rejected.value();
  EXPECT_EQ(terminal - base, 13u);
}

TEST(Serve, InvalidTicketReportsShutdown) {
  serve::Server::Ticket t;
  EXPECT_FALSE(t.valid());
  EXPECT_EQ(t.get().status, serve::ReplyStatus::Shutdown);
}

TEST(Serve, PoissonArrivalsAreDeterministicAndMonotone) {
  const auto a = serve::poisson_arrivals_us(500, 2000.0, 42);
  const auto b = serve::poisson_arrivals_us(500, 2000.0, 42);
  EXPECT_EQ(a, b);  // pure function of (n, rate, seed)
  ASSERT_EQ(a.size(), 500u);
  double prev = 0.0;
  for (const double t : a) {
    EXPECT_GE(t, prev);
    prev = t;
  }
  // Mean gap over 500 draws should be near 1/rate = 500 us.
  const double mean_gap = a.back() / 500.0;
  EXPECT_GT(mean_gap, 350.0);
  EXPECT_LT(mean_gap, 650.0);

  EXPECT_NE(a, serve::poisson_arrivals_us(500, 2000.0, 43));
  const auto sat = serve::poisson_arrivals_us(8, 0.0, 42);
  for (const double t : sat) EXPECT_EQ(t, 0.0);
}

TEST(Serve, OpenLoopTrafficServesEverythingAtModestLoad) {
  GateBackend backend(4, 3, /*open=*/true);
  serve::ServeOptions opt;
  opt.max_batch = 8;
  opt.flush_us = 200;
  opt.queue_capacity = 256;
  serve::Server server(backend, opt);

  const std::vector<Tensor> requests = random_requests(64, 4, 9);
  serve::TrafficOptions traffic;
  traffic.rate_rps = 0.0;  // back-to-back: no wall-clock sleeps in the test
  const serve::TrafficReport rep =
      serve::run_open_loop(server, requests, traffic);
  server.drain();

  EXPECT_EQ(rep.ok, 64);
  EXPECT_EQ(rep.shed + rep.timed_out + rep.cancelled + rep.errors +
                rep.rejected_shutdown,
            0);
  EXPECT_EQ(rep.labels.size(), 64u);
  for (const std::int64_t label : rep.labels) EXPECT_GE(label, 0);
  EXPECT_GE(rep.mean_batch, 1.0);
  EXPECT_GT(rep.throughput_rps, 0.0);
  EXPECT_GE(rep.p99_ms, rep.p50_ms);
}

TEST(Serve, OptionsComeFromEnvironment) {
  ::setenv("NVM_SERVE_MAX_BATCH", "8", 1);
  ::setenv("NVM_SERVE_FLUSH_US", "150", 1);
  ::setenv("NVM_SERVE_QUEUE_CAP", "7", 1);
  ::setenv("NVM_SERVE_TIMEOUT_US", "900", 1);
  serve::ServeOptions opt = serve::ServeOptions::from_env();
  EXPECT_EQ(opt.max_batch, 8);
  EXPECT_EQ(opt.flush_us, 150);
  EXPECT_EQ(opt.queue_capacity, 7);
  EXPECT_EQ(opt.timeout_us, 900);

  // Malformed values fall back to defaults (env_int rejects "12abc"), and
  // out-of-range ones are clamped to usable minimums.
  ::setenv("NVM_SERVE_MAX_BATCH", "12abc", 1);
  ::setenv("NVM_SERVE_QUEUE_CAP", "-4", 1);
  opt = serve::ServeOptions::from_env();
  EXPECT_EQ(opt.max_batch, serve::ServeOptions{}.max_batch);
  EXPECT_EQ(opt.queue_capacity, 1);

  ::unsetenv("NVM_SERVE_MAX_BATCH");
  ::unsetenv("NVM_SERVE_FLUSH_US");
  ::unsetenv("NVM_SERVE_QUEUE_CAP");
  ::unsetenv("NVM_SERVE_TIMEOUT_US");
}

}  // namespace
}  // namespace nvm

// End-to-end integration: train -> deploy on a non-ideal crossbar ->
// attack, exercising the same paths the paper's experiments use, at toy
// scale.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"

#include "attack/pgd.h"
#include "core/evaluator.h"
#include "nn/resnet.h"
#include "nn/trainer.h"
#include "test_util.h"
#include "puma/hw_network.h"
#include "xbar/geniex.h"

namespace nvm {
namespace {

struct Toy {
  std::vector<Tensor> images;
  std::vector<std::int64_t> labels;
  nn::Network net;
};

/// Trains a tiny two-class net once for the whole binary.
Toy& toy() {
  static Toy* instance = [] {
    Rng rng(31);
    auto* t = new Toy{{}, {}, [] {
                        Rng r(32);
                        nn::ResnetCifarSpec spec;
                        spec.blocks_per_stage = 1;
                        spec.widths = {4, 8, 8};
                        spec.num_classes = 2;
                        return nn::make_resnet_cifar(spec, r);
                      }()};
    testutil::make_orientation_toy(t->images, t->labels, 48, rng);
    nn::train(t->net, t->images, t->labels, testutil::toy_train_config());
    return t;
  }();
  return *instance;
}

std::shared_ptr<xbar::GeniexModel> test_model() {
  static auto model = [] {
    xbar::CrossbarConfig cfg = xbar::xbar_32x32_100k();
    cfg.rows = cfg.cols = 16;
    cfg.name = "16x16_it";
    xbar::GeniexTrainOptions opt;
    opt.solver_samples = 100;
    xbar::GeniexFit fit = xbar::GeniexModel::fit(cfg, opt);
    return std::make_shared<xbar::GeniexModel>(cfg, std::move(fit.mlp));
  }();
  return model;
}

TEST(Integration, DeploymentKeepsMostCleanAccuracy) {
  Toy& t = toy();
  const float ideal_acc = nn::evaluate_accuracy(t.net, t.images, t.labels);
  EXPECT_GT(ideal_acc, 90.0f);
  std::vector<Tensor> calib(t.images.begin(), t.images.begin() + 8);
  puma::HwDeployment dep(t.net, test_model(), calib);
  const float hw_acc = nn::evaluate_accuracy(t.net, t.images, t.labels);
  EXPECT_GT(hw_acc, ideal_acc - 25.0f);
}

TEST(Integration, DeploymentRestoresExactly) {
  Toy& t = toy();
  Tensor x = t.images[0];
  Tensor before = t.net.forward(x, nn::Mode::Eval);
  {
    std::vector<Tensor> calib(t.images.begin(), t.images.begin() + 4);
    puma::HwDeployment dep(t.net, test_model(), calib);
    Tensor during = t.net.forward(x, nn::Mode::Eval);
    EXPECT_GT(max_abs_diff(before, during), 0.0f);  // actually non-ideal
  }
  Tensor after = t.net.forward(x, nn::Mode::Eval);
  EXPECT_EQ(max_abs_diff(before, after), 0.0f);
}

TEST(Integration, DeployStatsReportLayersAndScales) {
  Toy& t = toy();
  std::vector<Tensor> calib(t.images.begin(), t.images.begin() + 4);
  puma::HwDeployment dep(t.net, test_model(), calib);
  // Stem conv + 3 residual blocks (2 convs, one projection pair) + linear.
  EXPECT_GE(dep.stats().mvm_layers, 8);
  for (float s : dep.stats().input_scales) EXPECT_GT(s, 0.0f);
}

TEST(Integration, HardwareInLoopGradientIsUsable) {
  // Paper §III-C2: forward on crossbar, backward ideal at the recorded
  // activations. The resulting input gradient must be finite, non-zero,
  // and correlated with the fully ideal gradient.
  Toy& t = toy();
  attack::NetworkAttackModel model(t.net);
  Tensor x = t.images[1];
  Tensor g_ideal = model.loss_input_grad(x, t.labels[1]);

  std::vector<Tensor> calib(t.images.begin(), t.images.begin() + 4);
  puma::HwDeployment dep(t.net, test_model(), calib);
  Tensor g_hw = model.loss_input_grad(x, t.labels[1]);

  ASSERT_TRUE(g_hw.same_shape(g_ideal));
  EXPECT_GT(g_hw.abs_max(), 0.0f);
  for (std::int64_t i = 0; i < g_hw.numel(); ++i)
    ASSERT_TRUE(std::isfinite(g_hw[i]));
  double dot = 0, na = 0, nb = 0;
  for (std::int64_t i = 0; i < g_hw.numel(); ++i) {
    dot += double(g_hw[i]) * g_ideal[i];
    na += double(g_hw[i]) * g_hw[i];
    nb += double(g_ideal[i]) * g_ideal[i];
  }
  const double cosine = dot / std::sqrt(na * nb + 1e-30);
  EXPECT_GT(cosine, 0.3) << "HIL gradient should correlate with ideal";
  EXPECT_LT(cosine, 0.9999) << "but not be identical";
}

TEST(Integration, PgdOnDeployedNetworkStaysInBounds) {
  Toy& t = toy();
  std::vector<Tensor> calib(t.images.begin(), t.images.begin() + 4);
  puma::HwDeployment dep(t.net, test_model(), calib);
  attack::NetworkAttackModel model(t.net);
  attack::PgdOptions opt;
  opt.epsilon = 0.05f;
  opt.iters = 3;
  Tensor adv = attack::pgd_attack(model, t.images[2], t.labels[2], opt);
  for (std::int64_t i = 0; i < adv.numel(); ++i) {
    EXPECT_LE(std::abs(adv[i] - t.images[2][i]), opt.epsilon + 1e-6f);
    EXPECT_GE(adv[i], 0.0f);
    EXPECT_LE(adv[i], 1.0f);
  }
}

TEST(Integration, DynamicInputScalingWorksWithoutCalibration) {
  Toy& t = toy();
  puma::HwDeployment dep(t.net, test_model(), {});
  const float acc = nn::evaluate_accuracy(t.net, t.images, t.labels);
  EXPECT_GT(acc, 50.0f);  // functional, if less accurate
}

}  // namespace
}  // namespace nvm

// Fleet-lifetime layer: chip manufacture, scheduler policy semantics,
// SLA judging, and end-to-end simulator determinism at toy scale.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "fleet/simulator.h"
#include "nn/resnet.h"
#include "nn/trainer.h"
#include "test_util.h"
#include "xbar/config.h"
#include "xbar/fast_noise.h"

namespace nvm {
namespace {

using fleet::Action;
using fleet::ChipEval;
using fleet::ChipInstance;
using fleet::FleetOptions;
using fleet::PolicyKind;
using fleet::RecalibrationScheduler;
using fleet::SchedulerConfig;

// ---------------------------------------------------------------------------
// Chip manufacture

FleetOptions toy_fleet_options() {
  FleetOptions opt;
  opt.n_chips = 4;
  opt.epochs = 2;
  opt.sample_per_epoch = 0;  // whole fleet: exact, order-free aggregates
  opt.dt_s = 2.0;
  opt.seed = 99;
  opt.n_eval = 8;
  opt.dead_row_rate = 0.001;
  opt.dead_col_rate = 0.001;
  return opt;
}

TEST(FleetChip, MakeChipIsPureAndDeterministic) {
  const FleetOptions opt = toy_fleet_options();
  const ChipInstance a = fleet::make_chip(opt, 2);
  const ChipInstance b = fleet::make_chip(opt, 2);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.stuck_on_rate, b.stuck_on_rate);
  EXPECT_EQ(a.stuck_off_rate, b.stuck_off_rate);
  EXPECT_EQ(a.drift_nu, b.drift_nu);
  EXPECT_EQ(a.programmed_at_s, b.programmed_at_s);

  // Different die, different lottery.
  const ChipInstance c = fleet::make_chip(opt, 3);
  EXPECT_NE(a.seed, c.seed);

  // Per-id derivation: the same die exists regardless of fleet size.
  FleetOptions bigger = opt;
  bigger.n_chips = 64;
  const ChipInstance d = fleet::make_chip(bigger, 2);
  EXPECT_EQ(a.seed, d.seed);
  EXPECT_EQ(a.drift_nu, d.drift_nu);

  EXPECT_THROW(fleet::make_chip(opt, opt.n_chips), CheckError);
  EXPECT_THROW(fleet::make_chip(opt, -1), CheckError);
}

TEST(FleetChip, QualityFactorScalesAllRatesTogether) {
  FleetOptions opt = toy_fleet_options();
  opt.rate_log_sigma = 0.5;
  for (std::int64_t id = 0; id < opt.n_chips; ++id) {
    const ChipInstance chip = fleet::make_chip(opt, id);
    const double f = chip.stuck_on_rate / opt.stuck_on_rate;
    EXPECT_GT(f, 0.0);
    EXPECT_NEAR(chip.stuck_off_rate / opt.stuck_off_rate, f, 1e-12 * f);
    EXPECT_NEAR(chip.dead_row_rate / opt.dead_row_rate, f, 1e-12 * f);
    EXPECT_NEAR(chip.dead_col_rate / opt.dead_col_rate, f, 1e-12 * f);
    EXPECT_EQ(chip.expected_defect_fraction(),
              chip.stuck_on_rate + chip.stuck_off_rate + chip.dead_row_rate +
                  chip.dead_col_rate);
  }
}

TEST(FleetChip, DrawnParametersStayInConfiguredRanges) {
  FleetOptions opt = toy_fleet_options();
  opt.n_chips = 32;
  opt.initial_age_spread_s = 3.0;
  for (std::int64_t id = 0; id < opt.n_chips; ++id) {
    const ChipInstance chip = fleet::make_chip(opt, id);
    EXPECT_GE(chip.drift_nu, opt.drift_nu_lo);
    EXPECT_LE(chip.drift_nu, opt.drift_nu_hi);
    EXPECT_LE(chip.programmed_at_s, 0.0);
    EXPECT_GE(chip.programmed_at_s, -opt.initial_age_spread_s);
    EXPECT_LE(chip.stuck_on_rate, 0.25);
    EXPECT_LE(chip.dead_row_rate, 0.5);
  }
}

TEST(FleetChip, PredictedDecayFollowsPowerLaw) {
  ChipInstance chip;
  chip.drift_nu = 0.08;
  chip.drift_t0 = 1.0;
  chip.programmed_at_s = 0.0;
  EXPECT_DOUBLE_EQ(chip.predicted_decay(0.0), 1.0);
  EXPECT_DOUBLE_EQ(chip.predicted_decay(5.0), std::pow(6.0, -0.08));
  // age_s clamps to zero before the programming stamp.
  EXPECT_DOUBLE_EQ(chip.age_s(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(chip.predicted_decay(-1.0), 1.0);
  // Monotone non-increasing in time.
  double prev = 1.0;
  for (double t = 0.5; t < 20.0; t += 0.5) {
    const double d = chip.predicted_decay(t);
    EXPECT_LE(d, prev);
    prev = d;
  }
  // nu == 0 never decays.
  chip.drift_nu = 0.0;
  EXPECT_DOUBLE_EQ(chip.predicted_decay(100.0), 1.0);
}

// ---------------------------------------------------------------------------
// Scheduler

/// A chip aged to hit a chosen predicted decay: decay = (1+age)^-nu.
ChipInstance chip_with_decay(double decay, double at_time_s) {
  ChipInstance chip;
  chip.drift_nu = 0.1;
  chip.drift_t0 = 1.0;
  const double age = std::pow(decay, -1.0 / chip.drift_nu) - 1.0;
  chip.programmed_at_s = at_time_s - age;
  return chip;
}

TEST(Scheduler, ThresholdDecisionRules) {
  SchedulerConfig cfg;  // refit < 0.92, reprogram < 0.60, retire >= 0.05
  RecalibrationScheduler sched(cfg, 100.0);
  const double t = 50.0;

  ChipInstance fresh = chip_with_decay(0.99, t);
  EXPECT_EQ(sched.decide(fresh, t), Action::None);

  ChipInstance drifting = chip_with_decay(0.80, t);
  EXPECT_EQ(sched.decide(drifting, t), Action::Refit);

  ChipInstance gone = chip_with_decay(0.40, t);
  EXPECT_EQ(sched.decide(gone, t), Action::Reprogram);

  ChipInstance hopeless = chip_with_decay(0.99, t);
  hopeless.stuck_off_rate = 0.06;  // past retire_defect_fraction
  EXPECT_EQ(sched.decide(hopeless, t), Action::Retire);

  ChipInstance retired = chip_with_decay(0.40, t);
  retired.retired = true;
  EXPECT_EQ(sched.decide(retired, t), Action::None);
}

TEST(Scheduler, RefitIsAPerEpochSubscription) {
  metrics::reset_all_for_tests();
  SchedulerConfig cfg;
  cfg.policy = PolicyKind::Threshold;
  const double unit = 100.0;
  RecalibrationScheduler sched(cfg, unit);

  std::vector<ChipInstance> chips = {chip_with_decay(0.80, 10.0)};
  const fleet::ActionSummary first = sched.run_epoch(chips, 10.0);
  EXPECT_EQ(first.refits, 1);
  EXPECT_TRUE(chips[0].refit);
  EXPECT_EQ(chips[0].refits, 1);
  EXPECT_DOUBLE_EQ(first.energy_nj, cfg.refit_cost_fraction * unit);

  // Still in the refit band next epoch: the subscription renews and is
  // charged again.
  const fleet::ActionSummary second = sched.run_epoch(chips, 11.0);
  EXPECT_EQ(second.refits, 1);
  EXPECT_TRUE(chips[0].refit);
  EXPECT_EQ(chips[0].refits, 2);
  EXPECT_DOUBLE_EQ(sched.total_energy_nj(),
                   2.0 * cfg.refit_cost_fraction * unit);
  EXPECT_EQ(metrics::counter("fleet/refits").value(), 2u);

  // A manually set flag on a chip the policy would not refit is cleared:
  // nobody rides the subscription for free.
  std::vector<ChipInstance> fresh = {chip_with_decay(0.99, 10.0)};
  fresh[0].refit = true;
  const fleet::ActionSummary none = sched.run_epoch(fresh, 10.0);
  EXPECT_EQ(none.refits, 0);
  EXPECT_FALSE(fresh[0].refit);
}

TEST(Scheduler, ReprogramResetsDriftClockAndSupersedesRefit) {
  SchedulerConfig cfg;
  cfg.policy = PolicyKind::Threshold;
  RecalibrationScheduler sched(cfg, 100.0);
  std::vector<ChipInstance> chips = {chip_with_decay(0.40, 20.0)};
  chips[0].refit = true;

  const fleet::ActionSummary s = sched.run_epoch(chips, 20.0);
  EXPECT_EQ(s.reprograms, 1);
  EXPECT_EQ(s.refits, 0);
  EXPECT_DOUBLE_EQ(s.energy_nj, 100.0);
  EXPECT_DOUBLE_EQ(chips[0].programmed_at_s, 20.0);
  EXPECT_FALSE(chips[0].refit);
  EXPECT_DOUBLE_EQ(chips[0].predicted_decay(20.0), 1.0);
  EXPECT_EQ(sched.decide(chips[0], 20.0), Action::None);
}

TEST(Scheduler, BudgetedGreedyActsWorstFirstWithinBudget) {
  SchedulerConfig cfg;
  cfg.policy = PolicyKind::BudgetedGreedy;
  cfg.budget_actions_per_epoch = 2;
  RecalibrationScheduler sched(cfg, 100.0);
  const double t = 30.0;

  // Four actionable chips, distinct decays; only the two worst get the
  // budget. A hopeless die retires without consuming any of it.
  std::vector<ChipInstance> chips = {
      chip_with_decay(0.85, t),  // refit band
      chip_with_decay(0.50, t),  // reprogram band (worst actionable)
      chip_with_decay(0.88, t),  // refit band, healthier than chip 0
      chip_with_decay(0.70, t),  // refit band, second-worst
      chip_with_decay(0.95, t),  // hopeless spec sheet
  };
  for (std::size_t i = 0; i < chips.size(); ++i)
    chips[i].id = static_cast<std::int64_t>(i);
  chips[4].stuck_on_rate = 0.2;

  const fleet::ActionSummary s = sched.run_epoch(chips, t);
  EXPECT_EQ(s.retirements, 1);
  EXPECT_TRUE(chips[4].retired);
  EXPECT_EQ(s.reprograms + s.refits, 2);
  EXPECT_EQ(chips[1].reprograms, 1);   // worst: reprogrammed
  EXPECT_TRUE(chips[3].refit);         // second-worst: refitted
  EXPECT_FALSE(chips[0].refit);        // out of budget
  EXPECT_FALSE(chips[2].refit);
  EXPECT_EQ(chips[0].reprograms + chips[0].refits, 0);
}

TEST(Scheduler, AlwaysReprogramsEveryAliveChip) {
  SchedulerConfig cfg;
  cfg.policy = PolicyKind::Always;
  RecalibrationScheduler sched(cfg, 10.0);
  std::vector<ChipInstance> chips = {chip_with_decay(0.99, 5.0),
                                     chip_with_decay(0.50, 5.0),
                                     chip_with_decay(0.99, 5.0)};
  chips[2].retired = true;
  const fleet::ActionSummary s = sched.run_epoch(chips, 5.0);
  EXPECT_EQ(s.reprograms, 2);
  EXPECT_DOUBLE_EQ(s.energy_nj, 20.0);
  EXPECT_DOUBLE_EQ(chips[0].programmed_at_s, 5.0);
  EXPECT_DOUBLE_EQ(chips[1].programmed_at_s, 5.0);
  EXPECT_NE(chips[2].programmed_at_s, 5.0);
}

TEST(Scheduler, ValidatesThresholdOrderAndPolicyNames) {
  SchedulerConfig bad;
  bad.refit_decay_threshold = 0.5;
  bad.reprogram_decay_threshold = 0.6;
  EXPECT_THROW(RecalibrationScheduler(bad, 1.0), CheckError);

  for (const PolicyKind k :
       {PolicyKind::Never, PolicyKind::Always, PolicyKind::Threshold,
        PolicyKind::BudgetedGreedy}) {
    EXPECT_EQ(RecalibrationScheduler::parse_policy(
                  RecalibrationScheduler::policy_name(k)),
              k);
  }
  EXPECT_EQ(RecalibrationScheduler::parse_policy("budgeted_greedy"),
            PolicyKind::BudgetedGreedy);
  EXPECT_THROW(RecalibrationScheduler::parse_policy("sometimes"), CheckError);
}

// ---------------------------------------------------------------------------
// SLA monitor

ChipEval eval_at(double age_s, float clean, float pgd = -1.0f) {
  ChipEval e;
  e.age_s = age_s;
  e.clean = clean;
  e.pgd = pgd;
  return e;
}

TEST(Sla, JudgesCohortFloorsAndAvailability) {
  metrics::reset_all_for_tests();
  metrics::gauge("fleet/chips_alive").set(8.0);
  metrics::gauge("fleet/chips_retired").set(2.0);

  fleet::SlaConfig cfg;
  cfg.min_clean_acc = 50.0;
  cfg.min_availability = 0.9;  // 8/10 = 0.8 violates
  cfg.cohort_age_s = 2.0;
  cfg.min_cohort_samples = 2;
  fleet::SlaMonitor sla(cfg);

  // Young cohort healthy; old cohort below the floor; a third cohort has
  // one sample and must be reported but not judged.
  const std::vector<ChipEval> sampled = {
      eval_at(0.5, 80.0f), eval_at(1.0, 90.0f),   // age[0,2s): ok
      eval_at(3.0, 40.0f), eval_at(3.5, 30.0f),   // age[2,4s): violated
      eval_at(9.0, 10.0f),                        // age[8,10s): unjudged
  };
  const fleet::SlaReport report = sla.observe(sampled);

  EXPECT_DOUBLE_EQ(report.availability, 0.8);
  EXPECT_FALSE(report.availability_ok);
  ASSERT_EQ(report.cohorts.size(), 3u);
  EXPECT_TRUE(report.cohorts[0].judged);
  EXPECT_FALSE(report.cohorts[0].violated);
  EXPECT_TRUE(report.cohorts[1].judged);
  EXPECT_TRUE(report.cohorts[1].violated);
  EXPECT_FLOAT_EQ(report.cohorts[1].clean, 35.0f);
  EXPECT_FALSE(report.cohorts[2].judged);
  EXPECT_FALSE(report.cohorts[2].violated);
  EXPECT_EQ(report.violations, 2);  // availability + old cohort
  EXPECT_EQ(sla.total_violations(), 2);
  EXPECT_EQ(metrics::counter("fleet/sla_violations").value(), 2u);
}

TEST(Sla, AdversarialFloorOnlyFiresWhenMeasured) {
  metrics::reset_all_for_tests();
  metrics::gauge("fleet/chips_alive").set(4.0);
  metrics::gauge("fleet/chips_retired").set(0.0);

  fleet::SlaConfig cfg;
  cfg.min_clean_acc = 10.0;
  cfg.min_adv_acc = 25.0;
  fleet::SlaMonitor sla(cfg);

  // PGD not measured: the adversarial floor must stay silent.
  const std::vector<ChipEval> unmeasured = {eval_at(1.0, 80.0f),
                                            eval_at(1.0, 85.0f)};
  EXPECT_EQ(sla.observe(unmeasured).violations, 0);

  // Measured and below the floor: one violation.
  const std::vector<ChipEval> weak = {eval_at(1.0, 80.0f, 10.0f),
                                      eval_at(1.0, 85.0f, 12.0f)};
  EXPECT_EQ(sla.observe(weak).violations, 1);
}

// ---------------------------------------------------------------------------
// End-to-end simulator (toy task, tiny crossbar)

/// Trains the shared toy task once per binary; the fleet simulator treats
/// it exactly like a prepared paper task.
core::PreparedTask& prepared() {
  static core::PreparedTask* p = [] {
    auto* pt = new core::PreparedTask{core::task_scifar10(),
                                      {},
                                      [] {
                                        Rng r(32);
                                        nn::ResnetCifarSpec spec;
                                        spec.blocks_per_stage = 1;
                                        spec.widths = {4, 8, 8};
                                        spec.num_classes = 2;
                                        return nn::make_resnet_cifar(spec, r);
                                      }(),
                                      0.0f};
    pt->task.name = "FLEET_TOY";
    // clone_network rebuilds from the task's recipe; it must match the
    // toy network, not SCIFAR10's ResNet-20.
    pt->task.make_network = [](Rng& r) {
      nn::ResnetCifarSpec spec;
      spec.blocks_per_stage = 1;
      spec.widths = {4, 8, 8};
      spec.num_classes = 2;
      return nn::make_resnet_cifar(spec, r);
    };
    Rng rng(31);
    testutil::make_orientation_toy(pt->dataset.train_images,
                                   pt->dataset.train_labels, 48, rng);
    testutil::make_orientation_toy(pt->dataset.test_images,
                                   pt->dataset.test_labels, 32, rng);
    nn::train(pt->network, pt->dataset.train_images, pt->dataset.train_labels,
              testutil::toy_train_config());
    pt->clean_test_accuracy = nn::evaluate_accuracy(
        pt->network, pt->dataset.test_images, pt->dataset.test_labels);
    return pt;
  }();
  return *p;
}

std::shared_ptr<xbar::FastNoiseModel> toy_base_model() {
  xbar::CrossbarConfig cfg = xbar::xbar_32x32_100k();
  cfg.rows = cfg.cols = 16;
  cfg.name = "16x16_fleet";
  return std::make_shared<xbar::FastNoiseModel>(cfg);
}

fleet::FleetResult run_toy_fleet(FleetOptions opt, PolicyKind policy) {
  fleet::SchedulerConfig sched;
  sched.policy = policy;
  fleet::FleetSimulator sim(prepared(), toy_base_model(), opt);
  return sim.run(sched, fleet::SlaConfig{});
}

void expect_same_result(const fleet::FleetResult& a,
                        const fleet::FleetResult& b) {
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  EXPECT_EQ(a.digital_clean, b.digital_clean);
  EXPECT_EQ(a.mean_clean, b.mean_clean);
  EXPECT_EQ(a.score, b.score);
  for (std::size_t e = 0; e < a.epochs.size(); ++e) {
    EXPECT_EQ(a.epochs[e].mean_clean, b.epochs[e].mean_clean);
    ASSERT_EQ(a.epochs[e].chips.size(), b.epochs[e].chips.size());
    for (std::size_t i = 0; i < a.epochs[e].chips.size(); ++i) {
      EXPECT_EQ(a.epochs[e].chips[i].chip_id, b.epochs[e].chips[i].chip_id);
      EXPECT_EQ(a.epochs[e].chips[i].clean, b.epochs[e].chips[i].clean);
      EXPECT_EQ(a.epochs[e].chips[i].defect_fraction,
                b.epochs[e].chips[i].defect_fraction);
    }
  }
}

TEST(FleetSim, DeterministicAcrossThreadsAndReplicas) {
  const FleetOptions opt = toy_fleet_options();

  fleet::FleetResult serial_run = [&] {
    ThreadPool serial(1);
    ThreadPool::ScopedUse use(serial);
    return run_toy_fleet(opt, PolicyKind::Threshold);
  }();
  fleet::FleetResult wide_run = [&] {
    ThreadPool wide(3);
    ThreadPool::ScopedUse use(wide);
    return run_toy_fleet(opt, PolicyKind::Threshold);
  }();
  expect_same_result(serial_run, wide_run);

  FleetOptions pinned = opt;
  pinned.replicas = 2;
  expect_same_result(serial_run, run_toy_fleet(pinned, PolicyKind::Threshold));
}

TEST(FleetSim, SeedChangesThePopulation) {
  const FleetOptions opt = toy_fleet_options();
  FleetOptions other = opt;
  other.seed = opt.seed + 1;
  const fleet::FleetResult a = run_toy_fleet(opt, PolicyKind::Never);
  const fleet::FleetResult b = run_toy_fleet(opt, PolicyKind::Never);
  const fleet::FleetResult c = run_toy_fleet(other, PolicyKind::Never);
  expect_same_result(a, b);
  // Different seed -> different silicon lottery for at least one die.
  bool any_diff = false;
  for (std::size_t i = 0; i < a.epochs[0].chips.size(); ++i)
    any_diff |= a.epochs[0].chips[i].defect_fraction !=
                c.epochs[0].chips[i].defect_fraction;
  EXPECT_TRUE(any_diff);
}

TEST(FleetSim, AlwaysPolicyKeepsTheFleetYoungAtIntensityOne) {
  FleetOptions opt = toy_fleet_options();
  opt.epochs = 3;
  const fleet::FleetResult r = run_toy_fleet(opt, PolicyKind::Always);
  // Ages are measured before that epoch's maintenance: every epoch sees
  // exactly dt of drift since the previous reprogram.
  for (const fleet::EpochSummary& e : r.epochs)
    EXPECT_DOUBLE_EQ(e.mean_age_s, opt.dt_s);
  EXPECT_EQ(r.total_reprograms, opt.n_chips * opt.epochs);
  // Re-programming the whole fleet every epoch IS the unit of maintenance
  // intensity.
  EXPECT_DOUBLE_EQ(r.maintenance_intensity, 1.0);
}

TEST(FleetSim, NeverPolicyAgesMonotonicallyForFree) {
  FleetOptions opt = toy_fleet_options();
  opt.epochs = 3;
  const fleet::FleetResult r = run_toy_fleet(opt, PolicyKind::Never);
  EXPECT_EQ(r.total_reprograms, 0);
  EXPECT_EQ(r.total_refits, 0);
  EXPECT_DOUBLE_EQ(r.total_recal_energy_nj, 0.0);
  EXPECT_DOUBLE_EQ(r.maintenance_intensity, 0.0);
  for (std::size_t e = 1; e < r.epochs.size(); ++e)
    EXPECT_GT(r.epochs[e].mean_age_s, r.epochs[e - 1].mean_age_s);
  // Score formula: with PGD off, quality is just mean clean.
  EXPECT_DOUBLE_EQ(r.score, static_cast<double>(r.mean_clean));
}

TEST(FleetSim, ScoreDividesQualityByMaintenanceIntensity) {
  const fleet::FleetResult r =
      run_toy_fleet(toy_fleet_options(), PolicyKind::Always);
  EXPECT_DOUBLE_EQ(
      r.score, static_cast<double>(r.mean_clean) /
                   (1.0 + r.maintenance_intensity));
}

TEST(FleetSim, MaterializedZeroRateChipHasNoDefects) {
  FleetOptions opt = toy_fleet_options();
  opt.stuck_on_rate = opt.stuck_off_rate = 0.0;
  opt.dead_row_rate = opt.dead_col_rate = 0.0;
  fleet::FleetSimulator sim(prepared(), toy_base_model(), opt);
  const ChipInstance chip = fleet::make_chip(opt, 0);
  const fleet::MaterializedChip m = sim.materialize(chip, 4.0);
  const xbar::FaultMap& map = m.faults->map();
  EXPECT_EQ(map.stuck_on_cells, 0);
  EXPECT_EQ(map.stuck_off_cells, 0);
  EXPECT_EQ(map.dead_rows, 0);
  EXPECT_EQ(map.dead_cols, 0);
  // The deployed model is the variation wrapper over the fault layer.
  EXPECT_NE(m.model, nullptr);
  EXPECT_NE(m.model.get(),
            static_cast<const xbar::MvmModel*>(m.faults.get()));
}

TEST(FleetSim, MaterializationIsAPureFunctionOfChipAndTime) {
  const FleetOptions opt = toy_fleet_options();
  fleet::FleetSimulator sim(prepared(), toy_base_model(), opt);
  const ChipInstance chip = fleet::make_chip(opt, 1);
  const fleet::MaterializedChip a = sim.materialize(chip, 6.0);
  const fleet::MaterializedChip b = sim.materialize(chip, 6.0);
  const xbar::FaultMap& ma = a.faults->map();
  const xbar::FaultMap& mb = b.faults->map();
  EXPECT_EQ(ma.stuck_on_cells, mb.stuck_on_cells);
  EXPECT_EQ(ma.stuck_off_cells, mb.stuck_off_cells);
  ASSERT_EQ(ma.cell.size(), mb.cell.size());
  for (std::size_t i = 0; i < ma.cell.size(); ++i)
    EXPECT_EQ(ma.cell[i], mb.cell[i]);
}

}  // namespace
}  // namespace nvm

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"

#include <cmath>

#include "defense/defenses.h"
#include "nn/resnet.h"

namespace nvm::defense {
namespace {

TEST(BitWidthReduction, QuantizesToLevels) {
  Tensor img({5}, {0.0f, 0.1f, 0.49f, 0.51f, 1.0f});
  Tensor q = reduce_bit_width(img, 1);  // only {0, 1}
  EXPECT_EQ(q[0], 0.0f);
  EXPECT_EQ(q[1], 0.0f);
  EXPECT_EQ(q[2], 0.0f);
  EXPECT_EQ(q[3], 1.0f);
  EXPECT_EQ(q[4], 1.0f);
}

TEST(BitWidthReduction, FourBitGridAndIdempotence) {
  Rng rng(1);
  Tensor img = Tensor::uniform({3, 6, 6}, 0, 1, rng);
  Tensor q = reduce_bit_width(img, 4);
  for (std::int64_t i = 0; i < q.numel(); ++i) {
    const float scaled = q[i] * 15.0f;
    EXPECT_NEAR(scaled, std::round(scaled), 1e-5f);
    EXPECT_NEAR(q[i], img[i], 1.0f / 30 + 1e-6f);  // half step
  }
  EXPECT_EQ(max_abs_diff(reduce_bit_width(q, 4), q), 0.0f);
}

TEST(BitWidthReduction, KillsSmallPerturbations) {
  // Perturbations below half an LSB vanish — the defense mechanism.
  Tensor img({4}, {0.2f, 0.4f, 0.6f, 0.8f});
  Tensor pert = img;
  pert += 0.01f;  // << half of 1/15
  EXPECT_EQ(max_abs_diff(reduce_bit_width(img, 4), reduce_bit_width(pert, 4)),
            0.0f);
}

TEST(Sap, ZeroActivationsPassThrough) {
  Rng rng(2);
  Tensor zeros({3, 4, 4});
  Tensor out = sap_prune(zeros, 1.0f, rng);
  EXPECT_EQ(out.abs_max(), 0.0f);
}

TEST(Sap, KeptValuesAreRescaled) {
  Rng rng(3);
  Tensor acts({8}, {1, 2, 3, 4, 0, 6, 7, 8});
  Tensor out = sap_prune(acts, 1.0f, rng);
  for (std::int64_t i = 0; i < 8; ++i) {
    if (out[i] != 0.0f) {
      EXPECT_GE(out[i], acts[i]);  // 1/keep_p >= 1
    }
  }
}

TEST(Sap, ApproximatelyUnbiasedOnAverage) {
  Rng rng(4);
  Tensor acts({16});
  for (auto& v : acts.data()) v = static_cast<float>(rng.uniform(0.1, 1.0));
  Tensor mean_out({16});
  const int trials = 3000;
  for (int t = 0; t < trials; ++t)
    mean_out += sap_prune(acts, 1.0f, rng);
  mean_out *= 1.0f / trials;
  for (std::int64_t i = 0; i < 16; ++i)
    EXPECT_NEAR(mean_out[i], acts[i], 0.12f * acts[i] + 0.02f);
}

TEST(Sap, HigherMagnitudeKeptMoreOften) {
  Rng rng(5);
  Tensor acts({2}, {0.05f, 2.0f});
  int kept_small = 0, kept_big = 0;
  for (int t = 0; t < 500; ++t) {
    Tensor out = sap_prune(acts, 1.0f, rng);
    kept_small += (out[0] != 0.0f);
    kept_big += (out[1] != 0.0f);
  }
  EXPECT_GT(kept_big, kept_small * 3);
}

TEST(Sap, AttachesToConvLayersOnly) {
  Rng rng(6);
  nn::ResnetCifarSpec spec;
  spec.blocks_per_stage = 1;
  spec.widths = {4, 4, 4};
  spec.num_classes = 2;
  nn::Network net = nn::make_resnet_cifar(spec, rng);
  auto handle = attach_sap(net, SapOptions{});
  int conv_hooks = 0, other_hooks = 0;
  nn::visit_layers(net.root(), [&](nn::Layer& l) {
    const bool is_conv = dynamic_cast<nn::Conv2d*>(&l) != nullptr;
    if (l.has_eval_hook()) (is_conv ? conv_hooks : other_hooks)++;
  });
  EXPECT_GT(conv_hooks, 0);
  EXPECT_EQ(other_hooks, 0);
  // Stochastic at eval: two forward passes differ.
  Tensor x = Tensor::uniform({3, 8, 8}, 0, 1, rng);
  Tensor a = net.forward(x, nn::Mode::Eval);
  Tensor b = net.forward(x, nn::Mode::Eval);
  EXPECT_GT(max_abs_diff(a, b), 0.0f);
  // Detach restores determinism.
  net.set_conv_eval_hooks(nullptr);
  Tensor c = net.forward(x, nn::Mode::Eval);
  Tensor d = net.forward(x, nn::Mode::Eval);
  EXPECT_EQ(max_abs_diff(c, d), 0.0f);
}

TEST(RandomPad, OutputShapeAndContentBounds) {
  Rng rng(7);
  Tensor img = Tensor::uniform({3, 24, 24}, 0, 1, rng);
  RandomPadOptions opt;
  for (int t = 0; t < 10; ++t) {
    Tensor out = random_resize_pad(img, opt, rng);
    EXPECT_EQ(out.dim(0), 3);
    EXPECT_EQ(out.dim(1), opt.canvas);
    EXPECT_EQ(out.dim(2), opt.canvas);
    EXPECT_GE(out.min(), 0.0f);
    EXPECT_LE(out.max(), 1.0f);
  }
}

TEST(RandomPad, IsStochastic) {
  Rng rng(8);
  Tensor img = Tensor::uniform({3, 24, 24}, 0, 1, rng);
  RandomPadOptions opt;
  Tensor a = random_resize_pad(img, opt, rng);
  Tensor b = random_resize_pad(img, opt, rng);
  EXPECT_GT(max_abs_diff(a, b), 0.0f);
}

TEST(RandomPad, InvalidConfigThrows) {
  Rng rng(9);
  Tensor img({3, 8, 8});
  RandomPadOptions opt;
  opt.resize_lo = 20;
  opt.resize_hi = 40;
  opt.canvas = 30;  // resize_hi > canvas
  EXPECT_THROW(random_resize_pad(img, opt, rng), CheckError);
}

}  // namespace
}  // namespace nvm::defense

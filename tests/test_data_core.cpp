// Synthetic dataset properties and core evaluation/report helpers.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"

#include <map>

#include "core/evaluator.h"
#include "core/report.h"
#include "core/tasks.h"
#include "data/synth_vision.h"

namespace nvm {
namespace {

data::DatasetSpec small_spec() {
  data::DatasetSpec spec;
  spec.classes = 4;
  spec.image_size = 10;
  spec.train_count = 40;
  spec.test_count = 16;
  spec.seed = 77;
  return spec;
}

TEST(SynthVision, DeterministicForSeed) {
  data::Dataset a = data::make_synth_vision(small_spec());
  data::Dataset b = data::make_synth_vision(small_spec());
  ASSERT_EQ(a.train_images.size(), b.train_images.size());
  for (std::size_t i = 0; i < a.train_images.size(); ++i)
    EXPECT_EQ(max_abs_diff(a.train_images[i], b.train_images[i]), 0.0f);
}

TEST(SynthVision, DifferentSeedsDiffer) {
  data::DatasetSpec s2 = small_spec();
  s2.seed = 78;
  data::Dataset a = data::make_synth_vision(small_spec());
  data::Dataset b = data::make_synth_vision(s2);
  EXPECT_GT(max_abs_diff(a.train_images[0], b.train_images[0]), 0.0f);
}

TEST(SynthVision, PixelsInUnitRangeAndCorrectShape) {
  data::Dataset ds = data::make_synth_vision(small_spec());
  for (const Tensor& img : ds.train_images) {
    ASSERT_EQ(img.rank(), 3u);
    EXPECT_EQ(img.dim(0), 3);
    EXPECT_EQ(img.dim(1), 10);
    EXPECT_GE(img.min(), 0.0f);
    EXPECT_LE(img.max(), 1.0f);
  }
}

TEST(SynthVision, ClassesAreBalanced) {
  data::Dataset ds = data::make_synth_vision(small_spec());
  std::map<std::int64_t, int> counts;
  for (auto l : ds.train_labels) counts[l]++;
  EXPECT_EQ(counts.size(), 4u);
  for (auto& [label, c] : counts) EXPECT_EQ(c, 10);
}

TEST(SynthVision, InstancesOfSameClassVary) {
  data::DatasetSpec spec = small_spec();
  Tensor a = data::synth_image(spec, 0, 1);
  Tensor b = data::synth_image(spec, 0, 2);
  EXPECT_GT(max_abs_diff(a, b), 0.05f);
}

TEST(SynthVision, DisjointIndexStreamsGiveFreshData) {
  data::DatasetSpec spec = small_spec();
  data::Dataset ds = data::make_synth_vision(spec);
  // Indices used by train are 0..39; a far index must be a new image.
  Tensor fresh = data::synth_image(spec, 0, 1000000);
  for (std::size_t i = 0; i < ds.train_images.size(); ++i) {
    if (ds.train_labels[i] == 0) {
      EXPECT_GT(max_abs_diff(fresh, ds.train_images[i]), 0.0f);
    }
  }
}

TEST(SynthVision, SameClassMoreSimilarThanCrossClass) {
  // Texture recipes make same-class pairs correlate more than cross-class
  // pairs on average — the property that makes the task learnable.
  data::DatasetSpec spec = small_spec();
  spec.noise = 0.02f;
  auto corr = [](const Tensor& a, const Tensor& b) {
    double ma = a.mean(), mb = b.mean(), num = 0, da = 0, db = 0;
    for (std::int64_t i = 0; i < a.numel(); ++i) {
      num += (a[i] - ma) * (b[i] - mb);
      da += (a[i] - ma) * (a[i] - ma);
      db += (b[i] - mb) * (b[i] - mb);
    }
    return num / std::sqrt(da * db + 1e-12);
  };
  double same = 0, cross = 0;
  int n_same = 0, n_cross = 0;
  for (std::uint64_t i = 0; i < 6; ++i)
    for (std::uint64_t j = i + 1; j < 6; ++j) {
      same += corr(data::synth_image(spec, 1, i), data::synth_image(spec, 1, j));
      ++n_same;
      cross += corr(data::synth_image(spec, 1, i), data::synth_image(spec, 2, j));
      ++n_cross;
    }
  EXPECT_GT(same / n_same, cross / n_cross);
}

TEST(Tasks, PresetsHavePaperAnalogues) {
  const auto tasks = core::all_tasks();
  ASSERT_EQ(tasks.size(), 3u);
  EXPECT_EQ(tasks[0].name, "SCIFAR10");
  EXPECT_NE(tasks[0].paper_analogue.find("CIFAR-10"), std::string::npos);
  EXPECT_EQ(tasks[1].data_spec.classes, 20);
  EXPECT_EQ(tasks[2].data_spec.image_size, 24);
}

TEST(Tasks, NetworkMatchesDatasetClasses) {
  for (const core::Task& task : core::all_tasks()) {
    Rng rng(1);
    nn::Network net = task.make_network(rng);
    EXPECT_EQ(net.num_classes(), task.data_spec.classes) << task.name;
  }
}

TEST(Evaluator, AccuracyOfPerfectAndBrokenForward) {
  std::vector<Tensor> images;
  std::vector<std::int64_t> labels;
  for (int i = 0; i < 10; ++i) {
    images.push_back(Tensor::full({1}, static_cast<float>(i % 3)));
    labels.push_back(i % 3);
  }
  core::ForwardFn oracle = [](const Tensor& x) {
    Tensor logits({3});
    logits[static_cast<std::int64_t>(x[0])] = 1.0f;
    return logits;
  };
  EXPECT_EQ(core::accuracy(oracle, images, labels), 100.0f);
  core::ForwardFn constant = [](const Tensor&) {
    Tensor logits({3});
    logits[0] = 1.0f;
    return logits;
  };
  EXPECT_NEAR(core::accuracy(constant, images, labels), 40.0f, 1e-4f);
}

TEST(Report, DeltaFormatting) {
  EXPECT_EQ(core::with_delta(54.98f, 19.64f), "54.98 (+35.34)");
  EXPECT_EQ(core::with_delta(17.56f, 19.64f), "17.56 (-2.08)");
  EXPECT_EQ(core::fmt(3.14159f), "3.14");
}

TEST(Report, TableRejectsRaggedRows) {
  core::TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), CheckError);
}

}  // namespace
}  // namespace nvm

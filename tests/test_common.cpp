#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "common/check.h"
#include "common/env.h"
#include "common/file_cache.h"
#include "common/health.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/serialize.h"

namespace nvm {
namespace {

TEST(Check, ThrowsWithMessage) {
  EXPECT_THROW(NVM_CHECK(false, "ctx " << 42), CheckError);
  try {
    NVM_CHECK(1 == 2, "value=" << 7);
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("value=7"), std::string::npos);
  }
}

TEST(Check, ComparisonMacros) {
  NVM_CHECK_LT(1, 2);
  NVM_CHECK_LE(2, 2);
  NVM_CHECK_EQ(3, 3);
  NVM_CHECK_GT(4, 3);
  NVM_CHECK_GE(4, 4);
  EXPECT_THROW(NVM_CHECK_LT(2, 1), CheckError);
  EXPECT_THROW(NVM_CHECK_EQ(1, 2), CheckError);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(11);
  std::array<int, 7> counts{};
  const int n = 70000;
  for (int i = 0; i < n; ++i) counts[rng.uniform_index(7)]++;
  for (int c : counts) {
    EXPECT_GT(c, n / 7 - 800);
    EXPECT_LT(c, n / 7 + 800);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(17);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, SplitStreamsIndependentAndStable) {
  Rng parent(42);
  Rng c1 = parent.split(1);
  Rng c2 = parent.split(2);
  Rng c1_again = Rng(42).split(1);
  EXPECT_EQ(c1.next(), c1_again.next());
  EXPECT_NE(c1.next(), c2.next());
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  rng.shuffle(v);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 10u);
}

TEST(Rng, BernoulliRespectsP) {
  Rng rng(23);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.25);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Serialize, RoundTripAllTypes) {
  std::stringstream ss;
  {
    BinaryWriter w(ss);
    w.write_u32(0xdeadbeef);
    w.write_u64(1ull << 60);
    w.write_i64(-12345);
    w.write_f32(3.5f);
    w.write_f64(-2.25);
    w.write_string("hello world");
    w.write_f32_vec({1.0f, -2.0f, 3.0f});
    w.write_i64_vec({7, -8});
  }
  BinaryReader r(ss);
  EXPECT_EQ(r.read_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.read_u64(), 1ull << 60);
  EXPECT_EQ(r.read_i64(), -12345);
  EXPECT_EQ(r.read_f32(), 3.5f);
  EXPECT_EQ(r.read_f64(), -2.25);
  EXPECT_EQ(r.read_string(), "hello world");
  EXPECT_EQ(r.read_f32_vec(), (std::vector<float>{1.0f, -2.0f, 3.0f}));
  EXPECT_EQ(r.read_i64_vec(), (std::vector<std::int64_t>{7, -8}));
}

TEST(Serialize, TruncatedStreamThrows) {
  std::stringstream ss;
  {
    BinaryWriter w(ss);
    w.write_u32(1);
  }
  BinaryReader r(ss);
  (void)r.read_u32();
  EXPECT_THROW(r.read_u64(), CheckError);
}

TEST(Serialize, Crc32MatchesKnownVector) {
  // IEEE CRC32 check value: crc32("123456789") == 0xCBF43926.
  const char* msg = "123456789";
  EXPECT_EQ(crc32(msg, 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
  // One flipped bit changes the checksum.
  const char msg2[] = "123456788";
  EXPECT_NE(crc32(msg2, 9), 0xCBF43926u);
}

TEST(Serialize, OversizedLengthPrefixThrowsCheckError) {
  // A corrupted length prefix must raise CheckError (catchable by the
  // cache layer) instead of attempting a multi-terabyte allocation.
  std::stringstream ss;
  {
    BinaryWriter w(ss);
    w.write_u64(~0ull);  // absurd element count
  }
  BinaryReader r(ss);
  EXPECT_THROW(r.read_string(), CheckError);
}

TEST(Health, BumpAndSnapshotDeltas) {
  const HealthSnapshot before = health_snapshot();
  bump(HealthCounter::SolverNonConverged);
  bump(HealthCounter::SurrogateFallback, 3);
  const HealthSnapshot delta = health_snapshot().delta_since(before);
  EXPECT_EQ(delta.solver_nonconverged, 1u);
  EXPECT_EQ(delta.surrogate_fallbacks, 3u);
  EXPECT_EQ(delta.nonfinite_outputs, 0u);
  EXPECT_FALSE(delta.all_zero());
  EXPECT_NE(delta.summary().find("solver_nc=1"), std::string::npos);
  EXPECT_NE(delta.summary().find("fallback=3"), std::string::npos);
  const HealthSnapshot none = health_snapshot().delta_since(health_snapshot());
  EXPECT_TRUE(none.all_zero());
}

TEST(Health, LogThrottleWarnsEarlyThenSparsely) {
  EXPECT_TRUE(health_should_log(1));
  EXPECT_TRUE(health_should_log(5));
  EXPECT_FALSE(health_should_log(6));
  EXPECT_FALSE(health_should_log(1000));
  EXPECT_TRUE(health_should_log(1024));
  EXPECT_TRUE(health_should_log(2048));
}

class FileCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("nvm_cache_test_" + std::to_string(::getpid()));
    ::setenv("NVMROBUST_CACHE_DIR", dir_.c_str(), 1);
    reset_file_cache_memo_for_tests();
  }
  void TearDown() override {
    ::unsetenv("NVMROBUST_CACHE_DIR");
    std::filesystem::remove_all(dir_);
    reset_file_cache_memo_for_tests();
  }

  /// Flips the last byte of an entry on disk (inside the payload).
  void corrupt_entry(const std::string& name) {
    const auto path = dir_ / name;
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(0, std::ios::end);
    const auto size = static_cast<std::streamoff>(f.tellg());
    f.seekp(size - 1);
    f.put('\xff');
  }

  std::filesystem::path dir_;
};

TEST_F(FileCacheTest, StoreThenLoad) {
  cache_store("entry.bin", "tag1",
              [](BinaryWriter& w) { w.write_i64(99); });
  std::int64_t got = 0;
  const bool ok = cache_load("entry.bin", "tag1",
                             [&](BinaryReader& r) { got = r.read_i64(); });
  EXPECT_TRUE(ok);
  EXPECT_EQ(got, 99);
}

TEST_F(FileCacheTest, TagMismatchInvalidates) {
  cache_store("entry.bin", "tag1",
              [](BinaryWriter& w) { w.write_i64(99); });
  const bool ok =
      cache_load("entry.bin", "tag2", [](BinaryReader&) { FAIL(); });
  EXPECT_FALSE(ok);
}

TEST_F(FileCacheTest, MissingEntryReturnsFalse) {
  EXPECT_FALSE(cache_load("nope.bin", "t", [](BinaryReader&) { FAIL(); }));
}

TEST_F(FileCacheTest, BitFlippedPayloadIsQuarantinedAndRecomputed) {
  cache_store("entry.bin", "tag",
              [](BinaryWriter& w) { w.write_i64(99); });
  // Flip one payload byte on disk (the last byte is inside the i64).
  const auto path = dir_ / "entry.bin";
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(0, std::ios::end);
    const auto size = static_cast<std::streamoff>(f.tellg());
    f.seekp(size - 1);
    f.put('\xff');
  }
  const auto corrupt_before = health_value(HealthCounter::CacheCorrupt);
  // The corrupted entry must read as a miss, never as wrong data...
  EXPECT_FALSE(
      cache_load("entry.bin", "tag", [](BinaryReader&) { FAIL(); }));
  EXPECT_GT(health_value(HealthCounter::CacheCorrupt), corrupt_before);
  // ...be quarantined out of the way...
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_TRUE(std::filesystem::exists(dir_ / "entry.bin.corrupt"));
  // ...and a recompute-store-load cycle must work again.
  cache_store("entry.bin", "tag",
              [](BinaryWriter& w) { w.write_i64(42); });
  std::int64_t got = 0;
  EXPECT_TRUE(cache_load("entry.bin", "tag",
                         [&](BinaryReader& r) { got = r.read_i64(); }));
  EXPECT_EQ(got, 42);
}

TEST_F(FileCacheTest, TruncatedEntryIsRejected) {
  cache_store("entry.bin", "tag",
              [](BinaryWriter& w) { w.write_f32_vec({1.f, 2.f, 3.f}); });
  const auto path = dir_ / "entry.bin";
  std::filesystem::resize_file(path,
                               std::filesystem::file_size(path) - 5);
  EXPECT_FALSE(
      cache_load("entry.bin", "tag", [](BinaryReader&) { FAIL(); }));
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST_F(FileCacheTest, GarbageFileIsRejectedNotCrashed) {
  const auto path = dir_ / "junk.bin";
  std::filesystem::create_directories(dir_);
  {
    std::ofstream f(path, std::ios::binary);
    Rng rng(99);
    for (int i = 0; i < 256; ++i)
      f.put(static_cast<char>(rng.uniform_int(0, 255)));
  }
  EXPECT_FALSE(cache_load("junk.bin", "tag", [](BinaryReader&) { FAIL(); }));
}

TEST_F(FileCacheTest, LeftoverTmpIsReclaimedByNextStore) {
  // A crashed process can leave entry.bin.tmp behind; the next store of
  // the same entry must truncate it, publish cleanly, and leave no .tmp.
  std::filesystem::create_directories(dir_);
  const auto tmp = dir_ / "entry.bin.tmp";
  {
    std::ofstream f(tmp, std::ios::binary);
    f << "stale half-written bytes from a crashed store";
  }
  ASSERT_TRUE(std::filesystem::exists(tmp));
  cache_store("entry.bin", "tag", [](BinaryWriter& w) { w.write_i64(5); });
  EXPECT_FALSE(std::filesystem::exists(tmp));
  std::int64_t got = 0;
  EXPECT_TRUE(cache_load("entry.bin", "tag",
                         [&](BinaryReader& r) { got = r.read_i64(); }));
  EXPECT_EQ(got, 5);
}

TEST_F(FileCacheTest, FailedPublishLeavesNoTmpBehind) {
  // Force the final rename to fail by occupying the destination with a
  // non-empty directory. The store must warn, not throw, and must clean
  // up its .tmp file instead of orphaning it.
  std::filesystem::create_directories(dir_ / "entry.bin" / "sub");
  EXPECT_NO_THROW(cache_store("entry.bin", "tag",
                              [](BinaryWriter& w) { w.write_i64(5); }));
  EXPECT_FALSE(std::filesystem::exists(dir_ / "entry.bin.tmp"));
  EXPECT_TRUE(std::filesystem::is_directory(dir_ / "entry.bin"));
}

TEST_F(FileCacheTest, PersistentlyCorruptKeyRecomputesOnceThenServesMemo) {
  // A slot that keeps losing its bytes must cost ONE recompute, not one
  // per lookup: after the recompute is stored (and memoized), lookups are
  // served from the memo even though the disk slot stays empty/bad.
  cache_store("entry.bin", "tag", [](BinaryWriter& w) { w.write_i64(7); });
  corrupt_entry("entry.bin");
  EXPECT_FALSE(cache_load("entry.bin", "tag",
                          [](BinaryReader&) { FAIL(); }));  // the one miss
  cache_store("entry.bin", "tag", [](BinaryWriter& w) { w.write_i64(42); });
  // Simulate the store never sticking: the slot is empty on every probe.
  std::filesystem::remove(dir_ / "entry.bin");
  const auto memo_before = metrics::counter("cache/file/memo_hits").value();
  for (int i = 0; i < 4; ++i) {
    std::int64_t got = 0;
    EXPECT_TRUE(cache_load("entry.bin", "tag",
                           [&](BinaryReader& r) { got = r.read_i64(); }))
        << "lookup " << i;
    EXPECT_EQ(got, 42) << "lookup " << i;
  }
  EXPECT_EQ(metrics::counter("cache/file/memo_hits").value(),
            memo_before + 4);
}

TEST_F(FileCacheTest, MemoNeverServesAcrossTagChange) {
  cache_store("entry.bin", "tagA", [](BinaryWriter& w) { w.write_i64(7); });
  corrupt_entry("entry.bin");
  EXPECT_FALSE(cache_load("entry.bin", "tagA", [](BinaryReader&) { FAIL(); }));
  cache_store("entry.bin", "tagA", [](BinaryWriter& w) { w.write_i64(42); });
  std::filesystem::remove(dir_ / "entry.bin");
  // A tag change means the memoized payload is stale by definition.
  EXPECT_FALSE(cache_load("entry.bin", "tagB", [](BinaryReader&) { FAIL(); }));
}

TEST_F(FileCacheTest, MemoStandsDownAfterDiskVerifiesAgain) {
  cache_store("entry.bin", "tag", [](BinaryWriter& w) { w.write_i64(5); });
  corrupt_entry("entry.bin");
  EXPECT_FALSE(cache_load("entry.bin", "tag", [](BinaryReader&) { FAIL(); }));
  cache_store("entry.bin", "tag", [](BinaryWriter& w) { w.write_i64(6); });
  // Drain the backoff window (memo-served), then let a real probe hit the
  // healthy on-disk entry — which must clear the memo.
  for (int i = 0; i < 3; ++i) {
    std::int64_t got = 0;
    EXPECT_TRUE(cache_load("entry.bin", "tag",
                           [&](BinaryReader& r) { got = r.read_i64(); }));
    EXPECT_EQ(got, 6);
  }
  // With the memo cleared, fresh corruption is a miss again (nothing
  // stale gets served), which is exactly the stand-down we want.
  corrupt_entry("entry.bin");
  EXPECT_FALSE(cache_load("entry.bin", "tag", [](BinaryReader&) { FAIL(); }));
}

TEST_F(FileCacheTest, LoadCallbackFailureDoesNotEscape) {
  // A payload that parses but whose loader trips an NVM_CHECK (schema
  // drift) must also surface as a miss, not an exception.
  cache_store("entry.bin", "tag",
              [](BinaryWriter& w) { w.write_i64(1); });
  EXPECT_FALSE(cache_load("entry.bin", "tag", [](BinaryReader& r) {
    (void)r.read_i64();
    NVM_CHECK(false, "loader rejects payload");
  }));
}

TEST(Rng, DeriveSeedMatchesSplitAndSeparatesStreams) {
  // The batch paths seed work unit i with derive_seed(base, i); this must
  // be exactly the split() stream so serial (split-based) and parallel
  // (derive_seed-based) consumers see identical generators.
  Rng parent(123);
  for (std::uint64_t s : {0ull, 1ull, 7ull, 1000ull}) {
    Rng a = parent.split(s);
    Rng b(derive_seed(123, s));
    for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), b.next());
  }
  // Distinct streams decorrelate.
  EXPECT_NE(derive_seed(123, 0), derive_seed(123, 1));
  EXPECT_NE(derive_seed(123, 0), derive_seed(124, 0));
}

TEST(Env, ScaledSelectsByFlag) {
  ::unsetenv("REPRO_FULL");
  EXPECT_EQ(scaled(10, 100), 10);
  ::setenv("REPRO_FULL", "1", 1);
  EXPECT_EQ(scaled(10, 100), 100);
  ::unsetenv("REPRO_FULL");
}

TEST(Env, EnvIntParsesAndFallsBack) {
  ::setenv("NVM_TEST_INT", "42", 1);
  EXPECT_EQ(env_int("NVM_TEST_INT", 7), 42);
  ::unsetenv("NVM_TEST_INT");
  EXPECT_EQ(env_int("NVM_TEST_INT", 7), 7);
  ::setenv("NVM_TEST_INT", "junk", 1);
  EXPECT_EQ(env_int("NVM_TEST_INT", 7), 7);
  ::unsetenv("NVM_TEST_INT");
}

TEST(Env, EnvIntRejectsTrailingGarbageAndOverflow) {
  // "8abc" is a typo, not 8: a partial parse must not be half-accepted.
  ::setenv("NVM_TEST_INT", "8abc", 1);
  EXPECT_EQ(env_int("NVM_TEST_INT", 7), 7);
  ::setenv("NVM_TEST_INT", "4 2", 1);
  EXPECT_EQ(env_int("NVM_TEST_INT", 7), 7);
  // Surrounding whitespace is fine; strtoll skips it leading, we allow it
  // trailing.
  ::setenv("NVM_TEST_INT", " 42 ", 1);
  EXPECT_EQ(env_int("NVM_TEST_INT", 7), 42);
  ::setenv("NVM_TEST_INT", "-12", 1);
  EXPECT_EQ(env_int("NVM_TEST_INT", 7), -12);
  // Out-of-range values would otherwise silently clamp to LLONG_MAX/MIN.
  ::setenv("NVM_TEST_INT", "99999999999999999999999999", 1);
  EXPECT_EQ(env_int("NVM_TEST_INT", 7), 7);
  ::setenv("NVM_TEST_INT", "-99999999999999999999999999", 1);
  EXPECT_EQ(env_int("NVM_TEST_INT", 7), 7);
  ::setenv("NVM_TEST_INT", "", 1);
  EXPECT_EQ(env_int("NVM_TEST_INT", 7), 7);
  ::unsetenv("NVM_TEST_INT");
}

}  // namespace
}  // namespace nvm

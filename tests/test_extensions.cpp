// Tests for the extension modules: chip variation, cost model, and the
// random-noise attack control.
#include <gtest/gtest.h>

#include "common/check.h"

#include "attack/noise.h"
#include "common/thread_pool.h"
#include "nn/resnet.h"
#include "puma/cost_model.h"
#include "xbar/geniex.h"
#include "xbar/variation.h"

namespace nvm {
namespace {

xbar::CrossbarConfig var_cfg() {
  xbar::CrossbarConfig cfg = xbar::xbar_32x32_100k();
  cfg.rows = cfg.cols = 8;
  return cfg;
}

TEST(Variation, DeterministicPerChip) {
  auto base = std::make_shared<xbar::IdealXbarModel>(var_cfg());
  xbar::VariationOptions opt;
  opt.chip_seed = 7;
  xbar::VariationModel chip7(base, opt);
  xbar::VariationModel chip7_again(base, opt);
  Rng rng(1);
  Tensor g = xbar::sample_conductances(var_cfg(), rng);
  EXPECT_EQ(max_abs_diff(chip7.perturb(g), chip7_again.perturb(g)), 0.0f);
}

TEST(Variation, DifferentChipsDiffer) {
  auto base = std::make_shared<xbar::IdealXbarModel>(var_cfg());
  xbar::VariationOptions a, b;
  a.chip_seed = 1;
  b.chip_seed = 2;
  Rng rng(2);
  Tensor g = xbar::sample_conductances(var_cfg(), rng);
  EXPECT_GT(max_abs_diff(xbar::VariationModel(base, a).perturb(g),
                         xbar::VariationModel(base, b).perturb(g)),
            0.0f);
}

TEST(Variation, PerturbationStaysInProgrammableRange) {
  const auto cfg = var_cfg();
  auto base = std::make_shared<xbar::IdealXbarModel>(cfg);
  xbar::VariationOptions opt;
  opt.write_sigma = 0.3;  // deliberately large
  xbar::VariationModel chip(base, opt);
  Rng rng(3);
  for (int t = 0; t < 8; ++t) {
    Tensor g = xbar::sample_conductances(cfg, rng);
    Tensor p = chip.perturb(g);
    EXPECT_GE(p.min(), cfg.g_off() * (1 - 1e-6));
    EXPECT_LE(p.max(), cfg.g_on() * (1 + 1e-6));
  }
}

TEST(Variation, PerturbationScaleTracksSigma) {
  const auto cfg = var_cfg();
  auto base = std::make_shared<xbar::IdealXbarModel>(cfg);
  Rng rng(4);
  Tensor g = Tensor::full({8, 8}, static_cast<float>(0.5 * (cfg.g_on() + cfg.g_off())));
  xbar::VariationOptions small, big;
  small.write_sigma = 0.02;
  small.process_sigma = 0.0;
  big.write_sigma = 0.2;
  big.process_sigma = 0.0;
  const float dev_small =
      max_abs_diff(xbar::VariationModel(base, small).perturb(g), g);
  const float dev_big =
      max_abs_diff(xbar::VariationModel(base, big).perturb(g), g);
  EXPECT_GT(dev_big, dev_small * 3);
}

TEST(Variation, ClampsExactlyAtProgrammableBoundaries) {
  // Devices already programmed to a rail plus huge noise: the perturbed
  // matrix must stay a valid conductance matrix (program() would reject
  // anything outside [g_off, g_on]).
  const auto cfg = var_cfg();
  auto base = std::make_shared<xbar::IdealXbarModel>(cfg);
  xbar::VariationOptions opt;
  opt.write_sigma = 0.5;
  opt.process_sigma = 0.5;
  xbar::VariationModel chip(base, opt);
  for (float rail : {static_cast<float>(cfg.g_off()),
                     static_cast<float>(cfg.g_on())}) {
    Tensor g = Tensor::full({cfg.rows, cfg.cols}, rail);
    Tensor p = chip.perturb(g);
    EXPECT_GE(p.min(), cfg.g_off() * (1 - 1e-6));
    EXPECT_LE(p.max(), cfg.g_on() * (1 + 1e-6));
    // The clamped matrix must actually program.
    EXPECT_NO_THROW(chip.program(g));
  }
}

TEST(Variation, BitIdenticalAcrossPoolSizes) {
  // The chip noise must depend only on (chip_seed, device position) —
  // never on how many workers NVM_THREADS grants the batch paths.
  const auto cfg = var_cfg();
  auto base = std::make_shared<xbar::IdealXbarModel>(cfg);
  xbar::VariationOptions opt;
  opt.chip_seed = 9;
  xbar::VariationModel chip(base, opt);
  Rng rng(21);
  Tensor g = xbar::sample_conductances(cfg, rng);
  Tensor vb({cfg.rows, 6});
  for (std::int64_t i = 0; i < cfg.rows; ++i)
    for (std::int64_t k = 0; k < 6; ++k)
      vb.at(i, k) = static_cast<float>(rng.uniform(0, cfg.v_read));

  Tensor p_serial, r_serial, p_wide, r_wide;
  {
    ThreadPool serial(1);
    ThreadPool::ScopedUse use(serial);
    p_serial = chip.perturb(g);
    r_serial = chip.program(g)->mvm_batch(vb);
  }
  {
    ThreadPool wide(4);
    ThreadPool::ScopedUse use(wide);
    p_wide = chip.perturb(g);
    r_wide = chip.program(g)->mvm_batch(vb);
  }
  EXPECT_EQ(max_abs_diff(p_serial, p_wide), 0.0f);
  EXPECT_EQ(max_abs_diff(r_serial, r_wide), 0.0f);
}

TEST(Variation, MvmFlowsThroughBaseModel) {
  const auto cfg = var_cfg();
  auto base = std::make_shared<xbar::IdealXbarModel>(cfg);
  xbar::VariationOptions opt;
  opt.write_sigma = 0.05;
  xbar::VariationModel chip(base, opt);
  Rng rng(5);
  Tensor g = xbar::sample_conductances(cfg, rng);
  Tensor v = xbar::sample_voltages(cfg, rng);
  Tensor got = chip.program(g)->mvm(v);
  Tensor expected = xbar::ideal_mvm(chip.perturb(g), v);
  EXPECT_LT(max_abs_diff(got, expected), 1e-6f * cfg.i_scale());
}

nn::Network tiny_net() {
  Rng rng(6);
  nn::ResnetCifarSpec spec;
  spec.blocks_per_stage = 1;
  spec.widths = {4, 4, 8};
  spec.num_classes = 2;
  return nn::make_resnet_cifar(spec, rng);
}

TEST(CostModel, CountsEveryMvmLayer) {
  nn::Network net = tiny_net();
  Tensor sample({3, 8, 8});
  puma::CostReport report = puma::estimate_cost(
      net, sample, xbar::xbar_64x64_100k(), puma::HwConfig{});
  // stem conv + 3 blocks x 2 convs + 1 projection pair + linear = 9 GEMMs.
  EXPECT_GE(report.layers.size(), 8u);
  EXPECT_GT(report.total_energy_nj, 0.0);
  EXPECT_GT(report.total_latency_us, 0.0);
  EXPECT_GT(report.mean_utilization, 0.0);
  EXPECT_LE(report.mean_utilization, 1.0);
}

TEST(CostModel, PassCountScalesWithSlicesAndStreams) {
  nn::Network net = tiny_net();
  Tensor sample({3, 8, 8});
  const auto cfg = xbar::xbar_64x64_100k();
  puma::HwConfig fine;  // 2 slices x 2 streams
  puma::HwConfig coarse;
  coarse.slice_bits = 6;   // 1 slice
  coarse.stream_bits = 6;  // 1 stream
  auto r_fine = puma::estimate_cost(net, sample, cfg, fine);
  auto r_coarse = puma::estimate_cost(net, sample, cfg, coarse);
  EXPECT_EQ(r_fine.total_crossbar_reads, 4 * r_coarse.total_crossbar_reads);
}

TEST(CostModel, SmallerArraysNeedMoreTiles) {
  nn::Network net = tiny_net();
  Tensor sample({3, 8, 8});
  xbar::CrossbarConfig big = xbar::xbar_64x64_100k();
  xbar::CrossbarConfig small = xbar::xbar_32x32_100k();
  auto r_big = puma::estimate_cost(net, sample, big, puma::HwConfig{});
  auto r_small = puma::estimate_cost(net, sample, small, puma::HwConfig{});
  EXPECT_GT(r_small.total_crossbar_reads, r_big.total_crossbar_reads);
}

TEST(CostModel, LeavesNetworkRestored) {
  nn::Network net = tiny_net();
  Tensor sample({3, 8, 8});
  Tensor before = net.forward(sample, nn::Mode::Eval);
  (void)puma::estimate_cost(net, sample, xbar::xbar_64x64_100k(),
                            puma::HwConfig{});
  Tensor after = net.forward(sample, nn::Mode::Eval);
  EXPECT_EQ(max_abs_diff(before, after), 0.0f);
}

TEST(NoiseControl, RespectsBudgetAndRange) {
  Rng rng(7);
  Tensor x = Tensor::uniform({3, 6, 6}, 0.0f, 1.0f, rng);
  for (float eps : {0.02f, 0.1f}) {
    Tensor s = attack::random_sign_noise(x, eps, rng);
    Tensor u = attack::random_uniform_noise(x, eps, rng);
    for (std::int64_t i = 0; i < x.numel(); ++i) {
      EXPECT_LE(std::abs(s[i] - x[i]), eps + 1e-6f);
      EXPECT_LE(std::abs(u[i] - x[i]), eps + 1e-6f);
      EXPECT_GE(s[i], 0.0f);
      EXPECT_LE(s[i], 1.0f);
    }
  }
}

TEST(NoiseControl, SignNoiseSaturatesBudget) {
  Rng rng(8);
  Tensor x = Tensor::full({3, 4, 4}, 0.5f);
  Tensor s = attack::random_sign_noise(x, 0.1f, rng);
  for (std::int64_t i = 0; i < x.numel(); ++i)
    EXPECT_NEAR(std::abs(s[i] - x[i]), 0.1f, 1e-6f);
}

}  // namespace
}  // namespace nvm

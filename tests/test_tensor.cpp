#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/check.h"
#include "tensor/tensor.h"

namespace nvm {
namespace {

TEST(Shape, NumelAndString) {
  EXPECT_EQ(shape_numel({2, 3, 4}), 24);
  EXPECT_EQ(shape_numel({}), 1);
  EXPECT_EQ(shape_numel({0, 5}), 0);
  EXPECT_EQ(shape_str({2, 3}), "[2, 3]");
}

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.numel(), 0);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, ConstructWithDataValidatesSize) {
  EXPECT_NO_THROW(Tensor({2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor({2, 2}, {1, 2, 3}), CheckError);
}

TEST(Tensor, FactoryFull) {
  Tensor t = Tensor::full({3}, 2.5f);
  EXPECT_EQ(t.sum(), 7.5f);
}

TEST(Tensor, UniformRespectsBounds) {
  Rng rng(1);
  Tensor t = Tensor::uniform({1000}, -2.0f, 3.0f, rng);
  EXPECT_GE(t.min(), -2.0f);
  EXPECT_LT(t.max(), 3.0f);
  EXPECT_GT(t.max(), 1.0f);  // actually spans the range
  EXPECT_LT(t.min(), 0.0f);
}

TEST(Tensor, IndexingRoundTrips) {
  Tensor t({2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 42.0f;
  EXPECT_EQ(t.at(1, 2, 3, 4), 42.0f);
  EXPECT_EQ(t[t.numel() - 1], 42.0f);
}

TEST(Tensor, IndexingOutOfRangeThrows) {
  Tensor t({2, 3});
  EXPECT_THROW(t.at(2, 0), CheckError);
  EXPECT_THROW(t.at(0, 3), CheckError);
  EXPECT_THROW(t.at(-1, 0), CheckError);
  EXPECT_THROW((void)t[6], CheckError);
  EXPECT_THROW(t.at(0, 0, 0), CheckError);  // wrong rank
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.at(2, 1), 6.0f);
  EXPECT_THROW(t.reshape({4, 2}), CheckError);
}

TEST(Tensor, ElementwiseArithmetic) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {10, 20, 30});
  Tensor c = a + b;
  EXPECT_EQ(c[1], 22.0f);
  c -= a;
  EXPECT_EQ(c[2], 30.0f);
  c *= 2.0f;
  EXPECT_EQ(c[0], 20.0f);
  Tensor d = a * b;
  EXPECT_EQ(d[2], 90.0f);
  d += 1.0f;
  EXPECT_EQ(d[0], 11.0f);
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a({3});
  Tensor b({4});
  EXPECT_THROW(a += b, CheckError);
  EXPECT_THROW(a *= b, CheckError);
  EXPECT_THROW(a.add_scaled(b, 1.0f), CheckError);
}

TEST(Tensor, AddScaledIsAxpy) {
  Tensor a({2}, {1, 2});
  Tensor b({2}, {10, 20});
  a.add_scaled(b, 0.5f);
  EXPECT_EQ(a[0], 6.0f);
  EXPECT_EQ(a[1], 12.0f);
}

TEST(Tensor, ClampBounds) {
  Tensor t({4}, {-2, 0.5f, 3, 100});
  t.clamp(0.0f, 1.0f);
  EXPECT_EQ(t[0], 0.0f);
  EXPECT_EQ(t[1], 0.5f);
  EXPECT_EQ(t[3], 1.0f);
}

TEST(Tensor, Reductions) {
  Tensor t({4}, {-1, 2, -3, 4});
  EXPECT_EQ(t.sum(), 2.0f);
  EXPECT_EQ(t.mean(), 0.5f);
  EXPECT_EQ(t.min(), -3.0f);
  EXPECT_EQ(t.max(), 4.0f);
  EXPECT_EQ(t.argmax(), 3);
  EXPECT_EQ(t.abs_max(), 4.0f);
  EXPECT_NEAR(t.norm2(), std::sqrt(30.0f), 1e-5f);
}

TEST(Tensor, ArgmaxFirstOnTies) {
  Tensor t({3}, {5, 5, 5});
  EXPECT_EQ(t.argmax(), 0);
}

TEST(Tensor, SaveLoadRoundTrip) {
  Rng rng(3);
  Tensor t = Tensor::normal({3, 4}, 0.0f, 1.0f, rng);
  std::stringstream ss;
  BinaryWriter w(ss);
  t.save(w);
  BinaryReader r(ss);
  Tensor u = Tensor::load(r);
  EXPECT_TRUE(u.same_shape(t));
  EXPECT_EQ(max_abs_diff(t, u), 0.0f);
}

TEST(Tensor, MaxAbsDiff) {
  Tensor a({2}, {1, 5});
  Tensor b({2}, {2, 3});
  EXPECT_EQ(max_abs_diff(a, b), 2.0f);
}

// Property: (a + b) - b recovers a exactly for values with exact float sums.
TEST(TensorProperty, AddSubInverse) {
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    Tensor a = Tensor::uniform({37}, -8.0f, 8.0f, rng);
    Tensor b = Tensor::uniform({37}, -8.0f, 8.0f, rng);
    Tensor c = (a + b) - b;
    EXPECT_LT(max_abs_diff(a, c), 1e-5f);
  }
}

}  // namespace
}  // namespace nvm

// nvm::serve::Cluster semantics: the routed-vs-serial bit-identity matrix
// (shard counts x dispatch policies x per-shard thread counts),
// drain-loses-no-request under concurrent submitters, exact overload-shed
// accounting against the per-shard counters, consistent-hash stability
// under shard-set changes, router policy selection, multi-tenant
// isolation, and NVM_CLUSTER_* env plumbing.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "serve/cluster.h"
#include "xbar/fast_noise.h"
#include "xbar/model_zoo.h"

namespace nvm {
namespace {

std::vector<Tensor> random_requests(std::int64_t n, std::int64_t feat,
                                    std::uint64_t seed) {
  std::vector<Tensor> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    Rng rng(derive_seed(seed, static_cast<std::uint64_t>(i)));
    Tensor x({feat});
    for (auto& v : x.data()) v = static_cast<float>(rng.uniform());
    out.push_back(std::move(x));
  }
  return out;
}

serve::ModelSpec linear_spec(const std::string& name, std::int64_t classes,
                             std::int64_t feat, std::uint64_t wseed) {
  xbar::CrossbarConfig cfg = xbar::xbar_32x32_100k();
  cfg.rows = cfg.cols = 16;
  cfg.name = "cluster_test_16x16";
  auto model = std::make_shared<xbar::FastNoiseModel>(cfg);
  Rng wrng(wseed);
  Tensor w({classes, feat});
  for (auto& v : w.data()) v = static_cast<float>(wrng.uniform(-1.0, 1.0));
  return serve::tiled_linear_spec(name, std::move(w), std::move(model),
                                  puma::HwConfig{}, 1.0f);
}

/// Gate shared by every shard's backend instance, so tests can hold all
/// schedulers inside their current batch while manipulating queues.
struct SharedGate {
  std::mutex mu;
  std::condition_variable entered_cv, gate_cv;
  int entered = 0;
  bool open = false;

  void wait_entered(int k) {
    std::unique_lock<std::mutex> lock(mu);
    entered_cv.wait(lock, [&] { return entered >= k; });
  }
  void release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      open = true;
    }
    gate_cv.notify_all();
  }
};

class GatedBackend final : public serve::BatchClassifier {
 public:
  GatedBackend(std::shared_ptr<SharedGate> gate, std::int64_t feat,
               std::int64_t classes)
      : gate_(std::move(gate)), feat_(feat), classes_(classes) {}

  std::int64_t feature_dim() const override { return feat_; }
  std::int64_t classes() const override { return classes_; }

  Tensor logits_block(const Tensor& x) override {
    {
      std::unique_lock<std::mutex> lock(gate_->mu);
      ++gate_->entered;
      gate_->entered_cv.notify_all();
      gate_->gate_cv.wait(lock, [&] { return gate_->open; });
    }
    const std::int64_t n = x.dim(1);
    Tensor out({classes_, n});
    for (std::int64_t j = 0; j < classes_; ++j)
      for (std::int64_t k = 0; k < n; ++k)
        out.at(j, k) = x.at(j % feat_, k) + static_cast<float>(j);
    return out;
  }

 private:
  std::shared_ptr<SharedGate> gate_;
  std::int64_t feat_, classes_;
};

serve::ModelSpec gated_spec(const std::string& name,
                            std::shared_ptr<SharedGate> gate,
                            std::int64_t feat, std::int64_t classes) {
  serve::ModelSpec spec;
  spec.name = name;
  spec.make_backend = [gate, feat, classes](std::int64_t) {
    return std::make_unique<GatedBackend>(gate, feat, classes);
  };
  return spec;
}

// The tentpole acceptance matrix: a single-tenant cluster must answer
// bit-identically to serial classify for every {shard count} x {dispatch
// policy} x {threads per shard} combination. Every shard programs its own
// tiles (no RNG in programming => identical copies) and every backend is
// batch-invariant, so WHERE a request runs can never change its logits.
TEST(ServeCluster, RoutedBitIdenticalToSerialClassifyMatrix) {
  const std::int64_t classes = 8, feat = 48, n = 48;
  const std::vector<Tensor> requests = random_requests(n, feat, 21);

  // Serial reference: the same backend construction, one process-wide
  // instance, one column at a time.
  serve::ModelSpec ref_spec = linear_spec("ref", classes, feat, 3);
  std::unique_ptr<serve::BatchClassifier> ref_backend =
      ref_spec.make_backend(0);
  std::vector<Tensor> ref_logits;
  std::vector<std::int64_t> ref_labels;
  for (const Tensor& x : requests) {
    Tensor col = x;
    col.reshape({feat, 1});
    Tensor out = ref_backend->logits_block(col);
    out.reshape({classes});
    ref_labels.push_back(out.argmax());
    ref_logits.push_back(std::move(out));
  }

  const serve::DispatchPolicy policies[] = {
      serve::DispatchPolicy::RoundRobin,
      serve::DispatchPolicy::ConsistentHash,
      serve::DispatchPolicy::LeastLoaded,
  };
  for (std::int64_t shards : {1, 2, 4}) {
    for (serve::DispatchPolicy policy : policies) {
      for (std::int64_t threads : {1, 4}) {
        serve::ClusterOptions opt;
        opt.shards = shards;
        opt.policy = policy;
        opt.threads_per_shard = threads;
        opt.serve.max_batch = 8;
        opt.serve.flush_us = 50;
        serve::Cluster cluster(opt);
        cluster.add_model(linear_spec("ref", classes, feat, 3));

        std::vector<serve::Server::Ticket> tickets;
        tickets.reserve(static_cast<std::size_t>(n));
        for (std::int64_t i = 0; i < n; ++i)
          tickets.push_back(cluster.submit(
              "ref", static_cast<std::uint64_t>(i),
              requests[static_cast<std::size_t>(i)]));
        for (std::int64_t i = 0; i < n; ++i) {
          serve::Reply r = tickets[static_cast<std::size_t>(i)].get();
          ASSERT_EQ(r.status, serve::ReplyStatus::Ok)
              << "shards=" << shards << " policy=" << to_string(policy)
              << " threads=" << threads << " i=" << i;
          EXPECT_EQ(r.label, ref_labels[static_cast<std::size_t>(i)]);
          ASSERT_GE(r.shard, 0);
          ASSERT_LT(r.shard, shards);
          const Tensor& ref = ref_logits[static_cast<std::size_t>(i)];
          for (std::int64_t j = 0; j < classes; ++j)
            ASSERT_EQ(r.logits[j], ref[j])
                << "shards=" << shards << " policy=" << to_string(policy)
                << " threads=" << threads << " i=" << i << " j=" << j;
        }
      }
    }
  }
}

// Graceful drain loses nothing: with 4 threads submitting concurrently
// while the cluster drains, every ticket resolves and every request is
// either served (admitted before drain) or rejected as Shutdown — never
// lost, never both.
TEST(ServeCluster, DrainUnderConcurrentSubmitLosesNoRequest) {
  const std::int64_t classes = 4, feat = 8;
  serve::ClusterOptions opt;
  opt.shards = 2;
  opt.policy = serve::DispatchPolicy::RoundRobin;
  opt.serve.max_batch = 4;
  opt.serve.flush_us = 0;
  serve::Cluster cluster(opt);
  cluster.add_model(linear_spec("m", classes, feat, 5));

  constexpr int kThreads = 4, kPerThread = 50;
  std::vector<std::vector<serve::Server::Ticket>> tickets(kThreads);
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      Rng rng(derive_seed(77, static_cast<std::uint64_t>(t)));
      for (int i = 0; i < kPerThread; ++i) {
        Tensor x({feat});
        for (auto& v : x.data()) v = static_cast<float>(rng.uniform());
        tickets[static_cast<std::size_t>(t)].push_back(cluster.submit(
            "m", static_cast<std::uint64_t>(t * kPerThread + i),
            std::move(x)));
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  cluster.drain();
  for (auto& th : submitters) th.join();

  std::int64_t ok = 0, shutdown = 0, other = 0;
  for (auto& per_thread : tickets) {
    ASSERT_EQ(per_thread.size(), static_cast<std::size_t>(kPerThread));
    for (auto& ticket : per_thread) {
      const serve::Reply r = ticket.get();
      if (r.status == serve::ReplyStatus::Ok) ++ok;
      else if (r.status == serve::ReplyStatus::Shutdown) ++shutdown;
      else ++other;
    }
  }
  EXPECT_EQ(ok + shutdown, kThreads * kPerThread);
  EXPECT_EQ(other, 0);
  // Idempotent; queues are empty afterwards.
  cluster.drain();
  EXPECT_EQ(cluster.shard_queue_depth(0), 0);
  EXPECT_EQ(cluster.shard_queue_depth(1), 0);
}

// Exact shed accounting on one gated shard: hold the scheduler inside a
// batch, fill the queue to capacity, then submit M more — exactly M shed
// replies and exactly M ticks on the shard's shed counter; everything
// admitted is eventually served.
TEST(ServeCluster, OverloadShedAccountingIsExact) {
  const std::int64_t feat = 6, classes = 3, cap = 2;
  auto gate = std::make_shared<SharedGate>();

  serve::ClusterOptions opt;
  opt.shards = 1;
  opt.policy = serve::DispatchPolicy::RoundRobin;
  opt.serve.max_batch = 1;
  opt.serve.flush_us = 0;
  opt.serve.queue_capacity = cap;
  serve::Cluster cluster(opt);

  serve::ModelSpec spec = gated_spec("gated", gate, feat, classes);
  cluster.add_model(std::move(spec));

  const std::uint64_t shed_before =
      metrics::counter("serve/shard0/shed").value();
  const std::uint64_t requests_before =
      metrics::counter("serve/cluster/requests").value();

  auto request = [&](std::uint64_t key) {
    Tensor x({feat});
    for (auto& v : x.data()) v = 0.25f;
    return cluster.submit("gated", key, std::move(x));
  };

  // One request enters the (gated) batch, then `cap` fill the queue.
  std::vector<serve::Server::Ticket> admitted;
  admitted.push_back(request(0));
  gate->wait_entered(1);
  for (std::int64_t i = 0; i < cap; ++i)
    admitted.push_back(request(static_cast<std::uint64_t>(1 + i)));
  EXPECT_EQ(cluster.shard_queue_depth(0), cap);

  // Overload: every further submit must shed, immediately and exactly.
  constexpr int kOverload = 5;
  for (int i = 0; i < kOverload; ++i) {
    const serve::Reply r =
        request(static_cast<std::uint64_t>(100 + i)).get();
    EXPECT_EQ(r.status, serve::ReplyStatus::Shed);
  }
  EXPECT_EQ(metrics::counter("serve/shard0/shed").value() - shed_before,
            static_cast<std::uint64_t>(kOverload));
  EXPECT_EQ(
      metrics::counter("serve/cluster/requests").value() - requests_before,
      static_cast<std::uint64_t>(1 + cap + kOverload));

  gate->release();
  for (auto& ticket : admitted)
    EXPECT_EQ(ticket.get().status, serve::ReplyStatus::Ok);
  cluster.drain();
  EXPECT_EQ(cluster.shard_queue_depth(0), 0);
}

// Consistent hashing is stable under shard-set changes: removing one
// shard from a 4-shard ring only remaps keys that shard owned; every key
// owned by a surviving shard keeps its owner. Load also spreads: every
// shard owns a reasonable share of the key space.
TEST(ServeCluster, ConsistentHashStableUnderShardRemoval) {
  const int vnodes = 64;
  const serve::HashRing ring4({0, 1, 2, 3}, vnodes);
  const serve::HashRing ring3({0, 1, 3}, vnodes);  // shard 2 drained

  constexpr std::uint64_t kKeys = 4000;
  std::int64_t moved = 0;
  std::vector<std::int64_t> owned(4, 0);
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    const std::int64_t before = ring4.owner(key);
    const std::int64_t after = ring3.owner(key);
    ASSERT_NE(after, 2) << "drained shard still owns key " << key;
    ++owned[static_cast<std::size_t>(before)];
    if (before == 2) {
      ++moved;  // orphaned keys must land somewhere among the survivors
    } else {
      ASSERT_EQ(after, before)
          << "key " << key << " moved between surviving shards";
    }
  }
  // Every shard held a nontrivial share (vnodes smooth the ring); the
  // moved fraction is exactly the drained shard's share.
  for (std::int64_t k = 0; k < 4; ++k)
    EXPECT_GT(owned[static_cast<std::size_t>(k)], kKeys / 16)
        << "shard " << k << " owns almost nothing";
  EXPECT_EQ(moved, owned[2]);

  // Determinism: an identical ring gives identical ownership.
  const serve::HashRing again({0, 1, 2, 3}, vnodes);
  for (std::uint64_t key = 0; key < 256; ++key)
    ASSERT_EQ(again.owner(key), ring4.owner(key));
}

TEST(ServeCluster, RouterPolicies) {
  serve::Router rr(3, serve::DispatchPolicy::RoundRobin, 8);
  EXPECT_EQ(rr.route(99, {}), 0);
  EXPECT_EQ(rr.route(99, {}), 1);
  EXPECT_EQ(rr.route(99, {}), 2);
  EXPECT_EQ(rr.route(99, {}), 0);

  serve::Router hash(3, serve::DispatchPolicy::ConsistentHash, 8);
  const std::int64_t owner = hash.route(1234, {});
  for (int i = 0; i < 5; ++i) EXPECT_EQ(hash.route(1234, {}), owner);

  serve::Router least(4, serve::DispatchPolicy::LeastLoaded, 8);
  EXPECT_EQ(least.route(0, {3, 1, 2, 5}), 1);
  EXPECT_EQ(least.route(0, {2, 2, 0, 0}), 2);  // tie -> lowest index
  EXPECT_EQ(least.route(0, {0, 0, 0, 0}), 0);

  serve::DispatchPolicy p;
  EXPECT_TRUE(serve::try_parse_policy("consistent_hash", &p));
  EXPECT_EQ(p, serve::DispatchPolicy::ConsistentHash);
  EXPECT_FALSE(serve::try_parse_policy("fastest", &p));
  EXPECT_EQ(p, serve::DispatchPolicy::ConsistentHash);  // untouched
}

// Multi-tenant residency and isolation: two models resident at once serve
// correct (distinct) results, and saturating tenant A's bounded queue
// sheds only A — tenant B's admission is untouched.
TEST(ServeCluster, MultiTenantResidencyAndQueueIsolation) {
  const std::int64_t feat = 6, classes = 3;
  auto gate = std::make_shared<SharedGate>();

  serve::ClusterOptions opt;
  opt.shards = 1;
  opt.policy = serve::DispatchPolicy::RoundRobin;
  opt.serve.max_batch = 1;
  opt.serve.flush_us = 0;
  serve::Cluster cluster(opt);

  serve::ModelSpec a = gated_spec("tenant_a", gate, feat, classes);
  a.queue_capacity = 1;  // per-model admission override
  cluster.add_model(std::move(a));
  cluster.add_model(linear_spec("tenant_b", classes, feat, 9));
  EXPECT_TRUE(cluster.has_model("tenant_a"));
  EXPECT_TRUE(cluster.has_model("tenant_b"));
  EXPECT_EQ(cluster.models().size(), 2u);

  Tensor x({feat});
  for (auto& v : x.data()) v = 0.5f;

  // Saturate tenant A: one in the (gated) batch, one queued, rest shed.
  std::vector<serve::Server::Ticket> a_tickets;
  a_tickets.push_back(cluster.submit("tenant_a", 0, x));
  gate->wait_entered(1);
  a_tickets.push_back(cluster.submit("tenant_a", 1, x));
  EXPECT_EQ(cluster.submit("tenant_a", 2, x).get().status,
            serve::ReplyStatus::Shed);

  // Tenant B still serves while A is wedged: separate queue, separate
  // scheduler thread.
  const serve::Reply rb = cluster.classify("tenant_b", 0, x);
  EXPECT_EQ(rb.status, serve::ReplyStatus::Ok);
  EXPECT_EQ(rb.logits.numel(), classes);

  gate->release();
  for (auto& t : a_tickets)
    EXPECT_EQ(t.get().status, serve::ReplyStatus::Ok);

  // Unknown tenants resolve to Error without touching any shard.
  EXPECT_EQ(cluster.submit("nobody", 0, x).get().status,
            serve::ReplyStatus::Error);
}

TEST(ServeCluster, ClusterOptionsFromEnv) {
  setenv("NVM_CLUSTER_SHARDS", "5", 1);
  setenv("NVM_CLUSTER_POLICY", "consistent_hash", 1);
  setenv("NVM_CLUSTER_VNODES", "17", 1);
  setenv("NVM_CLUSTER_SHARD_THREADS", "2", 1);
  serve::ClusterOptions o = serve::ClusterOptions::from_env();
  EXPECT_EQ(o.shards, 5);
  EXPECT_EQ(o.policy, serve::DispatchPolicy::ConsistentHash);
  EXPECT_EQ(o.vnodes, 17);
  EXPECT_EQ(o.threads_per_shard, 2);

  // Unknown policy text warns and keeps the default.
  setenv("NVM_CLUSTER_POLICY", "warp_speed", 1);
  o = serve::ClusterOptions::from_env();
  EXPECT_EQ(o.policy, serve::DispatchPolicy::LeastLoaded);

  unsetenv("NVM_CLUSTER_SHARDS");
  unsetenv("NVM_CLUSTER_POLICY");
  unsetenv("NVM_CLUSTER_VNODES");
  unsetenv("NVM_CLUSTER_SHARD_THREADS");
}

// run_cluster_open_loop: saturation traffic over 2 shards; everything is
// served, labels align with requests, per-shard ok counts partition the
// total, and round_robin touches both shards.
TEST(ServeCluster, OpenLoopTrafficPartitionsAcrossShards) {
  const std::int64_t classes = 5, feat = 16, n = 60;
  serve::ClusterOptions opt;
  opt.shards = 2;
  opt.policy = serve::DispatchPolicy::RoundRobin;
  opt.serve.max_batch = 8;
  opt.serve.flush_us = 50;
  serve::Cluster cluster(opt);
  cluster.add_model(linear_spec("m", classes, feat, 13));

  const std::vector<Tensor> requests = random_requests(n, feat, 31);
  const std::vector<std::string> models = {"m"};
  serve::TrafficOptions traffic;
  traffic.rate_rps = 0.0;  // saturation: submit back-to-back
  const serve::ClusterTrafficReport rep =
      run_cluster_open_loop(cluster, models, requests, traffic);

  EXPECT_EQ(rep.total.ok, n);
  EXPECT_EQ(rep.total.shed + rep.total.errors + rep.total.timed_out, 0);
  ASSERT_EQ(rep.shards.size(), 2u);
  EXPECT_EQ(rep.shards[0].ok + rep.shards[1].ok, n);
  EXPECT_GT(rep.shards[0].ok, 0);
  EXPECT_GT(rep.shards[1].ok, 0);
  for (std::int64_t label : rep.total.labels) EXPECT_GE(label, 0);
}

}  // namespace
}  // namespace nvm

// Attack implementations against small analytic and trained models.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"

#include "attack/ensemble_bb.h"
#include "attack/pgd.h"
#include "attack/square.h"
#include "nn/loss.h"
#include "nn/resnet.h"
#include "nn/trainer.h"
#include "test_util.h"

namespace nvm::attack {
namespace {

/// Analytic victim: logits = W * flatten(x); gradients known in closed
/// form, so sign behaviour is exactly checkable.
class LinearModel final : public AttackModel {
 public:
  explicit LinearModel(Tensor w) : w_(std::move(w)) {}

  Tensor logits(const Tensor& x) override {
    Tensor flat = x.reshaped({x.numel()});
    Tensor out({w_.dim(0)});
    for (std::int64_t c = 0; c < w_.dim(0); ++c) {
      double acc = 0;
      for (std::int64_t i = 0; i < flat.numel(); ++i)
        acc += static_cast<double>(w_.at(c, i)) * flat[i];
      out[c] = static_cast<float>(acc);
    }
    return out;
  }

  Tensor loss_input_grad(const Tensor& x, std::int64_t label,
                         float* loss_out) override {
    Tensor out = logits(x);
    nn::LossGrad lg = nn::cross_entropy(out, label);
    if (loss_out != nullptr) *loss_out = lg.loss;
    Tensor gx(x.shape());
    Tensor flat_g = gx.reshaped({x.numel()});
    for (std::int64_t i = 0; i < x.numel(); ++i) {
      double acc = 0;
      for (std::int64_t c = 0; c < w_.dim(0); ++c)
        acc += static_cast<double>(lg.grad_logits[c]) * w_.at(c, i);
      flat_g[i] = static_cast<float>(acc);
    }
    return flat_g.reshaped(x.shape());
  }

 private:
  Tensor w_;  // (classes, dims)
};

LinearModel make_two_class_model(std::int64_t dims = 12) {
  // Class 0 likes bright pixels, class 1 dark.
  Tensor w({2, dims});
  for (std::int64_t i = 0; i < dims; ++i) {
    w.at(0, i) = 1.0f;
    w.at(1, i) = -1.0f;
  }
  return LinearModel(std::move(w));
}

TEST(Pgd, StaysWithinEpsilonBallAndPixelRange) {
  LinearModel model = make_two_class_model();
  Rng rng(1);
  Tensor x = Tensor::uniform({3, 2, 2}, 0.3f, 0.7f, rng);
  PgdOptions opt;
  opt.epsilon = 0.1f;
  opt.iters = 10;
  Tensor adv = pgd_attack(model, x, 0, opt);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_LE(std::abs(adv[i] - x[i]), opt.epsilon + 1e-6f);
    EXPECT_GE(adv[i], 0.0f);
    EXPECT_LE(adv[i], 1.0f);
  }
}

TEST(Pgd, MovesAgainstTrueLabelDirection) {
  // For label 0 (bright class), increasing loss means darkening pixels.
  LinearModel model = make_two_class_model();
  Tensor x = Tensor::full({3, 2, 2}, 0.5f);
  PgdOptions opt;
  opt.epsilon = 0.1f;
  opt.iters = 5;
  opt.random_start = false;
  Tensor adv = pgd_attack(model, x, 0, opt);
  for (std::int64_t i = 0; i < x.numel(); ++i)
    EXPECT_NEAR(adv[i], 0.4f, 1e-5f);  // pushed to the -eps face
}

TEST(Pgd, IncreasesVictimLoss) {
  LinearModel model = make_two_class_model();
  Rng rng(2);
  Tensor x = Tensor::uniform({3, 2, 2}, 0.55f, 0.8f, rng);
  float clean_loss = 0, adv_loss = 0;
  (void)model.loss_input_grad(x, 0, &clean_loss);
  PgdOptions opt;
  opt.epsilon = 0.15f;
  opt.iters = 10;
  Tensor adv = pgd_attack(model, x, 0, opt);
  (void)model.loss_input_grad(adv, 0, &adv_loss);
  EXPECT_GT(adv_loss, clean_loss);
}

TEST(Pgd, DefaultStepFollowsMadryHeuristic) {
  PgdOptions opt;
  opt.epsilon = 0.3f;
  opt.iters = 30;
  EXPECT_NEAR(opt.step(), 2.5f * 0.3f / 30, 1e-6f);
  opt.alpha = 0.05f;
  EXPECT_EQ(opt.step(), 0.05f);
}

TEST(MiFgsm, StaysWithinBallAndIncreasesLoss) {
  LinearModel model = make_two_class_model();
  Rng rng(12);
  Tensor x = Tensor::uniform({3, 2, 2}, 0.4f, 0.6f, rng);
  MiFgsmOptions opt;
  opt.epsilon = 0.08f;
  opt.iters = 8;
  float clean_loss = 0, adv_loss = 0;
  (void)model.loss_input_grad(x, 0, &clean_loss);
  Tensor adv = mi_fgsm_attack(model, x, 0, opt);
  (void)model.loss_input_grad(adv, 0, &adv_loss);
  EXPECT_GT(adv_loss, clean_loss);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_LE(std::abs(adv[i] - x[i]), opt.epsilon + 1e-6f);
    EXPECT_GE(adv[i], 0.0f);
    EXPECT_LE(adv[i], 1.0f);
  }
}

TEST(MiFgsm, MatchesPgdDirectionOnLinearModel) {
  // On a linear victim the momentum direction equals the constant
  // gradient sign, so MI-FGSM must land on the same ball corner.
  LinearModel model = make_two_class_model();
  Tensor x = Tensor::full({3, 2, 2}, 0.5f);
  MiFgsmOptions opt;
  opt.epsilon = 0.06f;
  opt.iters = 6;
  Tensor adv = mi_fgsm_attack(model, x, 0, opt);
  for (std::int64_t i = 0; i < x.numel(); ++i)
    EXPECT_NEAR(adv[i], 0.44f, 1e-4f);
}

TEST(Fgsm, MatchesSignOfGradient) {
  LinearModel model = make_two_class_model();
  Tensor x = Tensor::full({3, 2, 2}, 0.5f);
  Tensor adv = fgsm_attack(model, x, 1, 0.07f);  // label 1: dark class
  // Increasing loss for the dark class means brightening pixels.
  for (std::int64_t i = 0; i < x.numel(); ++i)
    EXPECT_NEAR(adv[i], 0.57f, 1e-5f);
}

TEST(Square, RespectsEpsilonBall) {
  LinearModel model = make_two_class_model(3 * 6 * 6);
  Rng rng(3);
  Tensor x = Tensor::uniform({3, 6, 6}, 0.2f, 0.8f, rng);
  SquareOptions opt;
  opt.epsilon = 0.08f;
  opt.max_queries = 60;
  SquareResult res = square_attack(model, x, 0, opt);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_LE(std::abs(res.adv[i] - x[i]), opt.epsilon + 1e-6f);
    EXPECT_GE(res.adv[i], 0.0f);
    EXPECT_LE(res.adv[i], 1.0f);
  }
  EXPECT_LE(res.queries_used, opt.max_queries);
}

TEST(Square, BreaksMarginOnEasyModel) {
  // Class 0 prefers mass on the left half, class 1 on the right. An input
  // with a slight left bias is barely class 0; flipping a few squares to
  // the +eps/-eps faces must push it over.
  const std::int64_t hw = 6;
  Tensor w({2, 3 * hw * hw});
  for (std::int64_t c = 0; c < 3; ++c)
    for (std::int64_t y = 0; y < hw; ++y)
      for (std::int64_t x = 0; x < hw; ++x) {
        const float sign = (x < hw / 2) ? 1.0f : -1.0f;
        w.at(0, (c * hw + y) * hw + x) = sign;
        w.at(1, (c * hw + y) * hw + x) = -sign;
      }
  LinearModel model(std::move(w));
  Tensor img = Tensor::full({3, hw, hw}, 0.5f);
  for (std::int64_t c = 0; c < 3; ++c)
    for (std::int64_t y = 0; y < hw; ++y)
      img.at(c, y, 0) += 0.01f;  // slight left bias: barely class 0
  SquareOptions opt;
  opt.epsilon = 0.05f;
  opt.max_queries = 300;
  SquareResult res = square_attack(model, img, 0, opt);
  EXPECT_TRUE(res.success);
}

TEST(Square, NeverIncreasesMargin) {
  LinearModel model = make_two_class_model(3 * 4 * 4);
  Rng rng(4);
  Tensor x = Tensor::uniform({3, 4, 4}, 0.5f, 0.9f, rng);
  SquareOptions opt;
  opt.epsilon = 0.03f;
  opt.max_queries = 40;
  SquareResult res = square_attack(model, x, 0, opt);
  const float final_margin = nn::margin(model.logits(res.adv), 0);
  const float clean_margin = nn::margin(model.logits(x), 0);
  EXPECT_LE(final_margin, clean_margin + 1e-5f);
}

TEST(EnsembleModel, GradIsSumAndLogitsAreMean) {
  Rng rng(5);
  nn::ResnetCifarSpec spec;
  spec.blocks_per_stage = 1;
  spec.widths = {4, 4, 4};
  spec.num_classes = 3;
  nn::Network a = nn::make_resnet_cifar(spec, rng);
  nn::Network b = nn::make_resnet_cifar(spec, rng);
  Tensor x = Tensor::uniform({3, 8, 8}, 0, 1, rng);

  EnsembleAttackModel ens({&a, &b});
  Tensor mean_logits = ens.logits(x);
  Tensor expect = a.forward(x, nn::Mode::Eval) + b.forward(x, nn::Mode::Eval);
  expect *= 0.5f;
  EXPECT_LT(max_abs_diff(mean_logits, expect), 1e-5f);

  NetworkAttackModel ma(a), mb(b);
  Tensor ga = ma.loss_input_grad(x, 1);
  Tensor gb = mb.loss_input_grad(x, 1);
  Tensor gsum = ens.loss_input_grad(x, 1);
  EXPECT_LT(max_abs_diff(gsum, ga + gb), 1e-4f);
}

TEST(NetworkModel, GradLeavesParamsClean) {
  Rng rng(6);
  nn::ResnetCifarSpec spec;
  spec.blocks_per_stage = 1;
  spec.widths = {4, 4, 4};
  spec.num_classes = 2;
  nn::Network net = nn::make_resnet_cifar(spec, rng);
  NetworkAttackModel model(net);
  Tensor x = Tensor::uniform({3, 8, 8}, 0, 1, rng);
  (void)model.loss_input_grad(x, 0);
  for (nn::Param* p : net.params()) EXPECT_EQ(p->grad.abs_max(), 0.0f);
}

TEST(SurrogateEnsemble, DistillsVictimBehaviour) {
  // Victim: tiny trained network on a separable task. Surrogates trained
  // only from queried logits must agree with the victim on most inputs.
  Rng rng(7);
  std::vector<Tensor> images;
  std::vector<std::int64_t> labels;
  testutil::make_orientation_toy(images, labels, 48, rng);
  nn::ResnetCifarSpec spec;
  spec.blocks_per_stage = 1;
  spec.widths = {4, 4, 4};
  spec.num_classes = 2;
  nn::Network victim = nn::make_resnet_cifar(spec, rng);
  nn::train(victim, images, labels, testutil::toy_train_config());

  EnsembleBbOptions opt;
  opt.depths = {1};
  opt.widths = {4, 4, 4};
  opt.epochs = 15;
  opt.batch = 8;
  SurrogateEnsemble surrogates = SurrogateEnsemble::distill(
      [&](const Tensor& img) { return victim.forward(img, nn::Mode::Eval); },
      images, 2, opt);
  ASSERT_EQ(surrogates.size(), 1u);

  int agree = 0;
  for (const Tensor& img : images) {
    const auto v = victim.forward(img, nn::Mode::Eval).argmax();
    const auto s =
        surrogates.member(0).forward(img, nn::Mode::Eval).argmax();
    agree += (v == s);
  }
  EXPECT_GT(agree, 38);  // > 80% agreement
}

}  // namespace
}  // namespace nvm::attack

// Cross-module property tests: quantization-error scaling laws, attack
// monotonicity, determinism guarantees, and cost-model invariants.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"

#include "attack/pgd.h"
#include "attack/square.h"
#include "nn/loss.h"
#include "nn/linear.h"
#include "nn/pool.h"
#include "puma/cost_model.h"
#include "puma/tiled_mvm.h"
#include "tensor/ops.h"

namespace nvm {
namespace {

xbar::CrossbarConfig cfg16() {
  xbar::CrossbarConfig cfg = xbar::xbar_32x32_100k();
  cfg.rows = cfg.cols = 16;
  cfg.levels = 256;  // allow wide slices in the sweep
  return cfg;
}

/// RMS error of the tiled GEMM vs the float GEMM, for one mapping config.
float tiled_rms_error(const puma::HwConfig& hw, std::uint64_t seed) {
  Rng rng(seed);
  Tensor w = Tensor::normal({12, 20}, 0, 0.2f, rng);
  Tensor x({20, 8});
  for (auto& v : x.data())
    v = rng.bernoulli(0.4) ? 0.0f : static_cast<float>(rng.uniform(0, 1));
  auto model = std::make_shared<xbar::IdealXbarModel>(cfg16());
  puma::TiledMatrix tiled(w, model, hw);
  Tensor got = tiled.matmul(x, 1.0f);
  Tensor want = matmul(w, x);
  double se = 0;
  for (std::int64_t i = 0; i < got.numel(); ++i) {
    const double d = got[i] - want[i];
    se += d * d;
  }
  return static_cast<float>(
      std::sqrt(se / static_cast<double>(got.numel())));
}

// Property: more weight bits -> monotonically smaller mapping error
// (averaged over seeds; ideal crossbar isolates quantization).
TEST(MappingError, ShrinksWithWeightBits) {
  float prev = 1e9f;
  for (std::int64_t bits : {4, 6, 8}) {
    puma::HwConfig hw;
    hw.weight_bits = bits;
    hw.slice_bits = 4;
    hw.adc_bits = 14;   // keep ADC out of the comparison
    hw.input_bits = 10;
    hw.stream_bits = 5;
    float err = 0;
    for (std::uint64_t seed = 1; seed <= 4; ++seed)
      err += tiled_rms_error(hw, seed);
    EXPECT_LT(err, prev) << "weight_bits=" << bits;
    prev = err;
  }
}

TEST(MappingError, ShrinksWithInputBits) {
  float prev = 1e9f;
  for (std::int64_t bits : {3, 6, 9}) {
    puma::HwConfig hw;
    hw.input_bits = bits;
    hw.stream_bits = 3;
    hw.adc_bits = 14;
    float err = 0;
    for (std::uint64_t seed = 1; seed <= 4; ++seed)
      err += tiled_rms_error(hw, seed);
    EXPECT_LT(err, prev) << "input_bits=" << bits;
    prev = err;
  }
}

TEST(MappingError, ShrinksWithAdcBits) {
  float prev = 1e9f;
  for (std::int64_t bits : {6, 9, 12}) {
    puma::HwConfig hw;
    hw.adc_bits = bits;
    float err = 0;
    for (std::uint64_t seed = 1; seed <= 4; ++seed)
      err += tiled_rms_error(hw, seed);
    EXPECT_LE(err, prev * 1.02f) << "adc_bits=" << bits;
    prev = err;
  }
}

// Property: slicing configuration must not change the *value* computed on
// ideal hardware (only the decomposition changes), up to ADC noise.
TEST(MappingError, SliceDecompositionInvariant) {
  puma::HwConfig one_slice;
  one_slice.slice_bits = 6;
  one_slice.adc_bits = 14;
  puma::HwConfig two_slices;
  two_slices.slice_bits = 3;
  two_slices.adc_bits = 14;
  Rng rng(9);
  Tensor w = Tensor::normal({10, 14}, 0, 0.2f, rng);
  Tensor x = Tensor::uniform({14, 6}, 0.0f, 1.0f, rng);
  auto model = std::make_shared<xbar::IdealXbarModel>(cfg16());
  Tensor a = puma::TiledMatrix(w, model, one_slice).matmul(x, 1.0f);
  Tensor b = puma::TiledMatrix(w, model, two_slices).matmul(x, 1.0f);
  EXPECT_LT(max_abs_diff(a, b), 0.02f * b.abs_max() + 1e-4f);
}

/// Two-class linear model for attack monotonicity checks.
class HalfPlaneModel final : public attack::AttackModel {
 public:
  explicit HalfPlaneModel(std::int64_t dims) : dims_(dims) {}
  Tensor logits(const Tensor& x) override {
    double s = 0;
    const std::int64_t half = dims_ / 2;
    for (std::int64_t i = 0; i < dims_; ++i)
      s += (i < half ? 1.0 : -1.0) * x[i];
    Tensor out({2});
    out[0] = static_cast<float>(s);
    out[1] = static_cast<float>(-s);
    return out;
  }
  Tensor loss_input_grad(const Tensor& x, std::int64_t label,
                         float* loss_out) override {
    Tensor out = logits(x);
    nn::LossGrad lg = nn::cross_entropy(out, label);
    if (loss_out != nullptr) *loss_out = lg.loss;
    Tensor g(x.shape());
    const std::int64_t half = dims_ / 2;
    for (std::int64_t i = 0; i < dims_; ++i)
      g[i] = (lg.grad_logits[0] - lg.grad_logits[1]) * (i < half ? 1.f : -1.f);
    return g;
  }

 private:
  std::int64_t dims_;
};

// Property: PGD loss is non-decreasing in epsilon on a convex (linear)
// victim.
TEST(AttackProperty, PgdLossMonotoneInEpsilon) {
  HalfPlaneModel model(3 * 4 * 4);
  Rng rng(5);
  Tensor x = Tensor::uniform({3, 4, 4}, 0.3f, 0.7f, rng);
  float prev_loss = -1.0f;
  for (float eps : {0.01f, 0.03f, 0.06f, 0.1f}) {
    attack::PgdOptions opt;
    opt.epsilon = eps;
    opt.iters = 10;
    opt.random_start = false;
    Tensor adv = attack::pgd_attack(model, x, 0, opt);
    float loss = 0;
    (void)model.loss_input_grad(adv, 0, &loss);
    EXPECT_GE(loss, prev_loss - 1e-5f) << "eps=" << eps;
    prev_loss = loss;
  }
}

// Property: on a linear victim, PGD lands exactly on the epsilon-ball
// face selected by the gradient sign (the optimum of a linear objective
// over a box is a corner).
TEST(AttackProperty, PgdReachesBallCornerOnLinearModel) {
  HalfPlaneModel model(3 * 4 * 4);
  Tensor x = Tensor::full({3, 4, 4}, 0.5f);
  attack::PgdOptions opt;
  opt.epsilon = 0.07f;
  opt.iters = 8;
  opt.random_start = false;
  Tensor adv = attack::pgd_attack(model, x, 0, opt);
  for (std::int64_t i = 0; i < adv.numel(); ++i)
    EXPECT_NEAR(std::abs(adv[i] - x[i]), opt.epsilon, 1e-5f);
}

TEST(AttackProperty, SquareDeterministicForSeed) {
  HalfPlaneModel model(3 * 6 * 6);
  Rng rng(6);
  Tensor x = Tensor::uniform({3, 6, 6}, 0.2f, 0.8f, rng);
  attack::SquareOptions opt;
  opt.epsilon = 0.05f;
  opt.max_queries = 60;
  attack::SquareResult a = attack::square_attack(model, x, 0, opt);
  attack::SquareResult b = attack::square_attack(model, x, 0, opt);
  EXPECT_EQ(max_abs_diff(a.adv, b.adv), 0.0f);
  EXPECT_EQ(a.queries_used, b.queries_used);
}

TEST(AttackProperty, PgdDeterministicForSeed) {
  HalfPlaneModel model(3 * 4 * 4);
  Rng rng(7);
  Tensor x = Tensor::uniform({3, 4, 4}, 0.2f, 0.8f, rng);
  attack::PgdOptions opt;
  opt.epsilon = 0.05f;
  opt.iters = 5;
  Tensor a = attack::pgd_attack(model, x, 0, opt);
  Tensor b = attack::pgd_attack(model, x, 0, opt);
  EXPECT_EQ(max_abs_diff(a, b), 0.0f);
}

// Cost model invariant: a GEMM that exactly fills one crossbar reports
// 100% utilization and rows*... conversions consistent with shape.
TEST(CostModelProperty, ExactFitFullUtilization) {
  // Build a "network" of one Linear layer sized exactly to the crossbar.
  Rng rng(8);
  auto cfg = xbar::xbar_64x64_100k();
  nn::Sequential* seq = new nn::Sequential();
  seq->emplace<nn::Flatten>();
  seq->emplace<nn::Linear>(cfg.rows, cfg.cols, rng);
  nn::Network net("exactfit", std::unique_ptr<nn::Sequential>(seq),
                  cfg.cols);
  Tensor sample({cfg.rows});
  puma::CostReport report =
      puma::estimate_cost(net, sample, cfg, puma::HwConfig{});
  ASSERT_EQ(report.layers.size(), 1u);
  EXPECT_NEAR(report.layers[0].utilization, 1.0, 1e-9);
  EXPECT_EQ(report.layers[0].row_tiles, 1);
  EXPECT_EQ(report.layers[0].col_tiles, 1);
  // passes = 2 polarities x 2 slices x 2 streams, one input vector.
  EXPECT_EQ(report.layers[0].crossbar_reads, 8);
}

TEST(SoftmaxProperty, ShiftInvariance) {
  Rng rng(10);
  for (int t = 0; t < 10; ++t) {
    Tensor logits = Tensor::normal({7}, 0, 3, rng);
    Tensor shifted = logits;
    shifted += 42.0f;
    EXPECT_LT(max_abs_diff(nn::softmax(logits), nn::softmax(shifted)), 1e-5f);
  }
}

TEST(RngProperty, UniformIndexOfOneIsZero) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_index(1), 0u);
}

}  // namespace
}  // namespace nvm

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"

#include <sstream>

#include "nn/loss.h"
#include "nn/resnet.h"
#include "nn/trainer.h"
#include "test_util.h"

namespace nvm::nn {
namespace {

TEST(Softmax, NormalizedAndStable) {
  Tensor logits({3}, {1000.0f, 1000.0f, 1000.0f});
  Tensor p = softmax(logits);
  EXPECT_NEAR(p.sum(), 1.0f, 1e-5f);
  EXPECT_NEAR(p[0], 1.0f / 3, 1e-5f);
}

TEST(Softmax, OrderingPreserved) {
  Tensor logits({3}, {1.0f, 3.0f, 2.0f});
  Tensor p = softmax(logits);
  EXPECT_GT(p[1], p[2]);
  EXPECT_GT(p[2], p[0]);
}

TEST(CrossEntropy, GradientIsSoftmaxMinusOneHot) {
  Tensor logits({3}, {0.5f, -0.2f, 1.0f});
  LossGrad lg = cross_entropy(logits, 2);
  Tensor p = softmax(logits);
  EXPECT_NEAR(lg.grad_logits[0], p[0], 1e-6f);
  EXPECT_NEAR(lg.grad_logits[2], p[2] - 1.0f, 1e-6f);
  EXPECT_NEAR(lg.loss, -std::log(p[2]), 1e-5f);
}

TEST(CrossEntropy, InvalidLabelThrows) {
  Tensor logits({3});
  EXPECT_THROW(cross_entropy(logits, 3), CheckError);
  EXPECT_THROW(cross_entropy(logits, -1), CheckError);
}

TEST(CrossEntropySoft, MatchesHardOnOneHot) {
  Tensor logits({4}, {0.1f, 0.9f, -0.4f, 0.2f});
  Tensor one_hot({4}, {0, 0, 1, 0});
  LossGrad soft = cross_entropy_soft(logits, one_hot);
  LossGrad hard = cross_entropy(logits, 2);
  EXPECT_NEAR(soft.loss, hard.loss, 1e-5f);
  EXPECT_LT(max_abs_diff(soft.grad_logits, hard.grad_logits), 1e-6f);
}

TEST(Margin, SignMatchesClassification) {
  Tensor logits({3}, {2.0f, 5.0f, 1.0f});
  EXPECT_GT(margin(logits, 1), 0.0f);   // correctly classified
  EXPECT_LT(margin(logits, 0), 0.0f);   // misclassified
  EXPECT_NEAR(margin(logits, 1), 3.0f, 1e-6f);
}

TEST(Sgd, MovesAgainstGradient) {
  Param p(Tensor({2}, {1.0f, -1.0f}));
  p.decay = false;
  SgdConfig cfg;
  cfg.lr = 0.1f;
  cfg.momentum = 0.0f;
  cfg.weight_decay = 0.0f;
  Sgd opt({&p}, cfg);
  p.grad = Tensor({2}, {1.0f, -2.0f});
  opt.step();
  EXPECT_NEAR(p.value[0], 0.9f, 1e-6f);
  EXPECT_NEAR(p.value[1], -0.8f, 1e-6f);
  // Gradients are consumed.
  EXPECT_EQ(p.grad.abs_max(), 0.0f);
}

TEST(Sgd, MomentumAccumulates) {
  Param p(Tensor({1}, {0.0f}));
  SgdConfig cfg;
  cfg.lr = 1.0f;
  cfg.momentum = 0.5f;
  cfg.weight_decay = 0.0f;
  Sgd opt({&p}, cfg);
  p.grad = Tensor({1}, {1.0f});
  opt.step();
  EXPECT_NEAR(p.value[0], -1.0f, 1e-6f);
  p.grad = Tensor({1}, {1.0f});
  opt.step();  // velocity = 0.5*1 + 1 = 1.5
  EXPECT_NEAR(p.value[0], -2.5f, 1e-6f);
}

TEST(Sgd, WeightDecayOnlyOnDecayParams) {
  Param decayed(Tensor({1}, {1.0f}));
  Param plain(Tensor({1}, {1.0f}), /*decay_flag=*/false);
  SgdConfig cfg;
  cfg.lr = 1.0f;
  cfg.momentum = 0.0f;
  cfg.weight_decay = 0.1f;
  Sgd opt({&decayed, &plain}, cfg);
  opt.step();
  EXPECT_NEAR(decayed.value[0], 0.9f, 1e-6f);
  EXPECT_NEAR(plain.value[0], 1.0f, 1e-6f);
}

TEST(Trainer, LearnsSeparableTask) {
  Rng rng(21);
  std::vector<Tensor> images;
  std::vector<std::int64_t> labels;
  testutil::make_orientation_toy(images, labels, 64, rng);

  ResnetCifarSpec spec;
  spec.blocks_per_stage = 1;
  spec.widths = {4, 8, 8};
  spec.num_classes = 2;
  Network net = make_resnet_cifar(spec, rng);

  TrainStats stats = train(net, images, labels, testutil::toy_train_config());
  EXPECT_GT(stats.final_train_acc, 90.0f);
  EXPECT_GT(evaluate_accuracy(net, images, labels), 90.0f);
}

TEST(Network, SaveLoadRoundTripPreservesOutputs) {
  Rng rng(22);
  ResnetCifarSpec spec;
  spec.blocks_per_stage = 1;
  spec.widths = {4, 4, 8};
  spec.num_classes = 3;
  Network net = make_resnet_cifar(spec, rng);
  Tensor x = Tensor::uniform({3, 8, 8}, 0, 1, rng);
  // Push some statistics into BN before saving.
  (void)net.forward(x, Mode::Train);
  Tensor before = net.forward(x, Mode::Eval);

  std::stringstream ss;
  BinaryWriter w(ss);
  net.save(w);

  Rng rng2(99);  // different init
  Network net2 = make_resnet_cifar(spec, rng2);
  BinaryReader r(ss);
  net2.load(r);
  Tensor after = net2.forward(x, Mode::Eval);
  EXPECT_LT(max_abs_diff(before, after), 1e-6f);
}

TEST(Network, LoadRejectsWrongArchitecture) {
  Rng rng(23);
  ResnetCifarSpec a;
  a.blocks_per_stage = 1;
  a.num_classes = 2;
  a.widths = {4, 4, 4};
  ResnetCifarSpec b = a;
  b.blocks_per_stage = 2;
  Network na = make_resnet_cifar(a, rng);
  Network nb = make_resnet_cifar(b, rng);
  std::stringstream ss;
  BinaryWriter w(ss);
  na.save(w);
  BinaryReader r(ss);
  EXPECT_THROW(nb.load(r), CheckError);
}

TEST(Network, FreezeBatchnormStopsStatUpdates) {
  Rng rng(24);
  ResnetCifarSpec spec;
  spec.blocks_per_stage = 1;
  spec.widths = {4, 4, 4};
  spec.num_classes = 2;
  Network net = make_resnet_cifar(spec, rng);
  Tensor x = Tensor::uniform({3, 8, 8}, 0, 1, rng);
  (void)net.forward(x, Mode::Train);

  // Snapshot one BN's stats, freeze, run more training forwards.
  BatchNorm2d* bn = nullptr;
  visit_layers(net.root(), [&](Layer& l) {
    if (bn == nullptr) bn = dynamic_cast<BatchNorm2d*>(&l);
  });
  ASSERT_NE(bn, nullptr);
  Tensor mean_before = bn->running_mean();
  net.freeze_batchnorm();
  (void)net.forward(x, Mode::Train);
  EXPECT_EQ(max_abs_diff(mean_before, bn->running_mean()), 0.0f);

  net.freeze_batchnorm(false);
  (void)net.forward(x, Mode::Train);
  EXPECT_GT(max_abs_diff(mean_before, bn->running_mean()), 0.0f);
}

TEST(Network, ParamCountMatchesArchitecture) {
  Rng rng(25);
  // conv(3->4,3x3)=108, bn 8, blocks..., linear...
  ResnetCifarSpec spec;
  spec.blocks_per_stage = 1;
  spec.widths = {4, 4, 4};
  spec.num_classes = 2;
  Network net = make_resnet_cifar(spec, rng);
  EXPECT_GT(net.param_count(), 1000);
  std::int64_t manual = 0;
  for (Param* p : net.params()) manual += p->value.numel();
  EXPECT_EQ(net.param_count(), manual);
}

TEST(Resnet, DepthNaming) {
  Rng rng(26);
  ResnetCifarSpec spec;
  spec.blocks_per_stage = 3;
  Network net = make_resnet_cifar(spec, rng);
  EXPECT_NE(net.arch().find("resnet20"), std::string::npos);
  spec.blocks_per_stage = 5;
  Network net32 = make_resnet_cifar(spec, rng);
  EXPECT_NE(net32.arch().find("resnet32"), std::string::npos);
}

TEST(Resnet, Resnet18HandlesVariableInputSize) {
  Rng rng(27);
  Resnet18Spec spec;
  spec.widths = {4, 4, 8, 8};
  spec.num_classes = 5;
  Network net = make_resnet18(spec, rng);
  // Global average pooling makes the head size-agnostic (needed by the
  // random resize-pad defense).
  EXPECT_EQ(net.forward(Tensor({3, 24, 24}), Mode::Eval).numel(), 5);
  EXPECT_EQ(net.forward(Tensor({3, 30, 30}), Mode::Eval).numel(), 5);
}

}  // namespace
}  // namespace nvm::nn

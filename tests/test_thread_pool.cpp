// ThreadPool semantics: completion, exception propagation, nesting,
// pool-size-independent decomposition, and serial degeneration.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace nvm {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::int64_t kN = 5000;
  std::vector<std::int64_t> out(kN, -1);
  pool.parallel_for(kN, [&](std::int64_t i) { out[i] = i * i; });
  for (std::int64_t i = 0; i < kN; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, ZeroAndNegativeCountsAreNoOps) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::int64_t) { ++calls; });
  pool.parallel_for(-3, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> completed{0};
  EXPECT_THROW(
      pool.parallel_for(64,
                        [&](std::int64_t i) {
                          if (i == 37) throw std::runtime_error("boom");
                          ++completed;
                        }),
      std::runtime_error);
  // The throwing chunk abandons its remaining indices; every other chunk
  // (at least 3 of 4 x 16 indices) still completed before the rethrow.
  EXPECT_GE(completed.load(), 48);
  EXPECT_LT(completed.load(), 64);
}

TEST(ThreadPool, ExceptionPropagatesFromSerialPoolToo) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for(
                   4, [](std::int64_t) { throw std::logic_error("serial"); }),
               std::logic_error);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlockAndCompletes) {
  ThreadPool pool(4);
  constexpr std::int64_t kOuter = 16, kInner = 32;
  std::vector<std::int64_t> sums(kOuter, 0);
  pool.parallel_for(kOuter, [&](std::int64_t o) {
    // Nested call from inside a parallel region: must run inline.
    std::int64_t local = 0;
    pool.parallel_for(kInner, [&](std::int64_t i) {
      EXPECT_TRUE(ThreadPool::in_parallel_region());
      local += i;
    });
    sums[o] = local;
  });
  for (std::int64_t o = 0; o < kOuter; ++o)
    EXPECT_EQ(sums[o], kInner * (kInner - 1) / 2);
}

TEST(ThreadPool, SizeOneDegeneratesToInlineSerialExecution) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(16);
  std::vector<std::int64_t> order;
  pool.parallel_for(16, [&](std::int64_t i) {
    seen[i] = std::this_thread::get_id();
    order.push_back(i);  // safe: serial execution, no concurrency
  });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
  // Serial execution visits indices in order.
  for (std::size_t i = 0; i < order.size(); ++i)
    EXPECT_EQ(order[i], static_cast<std::int64_t>(i));
}

TEST(ThreadPool, ChunkDecompositionIsPoolSizeIndependent) {
  // parallel_chunks must split identically under any pool size: chunk
  // count min(max_chunks, n), contiguous, covering [0, n).
  for (const std::size_t pool_size : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool pool(pool_size);
    std::mutex mu;
    std::vector<std::array<std::int64_t, 3>> chunks;
    pool.parallel_chunks(10, 3,
                         [&](std::int64_t c, std::int64_t b, std::int64_t e) {
                           std::lock_guard<std::mutex> lock(mu);
                           chunks.push_back({c, b, e});
                         });
    ASSERT_EQ(chunks.size(), 3u);
    std::sort(chunks.begin(), chunks.end());
    std::int64_t covered = 0;
    for (std::int64_t c = 0; c < 3; ++c) {
      EXPECT_EQ(chunks[static_cast<std::size_t>(c)][0], c);
      EXPECT_EQ(chunks[static_cast<std::size_t>(c)][1], covered);
      covered = chunks[static_cast<std::size_t>(c)][2];
    }
    EXPECT_EQ(covered, 10);
  }
}

TEST(ThreadPool, ChunkBoundariesMatchLegacyFormulaWhereItWasSafe) {
  // The overflow-safe split must keep the exact floor(c*n/chunks)
  // boundaries of the narrow int64 formula for every size it handled, so
  // any decomposition-keyed result (seeds, reduction order) is unchanged.
  ThreadPool pool(1);
  const std::int64_t cases[][2] = {
      {1, 1}, {7, 3}, {10, 3}, {64, 8}, {1000, 7}, {12345, 13}, {1 << 20, 48},
  };
  for (const auto& [n, max_chunks] : cases) {
    std::vector<std::array<std::int64_t, 3>> chunks;
    pool.parallel_chunks(n, max_chunks,
                         [&](std::int64_t c, std::int64_t b, std::int64_t e) {
                           chunks.push_back({c, b, e});
                         });
    const std::int64_t k = std::min(max_chunks, n);
    ASSERT_EQ(chunks.size(), static_cast<std::size_t>(k));
    for (const auto& [c, b, e] : chunks) {
      EXPECT_EQ(b, c * n / k) << "n=" << n << " chunks=" << k;
      EXPECT_EQ(e, (c + 1) * n / k) << "n=" << n << " chunks=" << k;
    }
  }
}

TEST(ThreadPool, HugeRangeChunksDoNotOverflow) {
  // With n near 2^63, c * n overflows int64 for every c > 1; the widened
  // split must still produce exact, contiguous, monotone boundaries.
  ThreadPool pool(1);
  const std::int64_t n = std::int64_t{6'000'000'000'000'000'000};
  std::vector<std::array<std::int64_t, 3>> chunks;
  pool.parallel_chunks(n, 4,
                       [&](std::int64_t c, std::int64_t b, std::int64_t e) {
                         chunks.push_back({c, b, e});
                       });
  ASSERT_EQ(chunks.size(), 4u);
  std::sort(chunks.begin(), chunks.end());
  const std::int64_t expect[] = {0, n / 4, n / 2, 3 * (n / 4), n};
  for (std::int64_t c = 0; c < 4; ++c) {
    EXPECT_EQ(chunks[static_cast<std::size_t>(c)][1], expect[c]);
    EXPECT_EQ(chunks[static_cast<std::size_t>(c)][2], expect[c + 1]);
  }
}

TEST(ThreadPool, ChunkCountNeverExceedsWorkCount) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_chunks(2, 8, [&](std::int64_t, std::int64_t b, std::int64_t e) {
    EXPECT_EQ(e - b, 1);
    ++calls;
  });
  EXPECT_EQ(calls.load(), 2);
}

TEST(ThreadPool, ScopedUseRoutesFreeFunctions) {
  ThreadPool pool(3);
  EXPECT_NE(&ThreadPool::current(), &pool);
  {
    ThreadPool::ScopedUse use(pool);
    EXPECT_EQ(&ThreadPool::current(), &pool);
    std::atomic<std::int64_t> sum{0};
    parallel_for(100, [&](std::int64_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 4950);
  }
  EXPECT_NE(&ThreadPool::current(), &pool);
}

TEST(ThreadPool, GlobalPoolHonorsAtLeastOneThread) {
  EXPECT_GE(ThreadPool::global().size(), 1u);
}

TEST(ThreadPool, ManyRoundsStayConsistent) {
  // Regression guard for queue/join lifecycle bugs: many small regions.
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<std::int64_t> sum{0};
    pool.parallel_for(17, [&](std::int64_t i) { sum += i + round; });
    EXPECT_EQ(sum.load(), 17 * round + 136);
  }
}

}  // namespace
}  // namespace nvm
